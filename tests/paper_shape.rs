//! End-to-end checks that the reproduction exhibits the paper's
//! *qualitative* findings (DESIGN.md §3's expected-shape list). These run
//! at tiny scale, so thresholds carry slack — the full-scale counterparts
//! are recorded in EXPERIMENTS.md.

use kcb::core::lab::{Lab, LabConfig};
use kcb::core::paradigm::icl::{split_prompt_setup, QueryPolicy};
use kcb::core::task::TaskKind;
use kcb::icl::{run_protocol, LlmOracle, OracleProfile, PromptVariant};

fn tiny_lab() -> Lab {
    Lab::new(LabConfig::tiny())
}

#[test]
fn finding_task2_is_easiest_for_supervised_models() {
    // Paper §3.3: "Task 3 ... most challenging ... Task 2 ... easiest" for
    // ML approaches (best F1: .982 vs .969 vs .913).
    let lab = tiny_lab();
    let f1 = |task: TaskKind| lab.forest_run(task, "w2v-chem", "naive").metrics.f1;
    let t2 = f1(TaskKind::FlippedNegatives);
    let t3 = f1(TaskKind::SiblingNegatives);
    assert!(
        t2 > t3 + 0.02,
        "task 2 (F1 {t2:.3}) should clearly beat task 3 (F1 {t3:.3})"
    );
}

#[test]
fn finding_random_embeddings_are_a_strong_baseline() {
    // Paper §3.3 / Table 3a: with abundant data even random embeddings
    // reach F1 ≈ .956 on task 1.
    let lab = tiny_lab();
    let run = lab.forest_run(TaskKind::RandomNegatives, "random", "none");
    assert!(run.metrics.f1 > 0.8, "random-embedding F1 {:.3}", run.metrics.f1);
}

#[test]
fn finding_adaptation_helps_semantic_embeddings() {
    // Paper §3.3: "For all embedding models, both adaptations resulted in
    // improved performances". At tiny scale we require no-harm-or-better
    // for the domain model on task 1.
    let lab = tiny_lab();
    let plain = lab.forest_run(TaskKind::RandomNegatives, "w2v-chem", "none").metrics.f1;
    let naive = lab.forest_run(TaskKind::RandomNegatives, "w2v-chem", "naive").metrics.f1;
    assert!(
        naive >= plain - 0.02,
        "naive adaptation should not hurt: {naive:.3} vs {plain:.3}"
    );
}

#[test]
fn finding_icl_ordering_gpt4_gpt35_biogpt() {
    // Paper Table 5: GPT-4 > GPT-3.5 >> BioGPT on every task; BioGPT is
    // chance-level with near-zero kappa.
    let lab = tiny_lab();
    let (builder, items) = split_prompt_setup(
        lab.ontology(),
        lab.split(TaskKind::RandomNegatives),
        QueryPolicy { n_per_class: 25, ..QueryPolicy::default() },
        1,
    );
    let gpt4 = run_protocol(
        &LlmOracle::new(OracleProfile::gpt4_sim()),
        &builder,
        &items,
        PromptVariant::Base,
        3,
        1,
    );
    let gpt35 = run_protocol(
        &LlmOracle::new(OracleProfile::gpt35_sim()),
        &builder,
        &items,
        PromptVariant::Base,
        3,
        1,
    );
    let biogpt = run_protocol(lab.biogpt(), &builder, &items, PromptVariant::Base, 3, 1);

    assert!(gpt4.accuracy_mean > gpt35.accuracy_mean, "{} vs {}", gpt4.accuracy_mean, gpt35.accuracy_mean);
    assert!(gpt35.accuracy_mean > biogpt.accuracy_mean, "{} vs {}", gpt35.accuracy_mean, biogpt.accuracy_mean);
    assert!(biogpt.accuracy_mean < 0.65, "biogpt near chance, got {}", biogpt.accuracy_mean);
    assert!(biogpt.kappa < 0.5, "biogpt kappa {}", biogpt.kappa);
    assert!(gpt4.kappa > 0.85, "gpt4 kappa {}", gpt4.kappa);
}

#[test]
fn finding_idk_variant_trades_accuracy_for_coverage() {
    // Paper §3.5: variant #2 "did generally lead to an increase in
    // proportion of unclassified triples and consequent reduction in
    // overall accuracy".
    let lab = tiny_lab();
    let (builder, items) = split_prompt_setup(
        lab.ontology(),
        lab.split(TaskKind::SiblingNegatives),
        QueryPolicy { n_per_class: 25, ..QueryPolicy::default() },
        2,
    );
    let oracle = LlmOracle::new(OracleProfile::gpt4_sim());
    let v1 = run_protocol(&oracle, &builder, &items, PromptVariant::Base, 3, 2);
    let v2 = run_protocol(&oracle, &builder, &items, PromptVariant::AllowIdk, 3, 2);
    assert_eq!(v1.n_unclassified, 0);
    assert!(v2.n_unclassified > 0);
    assert!(v2.accuracy_mean <= v1.accuracy_mean + 1e-9);
}

#[test]
fn finding_gpt_task2_weakness() {
    // Paper: "GPT models seemed particularly poor in task 2"; the oracle's
    // task-2 competence must be its lowest. Averaged over several query
    // draws so that one 25-triple sample's noise cannot flip the ordering.
    let lab = tiny_lab();
    let mut accs = vec![0.0f64; 3];
    let n_draws = 4;
    for seed in 0..n_draws {
        for task in TaskKind::ALL {
            let (builder, items) = split_prompt_setup(
                lab.ontology(),
                lab.split(task),
                QueryPolicy { n_per_class: 25, ..QueryPolicy::default() },
                seed,
            );
            let oracle = LlmOracle::new(OracleProfile::gpt4_sim());
            let r = run_protocol(&oracle, &builder, &items, PromptVariant::Base, 3, seed);
            accs[task.number() - 1] += r.accuracy_mean / n_draws as f64;
        }
    }
    assert!(
        accs[1] < accs[0] && accs[1] < accs[2],
        "task 2 should be GPT-4's weakest: {accs:?}"
    );
}
