//! Property-based tests (proptest) over the core data structures and
//! invariants: metrics, RNG, tokenizer, kappa, DBSCAN, confusion algebra,
//! triple corruption and the incomplete-beta special function.

use kcb::icl::parse_response;
use kcb::ml::cluster::{clusters_from_labels, dbscan, Metric};
use kcb::ml::kappa::{fleiss_kappa, ratings_from_answers};
use kcb::ml::linalg::Matrix;
use kcb::ml::metrics::{eval_with_abstentions, roc_auc, BinaryMetrics, ConfusionMatrix};
use kcb::ml::stats::{inc_beta, welch_t_test};
use kcb::ontology::{EntityId, Relation, Triple};
use kcb::text::ChemTokenizer;
use kcb::util::Rng;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn rng_below_always_in_range(seed in any::<u64>(), n in 1usize..10_000) {
        let mut rng = Rng::seed(seed);
        for _ in 0..50 {
            prop_assert!(rng.below(n) < n);
        }
    }

    #[test]
    fn rng_shuffle_is_permutation(seed in any::<u64>(), len in 0usize..200) {
        let mut rng = Rng::seed(seed);
        let mut xs: Vec<usize> = (0..len).collect();
        rng.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        prop_assert_eq!(sorted, (0..len).collect::<Vec<_>>());
    }

    #[test]
    fn sample_indices_unique(seed in any::<u64>(), n in 1usize..500, frac in 0.0f64..1.0) {
        let k = ((n as f64) * frac) as usize;
        let mut rng = Rng::seed(seed);
        let s = rng.sample_indices(n, k);
        prop_assert_eq!(s.len(), k);
        let set: std::collections::HashSet<_> = s.iter().collect();
        prop_assert_eq!(set.len(), k);
    }

    #[test]
    fn confusion_metrics_bounded(preds in prop::collection::vec(any::<bool>(), 1..300),
                                 flips in prop::collection::vec(any::<bool>(), 1..300)) {
        let n = preds.len().min(flips.len());
        let labels: Vec<bool> = preds[..n].iter().zip(&flips[..n]).map(|(p, f)| *p != *f).collect();
        let cm = ConfusionMatrix::from_predictions(&preds[..n], &labels);
        prop_assert_eq!(cm.total(), n);
        for v in [cm.accuracy(), cm.precision(), cm.recall(), cm.f1()] {
            prop_assert!((0.0..=1.0).contains(&v));
        }
        let m = BinaryMetrics::macro_avg(&cm);
        prop_assert!(m.f1 <= 1.0 && m.f1 >= 0.0);
    }

    #[test]
    fn perfect_predictions_get_perfect_metrics(labels in prop::collection::vec(any::<bool>(), 1..200)) {
        prop_assume!(labels.iter().any(|&l| l) && labels.iter().any(|&l| !l));
        let m = BinaryMetrics::from_predictions(&labels, &labels);
        prop_assert!((m.accuracy - 1.0).abs() < 1e-12);
        prop_assert!((m.f1 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn auc_is_flip_antisymmetric(scores in prop::collection::vec(0.0f32..1.0, 4..150),
                                 labels in prop::collection::vec(any::<bool>(), 4..150)) {
        let n = scores.len().min(labels.len());
        let (s, l) = (&scores[..n], &labels[..n]);
        prop_assume!(l.iter().any(|&x| x) && l.iter().any(|&x| !x));
        let auc = roc_auc(s, l);
        let neg: Vec<f32> = s.iter().map(|v| -v).collect();
        prop_assert!((auc + roc_auc(&neg, l) - 1.0).abs() < 1e-9);
        prop_assert!((0.0..=1.0).contains(&auc));
    }

    #[test]
    fn abstention_accuracy_never_exceeds_classified_share(
        answers in prop::collection::vec(prop::option::of(any::<bool>()), 1..200),
        labels in prop::collection::vec(any::<bool>(), 1..200),
    ) {
        let n = answers.len().min(labels.len());
        let m = eval_with_abstentions(&answers[..n], &labels[..n]);
        let classified_share = 1.0 - (m.n_unclassified as f64 / n as f64);
        prop_assert!(m.overall_accuracy <= classified_share + 1e-12);
    }

    #[test]
    fn kappa_bounded_above_by_one(answers in prop::collection::vec(
        prop::collection::vec(0usize..3, 5), 2..50)) {
        let ratings = ratings_from_answers(&answers, 3);
        let k = fleiss_kappa(&ratings);
        prop_assert!(k <= 1.0 + 1e-12, "kappa {k}");
    }

    #[test]
    fn tokenizer_output_is_lower_alnum(s in ".{0,80}") {
        let tk = ChemTokenizer::new();
        for tok in tk.tokenize(&s) {
            prop_assert!(!tok.is_empty());
            prop_assert!(tok.chars().all(|c| c.is_ascii_lowercase() || c.is_ascii_digit()),
                "bad token {tok:?}");
        }
        prop_assert_eq!(tk.count(&s), tk.tokenize(&s).len());
    }

    #[test]
    fn parse_response_never_panics(s in ".{0,200}") {
        let _ = parse_response(&s);
    }

    #[test]
    fn triple_flip_is_involution(s in any::<u32>(), o in any::<u32>(), code in 0u8..10) {
        let t = Triple::new(EntityId(s), Relation::from_code(code), EntityId(o));
        prop_assert_eq!(t.flipped().flipped(), t);
        if s != o {
            prop_assert_ne!(t.flipped().key(), t.key());
        }
    }

    #[test]
    fn inc_beta_monotone_in_x(a in 0.5f64..20.0, b in 0.5f64..20.0,
                              x1 in 0.01f64..0.99, x2 in 0.01f64..0.99) {
        let (lo, hi) = if x1 < x2 { (x1, x2) } else { (x2, x1) };
        prop_assert!(inc_beta(a, b, lo) <= inc_beta(a, b, hi) + 1e-9);
    }

    #[test]
    fn welch_p_value_in_unit_interval(
        a in prop::collection::vec(-100.0f64..100.0, 2..30),
        b in prop::collection::vec(-100.0f64..100.0, 2..30),
    ) {
        if let Some(t) = welch_t_test(&a, &b) {
            prop_assert!((0.0..=1.0).contains(&t.p_value), "p {}", t.p_value);
        }
    }

    #[test]
    fn dbscan_labels_are_dense(rows in prop::collection::vec(
        prop::collection::vec(-5.0f32..5.0, 3), 1..60), eps in 0.1f32..3.0) {
        let m = Matrix::from_rows(rows);
        let labels = dbscan(&m, eps, 3, Metric::Euclidean);
        let clusters = clusters_from_labels(&labels);
        // Every non-noise label < n_clusters; clusters non-empty.
        for c in &clusters {
            prop_assert!(!c.is_empty());
        }
        for l in labels.iter().flatten() {
            prop_assert!(*l < clusters.len());
        }
    }
}

// Sweep-lowering invariants: identical sub-configs must lower to
// identical job labels (= dedup keys), so the structure-shared plan's
// refcounts are exactly "how many variants reach this job". Checked by
// comparing a full grid's plan against each variant planned alone.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn sweep_plan_refcounts_match_per_variant_lowering(
        seeds in prop::collection::hash_set(0u64..50, 1usize..3),
        scenarios in prop::collection::hash_set(0usize..5, 1usize..4),
        paradigm_mask in 1u8..8,
        combo in 0usize..4,
        both_oracles in any::<bool>(),
    ) {
        use kcb::core::experiment::sweep::{plan, GridSpec, Paradigm};
        use kcb::core::lab::LabConfig;

        let (model, adapt) = [
            ("random", "naive"),
            ("glove", "none"),
            ("glove-chem", "task-oriented"),
            ("pubmedbert", "none"),
        ][combo];
        let grid = GridSpec {
            seeds: { let mut v: Vec<u64> = seeds.into_iter().collect(); v.sort_unstable(); v },
            scales: vec![],
            scenarios: {
                let mut v: Vec<usize> = scenarios.into_iter().collect();
                v.sort_unstable();
                v
            },
            paradigms: Paradigm::ALL
                .into_iter()
                .enumerate()
                .filter(|(i, _)| paradigm_mask & (1 << i) != 0)
                .map(|(_, p)| p)
                .collect(),
            oracles: if both_oracles {
                vec!["gpt-4-sim", "biogpt-mini"]
            } else {
                vec!["gpt-4-sim"]
            },
            model,
            adapt,
        };
        let base = LabConfig::tiny();
        let full = plan(&base, &grid);
        let variants = grid.expand(&base);
        prop_assert_eq!(full.variant_ids.len(), variants.len());

        // Plan each variant alone; count how many solo plans contain
        // each label.
        let mut reach: std::collections::HashMap<String, usize> =
            std::collections::HashMap::new();
        for v in &variants {
            let solo = GridSpec {
                seeds: vec![v.seed],
                scales: vec![v.scale],
                scenarios: vec![v.scenario],
                paradigms: vec![v.paradigm],
                oracles: vec![v.oracle.unwrap_or("gpt-4-sim")],
                model: v.model,
                adapt: v.adapt,
            };
            for job in plan(&base, &solo).jobs {
                *reach.entry(job.label).or_insert(0) += 1;
            }
        }
        // Same label universe, and every refcount is exactly the number
        // of variants whose solo lowering produced that label.
        prop_assert_eq!(full.jobs.len(), reach.len());
        for job in &full.jobs {
            prop_assert_eq!(
                Some(&job.refs),
                reach.get(&job.label),
                "label {} refs {} vs solo plans",
                &job.label,
                job.refs
            );
        }
        let shared = full.jobs.iter().filter(|j| j.refs >= 2).count();
        prop_assert_eq!(shared, full.shared_jobs);
    }
}
