//! Cross-crate integration: ontology → OBO round trip → corpora →
//! embeddings → task datasets → learners, exercising the whole stack the
//! way a downstream user would.

use kcb::core::adapt::Adaptation;
use kcb::core::compose::{dataset_matrix, TokenAvgEncoder};
use kcb::core::dataset::Split;
use kcb::core::task::{TaskDataset, TaskKind};
use kcb::embed::{word2vec, EmbeddingModel};
use kcb::ml::metrics::BinaryMetrics;
use kcb::ml::{RandomForest, RandomForestConfig};
use kcb::ontology::{obo, SyntheticConfig, SyntheticGenerator};
use kcb::text::corpus::tokenize_corpus;
use kcb::text::{ChemTokenizer, CorpusConfig, DomainCorpusGenerator};

#[test]
fn obo_round_trip_preserves_task_generation() {
    let o = SyntheticGenerator::new(SyntheticConfig { scale: 0.004, seed: 5 })
        .unwrap()
        .generate();
    let mut buf = Vec::new();
    obo::write(&o, &mut buf).unwrap();
    let o2 = obo::read(std::io::Cursor::new(&buf)).unwrap();

    // Task datasets generated from the round-tripped graph have the same
    // sizes (ids may be relabelled, so compare counts).
    for task in TaskKind::ALL {
        let d1 = TaskDataset::generate(&o, task, 9);
        let d2 = TaskDataset::generate(&o2, task, 9);
        assert_eq!(d1.n_positive(), d2.n_positive(), "{task:?} positives");
        let diff = d1.n_negative().abs_diff(d2.n_negative());
        assert!(
            diff <= d1.n_negative() / 20 + 2,
            "{task:?} negatives drifted: {} vs {}",
            d1.n_negative(),
            d2.n_negative()
        );
    }
}

#[test]
fn full_supervised_pipeline_from_scratch() {
    // Everything from raw ontology to evaluated model, no Lab sugar.
    let o = SyntheticGenerator::new(SyntheticConfig { scale: 0.006, seed: 6 })
        .unwrap()
        .generate();
    let docs = DomainCorpusGenerator::new(
        &o,
        CorpusConfig { n_docs: 120, seed: 6, ..CorpusConfig::default() },
    )
    .generate();
    let sentences = tokenize_corpus(&docs, &ChemTokenizer::new());
    let w2v = word2vec::train(
        "w2v",
        &sentences,
        &word2vec::Word2VecConfig { dim: 24, epochs: 2, ..word2vec::Word2VecConfig::default() },
    );
    assert!(w2v.vocab_size() > 100, "corpus should cover entity tokens");

    let dataset = TaskDataset::generate(&o, TaskKind::RandomNegatives, 6);
    let split = Split::nine_to_one(&dataset, 6);
    let enc = TokenAvgEncoder::new(&w2v, Adaptation::Naive);
    let (x, y) = dataset_matrix(&o, &split.train[..1_000.min(split.train.len())], &enc);
    let forest = RandomForest::fit(
        &x,
        &y,
        &RandomForestConfig { n_trees: 20, ..RandomForestConfig::default() },
    );
    let (xt, yt) = dataset_matrix(&o, &split.test, &enc);
    let preds = forest.predict_batch(&xt);
    let m = BinaryMetrics::from_predictions(&preds, &yt);
    assert!(m.f1 > 0.75, "end-to-end F1 {:.3}", m.f1);
}

#[test]
fn domain_embeddings_carry_ontology_signal() {
    // The corpus generator must give domain embeddings task-relevant
    // semantics: a triple's subject tokens should be closer to its true
    // object's tokens than to a random entity's tokens, on average.
    let o = SyntheticGenerator::new(SyntheticConfig { scale: 0.006, seed: 8 })
        .unwrap()
        .generate();
    let docs = DomainCorpusGenerator::new(
        &o,
        CorpusConfig { n_docs: 200, seed: 8, ..CorpusConfig::default() },
    )
    .generate();
    let sentences = tokenize_corpus(&docs, &ChemTokenizer::new());
    let w2v = word2vec::train(
        "w2v",
        &sentences,
        &word2vec::Word2VecConfig { dim: 24, epochs: 3, ..word2vec::Word2VecConfig::default() },
    );
    // Without token filtering, high-frequency locant tokens drag every
    // leaf representation together — the exact §2.7 pathology — so the
    // signal must be measured the way the adapted models consume it:
    // naive adaptation, and a distractor matched in kind (another
    // triple's object, not an arbitrary entity).
    let enc = TokenAvgEncoder::new(&w2v, Adaptation::Naive);

    let mut rng = kcb::util::Rng::seed(8);
    let triples = o.triples();
    let mut related = 0.0f64;
    let mut unrelated = 0.0f64;
    let mut n = 0;
    let mut buf_s = vec![0.0f32; 24];
    let mut buf_o = vec![0.0f32; 24];
    let mut buf_r = vec![0.0f32; 24];
    use kcb::core::compose::ComponentEncoder;
    for _ in 0..600 {
        let t = triples[rng.below(triples.len())];
        let distractor = triples[rng.below(triples.len())].object;
        if distractor == t.object {
            continue;
        }
        enc.encode_component(o.name(t.subject), &mut buf_s);
        enc.encode_component(o.name(t.object), &mut buf_o);
        enc.encode_component(o.name(distractor), &mut buf_r);
        related += f64::from(kcb::ml::linalg::cosine(&buf_s, &buf_o));
        unrelated += f64::from(kcb::ml::linalg::cosine(&buf_s, &buf_r));
        n += 1;
    }
    let (related, unrelated) = (related / n as f64, unrelated / n as f64);
    assert!(
        related > unrelated + 0.01,
        "related sim {related:.3} should exceed unrelated {unrelated:.3}"
    );
}
