//! Reproducibility: every artifact is a pure function of (config, seed).

use kcb::core::experiment;
use kcb::core::lab::{Lab, LabConfig};

#[test]
fn same_seed_reproduces_artifacts_bit_for_bit() {
    let run = |seed: u64| -> (serde_json::Value, serde_json::Value) {
        let mut cfg = LabConfig::tiny();
        cfg.seed = seed;
        let lab = Lab::new(cfg);
        let t2 = experiment::run(&lab, "table2").unwrap();
        let t3a = experiment::run(&lab, "table3a").unwrap();
        (t2.json, t3a.json)
    };
    let (a2, a3) = run(42);
    let (b2, b3) = run(42);
    assert_eq!(a2, b2, "table2 must be deterministic");
    assert_eq!(a3, b3, "table3a must be deterministic");
    let (c2, _) = run(43);
    assert_ne!(a2, c2, "different seeds must differ");
}

#[test]
fn ontology_generation_is_seed_pure() {
    use kcb::ontology::{SyntheticConfig, SyntheticGenerator};
    let gen = |seed| {
        SyntheticGenerator::new(SyntheticConfig { scale: 0.01, seed })
            .unwrap()
            .generate()
    };
    let a = gen(1);
    let b = gen(1);
    assert_eq!(a.n_entities(), b.n_entities());
    assert_eq!(a.triples(), b.triples());
    for (x, y) in a.entities().iter().zip(b.entities()) {
        assert_eq!(x.name, y.name);
    }
}
