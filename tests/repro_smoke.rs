//! Smoke test: every paper artifact (and every ablation) builds at tiny
//! scale, renders non-trivially and carries a JSON payload. This is the
//! `repro all --fast` path run as a test, so a regression in any
//! experiment runner fails CI rather than the user's terminal.

use kcb::core::experiment::{self, ABLATION_IDS, ALL_IDS, EXTENSION_IDS, SUMMARY_ID};
use kcb::core::lab::{Lab, LabConfig};

#[test]
fn every_artifact_builds_at_tiny_scale() {
    let lab = Lab::new(LabConfig::tiny());
    let all = ALL_IDS
        .iter()
        .chain(ABLATION_IDS)
        .chain(EXTENSION_IDS)
        .chain(std::iter::once(&SUMMARY_ID));
    for id in all {
        let artifact = experiment::run(&lab, id)
            .unwrap_or_else(|| panic!("artifact id {id} not registered"));
        let text = artifact.render();
        assert!(text.len() > 80, "{id} rendered suspiciously little:\n{text}");
        assert!(
            !artifact.json.is_null(),
            "{id} is missing its JSON payload"
        );
        assert!(!artifact.tables.is_empty(), "{id} has no tables");
    }
}

#[test]
fn unknown_artifact_ids_are_rejected() {
    let lab = Lab::new(LabConfig::tiny());
    assert!(experiment::run(&lab, "table99").is_none());
    assert!(experiment::run(&lab, "").is_none());
}

#[test]
fn artifact_ids_are_unique_and_lowercase_resolvable() {
    let set: std::collections::HashSet<&str> =
        ALL_IDS.iter().chain(ABLATION_IDS).chain(EXTENSION_IDS).copied().collect();
    assert_eq!(set.len(), ALL_IDS.len() + ABLATION_IDS.len() + EXTENSION_IDS.len());
}
