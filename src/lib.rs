//! # kcb — ChEBI Knowledge-Curation Benchmark
//!
//! A pure-Rust reproduction of *"Benchmarking and Analyzing In-context
//! Learning, Fine-tuning and Supervised Learning for Biomedical Knowledge
//! Curation"* (VLDB 2024): three triple-classification curation tasks over
//! a ChEBI-like ontology, solved by three NLP paradigms — in-context
//! learning with (simulated and real-mini) LLMs, fine-tuning a mini-BERT,
//! and supervised learning over six embedding families — plus the paper's
//! hypothesis-driven embedding adaptations and five data-availability
//! scenarios.
//!
//! This meta-crate re-exports the workspace's public API. Start with
//! [`core::lab::Lab`] (the one-stop experiment environment) or the
//! `repro` binary (`cargo run --release -p kcb-bench --bin repro -- all`).
//!
//! ```
//! use kcb::core::lab::{Lab, LabConfig};
//! use kcb::core::task::TaskKind;
//!
//! let lab = Lab::new(LabConfig::tiny());
//! let dataset = lab.task(TaskKind::RandomNegatives);
//! assert!(dataset.n_positive() > 0);
//! ```

/// Shared utilities: deterministic RNG, errors, table formatting.
pub use kcb_util as util;

/// ChEBI-like ontology substrate: graph model, synthetic generator, OBO.
pub use kcb_ontology as ontology;

/// Tokenizers, vocabularies and synthetic corpora.
pub use kcb_text as text;

/// Embedding models: random, word2vec, GloVe, fastText.
pub use kcb_embed as embed;

/// From-scratch ML: random forest, LSTM, metrics, DBSCAN, statistics.
pub use kcb_ml as ml;

/// Mini transformers: BERT-style encoder and GPT-style decoder.
pub use kcb_lm as lm;

/// In-context learning: prompts, parsing, oracles, protocol.
pub use kcb_icl as icl;

/// The benchmark itself: tasks, adaptations, paradigms, experiments.
pub use kcb_core as core;
