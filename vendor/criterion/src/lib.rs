//! In-tree stand-in for the slice of `criterion` this workspace uses (see
//! `vendor/README.md`).
//!
//! Matches criterion's calling convention for `harness = false` bench
//! targets: `cargo bench` passes `--bench`, which enables real
//! measurement; any other invocation (notably `cargo test`, which builds
//! and runs bench targets) runs each benchmark body once as a smoke test.
//! Measurement is a simple calibrated loop reporting the mean wall-clock
//! time per iteration — no statistics, plots or saved baselines.

use std::time::{Duration, Instant};

/// Re-export for convenience (criterion's `black_box` is std's).
pub use std::hint::black_box;

/// Top-level benchmark driver.
pub struct Criterion {
    bench_mode: bool,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        let mut bench_mode = false;
        let mut filter = None;
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--bench" => bench_mode = true,
                "--test" => bench_mode = false,
                a if !a.starts_with('-') => filter = Some(a.to_string()),
                _ => {}
            }
        }
        Self { bench_mode, filter }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 100,
            throughput: None,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let (bench_mode, skip) = self.plan(&id);
        run_one(&id, bench_mode, skip, 100, None, f);
        self
    }

    fn plan(&self, id: &str) -> (bool, bool) {
        let skip = self.filter.as_deref().is_some_and(|f| !id.contains(f));
        (self.bench_mode, skip)
    }
}

/// A measurement of how much work one iteration performs.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Identifier for a parameterized benchmark.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter`.
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        Self { id: format!("{}/{}", function.into(), parameter) }
    }

    /// Just the parameter (the group supplies the function name).
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        Self { id: parameter.to_string() }
    }
}

/// A group of benchmarks sharing a name prefix and settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the target number of samples (scales measuring time).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Declares per-iteration throughput, reported alongside timing.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into());
        let (bench_mode, skip) = self.criterion.plan(&full);
        run_one(&full, bench_mode, skip, self.sample_size, self.throughput, f);
        self
    }

    /// Runs one parameterized benchmark in the group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.id);
        let (bench_mode, skip) = self.criterion.plan(&full);
        run_one(&full, bench_mode, skip, self.sample_size, self.throughput, |b| f(b, input));
        self
    }

    /// Ends the group (kept for API compatibility; groups also end on drop).
    pub fn finish(self) {}
}

/// Passed to each benchmark body; `iter` performs the measurement.
pub struct Bencher {
    mode: Mode,
    elapsed: Duration,
    iters: u64,
}

enum Mode {
    /// Run the body once, untimed (cargo test).
    Smoke,
    /// Time `iters` iterations.
    Measure(u64),
}

impl Bencher {
    /// Calls `f` repeatedly and records the elapsed wall-clock time.
    pub fn iter<T, F: FnMut() -> T>(&mut self, mut f: F) {
        match self.mode {
            Mode::Smoke => {
                black_box(f());
                self.iters = 1;
            }
            Mode::Measure(iters) => {
                let start = Instant::now();
                for _ in 0..iters {
                    black_box(f());
                }
                self.elapsed = start.elapsed();
                self.iters = iters;
            }
        }
    }
}

fn run_one<F>(id: &str, bench_mode: bool, skip: bool, sample_size: usize, tp: Option<Throughput>, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    if skip {
        return;
    }
    if !bench_mode {
        // Smoke mode (cargo test): run once so the body is exercised.
        let mut b = Bencher { mode: Mode::Smoke, elapsed: Duration::ZERO, iters: 0 };
        f(&mut b);
        return;
    }
    // Calibrate: time a single iteration, then pick an iteration count
    // targeting ~sample_size * 2ms of total measurement, capped for very
    // slow bodies.
    let mut b = Bencher { mode: Mode::Measure(1), elapsed: Duration::ZERO, iters: 0 };
    f(&mut b);
    let per_iter = b.elapsed.max(Duration::from_nanos(20));
    let budget = Duration::from_millis(2).mul_f64(sample_size as f64);
    let iters = (budget.as_nanos() / per_iter.as_nanos()).clamp(1, 1_000_000) as u64;
    let mut b = Bencher { mode: Mode::Measure(iters), elapsed: Duration::ZERO, iters: 0 };
    f(&mut b);
    let mean = b.elapsed.as_secs_f64() / b.iters.max(1) as f64;
    let mut line = format!("{id:<55} time: {}", fmt_time(mean));
    if let Some(tp) = tp {
        let (amount, unit) = match tp {
            Throughput::Bytes(n) => (n as f64, "MiB/s"),
            Throughput::Elements(n) => (n as f64, "Melem/s"),
        };
        if mean > 0.0 {
            line.push_str(&format!("  ({:.1} {unit})", amount / mean / 1_048_576.0));
        }
    }
    println!("{line}");
}

fn fmt_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} µs", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

/// Bundles benchmark functions into a group runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name(c: &mut $crate::Criterion) {
            $( $target(c); )+
        }
    };
}

/// Emits `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::default();
            $( $group(&mut c); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_mode_runs_body_once() {
        let mut c = Criterion { bench_mode: false, filter: None };
        let mut runs = 0u32;
        let mut g = c.benchmark_group("g");
        g.sample_size(10).bench_function("f", |b| b.iter(|| runs += 1));
        g.finish();
        assert_eq!(runs, 1);
    }

    #[test]
    fn measure_mode_times_iterations() {
        let mut c = Criterion { bench_mode: true, filter: Some("match-nothing".into()) };
        let mut runs = 0u32;
        c.bench_function("skipped", |b| b.iter(|| runs += 1));
        assert_eq!(runs, 0, "filter must skip non-matching benches");
        let mut c = Criterion { bench_mode: true, filter: None };
        c.bench_function("timed", |b| b.iter(|| black_box(3u64.pow(7))));
    }

    #[test]
    fn benchmark_ids_compose() {
        assert_eq!(BenchmarkId::new("f", 3).id, "f/3");
        assert_eq!(BenchmarkId::from_parameter("task1").id, "task1");
    }
}
