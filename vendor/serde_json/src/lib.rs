//! In-tree stand-in for `serde_json` (this workspace builds without a
//! registry — see `vendor/README.md`).
//!
//! The [`Value`]/[`Number`] tree, its accessors, indexing and rendering
//! all live on the vendored `serde` crate; this layer re-exports them and
//! adds the format-level entry points the workspace calls: the [`json!`]
//! macro, [`to_value`], and [`to_string`] / [`to_string_pretty`].

pub use serde::{Number, Value};

use std::fmt;

/// Serialization error. The vendored projection is total, so this is never
/// actually produced; it exists so call sites keep serde_json's `Result`
/// shape (`to_value(&x).expect("serializable")`).
#[derive(Debug)]
pub struct Error(());

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("JSON serialization error")
    }
}

impl std::error::Error for Error {}

/// Converts any [`serde::Serialize`] value to a [`Value`].
pub fn to_value<T: serde::Serialize>(value: T) -> Result<Value, Error> {
    Ok(value.to_json())
}

/// Compact JSON text.
pub fn to_string<T: serde::Serialize>(value: &T) -> Result<String, Error> {
    Ok(value.to_json().render_json(None))
}

/// Pretty JSON text, 2-space indented (serde_json's default style).
pub fn to_string_pretty<T: serde::Serialize>(value: &T) -> Result<String, Error> {
    Ok(value.to_json().render_json(Some(2)))
}

/// Builds a [`Value`] from JSON-looking syntax.
///
/// Supports the workspace's usage: object literals with string-literal
/// keys and expression values, array literals of expressions, `null`, and
/// a bare serializable expression. (Real serde_json also allows nested
/// `{...}`/`[...]` literals as values; write `json!({...})` explicitly
/// and pass it as the value expression for those.)
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($elem:expr),* $(,)? ]) => {
        $crate::Value::Array(vec![ $( $crate::to_value(&$elem).expect("serializable") ),* ])
    };
    ({ $($key:literal : $val:expr),* $(,)? }) => {
        $crate::Value::Object(vec![
            $( (($key).to_string(), $crate::to_value(&$val).expect("serializable")) ),*
        ])
    };
    ($other:expr) => { $crate::to_value(&$other).expect("serializable") };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_macro_builds_objects_and_arrays() {
        let name = "glove";
        let v = json!({"model": name, "f1": 0.5, "n": 3usize});
        assert_eq!(v["model"], "glove");
        assert_eq!(v["f1"].as_f64(), Some(0.5));
        assert_eq!(v["n"].as_u64(), Some(3));
        assert!(v["missing"].is_null());
        let arr = json!([1usize, 2usize]);
        assert_eq!(arr[1].as_u64(), Some(2));
        assert_eq!(arr[9], Value::Null);
    }

    #[test]
    fn pretty_printing_matches_serde_json_style() {
        let v = json!({"a": 1usize, "b": [true, false]});
        assert_eq!(
            to_string_pretty(&v).unwrap(),
            "{\n  \"a\": 1,\n  \"b\": [\n    true,\n    false\n  ]\n}"
        );
        assert_eq!(to_string(&v).unwrap(), "{\"a\":1,\"b\":[true,false]}");
    }

    #[test]
    fn floats_render_shortest_with_trailing_point_zero() {
        assert_eq!(to_string(&1.0f64).unwrap(), "1.0");
        assert_eq!(to_string(&0.125f64).unwrap(), "0.125");
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
    }

    #[test]
    fn loose_comparisons() {
        let v = json!({"pass": true, "model": "x", "n": 2usize});
        assert!(v["pass"] == true);
        assert!(v["model"] == "x");
        assert!(v["n"] == 2u64);
    }

    #[test]
    fn string_escaping() {
        assert_eq!(to_string(&"a\"b\\c\nd").unwrap(), "\"a\\\"b\\\\c\\nd\"");
    }

    #[test]
    fn display_is_compact_json() {
        let v = json!({"k": "v"});
        assert_eq!(format!("{v}"), "{\"k\":\"v\"}");
    }
}
