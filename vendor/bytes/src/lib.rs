//! In-tree stand-in for the slice of `bytes` this workspace uses (see
//! `vendor/README.md`): `BytesMut` as a growable little-endian writer,
//! `Bytes` as a frozen byte container, `Buf` as a little-endian cursor
//! over `&[u8]`. No ref-counted zero-copy splitting — the embedding store
//! writes a buffer once and reads it linearly.

use std::ops::{Deref, Index};

/// An immutable byte container (here: a plain owned buffer).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Bytes {
    data: Vec<u8>,
}

impl Bytes {
    /// Number of bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Self { data }
    }
}

/// A growable byte buffer with little-endian put methods.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        Self { data: Vec::with_capacity(cap) }
    }

    /// Creates an empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of bytes written.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Converts into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes { data: self.data }
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

/// Write-side trait (little-endian subset).
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a `u32`, little-endian.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a `u64`, little-endian.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends an `f32`, little-endian.
    fn put_f32_le(&mut self, v: f32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends an `f64`, little-endian.
    fn put_f64_le(&mut self, v: f64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

/// Read-side cursor trait (little-endian subset). Getters panic when the
/// buffer is too short, exactly like the real crate — callers bound-check
/// with [`Buf::remaining`] first.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// Skips `n` bytes.
    fn advance(&mut self, n: usize);

    /// Copies out `dst.len()` bytes.
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Reads a `u32`, little-endian.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    /// Reads a `u64`, little-endian.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }

    /// Reads an `f32`, little-endian.
    fn get_f32_le(&mut self) -> f32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        f32::from_le_bytes(b)
    }

    /// Reads an `f64`, little-endian.
    fn get_f64_le(&mut self) -> f64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        f64::from_le_bytes(b)
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn advance(&mut self, n: usize) {
        *self = &self[n..];
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        let (head, tail) = self.split_at(dst.len());
        dst.copy_from_slice(head);
        *self = tail;
    }
}

impl Index<usize> for Bytes {
    type Output = u8;

    fn index(&self, i: usize) -> &u8 {
        &self.data[i]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn little_endian_round_trip() {
        let mut w = BytesMut::with_capacity(32);
        w.put_slice(b"KCBE");
        w.put_u32_le(7);
        w.put_u64_le(u64::MAX - 1);
        w.put_f32_le(-1.5);
        let frozen = w.freeze();
        let mut r: &[u8] = &frozen;
        assert_eq!(&r[..4], b"KCBE");
        r.advance(4);
        assert_eq!(r.get_u32_le(), 7);
        assert_eq!(r.get_u64_le(), u64::MAX - 1);
        assert_eq!(r.get_f32_le(), -1.5);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    #[should_panic]
    fn short_reads_panic() {
        let mut r: &[u8] = &[1, 2];
        let _ = r.get_u32_le();
    }
}
