//! In-tree stand-in for the slice of `proptest` this workspace uses (see
//! `vendor/README.md`).
//!
//! Same macro surface — `proptest! { #![proptest_config(..)] #[test] fn
//! name(x in strategy) { .. } }`, `prop_assert*`, `prop_assume!` — backed
//! by a deterministic splitmix64 generator. Differences from the real
//! crate: no shrinking (a failing case reports its inputs via the assert
//! message instead of a minimized counterexample) and regex string
//! strategies support the `atom{m,n}` shapes used in-tree rather than
//! full regex syntax.

use std::collections::{HashMap, HashSet};
use std::hash::Hash;
use std::ops::Range;

/// Per-test configuration (`with_cases` is the only knob used in-tree).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Runs each property `cases` times.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// Why a test case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` filtered the inputs; the case is skipped.
    Reject,
    /// An assertion failed.
    Fail(String),
}

impl TestCaseError {
    /// An assertion failure with a message.
    pub fn fail(msg: String) -> Self {
        TestCaseError::Fail(msg)
    }
}

/// Deterministic generator state (splitmix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A stream for one test case: fixed base seed + case index.
    pub fn for_case(case: u64) -> Self {
        Self { state: 0x9e37_79b9_7f4a_7c15 ^ case.wrapping_mul(0xbf58_476d_1ce4_e5b9) }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, n)`; `n` must be non-zero.
    pub fn below(&mut self, n: u64) -> u64 {
        // Multiply-shift; bias is negligible for test generation.
        ((u128::from(self.next_u64()) * u128::from(n)) >> 64) as u64
    }

    /// Uniform in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// A value generator. Unlike real proptest there is no intermediate value
/// tree: `generate` yields the final value directly (no shrinking).
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Derives a dependent strategy from each drawn value.
    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap { base: self, f }
    }

    /// Maps drawn values.
    fn prop_map<T, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> T,
    {
        Map { base: self, f }
    }

    /// Type-erases the strategy (for signature compatibility).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy { inner: Box::new(self) }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    base: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.base.generate(rng)).generate(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S, T, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (self.f)(self.base.generate(rng))
    }
}

/// A heap-allocated strategy.
pub struct BoxedStrategy<T> {
    inner: Box<dyn Strategy<Value = T>>,
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        self.inner.generate(rng)
    }
}

/// Always yields a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Full-range strategy for a type (`any::<u64>()` etc.).
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy { _marker: std::marker::PhantomData }
}

/// See [`any`].
pub struct AnyStrategy<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Types with a canonical full-range generator.
pub trait Arbitrary {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        (rng.unit_f64() * 2.0 - 1.0) as f32 * 1e6
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        (rng.unit_f64() * 2.0 - 1.0) * 1e12
    }
}

macro_rules! impl_range_strategy_int {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}
impl_range_strategy_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f32> {
    type Value = f32;

    fn generate(&self, rng: &mut TestRng) -> f32 {
        self.start + (rng.unit_f64() as f32) * (self.end - self.start)
    }
}

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A: 0);
impl_tuple_strategy!(A: 0, B: 1);
impl_tuple_strategy!(A: 0, B: 1, C: 2);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3);

/// String-literal regex strategies, e.g. `"[a-z]{1,12}"` or `".{0,200}"`.
///
/// Grammar: a sequence of `atom{m,n}` / `atom{m}` / bare `atom` where an
/// atom is `.` (any printable char, ASCII-biased with some multi-byte
/// code points) or a `[...]` class of literal chars and `a-z` ranges —
/// the subset of regex syntax the in-tree properties use.
impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let chars: Vec<char> = self.chars().collect();
        let mut out = String::new();
        let mut i = 0;
        while i < chars.len() {
            // Parse one atom.
            let class: Option<Vec<char>> = match chars[i] {
                '.' => {
                    i += 1;
                    None
                }
                '[' => {
                    let mut set = Vec::new();
                    i += 1;
                    while i < chars.len() && chars[i] != ']' {
                        if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                            let (lo, hi) = (chars[i] as u32, chars[i + 2] as u32);
                            for c in lo..=hi {
                                set.push(char::from_u32(c).expect("class range"));
                            }
                            i += 3;
                        } else {
                            set.push(chars[i]);
                            i += 1;
                        }
                    }
                    assert!(i < chars.len(), "unterminated class in {self:?}");
                    i += 1;
                    Some(set)
                }
                c => {
                    i += 1;
                    Some(vec![c])
                }
            };
            // Parse an optional {m,n} / {m} quantifier.
            let (lo, hi) = if i < chars.len() && chars[i] == '{' {
                i += 1;
                let mut nums = [0usize, 0];
                let mut which = 0;
                let mut seen_comma = false;
                while i < chars.len() && chars[i] != '}' {
                    if chars[i] == ',' {
                        which = 1;
                        seen_comma = true;
                    } else {
                        let d = chars[i].to_digit(10).expect("quantifier digit") as usize;
                        nums[which] = nums[which] * 10 + d;
                    }
                    i += 1;
                }
                assert!(i < chars.len(), "unterminated quantifier in {self:?}");
                i += 1;
                if seen_comma {
                    (nums[0], nums[1])
                } else {
                    (nums[0], nums[0])
                }
            } else {
                (1, 1)
            };
            let len = lo + rng.below((hi - lo + 1) as u64) as usize;
            for _ in 0..len {
                match &class {
                    Some(set) => out.push(set[rng.below(set.len() as u64) as usize]),
                    None => out.push(printable_char(rng)),
                }
            }
        }
        out
    }
}

/// `.`-atom characters: printable ASCII most of the time, with a tail of
/// multi-byte / exotic code points so text pipelines see real Unicode.
fn printable_char(rng: &mut TestRng) -> char {
    const EXOTIC: &[char] =
        &['α', 'β', 'Ω', 'é', 'ß', '中', '文', '🧪', '∅', '√', '°', 'µ', '‐', '\u{0301}'];
    if rng.below(10) < 8 {
        char::from_u32(0x20 + rng.below(0x5f) as u32).expect("ascii printable")
    } else {
        EXOTIC[rng.below(EXOTIC.len() as u64) as usize]
    }
}

/// Collection and option strategy constructors (`prop::collection::vec`,
/// `prop::option::of`, ...).
pub mod prop {
    /// Sized collections.
    pub mod collection {
        use super::super::*;

        /// A size bound: an exact `usize` or a `Range<usize>`.
        pub trait IntoSize {
            /// Draws a concrete size.
            fn pick(&self, rng: &mut TestRng) -> usize;
        }

        impl IntoSize for usize {
            fn pick(&self, _rng: &mut TestRng) -> usize {
                *self
            }
        }

        impl IntoSize for Range<usize> {
            fn pick(&self, rng: &mut TestRng) -> usize {
                assert!(self.start < self.end, "empty size range");
                self.start + rng.below((self.end - self.start) as u64) as usize
            }
        }

        /// `Vec` of drawn elements.
        pub fn vec<S: Strategy, Z: IntoSize>(element: S, size: Z) -> VecStrategy<S, Z> {
            VecStrategy { element, size }
        }

        /// See [`vec`].
        pub struct VecStrategy<S, Z> {
            element: S,
            size: Z,
        }

        impl<S: Strategy, Z: IntoSize> Strategy for VecStrategy<S, Z> {
            type Value = Vec<S::Value>;

            fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let n = self.size.pick(rng);
                (0..n).map(|_| self.element.generate(rng)).collect()
            }
        }

        /// `HashSet` of distinct drawn elements. Draws until the set
        /// reaches the chosen size, bounded by a generous retry budget
        /// (small domains yield smaller sets instead of hanging).
        pub fn hash_set<S, Z>(element: S, size: Z) -> HashSetStrategy<S, Z>
        where
            S: Strategy,
            S::Value: Eq + Hash,
            Z: IntoSize,
        {
            HashSetStrategy { element, size }
        }

        /// See [`hash_set`].
        pub struct HashSetStrategy<S, Z> {
            element: S,
            size: Z,
        }

        impl<S, Z> Strategy for HashSetStrategy<S, Z>
        where
            S: Strategy,
            S::Value: Eq + Hash,
            Z: IntoSize,
        {
            type Value = HashSet<S::Value>;

            fn generate(&self, rng: &mut TestRng) -> HashSet<S::Value> {
                let n = self.size.pick(rng);
                let mut out = HashSet::with_capacity(n);
                let mut budget = 20 * n + 100;
                while out.len() < n && budget > 0 {
                    out.insert(self.element.generate(rng));
                    budget -= 1;
                }
                out
            }
        }

        /// `HashMap` with distinct drawn keys.
        pub fn hash_map<K, V, Z>(key: K, value: V, size: Z) -> HashMapStrategy<K, V, Z>
        where
            K: Strategy,
            K::Value: Eq + Hash,
            V: Strategy,
            Z: IntoSize,
        {
            HashMapStrategy { key, value, size }
        }

        /// See [`hash_map`].
        pub struct HashMapStrategy<K, V, Z> {
            key: K,
            value: V,
            size: Z,
        }

        impl<K, V, Z> Strategy for HashMapStrategy<K, V, Z>
        where
            K: Strategy,
            K::Value: Eq + Hash,
            V: Strategy,
            Z: IntoSize,
        {
            type Value = HashMap<K::Value, V::Value>;

            fn generate(&self, rng: &mut TestRng) -> HashMap<K::Value, V::Value> {
                let n = self.size.pick(rng);
                let mut out = HashMap::with_capacity(n);
                let mut budget = 20 * n + 100;
                while out.len() < n && budget > 0 {
                    let k = self.key.generate(rng);
                    let v = self.value.generate(rng);
                    out.insert(k, v);
                    budget -= 1;
                }
                out
            }
        }
    }

    /// Optional values.
    pub mod option {
        use super::super::*;

        /// `Some` with probability 0.8, `None` otherwise.
        pub fn of<S: Strategy>(element: S) -> OptionStrategy<S> {
            OptionStrategy { element }
        }

        /// See [`of`].
        pub struct OptionStrategy<S> {
            element: S,
        }

        impl<S: Strategy> Strategy for OptionStrategy<S> {
            type Value = Option<S::Value>;

            fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
                if rng.below(5) < 4 {
                    Some(self.element.generate(rng))
                } else {
                    None
                }
            }
        }
    }
}

/// Everything a property test file imports.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just,
        ProptestConfig, Strategy,
    };
}

/// Declares property tests. See the crate docs for supported syntax.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!(($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!(($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let cfg: $crate::ProptestConfig = $cfg;
            for case in 0..u64::from(cfg.cases) {
                let mut __proptest_rng = $crate::TestRng::for_case(case);
                $(let $pat = $crate::Strategy::generate(&($strat), &mut __proptest_rng);)+
                let outcome: ::std::result::Result<(), $crate::TestCaseError> = (move || {
                    $body
                    Ok(())
                })();
                match outcome {
                    Ok(()) => {}
                    Err($crate::TestCaseError::Reject) => {}
                    Err($crate::TestCaseError::Fail(msg)) => {
                        panic!("proptest case {case}: {msg}");
                    }
                }
            }
        }
    )*};
}

/// Asserts inside a property, failing the case (not the process) first.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Equality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        if !(*a == *b) {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {:?} == {:?}",
                a, b
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        if !(*a == *b) {
            return Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    }};
}

/// Inequality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        if *a == *b {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {:?} != {:?}",
                a, b
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        if *a == *b {
            return Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    }};
}

/// Filters inputs: a false condition skips the case.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return Err($crate::TestCaseError::Reject);
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn generation_is_deterministic_per_case() {
        let s = prop::collection::vec(0usize..100, 3..10);
        let mut a = crate::TestRng::for_case(7);
        let mut b = crate::TestRng::for_case(7);
        assert_eq!(s.generate(&mut a), s.generate(&mut b));
    }

    #[test]
    fn regex_strategies_honour_class_and_length() {
        let mut rng = crate::TestRng::for_case(1);
        for _ in 0..200 {
            let s = "[a-z0-9]{1,10}".generate(&mut rng);
            assert!((1..=10).contains(&s.chars().count()), "{s:?}");
            assert!(s.chars().all(|c| c.is_ascii_lowercase() || c.is_ascii_digit()));
        }
        let dot = ".{0,80}".generate(&mut rng);
        assert!(dot.chars().count() <= 80);
    }

    #[test]
    fn hash_collections_reach_requested_sizes() {
        let mut rng = crate::TestRng::for_case(3);
        let set = prop::collection::hash_set("[a-z]{1,12}", 1..40).generate(&mut rng);
        assert!(!set.is_empty() && set.len() < 40);
        let map =
            prop::collection::hash_map("[a-z]{1,6}", 1u64..1000, 1..50).generate(&mut rng);
        assert!(!map.is_empty() && map.len() < 50);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn the_macro_itself_runs(x in 0usize..50, flag in any::<bool>(), s in "[a-z]{1,6}") {
            prop_assume!(x != 13);
            prop_assert!(x < 50);
            prop_assert_eq!(flag, flag);
            prop_assert_ne!(s.len(), 0, "unexpected empty {s:?}");
        }
    }
}
