//! Hand-rolled `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the
//! vendored serde facade. No `syn`/`quote`: the input token stream is
//! walked directly, which is enough for the shapes this workspace uses —
//! named-field structs, tuple structs and unit-variant enums, plus the
//! `#[serde(skip)]` field attribute.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives the vendored `serde::Serialize` (JSON-value projection).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match parse(input) {
        Ok(item) => impl_serialize(&item).parse().expect("generated impl parses"),
        Err(e) => format!("compile_error!({e:?});").parse().unwrap(),
    }
}

/// Derives the vendored `serde::Deserialize` marker.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    match parse(input) {
        Ok(item) => format!("impl ::serde::Deserialize for {} {{}}", item.name)
            .parse()
            .expect("generated impl parses"),
        Err(e) => format!("compile_error!({e:?});").parse().unwrap(),
    }
}

enum Shape {
    /// Named fields, each with a skip flag.
    Struct(Vec<(String, bool)>),
    /// Tuple struct with this many fields.
    Tuple(usize),
    /// Enum; each variant records its payload arity (0 = unit).
    Enum(Vec<(String, usize)>),
}

struct Item {
    name: String,
    shape: Shape,
}

fn parse(input: TokenStream) -> Result<Item, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    // Skip outer attributes and visibility.
    loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => i += 2,
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
            _ => break,
        }
    }
    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected struct/enum, got {other:?}")),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected type name, got {other:?}")),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            return Err(format!("derive on generic type {name} not supported"));
        }
    }
    let body = match tokens.get(i) {
        Some(TokenTree::Group(g)) => g,
        other => return Err(format!("expected {{...}} or (...) body, got {other:?}")),
    };
    let shape = match (kind.as_str(), body.delimiter()) {
        ("struct", Delimiter::Brace) => Shape::Struct(parse_named_fields(body.stream())?),
        ("struct", Delimiter::Parenthesis) => Shape::Tuple(count_tuple_fields(body.stream())),
        ("enum", Delimiter::Brace) => Shape::Enum(parse_variants(body.stream())?),
        other => return Err(format!("unsupported item shape {other:?}")),
    };
    Ok(Item { name, shape })
}

/// Parses `{ attrs? vis? name: Type, ... }`, tracking `#[serde(skip)]`.
fn parse_named_fields(stream: TokenStream) -> Result<Vec<(String, bool)>, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let mut skip = false;
        // Attributes.
        while let Some(TokenTree::Punct(p)) = tokens.get(i) {
            if p.as_char() != '#' {
                break;
            }
            if let Some(TokenTree::Group(g)) = tokens.get(i + 1) {
                let text = g.stream().to_string().replace(' ', "");
                if text.starts_with("serde(") && text.contains("skip") {
                    skip = true;
                }
            }
            i += 2;
        }
        // Visibility.
        if let Some(TokenTree::Ident(id)) = tokens.get(i) {
            if id.to_string() == "pub" {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
        }
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => return Err(format!("expected field name, got {other:?}")),
        };
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => return Err(format!("expected ':' after {name}, got {other:?}")),
        }
        // Skip the type: everything until a comma outside angle brackets.
        let mut angle = 0i32;
        while let Some(t) = tokens.get(i) {
            if let TokenTree::Punct(p) = t {
                match p.as_char() {
                    '<' => angle += 1,
                    '>' => angle -= 1,
                    ',' if angle == 0 => break,
                    _ => {}
                }
            }
            i += 1;
        }
        i += 1; // past the comma (or end)
        fields.push((name, skip));
    }
    Ok(fields)
}

/// Counts top-level comma-separated fields of a tuple struct body.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut angle = 0i32;
    let mut fields = 0usize;
    let mut any = false;
    for t in stream {
        any = true;
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => angle += 1,
                '>' => angle -= 1,
                ',' if angle == 0 => fields += 1,
                _ => {}
            }
        }
    }
    if any {
        fields + 1
    } else {
        0
    }
}

/// Parses `{ A, B(T), C(T, U), ... }` (unit and tuple variants).
fn parse_variants(stream: TokenStream) -> Result<Vec<(String, usize)>, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        while let Some(TokenTree::Punct(p)) = tokens.get(i) {
            if p.as_char() != '#' {
                break;
            }
            i += 2;
        }
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => return Err(format!("expected variant, got {other:?}")),
        };
        i += 1;
        let mut arity = 0;
        if let Some(TokenTree::Group(g)) = tokens.get(i) {
            match g.delimiter() {
                Delimiter::Parenthesis => arity = count_tuple_fields(g.stream()),
                other => return Err(format!("unsupported variant body {other:?} on {name}")),
            }
            i += 1;
        }
        match tokens.get(i) {
            None => {}
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => i += 1,
            Some(TokenTree::Punct(p)) if p.as_char() == '=' => {
                // Discriminant: `A = 3,` — skip to the comma.
                while let Some(t) = tokens.get(i) {
                    if matches!(t, TokenTree::Punct(p) if p.as_char() == ',') {
                        break;
                    }
                    i += 1;
                }
                i += 1;
            }
            other => return Err(format!("unexpected token after variant {name}: {other:?}")),
        }
        variants.push((name, arity));
    }
    Ok(variants)
}

fn impl_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.shape {
        Shape::Struct(fields) => {
            let mut s = String::from("let mut obj = Vec::new();\n");
            for (f, skip) in fields {
                if *skip {
                    continue;
                }
                s.push_str(&format!(
                    "obj.push(({f:?}.to_string(), ::serde::Serialize::to_json(&self.{f})));\n"
                ));
            }
            s.push_str("::serde::Value::Object(obj)");
            s
        }
        Shape::Tuple(1) => "::serde::Serialize::to_json(&self.0)".to_string(),
        Shape::Tuple(n) => {
            let mut s = String::from("::serde::Value::Array(vec![");
            for k in 0..*n {
                s.push_str(&format!("::serde::Serialize::to_json(&self.{k}),"));
            }
            s.push_str("])");
            s
        }
        Shape::Enum(variants) => {
            // serde's externally-tagged representation: unit variants are
            // strings, payload variants `{"Variant": payload}`.
            let mut s = String::from("match self {\n");
            for (v, arity) in variants {
                match arity {
                    0 => s.push_str(&format!(
                        "{name}::{v} => ::serde::Value::String({v:?}.to_string()),\n"
                    )),
                    1 => s.push_str(&format!(
                        "{name}::{v}(f0) => ::serde::Value::Object(vec![({v:?}.to_string(), \
                         ::serde::Serialize::to_json(f0))]),\n"
                    )),
                    n => {
                        let binds: Vec<String> = (0..*n).map(|k| format!("f{k}")).collect();
                        let elems: Vec<String> = binds
                            .iter()
                            .map(|b| format!("::serde::Serialize::to_json({b})"))
                            .collect();
                        s.push_str(&format!(
                            "{name}::{v}({}) => ::serde::Value::Object(vec![({v:?}.to_string(), \
                             ::serde::Value::Array(vec![{}]))]),\n",
                            binds.join(","),
                            elems.join(",")
                        ));
                    }
                }
            }
            s.push('}');
            s
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n fn to_json(&self) -> ::serde::Value {{\n {body}\n }}\n}}"
    )
}
