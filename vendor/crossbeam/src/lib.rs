//! In-tree stand-in for the slice of `crossbeam` this workspace uses:
//! `crossbeam::thread::scope` (see `vendor/README.md`).
//!
//! Since Rust 1.63 the standard library provides structured scoped threads,
//! so this shim simply adapts `std::thread::scope` to crossbeam's calling
//! convention (a `Result`-returning `scope` whose closure receives `&Scope`
//! with a `spawn` method taking `FnOnce(&Scope)`).

/// Scoped threads.
pub mod thread {
    /// A scope for spawning borrowing threads (wraps [`std::thread::Scope`]).
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// A handle to a scoped thread (wraps [`std::thread::ScopedJoinHandle`]).
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Waits for the thread to finish, yielding its result.
        pub fn join(self) -> std::thread::Result<T> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a thread that may borrow from outside the scope. The
        /// closure receives the scope again so workers can spawn siblings
        /// (crossbeam's signature; rarely used but part of the contract).
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle { inner: inner.spawn(move || f(&Scope { inner })) }
        }
    }

    /// Creates a scope; all threads spawned within are joined before it
    /// returns. Unlike crossbeam, a panicking child propagates on join via
    /// std's scope semantics, so the `Err` arm is never produced — the
    /// `Result` exists for signature compatibility.
    pub fn scope<'env, F, R>(f: F) -> std::thread::Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }

    #[cfg(test)]
    mod tests {
        #[test]
        fn scoped_threads_borrow_and_join() {
            let data = vec![1u32, 2, 3, 4];
            let mut out = vec![0u32; 4];
            super::scope(|s| {
                for (slot, v) in out.chunks_mut(1).zip(&data) {
                    s.spawn(move |_| slot[0] = v * 10);
                }
            })
            .expect("scope");
            assert_eq!(out, vec![10, 20, 30, 40]);
        }
    }
}
