//! In-tree stand-in for the slice of `parking_lot` this workspace uses:
//! `Mutex` and `RwLock` with non-poisoning, guard-returning lock methods
//! (see `vendor/README.md`). Backed by `std::sync`; a poisoned std lock
//! (panicked holder) falls through to the inner value, matching
//! parking_lot's "no poisoning" contract.

use std::sync::{
    Mutex as StdMutex, MutexGuard as StdMutexGuard, RwLock as StdRwLock,
    RwLockReadGuard as StdReadGuard, RwLockWriteGuard as StdWriteGuard,
};

/// A mutual-exclusion lock (parking_lot API: `lock()` returns the guard
/// directly, no `Result`).
#[derive(Default, Debug)]
pub struct Mutex<T: ?Sized> {
    inner: StdMutex<T>,
}

/// RAII guard for [`Mutex`].
pub type MutexGuard<'a, T> = StdMutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Self { inner: StdMutex::new(value) }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader-writer lock (parking_lot API: `read()`/`write()` return guards
/// directly, no `Result`).
#[derive(Default, Debug)]
pub struct RwLock<T: ?Sized> {
    inner: StdRwLock<T>,
}

/// RAII read guard for [`RwLock`].
pub type RwLockReadGuard<'a, T> = StdReadGuard<'a, T>;
/// RAII write guard for [`RwLock`].
pub type RwLockWriteGuard<'a, T> = StdWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        Self { inner: StdRwLock::new(value) }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_guards_mutation() {
        let m = Mutex::new(0u32);
        *m.lock() += 5;
        assert_eq!(*m.lock(), 5);
        assert_eq!(m.into_inner(), 5);
    }

    #[test]
    fn rwlock_shared_and_exclusive() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }
}
