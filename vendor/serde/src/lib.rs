//! In-tree stand-in for the `serde` facade (this workspace builds without
//! a registry — see `vendor/README.md`).
//!
//! The real serde separates data model from format; this workspace only
//! ever serializes to JSON via `serde_json`, so [`Serialize`] is a direct
//! projection onto the JSON [`Value`] tree. `serde_json` re-exports
//! [`Value`] and [`Number`] and layers the `json!` macro and writers on
//! top. [`Deserialize`] is a marker only: the workspace derives it for a
//! few types but never deserializes.

pub use serde_derive::{Deserialize, Serialize};

/// A JSON value tree (re-exported as `serde_json::Value`).
///
/// Objects preserve insertion order (`Vec` of pairs rather than a map) so
/// serialized artifacts are deterministic and diffable.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number.
    Number(Number),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object, in insertion order.
    Object(Vec<(String, Value)>),
}

/// A JSON number: unsigned, signed, or floating point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    /// Non-negative integer.
    U(u64),
    /// Negative integer.
    I(i64),
    /// Floating point.
    F(f64),
}

impl Number {
    /// The number as `f64` (lossy for very large integers, as in serde_json).
    pub fn as_f64(&self) -> f64 {
        match *self {
            Number::U(n) => n as f64,
            Number::I(n) => n as f64,
            Number::F(n) => n,
        }
    }

    /// The number as `u64` if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Number::U(n) => Some(n),
            Number::I(n) if n >= 0 => Some(n as u64),
            _ => None,
        }
    }

    /// The number as `i64` if it is an integer in range.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Number::U(n) => i64::try_from(n).ok(),
            Number::I(n) => Some(n),
            Number::F(_) => None,
        }
    }
}

impl Value {
    /// True for `Value::Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Bool payload, if any.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// String payload, if any.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric payload as `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(n.as_f64()),
            _ => None,
        }
    }

    /// Numeric payload as a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    /// Numeric payload as a signed integer.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i64(),
            _ => None,
        }
    }

    /// Array payload, if any.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// Object payload (insertion-ordered pairs), if any.
    pub fn as_object(&self) -> Option<&Vec<(String, Value)>> {
        match self {
            Value::Object(o) => Some(o),
            _ => None,
        }
    }

    /// Member lookup by key (objects only).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(o) => o.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Renders as JSON text: compact when `indent` is `None`, otherwise
    /// newline-separated with `indent` spaces per level (serde_json's
    /// pretty style). Deterministic: objects keep insertion order and
    /// floats use the shortest round-trip form (integral floats keep a
    /// trailing `.0`, non-finite floats become `null`, as in serde_json).
    pub fn render_json(&self, indent: Option<usize>) -> String {
        let mut out = String::new();
        write_value(&mut out, self, indent, 0);
        out
    }
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(n) => write_number(out, *n),
        Value::String(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(pairs) => {
            if pairs.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_number(out: &mut String, n: Number) {
    use std::fmt::Write;
    match n {
        Number::U(v) => {
            let _ = write!(out, "{v}");
        }
        Number::I(v) => {
            let _ = write!(out, "{v}");
        }
        Number::F(v) => {
            if !v.is_finite() {
                out.push_str("null");
            } else if v == v.trunc() && v.abs() < 1e15 {
                let _ = write!(out, "{v:.1}");
            } else {
                let _ = write!(out, "{v}");
            }
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    use std::fmt::Write;
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Compact JSON — keeps `format!("{v}")` and assert messages readable.
impl std::fmt::Display for Value {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.render_json(None))
    }
}

static NULL: Value = Value::Null;

/// `value["key"]` — `Null` for missing keys / non-objects, like serde_json.
impl std::ops::Index<&str> for Value {
    type Output = Value;

    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

/// `value[idx]` — `Null` out of bounds / non-arrays, like serde_json.
impl std::ops::Index<usize> for Value {
    type Output = Value;

    fn index(&self, idx: usize) -> &Value {
        match self {
            Value::Array(a) => a.get(idx).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

impl PartialEq<bool> for Value {
    fn eq(&self, other: &bool) -> bool {
        self.as_bool() == Some(*other)
    }
}

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<String> for Value {
    fn eq(&self, other: &String) -> bool {
        self.as_str() == Some(other.as_str())
    }
}

impl PartialEq<u64> for Value {
    fn eq(&self, other: &u64) -> bool {
        self.as_u64() == Some(*other)
    }
}

impl PartialEq<i64> for Value {
    fn eq(&self, other: &i64) -> bool {
        self.as_i64() == Some(*other)
    }
}

impl PartialEq<usize> for Value {
    fn eq(&self, other: &usize) -> bool {
        self.as_u64() == Some(*other as u64)
    }
}

impl PartialEq<i32> for Value {
    fn eq(&self, other: &i32) -> bool {
        self.as_i64() == Some(i64::from(*other))
    }
}

impl PartialEq<f64> for Value {
    fn eq(&self, other: &f64) -> bool {
        matches!(self, Value::Number(n) if n.as_f64() == *other)
    }
}

/// Serialization to the JSON data model.
///
/// Matches real serde's derive surface (`#[derive(Serialize)]`,
/// `#[serde(skip)]`, externally-tagged enums) but with a single concrete
/// output type instead of a generic `Serializer`.
pub trait Serialize {
    /// Projects `self` onto a JSON [`Value`].
    fn to_json(&self) -> Value;
}

/// Marker for types the workspace declares deserializable. No
/// deserialization is performed anywhere in-tree; the bound exists so the
/// public API matches the real crate.
pub trait Deserialize: Sized {}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_json(&self) -> Value {
        (**self).to_json()
    }
}

impl Serialize for bool {
    fn to_json(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Serialize for str {
    fn to_json(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for String {
    fn to_json(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Serialize for f32 {
    fn to_json(&self) -> Value {
        Value::Number(Number::F(f64::from(*self)))
    }
}

impl Serialize for f64 {
    fn to_json(&self) -> Value {
        Value::Number(Number::F(*self))
    }
}

macro_rules! impl_ser_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json(&self) -> Value {
                Value::Number(Number::U(*self as u64))
            }
        }
    )*};
}
impl_ser_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json(&self) -> Value {
                let v = *self as i64;
                if v >= 0 {
                    Value::Number(Number::U(v as u64))
                } else {
                    Value::Number(Number::I(v))
                }
            }
        }
    )*};
}
impl_ser_int!(i8, i16, i32, i64, isize);

impl<T: Serialize> Serialize for Option<T> {
    fn to_json(&self) -> Value {
        match self {
            Some(v) => v.to_json(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_json(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_json).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_json(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_json).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_json(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_json).collect())
    }
}

macro_rules! impl_ser_tuple {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_json(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_json()),+])
            }
        }
    };
}
impl_ser_tuple!(A: 0, B: 1);
impl_ser_tuple!(A: 0, B: 1, C: 2);
impl_ser_tuple!(A: 0, B: 1, C: 2, D: 3);

impl Serialize for Value {
    fn to_json(&self) -> Value {
        self.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_and_containers_project_to_json() {
        assert_eq!(true.to_json(), Value::Bool(true));
        assert_eq!(3usize.to_json(), Value::Number(Number::U(3)));
        assert_eq!((-2i64).to_json(), Value::Number(Number::I(-2)));
        assert_eq!(1.5f64.to_json(), Value::Number(Number::F(1.5)));
        assert_eq!(
            vec!["a".to_string()].to_json(),
            Value::Array(vec![Value::String("a".into())])
        );
        assert_eq!(None::<u32>.to_json(), Value::Null);
        assert_eq!(
            ("k".to_string(), 1usize).to_json(),
            Value::Array(vec![Value::String("k".into()), Value::Number(Number::U(1))])
        );
    }
}
