//! Text substrate: tokenizers, vocabularies and synthetic corpora.
//!
//! The paper tokenizes chemical entity names with an NLTK `RegexpTokenizer`
//! configured for chemical nomenclature; [`ChemTokenizer`] reproduces that
//! behaviour. [`wordpiece`] provides a WordPiece subword tokenizer (plus a
//! BPE-style trainer) for the mini-BERT/GPT models in `kcb-lm`. [`corpus`]
//! generates the two synthetic corpora that stand in for data we cannot
//! redistribute: a *domain* corpus verbalised from the ontology (the paper's
//! 7,201 PubMed chemistry papers) and a *generic* corpus (the paper's
//! Common-Crawl-scale GloVe pretraining data). [`freq`] regenerates the
//! paper's Table A5 token-frequency analysis.

pub mod chem_tokenizer;
pub mod corpus;
pub mod freq;
pub mod vocab;
pub mod wordpiece;

pub use chem_tokenizer::ChemTokenizer;
pub use corpus::{CorpusConfig, Document, DomainCorpusGenerator, GenericCorpusGenerator};
pub use vocab::Vocab;
pub use wordpiece::{WordPiece, WordPieceTrainer};
