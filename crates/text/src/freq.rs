//! Token-frequency analysis over triple heads and tails (paper Table A5 and
//! the input to the adaptation algorithms in `kcb-core::adapt`).

use crate::ChemTokenizer;
use kcb_ontology::{Ontology, Triple};
use std::collections::HashMap;

/// Token frequencies observed separately in head (subject) and tail
/// (object) entity names of a triple set.
#[derive(Debug, Clone)]
pub struct TokenFrequency {
    /// `token → count` over head entity names.
    pub head: HashMap<String, u64>,
    /// `token → count` over tail entity names.
    pub tail: HashMap<String, u64>,
}

impl TokenFrequency {
    /// Computes head/tail token frequencies for a triple set. Each entity
    /// occurrence contributes its tokens once per triple, matching the
    /// paper's "tokens ... among positive triple head and tail entities".
    pub fn compute(o: &Ontology, triples: &[Triple], tk: &ChemTokenizer) -> Self {
        let mut head: HashMap<String, u64> = HashMap::new();
        let mut tail: HashMap<String, u64> = HashMap::new();
        let mut buf = Vec::new();
        for t in triples {
            buf.clear();
            tk.tokenize_into(o.name(t.subject), &mut buf);
            for tok in buf.drain(..) {
                *head.entry(tok).or_insert(0) += 1;
            }
            tk.tokenize_into(o.name(t.object), &mut buf);
            for tok in buf.drain(..) {
                *tail.entry(tok).or_insert(0) += 1;
            }
        }
        Self { head, tail }
    }

    /// Combined head+tail frequencies.
    pub fn combined(&self) -> HashMap<String, u64> {
        let mut out = self.head.clone();
        for (t, c) in &self.tail {
            *out.entry(t.clone()).or_insert(0) += c;
        }
        out
    }

    /// Top-`k` most frequent head tokens, descending (ties lexicographic).
    pub fn top_head(&self, k: usize) -> Vec<(String, u64)> {
        top_k(&self.head, k)
    }

    /// Top-`k` most frequent tail tokens, descending.
    pub fn top_tail(&self, k: usize) -> Vec<(String, u64)> {
        top_k(&self.tail, k)
    }

    /// The most frequent quantile of combined tokens — "top 25 % most
    /// frequently seen tokens" in Algorithm 2. `quantile` 0.25 keeps the
    /// top quarter by frequency rank.
    pub fn top_quantile(&self, quantile: f64) -> Vec<String> {
        let combined = self.combined();
        let mut pairs: Vec<(String, u64)> = combined.into_iter().collect();
        pairs.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        let keep = ((pairs.len() as f64) * quantile).ceil() as usize;
        pairs.truncate(keep);
        pairs.into_iter().map(|(t, _)| t).collect()
    }
}

fn top_k(map: &HashMap<String, u64>, k: usize) -> Vec<(String, u64)> {
    let mut pairs: Vec<(String, u64)> = map.iter().map(|(t, c)| (t.clone(), *c)).collect();
    pairs.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    pairs.truncate(k);
    pairs
}

/// Renders the Table A5-style "top 50 tokens in head and tail entities".
pub fn table_a5(o: &Ontology, triples: &[Triple], k: usize) -> kcb_util::fmt::Table {
    let tf = TokenFrequency::compute(o, triples, &ChemTokenizer::new());
    let mut t = kcb_util::fmt::Table::new(
        format!("Top {k} most frequent tokens in head/tail entities (cf. paper Table A5)"),
        &["Position", "Tokens"],
    );
    let join = |v: Vec<(String, u64)>| {
        v.into_iter().map(|(tok, _)| tok).collect::<Vec<_>>().join(", ")
    };
    t.row(vec!["Head".into(), join(tf.top_head(k))]);
    t.row(vec!["Tail".into(), join(tf.top_tail(k))]);
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use kcb_ontology::{Relation, SyntheticConfig, SyntheticGenerator};

    #[test]
    fn head_tokens_are_dominated_by_short_locants() {
        // The paper's key observation (§2.7): head entities are full of
        // short, similar tokens (locants, stereo-descriptors). Our
        // synthetic names must reproduce that or the adaptation experiments
        // are meaningless.
        let o = SyntheticGenerator::new(SyntheticConfig { scale: 0.02, seed: 9 })
            .unwrap()
            .generate();
        let triples: Vec<Triple> = o.triples().to_vec();
        let tf = TokenFrequency::compute(&o, &triples, &ChemTokenizer::new());
        let top_head = tf.top_head(20);
        let short = top_head.iter().filter(|(t, _)| t.len() <= 2).count();
        assert!(short >= 8, "expected ≥8 short tokens in top-20 head, got {short}: {top_head:?}");
    }

    #[test]
    fn tail_tokens_include_class_nouns() {
        let o = SyntheticGenerator::new(SyntheticConfig { scale: 0.02, seed: 9 })
            .unwrap()
            .generate();
        let triples: Vec<Triple> = o.triples().to_vec();
        let tf = TokenFrequency::compute(&o, &triples, &ChemTokenizer::new());
        let tail: Vec<String> = tf.top_tail(50).into_iter().map(|(t, _)| t).collect();
        let class_nouns = [
            "acid", "metabolite", "compound", "agent", "inhibitor", "organic", "hormone",
            "ester", "ketone", "alkaloid", "lactam", "aldehyde", "quinone", "buffer",
        ];
        let hits = class_nouns.iter().filter(|n| tail.contains(&n.to_string())).count();
        assert!(hits >= 5, "expected ≥5 class nouns in top-50 tail, got {hits}: {tail:?}");
    }

    #[test]
    fn top_quantile_keeps_most_frequent() {
        let o = SyntheticGenerator::new(SyntheticConfig { scale: 0.01, seed: 9 })
            .unwrap()
            .generate();
        let triples: Vec<Triple> = o.triples_with_relation(Relation::IsA).collect();
        let tf = TokenFrequency::compute(&o, &triples, &ChemTokenizer::new());
        let q = tf.top_quantile(0.25);
        let combined = tf.combined();
        assert!(!q.is_empty());
        assert!(q.len() <= combined.len() / 4 + 1);
        // Every kept token at least as frequent as any dropped token.
        let kept_min = q.iter().map(|t| combined[t]).min().unwrap();
        let dropped_max = combined
            .iter()
            .filter(|(t, _)| !q.contains(*t))
            .map(|(_, c)| *c)
            .max()
            .unwrap_or(0);
        assert!(kept_min >= dropped_max);
    }

    #[test]
    fn table_renders() {
        let o = SyntheticGenerator::new(SyntheticConfig { scale: 0.005, seed: 9 })
            .unwrap()
            .generate();
        let triples: Vec<Triple> = o.triples().to_vec();
        let s = table_a5(&o, &triples, 10).render();
        assert!(s.contains("Head"));
        assert!(s.contains("Tail"));
    }
}
