//! Token vocabularies with frequency counts.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Dense token id within a [`Vocab`].
pub type TokenId = u32;

/// A frozen token vocabulary: bidirectional token ↔ id mapping plus corpus
/// frequencies, ordered by descending frequency (so low ids = frequent
/// tokens, which the subsampling and Zipf-based logic in `kcb-embed` rely
/// on).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Vocab {
    tokens: Vec<String>,
    counts: Vec<u64>,
    #[serde(skip)]
    index: HashMap<String, TokenId>,
}

impl Vocab {
    /// Builds a vocabulary from token occurrences, keeping tokens seen at
    /// least `min_count` times, sorted by descending frequency (ties broken
    /// lexicographically for determinism).
    pub fn from_counts(counts: HashMap<String, u64>, min_count: u64) -> Self {
        let mut pairs: Vec<(String, u64)> =
            counts.into_iter().filter(|(_, c)| *c >= min_count).collect();
        pairs.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        let mut vocab = Self {
            tokens: Vec::with_capacity(pairs.len()),
            counts: Vec::with_capacity(pairs.len()),
            index: HashMap::with_capacity(pairs.len()),
        };
        for (tok, c) in pairs {
            vocab.index.insert(tok.clone(), vocab.tokens.len() as TokenId);
            vocab.tokens.push(tok);
            vocab.counts.push(c);
        }
        vocab
    }

    /// Counts tokens from an iterator of token streams and builds the
    /// vocabulary.
    pub fn from_streams<'a, I, S>(streams: I, min_count: u64) -> Self
    where
        I: IntoIterator<Item = S>,
        S: IntoIterator<Item = &'a str>,
    {
        let mut counts: HashMap<String, u64> = HashMap::new();
        for stream in streams {
            for tok in stream {
                *counts.entry(tok.to_string()).or_insert(0) += 1;
            }
        }
        Self::from_counts(counts, min_count)
    }

    /// Token id lookup.
    #[inline]
    pub fn id(&self, token: &str) -> Option<TokenId> {
        self.index.get(token).copied()
    }

    /// Token string by id. Panics on out-of-range ids.
    #[inline]
    pub fn token(&self, id: TokenId) -> &str {
        &self.tokens[id as usize]
    }

    /// Corpus frequency by id.
    #[inline]
    pub fn count(&self, id: TokenId) -> u64 {
        self.counts[id as usize]
    }

    /// Number of tokens.
    pub fn len(&self) -> usize {
        self.tokens.len()
    }

    /// Whether the vocabulary is empty.
    pub fn is_empty(&self) -> bool {
        self.tokens.is_empty()
    }

    /// Total token occurrences.
    pub fn total_count(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Iterates `(token, count)` in descending-frequency order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, u64)> {
        self.tokens.iter().map(String::as_str).zip(self.counts.iter().copied())
    }

    /// Rebuilds the internal index (needed after deserialization).
    pub fn reindex(&mut self) {
        self.index = self
            .tokens
            .iter()
            .enumerate()
            .map(|(i, t)| (t.clone(), i as TokenId))
            .collect();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vocab {
        let streams = [
            vec!["acid", "acid", "acid", "oxan", "2"],
            vec!["acid", "oxan", "rare"],
        ];
        Vocab::from_streams(streams.iter().map(|s| s.iter().copied()), 1)
    }

    #[test]
    fn sorted_by_descending_frequency() {
        let v = sample();
        assert_eq!(v.token(0), "acid");
        assert_eq!(v.count(0), 4);
        assert_eq!(v.len(), 4);
        let counts: Vec<u64> = (0..v.len() as u32).map(|i| v.count(i)).collect();
        assert!(counts.windows(2).all(|w| w[0] >= w[1]));
    }

    #[test]
    fn id_round_trips() {
        let v = sample();
        for i in 0..v.len() as u32 {
            assert_eq!(v.id(v.token(i)), Some(i));
        }
        assert_eq!(v.id("nonexistent"), None);
    }

    #[test]
    fn min_count_filters() {
        let streams = [vec!["a", "a", "b"]];
        let v = Vocab::from_streams(streams.iter().map(|s| s.iter().copied()), 2);
        assert_eq!(v.len(), 1);
        assert_eq!(v.token(0), "a");
    }

    #[test]
    fn ties_broken_lexicographically() {
        let streams = [vec!["zz", "aa"]];
        let v = Vocab::from_streams(streams.iter().map(|s| s.iter().copied()), 1);
        assert_eq!(v.token(0), "aa");
        assert_eq!(v.token(1), "zz");
    }

    #[test]
    fn total_count_sums() {
        assert_eq!(sample().total_count(), 8);
    }

    #[test]
    fn reindex_restores_lookup() {
        let mut v = sample();
        v.index.clear();
        assert_eq!(v.id("acid"), None);
        v.reindex();
        assert_eq!(v.id("acid"), Some(0));
    }
}
