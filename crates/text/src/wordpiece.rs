//! WordPiece subword tokenizer and trainer.
//!
//! The mini-BERT / mini-GPT models in `kcb-lm` (the PubmedBERT and BioGPT
//! stand-ins) need a subword vocabulary, exactly as the originals do. The
//! trainer uses BPE-style greedy pair merging over a word-frequency table —
//! the standard open-source approximation of WordPiece training — and the
//! tokenizer uses greedy longest-match-first with `##` continuation pieces,
//! matching BERT's behaviour.

use std::collections::HashMap;

/// Ids of the five special tokens, fixed at the front of every vocabulary.
pub mod special {
    /// Padding.
    pub const PAD: u32 = 0;
    /// Unknown word.
    pub const UNK: u32 = 1;
    /// Sequence-classification start token.
    pub const CLS: u32 = 2;
    /// Segment separator (also used to join triple components, §2.5).
    pub const SEP: u32 = 3;
    /// Masked-LM mask token.
    pub const MASK: u32 = 4;
    /// Number of special tokens.
    pub const COUNT: usize = 5;
    /// Their string forms, in id order.
    pub const NAMES: [&str; COUNT] = ["[PAD]", "[UNK]", "[CLS]", "[SEP]", "[MASK]"];
}

/// A frozen WordPiece vocabulary + tokenizer.
#[derive(Debug, Clone)]
pub struct WordPiece {
    pieces: Vec<String>,
    index: HashMap<String, u32>,
    max_piece_chars: usize,
}

impl WordPiece {
    /// Builds a tokenizer from piece strings (continuations carry the `##`
    /// prefix). Special tokens are prepended automatically.
    pub fn from_pieces<I: IntoIterator<Item = String>>(pieces: I) -> Self {
        let mut all: Vec<String> = special::NAMES.iter().map(|s| s.to_string()).collect();
        all.extend(pieces);
        let mut index = HashMap::with_capacity(all.len());
        let mut max_piece_chars = 1;
        for (i, p) in all.iter().enumerate() {
            max_piece_chars = max_piece_chars.max(p.trim_start_matches("##").chars().count());
            index.entry(p.clone()).or_insert(i as u32);
        }
        Self { pieces: all, index, max_piece_chars }
    }

    /// Vocabulary size including specials.
    pub fn vocab_size(&self) -> usize {
        self.pieces.len()
    }

    /// Piece string by id. Panics on out-of-range ids.
    pub fn piece(&self, id: u32) -> &str {
        &self.pieces[id as usize]
    }

    /// Id of a piece string.
    pub fn piece_id(&self, piece: &str) -> Option<u32> {
        self.index.get(piece).copied()
    }

    /// Encodes one word with greedy longest-match-first. Appends piece ids;
    /// a word with any un-matchable remainder encodes as a single `[UNK]`.
    pub fn encode_word(&self, word: &str, out: &mut Vec<u32>) {
        if word.is_empty() {
            return;
        }
        let chars: Vec<char> = word.chars().collect();
        let start_len = out.len();
        let mut pos = 0;
        let mut piece_buf = String::new();
        while pos < chars.len() {
            let mut end = chars.len().min(pos + self.max_piece_chars);
            let mut matched = None;
            while end > pos {
                piece_buf.clear();
                if pos > 0 {
                    piece_buf.push_str("##");
                }
                piece_buf.extend(&chars[pos..end]);
                if let Some(&id) = self.index.get(&piece_buf) {
                    matched = Some(id);
                    break;
                }
                end -= 1;
            }
            match matched {
                Some(id) => {
                    out.push(id);
                    pos = end;
                }
                None => {
                    out.truncate(start_len);
                    out.push(special::UNK);
                    return;
                }
            }
        }
    }

    /// Encodes a sequence of pre-tokenized words (no specials added).
    pub fn encode_words<'a, I: IntoIterator<Item = &'a str>>(&self, words: I) -> Vec<u32> {
        let mut out = Vec::new();
        for w in words {
            self.encode_word(w, &mut out);
        }
        out
    }

    /// Serializes the vocabulary for the checkpoint store. Only the learned
    /// pieces are written — the five specials are structural and re-added by
    /// [`WordPiece::from_pieces`] on load.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = kcb_util::bin::Writer::new();
        w.raw(b"KCBP");
        w.u32(1);
        w.u32((self.pieces.len() - special::COUNT) as u32);
        for p in &self.pieces[special::COUNT..] {
            w.str(p);
        }
        w.into_bytes()
    }

    /// Deserializes a vocabulary written by [`WordPiece::to_bytes`].
    pub fn from_bytes(bytes: &[u8]) -> kcb_util::Result<Self> {
        let mut r = kcb_util::bin::Reader::new(bytes, "wordpiece store");
        r.magic(b"KCBP")?;
        r.version(1)?;
        let n = r.u32()? as usize;
        r.sized(n, 4)?;
        let pieces = (0..n).map(|_| r.str()).collect::<kcb_util::Result<Vec<_>>>()?;
        r.finish()?;
        let wp = Self::from_pieces(pieces);
        for (i, p) in wp.pieces.iter().enumerate() {
            if wp.index.get(p) != Some(&(i as u32)) {
                return Err(kcb_util::Error::parse(
                    "wordpiece store",
                    format!("duplicate piece {p:?} in stored vocabulary"),
                ));
            }
        }
        Ok(wp)
    }

    /// Decodes piece ids back to a readable string (for debugging and the
    /// generative-model output path).
    pub fn decode(&self, ids: &[u32]) -> String {
        let mut out = String::new();
        for &id in ids {
            let p = self.piece(id);
            if let Some(cont) = p.strip_prefix("##") {
                out.push_str(cont);
            } else {
                if !out.is_empty() {
                    out.push(' ');
                }
                out.push_str(p);
            }
        }
        out
    }
}

/// BPE-style WordPiece trainer.
#[derive(Debug, Clone, Copy)]
pub struct WordPieceTrainer {
    /// Target vocabulary size (including special tokens and single chars).
    pub target_vocab: usize,
    /// Stop merging when the best pair occurs fewer times than this.
    pub min_pair_count: u64,
}

impl Default for WordPieceTrainer {
    fn default() -> Self {
        Self { target_vocab: 4_096, min_pair_count: 2 }
    }
}

impl WordPieceTrainer {
    /// Trains a vocabulary from `(word, count)` pairs.
    pub fn train(&self, word_counts: &HashMap<String, u64>) -> WordPiece {
        // Represent each word as a symbol sequence; symbols are piece
        // strings (continuations already carry "##").
        let mut words: Vec<(Vec<String>, u64)> = word_counts
            .iter()
            .filter(|(w, _)| !w.is_empty())
            .map(|(w, &c)| {
                let syms: Vec<String> = w
                    .chars()
                    .enumerate()
                    .map(|(i, ch)| if i == 0 { ch.to_string() } else { format!("##{ch}") })
                    .collect();
                (syms, c)
            })
            .collect();
        // Deterministic iteration order.
        words.sort_by(|a, b| a.0.cmp(&b.0));

        // Seed vocabulary: all single-character pieces.
        let mut vocab: Vec<String> = Vec::new();
        let mut in_vocab: std::collections::HashSet<String> = std::collections::HashSet::new();
        for (syms, _) in &words {
            for s in syms {
                if in_vocab.insert(s.clone()) {
                    vocab.push(s.clone());
                }
            }
        }
        vocab.sort();

        let budget = self.target_vocab.saturating_sub(special::COUNT);
        while vocab.len() < budget {
            // Count adjacent pairs.
            let mut pair_counts: HashMap<(usize, usize), u64> = HashMap::new();
            let mut sym_ids: HashMap<&str, usize> = HashMap::new();
            let mut sym_names: Vec<&str> = Vec::new();
            for (syms, c) in &words {
                for w in syms.windows(2) {
                    let a = *sym_ids.entry(w[0].as_str()).or_insert_with(|| {
                        sym_names.push(w[0].as_str());
                        sym_names.len() - 1
                    });
                    let b = *sym_ids.entry(w[1].as_str()).or_insert_with(|| {
                        sym_names.push(w[1].as_str());
                        sym_names.len() - 1
                    });
                    *pair_counts.entry((a, b)).or_insert(0) += c;
                }
            }
            // Best pair: highest count; ties broken lexicographically on
            // the merged string and then on the (left, right) symbols
            // themselves, so the winner never depends on HashMap iteration
            // order (distinct pairs can share count AND merged string).
            let Some((&(a, b), &best_count)) = pair_counts
                .iter()
                .max_by(|x, y| {
                    x.1.cmp(y.1).then_with(|| {
                        let mx = merge_str(sym_names[x.0 .0], sym_names[x.0 .1]);
                        let my = merge_str(sym_names[y.0 .0], sym_names[y.0 .1]);
                        my.cmp(&mx) // prefer lexicographically smaller
                    })
                    .then_with(|| {
                        (sym_names[y.0 .0], sym_names[y.0 .1])
                            .cmp(&(sym_names[x.0 .0], sym_names[x.0 .1]))
                    })
                })
            else {
                break;
            };
            if best_count < self.min_pair_count {
                break;
            }
            let left = sym_names[a].to_string();
            let right = sym_names[b].to_string();
            let merged = merge_str(&left, &right);
            if in_vocab.insert(merged.clone()) {
                vocab.push(merged.clone());
            }
            // Apply the merge to every word.
            for (syms, _) in &mut words {
                let mut i = 0;
                while i + 1 < syms.len() {
                    if syms[i] == left && syms[i + 1] == right {
                        syms[i] = merged.clone();
                        syms.remove(i + 1);
                    } else {
                        i += 1;
                    }
                }
            }
        }
        WordPiece::from_pieces(vocab)
    }
}

/// Concatenates two pieces, keeping the `##` marker only at the front.
fn merge_str(left: &str, right: &str) -> String {
    format!("{left}{}", right.trim_start_matches("##"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn train_small() -> WordPiece {
        let mut counts = HashMap::new();
        for (w, c) in [
            ("hydroxy", 50u64),
            ("hydroxymethyl", 30),
            ("methyl", 80),
            ("methyloxan", 20),
            ("oxan", 60),
            ("acid", 90),
        ] {
            counts.insert(w.to_string(), c);
        }
        WordPieceTrainer { target_vocab: 200, min_pair_count: 2 }.train(&counts)
    }

    #[test]
    fn special_tokens_have_fixed_ids() {
        let wp = train_small();
        assert_eq!(wp.piece(special::PAD), "[PAD]");
        assert_eq!(wp.piece(special::UNK), "[UNK]");
        assert_eq!(wp.piece(special::CLS), "[CLS]");
        assert_eq!(wp.piece(special::SEP), "[SEP]");
        assert_eq!(wp.piece(special::MASK), "[MASK]");
    }

    #[test]
    fn frequent_words_become_single_pieces() {
        let wp = train_small();
        let mut out = Vec::new();
        wp.encode_word("acid", &mut out);
        assert_eq!(out.len(), 1, "'acid' should be one piece: {out:?}");
        assert_eq!(wp.piece(out[0]), "acid");
    }

    #[test]
    fn compound_words_split_into_pieces() {
        let wp = train_small();
        let ids = wp.encode_words(["hydroxymethyl"]);
        assert!(!ids.contains(&special::UNK));
        // Round-trip through decode removes the piece boundaries.
        assert_eq!(wp.decode(&ids), "hydroxymethyl");
    }

    #[test]
    fn unknown_characters_yield_unk() {
        let wp = train_small();
        let mut out = Vec::new();
        wp.encode_word("zzzz", &mut out); // 'z' never seen
        assert_eq!(out, vec![special::UNK]);
    }

    #[test]
    fn encode_word_is_greedy_longest_match() {
        let wp = WordPiece::from_pieces(
            ["a", "ab", "abc", "##c", "##d", "b", "##b"].iter().map(|s| s.to_string()),
        );
        let mut out = Vec::new();
        wp.encode_word("abcd", &mut out);
        let pieces: Vec<&str> = out.iter().map(|&i| wp.piece(i)).collect();
        assert_eq!(pieces, vec!["abc", "##d"]);
    }

    #[test]
    fn decode_joins_continuations() {
        let wp = WordPiece::from_pieces(["oxa", "##n", "acid"].iter().map(|s| s.to_string()));
        let ids = wp.encode_words(["oxan", "acid"]);
        assert_eq!(wp.decode(&ids), "oxan acid");
    }

    #[test]
    fn trainer_is_deterministic() {
        let a = train_small();
        let b = train_small();
        assert_eq!(a.pieces, b.pieces);
    }

    #[test]
    fn empty_word_is_noop() {
        let wp = train_small();
        let mut out = Vec::new();
        wp.encode_word("", &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn store_round_trip_preserves_ids_and_tokenization() {
        let wp = train_small();
        let bytes = wp.to_bytes();
        let back = WordPiece::from_bytes(&bytes).unwrap();
        assert_eq!(back.pieces, wp.pieces);
        assert_eq!(
            back.encode_words(["oxanyl", "acid", "zzz"]),
            wp.encode_words(["oxanyl", "acid", "zzz"])
        );
    }

    #[test]
    fn store_rejects_truncation_and_version_flip() {
        let bytes = train_small().to_bytes();
        for cut in [0, 4, 8, bytes.len() - 1] {
            assert!(WordPiece::from_bytes(&bytes[..cut]).is_err(), "cut {cut}");
        }
        let mut flipped = bytes.clone();
        flipped[4] ^= 0xff;
        assert!(WordPiece::from_bytes(&flipped).is_err());
    }
}
