//! Chemical-name tokenizer (the paper's NLTK `RegexpTokenizer` stand-in).
//!
//! The paper tokenizes entity labels with a hand-crafted regular expression
//! suited to chemical nomenclature (§2.6). The observable behaviour — the
//! Table A5 token lists — is: labels are lowercased and split on every
//! non-alphanumeric character, keeping digit/letter runs together so that
//! locants (`2`, `17`), stereo-descriptors (`2s`, `6r`) and morphemes
//! (`methyl`, `oxan`, `yl`) each survive as tokens. [`ChemTokenizer`]
//! implements exactly that with a small scanner (no regex engine needed).

/// Tokenizer for chemical entity names and verbalised triples.
///
/// ```
/// use kcb_text::ChemTokenizer;
/// let tk = ChemTokenizer::new();
/// assert_eq!(
///     tk.tokenize("(2S,6R)-4-methyloxan-3-one"),
///     vec!["2s", "6r", "4", "methyloxan", "3", "one"],
/// );
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct ChemTokenizer;

impl ChemTokenizer {
    /// Creates the tokenizer.
    pub fn new() -> Self {
        Self
    }

    /// Splits text into lowercase alphanumeric tokens.
    pub fn tokenize(&self, text: &str) -> Vec<String> {
        let mut out = Vec::new();
        self.tokenize_into(text, &mut out);
        out
    }

    /// Like [`ChemTokenizer::tokenize`] but appends into an existing buffer,
    /// avoiding per-call allocation in hot loops.
    pub fn tokenize_into(&self, text: &str, out: &mut Vec<String>) {
        let mut cur = String::new();
        for ch in text.chars() {
            if ch.is_ascii_alphanumeric() {
                cur.push(ch.to_ascii_lowercase());
            } else if !cur.is_empty() {
                out.push(std::mem::take(&mut cur));
            }
        }
        if !cur.is_empty() {
            out.push(cur);
        }
    }

    /// Number of tokens without materialising them.
    pub fn count(&self, text: &str) -> usize {
        let mut n = 0;
        let mut in_tok = false;
        for ch in text.chars() {
            if ch.is_ascii_alphanumeric() {
                if !in_tok {
                    n += 1;
                    in_tok = true;
                }
            } else {
                in_tok = false;
            }
        }
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splits_iupac_names() {
        let tk = ChemTokenizer::new();
        assert_eq!(
            tk.tokenize("Androsta-4,9(11)-diene-3,17-dione"),
            vec!["androsta", "4", "9", "11", "diene", "3", "17", "dione"]
        );
        assert_eq!(
            tk.tokenize("(2S,6R)-2,3-dihydroxy-oxan-3-one"),
            vec!["2s", "6r", "2", "3", "dihydroxy", "oxan", "3", "one"]
        );
    }

    #[test]
    fn keeps_stereo_descriptors_whole() {
        let tk = ChemTokenizer::new();
        assert_eq!(tk.tokenize("(1R,5S)-x"), vec!["1r", "5s", "x"]);
    }

    #[test]
    fn handles_roles_and_ec_numbers() {
        let tk = ChemTokenizer::new();
        assert_eq!(tk.tokenize("EC 1.1.1.1 inhibitor"), vec!["ec", "1", "1", "1", "1", "inhibitor"]);
        assert_eq!(tk.tokenize("ferroptosis inhibitor"), vec!["ferroptosis", "inhibitor"]);
    }

    #[test]
    fn empty_and_punctuation_only() {
        let tk = ChemTokenizer::new();
        assert!(tk.tokenize("").is_empty());
        assert!(tk.tokenize("()-,--").is_empty());
    }

    #[test]
    fn count_matches_tokenize() {
        let tk = ChemTokenizer::new();
        for s in ["", "water", "(2S)-a-b", "EC 1.2.3.4 agent", "α-D-glucose"] {
            assert_eq!(tk.count(s), tk.tokenize(s).len(), "{s:?}");
        }
    }

    #[test]
    fn non_ascii_is_a_separator() {
        // Real ChEBI mostly uses spelled-out greek ("beta"); raw greek
        // letters act as separators like any other non-ASCII-alnum char.
        let tk = ChemTokenizer::new();
        assert_eq!(tk.tokenize("β-alanine"), vec!["alanine"]);
    }

    #[test]
    fn tokenize_into_appends() {
        let tk = ChemTokenizer::new();
        let mut buf = vec!["pre".to_string()];
        tk.tokenize_into("a-b", &mut buf);
        assert_eq!(buf, vec!["pre", "a", "b"]);
    }
}
