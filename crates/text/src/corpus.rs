//! Synthetic corpora.
//!
//! Two corpora stand in for data the paper used but which cannot be
//! redistributed here:
//!
//! * [`DomainCorpusGenerator`] — the stand-in for the 7,201 PubMed chemistry
//!   full-texts used to train W2V-Chem and GloVe-Chem (§2.3). Documents are
//!   verbalised from ontology triples, so embeddings trained on them acquire
//!   exactly the property the paper relies on: tokens of related entities
//!   co-occur, and siblings share contexts.
//! * [`GenericCorpusGenerator`] — the stand-in for the Common-Crawl-scale
//!   corpus behind generic GloVe. It covers common English plus everyday
//!   class nouns but not chemical morphology, reproducing the Table A4
//!   out-of-vocabulary profile (generic embeddings miss most chemical
//!   tokens).

use crate::ChemTokenizer;
use kcb_ontology::{Ontology, Relation, Triple};
use kcb_util::Rng;

/// One generated document: a title plus body sentences.
#[derive(Debug, Clone)]
pub struct Document {
    /// Title line.
    pub title: String,
    /// Body sentences (without trailing newlines).
    pub sentences: Vec<String>,
}

impl Document {
    /// All text lines: title then body.
    pub fn lines(&self) -> impl Iterator<Item = &str> {
        std::iter::once(self.title.as_str()).chain(self.sentences.iter().map(String::as_str))
    }

    /// The whole document as one string.
    pub fn text(&self) -> String {
        let mut s = self.title.clone();
        for sent in &self.sentences {
            s.push('\n');
            s.push_str(sent);
        }
        s
    }
}

/// Shared corpus-generation settings.
#[derive(Debug, Clone, Copy)]
pub struct CorpusConfig {
    /// Number of documents.
    pub n_docs: usize,
    /// Minimum sentences per document body.
    pub min_sentences: usize,
    /// Maximum sentences per document body.
    pub max_sentences: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for CorpusConfig {
    fn default() -> Self {
        Self { n_docs: 1_200, min_sentences: 18, max_sentences: 50, seed: 42 }
    }
}

/// Tokenizes every line of every document into token sequences — the input
/// format the embedding trainers consume.
pub fn tokenize_corpus(docs: &[Document], tk: &ChemTokenizer) -> Vec<Vec<String>> {
    let mut out = Vec::with_capacity(docs.len() * 24);
    for d in docs {
        for line in d.lines() {
            let toks = tk.tokenize(line);
            if !toks.is_empty() {
                out.push(toks);
            }
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Domain corpus
// ---------------------------------------------------------------------------

/// Generates chemistry-literature-like documents from an ontology.
#[derive(Debug)]
pub struct DomainCorpusGenerator<'a> {
    ontology: &'a Ontology,
    cfg: CorpusConfig,
}

const TITLE_TEMPLATES: &[&str] = &[
    "Synthesis and biological evaluation of {s}",
    "Structural characterization of {s} and related {o}",
    "On the reactivity of {s}",
    "Isolation of {s} from natural sources",
    "A study of {s} as {o}",
    "Quantitative analysis of {s} derivatives",
];

const FILLER: &[&str] = &[
    "The reaction proceeded smoothly at room temperature in high yield.",
    "Spectroscopic data were consistent with the proposed structure.",
    "Purification was achieved by column chromatography on silica gel.",
    "The crude product was recrystallized from ethanol.",
    "Melting points are uncorrected and reported in degrees Celsius.",
    "All reagents were obtained from commercial suppliers and used as received.",
    "The compound showed moderate solubility in aqueous buffer.",
    "Kinetic measurements were performed in triplicate.",
    "Nuclear magnetic resonance spectra were recorded at 400 MHz.",
    "Mass spectrometry confirmed the expected molecular ion.",
    "The assay was validated against a reference standard.",
    "Thin layer chromatography indicated complete conversion.",
];

impl<'a> DomainCorpusGenerator<'a> {
    /// Creates a generator over the given ontology.
    pub fn new(ontology: &'a Ontology, cfg: CorpusConfig) -> Self {
        Self { ontology, cfg }
    }

    /// Verbalises one triple into a sentence.
    pub fn verbalize(o: &Ontology, t: Triple, variant: usize) -> String {
        let s = o.name(t.subject);
        let obj = o.name(t.object);
        match t.relation {
            Relation::IsA => match variant % 3 {
                0 => format!("{s} is a {obj}."),
                1 => format!("As a {obj}, {s} shows characteristic behaviour."),
                _ => format!("{s} belongs to the class of {obj}."),
            },
            Relation::HasRole => match variant % 3 {
                0 => format!("{s} has role {obj}."),
                1 => format!("{s} acts as a {obj} in biological systems."),
                _ => format!("{s} has been characterized as a {obj}."),
            },
            Relation::HasFunctionalParent => {
                format!("{s} is derived from {obj} by functional modification.")
            }
            Relation::IsConjugateBaseOf => format!("{s} is the conjugate base of {obj}."),
            Relation::IsConjugateAcidOf => format!("{s} is the conjugate acid of {obj}."),
            Relation::HasPart => format!("{s} contains {obj} as a constituent part."),
            Relation::IsEnantiomerOf => format!("{s} is the enantiomer of {obj}."),
            Relation::IsTautomerOf => {
                format!("{s} exists in equilibrium with its tautomer {obj}.")
            }
            Relation::HasParentHydride => {
                format!("{s} derives from the parent hydride {obj}.")
            }
            Relation::IsSubstituentGroupFrom => {
                format!("{s} is a substituent group obtained from {obj}.")
            }
        }
    }

    /// Generates the corpus.
    pub fn generate(&self) -> Vec<Document> {
        let o = self.ontology;
        let triples = o.triples();
        assert!(!triples.is_empty(), "cannot generate a corpus from an empty ontology");
        let mut rng = Rng::seed_stream(self.cfg.seed, 0xc0a9);

        // Index triples by subject so each document can focus on one entity
        // neighbourhood — that locality is what gives domain embeddings
        // their task-relevant signal.
        let mut by_subject: Vec<Vec<u32>> = vec![Vec::new(); o.n_entities()];
        for (i, t) in triples.iter().enumerate() {
            by_subject[t.subject.index()].push(i as u32);
        }
        let subjects: Vec<u32> = (0..o.n_entities() as u32)
            .filter(|&e| !by_subject[e as usize].is_empty())
            .collect();

        let mut docs = Vec::with_capacity(self.cfg.n_docs);
        for _ in 0..self.cfg.n_docs {
            let focal = subjects[rng.below(subjects.len())];
            let focal_triples = &by_subject[focal as usize];
            let lead = triples[focal_triples[rng.below(focal_triples.len())] as usize];

            let title_tpl = TITLE_TEMPLATES[rng.below(TITLE_TEMPLATES.len())];
            let title = title_tpl
                .replace("{s}", o.name(lead.subject))
                .replace("{o}", o.name(lead.object));

            let n_sent = rng.range(self.cfg.min_sentences, self.cfg.max_sentences + 1);
            let mut sentences = Vec::with_capacity(n_sent);
            for k in 0..n_sent {
                let roll = rng.f64();
                if roll < 0.45 {
                    // A triple from the focal neighbourhood.
                    let t = triples[focal_triples[rng.below(focal_triples.len())] as usize];
                    sentences.push(Self::verbalize(o, t, k));
                } else if roll < 0.70 {
                    // A random triple from anywhere (global co-occurrence).
                    let t = triples[rng.below(triples.len())];
                    sentences.push(Self::verbalize(o, t, k));
                } else if roll < 0.82 {
                    // Sibling enumeration: ties class members together.
                    let sibs = o.siblings(kcb_ontology::EntityId(focal));
                    if sibs.len() >= 2 {
                        let a = sibs[rng.below(sibs.len())];
                        let b = sibs[rng.below(sibs.len())];
                        sentences.push(format!(
                            "Related compounds include {} and {}.",
                            o.name(a),
                            o.name(b)
                        ));
                    } else {
                        sentences.push(FILLER[rng.below(FILLER.len())].to_string());
                    }
                } else {
                    sentences.push(FILLER[rng.below(FILLER.len())].to_string());
                }
            }
            docs.push(Document { title, sentences });
        }
        docs
    }
}

// ---------------------------------------------------------------------------
// Generic corpus
// ---------------------------------------------------------------------------

const FUNCTION_WORDS: &[&str] = &[
    "the", "of", "and", "a", "to", "in", "is", "was", "that", "for", "it", "with", "as", "on",
    "be", "at", "by", "this", "had", "not", "are", "but", "from", "or", "have", "an", "they",
    "which", "one", "were", "her", "all", "she", "there", "would", "their", "we", "him", "been",
    "has",
];

const CONTENT_WORDS: &[&str] = &[
    "time", "people", "year", "way", "day", "man", "world", "life", "hand", "part", "child",
    "eye", "woman", "place", "work", "week", "case", "point", "government", "company", "number",
    "group", "problem", "fact", "money", "water", "history", "business", "night", "question",
    "story", "power", "country", "house", "service", "friend", "father", "mother", "area",
    "market", "health", "system", "program", "city", "community", "name", "president", "team",
    "minute", "idea", "kid", "body", "information", "parent", "face", "others", "level", "office",
    "door", "art", "war", "party", "result", "change", "morning", "reason",
    "research", "girl", "guy", "moment", "air", "teacher", "force", "education", "foot", "boy",
    "age", "policy", "process", "music", "state", "food", "road", "law", "science", "student",
    "value", "model", "paper", "space", "ground", "form", "event", "matter", "center", "table",
    "court", "price", "action", "industry", "plant", "human", "acid", "compound", "agent",
    "organic", "energy", "field", "film", "game", "line", "book", "job", "word", "side", "kind",
    "head", "home", "month", "lot", "right", "study", "school", "room", "mind", "light",
];

/// Generates generic-English-like documents (the Common-Crawl stand-in).
#[derive(Debug)]
pub struct GenericCorpusGenerator {
    cfg: CorpusConfig,
}

impl GenericCorpusGenerator {
    /// Creates a generator.
    pub fn new(cfg: CorpusConfig) -> Self {
        Self { cfg }
    }

    /// Generates the corpus. Word frequencies follow a Zipf profile over
    /// function words, content words and small numbers.
    pub fn generate(&self) -> Vec<Document> {
        let mut rng = Rng::seed_stream(self.cfg.seed, 0x9e4e);
        let mut pool: Vec<&str> = Vec::new();
        pool.extend_from_slice(FUNCTION_WORDS);
        pool.extend_from_slice(CONTENT_WORDS);
        let digits: Vec<String> = (0..21).map(|n| n.to_string()).collect();
        let mut docs = Vec::with_capacity(self.cfg.n_docs);
        for _ in 0..self.cfg.n_docs {
            let n_sent = rng.range(self.cfg.min_sentences, self.cfg.max_sentences + 1);
            let mut sentences = Vec::with_capacity(n_sent);
            for _ in 0..=n_sent {
                let len = rng.range(6, 18);
                let mut words = Vec::with_capacity(len);
                for _ in 0..len {
                    if rng.chance(0.04) {
                        words.push(digits[rng.below(digits.len())].as_str());
                    } else {
                        // Zipf over the pool: low indices far more common.
                        let r = rng.f64();
                        let idx = ((pool.len() as f64) * r * r) as usize;
                        words.push(pool[idx.min(pool.len() - 1)]);
                    }
                }
                sentences.push(format!("{}.", words.join(" ")));
            }
            let title = sentences.pop().expect("at least one sentence");
            docs.push(Document { title, sentences });
        }
        docs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kcb_ontology::{SyntheticConfig, SyntheticGenerator};

    fn ontology() -> Ontology {
        SyntheticGenerator::new(SyntheticConfig { scale: 0.01, seed: 3 })
            .unwrap()
            .generate()
    }

    #[test]
    fn domain_corpus_mentions_entities() {
        let o = ontology();
        let cfg = CorpusConfig { n_docs: 20, ..CorpusConfig::default() };
        let docs = DomainCorpusGenerator::new(&o, cfg).generate();
        assert_eq!(docs.len(), 20);
        // Verbalised relation phrases must appear.
        let all: String = docs.iter().map(|d| d.text()).collect::<Vec<_>>().join("\n");
        assert!(all.contains("is a") || all.contains("belongs to the class"));
        for d in &docs {
            assert!(!d.title.is_empty());
            assert!(d.sentences.len() >= cfg.min_sentences);
            assert!(d.sentences.len() <= cfg.max_sentences);
        }
    }

    #[test]
    fn domain_corpus_is_deterministic() {
        let o = ontology();
        let cfg = CorpusConfig { n_docs: 5, ..CorpusConfig::default() };
        let a = DomainCorpusGenerator::new(&o, cfg).generate();
        let b = DomainCorpusGenerator::new(&o, cfg).generate();
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.text(), y.text());
        }
    }

    #[test]
    fn verbalize_covers_all_relations() {
        let o = ontology();
        for r in Relation::ALL {
            if let Some(t) = o.triples_with_relation(r).next() {
                let s = DomainCorpusGenerator::verbalize(&o, t, 0);
                assert!(s.contains(o.name(t.subject)), "{s}");
                assert!(s.ends_with('.'));
            }
        }
    }

    #[test]
    fn generic_corpus_has_no_chemical_morphology() {
        let docs = GenericCorpusGenerator::new(CorpusConfig {
            n_docs: 10,
            ..CorpusConfig::default()
        })
        .generate();
        let tk = ChemTokenizer::new();
        let streams = tokenize_corpus(&docs, &tk);
        assert!(!streams.is_empty());
        for toks in &streams {
            for t in toks {
                assert!(
                    !t.contains("oxan") && !t.contains("methyl"),
                    "generic corpus leaked chemical morphology: {t}"
                );
            }
        }
    }

    #[test]
    fn tokenize_corpus_skips_empty_lines() {
        let docs = vec![Document { title: "--".into(), sentences: vec!["a b".into()] }];
        let streams = tokenize_corpus(&docs, &ChemTokenizer::new());
        assert_eq!(streams, vec![vec!["a".to_string(), "b".to_string()]]);
    }
}
