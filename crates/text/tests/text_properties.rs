//! Property tests: tokenizer totality, WordPiece round trips, vocab order.

use kcb_text::{ChemTokenizer, Vocab, WordPieceTrainer};
use proptest::prelude::*;
use std::collections::HashMap;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn tokenizer_total_and_consistent(s in ".{0,200}") {
        let tk = ChemTokenizer::new();
        let toks = tk.tokenize(&s);
        prop_assert_eq!(toks.len(), tk.count(&s));
        // Tokenizing the joined tokens is a fixed point.
        let joined = toks.join(" ");
        prop_assert_eq!(tk.tokenize(&joined), toks);
    }

    #[test]
    fn wordpiece_roundtrips_trained_words(words in prop::collection::hash_set("[a-z]{1,12}", 1..40)) {
        let counts: HashMap<String, u64> = words.iter().map(|w| (w.clone(), 5u64)).collect();
        let wp = WordPieceTrainer { target_vocab: 2_000, min_pair_count: 1 }.train(&counts);
        for w in &words {
            let ids = wp.encode_words([w.as_str()]);
            prop_assert!(!ids.contains(&kcb_text::wordpiece::special::UNK),
                "trained word {w} must encode");
            prop_assert_eq!(wp.decode(&ids), w.clone());
        }
    }

    #[test]
    fn vocab_frequency_order(counts in prop::collection::hash_map("[a-z]{1,6}", 1u64..1000, 1..50)) {
        let v = Vocab::from_counts(counts.clone(), 1);
        prop_assert_eq!(v.len(), counts.len());
        for i in 1..v.len() as u32 {
            prop_assert!(v.count(i - 1) >= v.count(i));
        }
        for (tok, c) in &counts {
            let id = v.id(tok).expect("token present");
            prop_assert_eq!(v.count(id), *c);
        }
    }
}
