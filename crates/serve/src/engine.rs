//! The batching engine: a bounded request queue drained by worker threads
//! into micro-batches.
//!
//! Admission control is the queue bound: [`Engine::submit`] on a full
//! queue replies `overloaded` immediately (typed shed, counted) instead of
//! queueing unboundedly — memory stays bounded no matter how fast clients
//! push. Accepted requests wait on a condvar'd `VecDeque`; each worker
//! drains up to `batch_max` at a time and groups the slice by operation so
//! the hot kinds run through the batched kernels:
//!
//! - `nn` → [`Snapshot::nearest_batch`] — one pass over the vocabulary
//!   serves the whole group (grouped further by `(int8, k)`);
//! - `classify` → [`Snapshot::classify_batch`] — one scratch vector, no
//!   per-request allocation;
//! - `bert` → a *thread-local* [`MiniBert`] (rebuilt per worker from the
//!   sealed weights, since the model itself is `!Send`) scoring the whole
//!   group through `predict_proba_batch`'s packed-minibatch kernels.
//!
//! Every kind is byte-identical to its serial reference path (snapshot
//! contract), so batching and multi-threading never change reply bytes —
//! `serve-bench` asserts this with a checksum, not a hope. The live
//! telemetry plane ([`Metrics`], [`FlightRecorder`]) observes the request
//! flow but never touches reply rendering, keeping that contract intact.
//!
//! [`Engine::shutdown`] performs a graceful drain: workers finish the
//! queued backlog before exiting, then the flight recorder flushes its
//! rings so the last moments of traffic survive the process.
//!
//! `workers: 0` is a legal configuration — nothing drains, which is how
//! the backpressure tests fill a tiny queue deterministically.

use crate::flight::{FlightConfig, FlightRecord, FlightRecorder};
use crate::metrics::Metrics;
use crate::protocol::{self, Op, Request, StatsReply};
use kcb_core::snapshot::Snapshot;
use kcb_lm::MiniBert;
use kcb_obs::live::HistSnapshot;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::Sender;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

/// Engine sizing knobs.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Worker threads draining the queue (0 = drain never, for tests).
    pub workers: usize,
    /// Bounded queue capacity; submissions beyond it are shed.
    pub queue_cap: usize,
    /// Largest micro-batch one worker drains at once.
    pub batch_max: usize,
    /// Flight-recorder sizing and flush destination.
    pub flight: FlightConfig,
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self { workers: 4, queue_cap: 4096, batch_max: 32, flight: FlightConfig::default() }
    }
}

/// Monotonic engine counters, readable at any time.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Requests answered by workers.
    pub served: u64,
    /// Requests shed with an `overloaded` reply.
    pub shed: u64,
    /// Requests currently queued.
    pub queue_depth: usize,
}

struct Job {
    req: Request,
    tx: Sender<String>,
    /// When `submit` admitted the request (the engine epoch when timing
    /// is disabled, so no clock read happens per request).
    arrival: Instant,
}

struct Inner {
    snap: Arc<Snapshot>,
    queue: Mutex<VecDeque<Job>>,
    ready: Condvar,
    stop: AtomicBool,
    queue_cap: usize,
    batch_max: usize,
    metrics: Metrics,
    flight: FlightRecorder,
    /// Next drained-batch id (1-based; 0 marks "never batched" records).
    batch_seq: AtomicU64,
    /// Latched on while the queue is shedding; the off→on transition
    /// flushes the flight recorder so the lead-up to overload is on disk.
    in_overload: AtomicBool,
}

/// The running engine; dropping it without [`Engine::shutdown`] detaches
/// the workers (they exit once told to stop), so call `shutdown` for a
/// graceful drain.
pub struct Engine {
    inner: Arc<Inner>,
    workers: Vec<JoinHandle<()>>,
}

impl Engine {
    /// Starts `cfg.workers` draining threads over `snap`.
    pub fn start(snap: Arc<Snapshot>, cfg: &EngineConfig) -> Self {
        let inner = Arc::new(Inner {
            snap,
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            stop: AtomicBool::new(false),
            queue_cap: cfg.queue_cap.max(1),
            batch_max: cfg.batch_max.max(1),
            metrics: Metrics::new(),
            flight: FlightRecorder::new(cfg.flight.clone()),
            batch_seq: AtomicU64::new(0),
            in_overload: AtomicBool::new(false),
        });
        let workers = (0..cfg.workers)
            .map(|w| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("kcb-serve-{w}"))
                    .spawn(move || worker_loop(&inner))
                    .expect("spawn serve worker")
            })
            .collect();
        Self { inner, workers }
    }

    /// Admits `req` or sheds it. A shed request still gets a reply — the
    /// typed `overloaded` line — through `tx`, so clients never hang on a
    /// full server.
    pub fn submit(&self, req: Request, tx: Sender<String>) {
        let m = &self.inner.metrics;
        m.count_verb(&req.op);
        let arrival = if m.timing() { Instant::now() } else { m.epoch() };
        {
            let mut q = self.inner.queue.lock().expect("queue lock");
            if q.len() < self.inner.queue_cap {
                q.push_back(Job { req, tx, arrival });
                m.queue_depth.set(q.len() as i64);
                drop(q);
                self.inner.ready.notify_one();
                if self.inner.in_overload.load(Ordering::Relaxed) {
                    // Capacity is back; re-arm the transition flush.
                    self.inner.in_overload.store(false, Ordering::Relaxed);
                }
                return;
            }
        }
        m.shed.add(1);
        kcb_obs::counter("serve.shed", 1);
        if m.timing() {
            self.inner.flight.record(FlightRecord {
                id: req.id,
                op: req.op.name(),
                arrival_us: m.since_us(arrival),
                queue_us: 0,
                batch: 0,
                batch_size: 0,
                latency_us: 0,
                outcome: "shed",
            });
        }
        if !self.inner.in_overload.swap(true, Ordering::Relaxed) {
            // First shed of this overload episode: preserve the lead-up.
            let _ = self.inner.flight.flush("overload");
        }
        let _ = tx.send(protocol::render_overloaded(req.id));
    }

    /// Current counters.
    pub fn stats(&self) -> EngineStats {
        EngineStats {
            served: self.inner.metrics.served.get(),
            shed: self.inner.metrics.shed.get(),
            queue_depth: self.inner.queue.lock().expect("queue lock").len(),
        }
    }

    /// Everything the `stats` admin verb reports, read live.
    pub fn stats_reply(&self) -> StatsReply {
        let m = &self.inner.metrics;
        let e2e = m.e2e_us.snapshot();
        StatsReply {
            served: m.served.get(),
            shed: m.shed.get(),
            errors: m.errors.get(),
            queue_depth: self.inner.queue.lock().expect("queue lock").len() as i64,
            in_flight: m.in_flight.get(),
            uptime_s: m.uptime_s(),
            p50_us: e2e.percentile(50.0),
            p95_us: e2e.percentile(95.0),
            p99_us: e2e.percentile(99.0),
            max_us: e2e.max,
            verbs: m.verb_counts(),
        }
    }

    /// The live telemetry plane.
    pub fn metrics(&self) -> &Metrics {
        &self.inner.metrics
    }

    /// The flight recorder.
    pub fn flight(&self) -> &FlightRecorder {
        &self.inner.flight
    }

    /// The snapshot this engine serves.
    pub fn snapshot(&self) -> &Arc<Snapshot> {
        &self.inner.snap
    }

    /// Drained-batch size distribution. Its `sum` is the total number of
    /// batched requests served; its `count` the number of drained batches.
    pub fn batch_histogram(&self) -> HistSnapshot {
        self.inner.metrics.batch_size.snapshot()
    }

    /// Graceful drain: workers finish every queued request, then exit and
    /// the flight recorder flushes. With zero workers any still-queued job
    /// is dropped (its client sees a closed channel). Returns the final
    /// counters.
    pub fn shutdown(self) -> EngineStats {
        self.inner.stop.store(true, Ordering::SeqCst);
        self.inner.ready.notify_all();
        for w in self.workers {
            let _ = w.join();
        }
        let _ = self.inner.flight.flush("shutdown");
        let stats = EngineStats {
            served: self.inner.metrics.served.get(),
            shed: self.inner.metrics.shed.get(),
            queue_depth: 0,
        };
        self.inner.queue.lock().expect("queue lock").clear();
        self.inner.metrics.queue_depth.set(0);
        stats
    }
}

fn worker_loop(inner: &Inner) {
    // The sealed weights rebuild a thread-local model once per worker;
    // scoring through it is byte-identical to the driver-thread model.
    let bert = inner.snap.bert().map(kcb_core::snapshot::BertWeights::instantiate);
    let m = &inner.metrics;
    loop {
        let batch: Vec<Job> = {
            let mut q = inner.queue.lock().expect("queue lock");
            loop {
                if !q.is_empty() {
                    break;
                }
                if inner.stop.load(Ordering::SeqCst) {
                    return;
                }
                q = inner.ready.wait(q).expect("queue lock");
            }
            let n = q.len().min(inner.batch_max);
            let batch: Vec<Job> = q.drain(..n).collect();
            m.queue_depth.set(q.len() as i64);
            batch
        };
        let n = batch.len();
        let batch_id = inner.batch_seq.fetch_add(1, Ordering::Relaxed) + 1;
        m.batch_size.record(n as u64);
        m.in_flight.add(n as i64);
        kcb_obs::series("serve.batch_size", n as f64);
        kcb_obs::counter("serve.requests", n as u64);
        let drained_at = m.timing().then(Instant::now);
        let (outcomes, replies) = serve_batch(&inner.snap, bert.as_ref(), &batch);
        if let Some(t0) = drained_at {
            m.batch_service_us.record(t0.elapsed().as_micros() as u64);
            for (job, outcome) in batch.iter().zip(&outcomes) {
                let queue_us = t0.duration_since(job.arrival).as_micros() as u64;
                let latency_us = job.arrival.elapsed().as_micros() as u64;
                m.queue_wait_us.record(queue_us);
                m.e2e_us.record(latency_us);
                if *outcome == "error" {
                    m.errors.add(1);
                }
                inner.flight.record(FlightRecord {
                    id: job.req.id,
                    op: job.req.op.name(),
                    arrival_us: m.since_us(job.arrival),
                    queue_us,
                    batch: batch_id,
                    batch_size: n as u32,
                    latency_us,
                    outcome,
                });
            }
        } else {
            for outcome in &outcomes {
                if *outcome == "error" {
                    m.errors.add(1);
                }
            }
        }
        m.in_flight.add(-(n as i64));
        m.served.add(n as u64);
        // Replies go out only after every counter for this batch has
        // landed: a client holding its reply can scrape /metrics (or call
        // `stats`) and always observe totals that include that request.
        for (job, reply) in batch.iter().zip(replies) {
            let _ = job.tx.send(reply);
        }
    }
}

/// Answers one drained micro-batch, grouping by operation so the hot
/// kinds go through the batched kernels. Returns one outcome (`"ok"` /
/// `"error"`) and one rendered reply line per job, both index-aligned
/// with `batch`. Replies are *returned*, not sent — `worker_loop`
/// transmits them only after the batch's counters have landed, so a
/// client that holds a reply never observes metrics that predate it.
fn serve_batch(
    snap: &Snapshot,
    bert: Option<&MiniBert>,
    batch: &[Job],
) -> (Vec<&'static str>, Vec<String>) {
    let mut outcomes: Vec<&'static str> = vec!["ok"; batch.len()];
    let mut replies: Vec<String> = vec![String::new(); batch.len()];
    // Group indices by kind. `nn` additionally groups by (int8, k) since
    // the batched scan shares one cutoff.
    let mut nn_groups: Vec<((bool, usize), Vec<usize>)> = Vec::new();
    let mut cls: Vec<usize> = Vec::new();
    let mut brt: Vec<usize> = Vec::new();
    let mut rest: Vec<usize> = Vec::new();
    for (i, job) in batch.iter().enumerate() {
        match &job.req.op {
            Op::Nn { int8, k, .. } => {
                let key = (*int8, *k);
                match nn_groups.iter_mut().find(|(g, _)| *g == key) {
                    Some((_, idx)) => idx.push(i),
                    None => nn_groups.push((key, vec![i])),
                }
            }
            Op::Classify { .. } => cls.push(i),
            Op::Bert { .. } => brt.push(i),
            _ => rest.push(i),
        }
    }

    for ((int8, k), idx) in &nn_groups {
        let _span = kcb_obs::span("serve", "serve.nn");
        let tokens: Vec<&str> = idx
            .iter()
            .map(|&i| match &batch[i].req.op {
                Op::Nn { token, .. } => token.as_str(),
                _ => unreachable!("nn group holds nn ops"),
            })
            .collect();
        let results = snap.nearest_batch(&tokens, *k, *int8);
        for (&i, neighbours) in idx.iter().zip(&results) {
            replies[i] = protocol::render_nn(batch[i].req.id, neighbours);
        }
    }

    if !cls.is_empty() {
        let _span = kcb_obs::span("serve", "serve.classify");
        let triples: Vec<(u32, u8, u32)> = cls
            .iter()
            .map(|&i| match batch[i].req.op {
                Op::Classify { s, r, o } => (s, r, o),
                _ => unreachable!("classify group holds classify ops"),
            })
            .collect();
        for (&i, p) in cls.iter().zip(snap.classify_batch(&triples)) {
            let id = batch[i].req.id;
            replies[i] = match p {
                Some(p) => protocol::render_proba(id, p),
                None => {
                    outcomes[i] = "error";
                    protocol::render_error(id, "bad_request", "invalid triple")
                }
            };
        }
    }

    if !brt.is_empty() {
        let _span = kcb_obs::span("serve", "serve.bert");
        // Requests that can't be scored (no sealed model, bad ids) get
        // their error replies; the rest score as one packed minibatch.
        let mut seqs: Vec<Vec<u32>> = Vec::new();
        let mut scored: Vec<usize> = Vec::new();
        for &i in &brt {
            let job = &batch[i];
            let Op::Bert { s, r, o } = job.req.op else {
                unreachable!("bert group holds bert ops")
            };
            if bert.is_none() {
                outcomes[i] = "error";
                replies[i] = protocol::render_error(
                    job.req.id,
                    "unavailable",
                    "snapshot was frozen without bert",
                );
            } else if let Some(ids) = snap.bert_token_ids(s, r, o) {
                seqs.push(ids);
                scored.push(i);
            } else {
                outcomes[i] = "error";
                replies[i] = protocol::render_error(job.req.id, "bad_request", "invalid triple");
            }
        }
        if let (Some(bert), false) = (bert, scored.is_empty()) {
            let refs: Vec<&[u32]> = seqs.iter().map(Vec::as_slice).collect();
            for (&i, p) in scored.iter().zip(bert.predict_proba_batch(&refs)) {
                replies[i] = protocol::render_proba(batch[i].req.id, p);
            }
        }
    }

    for &i in &rest {
        let reply = answer_simple(snap, &batch[i].req);
        if reply.contains(r#""ok":false"#) {
            outcomes[i] = "error";
        }
        replies[i] = reply;
    }
    (outcomes, replies)
}

/// Answers the non-batched operations (and is the per-op half of the
/// serial reference path). `stats`, `health`, `flight` and `shutdown` are
/// connection-level concerns and render as `unavailable` here.
pub fn answer_simple(snap: &Snapshot, req: &Request) -> String {
    match &req.op {
        Op::Ping => {
            let _span = kcb_obs::span("serve", "serve.ping");
            protocol::render_pong(req.id)
        }
        Op::Artifacts => {
            let _span = kcb_obs::span("serve", "serve.artifact");
            protocol::render_artifact_ids(req.id, &snap.artifact_ids())
        }
        Op::Artifact { name } => {
            let _span = kcb_obs::span("serve", "serve.artifact");
            match snap.artifact(name) {
                Some(payload) => protocol::render_artifact(req.id, payload),
                None => protocol::render_error(
                    req.id,
                    "not_found",
                    &format!("no artifact `{name}` preloaded"),
                ),
            }
        }
        Op::Embed { token } => {
            let _span = kcb_obs::span("serve", "serve.embed");
            let (vector, in_vocab) = snap.embed(token);
            protocol::render_embed(req.id, &vector, in_vocab)
        }
        Op::Stats | Op::Health | Op::Flight | Op::Shutdown => {
            protocol::render_error(req.id, "unavailable", "connection-level op")
        }
        Op::Nn { .. } | Op::Classify { .. } | Op::Bert { .. } => {
            unreachable!("batched ops are served by serve_batch")
        }
    }
}

/// The serial reference: answers one request at a time through the
/// single-query snapshot paths and the *same* renderers as the batched
/// engine. `serve-bench` replays identical workloads through both and
/// checks the reply byte streams are equal.
pub fn answer_serial(snap: &Snapshot, bert: Option<&MiniBert>, req: &Request) -> String {
    match &req.op {
        Op::Nn { token, k, int8 } => {
            let neighbours =
                if *int8 { snap.nearest_int8(token, *k) } else { snap.nearest(token, *k) };
            protocol::render_nn(req.id, &neighbours)
        }
        Op::Classify { s, r, o } => match snap.classify(*s, *r, *o) {
            Some(p) => protocol::render_proba(req.id, p),
            None => protocol::render_error(req.id, "bad_request", "invalid triple"),
        },
        Op::Bert { s, r, o } => match (bert, snap.bert_token_ids(*s, *r, *o)) {
            (None, _) => protocol::render_error(
                req.id,
                "unavailable",
                "snapshot was frozen without bert",
            ),
            (Some(_), None) => {
                protocol::render_error(req.id, "bad_request", "invalid triple")
            }
            (Some(bert), Some(ids)) => {
                protocol::render_proba(req.id, bert.predict_proba(&ids))
            }
        },
        _ => answer_simple(snap, req),
    }
}
