//! The batching engine: a bounded request queue drained by worker threads
//! into micro-batches.
//!
//! Admission control is the queue bound: [`Engine::submit`] on a full
//! queue replies `overloaded` immediately (typed shed, counted) instead of
//! queueing unboundedly — memory stays bounded no matter how fast clients
//! push. Accepted requests wait on a condvar'd `VecDeque`; each worker
//! drains up to `batch_max` at a time and groups the slice by operation so
//! the hot kinds run through the batched kernels:
//!
//! - `nn` → [`Snapshot::nearest_batch`] — one pass over the vocabulary
//!   serves the whole group (grouped further by `(int8, k)`);
//! - `classify` → [`Snapshot::classify_batch`] — one scratch vector, no
//!   per-request allocation;
//! - `bert` → a *thread-local* [`MiniBert`] (rebuilt per worker from the
//!   sealed weights, since the model itself is `!Send`) scoring the whole
//!   group through `predict_proba_batch`'s packed-minibatch kernels.
//!
//! Every kind is byte-identical to its serial reference path (snapshot
//! contract), so batching and multi-threading never change reply bytes —
//! `serve-bench` asserts this with a checksum, not a hope.
//!
//! [`Engine::shutdown`] performs a graceful drain: workers finish the
//! queued backlog before exiting, so every accepted request is answered.
//!
//! `workers: 0` is a legal configuration — nothing drains, which is how
//! the backpressure tests fill a tiny queue deterministically.

use crate::protocol::{self, Op, Request};
use kcb_core::snapshot::Snapshot;
use kcb_lm::MiniBert;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::Sender;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// Engine sizing knobs.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Worker threads draining the queue (0 = drain never, for tests).
    pub workers: usize,
    /// Bounded queue capacity; submissions beyond it are shed.
    pub queue_cap: usize,
    /// Largest micro-batch one worker drains at once.
    pub batch_max: usize,
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self { workers: 4, queue_cap: 4096, batch_max: 32 }
    }
}

/// Monotonic engine counters, readable at any time.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Requests answered by workers.
    pub served: u64,
    /// Requests shed with an `overloaded` reply.
    pub shed: u64,
    /// Requests currently queued.
    pub queue_depth: usize,
}

struct Job {
    req: Request,
    tx: Sender<String>,
}

struct Inner {
    snap: Arc<Snapshot>,
    queue: Mutex<VecDeque<Job>>,
    ready: Condvar,
    stop: AtomicBool,
    queue_cap: usize,
    batch_max: usize,
    served: AtomicU64,
    shed: AtomicU64,
    /// `hist[n]` counts drained batches of size `n` (index 0 unused).
    hist: Vec<AtomicU64>,
}

/// The running engine; dropping it without [`Engine::shutdown`] detaches
/// the workers (they exit once told to stop), so call `shutdown` for a
/// graceful drain.
pub struct Engine {
    inner: Arc<Inner>,
    workers: Vec<JoinHandle<()>>,
}

impl Engine {
    /// Starts `cfg.workers` draining threads over `snap`.
    pub fn start(snap: Arc<Snapshot>, cfg: &EngineConfig) -> Self {
        let batch_max = cfg.batch_max.max(1);
        let inner = Arc::new(Inner {
            snap,
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            stop: AtomicBool::new(false),
            queue_cap: cfg.queue_cap.max(1),
            batch_max,
            served: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            hist: (0..=batch_max).map(|_| AtomicU64::new(0)).collect(),
        });
        let workers = (0..cfg.workers)
            .map(|w| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("kcb-serve-{w}"))
                    .spawn(move || worker_loop(&inner))
                    .expect("spawn serve worker")
            })
            .collect();
        Self { inner, workers }
    }

    /// Admits `req` or sheds it. A shed request still gets a reply — the
    /// typed `overloaded` line — through `tx`, so clients never hang on a
    /// full server.
    pub fn submit(&self, req: Request, tx: Sender<String>) {
        {
            let mut q = self.inner.queue.lock().expect("queue lock");
            if q.len() < self.inner.queue_cap {
                q.push_back(Job { req, tx });
                drop(q);
                self.inner.ready.notify_one();
                return;
            }
        }
        self.inner.shed.fetch_add(1, Ordering::Relaxed);
        kcb_obs::counter("serve.shed", 1);
        let _ = tx.send(protocol::render_overloaded(req.id));
    }

    /// Current counters.
    pub fn stats(&self) -> EngineStats {
        EngineStats {
            served: self.inner.served.load(Ordering::Relaxed),
            shed: self.inner.shed.load(Ordering::Relaxed),
            queue_depth: self.inner.queue.lock().expect("queue lock").len(),
        }
    }

    /// The snapshot this engine serves.
    pub fn snapshot(&self) -> &Arc<Snapshot> {
        &self.inner.snap
    }

    /// Drained-batch size histogram as `(size, count)` rows, non-zero
    /// entries only.
    pub fn batch_histogram(&self) -> Vec<(usize, u64)> {
        self.inner
            .hist
            .iter()
            .enumerate()
            .map(|(n, c)| (n, c.load(Ordering::Relaxed)))
            .filter(|&(_, c)| c > 0)
            .collect()
    }

    /// Graceful drain: workers finish every queued request, then exit.
    /// With zero workers any still-queued job is dropped (its client sees
    /// a closed channel). Returns the final counters.
    pub fn shutdown(self) -> EngineStats {
        self.inner.stop.store(true, Ordering::SeqCst);
        self.inner.ready.notify_all();
        for w in self.workers {
            let _ = w.join();
        }
        let stats = EngineStats {
            served: self.inner.served.load(Ordering::Relaxed),
            shed: self.inner.shed.load(Ordering::Relaxed),
            queue_depth: 0,
        };
        self.inner.queue.lock().expect("queue lock").clear();
        stats
    }
}

fn worker_loop(inner: &Inner) {
    // The sealed weights rebuild a thread-local model once per worker;
    // scoring through it is byte-identical to the driver-thread model.
    let bert = inner.snap.bert().map(kcb_core::snapshot::BertWeights::instantiate);
    loop {
        let batch: Vec<Job> = {
            let mut q = inner.queue.lock().expect("queue lock");
            loop {
                if !q.is_empty() {
                    break;
                }
                if inner.stop.load(Ordering::SeqCst) {
                    return;
                }
                q = inner.ready.wait(q).expect("queue lock");
            }
            let n = q.len().min(inner.batch_max);
            q.drain(..n).collect()
        };
        let n = batch.len();
        inner.hist[n].fetch_add(1, Ordering::Relaxed);
        kcb_obs::series("serve.batch_size", n as f64);
        kcb_obs::counter("serve.requests", n as u64);
        serve_batch(&inner.snap, bert.as_ref(), batch);
        inner.served.fetch_add(n as u64, Ordering::Relaxed);
    }
}

/// Answers one drained micro-batch, grouping by operation so the hot
/// kinds go through the batched kernels. Reply order within the batch is
/// irrelevant — each job carries its own reply channel.
fn serve_batch(snap: &Snapshot, bert: Option<&MiniBert>, batch: Vec<Job>) {
    // Group indices by kind. `nn` additionally groups by (int8, k) since
    // the batched scan shares one cutoff.
    let mut nn_groups: Vec<((bool, usize), Vec<usize>)> = Vec::new();
    let mut cls: Vec<usize> = Vec::new();
    let mut brt: Vec<usize> = Vec::new();
    let mut rest: Vec<usize> = Vec::new();
    for (i, job) in batch.iter().enumerate() {
        match &job.req.op {
            Op::Nn { int8, k, .. } => {
                let key = (*int8, *k);
                match nn_groups.iter_mut().find(|(g, _)| *g == key) {
                    Some((_, idx)) => idx.push(i),
                    None => nn_groups.push((key, vec![i])),
                }
            }
            Op::Classify { .. } => cls.push(i),
            Op::Bert { .. } => brt.push(i),
            _ => rest.push(i),
        }
    }

    for ((int8, k), idx) in &nn_groups {
        let _span = kcb_obs::span("serve", "serve.nn");
        let tokens: Vec<&str> = idx
            .iter()
            .map(|&i| match &batch[i].req.op {
                Op::Nn { token, .. } => token.as_str(),
                _ => unreachable!("nn group holds nn ops"),
            })
            .collect();
        let results = snap.nearest_batch(&tokens, *k, *int8);
        for (&i, neighbours) in idx.iter().zip(&results) {
            let job = &batch[i];
            let _ = job.tx.send(protocol::render_nn(job.req.id, neighbours));
        }
    }

    if !cls.is_empty() {
        let _span = kcb_obs::span("serve", "serve.classify");
        let triples: Vec<(u32, u8, u32)> = cls
            .iter()
            .map(|&i| match batch[i].req.op {
                Op::Classify { s, r, o } => (s, r, o),
                _ => unreachable!("classify group holds classify ops"),
            })
            .collect();
        for (&i, p) in cls.iter().zip(snap.classify_batch(&triples)) {
            let job = &batch[i];
            let _ = job.tx.send(match p {
                Some(p) => protocol::render_proba(job.req.id, p),
                None => protocol::render_error(job.req.id, "bad_request", "invalid triple"),
            });
        }
    }

    if !brt.is_empty() {
        let _span = kcb_obs::span("serve", "serve.bert");
        // Requests that can't be scored (no sealed model, bad ids) get
        // their error replies; the rest score as one packed minibatch.
        let mut seqs: Vec<Vec<u32>> = Vec::new();
        let mut scored: Vec<usize> = Vec::new();
        for &i in &brt {
            let job = &batch[i];
            let Op::Bert { s, r, o } = job.req.op else {
                unreachable!("bert group holds bert ops")
            };
            if bert.is_none() {
                let _ = job.tx.send(protocol::render_error(
                    job.req.id,
                    "unavailable",
                    "snapshot was frozen without bert",
                ));
            } else if let Some(ids) = snap.bert_token_ids(s, r, o) {
                seqs.push(ids);
                scored.push(i);
            } else {
                let _ =
                    job.tx.send(protocol::render_error(job.req.id, "bad_request", "invalid triple"));
            }
        }
        if let (Some(bert), false) = (bert, scored.is_empty()) {
            let refs: Vec<&[u32]> = seqs.iter().map(Vec::as_slice).collect();
            for (&i, p) in scored.iter().zip(bert.predict_proba_batch(&refs)) {
                let job = &batch[i];
                let _ = job.tx.send(protocol::render_proba(job.req.id, p));
            }
        }
    }

    for &i in &rest {
        let job = &batch[i];
        let _ = job.tx.send(answer_simple(snap, &job.req));
    }
}

/// Answers the non-batched operations (and is the per-op half of the
/// serial reference path). `stats` and `shutdown` are connection-level
/// concerns and render as `unavailable` here.
pub fn answer_simple(snap: &Snapshot, req: &Request) -> String {
    match &req.op {
        Op::Ping => {
            let _span = kcb_obs::span("serve", "serve.ping");
            protocol::render_pong(req.id)
        }
        Op::Artifacts => {
            let _span = kcb_obs::span("serve", "serve.artifact");
            protocol::render_artifact_ids(req.id, &snap.artifact_ids())
        }
        Op::Artifact { name } => {
            let _span = kcb_obs::span("serve", "serve.artifact");
            match snap.artifact(name) {
                Some(payload) => protocol::render_artifact(req.id, payload),
                None => protocol::render_error(
                    req.id,
                    "not_found",
                    &format!("no artifact `{name}` preloaded"),
                ),
            }
        }
        Op::Embed { token } => {
            let _span = kcb_obs::span("serve", "serve.embed");
            let (vector, in_vocab) = snap.embed(token);
            protocol::render_embed(req.id, &vector, in_vocab)
        }
        Op::Stats | Op::Shutdown => {
            protocol::render_error(req.id, "unavailable", "connection-level op")
        }
        Op::Nn { .. } | Op::Classify { .. } | Op::Bert { .. } => {
            unreachable!("batched ops are served by serve_batch")
        }
    }
}

/// The serial reference: answers one request at a time through the
/// single-query snapshot paths and the *same* renderers as the batched
/// engine. `serve-bench` replays identical workloads through both and
/// checks the reply byte streams are equal.
pub fn answer_serial(snap: &Snapshot, bert: Option<&MiniBert>, req: &Request) -> String {
    match &req.op {
        Op::Nn { token, k, int8 } => {
            let neighbours =
                if *int8 { snap.nearest_int8(token, *k) } else { snap.nearest(token, *k) };
            protocol::render_nn(req.id, &neighbours)
        }
        Op::Classify { s, r, o } => match snap.classify(*s, *r, *o) {
            Some(p) => protocol::render_proba(req.id, p),
            None => protocol::render_error(req.id, "bad_request", "invalid triple"),
        },
        Op::Bert { s, r, o } => match (bert, snap.bert_token_ids(*s, *r, *o)) {
            (None, _) => protocol::render_error(
                req.id,
                "unavailable",
                "snapshot was frozen without bert",
            ),
            (Some(_), None) => {
                protocol::render_error(req.id, "bad_request", "invalid triple")
            }
            (Some(bert), Some(ids)) => {
                protocol::render_proba(req.id, bert.predict_proba(&ids))
            }
        },
        _ => answer_simple(snap, req),
    }
}
