//! `kcb-serve` — the snapshot serving engine.
//!
//! A daemon front-end for a warm lab: [`kcb_core::snapshot::Snapshot`]
//! freezes the providers once on the driver thread, then any number of
//! request threads share it through an `Arc` with no locks on the hot
//! path. The crate layers, bottom up:
//!
//! - [`protocol`] — the newline-delimited-JSON wire format: request
//!   parsing, and the reply renderers both serving paths share;
//! - [`engine`] — the bounded queue (admission control: full ⇒ typed
//!   `overloaded` shed), worker threads, and micro-batch grouping into the
//!   batched NN / forest / BERT kernels;
//! - [`server`] — TCP and Unix-socket listeners, one thread per
//!   connection, cooperative shutdown with a graceful queue drain;
//! - [`bench`] — the `repro serve-bench` harness: deterministic seeded
//!   load over real sockets, latency percentiles, and the byte-identity
//!   checksum against the serial reference replay.

pub mod bench;
pub mod engine;
pub mod protocol;
pub mod server;

pub use engine::{Engine, EngineConfig, EngineStats};
pub use protocol::{Op, Request};
pub use server::{Server, ServerConfig};
