//! `kcb-serve` — the snapshot serving engine.
//!
//! A daemon front-end for a warm lab: [`kcb_core::snapshot::Snapshot`]
//! freezes the providers once on the driver thread, then any number of
//! request threads share it through an `Arc` with no locks on the hot
//! path. The crate layers, bottom up:
//!
//! - [`protocol`] — the newline-delimited-JSON wire format: request
//!   parsing, and the reply renderers both serving paths share;
//! - [`engine`] — the bounded queue (admission control: full ⇒ typed
//!   `overloaded` shed), worker threads, and micro-batch grouping into the
//!   batched NN / forest / BERT kernels;
//! - [`metrics`] — the live telemetry plane: pre-resolved lock-free
//!   handles (counters, gauges, log-bucketed latency histograms) into a
//!   [`kcb_obs::live::LiveRegistry`], rendered on demand as Prometheus
//!   text by the `/metrics` HTTP route and the `stats` admin verb;
//! - [`flight`] — the flight recorder: bounded rings of recent and slow
//!   per-request records, dumpable via the `flight` verb and flushed to
//!   JSONL on shutdown and overload transitions;
//! - [`server`] — TCP and Unix-socket listeners, one thread per
//!   connection, cooperative shutdown with a graceful queue drain, and a
//!   minimal HTTP/1.1 GET handler (`/metrics`, `/health`) sniffed on the
//!   same listeners;
//! - [`bench`] — the `repro serve-bench` harness: deterministic seeded
//!   load over real sockets, latency percentiles from the shared live
//!   histograms, and the byte-identity checksum against the serial
//!   reference replay.

pub mod bench;
pub mod engine;
pub mod flight;
pub mod metrics;
pub mod protocol;
pub mod server;

pub use engine::{Engine, EngineConfig, EngineStats};
pub use flight::{FlightConfig, FlightRecord, FlightRecorder};
pub use metrics::Metrics;
pub use protocol::{Op, Request};
pub use server::{Server, ServerConfig};
