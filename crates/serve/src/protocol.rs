//! The newline-delimited-JSON wire protocol.
//!
//! One request per line, one reply per line. A request is a JSON object
//! with a numeric `id` (echoed verbatim in the reply so clients can
//! pipeline), an `op` string, and per-op fields:
//!
//! ```text
//! {"id":1,"op":"ping"}
//! {"id":2,"op":"artifacts"}
//! {"id":3,"op":"artifact","name":"table2"}
//! {"id":4,"op":"embed","token":"water"}
//! {"id":5,"op":"nn","token":"water","k":10,"int8":false}
//! {"id":6,"op":"classify","s":12,"r":0,"o":44}
//! {"id":7,"op":"bert","s":12,"r":0,"o":44}
//! {"id":8,"op":"stats"}
//! {"id":9,"op":"shutdown"}
//! ```
//!
//! Replies are `{"id":N,"ok":true,...}` on success and
//! `{"id":N,"ok":false,"error":CODE,"message":TEXT}` on failure, where
//! `CODE` is one of `bad_request`, `not_found`, `unavailable` or —
//! crucially for admission control — `overloaded`, the typed shed reply a
//! client receives instead of a hang when the bounded queue is full.
//!
//! Rendering is centralised here so the batched engine path and the
//! serial reference path emit bytes through the *same* functions: checksum
//! equality between the two in `serve-bench` is then a real byte-identity
//! proof, not a formatting coincidence.
//!
//! The vendored `serde_json` is writer-only, so the request side reads
//! through the workspace's recursive-descent parser
//! ([`kcb_util::json::parse_value`], re-exported here as [`parse_value`]);
//! it builds the same [`Value`] tree the rest of the workspace renders
//! from.

use serde_json::{json, Number, Value};

/// A parsed request: the client's correlation id plus the operation.
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    /// Echoed verbatim in the reply.
    pub id: u64,
    /// What to do.
    pub op: Op,
}

/// Every operation the server understands.
#[derive(Debug, Clone, PartialEq)]
pub enum Op {
    /// Liveness probe; answered inline, never queued.
    Ping,
    /// Engine counters, gauges and latency percentiles; answered inline.
    Stats,
    /// Health probe (status + uptime + queue depth); answered inline.
    Health,
    /// Flight-recorder dump (recent + slow request rings); answered inline.
    Flight,
    /// List the ids of the pre-rendered artifacts.
    Artifacts,
    /// One pre-rendered artifact payload by id.
    Artifact {
        /// Artifact id, e.g. `"table2"`.
        name: String,
    },
    /// Embedding-table row for a token.
    Embed {
        /// Query token.
        token: String,
    },
    /// Nearest neighbours of a token (batched across requests).
    Nn {
        /// Query token.
        token: String,
        /// Neighbour count.
        k: usize,
        /// Scan the int8-quantized table instead of f32.
        int8: bool,
    },
    /// Forest probability for one triple (batched across requests).
    Classify {
        /// Subject entity id.
        s: u32,
        /// Relation code.
        r: u8,
        /// Object entity id.
        o: u32,
    },
    /// Mini-BERT probability for one triple (batched across requests).
    Bert {
        /// Subject entity id.
        s: u32,
        /// Relation code.
        r: u8,
        /// Object entity id.
        o: u32,
    },
    /// Stop accepting connections, drain the queue, exit.
    Shutdown,
}

impl Op {
    /// Stable name used in telemetry span labels and error messages.
    pub fn name(&self) -> &'static str {
        match self {
            Op::Ping => "ping",
            Op::Stats => "stats",
            Op::Health => "health",
            Op::Flight => "flight",
            Op::Artifacts => "artifacts",
            Op::Artifact { .. } => "artifact",
            Op::Embed { .. } => "embed",
            Op::Nn { .. } => "nn",
            Op::Classify { .. } => "classify",
            Op::Bert { .. } => "bert",
            Op::Shutdown => "shutdown",
        }
    }

    /// Number of distinct operations — sizes the per-verb counter array.
    pub const COUNT: usize = 11;

    /// [`Op::name`] for each index, in [`Op::index`] order.
    pub const NAMES: [&'static str; Op::COUNT] = [
        "ping", "stats", "health", "flight", "artifacts", "artifact", "embed", "nn", "classify",
        "bert", "shutdown",
    ];

    /// Dense index of this operation into [`Op::NAMES`], used by the
    /// engine's lock-free per-verb request counters.
    pub fn index(&self) -> usize {
        match self {
            Op::Ping => 0,
            Op::Stats => 1,
            Op::Health => 2,
            Op::Flight => 3,
            Op::Artifacts => 4,
            Op::Artifact { .. } => 5,
            Op::Embed { .. } => 6,
            Op::Nn { .. } => 7,
            Op::Classify { .. } => 8,
            Op::Bert { .. } => 9,
            Op::Shutdown => 10,
        }
    }
}

/// Renders a request back to its wire line (no trailing newline). Used by
/// the bench load generator and tests; `parse_request` inverts it.
pub fn render_request(req: &Request) -> String {
    let v = match &req.op {
        Op::Ping | Op::Stats | Op::Health | Op::Flight | Op::Artifacts | Op::Shutdown => {
            json!({"id": req.id, "op": req.op.name()})
        }
        Op::Artifact { name } => json!({"id": req.id, "op": "artifact", "name": name}),
        Op::Embed { token } => json!({"id": req.id, "op": "embed", "token": token}),
        Op::Nn { token, k, int8 } => {
            json!({"id": req.id, "op": "nn", "token": token, "k": *k, "int8": *int8})
        }
        Op::Classify { s, r, o } => {
            json!({"id": req.id, "op": "classify", "s": *s, "r": *r, "o": *o})
        }
        Op::Bert { s, r, o } => json!({"id": req.id, "op": "bert", "s": *s, "r": *r, "o": *o}),
    };
    serde_json::to_string(&v).expect("serializable")
}

/// Parses one request line. On failure returns the request id when one
/// could still be extracted (so the error reply can echo it; 0 otherwise)
/// and a message naming the problem.
pub fn parse_request(line: &str) -> Result<Request, (u64, String)> {
    let v = parse_value(line).map_err(|e| (0, e))?;
    let id = v.get("id").and_then(Value::as_u64).unwrap_or(0);
    let fail = |msg: String| (id, msg);
    let op = v
        .get("op")
        .and_then(Value::as_str)
        .ok_or_else(|| fail("missing op".to_string()))?;
    let str_field = |key: &str| {
        v.get(key)
            .and_then(Value::as_str)
            .map(str::to_string)
            .ok_or_else(|| fail(format!("{op} needs a string `{key}`")))
    };
    let u32_field = |key: &str| {
        v.get(key)
            .and_then(Value::as_u64)
            .filter(|&x| x <= u64::from(u32::MAX))
            .map(|x| x as u32)
            .ok_or_else(|| fail(format!("{op} needs a u32 `{key}`")))
    };
    let op = match op {
        "ping" => Op::Ping,
        "stats" => Op::Stats,
        "health" => Op::Health,
        "flight" => Op::Flight,
        "artifacts" => Op::Artifacts,
        "shutdown" => Op::Shutdown,
        "artifact" => Op::Artifact { name: str_field("name")? },
        "embed" => Op::Embed { token: str_field("token")? },
        "nn" => Op::Nn {
            token: str_field("token")?,
            k: v.get("k").and_then(Value::as_u64).unwrap_or(10) as usize,
            int8: v.get("int8").and_then(Value::as_bool).unwrap_or(false),
        },
        "classify" => {
            let r = u32_field("r")?;
            if r > u32::from(u8::MAX) {
                return Err(fail(format!("relation code {r} out of range")));
            }
            Op::Classify { s: u32_field("s")?, r: r as u8, o: u32_field("o")? }
        }
        "bert" => {
            let r = u32_field("r")?;
            if r > u32::from(u8::MAX) {
                return Err(fail(format!("relation code {r} out of range")));
            }
            Op::Bert { s: u32_field("s")?, r: r as u8, o: u32_field("o")? }
        }
        other => return Err(fail(format!("unknown op `{other}`"))),
    };
    Ok(Request { id, op })
}

// ---------------------------------------------------------------------------
// Reply rendering — the single formatting authority for both serve paths.
// ---------------------------------------------------------------------------

/// `{"id":N,"ok":false,"error":code,"message":msg}` — `code` is a stable
/// machine-readable token (`overloaded` being the admission-control one).
pub fn render_error(id: u64, code: &str, msg: &str) -> String {
    serde_json::to_string(&json!({"id": id, "ok": false, "error": code, "message": msg}))
        .expect("serializable")
}

/// The typed shed reply for a full queue.
pub fn render_overloaded(id: u64) -> String {
    render_error(id, "overloaded", "queue full, retry later")
}

/// `ping` reply.
pub fn render_pong(id: u64) -> String {
    serde_json::to_string(&json!({"id": id, "ok": true, "op": "ping"})).expect("serializable")
}

/// `shutdown` acknowledgement.
pub fn render_shutdown(id: u64) -> String {
    serde_json::to_string(&json!({"id": id, "ok": true, "op": "shutdown"})).expect("serializable")
}

/// Everything the `stats` verb reports: counters, gauges and the
/// end-to-end latency percentiles, all read from the live telemetry plane
/// at the moment of the request.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StatsReply {
    /// Requests answered by workers.
    pub served: u64,
    /// Requests shed with an `overloaded` reply.
    pub shed: u64,
    /// Error replies sent (bad request / not found / unavailable).
    pub errors: u64,
    /// Requests currently queued.
    pub queue_depth: i64,
    /// Requests currently being served by workers.
    pub in_flight: i64,
    /// Seconds since the engine started.
    pub uptime_s: f64,
    /// End-to-end latency percentiles, µs (bucketed estimates).
    pub p50_us: u64,
    /// 95th percentile, µs.
    pub p95_us: u64,
    /// 99th percentile, µs.
    pub p99_us: u64,
    /// Slowest request, µs (exact).
    pub max_us: u64,
    /// Per-verb request counts, [`Op::index`] order, zero rows skipped.
    pub verbs: Vec<(&'static str, u64)>,
}

/// `stats` reply.
pub fn render_stats(id: u64, s: &StatsReply) -> String {
    let verbs: Vec<(String, Value)> =
        s.verbs.iter().map(|&(name, n)| (name.to_string(), json!(n))).collect();
    serde_json::to_string(&json!({
        "id": id, "ok": true,
        "served": s.served, "shed": s.shed, "errors": s.errors,
        "queue_depth": s.queue_depth, "in_flight": s.in_flight,
        "uptime_s": s.uptime_s,
        "p50_us": s.p50_us, "p95_us": s.p95_us, "p99_us": s.p99_us, "max_us": s.max_us,
        "verbs": Value::Object(verbs),
    }))
    .expect("serializable")
}

/// `health` reply: liveness plus the two numbers a probe cares about.
pub fn render_health(id: u64, uptime_s: f64, queue_depth: i64) -> String {
    serde_json::to_string(&json!({
        "id": id, "ok": true, "status": "ok",
        "uptime_s": uptime_s, "queue_depth": queue_depth,
    }))
    .expect("serializable")
}

/// `flight` reply: both recorder rings (oldest first) and the slow-request
/// threshold that fills the second one.
pub fn render_flight(id: u64, recent: Vec<Value>, slow: Vec<Value>, slow_us: u64) -> String {
    serde_json::to_string(&json!({
        "id": id, "ok": true, "slow_us": slow_us,
        "recent": recent, "slow": slow,
    }))
    .expect("serializable")
}

/// `artifacts` reply: the sorted id list.
pub fn render_artifact_ids(id: u64, ids: &[&str]) -> String {
    serde_json::to_string(&json!({"id": id, "ok": true, "artifacts": ids})).expect("serializable")
}

/// `artifact` reply: the pre-rendered payload embedded verbatim.
pub fn render_artifact(id: u64, payload: &Value) -> String {
    serde_json::to_string(&json!({"id": id, "ok": true, "artifact": payload.clone()}))
        .expect("serializable")
}

/// `embed` reply. The vector is widened f32 → f64 exactly, so the bytes
/// are a pure function of the table row.
pub fn render_embed(id: u64, vector: &[f32], in_vocab: bool) -> String {
    let vs: Vec<Value> = vector.iter().map(|&x| Value::Number(Number::F(f64::from(x)))).collect();
    serde_json::to_string(&json!({"id": id, "ok": true, "in_vocab": in_vocab, "vector": vs}))
        .expect("serializable")
}

/// `nn` reply: `[[token, similarity], ...]` in rank order.
pub fn render_nn(id: u64, neighbours: &[(String, f32)]) -> String {
    let ns: Vec<Value> = neighbours
        .iter()
        .map(|(t, s)| {
            Value::Array(vec![
                Value::String(t.clone()),
                Value::Number(Number::F(f64::from(*s))),
            ])
        })
        .collect();
    serde_json::to_string(&json!({"id": id, "ok": true, "neighbours": ns})).expect("serializable")
}

/// `classify` / `bert` reply: the positive-class probability.
pub fn render_proba(id: u64, p: f32) -> String {
    serde_json::to_string(&json!({"id": id, "ok": true, "p": f64::from(p)}))
        .expect("serializable")
}

// ---------------------------------------------------------------------------
// The request-side JSON parser.
// ---------------------------------------------------------------------------

/// Parses one complete JSON value (rejecting trailing data), building the
/// workspace's [`Value`] tree. Errors name the byte offset.
///
/// The parser itself lives in [`kcb_util::json`] (the run journal and the
/// `repro runs` query surface read JSON through the same code); this
/// re-export keeps the wire protocol's public surface unchanged.
pub use kcb_util::json::parse_value;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_round_trip_through_render_and_parse() {
        let reqs = [
            Request { id: 1, op: Op::Ping },
            Request { id: 2, op: Op::Stats },
            Request { id: 3, op: Op::Artifacts },
            Request { id: 4, op: Op::Artifact { name: "table2".into() } },
            Request { id: 5, op: Op::Embed { token: "water".into() } },
            Request { id: 6, op: Op::Nn { token: "acid".into(), k: 5, int8: true } },
            Request { id: 7, op: Op::Classify { s: 1, r: 2, o: 3 } },
            Request { id: 8, op: Op::Bert { s: 9, r: 0, o: 4 } },
            Request { id: 9, op: Op::Shutdown },
            Request { id: 10, op: Op::Health },
            Request { id: 11, op: Op::Flight },
        ];
        for req in reqs {
            let line = render_request(&req);
            assert_eq!(parse_request(&line).unwrap(), req, "{line}");
        }
    }

    #[test]
    fn op_indices_are_dense_and_match_names() {
        let ops = [
            Op::Ping,
            Op::Stats,
            Op::Health,
            Op::Flight,
            Op::Artifacts,
            Op::Artifact { name: "t".into() },
            Op::Embed { token: "t".into() },
            Op::Nn { token: "t".into(), k: 1, int8: false },
            Op::Classify { s: 0, r: 0, o: 0 },
            Op::Bert { s: 0, r: 0, o: 0 },
            Op::Shutdown,
        ];
        assert_eq!(ops.len(), Op::COUNT);
        for (i, op) in ops.iter().enumerate() {
            assert_eq!(op.index(), i, "{}", op.name());
            assert_eq!(Op::NAMES[i], op.name());
        }
    }

    #[test]
    fn nn_defaults_and_field_order_independence() {
        let r = parse_request(r#"{"op":"nn","token":"x","id":3}"#).unwrap();
        assert_eq!(r.id, 3);
        assert_eq!(r.op, Op::Nn { token: "x".into(), k: 10, int8: false });
    }

    #[test]
    fn errors_keep_the_request_id_when_extractable() {
        let (id, msg) = parse_request(r#"{"id":7,"op":"warp"}"#).unwrap_err();
        assert_eq!(id, 7);
        assert!(msg.contains("warp"), "{msg}");
        let (id, msg) = parse_request(r#"{"id":8,"op":"nn"}"#).unwrap_err();
        assert_eq!(id, 8);
        assert!(msg.contains("token"), "{msg}");
        let (id, _) = parse_request("not json").unwrap_err();
        assert_eq!(id, 0);
        let (_, msg) = parse_request(r#"{"id":1,"op":"classify","s":1,"r":900,"o":2}"#)
            .unwrap_err();
        assert!(msg.contains("900"), "{msg}");
    }

    #[test]
    fn parser_handles_nesting_strings_and_numbers() {
        let v = parse_value(r#"{"a":[1,-2,2.5,"x\n\"y\"",{"b":null},true,false]}"#).unwrap();
        let a = v.get("a").and_then(Value::as_array).unwrap();
        assert_eq!(a[0].as_u64(), Some(1));
        assert_eq!(a[1].as_i64(), Some(-2));
        assert_eq!(a[2].as_f64(), Some(2.5));
        assert_eq!(a[3].as_str(), Some("x\n\"y\""));
        assert!(a[4].get("b").unwrap().is_null());
        for bad in ["{", "[1,]", "{\"a\":}", "\"oops", "01x", "[1] extra", "{\"a\" 1}"] {
            assert!(parse_value(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn rendered_replies_are_valid_json() {
        for reply in [
            render_pong(1),
            render_overloaded(2),
            render_error(3, "bad_request", "missing op"),
            render_stats(
                4,
                &StatsReply {
                    served: 10,
                    shed: 2,
                    queue_depth: 3,
                    p99_us: 840,
                    verbs: vec![("nn", 7), ("ping", 3)],
                    ..StatsReply::default()
                },
            ),
            render_health(11, 1.5, 0),
            render_flight(12, vec![json!({"id": 1})], vec![], 10_000),
            render_artifact_ids(5, &["table2"]),
            render_artifact(6, &json!({"id": "table2"})),
            render_embed(7, &[0.5, -1.25], true),
            render_nn(8, &[("acid".to_string(), 0.75)]),
            render_proba(9, 0.5),
            render_shutdown(10),
        ] {
            kcb_obs::json::validate(&reply).unwrap_or_else(|e| panic!("{reply}: {e}"));
            let v = parse_value(&reply).unwrap();
            assert!(v.get("id").is_some() && v.get("ok").is_some(), "{reply}");
        }
        assert!(render_overloaded(2).contains(r#""error":"overloaded""#));
    }
}
