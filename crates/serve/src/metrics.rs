//! Pre-resolved handles into the live telemetry registry.
//!
//! The [`kcb_obs::live::LiveRegistry`] hands out `Arc`s keyed by name, but
//! name lookup takes the registry mutex — far too much for the request
//! path. [`Metrics`] resolves every handle the engine will ever touch
//! *once* at startup (including one counter per protocol verb, indexed by
//! [`Op::index`]), so the hot path is pure relaxed atomics: no locks, no
//! hashing, no allocation.
//!
//! `KCB_LIVE=off` (or `0`) in the environment disables the *per-request*
//! timing work — the clock reads, latency histograms and flight-recorder
//! appends — which is how the telemetry-overhead experiment in
//! EXPERIMENTS.md measures the cost of the live plane. Counters, gauges
//! and the per-batch size histogram stay on: they are one relaxed RMW
//! each, and admission control plus `stats` depend on them.

use crate::protocol::Op;
use kcb_obs::live::{LiveCounter, LiveGauge, LiveHistogram, LiveRegistry, LiveSnapshot};
use std::sync::Arc;
use std::time::Instant;

/// Every live instrument the serving engine records into.
pub struct Metrics {
    registry: LiveRegistry,
    timing: bool,
    start: Instant,
    /// Requests answered by workers.
    pub served: Arc<LiveCounter>,
    /// Requests shed with an `overloaded` reply.
    pub shed: Arc<LiveCounter>,
    /// Error replies sent from worker batches.
    pub errors: Arc<LiveCounter>,
    /// Requests currently queued (exact: set under the queue lock).
    pub queue_depth: Arc<LiveGauge>,
    /// Requests currently inside a worker's batch.
    pub in_flight: Arc<LiveGauge>,
    /// End-to-end latency (arrival → replies sent), µs.
    pub e2e_us: Arc<LiveHistogram>,
    /// Time spent queued before a worker drained the request, µs.
    pub queue_wait_us: Arc<LiveHistogram>,
    /// Wall time one worker spent serving one drained batch, µs.
    pub batch_service_us: Arc<LiveHistogram>,
    /// Drained micro-batch sizes (so `sum` is total batched requests).
    pub batch_size: Arc<LiveHistogram>,
    verbs: Vec<Arc<LiveCounter>>,
}

impl Metrics {
    /// Resolves every handle against a fresh registry and reads the
    /// `KCB_LIVE` toggle.
    pub fn new() -> Self {
        let registry = LiveRegistry::new();
        let timing = !matches!(std::env::var("KCB_LIVE").as_deref(), Ok("off") | Ok("0"));
        let verbs = Op::NAMES
            .iter()
            .map(|n| registry.counter(&format!("serve.requests.{n}")))
            .collect();
        Self {
            timing,
            start: Instant::now(),
            served: registry.counter("serve.served"),
            shed: registry.counter("serve.shed"),
            errors: registry.counter("serve.errors"),
            queue_depth: registry.gauge("serve.queue_depth"),
            in_flight: registry.gauge("serve.in_flight"),
            e2e_us: registry.histogram("serve.e2e_us"),
            queue_wait_us: registry.histogram("serve.queue_wait_us"),
            batch_service_us: registry.histogram("serve.batch_service_us"),
            batch_size: registry.histogram("serve.batch_size"),
            verbs,
            registry,
        }
    }

    /// Whether per-request timing (histograms + flight recorder) is on.
    pub fn timing(&self) -> bool {
        self.timing
    }

    /// The engine's start instant — the flight recorder's time zero, and
    /// the stand-in arrival stamp when timing is off.
    pub fn epoch(&self) -> Instant {
        self.start
    }

    /// Seconds since the engine started.
    pub fn uptime_s(&self) -> f64 {
        self.start.elapsed().as_secs_f64()
    }

    /// µs from the engine epoch to `at`.
    pub fn since_us(&self, at: Instant) -> u64 {
        at.duration_since(self.start).as_micros() as u64
    }

    /// Bumps the request counter for `op`'s verb.
    pub fn count_verb(&self, op: &Op) {
        self.verbs[op.index()].add(1);
    }

    /// Per-verb request counts in [`Op::index`] order, zero rows skipped.
    pub fn verb_counts(&self) -> Vec<(&'static str, u64)> {
        Op::NAMES
            .iter()
            .zip(&self.verbs)
            .map(|(&name, c)| (name, c.get()))
            .filter(|&(_, n)| n > 0)
            .collect()
    }

    /// A point-in-time copy of every instrument in the registry.
    pub fn snapshot(&self) -> LiveSnapshot {
        self.registry.snapshot()
    }

    /// The registry snapshot in Prometheus text exposition format.
    pub fn render_prometheus(&self) -> String {
        kcb_obs::live::render_prometheus(&self.snapshot())
    }
}

impl Default for Metrics {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn verb_counters_index_by_op_and_report_nonzero_rows() {
        let m = Metrics::new();
        m.count_verb(&Op::Nn { token: "x".into(), k: 3, int8: false });
        m.count_verb(&Op::Nn { token: "y".into(), k: 9, int8: true });
        m.count_verb(&Op::Ping);
        assert_eq!(m.verb_counts(), vec![("ping", 1), ("nn", 2)]);
        let snap = m.snapshot();
        assert_eq!(snap.counters.get("serve.requests.nn"), Some(&2));
        assert_eq!(snap.counters.get("serve.requests.ping"), Some(&1));
    }

    #[test]
    fn prometheus_rendering_includes_the_pre_resolved_instruments() {
        let m = Metrics::new();
        m.served.add(5);
        m.queue_depth.set(3);
        m.e2e_us.record(120);
        let text = m.render_prometheus();
        assert!(text.contains("serve_served_total 5"), "{text}");
        assert!(text.contains("serve_queue_depth 3"), "{text}");
        assert!(text.contains("serve_e2e_us_count 1"), "{text}");
    }
}
