//! The flight recorder: a fixed-capacity ring of recent per-request
//! evidence, kept so an incident has context *after* it happened.
//!
//! Aggregates (counters, histograms) answer "how is the daemon doing";
//! they cannot answer "what were the last hundred requests before the
//! shed storm". The recorder keeps two bounded rings:
//!
//! * **recent** — every completed (or shed) request: arrival time, queue
//!   wait, batch id/size, end-to-end latency, outcome;
//! * **slow** — requests whose latency crossed the configured threshold,
//!   retained separately so a burst of fast traffic cannot evict the
//!   interesting outliers.
//!
//! Both are dumpable at any time through the `flight` admin verb, and the
//! engine flushes them to `results/serve_flight.jsonl` (append-only, one
//! JSON object per line with a `flush` marker first) on graceful shutdown
//! and on each entry into overload — the two moments a post-mortem will
//! ask about. Recording takes a short mutex over a `VecDeque`; unlike the
//! histograms it is not lock-free, but the critical section is a push +
//! possible pop, far below the kernel work per request.

use serde_json::{json, Value};
use std::collections::VecDeque;
use std::io::Write;
use std::path::PathBuf;
use std::sync::Mutex;

/// One request's evidence. Times are µs; `arrival_us` counts from the
/// engine's start epoch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlightRecord {
    /// Client correlation id.
    pub id: u64,
    /// Operation name (`"nn"`, `"classify"`, …).
    pub op: &'static str,
    /// Arrival at the engine, µs since engine start.
    pub arrival_us: u64,
    /// Time spent queued before a worker drained it, µs.
    pub queue_us: u64,
    /// Which drained batch served it (0 for shed requests).
    pub batch: u64,
    /// Size of that batch (0 for shed requests).
    pub batch_size: u32,
    /// End-to-end latency (arrival → reply sent), µs.
    pub latency_us: u64,
    /// `"ok"`, `"error"` (typed error reply) or `"shed"`.
    pub outcome: &'static str,
}

impl FlightRecord {
    /// Renders one record as a JSON object.
    pub fn to_json(&self) -> Value {
        json!({
            "id": self.id,
            "op": self.op,
            "arrival_us": self.arrival_us,
            "queue_us": self.queue_us,
            "batch": self.batch,
            "batch_size": self.batch_size,
            "latency_us": self.latency_us,
            "outcome": self.outcome,
        })
    }
}

/// Recorder sizing.
#[derive(Debug, Clone)]
pub struct FlightConfig {
    /// Capacity of the recent-requests ring.
    pub cap: usize,
    /// Capacity of the slow-requests ring.
    pub slow_cap: usize,
    /// Latency threshold (µs) above which a request is also kept in the
    /// slow ring.
    pub slow_us: u64,
    /// Where flushes append JSONL (`None` disables flushing; the rings
    /// and the `flight` verb still work).
    pub path: Option<PathBuf>,
}

impl Default for FlightConfig {
    fn default() -> Self {
        Self { cap: 1024, slow_cap: 256, slow_us: 10_000, path: None }
    }
}

struct Rings {
    recent: VecDeque<FlightRecord>,
    slow: VecDeque<FlightRecord>,
    /// Requests seen since the last flush (so a flush line can say how
    /// many fell off the ring unrecorded).
    since_flush: u64,
}

/// The recorder itself; share it behind the engine's `Arc`.
pub struct FlightRecorder {
    cfg: FlightConfig,
    rings: Mutex<Rings>,
}

impl FlightRecorder {
    /// An empty recorder.
    pub fn new(cfg: FlightConfig) -> Self {
        let cap = cfg.cap.max(1);
        let slow_cap = cfg.slow_cap.max(1);
        Self {
            cfg: FlightConfig { cap, slow_cap, ..cfg },
            rings: Mutex::new(Rings {
                recent: VecDeque::with_capacity(cap),
                slow: VecDeque::with_capacity(slow_cap),
                since_flush: 0,
            }),
        }
    }

    /// The slow-request threshold, µs.
    pub fn slow_us(&self) -> u64 {
        self.cfg.slow_us
    }

    /// Appends one record, evicting the oldest once a ring is full.
    pub fn record(&self, rec: FlightRecord) {
        let mut r = self.rings.lock().expect("flight rings poisoned");
        r.since_flush += 1;
        if r.recent.len() == self.cfg.cap {
            r.recent.pop_front();
        }
        if rec.latency_us >= self.cfg.slow_us {
            if r.slow.len() == self.cfg.slow_cap {
                r.slow.pop_front();
            }
            r.slow.push_back(rec.clone());
        }
        r.recent.push_back(rec);
    }

    /// Copies both rings, oldest first: `(recent, slow)`.
    pub fn dump(&self) -> (Vec<FlightRecord>, Vec<FlightRecord>) {
        let r = self.rings.lock().expect("flight rings poisoned");
        (r.recent.iter().cloned().collect(), r.slow.iter().cloned().collect())
    }

    /// Appends both rings to the configured JSONL path, preceded by a
    /// `{"flush":…}` marker naming the reason. Returns the number of
    /// request records written (0 when no path is configured). The rings
    /// are kept — a later `flight` verb still sees them.
    pub fn flush(&self, reason: &str) -> std::io::Result<usize> {
        let Some(path) = &self.cfg.path else { return Ok(0) };
        let (recent, slow, seen) = {
            let mut r = self.rings.lock().expect("flight rings poisoned");
            let seen = r.since_flush;
            r.since_flush = 0;
            (
                r.recent.iter().map(FlightRecord::to_json).collect::<Vec<_>>(),
                r.slow.iter().map(FlightRecord::to_json).collect::<Vec<_>>(),
                seen,
            )
        };
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir)?;
            }
        }
        let mut out = String::new();
        let marker = json!({
            "flush": json!({
                "reason": reason,
                "seen_since_last": seen,
                "recent": recent.len(),
                "slow": slow.len(),
            }),
        });
        out.push_str(&serde_json::to_string(&marker).expect("serializable"));
        out.push('\n');
        let mut written = 0usize;
        for (ring, recs) in [("recent", &recent), ("slow", &slow)] {
            for rec in recs {
                let line = json!({"ring": ring, "req": rec.clone()});
                out.push_str(&serde_json::to_string(&line).expect("serializable"));
                out.push('\n');
                written += 1;
            }
        }
        let mut f = std::fs::OpenOptions::new().create(true).append(true).open(path)?;
        f.write_all(out.as_bytes())?;
        Ok(written)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(id: u64, latency_us: u64) -> FlightRecord {
        FlightRecord {
            id,
            op: "nn",
            arrival_us: 10 * id,
            queue_us: 3,
            batch: id / 4,
            batch_size: 4,
            latency_us,
            outcome: "ok",
        }
    }

    #[test]
    fn ring_keeps_the_most_recent_cap_records() {
        let fr = FlightRecorder::new(FlightConfig { cap: 4, ..FlightConfig::default() });
        for i in 0..10 {
            fr.record(rec(i, 100));
        }
        let (recent, slow) = fr.dump();
        assert_eq!(recent.iter().map(|r| r.id).collect::<Vec<_>>(), vec![6, 7, 8, 9]);
        assert!(slow.is_empty(), "nothing crossed the slow threshold");
    }

    #[test]
    fn slow_ring_survives_fast_traffic() {
        let fr = FlightRecorder::new(FlightConfig {
            cap: 4,
            slow_cap: 2,
            slow_us: 1_000,
            path: None,
        });
        fr.record(rec(1, 5_000)); // slow
        for i in 2..20 {
            fr.record(rec(i, 10)); // fast traffic evicts it from `recent`
        }
        fr.record(rec(99, 2_000)); // slow
        let (recent, slow) = fr.dump();
        assert!(!recent.iter().any(|r| r.id == 1), "evicted from the recent ring");
        assert_eq!(slow.iter().map(|r| r.id).collect::<Vec<_>>(), vec![1, 99]);
    }

    #[test]
    fn flush_appends_jsonl_with_a_reason_marker() {
        let path = std::env::temp_dir().join(format!("kcb-flight-{}.jsonl", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let fr = FlightRecorder::new(FlightConfig {
            cap: 8,
            slow_cap: 8,
            slow_us: 1_000,
            path: Some(path.clone()),
        });
        fr.record(rec(1, 10));
        fr.record(rec(2, 5_000));
        assert_eq!(fr.flush("overload").unwrap(), 3, "2 recent + 1 slow");
        assert_eq!(fr.flush("shutdown").unwrap(), 3, "rings survive a flush");
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 8, "2 markers + 2x3 records");
        for line in &lines {
            kcb_obs::json::validate(line).unwrap_or_else(|e| panic!("{line}: {e}"));
        }
        assert!(lines[0].contains(r#""reason":"overload""#), "{}", lines[0]);
        assert!(lines[4].contains(r#""reason":"shutdown""#), "{}", lines[4]);
        assert!(lines[2].contains(r#""latency_us":5000"#), "{}", lines[2]);
        assert!(text.contains(r#""ring":"slow""#));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn flush_without_a_path_is_a_noop() {
        let fr = FlightRecorder::new(FlightConfig::default());
        fr.record(rec(1, 10));
        assert_eq!(fr.flush("shutdown").unwrap(), 0);
        assert_eq!(fr.dump().0.len(), 1);
    }
}
