//! The socket front-end: accepts TCP and/or Unix-socket connections and
//! pumps each one's NDJSON lines through the shared [`Engine`].
//!
//! Each connection gets its own thread that reads one line, parses it and
//! either answers inline (`ping`-class ops that touch no kernels, `stats`,
//! `shutdown`) or submits to the engine and waits for the reply. A single
//! connection is therefore sequential — request pipelining happens
//! *across* connections, which is exactly where the engine's micro-batches
//! form: N concurrent clients produce batches of up to N.
//!
//! Shutdown is cooperative: any client sending `{"op":"shutdown"}` flips
//! the shared stop flag; the accept loops (non-blocking, polling the flag)
//! wind down, connection threads notice via their read timeout, and
//! [`Server::wait`] finishes with a graceful engine drain so every
//! accepted request is answered before the process moves on.

use crate::engine::{self, Engine, EngineConfig, EngineStats};
use crate::protocol::{self, Op};
use kcb_core::snapshot::Snapshot;
use std::io::{BufRead, BufReader, ErrorKind, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;
use std::time::Duration;

/// How a [`Server`] listens.
#[derive(Debug, Clone, Default)]
pub struct ServerConfig {
    /// TCP bind address, e.g. `"127.0.0.1:7878"` (port 0 picks one).
    pub tcp: Option<String>,
    /// Unix-socket path (unix only; ignored elsewhere).
    pub socket: Option<std::path::PathBuf>,
    /// Engine sizing. `workers` is clamped to at least 1 — a server with
    /// no drain would deadlock its own clients.
    pub engine: EngineConfig,
}

/// A running server; hold it and call [`Server::wait`].
pub struct Server {
    engine: Arc<Engine>,
    stop: Arc<AtomicBool>,
    acceptors: Vec<JoinHandle<()>>,
    /// Bound TCP address when a TCP listener was requested.
    pub tcp_addr: Option<SocketAddr>,
    socket_path: Option<std::path::PathBuf>,
}

impl Server {
    /// Binds the configured listeners and starts serving `snap`.
    pub fn start(snap: Arc<Snapshot>, cfg: &ServerConfig) -> std::io::Result<Self> {
        let mut engine_cfg = cfg.engine.clone();
        engine_cfg.workers = engine_cfg.workers.max(1);
        let engine = Arc::new(Engine::start(snap, &engine_cfg));
        let stop = Arc::new(AtomicBool::new(false));
        let mut acceptors = Vec::new();
        let mut tcp_addr = None;

        if let Some(addr) = &cfg.tcp {
            let listener = TcpListener::bind(addr)?;
            listener.set_nonblocking(true)?;
            tcp_addr = Some(listener.local_addr()?);
            let (engine, stop) = (Arc::clone(&engine), Arc::clone(&stop));
            acceptors.push(
                std::thread::Builder::new()
                    .name("kcb-serve-tcp".into())
                    .spawn(move || accept_loop_tcp(&listener, &engine, &stop))
                    .expect("spawn acceptor"),
            );
        }

        #[cfg(unix)]
        if let Some(path) = &cfg.socket {
            // A stale socket file from a previous run would fail the bind.
            let _ = std::fs::remove_file(path);
            let listener = std::os::unix::net::UnixListener::bind(path)?;
            listener.set_nonblocking(true)?;
            let (engine, stop) = (Arc::clone(&engine), Arc::clone(&stop));
            acceptors.push(
                std::thread::Builder::new()
                    .name("kcb-serve-unix".into())
                    .spawn(move || accept_loop_unix(&listener, &engine, &stop))
                    .expect("spawn acceptor"),
            );
        }

        if acceptors.is_empty() {
            return Err(std::io::Error::new(
                ErrorKind::InvalidInput,
                "server needs a tcp address or a unix socket path",
            ));
        }
        Ok(Self { engine, stop, acceptors, tcp_addr, socket_path: cfg.socket.clone() })
    }

    /// Whether a shutdown request has been received.
    pub fn stopped(&self) -> bool {
        self.stop.load(Ordering::SeqCst)
    }

    /// Requests a stop without a client (used by tests and harnesses).
    pub fn stop(&self) {
        self.stop.store(true, Ordering::SeqCst);
    }

    /// Live engine counters.
    pub fn stats(&self) -> EngineStats {
        self.engine.stats()
    }

    /// Drained-batch size distribution from the engine.
    pub fn batch_histogram(&self) -> kcb_obs::live::HistSnapshot {
        self.engine.batch_histogram()
    }

    /// The engine's live telemetry plane.
    pub fn metrics(&self) -> &crate::metrics::Metrics {
        self.engine.metrics()
    }

    /// Blocks until shutdown, then joins the acceptors (which join their
    /// connection threads) and drains the engine. Returns final counters.
    pub fn wait(self) -> EngineStats {
        for a in self.acceptors {
            let _ = a.join();
        }
        if let Some(path) = &self.socket_path {
            let _ = std::fs::remove_file(path);
        }
        match Arc::try_unwrap(self.engine) {
            Ok(engine) => engine.shutdown(),
            // A connection thread still holds a clone for a few more
            // milliseconds; report counters without the drain join.
            Err(engine) => engine.stats(),
        }
    }
}

const POLL: Duration = Duration::from_millis(10);

fn accept_loop_tcp(listener: &TcpListener, engine: &Arc<Engine>, stop: &Arc<AtomicBool>) {
    let mut conns: Vec<JoinHandle<()>> = Vec::new();
    while !stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                let (engine, stop) = (Arc::clone(engine), Arc::clone(stop));
                conns.push(
                    std::thread::Builder::new()
                        .name("kcb-serve-conn".into())
                        .spawn(move || handle_tcp(stream, &engine, &stop))
                        .expect("spawn connection"),
                );
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => std::thread::sleep(POLL),
            Err(_) => break,
        }
    }
    for c in conns {
        let _ = c.join();
    }
}

#[cfg(unix)]
fn accept_loop_unix(
    listener: &std::os::unix::net::UnixListener,
    engine: &Arc<Engine>,
    stop: &Arc<AtomicBool>,
) {
    let mut conns: Vec<JoinHandle<()>> = Vec::new();
    while !stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                let (engine, stop) = (Arc::clone(engine), Arc::clone(stop));
                conns.push(
                    std::thread::Builder::new()
                        .name("kcb-serve-conn".into())
                        .spawn(move || handle_unix(stream, &engine, &stop))
                        .expect("spawn connection"),
                );
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => std::thread::sleep(POLL),
            Err(_) => break,
        }
    }
    for c in conns {
        let _ = c.join();
    }
}

fn handle_tcp(stream: TcpStream, engine: &Engine, stop: &AtomicBool) {
    // One request/reply round trip per line: Nagle + delayed ACK would
    // add tens of milliseconds to every exchange.
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(Duration::from_millis(100)));
    let Ok(reader) = stream.try_clone() else { return };
    pump_lines(BufReader::new(reader), stream, engine, stop);
}

#[cfg(unix)]
fn handle_unix(stream: std::os::unix::net::UnixStream, engine: &Engine, stop: &AtomicBool) {
    let _ = stream.set_read_timeout(Some(Duration::from_millis(100)));
    let Ok(reader) = stream.try_clone() else { return };
    pump_lines(BufReader::new(reader), stream, engine, stop);
}

/// A reply slot for one request line of a drained group, kept in arrival
/// order so pipelined clients read replies in the order they sent.
enum Slot {
    /// Answered inline (parse error, ping-class, stats, shutdown).
    Ready(String),
    /// Waiting on the engine; the id backs the error reply if the engine
    /// stops first.
    Queued(mpsc::Receiver<String>, u64),
    /// Blank line — no reply.
    Blank,
}

/// One connection's request/reply loop.
///
/// Blocks for the first complete line, then drains every further line the
/// client has already pipelined into the read buffer *without another
/// syscall* and submits the whole group to the engine before collecting
/// any reply — that is how deep micro-batches form even from a single
/// connection. All of the group's replies go out in one write.
///
/// The read side carries a timeout so the stop flag is honoured on idle
/// connections; a timeout mid-line is safe because `read_line` appends —
/// partial bytes stay buffered until the newline arrives.
fn pump_lines<R: std::io::Read, W: Write>(
    mut reader: BufReader<R>,
    mut writer: W,
    engine: &Engine,
    stop: &AtomicBool,
) {
    let mut line = String::new();
    let mut out = String::new();
    let mut first = true;
    loop {
        match reader.read_line(&mut line) {
            Ok(0) => break,
            Ok(_) => {
                if !line.ends_with('\n') {
                    // Timeout split the line; keep accumulating.
                    continue;
                }
                if first && line.starts_with("GET ") {
                    // An HTTP scrape on the NDJSON port: answer one
                    // request and close, plain-text browsers welcome.
                    handle_http(&line, &mut reader, &mut writer, engine, stop);
                    break;
                }
                first = false;
                let mut slots = vec![submit_line(line.trim(), engine, stop)];
                line.clear();
                // Everything already buffered is a pipelined request the
                // client sent before reading replies; submit it all now.
                while reader.buffer().contains(&b'\n') {
                    match reader.read_line(&mut line) {
                        Ok(n) if n > 0 && line.ends_with('\n') => {
                            slots.push(submit_line(line.trim(), engine, stop));
                            line.clear();
                        }
                        _ => break,
                    }
                }
                out.clear();
                for slot in slots {
                    match slot {
                        Slot::Blank => {}
                        Slot::Ready(reply) => {
                            out.push_str(&reply);
                            out.push('\n');
                        }
                        Slot::Queued(rx, id) => {
                            let reply = rx.recv().unwrap_or_else(|_| {
                                protocol::render_error(
                                    id,
                                    "unavailable",
                                    "engine stopped before reply",
                                )
                            });
                            out.push_str(&reply);
                            out.push('\n');
                        }
                    }
                }
                if !out.is_empty()
                    && (writer.write_all(out.as_bytes()).is_err() || writer.flush().is_err())
                {
                    break;
                }
                if stop.load(Ordering::SeqCst) {
                    break;
                }
            }
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                if stop.load(Ordering::SeqCst) {
                    break;
                }
            }
            Err(_) => break,
        }
    }
}

/// Parses one line and either answers it inline or submits it to the
/// engine, returning the slot its reply will come from. Inline verbs bump
/// their per-verb counters here; queued ones are counted inside
/// [`Engine::submit`].
fn submit_line(line: &str, engine: &Engine, stop: &AtomicBool) -> Slot {
    if line.is_empty() {
        return Slot::Blank;
    }
    let req = match protocol::parse_request(line) {
        Ok(req) => req,
        Err((id, msg)) => return Slot::Ready(protocol::render_error(id, "bad_request", &msg)),
    };
    match req.op {
        Op::Shutdown
        | Op::Stats
        | Op::Health
        | Op::Flight
        | Op::Ping
        | Op::Artifacts
        | Op::Artifact { .. } => engine.metrics().count_verb(&req.op),
        _ => {}
    }
    match req.op {
        Op::Shutdown => {
            stop.store(true, Ordering::SeqCst);
            Slot::Ready(protocol::render_shutdown(req.id))
        }
        Op::Stats => Slot::Ready(protocol::render_stats(req.id, &engine.stats_reply())),
        Op::Health => {
            let m = engine.metrics();
            Slot::Ready(protocol::render_health(
                req.id,
                m.uptime_s(),
                m.queue_depth.get(),
            ))
        }
        Op::Flight => {
            let (recent, slow) = engine.flight().dump();
            Slot::Ready(protocol::render_flight(
                req.id,
                recent.iter().map(crate::flight::FlightRecord::to_json).collect(),
                slow.iter().map(crate::flight::FlightRecord::to_json).collect(),
                engine.flight().slow_us(),
            ))
        }
        Op::Ping | Op::Artifacts | Op::Artifact { .. } => {
            Slot::Ready(engine::answer_simple(engine.snapshot(), &req))
        }
        _ => {
            let id = req.id;
            let (tx, rx) = mpsc::channel();
            engine.submit(req, tx);
            Slot::Queued(rx, id)
        }
    }
}

// ---------------------------------------------------------------------------
// The HTTP slice: GET-only, two routes, zero dependencies.
// ---------------------------------------------------------------------------

/// Answers one HTTP/1.0-or-1.1 GET on the NDJSON listener: `/metrics`
/// serves the Prometheus text exposition of the live registry, `/health`
/// a JSON liveness document; anything else is a 404. The connection
/// closes after the response (`Connection: close`), which every scraper
/// understands and keeps the server's threading model untouched.
fn handle_http<R: std::io::Read, W: Write>(
    request_line: &str,
    reader: &mut BufReader<R>,
    writer: &mut W,
    engine: &Engine,
    stop: &AtomicBool,
) {
    let path = request_line.split_whitespace().nth(1).unwrap_or("/");
    // Drain the header block so the peer's send buffer is empty before we
    // write (some clients treat an early response + close as an error).
    let mut line = String::new();
    loop {
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) => break,
            Ok(_) if line == "\r\n" || line == "\n" => break,
            Ok(_) => {}
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                if stop.load(Ordering::SeqCst) {
                    return;
                }
            }
            Err(_) => return,
        }
    }
    let (status, content_type, body) = match path {
        "/metrics" => (
            "200 OK",
            "text/plain; version=0.0.4; charset=utf-8",
            engine.metrics().render_prometheus(),
        ),
        "/health" => {
            let m = engine.metrics();
            let body = format!(
                "{{\"status\":\"ok\",\"uptime_s\":{:.3},\"queue_depth\":{}}}\n",
                m.uptime_s(),
                m.queue_depth.get(),
            );
            ("200 OK", "application/json", body)
        }
        _ => ("404 Not Found", "text/plain; charset=utf-8", format!("no route {path}\n")),
    };
    let response = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len(),
    );
    let _ = writer.write_all(response.as_bytes());
    let _ = writer.flush();
}
