//! `repro serve-bench` — the load generator and qps/latency harness.
//!
//! Starts an in-process [`Server`] on an ephemeral TCP port, connects
//! `clients` real socket connections, and replays a deterministic
//! per-client workload (seeded `Rng::seed_stream(seed, client)`) of the
//! hot operations: f32/int8 nearest-neighbour, forest classification,
//! BERT scoring and embedding lookups. Client-side latency is measured
//! per request; reply bytes fold into a per-client FNV-64 checksum.
//!
//! The same workload is then replayed *serially* — one thread, one request
//! at a time through [`engine::answer_serial`] and the identical renderers
//! — and the checksum comparison turns the throughput claim into a
//! byte-identity proof: batching, micro-batch grouping and N worker
//! threads changed wall-clock only, never a single reply byte.
//!
//! The result document (`results/bench_serve.json`, written by the
//! binary) carries qps and qps/core for both paths, the speedup ratio,
//! client latency percentiles, the engine's drained-batch-size histogram,
//! a time-series of queue depth and shed counts sampled while the load
//! ran, the server-side live telemetry snapshot, and both checksums.
//!
//! Latencies are folded into [`kcb_obs::live::LiveHistogram`]s (one per
//! client, merged at the end) instead of a sort over a `Vec` of every
//! sample: memory per client is a fixed 64-bucket table (~0.5 KiB)
//! regardless of request count, and the percentile math is the same code
//! the `stats` verb and `serve-top` use.

use crate::engine::{self, EngineConfig};
use crate::protocol::{self, Op, Request};
use crate::server::{Server, ServerConfig};
use kcb_core::snapshot::Snapshot;
use kcb_obs::live::{HistSnapshot, LiveHistogram};
use kcb_ontology::Relation;
use kcb_util::rng::Rng;
use serde_json::{json, Value};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Version of the `bench_serve.json` shape.
///
/// - v2 — latency percentiles come from the shared live histograms
///   (integer µs); `batch_histogram` became a bucketed snapshot object
///   whose `sum` is the total batched requests; added `timeseries` and
///   `live`.
pub const SCHEMA_VERSION: u64 = 2;

/// Harness knobs.
#[derive(Debug, Clone)]
pub struct BenchConfig {
    /// Concurrent client connections.
    pub clients: usize,
    /// Requests issued per client.
    pub requests: usize,
    /// Engine worker threads.
    pub threads: usize,
    /// Bounded queue capacity (defaults high enough that the synchronous
    /// clients never shed — sheds would be measured, not hidden).
    pub queue_cap: usize,
    /// Largest micro-batch.
    pub batch_max: usize,
    /// Requests each client keeps in flight: it writes `pipeline` rendered
    /// lines in one syscall, then reads that many replies. The server
    /// drains the whole window from its read buffer into one engine
    /// submission, so this is also what feeds the micro-batches.
    pub pipeline: usize,
    /// Workload seed.
    pub seed: u64,
    /// Tiny smoke-test sizing.
    pub fast: bool,
}

impl BenchConfig {
    /// Default sizing for the given mode.
    pub fn sized(threads: usize, seed: u64, fast: bool) -> Self {
        let (clients, requests) = if fast { (4, 64) } else { (8, 256) };
        Self { clients, requests, threads, queue_cap: 4096, batch_max: 32, pipeline: 16, seed, fast }
    }
}

/// FNV-1a 64-bit fold over `bytes`, continuing from `h` (seed with
/// [`FNV_OFFSET`]).
pub const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

/// One FNV-1a step over a byte slice.
pub fn fnv64(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The deterministic request stream for one client: a fixed mix of the
/// hot operations over seeded tokens and triples. Pure function of
/// `(seed, client, n)` — the served and serial phases replay the same
/// stream.
pub fn client_workload(snap: &Snapshot, seed: u64, client: usize, n: usize) -> Vec<Request> {
    let mut rng = Rng::seed_stream(seed, client as u64 + 1);
    let vocab_len = snap.table().vocab().len();
    let n_ent = snap.n_entities();
    let with_bert = snap.bert().is_some();
    (0..n)
        .map(|i| {
            let id = ((client as u64) << 32) | i as u64;
            let triple = |rng: &mut Rng| {
                (
                    rng.below(n_ent) as u32,
                    rng.below(Relation::ALL.len()) as u8,
                    rng.below(n_ent) as u32,
                )
            };
            let token =
                |rng: &mut Rng| snap.table().vocab().token(rng.below(vocab_len) as u32).to_string();
            let op = match rng.below(10) {
                0..=2 => Op::Nn { token: token(&mut rng), k: 10, int8: false },
                3..=4 => Op::Nn { token: token(&mut rng), k: 10, int8: true },
                5..=7 => {
                    let (s, r, o) = triple(&mut rng);
                    Op::Classify { s, r, o }
                }
                8 if with_bert => {
                    let (s, r, o) = triple(&mut rng);
                    Op::Bert { s, r, o }
                }
                8 => {
                    let (s, r, o) = triple(&mut rng);
                    Op::Classify { s, r, o }
                }
                _ => Op::Embed { token: token(&mut rng) },
            };
            Request { id, op }
        })
        .collect()
}

struct ClientResult {
    latencies: HistSnapshot,
    checksum: u64,
}

/// Renders a [`HistSnapshot`] for the result document: summary fields
/// plus the non-zero buckets as `[lo, hi, count]` rows.
fn hist_json(h: &HistSnapshot) -> Value {
    json!({
        "count": h.count(),
        "sum": h.sum,
        "max": h.max,
        "mean": h.mean(),
        "buckets": h.nonzero().iter().map(|&(lo, hi, c)| json!([lo, hi, c])).collect::<Vec<_>>(),
    })
}

/// Connects with bounded exponential backoff (10ms, 40ms between tries).
/// When all `attempts` client threads start at once, the listener's
/// accept backlog can momentarily refuse a connection; one refused
/// connect is startup noise, not a result — but persistent failure still
/// surfaces as the last error rather than hanging the harness.
fn connect_with_backoff(
    addr: std::net::SocketAddr,
    attempts: u32,
) -> std::io::Result<TcpStream> {
    let mut delay = Duration::from_millis(10);
    let mut last_err = None;
    for attempt in 0..attempts.max(1) {
        match TcpStream::connect(addr) {
            Ok(s) => return Ok(s),
            Err(e) => last_err = Some(e),
        }
        if attempt + 1 < attempts.max(1) {
            std::thread::sleep(delay);
            delay *= 4;
        }
    }
    Err(last_err.expect("at least one attempt"))
}

/// One client connection replaying its workload: `pipeline` requests go
/// out in a single write, then that window's replies are read back (the
/// server preserves per-connection order). Latency is measured from the
/// window's send to each reply's arrival — the honest pipelined number,
/// which includes queueing behind the rest of the window.
fn run_client(
    addr: std::net::SocketAddr,
    reqs: &[Request],
    pipeline: usize,
) -> std::io::Result<ClientResult> {
    let stream = connect_with_backoff(addr, 3)?;
    stream.set_nodelay(true)?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut stream = stream;
    let hist = LiveHistogram::new();
    let mut checksum = FNV_OFFSET;
    let mut reply = String::new();
    let mut buf = String::new();
    for window in reqs.chunks(pipeline.max(1)) {
        buf.clear();
        for req in window {
            buf.push_str(&protocol::render_request(req));
            buf.push('\n');
        }
        let t0 = Instant::now();
        stream.write_all(buf.as_bytes())?;
        for _ in window {
            reply.clear();
            reader.read_line(&mut reply)?;
            hist.record(t0.elapsed().as_micros() as u64);
            checksum = fnv64(checksum, reply.as_bytes());
        }
    }
    Ok(ClientResult { latencies: hist.snapshot(), checksum })
}

/// Combines per-client checksums (in client order) into one digest.
fn combine(checksums: &[u64]) -> String {
    let mut h = FNV_OFFSET;
    for &c in checksums {
        h = fnv64(h, &c.to_be_bytes());
    }
    format!("{h:016x}")
}

/// Runs the full harness against `snap` and returns the
/// `bench_serve.json` document. Owns the telemetry recorder for the
/// duration (reset, enable, drain, restore), like `bench-query`.
pub fn run(snap: Arc<Snapshot>, cfg: &BenchConfig) -> Value {
    let was_enabled = kcb_obs::enabled();
    kcb_obs::reset();
    kcb_obs::set_enabled(true);

    let workloads: Vec<Vec<Request>> = (0..cfg.clients)
        .map(|c| client_workload(&snap, cfg.seed, c, cfg.requests))
        .collect();
    let total_requests = cfg.clients * cfg.requests;

    // --- Served phase: real sockets, concurrent clients, batching engine.
    let server = Server::start(
        Arc::clone(&snap),
        &ServerConfig {
            tcp: Some("127.0.0.1:0".to_string()),
            socket: None,
            engine: EngineConfig {
                workers: cfg.threads.max(1),
                queue_cap: cfg.queue_cap,
                batch_max: cfg.batch_max,
                flight: Default::default(),
            },
        },
    )
    .expect("bind bench server");
    let addr = server.tcp_addr.expect("tcp listener bound");

    // A sampler thread rides alongside the clients, reading queue depth
    // and the shed counter every few milliseconds — the time-series that
    // shows *when* backpressure built, not just that it did.
    let sample_every = Duration::from_millis(if cfg.fast { 2 } else { 5 });
    let sampling = AtomicBool::new(true);
    let t0 = Instant::now();
    let (results, timeseries): (Vec<ClientResult>, Vec<Value>) = std::thread::scope(|s| {
        let sampler = {
            let (server, sampling, t0) = (&server, &sampling, t0);
            s.spawn(move || {
                let mut samples = Vec::new();
                while sampling.load(Ordering::Relaxed) {
                    let st = server.stats();
                    samples.push(json!({
                        "t_ms": t0.elapsed().as_secs_f64() * 1e3,
                        "queue_depth": st.queue_depth,
                        "shed": st.shed,
                        "served": st.served,
                    }));
                    std::thread::sleep(sample_every);
                }
                samples
            })
        };
        let handles: Vec<_> = workloads
            .iter()
            .map(|reqs| {
                s.spawn(move || run_client(addr, reqs, cfg.pipeline).expect("bench client io"))
            })
            .collect();
        let results =
            handles.into_iter().map(|h| h.join().expect("bench client panicked")).collect();
        sampling.store(false, Ordering::Relaxed);
        (results, sampler.join().expect("sampler panicked"))
    });
    let served_wall = t0.elapsed().as_secs_f64();

    let histogram = server.batch_histogram();
    let stats = server.stats();
    let live = server.metrics().snapshot();
    let server_e2e = server.metrics().e2e_us.snapshot();
    let timing_on = server.metrics().timing();
    server.stop();
    // An empty connection nudges the accept loop in case it is between
    // polls; then wait for the graceful drain.
    let _ = TcpStream::connect(addr);
    let final_stats = server.wait();

    let mut latencies = HistSnapshot::default();
    for r in &results {
        latencies.merge(&r.latencies);
    }
    let served_checksum = combine(&results.iter().map(|r| r.checksum).collect::<Vec<_>>());

    // --- Serial phase: same workload, one thread, single-query paths.
    let bert = snap.bert().map(kcb_core::snapshot::BertWeights::instantiate);
    let serial_hist = LiveHistogram::new();
    let mut serial_checksums = Vec::with_capacity(cfg.clients);
    let t0 = Instant::now();
    for reqs in &workloads {
        let mut h = FNV_OFFSET;
        for req in reqs {
            let q0 = Instant::now();
            let reply = engine::answer_serial(&snap, bert.as_ref(), req);
            serial_hist.record(q0.elapsed().as_micros() as u64);
            h = fnv64(h, reply.as_bytes());
            h = fnv64(h, b"\n");
        }
        serial_checksums.push(h);
    }
    let serial_wall = t0.elapsed().as_secs_f64();
    let serial_latencies = serial_hist.snapshot();
    let serial_checksum = combine(&serial_checksums);

    let telemetry = kcb_obs::drain();
    kcb_obs::set_enabled(was_enabled);
    let span_stats = Value::Object(
        kcb_obs::profile::span_stats(&telemetry)
            .into_iter()
            .filter(|(k, _)| k.starts_with("serve."))
            .map(|(k, s)| {
                let row = json!({
                    "count": s.count,
                    "total_s": s.total_s,
                    "p50_s": s.p50_s,
                    "p95_s": s.p95_s,
                    "p99_s": s.p99_s,
                    "max_s": s.max_s,
                });
                (k, row)
            })
            .collect(),
    );

    let served_qps = total_requests as f64 / served_wall.max(1e-9);
    let serial_qps = total_requests as f64 / serial_wall.max(1e-9);
    let config = json!({
        "clients": cfg.clients,
        "requests_per_client": cfg.requests,
        "threads": cfg.threads,
        "queue_cap": cfg.queue_cap,
        "batch_max": cfg.batch_max,
        "pipeline": cfg.pipeline,
        "seed": cfg.seed,
        "fast": cfg.fast,
        "live_timing": timing_on,
    });
    let served = json!({
        "requests": total_requests,
        "served": final_stats.served,
        "shed": stats.shed,
        "wall_s": served_wall,
        "qps": served_qps,
        "qps_per_core": served_qps / cfg.threads.max(1) as f64,
        "p50_us": latencies.percentile(50.0),
        "p95_us": latencies.percentile(95.0),
        "p99_us": latencies.percentile(99.0),
        "max_us": latencies.max,
        "checksum": served_checksum.clone(),
    });
    let serial = json!({
        "requests": total_requests,
        "wall_s": serial_wall,
        "qps": serial_qps,
        "p50_us": serial_latencies.percentile(50.0),
        "p99_us": serial_latencies.percentile(99.0),
        "checksum": serial_checksum.clone(),
    });
    // Server-side view: the engine's own end-to-end histogram plus the
    // full live-registry counters, so the doc shows both vantage points.
    let live_doc = json!({
        "timing": timing_on,
        "e2e": hist_json(&server_e2e),
        "counters": Value::Object(
            live.counters.iter().map(|(k, &v)| (k.clone(), json!(v))).collect(),
        ),
    });
    json!({
        "schema_version": SCHEMA_VERSION,
        "config": config,
        "served": served,
        "serial": serial,
        "speedup_vs_serial": served_qps / serial_qps.max(1e-9),
        "byte_identical": served_checksum == serial_checksum,
        "batch_histogram": hist_json(&histogram),
        "timeseries": timeseries,
        "live": live_doc,
        "span_stats": span_stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn connect_backoff_succeeds_against_a_live_listener() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        assert!(connect_with_backoff(addr, 3).is_ok());
    }

    #[test]
    fn connect_backoff_gives_up_with_the_last_error() {
        // Bind then drop: the port existed a moment ago but nobody
        // listens now, so every attempt is refused.
        let addr = {
            let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap()
        };
        let t0 = Instant::now();
        assert!(connect_with_backoff(addr, 3).is_err());
        // Two sleeps happened between the three attempts (10ms + 40ms).
        assert!(t0.elapsed() >= Duration::from_millis(50));
    }

    #[test]
    fn connect_backoff_retries_until_the_listener_appears() {
        // The listener comes up mid-backoff: attempt 1 is refused, a
        // later one lands — the serve-bench startup race in miniature.
        let addr = {
            let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap()
        };
        let handle = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(25));
            std::net::TcpListener::bind(addr)
        });
        let got = connect_with_backoff(addr, 3);
        let listener = handle.join().unwrap();
        assert!(listener.is_ok(), "rebind failed; can't assess retry");
        assert!(got.is_ok(), "late listener should be reached by a retry");
    }
}
