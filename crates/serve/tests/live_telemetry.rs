//! Contracts of the live observability plane, end to end over real
//! sockets: the `/metrics` + `/health` HTTP routes on the NDJSON
//! listener, the `stats` / `health` / `flight` admin verbs, metric
//! consistency against ground truth, and the flight recorder's overload
//! flush.

use kcb_core::lab::{Lab, LabConfig};
use kcb_core::snapshot::{Snapshot, SnapshotSpec};
use kcb_serve::engine::{Engine, EngineConfig};
use kcb_serve::flight::FlightConfig;
use kcb_serve::protocol::{parse_value, Op, Request};
use kcb_serve::server::{Server, ServerConfig};
use serde_json::Value;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::sync::{mpsc, Arc};

fn frozen() -> Arc<Snapshot> {
    let lab = Lab::new(LabConfig::tiny());
    Arc::new(Snapshot::freeze(&lab, SnapshotSpec { bert: false, ..SnapshotSpec::default() }))
}

fn start_server(snap: Arc<Snapshot>) -> Server {
    Server::start(
        snap,
        &ServerConfig {
            tcp: Some("127.0.0.1:0".to_string()),
            socket: None,
            engine: EngineConfig { workers: 2, queue_cap: 256, batch_max: 8, ..Default::default() },
        },
    )
    .expect("bind")
}

/// One HTTP GET against the NDJSON listener; returns the raw response.
fn http_get(addr: std::net::SocketAddr, path: &str) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .write_all(format!("GET {path} HTTP/1.1\r\nHost: kcb\r\n\r\n").as_bytes())
        .expect("write request");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    response
}

/// Splits an HTTP response into (status line, body).
fn split_http(response: &str) -> (&str, &str) {
    let status = response.lines().next().unwrap_or("");
    let body = response.split("\r\n\r\n").nth(1).unwrap_or("");
    (status, body)
}

/// Parses `# TYPE`-annotated Prometheus text into (name, value) samples,
/// panicking on any malformed line — the format validator for the tests.
fn parse_exposition(body: &str) -> Vec<(String, f64)> {
    let mut samples = Vec::new();
    let mut typed: Vec<String> = Vec::new();
    for line in body.lines() {
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.split_whitespace();
            let name = parts.next().expect("TYPE line has a name").to_string();
            let kind = parts.next().expect("TYPE line has a kind");
            assert!(
                matches!(kind, "counter" | "gauge" | "histogram"),
                "unknown TYPE {kind} in {line:?}"
            );
            typed.push(name);
            continue;
        }
        if line.starts_with('#') || line.is_empty() {
            continue;
        }
        let (name_part, value) = line.rsplit_once(' ').unwrap_or_else(|| panic!("bad sample line {line:?}"));
        let name = name_part.split('{').next().expect("sample has a name");
        for ch in name.chars() {
            assert!(
                ch.is_ascii_alphanumeric() || ch == '_',
                "invalid metric name char {ch:?} in {line:?}"
            );
        }
        assert!(
            typed.iter().any(|t| name == t || name.starts_with(&format!("{t}_"))),
            "sample {name} has no preceding TYPE line"
        );
        let v: f64 = value.parse().unwrap_or_else(|_| panic!("bad value in {line:?}"));
        samples.push((name_part.to_string(), v));
    }
    assert!(!samples.is_empty(), "empty exposition");
    samples
}

fn sample(samples: &[(String, f64)], name: &str) -> f64 {
    samples
        .iter()
        .find(|(n, _)| n == name)
        .unwrap_or_else(|| panic!("no sample {name}"))
        .1
}

#[test]
fn http_metrics_and_health_ride_the_ndjson_listener() {
    let server = start_server(frozen());
    let addr = server.tcp_addr.expect("tcp bound");

    // Drive some NDJSON traffic so the counters are non-trivial.
    let mut ndjson = TcpStream::connect(addr).expect("connect");
    let mut reader = BufReader::new(ndjson.try_clone().expect("clone"));
    let mut ask = |stream: &mut TcpStream, line: &str| {
        stream.write_all(line.as_bytes()).expect("write");
        stream.write_all(b"\n").expect("write");
        let mut reply = String::new();
        reader.read_line(&mut reply).expect("read");
        reply
    };
    for i in 0..5 {
        let r = ask(&mut ndjson, &format!(r#"{{"id":{i},"op":"nn","token":"acid","k":3}}"#));
        assert!(r.contains(r#""ok":true"#), "{r}");
    }

    let response = http_get(addr, "/metrics");
    let (status, body) = split_http(&response);
    assert!(status.contains("200 OK"), "{status}");
    assert!(response.contains("text/plain; version=0.0.4"), "{response}");
    let first = parse_exposition(body);
    assert_eq!(sample(&first, "serve_served_total"), 5.0);
    assert_eq!(sample(&first, "serve_requests_nn_total"), 5.0);
    assert_eq!(sample(&first, "serve_shed_total"), 0.0);
    assert!(sample(&first, "serve_e2e_us_count") == 5.0, "e2e histogram saw every request");
    // Histogram buckets are cumulative and end at +Inf == _count.
    let inf = sample(&first, r#"serve_e2e_us_bucket{le="+Inf"}"#);
    assert_eq!(inf, sample(&first, "serve_e2e_us_count"));

    // More traffic, then a second scrape: counters are monotone.
    for i in 5..9 {
        let r = ask(&mut ndjson, &format!(r#"{{"id":{i},"op":"classify","s":0,"r":0,"o":1}}"#));
        assert!(r.contains(r#""id":{}"#.replace("{}", &i.to_string()).as_str()), "{r}");
    }
    let (status2, body2) = {
        let resp = http_get(addr, "/metrics");
        let (s, b) = split_http(&resp);
        (s.to_string(), b.to_string())
    };
    assert!(status2.contains("200 OK"), "{status2}");
    let second = parse_exposition(&body2);
    for (name, v1) in &first {
        if name.contains("_total") || name.contains("_count") || name.contains("_sum") {
            let v2 = sample(&second, name);
            assert!(v2 >= *v1, "{name} went backwards: {v1} -> {v2}");
        }
    }
    assert_eq!(sample(&second, "serve_served_total"), 9.0);

    let health = http_get(addr, "/health");
    let (status, body) = split_http(&health);
    assert!(status.contains("200 OK"), "{status}");
    let doc = parse_value(body.trim()).expect("health is json");
    assert_eq!(doc.get("status").and_then(Value::as_str), Some("ok"));
    assert!(doc.get("uptime_s").and_then(Value::as_f64).expect("uptime") >= 0.0);

    let missing = http_get(addr, "/nope");
    assert!(split_http(&missing).0.contains("404"), "{missing}");

    let _ = ask(&mut ndjson, r#"{"id":99,"op":"shutdown"}"#);
    let _ = TcpStream::connect(addr);
    server.wait();
}

#[test]
fn stats_health_and_flight_admin_verbs_answer_inline() {
    let server = start_server(frozen());
    let addr = server.tcp_addr.expect("tcp bound");
    let mut stream = TcpStream::connect(addr).expect("connect");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut ask = |stream: &mut TcpStream, line: &str| {
        stream.write_all(line.as_bytes()).expect("write");
        stream.write_all(b"\n").expect("write");
        let mut reply = String::new();
        reader.read_line(&mut reply).expect("read");
        parse_value(reply.trim()).unwrap_or_else(|e| panic!("{reply}: {e}"))
    };

    for i in 0..6 {
        let r = ask(&mut stream, &format!(r#"{{"id":{i},"op":"nn","token":"acid","k":2}}"#));
        assert_eq!(r.get("ok").and_then(Value::as_bool), Some(true), "{r:?}");
    }

    let stats = ask(&mut stream, r#"{"id":100,"op":"stats"}"#);
    assert_eq!(stats.get("served").and_then(Value::as_u64), Some(6));
    assert_eq!(stats.get("shed").and_then(Value::as_u64), Some(0));
    assert_eq!(stats.get("errors").and_then(Value::as_u64), Some(0));
    assert!(stats.get("uptime_s").and_then(Value::as_f64).expect("uptime") >= 0.0);
    assert!(stats.get("p50_us").and_then(Value::as_u64).expect("p50") > 0);
    let p99 = stats.get("p99_us").and_then(Value::as_u64).expect("p99");
    let max = stats.get("max_us").and_then(Value::as_u64).expect("max");
    assert!(p99 <= max.max(1) * 3 / 2, "p99 {p99} way past max {max}");
    let verbs = stats.get("verbs").expect("verbs map");
    assert_eq!(verbs.get("nn").and_then(Value::as_u64), Some(6));
    assert_eq!(verbs.get("stats").and_then(Value::as_u64), Some(1));

    let health = ask(&mut stream, r#"{"id":101,"op":"health"}"#);
    assert_eq!(health.get("status").and_then(Value::as_str), Some("ok"));
    assert_eq!(health.get("queue_depth").and_then(Value::as_u64), Some(0));

    let flight = ask(&mut stream, r#"{"id":102,"op":"flight"}"#);
    assert_eq!(flight.get("ok").and_then(Value::as_bool), Some(true));
    let recent = flight.get("recent").and_then(Value::as_array).expect("recent ring");
    assert_eq!(recent.len(), 6, "one record per served request");
    for rec in recent {
        assert_eq!(rec.get("op").and_then(Value::as_str), Some("nn"));
        assert_eq!(rec.get("outcome").and_then(Value::as_str), Some("ok"));
        assert!(rec.get("batch").and_then(Value::as_u64).expect("batch id") >= 1);
        assert!(rec.get("latency_us").and_then(Value::as_u64).is_some());
    }
    assert!(flight.get("slow_us").and_then(Value::as_u64).expect("threshold") > 0);

    let _ = ask(&mut stream, r#"{"id":103,"op":"shutdown"}"#);
    let _ = TcpStream::connect(addr);
    server.wait();
}

#[test]
fn engine_metrics_agree_with_ground_truth() {
    let snap = frozen();
    let engine = Engine::start(
        Arc::clone(&snap),
        &EngineConfig { workers: 2, queue_cap: 512, batch_max: 4, ..Default::default() },
    );
    const N: u64 = 40;
    let mut rxs = Vec::new();
    for i in 0..N {
        let (tx, rx) = mpsc::channel();
        // Every other request is an invalid triple → a typed error reply.
        let o = if i % 2 == 0 { 1 } else { u32::MAX };
        engine.submit(Request { id: i, op: Op::Classify { s: 0, r: 0, o } }, tx);
        rxs.push(rx);
    }
    for rx in rxs {
        let _ = rx.recv().expect("reply");
    }
    let m = engine.metrics();
    assert_eq!(m.served.get(), N);
    assert_eq!(m.errors.get(), N / 2, "invalid triples are counted as errors");
    assert_eq!(m.e2e_us.snapshot().count(), N, "every request has a latency sample");
    assert_eq!(m.queue_wait_us.snapshot().count(), N);
    let sizes = engine.batch_histogram();
    assert_eq!(sizes.sum, N, "batch sizes sum to requests served");
    assert!(sizes.max <= 4, "batch_max respected: {}", sizes.max);
    assert_eq!(m.in_flight.get(), 0, "in-flight gauge returns to zero");
    assert_eq!(m.verb_counts(), vec![("classify", N)]);
    let (recent, _slow) = engine.flight().dump();
    assert_eq!(recent.len(), N as usize);
    assert_eq!(recent.iter().filter(|r| r.outcome == "error").count(), N as usize / 2);
    let stats = engine.shutdown();
    assert_eq!(stats.served, N);
}

#[test]
fn overload_transition_flushes_the_flight_recorder() {
    let path = std::env::temp_dir().join(format!("kcb-flight-ov-{}.jsonl", std::process::id()));
    let _ = std::fs::remove_file(&path);
    let snap = frozen();
    // Zero workers: the queue fills deterministically and sheds.
    let engine = Engine::start(
        Arc::clone(&snap),
        &EngineConfig {
            workers: 0,
            queue_cap: 2,
            batch_max: 8,
            flight: FlightConfig { path: Some(path.clone()), ..FlightConfig::default() },
        },
    );
    let mut rxs = Vec::new();
    for i in 0..6u64 {
        let (tx, rx) = mpsc::channel();
        engine.submit(Request { id: i, op: Op::Ping }, tx);
        rxs.push(rx);
    }
    assert_eq!(engine.stats().shed, 4);
    let (_, text) = (engine.shutdown(), std::fs::read_to_string(&path).expect("flush file"));
    assert!(text.contains(r#""reason":"overload""#), "overload transition flushed: {text}");
    assert!(text.contains(r#""reason":"shutdown""#), "graceful shutdown flushed: {text}");
    assert!(text.contains(r#""outcome":"shed""#), "shed requests are recorded: {text}");
    for line in text.lines() {
        kcb_obs::json::validate(line).unwrap_or_else(|e| panic!("{line}: {e}"));
    }
    std::fs::remove_file(&path).ok();
}
