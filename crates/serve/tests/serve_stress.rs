//! Serving-path contracts under concurrency and overload.
//!
//! 1. **Snapshot stress**: N threads hammer one frozen snapshot with a
//!    mixed query stream; every reply must be byte-identical to the
//!    single-threaded serial reference. This is the determinism half of
//!    the serving story — shared immutable state, no locks, no drift.
//! 2. **Backpressure**: a zero-worker engine with a tiny queue must shed
//!    exactly the overflow with typed `overloaded` replies and keep memory
//!    bounded (queue never exceeds its cap).
//! 3. **End-to-end socket smoke**: a real TCP server answers the protocol
//!    ops and honours `shutdown` with a graceful drain.

use kcb_core::lab::{Lab, LabConfig};
use kcb_core::snapshot::{Snapshot, SnapshotSpec};
use kcb_serve::bench::{client_workload, fnv64, FNV_OFFSET};
use kcb_serve::engine::{answer_serial, Engine, EngineConfig};
use kcb_serve::protocol::{self, Op, Request};
use kcb_serve::server::{Server, ServerConfig};
use std::io::{BufRead, BufReader, Write};
use std::sync::{mpsc, Arc};

fn frozen() -> Arc<Snapshot> {
    let lab = Lab::new(LabConfig::tiny());
    Arc::new(Snapshot::freeze(&lab, SnapshotSpec::default()))
}

#[test]
fn concurrent_mixed_queries_are_byte_identical_to_serial() {
    let snap = frozen();
    const THREADS: usize = 8;
    const PER_THREAD: usize = 48;

    // Serial reference, one thread, one request at a time.
    let bert = snap.bert().map(kcb_core::snapshot::BertWeights::instantiate);
    let expected: Vec<Vec<String>> = (0..THREADS)
        .map(|t| {
            let reqs = client_workload(&snap, 99, t, PER_THREAD);
            reqs.iter().map(|r| answer_serial(&snap, bert.as_ref(), r)).collect()
        })
        .collect();

    // The same streams, replayed concurrently against the shared
    // snapshot through an engine with batching enabled.
    let engine = Engine::start(
        Arc::clone(&snap),
        &EngineConfig { workers: 4, queue_cap: 1024, batch_max: 16, ..EngineConfig::default() },
    );
    let got: Vec<Vec<String>> = std::thread::scope(|s| {
        let engine = &engine;
        let snap = &snap;
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                s.spawn(move || {
                    client_workload(snap, 99, t, PER_THREAD)
                        .into_iter()
                        .map(|req| {
                            let (tx, rx) = mpsc::channel();
                            engine.submit(req, tx);
                            rx.recv().expect("reply")
                        })
                        .collect::<Vec<String>>()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("stress thread")).collect()
    });
    let stats = engine.shutdown();

    assert_eq!(stats.shed, 0, "queue was large enough to admit everything");
    assert_eq!(stats.served, (THREADS * PER_THREAD) as u64);
    for (t, (g, e)) in got.iter().zip(&expected).enumerate() {
        assert_eq!(g, e, "thread {t} replies differ from the serial reference");
    }
}

#[test]
fn overflow_sheds_typed_replies_and_stays_bounded() {
    let snap = frozen();
    const CAP: usize = 4;
    // Zero workers: nothing drains, so the queue fills deterministically.
    let engine =
        Engine::start(Arc::clone(&snap), &EngineConfig { workers: 0, queue_cap: CAP, batch_max: 8, ..EngineConfig::default() });

    let mut rxs = Vec::new();
    for i in 0..20u64 {
        let (tx, rx) = mpsc::channel();
        engine.submit(Request { id: i, op: Op::Classify { s: 0, r: 0, o: 1 } }, tx);
        rxs.push(rx);
    }
    let stats = engine.stats();
    assert_eq!(stats.queue_depth, CAP, "queue never exceeds its bound");
    assert_eq!(stats.shed, 20 - CAP as u64);

    // Shed requests were answered immediately with the typed reply; the
    // admitted ones are still pending.
    let mut overloaded = 0;
    for (i, rx) in rxs.iter().enumerate() {
        match rx.try_recv() {
            Ok(reply) => {
                assert!(
                    reply.contains(r#""error":"overloaded""#),
                    "request {i} got a non-shed reply: {reply}"
                );
                assert!(reply.contains(&format!(r#""id":{i}"#)), "{reply}");
                overloaded += 1;
            }
            Err(mpsc::TryRecvError::Empty) => {}
            Err(e) => panic!("request {i}: {e}"),
        }
    }
    assert_eq!(overloaded, 20 - CAP);

    // Shutdown with no workers drops the pending jobs: channels close
    // rather than hang.
    let final_stats = engine.shutdown();
    assert_eq!(final_stats.served, 0);
    assert_eq!(final_stats.shed, 20 - CAP as u64);
}

#[test]
fn tcp_server_answers_the_protocol_and_drains_on_shutdown() {
    let lab = Lab::new(LabConfig::tiny());
    let mut snap = Snapshot::freeze(&lab, SnapshotSpec { bert: false, ..SnapshotSpec::default() });
    snap.add_artifact("table2", serde_json::json!({"id": "table2", "rows": 3usize}));
    let server = Server::start(
        Arc::new(snap),
        &ServerConfig {
            tcp: Some("127.0.0.1:0".to_string()),
            socket: None,
            engine: EngineConfig { workers: 2, queue_cap: 64, batch_max: 8, ..EngineConfig::default() },
        },
    )
    .expect("bind");
    let addr = server.tcp_addr.expect("tcp bound");

    let stream = std::net::TcpStream::connect(addr).expect("connect");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut stream = stream;
    let mut ask = |line: &str| {
        stream.write_all(line.as_bytes()).expect("write");
        stream.write_all(b"\n").expect("write");
        let mut reply = String::new();
        reader.read_line(&mut reply).expect("read");
        reply
    };

    assert!(ask(r#"{"id":1,"op":"ping"}"#).contains(r#""ok":true"#));
    assert!(ask(r#"{"id":2,"op":"artifacts"}"#).contains("table2"));
    assert!(ask(r#"{"id":3,"op":"artifact","name":"table2"}"#).contains(r#""rows":3"#));
    assert!(ask(r#"{"id":4,"op":"artifact","name":"nope"}"#).contains("not_found"));
    let nn = ask(r#"{"id":5,"op":"nn","token":"acid","k":3}"#);
    assert!(nn.contains(r#""id":5"#), "{nn}");
    let cls = ask(r#"{"id":6,"op":"classify","s":0,"r":0,"o":1}"#);
    assert!(cls.contains(r#""p":"#), "{cls}");
    // No BERT in this snapshot: typed unavailable, not a crash.
    assert!(ask(r#"{"id":7,"op":"bert","s":0,"r":0,"o":1}"#).contains("unavailable"));
    assert!(ask(r#"{"id":8,"op":"classify","s":0,"r":99,"o":1}"#).contains("bad_request"));
    assert!(ask("not json").contains("bad_request"));
    let stats = ask(r#"{"id":9,"op":"stats"}"#);
    assert!(stats.contains(r#""served":"#), "{stats}");
    assert!(ask(r#"{"id":10,"op":"shutdown"}"#).contains(r#""op":"shutdown""#));

    let final_stats = server.wait();
    assert!(final_stats.served >= 4, "kernel ops were served: {final_stats:?}");
    assert_eq!(final_stats.shed, 0);
}

#[test]
fn workload_generation_is_deterministic_and_fnv_is_stable() {
    let snap = frozen();
    let a = client_workload(&snap, 7, 3, 32);
    let b = client_workload(&snap, 7, 3, 32);
    assert_eq!(a, b);
    let c = client_workload(&snap, 7, 4, 32);
    assert_ne!(a, c, "different clients draw different streams");
    assert_eq!(fnv64(FNV_OFFSET, b""), FNV_OFFSET);
    assert_ne!(fnv64(FNV_OFFSET, b"a"), fnv64(FNV_OFFSET, b"b"));
    // Round-trip every generated request through the wire format.
    for req in &a {
        assert_eq!(protocol::parse_request(&protocol::render_request(req)).unwrap(), *req);
    }
}
