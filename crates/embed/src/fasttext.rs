//! fastText-style subword embeddings — the BioWordVec stand-in (§2.3).
//!
//! Each word's vector is the average of its word vector and the vectors of
//! its character n-grams (hashed into a fixed bucket table). The model is
//! trained with skip-gram negative sampling, distributing each gradient
//! across the word's constituent vectors. Out-of-vocabulary words still get
//! a composed subword vector — the property that gives BioWordVec its low
//! effective OOV rate on chemical morphology (paper Table A4).

use crate::model::{EmbeddingModel, Lookup};
use crate::shard::{self, DeltaTable};
use kcb_text::Vocab;
use kcb_util::fnv1a;
use kcb_util::{pool, Rng};

/// fastText hyperparameters.
#[derive(Debug, Clone, Copy)]
pub struct FastTextConfig {
    /// Embedding width.
    pub dim: usize,
    /// Maximum context window.
    pub window: usize,
    /// Negative samples per pair.
    pub negative: usize,
    /// Training epochs.
    pub epochs: usize,
    /// Initial learning rate.
    pub lr: f32,
    /// Minimum word frequency for the word table.
    pub min_count: u64,
    /// Number of n-gram hash buckets.
    pub buckets: usize,
    /// Minimum n-gram length.
    pub min_n: usize,
    /// Maximum n-gram length.
    pub max_n: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for FastTextConfig {
    fn default() -> Self {
        Self {
            dim: 100,
            window: 5,
            negative: 5,
            epochs: 5,
            lr: 0.05,
            min_count: 2,
            buckets: 20_000,
            min_n: 3,
            max_n: 5,
            seed: 42,
        }
    }
}

/// A trained fastText model.
#[derive(Debug, Clone)]
pub struct FastText {
    name: String,
    vocab: Vocab,
    /// Word vectors `(n_words, dim)` flat.
    word_vecs: Vec<f32>,
    /// N-gram bucket vectors `(buckets, dim)` flat.
    ngram_vecs: Vec<f32>,
    dim: usize,
    buckets: usize,
    min_n: usize,
    max_n: usize,
}

impl FastText {
    /// Trains on tokenized sentences.
    pub fn train(name: &str, sentences: &[Vec<String>], cfg: &FastTextConfig) -> Self {
        let vocab = Vocab::from_streams(
            sentences.iter().map(|s| s.iter().map(String::as_str)),
            cfg.min_count,
        );
        assert!(!vocab.is_empty(), "fasttext: empty vocabulary");
        let n = vocab.len();
        let dim = cfg.dim;
        let mut rng = Rng::seed_stream(cfg.seed, 0xfa57);

        let mut word_vecs = vec![0.0f32; n * dim];
        let mut ngram_vecs = vec![0.0f32; cfg.buckets * dim];
        let init = 0.5 / dim as f32;
        for v in word_vecs.iter_mut().chain(ngram_vecs.iter_mut()) {
            *v = rng.f32_range(-init, init);
        }
        let mut syn1 = vec![0.0f32; n * dim]; // output vectors

        // Precompute each vocabulary word's n-gram bucket list.
        let word_ngrams: Vec<Vec<u32>> = (0..n as u32)
            .map(|i| ngram_buckets(vocab.token(i), cfg.min_n, cfg.max_n, cfg.buckets))
            .collect();

        // Negative-sampling cumulative table (unigram^0.75).
        let neg_cum: Vec<f64> = {
            let mut acc = 0.0;
            (0..n as u32)
                .map(|i| {
                    acc += (vocab.count(i) as f64).powf(0.75);
                    acc
                })
                .collect()
        };
        let neg_total = *neg_cum.last().expect("non-empty");

        let id_sentences: Vec<Vec<u32>> = sentences
            .iter()
            .map(|s| s.iter().filter_map(|t| vocab.id(t)).collect())
            .collect();
        let total_tokens: usize = id_sentences.iter().map(Vec::len).sum();
        let total_work = (total_tokens * cfg.epochs).max(1);

        // Block-synchronous sharded SGD (see `crate::shard`): bitwise
        // identical at any thread count.
        struct Shard {
            dword: DeltaTable,
            dngram: DeltaTable,
            dsyn1: DeltaTable,
            hidden: Vec<f32>,
            row_eff: Vec<f32>,
            grad: Vec<f32>,
        }
        let mut shards: Vec<Shard> = (0..shard::SHARDS)
            .map(|_| Shard {
                dword: DeltaTable::new(n, dim),
                dngram: DeltaTable::new(cfg.buckets, dim),
                dsyn1: DeltaTable::new(n, dim),
                hidden: vec![0.0; dim],
                row_eff: vec![0.0; dim],
                grad: vec![0.0; dim],
            })
            .collect();

        // Shard-contention counters for the averaged fold-in (see
        // `DeltaTable::apply_averaged`): n-gram buckets are shared by
        // every word containing the gram, so summed deltas diverge.
        let mut cnt_word = vec![0u32; n];
        let mut cnt_ngram = vec![0u32; cfg.buckets];
        let mut cnt_syn1 = vec![0u32; n];

        let mut processed = 0usize;
        for epoch in 0..cfg.epochs {
            for (block_idx, block) in id_sentences.chunks(shard::BLOCK_SENTENCES).enumerate() {
                let lr_now = {
                    let frac = processed as f32 / total_work as f32;
                    (cfg.lr * (1.0 - frac)).max(cfg.lr * 1e-4)
                };
                let workers = pool::fanout(pool::threads(), shard::SHARDS);
                pool::run_sharded(workers, &mut shards, |s, st| {
                    st.dword.begin_block();
                    st.dngram.begin_block();
                    st.dsyn1.begin_block();
                    let mut rng = Rng::seed_stream(
                        cfg.seed,
                        shard::shard_stream(0xfa57, epoch, block_idx, s),
                    );
                    for sent in &block[shard::shard_range(block.len(), s)] {
                        if sent.len() < 2 {
                            continue;
                        }
                        for (pos, &center) in sent.iter().enumerate() {
                            let b = 1 + rng.below(cfg.window);
                            let lo = pos.saturating_sub(b);
                            let hi = (pos + b + 1).min(sent.len());
                            let grams = &word_ngrams[center as usize];
                            let parts = (grams.len() + 1) as f32;
                            for ctx_pos in lo..hi {
                                if ctx_pos == pos {
                                    continue;
                                }
                                let context = sent[ctx_pos];
                                // hidden = mean(word vec, ngram vecs), all
                                // through the shard's effective view.
                                st.dword.read_into(center as usize, &word_vecs, &mut st.row_eff);
                                st.hidden.copy_from_slice(&st.row_eff);
                                for &g in grams {
                                    st.dngram.read_into(g as usize, &ngram_vecs, &mut st.row_eff);
                                    for j in 0..dim {
                                        st.hidden[j] += st.row_eff[j];
                                    }
                                }
                                for h in st.hidden.iter_mut() {
                                    *h /= parts;
                                }
                                st.grad.fill(0.0);
                                for k in 0..=cfg.negative {
                                    let (target, label) = if k == 0 {
                                        (context, 1.0f32)
                                    } else {
                                        let t = rng.f64() * neg_total;
                                        let negw =
                                            neg_cum.partition_point(|&c| c <= t).min(n - 1) as u32;
                                        if negw == context {
                                            continue;
                                        }
                                        (negw, 0.0)
                                    };
                                    let u = target as usize;
                                    st.dsyn1.read_into(u, &syn1, &mut st.row_eff);
                                    let score = kcb_ml::linalg::dot(&st.hidden, &st.row_eff);
                                    let g = (label - kcb_ml::linalg::sigmoid(score)) * lr_now;
                                    let drow = st.dsyn1.row_mut(u);
                                    for j in 0..dim {
                                        st.grad[j] += g * st.row_eff[j];
                                        drow[j] += g * st.hidden[j];
                                    }
                                }
                                // Distribute the hidden-layer gradient.
                                let scale = 1.0 / parts;
                                let wrow = st.dword.row_mut(center as usize);
                                for j in 0..dim {
                                    wrow[j] += st.grad[j] * scale;
                                }
                                for &gb in grams {
                                    let r = st.dngram.row_mut(gb as usize);
                                    for j in 0..dim {
                                        r[j] += st.grad[j] * scale;
                                    }
                                }
                            }
                        }
                    }
                });
                cnt_word.fill(0);
                cnt_ngram.fill(0);
                cnt_syn1.fill(0);
                for st in &shards {
                    st.dword.add_touch_counts(&mut cnt_word);
                    st.dngram.add_touch_counts(&mut cnt_ngram);
                    st.dsyn1.add_touch_counts(&mut cnt_syn1);
                }
                for st in &shards {
                    st.dword.apply_averaged(&mut word_vecs, &cnt_word);
                    st.dngram.apply_averaged(&mut ngram_vecs, &cnt_ngram);
                    st.dsyn1.apply_averaged(&mut syn1, &cnt_syn1);
                }
                processed += block.iter().map(Vec::len).sum::<usize>();
            }
        }

        Self {
            name: name.to_string(),
            vocab,
            word_vecs,
            ngram_vecs,
            dim,
            buckets: cfg.buckets,
            min_n: cfg.min_n,
            max_n: cfg.max_n,
        }
    }

    /// The word vocabulary.
    pub fn vocab(&self) -> &Vocab {
        &self.vocab
    }

    /// Encodes the trained model for the checkpoint store (see
    /// [`crate::store::fasttext_to_bytes`]). Bit-exact round trip.
    pub(crate) fn encode(&self, w: &mut kcb_util::bin::Writer) {
        w.raw(b"KCBX");
        w.u32(1);
        w.str(&self.name);
        w.u32(self.dim as u32);
        w.u32(self.buckets as u32);
        w.u32(self.min_n as u32);
        w.u32(self.max_n as u32);
        w.u32(self.vocab.len() as u32);
        for id in 0..self.vocab.len() as u32 {
            w.str(self.vocab.token(id));
            w.u64(self.vocab.count(id));
        }
        w.f32s(&self.word_vecs);
        w.f32s(&self.ngram_vecs);
    }

    /// Decodes a model written by [`FastText::encode`], rejecting corrupt
    /// or truncated input.
    pub(crate) fn decode(r: &mut kcb_util::bin::Reader<'_>) -> kcb_util::Result<Self> {
        let err = |m: &str| kcb_util::Error::parse("fasttext store", m.to_string());
        r.magic(b"KCBX")?;
        r.version(1)?;
        let name = r.str()?;
        let dim = r.u32()? as usize;
        let buckets = r.u32()? as usize;
        let min_n = r.u32()? as usize;
        let max_n = r.u32()? as usize;
        let n = r.u32()? as usize;
        r.sized(n, 12)?;
        let mut counts: Vec<(String, u64)> = Vec::with_capacity(n);
        for _ in 0..n {
            let tok = r.str()?;
            counts.push((tok, r.u64()?));
        }
        let word_vecs = r.f32s()?;
        let ngram_vecs = r.f32s()?;
        if word_vecs.len() != n * dim || ngram_vecs.len() != buckets * dim {
            return Err(err("vector table size mismatch"));
        }
        // Rebuild the vocabulary; stored order must be Vocab's canonical
        // order or ids (and so every row) would shift.
        let map: std::collections::HashMap<String, u64> = counts.iter().cloned().collect();
        let vocab = Vocab::from_counts(map, 0);
        for (i, (tok, _)) in counts.iter().enumerate() {
            if vocab.id(tok) != Some(i as u32) {
                return Err(err("vocabulary order mismatch (corrupt or duplicate tokens)"));
            }
        }
        Ok(Self { name, vocab, word_vecs, ngram_vecs, dim, buckets, min_n, max_n })
    }

    fn compose(&self, word_row: Option<usize>, grams: &[u32], out: &mut [f32]) {
        out.fill(0.0);
        let mut parts = 0.0f32;
        if let Some(r) = word_row {
            let r = r * self.dim;
            for j in 0..self.dim {
                out[j] += self.word_vecs[r + j];
            }
            parts += 1.0;
        }
        for &g in grams {
            let r = g as usize * self.dim;
            for j in 0..self.dim {
                out[j] += self.ngram_vecs[r + j];
            }
            parts += 1.0;
        }
        if parts > 0.0 {
            for v in out.iter_mut() {
                *v /= parts;
            }
        }
    }
}

impl EmbeddingModel for FastText {
    fn name(&self) -> &str {
        &self.name
    }

    fn dim(&self) -> usize {
        self.dim
    }

    fn vocab_size(&self) -> usize {
        self.vocab.len()
    }

    fn embed_into(&self, token: &str, out: &mut [f32]) -> Lookup {
        let grams = ngram_buckets(token, self.min_n, self.max_n, self.buckets);
        match self.vocab.id(token) {
            Some(id) => {
                self.compose(Some(id as usize), &grams, out);
                Lookup::InVocab
            }
            None if !grams.is_empty() => {
                self.compose(None, &grams, out);
                Lookup::Subword
            }
            None => Lookup::Oov,
        }
    }
}

/// Character n-gram bucket ids for a word, using fastText's `<word>`
/// padding convention.
fn ngram_buckets(word: &str, min_n: usize, max_n: usize, buckets: usize) -> Vec<u32> {
    let padded: Vec<char> = std::iter::once('<')
        .chain(word.chars())
        .chain(std::iter::once('>'))
        .collect();
    let mut out = Vec::new();
    let mut buf = String::new();
    for n in min_n..=max_n {
        if padded.len() < n {
            break;
        }
        for start in 0..=padded.len() - n {
            buf.clear();
            buf.extend(&padded[start..start + n]);
            // Skip the full padded word itself (it equals the word vector).
            if n == padded.len() {
                continue;
            }
            out.push((fnv1a(buf.as_bytes()) % buckets as u64) as u32);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use kcb_ml::linalg::cosine;

    fn topic_corpus(n_sent: usize, seed: u64) -> Vec<Vec<String>> {
        let mut rng = Rng::seed(seed);
        let topic_a = ["methanoic", "ethanoic", "propanoic", "butanoic"];
        let topic_b = ["androstane", "estrane", "pregnane", "cholane"];
        (0..n_sent)
            .map(|_| {
                let topic: &[&str] = if rng.chance(0.5) { &topic_a } else { &topic_b };
                (0..6).map(|_| topic[rng.below(topic.len())].to_string()).collect()
            })
            .collect()
    }

    fn small_cfg() -> FastTextConfig {
        FastTextConfig {
            dim: 24,
            epochs: 10,
            min_count: 1,
            buckets: 1_000,
            ..FastTextConfig::default()
        }
    }

    #[test]
    fn ngrams_use_padding_and_hash_in_range() {
        let g = ngram_buckets("abc", 3, 4, 100);
        // "<abc>" has 3-grams: <ab, abc, bc> and 4-grams: <abc, abc> minus
        // the full word... lengths: 3-grams: 3, 4-grams: 2 → 5 total.
        assert_eq!(g.len(), 5);
        assert!(g.iter().all(|&b| b < 100));
        // Deterministic.
        assert_eq!(g, ngram_buckets("abc", 3, 4, 100));
    }

    #[test]
    fn short_words_produce_some_ngrams() {
        // "a" padded is "<a>" (len 3) → one 3-gram... but that equals the
        // whole padded word, which we skip.
        let g = ngram_buckets("a", 3, 5, 100);
        assert!(g.is_empty());
        let g2 = ngram_buckets("ab", 3, 5, 100);
        assert_eq!(g2.len(), 2); // "<ab", "ab>"
    }

    #[test]
    fn oov_words_get_subword_vectors() {
        let corpus = topic_corpus(200, 1);
        let ft = FastText::train("ft", &corpus, &small_cfg());
        let mut out = vec![0.0; 24];
        // Morphologically similar OOV word.
        assert_eq!(ft.embed_into("pentanoic", &mut out), Lookup::Subword);
        assert!(out.iter().any(|&v| v != 0.0));
    }

    #[test]
    fn subword_vector_close_to_morphological_family() {
        let corpus = topic_corpus(400, 2);
        let ft = FastText::train("ft", &corpus, &small_cfg());
        let mut oov = vec![0.0; 24];
        ft.embed_into("pentanoic", &mut oov); // OOV, shares "anoic" grams
        let mut acid_family = vec![0.0; 24];
        ft.embed_into("ethanoic", &mut acid_family);
        let mut steroid_family = vec![0.0; 24];
        ft.embed_into("androstane", &mut steroid_family);
        let near = cosine(&oov, &acid_family);
        let far = cosine(&oov, &steroid_family);
        assert!(near > far, "subword OOV should align with its family: {near} vs {far}");
    }

    #[test]
    fn cooccurrence_signal_learned() {
        let corpus = topic_corpus(400, 3);
        let ft = FastText::train("ft", &corpus, &small_cfg());
        let (mut a, mut b, mut c) = (vec![0.0; 24], vec![0.0; 24], vec![0.0; 24]);
        ft.embed_into("methanoic", &mut a);
        ft.embed_into("ethanoic", &mut b);
        ft.embed_into("pregnane", &mut c);
        assert!(cosine(&a, &b) > cosine(&a, &c));
    }

    #[test]
    fn deterministic() {
        let corpus = topic_corpus(50, 4);
        let a = FastText::train("a", &corpus, &small_cfg());
        let b = FastText::train("b", &corpus, &small_cfg());
        assert_eq!(a.word_vecs, b.word_vecs);
        assert_eq!(a.ngram_vecs, b.ngram_vecs);
    }

    #[test]
    fn training_is_bitwise_identical_across_thread_counts() {
        let corpus = topic_corpus(200, 8);
        let a = {
            let _g = pool::ThreadsGuard::new(1);
            FastText::train("a", &corpus, &small_cfg())
        };
        let b = {
            let _g = pool::ThreadsGuard::new(4);
            FastText::train("b", &corpus, &small_cfg())
        };
        assert_eq!(a.word_vecs, b.word_vecs);
        assert_eq!(a.ngram_vecs, b.ngram_vecs);
    }
}
