//! fastText-style subword embeddings — the BioWordVec stand-in (§2.3).
//!
//! Each word's vector is the average of its word vector and the vectors of
//! its character n-grams (hashed into a fixed bucket table). The model is
//! trained with skip-gram negative sampling, distributing each gradient
//! across the word's constituent vectors. Out-of-vocabulary words still get
//! a composed subword vector — the property that gives BioWordVec its low
//! effective OOV rate on chemical morphology (paper Table A4).

use crate::model::{EmbeddingModel, Lookup};
use kcb_util::fnv1a;
use kcb_text::Vocab;
use kcb_util::Rng;

/// fastText hyperparameters.
#[derive(Debug, Clone, Copy)]
pub struct FastTextConfig {
    /// Embedding width.
    pub dim: usize,
    /// Maximum context window.
    pub window: usize,
    /// Negative samples per pair.
    pub negative: usize,
    /// Training epochs.
    pub epochs: usize,
    /// Initial learning rate.
    pub lr: f32,
    /// Minimum word frequency for the word table.
    pub min_count: u64,
    /// Number of n-gram hash buckets.
    pub buckets: usize,
    /// Minimum n-gram length.
    pub min_n: usize,
    /// Maximum n-gram length.
    pub max_n: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for FastTextConfig {
    fn default() -> Self {
        Self {
            dim: 100,
            window: 5,
            negative: 5,
            epochs: 5,
            lr: 0.05,
            min_count: 2,
            buckets: 20_000,
            min_n: 3,
            max_n: 5,
            seed: 42,
        }
    }
}

/// A trained fastText model.
#[derive(Debug, Clone)]
pub struct FastText {
    name: String,
    vocab: Vocab,
    /// Word vectors `(n_words, dim)` flat.
    word_vecs: Vec<f32>,
    /// N-gram bucket vectors `(buckets, dim)` flat.
    ngram_vecs: Vec<f32>,
    dim: usize,
    buckets: usize,
    min_n: usize,
    max_n: usize,
}

impl FastText {
    /// Trains on tokenized sentences.
    pub fn train(name: &str, sentences: &[Vec<String>], cfg: &FastTextConfig) -> Self {
        let vocab = Vocab::from_streams(
            sentences.iter().map(|s| s.iter().map(String::as_str)),
            cfg.min_count,
        );
        assert!(!vocab.is_empty(), "fasttext: empty vocabulary");
        let n = vocab.len();
        let dim = cfg.dim;
        let mut rng = Rng::seed_stream(cfg.seed, 0xfa57);

        let mut word_vecs = vec![0.0f32; n * dim];
        let mut ngram_vecs = vec![0.0f32; cfg.buckets * dim];
        let init = 0.5 / dim as f32;
        for v in word_vecs.iter_mut().chain(ngram_vecs.iter_mut()) {
            *v = rng.f32_range(-init, init);
        }
        let mut syn1 = vec![0.0f32; n * dim]; // output vectors

        // Precompute each vocabulary word's n-gram bucket list.
        let word_ngrams: Vec<Vec<u32>> = (0..n as u32)
            .map(|i| ngram_buckets(vocab.token(i), cfg.min_n, cfg.max_n, cfg.buckets))
            .collect();

        // Negative-sampling cumulative table (unigram^0.75).
        let neg_cum: Vec<f64> = {
            let mut acc = 0.0;
            (0..n as u32)
                .map(|i| {
                    acc += (vocab.count(i) as f64).powf(0.75);
                    acc
                })
                .collect()
        };
        let neg_total = *neg_cum.last().expect("non-empty");

        let id_sentences: Vec<Vec<u32>> = sentences
            .iter()
            .map(|s| s.iter().filter_map(|t| vocab.id(t)).collect())
            .collect();
        let total_tokens: usize = id_sentences.iter().map(Vec::len).sum();
        let total_work = (total_tokens * cfg.epochs).max(1);

        let mut processed = 0usize;
        let mut hidden = vec![0.0f32; dim];
        let mut grad = vec![0.0f32; dim];
        for _epoch in 0..cfg.epochs {
            for sent in &id_sentences {
                if sent.len() < 2 {
                    processed += sent.len();
                    continue;
                }
                for (pos, &center) in sent.iter().enumerate() {
                    processed += 1;
                    let lr_now = {
                        let frac = processed as f32 / total_work as f32;
                        (cfg.lr * (1.0 - frac)).max(cfg.lr * 1e-4)
                    };
                    let b = 1 + rng.below(cfg.window);
                    let lo = pos.saturating_sub(b);
                    let hi = (pos + b + 1).min(sent.len());
                    let grams = &word_ngrams[center as usize];
                    let parts = (grams.len() + 1) as f32;
                    for ctx_pos in lo..hi {
                        if ctx_pos == pos {
                            continue;
                        }
                        let context = sent[ctx_pos];
                        // hidden = mean(word vec, ngram vecs)
                        hidden.copy_from_slice(&word_vecs[center as usize * dim..(center as usize + 1) * dim]);
                        for &g in grams {
                            let r = g as usize * dim;
                            for j in 0..dim {
                                hidden[j] += ngram_vecs[r + j];
                            }
                        }
                        for h in hidden.iter_mut() {
                            *h /= parts;
                        }
                        grad.fill(0.0);
                        for k in 0..=cfg.negative {
                            let (target, label) = if k == 0 {
                                (context, 1.0f32)
                            } else {
                                let t = rng.f64() * neg_total;
                                let negw = neg_cum.partition_point(|&c| c <= t).min(n - 1) as u32;
                                if negw == context {
                                    continue;
                                }
                                (negw, 0.0)
                            };
                            let u = target as usize * dim;
                            let score = kcb_ml::linalg::dot(&hidden, &syn1[u..u + dim]);
                            let g = (label - kcb_ml::linalg::sigmoid(score)) * lr_now;
                            for j in 0..dim {
                                grad[j] += g * syn1[u + j];
                                syn1[u + j] += g * hidden[j];
                            }
                        }
                        // Distribute the hidden-layer gradient across parts.
                        let scale = 1.0 / parts;
                        let wrow = center as usize * dim;
                        for j in 0..dim {
                            word_vecs[wrow + j] += grad[j] * scale;
                        }
                        for &gb in grams {
                            let r = gb as usize * dim;
                            for j in 0..dim {
                                ngram_vecs[r + j] += grad[j] * scale;
                            }
                        }
                    }
                }
            }
        }

        Self {
            name: name.to_string(),
            vocab,
            word_vecs,
            ngram_vecs,
            dim,
            buckets: cfg.buckets,
            min_n: cfg.min_n,
            max_n: cfg.max_n,
        }
    }

    /// The word vocabulary.
    pub fn vocab(&self) -> &Vocab {
        &self.vocab
    }

    fn compose(&self, word_row: Option<usize>, grams: &[u32], out: &mut [f32]) {
        out.fill(0.0);
        let mut parts = 0.0f32;
        if let Some(r) = word_row {
            let r = r * self.dim;
            for j in 0..self.dim {
                out[j] += self.word_vecs[r + j];
            }
            parts += 1.0;
        }
        for &g in grams {
            let r = g as usize * self.dim;
            for j in 0..self.dim {
                out[j] += self.ngram_vecs[r + j];
            }
            parts += 1.0;
        }
        if parts > 0.0 {
            for v in out.iter_mut() {
                *v /= parts;
            }
        }
    }
}

impl EmbeddingModel for FastText {
    fn name(&self) -> &str {
        &self.name
    }

    fn dim(&self) -> usize {
        self.dim
    }

    fn vocab_size(&self) -> usize {
        self.vocab.len()
    }

    fn embed_into(&self, token: &str, out: &mut [f32]) -> Lookup {
        let grams = ngram_buckets(token, self.min_n, self.max_n, self.buckets);
        match self.vocab.id(token) {
            Some(id) => {
                self.compose(Some(id as usize), &grams, out);
                Lookup::InVocab
            }
            None if !grams.is_empty() => {
                self.compose(None, &grams, out);
                Lookup::Subword
            }
            None => Lookup::Oov,
        }
    }
}

/// Character n-gram bucket ids for a word, using fastText's `<word>`
/// padding convention.
fn ngram_buckets(word: &str, min_n: usize, max_n: usize, buckets: usize) -> Vec<u32> {
    let padded: Vec<char> = std::iter::once('<')
        .chain(word.chars())
        .chain(std::iter::once('>'))
        .collect();
    let mut out = Vec::new();
    let mut buf = String::new();
    for n in min_n..=max_n {
        if padded.len() < n {
            break;
        }
        for start in 0..=padded.len() - n {
            buf.clear();
            buf.extend(&padded[start..start + n]);
            // Skip the full padded word itself (it equals the word vector).
            if n == padded.len() {
                continue;
            }
            out.push((fnv1a(buf.as_bytes()) % buckets as u64) as u32);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use kcb_ml::linalg::cosine;

    fn topic_corpus(n_sent: usize, seed: u64) -> Vec<Vec<String>> {
        let mut rng = Rng::seed(seed);
        let topic_a = ["methanoic", "ethanoic", "propanoic", "butanoic"];
        let topic_b = ["androstane", "estrane", "pregnane", "cholane"];
        (0..n_sent)
            .map(|_| {
                let topic: &[&str] = if rng.chance(0.5) { &topic_a } else { &topic_b };
                (0..6).map(|_| topic[rng.below(topic.len())].to_string()).collect()
            })
            .collect()
    }

    fn small_cfg() -> FastTextConfig {
        FastTextConfig {
            dim: 24,
            epochs: 10,
            min_count: 1,
            buckets: 1_000,
            ..FastTextConfig::default()
        }
    }

    #[test]
    fn ngrams_use_padding_and_hash_in_range() {
        let g = ngram_buckets("abc", 3, 4, 100);
        // "<abc>" has 3-grams: <ab, abc, bc> and 4-grams: <abc, abc> minus
        // the full word... lengths: 3-grams: 3, 4-grams: 2 → 5 total.
        assert_eq!(g.len(), 5);
        assert!(g.iter().all(|&b| b < 100));
        // Deterministic.
        assert_eq!(g, ngram_buckets("abc", 3, 4, 100));
    }

    #[test]
    fn short_words_produce_some_ngrams() {
        // "a" padded is "<a>" (len 3) → one 3-gram... but that equals the
        // whole padded word, which we skip.
        let g = ngram_buckets("a", 3, 5, 100);
        assert!(g.is_empty());
        let g2 = ngram_buckets("ab", 3, 5, 100);
        assert_eq!(g2.len(), 2); // "<ab", "ab>"
    }

    #[test]
    fn oov_words_get_subword_vectors() {
        let corpus = topic_corpus(200, 1);
        let ft = FastText::train("ft", &corpus, &small_cfg());
        let mut out = vec![0.0; 24];
        // Morphologically similar OOV word.
        assert_eq!(ft.embed_into("pentanoic", &mut out), Lookup::Subword);
        assert!(out.iter().any(|&v| v != 0.0));
    }

    #[test]
    fn subword_vector_close_to_morphological_family() {
        let corpus = topic_corpus(400, 2);
        let ft = FastText::train("ft", &corpus, &small_cfg());
        let mut oov = vec![0.0; 24];
        ft.embed_into("pentanoic", &mut oov); // OOV, shares "anoic" grams
        let mut acid_family = vec![0.0; 24];
        ft.embed_into("ethanoic", &mut acid_family);
        let mut steroid_family = vec![0.0; 24];
        ft.embed_into("androstane", &mut steroid_family);
        let near = cosine(&oov, &acid_family);
        let far = cosine(&oov, &steroid_family);
        assert!(near > far, "subword OOV should align with its family: {near} vs {far}");
    }

    #[test]
    fn cooccurrence_signal_learned() {
        let corpus = topic_corpus(400, 3);
        let ft = FastText::train("ft", &corpus, &small_cfg());
        let (mut a, mut b, mut c) = (vec![0.0; 24], vec![0.0; 24], vec![0.0; 24]);
        ft.embed_into("methanoic", &mut a);
        ft.embed_into("ethanoic", &mut b);
        ft.embed_into("pregnane", &mut c);
        assert!(cosine(&a, &b) > cosine(&a, &c));
    }

    #[test]
    fn deterministic() {
        let corpus = topic_corpus(50, 4);
        let a = FastText::train("a", &corpus, &small_cfg());
        let b = FastText::train("b", &corpus, &small_cfg());
        assert_eq!(a.word_vecs, b.word_vecs);
        assert_eq!(a.ngram_vecs, b.ngram_vecs);
    }
}
