//! Sharded, bitwise-deterministic SGD infrastructure for the embedding
//! trainers (word2vec, GloVe, fastText).
//!
//! The serial trainers processed one token stream with one RNG, so no two
//! updates could ever run concurrently. The sharded formulation fixes the
//! *structure* of the computation independently of the thread count, the
//! same contract `kcb-lm::pool` established for the tensor kernels:
//!
//! 1. An epoch is cut into **blocks** (a fixed number of sentences or
//!    co-occurrence pairs). Block boundaries depend only on the corpus.
//! 2. Each block is split into [`SHARDS`] contiguous slices. Shard `s`
//!    reads the shared parameters *frozen at the block start* plus its own
//!    private [`DeltaTable`] accumulator, and draws randomness from an RNG
//!    seeded by `(seed, epoch, block, s)` — never from a shared stream.
//! 3. After every shard finishes, the driver folds the deltas back into
//!    the shared parameters in fixed shard order `0..SHARDS`, each shard's
//!    rows in first-touch order.
//!
//! A shard's output is a pure function of its index and the frozen block
//! inputs, and the reduction order is constant, so the result is
//! **bitwise identical at any `--threads`** — the worker count (clamped by
//! [`kcb_util::pool::fanout`]) only decides how many shards run at once.
//! Within a shard the effective parameter view is `frozen + own delta`,
//! which keeps plain sequential-SGD semantics for the shard's slice of the
//! block instead of stale full-block gradients.

/// Fixed shard count — part of the computation's structure, deliberately
/// independent of the thread count so `--threads` can never change bytes.
pub(crate) const SHARDS: usize = 8;

/// Sentences per block for the skip-gram trainers (word2vec, fastText).
pub(crate) const BLOCK_SENTENCES: usize = 128;

/// Co-occurrence pairs per block for the GloVe AdaGrad sweep.
pub(crate) const BLOCK_PAIRS: usize = 2048;

/// The RNG stream for shard `s` of block `b` in epoch `e` under a trainer's
/// base stream. Mixing through FNV keeps streams from colliding across the
/// (epoch, block, shard) lattice and across trainers.
pub(crate) fn shard_stream(base: u64, epoch: usize, block: usize, shard: usize) -> u64 {
    kcb_util::fnv1a_u64s(&[base, epoch as u64, block as u64, shard as u64])
}

/// The contiguous sub-range of `0..len` owned by shard `s` (possibly
/// empty): `len` items split into [`SHARDS`] near-equal contiguous chunks.
pub(crate) fn shard_range(len: usize, s: usize) -> std::ops::Range<usize> {
    let chunk = len.div_ceil(SHARDS).max(1);
    let lo = (s * chunk).min(len);
    let hi = ((s + 1) * chunk).min(len);
    lo..hi
}

/// A shard-private sparse delta over an `n × dim` row-major parameter
/// matrix. Rows are zeroed lazily on first touch per block (stamp clock),
/// so a block touching few rows costs O(touched × dim), not O(n × dim),
/// and the backing buffers are allocated once per shard for the whole
/// training run.
pub(crate) struct DeltaTable {
    dim: usize,
    delta: Vec<f32>,
    stamp: Vec<u32>,
    clock: u32,
    touched: Vec<u32>,
}

impl DeltaTable {
    pub fn new(n: usize, dim: usize) -> Self {
        Self { dim, delta: vec![0.0; n * dim], stamp: vec![0; n], clock: 0, touched: Vec::new() }
    }

    /// Starts a new block: previous touches become stale without any
    /// clearing work (the stamp clock advances instead).
    pub fn begin_block(&mut self) {
        self.touched.clear();
        if self.clock == u32::MAX {
            self.stamp.fill(0);
            self.clock = 1;
        } else {
            self.clock += 1;
        }
    }

    /// Mutable delta row, zeroed and marked touched on first access in the
    /// current block.
    pub fn row_mut(&mut self, row: usize) -> &mut [f32] {
        if self.stamp[row] != self.clock {
            self.stamp[row] = self.clock;
            self.touched.push(row as u32);
            self.delta[row * self.dim..(row + 1) * self.dim].fill(0.0);
        }
        &mut self.delta[row * self.dim..(row + 1) * self.dim]
    }

    /// Writes the shard's *effective* view of a row — frozen value plus any
    /// delta this shard accumulated earlier in the block — into `out`.
    pub fn read_into(&self, row: usize, frozen: &[f32], out: &mut [f32]) {
        let base = &frozen[row * self.dim..(row + 1) * self.dim];
        if self.stamp[row] == self.clock {
            let d = &self.delta[row * self.dim..(row + 1) * self.dim];
            for ((o, &f), &dv) in out.iter_mut().zip(base).zip(d) {
                *o = f + dv;
            }
        } else {
            out.copy_from_slice(base);
        }
    }

    /// The effective scalar for `dim == 1` tables (biases, AdaGrad cells).
    pub fn read_scalar(&self, row: usize, frozen: &[f32]) -> f32 {
        debug_assert_eq!(self.dim, 1);
        if self.stamp[row] == self.clock {
            frozen[row] + self.delta[row]
        } else {
            frozen[row]
        }
    }

    /// Folds the block's deltas into the shared parameters. Called by the
    /// driver in fixed shard order; rows apply in first-touch order.
    pub fn apply(&self, target: &mut [f32]) {
        for &r in &self.touched {
            let r = r as usize;
            let d = &self.delta[r * self.dim..(r + 1) * self.dim];
            let t = &mut target[r * self.dim..(r + 1) * self.dim];
            for (tv, &dv) in t.iter_mut().zip(d) {
                *tv += dv;
            }
        }
    }

    /// Adds 1 to `counts[r]` for every row this shard touched in the
    /// current block. Used with [`DeltaTable::apply_averaged`].
    pub fn add_touch_counts(&self, counts: &mut [u32]) {
        for &r in &self.touched {
            counts[r as usize] += 1;
        }
    }

    /// Like [`DeltaTable::apply`], but divides each row's delta by the
    /// number of shards that touched it (`counts`, from
    /// [`DeltaTable::add_touch_counts`] over all shards).
    ///
    /// Plain summation amplifies the step on *contested* rows: all shards
    /// compute their gradients against the same frozen block snapshot, so a
    /// row updated by every shard moves up to [`SHARDS`]× further than
    /// sequential SGD would — enough to diverge when rows are shared as
    /// aggressively as fastText's n-gram buckets (every word scatters into
    /// dozens of hash buckets). Averaging contested rows is minibatch
    /// gradient averaging across shards: uncontested rows keep full
    /// sequential-SGD steps, hot rows take the mean of the shard opinions.
    /// Counts depend only on the shard structure, never the thread count,
    /// so results stay bitwise identical at any `--threads`.
    pub fn apply_averaged(&self, target: &mut [f32], counts: &[u32]) {
        for &r in &self.touched {
            let r = r as usize;
            let scale = 1.0 / counts[r] as f32;
            let d = &self.delta[r * self.dim..(r + 1) * self.dim];
            let t = &mut target[r * self.dim..(r + 1) * self.dim];
            for (tv, &dv) in t.iter_mut().zip(d) {
                *tv += dv * scale;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delta_rows_zero_on_first_touch_per_block() {
        let mut d = DeltaTable::new(4, 2);
        d.begin_block();
        d.row_mut(1)[0] = 5.0;
        d.begin_block();
        assert_eq!(d.row_mut(1), &[0.0, 0.0], "stale delta leaked across blocks");
    }

    #[test]
    fn read_into_adds_only_touched_rows() {
        let frozen = vec![1.0f32, 2.0, 3.0, 4.0];
        let mut d = DeltaTable::new(2, 2);
        d.begin_block();
        d.row_mut(0)[1] = 0.5;
        let mut out = [0.0f32; 2];
        d.read_into(0, &frozen, &mut out);
        assert_eq!(out, [1.0, 2.5]);
        d.read_into(1, &frozen, &mut out);
        assert_eq!(out, [3.0, 4.0]);
    }

    #[test]
    fn apply_folds_touched_rows_in_order() {
        let mut target = vec![0.0f32; 6];
        let mut d = DeltaTable::new(3, 2);
        d.begin_block();
        d.row_mut(2)[0] = 1.0;
        d.row_mut(0)[1] = -2.0;
        d.apply(&mut target);
        assert_eq!(target, vec![0.0, -2.0, 0.0, 0.0, 1.0, 0.0]);
        // Applying after a fresh block is a no-op.
        d.begin_block();
        d.apply(&mut target);
        assert_eq!(target, vec![0.0, -2.0, 0.0, 0.0, 1.0, 0.0]);
    }

    #[test]
    fn shard_ranges_partition_exactly() {
        for len in [0, 1, 7, 8, 9, 127, 128, 1000] {
            let mut covered = 0;
            for s in 0..SHARDS {
                let r = shard_range(len, s);
                assert_eq!(r.start, covered.min(len));
                covered = covered.max(r.end);
            }
            assert_eq!(covered, len, "len={len}");
        }
    }

    #[test]
    fn shard_streams_are_distinct() {
        let mut seen = std::collections::HashSet::new();
        for e in 0..3 {
            for b in 0..4 {
                for s in 0..SHARDS {
                    assert!(seen.insert(shard_stream(0x2ec, e, b, s)));
                }
            }
        }
    }
}
