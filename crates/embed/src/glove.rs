//! GloVe embeddings (global co-occurrence matrix + AdaGrad), with
//! warm-start support for domain adaptation — the paper's GloVe and
//! GloVe-Chem models (§2.3): GloVe-Chem joins the base GloVe vocabulary
//! with the chemistry corpus vocabulary and initialises the input layer
//! from the GloVe vectors before further training.

use crate::model::{EmbeddingModel, EmbeddingTable};
use crate::shard::{self, DeltaTable};
use kcb_ml::linalg::Matrix;
use kcb_text::Vocab;
use kcb_util::{pool, Rng};
use std::collections::HashMap;

/// GloVe hyperparameters (defaults follow Pennington et al. 2014).
#[derive(Debug, Clone, Copy)]
pub struct GloveConfig {
    /// Embedding width.
    pub dim: usize,
    /// Symmetric context window.
    pub window: usize,
    /// Weighting-function cap `x_max`.
    pub x_max: f64,
    /// Weighting-function exponent `alpha`.
    pub alpha: f64,
    /// AdaGrad epochs.
    pub epochs: usize,
    /// Initial learning rate.
    pub lr: f32,
    /// Minimum token frequency for vocabulary entry.
    pub min_count: u64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for GloveConfig {
    fn default() -> Self {
        Self {
            dim: 100,
            window: 5,
            x_max: 100.0,
            alpha: 0.75,
            epochs: 15,
            lr: 0.05,
            min_count: 2,
            seed: 42,
        }
    }
}

/// Trains GloVe from scratch on tokenized sentences.
pub fn train(name: &str, sentences: &[Vec<String>], cfg: &GloveConfig) -> EmbeddingTable {
    let vocab = Vocab::from_streams(
        sentences.iter().map(|s| s.iter().map(String::as_str)),
        cfg.min_count,
    );
    train_with_vocab(name, sentences, cfg, vocab, None)
}

/// Further-trains a base embedding table on a new corpus (GloVe-Chem). The
/// vocabulary is the union of the base vocabulary and the corpus
/// vocabulary; vectors of base tokens are initialised from the base table,
/// new tokens randomly. Base tokens that never occur in the corpus keep
/// their base vectors.
pub fn train_warm(
    name: &str,
    sentences: &[Vec<String>],
    cfg: &GloveConfig,
    base: &EmbeddingTable,
) -> EmbeddingTable {
    assert_eq!(base.dim(), cfg.dim, "warm start requires matching dims");
    let mut counts: HashMap<String, u64> = HashMap::new();
    for s in sentences {
        for t in s {
            *counts.entry(t.clone()).or_insert(0) += 1;
        }
    }
    counts.retain(|_, c| *c >= cfg.min_count);
    // Union in the base vocabulary (count 1 keeps them past any filter but
    // low in the frequency ordering).
    for (tok, _) in base.vocab().iter() {
        counts.entry(tok.to_string()).or_insert(1);
    }
    let vocab = Vocab::from_counts(counts, 1);
    train_with_vocab(name, sentences, cfg, vocab, Some(base))
}

fn train_with_vocab(
    name: &str,
    sentences: &[Vec<String>],
    cfg: &GloveConfig,
    vocab: Vocab,
    warm: Option<&EmbeddingTable>,
) -> EmbeddingTable {
    assert!(!vocab.is_empty(), "glove: empty vocabulary");
    let n = vocab.len();
    let dim = cfg.dim;
    let mut rng = Rng::seed_stream(cfg.seed, 0x910e);

    // --- Co-occurrence accumulation (symmetric, 1/distance weighting) ----
    let mut cooc: HashMap<(u32, u32), f64> = HashMap::new();
    for sent in sentences {
        let ids: Vec<u32> = sent.iter().filter_map(|t| vocab.id(t)).collect();
        for (i, &wi) in ids.iter().enumerate() {
            let hi = (i + cfg.window + 1).min(ids.len());
            for (d, &wj) in ids[i + 1..hi].iter().enumerate() {
                let weight = 1.0 / (d + 1) as f64;
                // Canonical ordering halves the map; symmetric updates are
                // applied to both directions during optimisation.
                let key = if wi <= wj { (wi, wj) } else { (wj, wi) };
                *cooc.entry(key).or_insert(0.0) += weight;
            }
        }
    }
    // Deterministic iteration order for optimisation.
    let mut pairs: Vec<((u32, u32), f64)> = cooc.into_iter().collect();
    pairs.sort_by_key(|&(key, _)| key);

    // --- Parameter init ---------------------------------------------------
    let mut w = vec![0.0f32; n * dim]; // main vectors
    let mut wt = vec![0.0f32; n * dim]; // context vectors
    let mut b = vec![0.0f32; n];
    let mut bt = vec![0.0f32; n];
    let init = 0.5 / dim as f32;
    for v in w.iter_mut().chain(wt.iter_mut()) {
        *v = rng.f32_range(-init, init);
    }
    if let Some(base) = warm {
        let mut buf = vec![0.0f32; dim];
        for i in 0..n as u32 {
            if base.embed_into(vocab.token(i), &mut buf).in_vocab() {
                let row = i as usize * dim;
                for j in 0..dim {
                    // Split the base vector across w and w̃ so that the
                    // exported vector (w + w̃) starts exactly at the base.
                    w[row + j] = buf[j] * 0.5;
                    wt[row + j] = buf[j] * 0.5;
                }
            }
        }
    }

    // --- AdaGrad (block-synchronous sharded, see `crate::shard`) ----------
    let mut gw = vec![1.0f32; n * dim];
    let mut gwt = vec![1.0f32; n * dim];
    let mut gb = vec![1.0f32; n];
    let mut gbt = vec![1.0f32; n];
    let mut order: Vec<usize> = (0..pairs.len()).collect();

    // Shard-private deltas over every parameter and AdaGrad accumulator,
    // plus effective-view scratch rows.
    struct Shard {
        dw: DeltaTable,
        dwt: DeltaTable,
        db: DeltaTable,
        dbt: DeltaTable,
        dgw: DeltaTable,
        dgwt: DeltaTable,
        dgb: DeltaTable,
        dgbt: DeltaTable,
        wa: Vec<f32>,
        wc: Vec<f32>,
        ga: Vec<f32>,
        gc: Vec<f32>,
    }
    let mut shards: Vec<Shard> = (0..shard::SHARDS)
        .map(|_| Shard {
            dw: DeltaTable::new(n, dim),
            dwt: DeltaTable::new(n, dim),
            db: DeltaTable::new(n, 1),
            dbt: DeltaTable::new(n, 1),
            dgw: DeltaTable::new(n, dim),
            dgwt: DeltaTable::new(n, dim),
            dgb: DeltaTable::new(n, 1),
            dgbt: DeltaTable::new(n, 1),
            wa: vec![0.0; dim],
            wc: vec![0.0; dim],
            ga: vec![0.0; dim],
            gc: vec![0.0; dim],
        })
        .collect();

    for _epoch in 0..cfg.epochs {
        // The shuffle stays on the driver's sequential RNG stream: the
        // visit order is corpus state, not shard randomness.
        rng.shuffle(&mut order);
        for block in order.chunks(shard::BLOCK_PAIRS) {
            let workers = pool::fanout(pool::threads(), shard::SHARDS);
            pool::run_sharded(workers, &mut shards, |s, st| {
                st.dw.begin_block();
                st.dwt.begin_block();
                st.db.begin_block();
                st.dbt.begin_block();
                st.dgw.begin_block();
                st.dgwt.begin_block();
                st.dgb.begin_block();
                st.dgbt.begin_block();
                for &pi in &block[shard::shard_range(block.len(), s)] {
                    let ((i, j), x) = pairs[pi];
                    // Train both directions of the symmetric pair.
                    for (a, c) in [(i as usize, j as usize), (j as usize, i as usize)] {
                        if a == c {
                            continue;
                        }
                        let fx =
                            if x < cfg.x_max { (x / cfg.x_max).powf(cfg.alpha) } else { 1.0 } as f32;
                        // Effective views = frozen params + own block deltas.
                        st.dw.read_into(a, &w, &mut st.wa);
                        st.dwt.read_into(c, &wt, &mut st.wc);
                        st.dgw.read_into(a, &gw, &mut st.ga);
                        st.dgwt.read_into(c, &gwt, &mut st.gc);
                        let beff = st.db.read_scalar(a, &b);
                        let bteff = st.dbt.read_scalar(c, &bt);
                        let pred: f32 = kcb_ml::linalg::dot(&st.wa, &st.wc) + beff + bteff;
                        let diff = pred - (x.ln() as f32);
                        let fdiff = fx * diff;
                        // AdaGrad updates, accumulated into the deltas.
                        let dwa = st.dw.row_mut(a);
                        let dwc = st.dwt.row_mut(c);
                        let dga = st.dgw.row_mut(a);
                        let dgc = st.dgwt.row_mut(c);
                        for k in 0..dim {
                            let gwk = fdiff * st.wc[k];
                            let gwtk = fdiff * st.wa[k];
                            dwa[k] -= cfg.lr * gwk / st.ga[k].sqrt();
                            dwc[k] -= cfg.lr * gwtk / st.gc[k].sqrt();
                            dga[k] += gwk * gwk;
                            dgc[k] += gwtk * gwtk;
                        }
                        let gbeff = st.dgb.read_scalar(a, &gb);
                        let gbteff = st.dgbt.read_scalar(c, &gbt);
                        st.db.row_mut(a)[0] -= cfg.lr * fdiff / gbeff.sqrt();
                        st.dbt.row_mut(c)[0] -= cfg.lr * fdiff / gbteff.sqrt();
                        st.dgb.row_mut(a)[0] += fdiff * fdiff;
                        st.dgbt.row_mut(c)[0] += fdiff * fdiff;
                    }
                }
            });
            // Fixed shard→parameter reduction order.
            for st in &shards {
                st.dw.apply(&mut w);
                st.dwt.apply(&mut wt);
                st.db.apply(&mut b);
                st.dbt.apply(&mut bt);
                st.dgw.apply(&mut gw);
                st.dgwt.apply(&mut gwt);
                st.dgb.apply(&mut gb);
                st.dgbt.apply(&mut gbt);
            }
        }
    }

    // Exported vector = w + w̃ (the GloVe convention).
    let mut out = vec![0.0f32; n * dim];
    for k in 0..n * dim {
        out[k] = w[k] + wt[k];
    }
    EmbeddingTable::new(name, vocab, Matrix::from_vec(out, n, dim))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Lookup;
    use kcb_ml::linalg::cosine;

    fn topic_corpus(n_sent: usize, seed: u64) -> Vec<Vec<String>> {
        let mut rng = Rng::seed(seed);
        let topic_a = ["acid", "proton", "donor", "carboxyl"];
        let topic_b = ["steroid", "ring", "androstane", "hormone"];
        (0..n_sent)
            .map(|_| {
                let topic: &[&str] = if rng.chance(0.5) { &topic_a } else { &topic_b };
                (0..6).map(|_| topic[rng.below(topic.len())].to_string()).collect()
            })
            .collect()
    }

    fn small_cfg() -> GloveConfig {
        GloveConfig { dim: 24, epochs: 30, min_count: 1, ..GloveConfig::default() }
    }

    #[test]
    fn cooccurring_tokens_are_closer() {
        let corpus = topic_corpus(400, 1);
        let t = train("glove-test", &corpus, &small_cfg());
        let (mut a, mut p, mut s) = (vec![0.0; 24], vec![0.0; 24], vec![0.0; 24]);
        assert_eq!(t.embed_into("acid", &mut a), Lookup::InVocab);
        assert_eq!(t.embed_into("proton", &mut p), Lookup::InVocab);
        assert_eq!(t.embed_into("steroid", &mut s), Lookup::InVocab);
        let same = cosine(&a, &p);
        let cross = cosine(&a, &s);
        assert!(same > cross + 0.2, "within {same} vs cross {cross}");
    }

    #[test]
    fn deterministic() {
        let corpus = topic_corpus(60, 2);
        let a = train("a", &corpus, &small_cfg());
        let b = train("b", &corpus, &small_cfg());
        assert_eq!(a.vectors().as_slice(), b.vectors().as_slice());
    }

    #[test]
    fn training_is_bitwise_identical_across_thread_counts() {
        let corpus = topic_corpus(200, 7);
        let a = {
            let _g = pool::ThreadsGuard::new(1);
            train("a", &corpus, &small_cfg())
        };
        let b = {
            let _g = pool::ThreadsGuard::new(4);
            train("b", &corpus, &small_cfg())
        };
        assert_eq!(a.vectors().as_slice(), b.vectors().as_slice());
    }

    #[test]
    fn warm_start_unions_vocab_and_preserves_unseen() {
        // Base model knows "legacy" (never in the new corpus).
        let base_corpus = vec![vec![
            "legacy".to_string(),
            "word".to_string(),
            "legacy".to_string(),
            "word".to_string(),
        ]];
        let base = train("base", &base_corpus, &small_cfg());
        let mut legacy_before = vec![0.0; 24];
        assert_eq!(base.embed_into("legacy", &mut legacy_before), Lookup::InVocab);

        let corpus = topic_corpus(100, 3);
        let adapted = train_warm("glove-chem", &corpus, &small_cfg(), &base);
        // Union vocabulary.
        let mut out = vec![0.0; 24];
        assert_eq!(adapted.embed_into("legacy", &mut out), Lookup::InVocab);
        assert_eq!(adapted.embed_into("acid", &mut out), Lookup::InVocab);
        // "legacy" has no co-occurrence in the new corpus → vector preserved.
        let mut legacy_after = vec![0.0; 24];
        adapted.embed_into("legacy", &mut legacy_after);
        for (x, y) in legacy_before.iter().zip(&legacy_after) {
            assert!((x - y).abs() < 1e-5, "unseen base vector drifted");
        }
    }

    #[test]
    fn warm_start_learns_new_tokens() {
        let base_corpus = vec![vec!["word".to_string(), "thing".to_string()]];
        let base = train("base", &base_corpus, &small_cfg());
        let corpus = topic_corpus(400, 4);
        let adapted = train_warm("adapted", &corpus, &small_cfg(), &base);
        let (mut a, mut p, mut s) = (vec![0.0; 24], vec![0.0; 24], vec![0.0; 24]);
        adapted.embed_into("acid", &mut a);
        adapted.embed_into("proton", &mut p);
        adapted.embed_into("steroid", &mut s);
        assert!(cosine(&a, &p) > cosine(&a, &s));
    }

    #[test]
    #[should_panic(expected = "matching dims")]
    fn warm_start_checks_dims() {
        let base_corpus = vec![vec!["w".to_string(), "x".to_string()]];
        let base = train("base", &base_corpus, &GloveConfig { dim: 8, min_count: 1, ..GloveConfig::default() });
        let _ = train_warm("bad", &base_corpus, &small_cfg(), &base);
    }
}
