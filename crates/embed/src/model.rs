//! The [`EmbeddingModel`] trait, the shared [`EmbeddingTable`] storage, and
//! the out-of-vocabulary policy.

use kcb_ml::linalg::Matrix;
use kcb_text::Vocab;
use kcb_util::Rng;

/// Outcome of an embedding lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Lookup {
    /// The token is in the model's vocabulary; `out` holds its vector.
    InVocab,
    /// The token is out of vocabulary but the model composed a vector from
    /// subword information (fastText-style); `out` holds that vector.
    Subword,
    /// The token is out of vocabulary and `out` was not written; callers
    /// apply the OOV policy ([`embed_or_random`]).
    Oov,
}

impl Lookup {
    /// Whether the token counted as in-vocabulary (the Table A4 OOV
    /// statistic counts `Subword` and `Oov` both as misses, matching how
    /// the paper audited `.vec`-style word lists).
    pub fn in_vocab(self) -> bool {
        matches!(self, Lookup::InVocab)
    }

    /// Whether `out` now holds a usable vector.
    pub fn has_vector(self) -> bool {
        !matches!(self, Lookup::Oov)
    }
}

/// A token-embedding model: maps tokens to fixed-width vectors, reporting
/// out-of-vocabulary tokens via [`Lookup`].
pub trait EmbeddingModel: Send + Sync {
    /// Model display name (used in report tables).
    fn name(&self) -> &str;
    /// Vector width.
    fn dim(&self) -> usize;
    /// Number of in-vocabulary tokens.
    fn vocab_size(&self) -> usize;
    /// Lookup. Writes the vector into `out` (sized to
    /// [`EmbeddingModel::dim`]) unless the result is [`Lookup::Oov`].
    fn embed_into(&self, token: &str, out: &mut [f32]) -> Lookup;
}

/// Looks a token up, falling back to a *deterministic* pseudo-random vector
/// for out-of-vocabulary tokens — the paper's OOV policy ("random vectors
/// were used for out of vocabulary situations", §2.6). Determinism (the
/// vector is a pure function of the token string and the model dim) keeps
/// repeated occurrences of the same unknown token consistent, which is what
/// makes the *random embedding model* itself learnable.
///
/// Returns the underlying model's [`Lookup`] outcome.
pub fn embed_or_random(model: &dyn EmbeddingModel, token: &str, out: &mut [f32]) -> Lookup {
    debug_assert_eq!(out.len(), model.dim());
    let lookup = model.embed_into(token, out);
    if !lookup.has_vector() {
        random_vector_for(token, out);
    }
    lookup
}

/// Fills `out` with the deterministic uniform(-1, 1) vector for a token
/// (FNV-1a hash of the token seeds a PCG stream).
pub fn random_vector_for(token: &str, out: &mut [f32]) {
    let mut rng = Rng::seed_stream(kcb_util::fnv1a(token.as_bytes()), 0x00f);
    for v in out.iter_mut() {
        *v = rng.f32_range(-1.0, 1.0);
    }
}

/// Fraction of `tokens` that are out of vocabulary for `model`
/// (paper Table A4's OOV column).
pub fn oov_rate<'a, I: IntoIterator<Item = &'a str>>(model: &dyn EmbeddingModel, tokens: I) -> (usize, usize) {
    let mut scratch = vec![0.0; model.dim()];
    let mut oov = 0;
    let mut total = 0;
    for t in tokens {
        total += 1;
        if !model.embed_into(t, &mut scratch).in_vocab() {
            oov += 1;
        }
    }
    (oov, total)
}

/// Dense trained embeddings: a vocabulary plus one vector per token. The
/// output type of the word2vec and GloVe trainers.
#[derive(Debug, Clone)]
pub struct EmbeddingTable {
    name: String,
    vocab: Vocab,
    vectors: Matrix,
}

impl EmbeddingTable {
    /// Builds a table. Panics when vector rows and vocabulary size differ.
    pub fn new(name: impl Into<String>, vocab: Vocab, vectors: Matrix) -> Self {
        assert_eq!(vocab.len(), vectors.rows(), "vocab/vector count mismatch");
        Self { name: name.into(), vocab, vectors }
    }

    /// The vocabulary.
    pub fn vocab(&self) -> &Vocab {
        &self.vocab
    }

    /// Raw vector matrix (row `i` = vector of `vocab.token(i)`).
    pub fn vectors(&self) -> &Matrix {
        &self.vectors
    }

    /// Vector by vocabulary id.
    pub fn vector(&self, id: u32) -> &[f32] {
        self.vectors.row(id as usize)
    }

    /// Renames the table (e.g. `"glove"` → `"glove-chem"` after further
    /// training).
    pub fn renamed(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    /// Cosine-similarity nearest neighbours of a token (excluding itself):
    /// `(token, similarity)` pairs, best first.
    pub fn nearest(&self, token: &str, k: usize) -> Vec<(String, f32)> {
        let Some(id) = self.vocab.id(token) else { return Vec::new() };
        let q = self.vector(id);
        let mut sims: Vec<(u32, f32)> = (0..self.vocab.len() as u32)
            .filter(|&i| i != id)
            .map(|i| (i, kcb_ml::linalg::cosine(q, self.vector(i))))
            .collect();
        sims.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("NaN similarity"));
        sims.truncate(k);
        sims.into_iter().map(|(i, s)| (self.vocab.token(i).to_string(), s)).collect()
    }
}

impl EmbeddingModel for EmbeddingTable {
    fn name(&self) -> &str {
        &self.name
    }

    fn dim(&self) -> usize {
        self.vectors.cols()
    }

    fn vocab_size(&self) -> usize {
        self.vocab.len()
    }

    fn embed_into(&self, token: &str, out: &mut [f32]) -> Lookup {
        match self.vocab.id(token) {
            Some(id) => {
                out.copy_from_slice(self.vector(id));
                Lookup::InVocab
            }
            None => Lookup::Oov,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    fn table() -> EmbeddingTable {
        let mut counts = HashMap::new();
        counts.insert("acid".to_string(), 5u64);
        counts.insert("oxan".to_string(), 3u64);
        let vocab = Vocab::from_counts(counts, 1);
        let vectors = Matrix::from_rows(vec![vec![1.0, 0.0], vec![0.0, 1.0]]);
        EmbeddingTable::new("test", vocab, vectors)
    }

    #[test]
    fn lookup_in_and_out_of_vocab() {
        let t = table();
        let mut out = vec![0.0; 2];
        assert_eq!(t.embed_into("acid", &mut out), Lookup::InVocab);
        assert_eq!(out, vec![1.0, 0.0]);
        assert_eq!(t.embed_into("missing", &mut out), Lookup::Oov);
    }

    #[test]
    fn oov_fallback_is_deterministic_and_token_specific() {
        let t = table();
        let mut a = vec![0.0; 2];
        let mut b = vec![0.0; 2];
        assert_eq!(embed_or_random(&t, "zzz", &mut a), Lookup::Oov);
        embed_or_random(&t, "zzz", &mut b);
        assert_eq!(a, b, "same token, same vector");
        embed_or_random(&t, "yyy", &mut b);
        assert_ne!(a, b, "different tokens, different vectors");
        assert!(a.iter().all(|v| (-1.0..1.0).contains(v)));
    }

    #[test]
    fn oov_rate_counts() {
        let t = table();
        let (oov, total) = oov_rate(&t, ["acid", "oxan", "zzz", "www"]);
        assert_eq!((oov, total), (2, 4));
    }

    #[test]
    fn nearest_excludes_self_and_orders() {
        let vocab = Vocab::from_counts(
            [("a".to_string(), 3u64), ("b".to_string(), 2), ("c".to_string(), 1)].into_iter().collect(),
            1,
        );
        let vectors =
            Matrix::from_rows(vec![vec![1.0, 0.0], vec![0.9, 0.1], vec![0.0, 1.0]]);
        let t = EmbeddingTable::new("t", vocab, vectors);
        let nn = t.nearest("a", 2);
        assert_eq!(nn.len(), 2);
        assert_eq!(nn[0].0, "b");
        assert!(nn[0].1 > nn[1].1);
        assert!(t.nearest("missing", 3).is_empty());
    }

    #[test]
    #[should_panic(expected = "vocab/vector count mismatch")]
    fn new_validates_shape() {
        let vocab = Vocab::from_counts([("a".to_string(), 1u64)].into_iter().collect(), 1);
        let _ = EmbeddingTable::new("bad", vocab, Matrix::zeros(2, 3));
    }
}
