//! The random embedding model (§2.3): every token gets a fixed vector
//! drawn uniformly from `[-1, 1)`, carrying no semantics at all — the
//! paper's surprising strong baseline.

use crate::model::{random_vector_for, EmbeddingModel, Lookup};

/// Random embeddings. The vector for a token is a deterministic function
/// of the token string, so the model needs no stored vocabulary: every
/// token is "in vocabulary" by construction (matching the paper, where
/// random vectors were assigned on first sight).
#[derive(Debug, Clone)]
pub struct RandomEmbedding {
    dim: usize,
    name: String,
}

impl RandomEmbedding {
    /// Creates a model with the paper's 300 dimensions.
    pub fn new() -> Self {
        Self::with_dim(300)
    }

    /// Creates a model with a custom width.
    pub fn with_dim(dim: usize) -> Self {
        assert!(dim > 0, "dim must be positive");
        Self { dim, name: "random".to_string() }
    }
}

impl Default for RandomEmbedding {
    fn default() -> Self {
        Self::new()
    }
}

impl EmbeddingModel for RandomEmbedding {
    fn name(&self) -> &str {
        &self.name
    }

    fn dim(&self) -> usize {
        self.dim
    }

    fn vocab_size(&self) -> usize {
        // Unbounded implicit vocabulary.
        usize::MAX
    }

    fn embed_into(&self, token: &str, out: &mut [f32]) -> Lookup {
        random_vector_for(token, out);
        Lookup::InVocab
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_token_in_vocab() {
        let m = RandomEmbedding::with_dim(8);
        let mut out = vec![0.0; 8];
        assert_eq!(m.embed_into("anything-at-all", &mut out), Lookup::InVocab);
        assert!(out.iter().any(|&v| v != 0.0));
    }

    #[test]
    fn deterministic_and_distinct() {
        let m = RandomEmbedding::with_dim(16);
        let mut a = vec![0.0; 16];
        let mut b = vec![0.0; 16];
        m.embed_into("acid", &mut a);
        m.embed_into("acid", &mut b);
        assert_eq!(a, b);
        m.embed_into("base", &mut b);
        assert_ne!(a, b);
    }

    #[test]
    fn vectors_in_unit_box_and_roughly_centered() {
        let m = RandomEmbedding::with_dim(64);
        let mut acc = 0.0f64;
        let mut out = vec![0.0; 64];
        for i in 0..100 {
            m.embed_into(&format!("tok{i}"), &mut out);
            assert!(out.iter().all(|v| (-1.0..1.0).contains(v)));
            acc += out.iter().map(|&v| v as f64).sum::<f64>();
        }
        let mean = acc / (100.0 * 64.0);
        assert!(mean.abs() < 0.05, "mean {mean}");
    }

    #[test]
    #[should_panic(expected = "dim must be positive")]
    fn rejects_zero_dim() {
        let _ = RandomEmbedding::with_dim(0);
    }
}
