//! word2vec skip-gram with negative sampling (SGNS), trained from scratch —
//! the paper's W2V-Chem model (§2.3): "a word2vec model was trained from
//! scratch on ... papers from the chemical domain ... embeddings were
//! initialized from random vectors".

use crate::model::EmbeddingTable;
use crate::shard::{self, DeltaTable};
use kcb_ml::linalg::Matrix;
use kcb_text::Vocab;
use kcb_util::{pool, Rng};

/// SGNS hyperparameters (defaults follow the original word2vec tool).
#[derive(Debug, Clone, Copy)]
pub struct Word2VecConfig {
    /// Embedding width.
    pub dim: usize,
    /// Maximum context window (actual window is sampled 1..=window).
    pub window: usize,
    /// Negative samples per positive pair.
    pub negative: usize,
    /// Passes over the corpus.
    pub epochs: usize,
    /// Initial learning rate (linearly decayed).
    pub lr: f32,
    /// Minimum token frequency to enter the vocabulary.
    pub min_count: u64,
    /// Frequent-word subsampling threshold (0 disables).
    pub subsample: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for Word2VecConfig {
    fn default() -> Self {
        Self {
            dim: 100,
            window: 5,
            negative: 5,
            epochs: 5,
            lr: 0.025,
            min_count: 2,
            subsample: 1e-3,
            seed: 42,
        }
    }
}

/// Trains SGNS embeddings on tokenized sentences and returns the input
/// vectors as an [`EmbeddingTable`] named `name`.
///
/// Training is block-synchronous sharded SGD (see [`crate::shard`]): each
/// epoch is cut into fixed sentence blocks, every block fans its shards out
/// over the pool, and the shard deltas fold back in fixed order — so the
/// table is bitwise identical at any thread count.
///
/// ```
/// use kcb_embed::{word2vec, EmbeddingModel};
/// let corpus: Vec<Vec<String>> = (0..50)
///     .map(|_| ["acid", "proton", "donor"].iter().map(|s| s.to_string()).collect())
///     .collect();
/// let cfg = word2vec::Word2VecConfig { dim: 8, epochs: 1, min_count: 1, ..Default::default() };
/// let table = word2vec::train("demo", &corpus, &cfg);
/// assert_eq!(table.vocab_size(), 3);
/// assert_eq!(table.dim(), 8);
/// ```
pub fn train(name: &str, sentences: &[Vec<String>], cfg: &Word2VecConfig) -> EmbeddingTable {
    let vocab = Vocab::from_streams(
        sentences.iter().map(|s| s.iter().map(String::as_str)),
        cfg.min_count,
    );
    assert!(!vocab.is_empty(), "word2vec: empty vocabulary");
    let n = vocab.len();
    let dim = cfg.dim;
    let mut rng = Rng::seed_stream(cfg.seed, 0x2ec);

    // syn0 = input vectors (the product), syn1 = output vectors.
    let mut syn0 = vec![0.0f32; n * dim];
    for v in &mut syn0 {
        *v = (rng.f32() - 0.5) / dim as f32;
    }
    let mut syn1 = vec![0.0f32; n * dim];

    // Unigram^0.75 negative-sampling distribution as a cumulative table.
    let neg_cum: Vec<f64> = {
        let mut acc = 0.0;
        (0..n as u32)
            .map(|i| {
                acc += (vocab.count(i) as f64).powf(0.75);
                acc
            })
            .collect()
    };
    let neg_total = *neg_cum.last().expect("non-empty vocab");
    let draw_negative = move |rng: &mut Rng| -> u32 {
        let t = rng.f64() * neg_total;
        neg_cum.partition_point(|&c| c <= t).min(n - 1) as u32
    };

    // Pre-map sentences to ids (OOV dropped).
    let id_sentences: Vec<Vec<u32>> = sentences
        .iter()
        .map(|s| s.iter().filter_map(|t| vocab.id(t)).collect())
        .collect();
    let total_tokens: usize = id_sentences.iter().map(Vec::len).sum();
    let total_work = (total_tokens * cfg.epochs).max(1);
    let corpus_size = vocab.total_count() as f64;

    // Shard-private accumulators and scratch, allocated once per run.
    struct Shard {
        d0: DeltaTable,
        d1: DeltaTable,
        v_eff: Vec<f32>,
        u_eff: Vec<f32>,
        grad: Vec<f32>,
    }
    let mut shards: Vec<Shard> = (0..shard::SHARDS)
        .map(|_| Shard {
            d0: DeltaTable::new(n, dim),
            d1: DeltaTable::new(n, dim),
            v_eff: vec![0.0; dim],
            u_eff: vec![0.0; dim],
            grad: vec![0.0; dim],
        })
        .collect();

    let mut processed = 0usize;
    for epoch in 0..cfg.epochs {
        for (block_idx, block) in id_sentences.chunks(shard::BLOCK_SENTENCES).enumerate() {
            // One learning rate per block, from global progress at block
            // start — block granularity is what makes shards independent.
            let lr_now = {
                let frac = processed as f32 / total_work as f32;
                (cfg.lr * (1.0 - frac)).max(cfg.lr * 1e-4)
            };
            let workers = pool::fanout(pool::threads(), shard::SHARDS);
            pool::run_sharded(workers, &mut shards, |s, st| {
                st.d0.begin_block();
                st.d1.begin_block();
                let mut rng =
                    Rng::seed_stream(cfg.seed, shard::shard_stream(0x2ec, epoch, block_idx, s));
                for sent in &block[shard::shard_range(block.len(), s)] {
                    // Frequent-word subsampling (word2vec's keep probability).
                    let kept: Vec<u32> = sent
                        .iter()
                        .copied()
                        .filter(|&w| {
                            if cfg.subsample <= 0.0 {
                                return true;
                            }
                            let f = vocab.count(w) as f64 / corpus_size;
                            let keep = (cfg.subsample / f).sqrt() + cfg.subsample / f;
                            keep >= 1.0 || rng.f64() < keep
                        })
                        .collect();
                    if kept.len() < 2 {
                        continue;
                    }
                    for (pos, &center) in kept.iter().enumerate() {
                        let b = 1 + rng.below(cfg.window);
                        let lo = pos.saturating_sub(b);
                        let hi = (pos + b + 1).min(kept.len());
                        for ctx_pos in lo..hi {
                            if ctx_pos == pos {
                                continue;
                            }
                            let context = kept[ctx_pos];
                            // Effective views = frozen params + this shard's
                            // block deltas (sequential SGD within the shard).
                            st.d0.read_into(center as usize, &syn0, &mut st.v_eff);
                            st.grad.fill(0.0);
                            // One positive + k negative updates on (center, *).
                            for k in 0..=cfg.negative {
                                let (target, label) = if k == 0 {
                                    (context, 1.0f32)
                                } else {
                                    let neg = draw_negative(&mut rng);
                                    if neg == context {
                                        continue;
                                    }
                                    (neg, 0.0)
                                };
                                let u = target as usize;
                                st.d1.read_into(u, &syn1, &mut st.u_eff);
                                let score: f32 = kcb_ml::linalg::dot(&st.v_eff, &st.u_eff);
                                let g = (label - kcb_ml::linalg::sigmoid(score)) * lr_now;
                                let drow = st.d1.row_mut(u);
                                for j in 0..dim {
                                    st.grad[j] += g * st.u_eff[j];
                                    drow[j] += g * st.v_eff[j];
                                }
                            }
                            let crow = st.d0.row_mut(center as usize);
                            for j in 0..dim {
                                crow[j] += st.grad[j];
                            }
                        }
                    }
                }
            });
            // Fold deltas back in fixed shard order — the reduction order is
            // part of the result, so it never varies with the worker count.
            for st in &shards {
                st.d0.apply(&mut syn0);
                st.d1.apply(&mut syn1);
            }
            processed += block.iter().map(Vec::len).sum::<usize>();
        }
    }

    EmbeddingTable::new(name, vocab, Matrix::from_vec(syn0, n, dim))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{EmbeddingModel, Lookup};
    use kcb_ml::linalg::cosine;

    /// Two disjoint topic clusters; co-occurrence only within a cluster.
    fn topic_corpus(n_sent: usize, seed: u64) -> Vec<Vec<String>> {
        let mut rng = Rng::seed(seed);
        let topic_a = ["acid", "proton", "donor", "carboxyl"];
        let topic_b = ["steroid", "ring", "androstane", "hormone"];
        (0..n_sent)
            .map(|_| {
                let topic: &[&str] = if rng.chance(0.5) { &topic_a } else { &topic_b };
                (0..6).map(|_| topic[rng.below(topic.len())].to_string()).collect()
            })
            .collect()
    }

    fn small_cfg() -> Word2VecConfig {
        Word2VecConfig { dim: 24, epochs: 12, min_count: 1, subsample: 0.0, ..Word2VecConfig::default() }
    }

    #[test]
    fn cooccurring_tokens_are_closer() {
        let corpus = topic_corpus(400, 1);
        let t = train("w2v-test", &corpus, &small_cfg());
        let mut acid = vec![0.0; 24];
        let mut proton = vec![0.0; 24];
        let mut steroid = vec![0.0; 24];
        assert_eq!(t.embed_into("acid", &mut acid), Lookup::InVocab);
        assert_eq!(t.embed_into("proton", &mut proton), Lookup::InVocab);
        assert_eq!(t.embed_into("steroid", &mut steroid), Lookup::InVocab);
        let same = cosine(&acid, &proton);
        let cross = cosine(&acid, &steroid);
        assert!(
            same > cross + 0.2,
            "within-topic sim {same} should beat cross-topic {cross}"
        );
    }

    #[test]
    fn nearest_neighbour_is_topical() {
        let corpus = topic_corpus(400, 2);
        let t = train("w2v-test", &corpus, &small_cfg());
        let nn = t.nearest("steroid", 2);
        let topical = ["ring", "androstane", "hormone"];
        assert!(
            topical.contains(&nn[0].0.as_str()),
            "nearest of 'steroid' was {:?}",
            nn
        );
    }

    #[test]
    fn training_is_deterministic() {
        let corpus = topic_corpus(50, 3);
        let a = train("a", &corpus, &small_cfg());
        let b = train("b", &corpus, &small_cfg());
        assert_eq!(a.vectors().as_slice(), b.vectors().as_slice());
    }

    #[test]
    fn training_is_bitwise_identical_across_thread_counts() {
        let corpus = topic_corpus(300, 6);
        let a = {
            let _g = pool::ThreadsGuard::new(1);
            train("a", &corpus, &small_cfg())
        };
        let b = {
            let _g = pool::ThreadsGuard::new(4);
            train("b", &corpus, &small_cfg())
        };
        assert_eq!(a.vectors().as_slice(), b.vectors().as_slice());
    }

    #[test]
    fn min_count_prunes_rare_tokens() {
        let corpus = vec![
            vec!["common".to_string(), "common".to_string(), "rare".to_string()],
            vec!["common".to_string(), "common".to_string()],
        ];
        let cfg = Word2VecConfig { min_count: 2, dim: 8, ..small_cfg() };
        let t = train("t", &corpus, &cfg);
        assert_eq!(t.vocab_size(), 1);
        let mut out = vec![0.0; 8];
        assert_eq!(t.embed_into("rare", &mut out), Lookup::Oov);
    }

    #[test]
    #[should_panic(expected = "empty vocabulary")]
    fn rejects_empty_corpus() {
        let _ = train("t", &[], &small_cfg());
    }
}
