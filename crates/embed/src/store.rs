//! Compact binary serialization for trained [`EmbeddingTable`]s, so that
//! expensive embedding pre-training can be cached between experiment runs.
//!
//! Format (little-endian): magic `KCBE`, version u32, dim u32, n u32, name
//! (u32 length + UTF-8), then per token: u32 name length, UTF-8 bytes,
//! u64 count, `dim` f32 values.

use crate::model::{EmbeddingModel, EmbeddingTable};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use kcb_ml::linalg::Matrix;
use kcb_text::Vocab;
use kcb_util::{Error, Result};
use std::collections::HashMap;

const MAGIC: &[u8; 4] = b"KCBE";
const VERSION: u32 = 1;

/// Serializes a table to bytes.
pub fn to_bytes(table: &EmbeddingTable) -> Bytes {
    let vocab = table.vocab();
    let dim = table.vectors().cols();
    let mut buf = BytesMut::with_capacity(16 + vocab.len() * (16 + dim * 4));
    buf.put_slice(MAGIC);
    buf.put_u32_le(VERSION);
    buf.put_u32_le(dim as u32);
    buf.put_u32_le(vocab.len() as u32);
    put_str(&mut buf, table.name());
    for id in 0..vocab.len() as u32 {
        put_str(&mut buf, vocab.token(id));
        buf.put_u64_le(vocab.count(id));
        for &v in table.vector(id) {
            buf.put_f32_le(v);
        }
    }
    buf.freeze()
}

/// Deserializes a table from bytes.
pub fn from_bytes(mut buf: &[u8]) -> Result<EmbeddingTable> {
    let err = |m: &str| Error::parse("embedding store", m);
    if buf.remaining() < 16 || &buf[..4] != MAGIC {
        return Err(err("bad magic"));
    }
    buf.advance(4);
    let version = buf.get_u32_le();
    if version != VERSION {
        return Err(err(&format!("unsupported version {version}")));
    }
    let dim = buf.get_u32_le() as usize;
    let n = buf.get_u32_le() as usize;
    let name = get_str(&mut buf)?;
    let mut counts: Vec<(String, u64)> = Vec::with_capacity(n);
    let mut data = Vec::with_capacity(n * dim);
    for _ in 0..n {
        let tok = get_str(&mut buf)?;
        if buf.remaining() < 8 + dim * 4 {
            return Err(err("truncated record"));
        }
        let count = buf.get_u64_le();
        counts.push((tok, count));
        for _ in 0..dim {
            data.push(buf.get_f32_le());
        }
    }
    // Rebuild the vocabulary preserving the stored (frequency) order: the
    // stored order is exactly Vocab's canonical order, so reconstructing
    // from counts reproduces the same ids.
    let map: HashMap<String, u64> = counts.iter().cloned().collect();
    let vocab = Vocab::from_counts(map, 0);
    // Sanity: ids must line up with stored row order.
    for (i, (tok, _)) in counts.iter().enumerate() {
        if vocab.id(tok) != Some(i as u32) {
            return Err(err("vocabulary order mismatch (corrupt or duplicate tokens)"));
        }
    }
    Ok(EmbeddingTable::new(name, vocab, Matrix::from_vec(data, n, dim)))
}

/// Version tag for the raw-payload split encoding ([`raw_parts`]).
const RAW_VERSION: u32 = 2;

/// Splits a table into a small metadata blob (shape, name, vocabulary
/// records — everything except vectors) plus the flat vector slice, for the
/// raw-payload (`KCBC` v2) container section. The payload is the row-major
/// vector matrix.
pub fn raw_parts(table: &EmbeddingTable) -> (Vec<u8>, &[f32]) {
    let vocab = table.vocab();
    let dim = table.vectors().cols();
    let mut buf = BytesMut::with_capacity(16 + vocab.len() * 16);
    buf.put_slice(MAGIC);
    buf.put_u32_le(RAW_VERSION);
    buf.put_u32_le(dim as u32);
    buf.put_u32_le(vocab.len() as u32);
    put_str(&mut buf, table.name());
    for id in 0..vocab.len() as u32 {
        put_str(&mut buf, vocab.token(id));
        buf.put_u64_le(vocab.count(id));
    }
    (buf.to_vec(), table.vectors().as_slice())
}

/// Rebuilds a table from [`raw_parts`] metadata plus the raw section. The
/// vector matrix borrows the section zero-copy when it is memory-mapped and
/// aligned; bits are identical to the decode path either way.
pub fn from_raw(meta: &[u8], raw: &kcb_util::mmap::RawSection) -> Result<EmbeddingTable> {
    let err = |m: &str| Error::parse("embedding store", m);
    let mut buf: &[u8] = meta;
    if buf.remaining() < 16 || &buf[..4] != MAGIC {
        return Err(err("bad magic"));
    }
    buf.advance(4);
    let version = buf.get_u32_le();
    if version != RAW_VERSION {
        return Err(err(&format!("unsupported raw version {version}")));
    }
    let dim = buf.get_u32_le() as usize;
    let n = buf.get_u32_le() as usize;
    let name = get_str(&mut buf)?;
    let mut counts: Vec<(String, u64)> = Vec::with_capacity(n);
    for _ in 0..n {
        let tok = get_str(&mut buf)?;
        if buf.remaining() < 8 {
            return Err(err("truncated record"));
        }
        counts.push((tok, buf.get_u64_le()));
    }
    if buf.remaining() != 0 {
        return Err(err("trailing metadata bytes"));
    }
    if n.saturating_mul(dim).saturating_mul(4) != raw.len() {
        return Err(err("raw payload size does not match table shape"));
    }
    let map: HashMap<String, u64> = counts.iter().cloned().collect();
    let vocab = Vocab::from_counts(map, 0);
    for (i, (tok, _)) in counts.iter().enumerate() {
        if vocab.id(tok) != Some(i as u32) {
            return Err(err("vocabulary order mismatch (corrupt or duplicate tokens)"));
        }
    }
    let vectors = Matrix::from_shared(raw.f32s(0, n * dim)?, n, dim);
    Ok(EmbeddingTable::new(name, vocab, vectors))
}

/// Serializes a trained [`FastText`](crate::FastText) model (word table,
/// n-gram buckets, composition parameters) to bytes. Format: magic `KCBX`,
/// version u32, name, dim/buckets/min_n/max_n, vocabulary records, then
/// both flat vector tables bit-exact.
pub fn fasttext_to_bytes(model: &crate::FastText) -> Vec<u8> {
    let mut w = kcb_util::bin::Writer::new();
    model.encode(&mut w);
    w.into_bytes()
}

/// Deserializes a fastText model written by [`fasttext_to_bytes`].
pub fn fasttext_from_bytes(bytes: &[u8]) -> Result<crate::FastText> {
    let mut r = kcb_util::bin::Reader::new(bytes, "fasttext store");
    let m = crate::FastText::decode(&mut r)?;
    r.finish()?;
    Ok(m)
}

/// Saves a table to a file.
pub fn save(table: &EmbeddingTable, path: &std::path::Path) -> Result<()> {
    std::fs::write(path, to_bytes(table))?;
    Ok(())
}

/// Loads a table from a file.
pub fn load(path: &std::path::Path) -> Result<EmbeddingTable> {
    let data = std::fs::read(path)?;
    from_bytes(&data)
}

fn put_str(buf: &mut BytesMut, s: &str) {
    buf.put_u32_le(s.len() as u32);
    buf.put_slice(s.as_bytes());
}

fn get_str(buf: &mut &[u8]) -> Result<String> {
    let err = |m: &str| Error::parse("embedding store", m);
    if buf.remaining() < 4 {
        return Err(err("truncated string length"));
    }
    let len = buf.get_u32_le() as usize;
    if buf.remaining() < len {
        return Err(err("truncated string"));
    }
    let s = std::str::from_utf8(&buf[..len]).map_err(|_| err("invalid utf-8"))?.to_string();
    buf.advance(len);
    Ok(s)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> EmbeddingTable {
        let counts: HashMap<String, u64> =
            [("acid".to_string(), 9u64), ("oxan".to_string(), 4), ("yl".to_string(), 2)]
                .into_iter()
                .collect();
        let vocab = Vocab::from_counts(counts, 0);
        let vectors = Matrix::from_rows(vec![
            vec![0.1, -0.5, 2.0],
            vec![1.0, 0.0, -1.0],
            vec![0.25, 0.75, 0.5],
        ]);
        EmbeddingTable::new("w2v-chem", vocab, vectors)
    }

    #[test]
    fn round_trip_exact() {
        let t = table();
        let bytes = to_bytes(&t);
        let u = from_bytes(&bytes).unwrap();
        assert_eq!(u.name(), "w2v-chem");
        assert_eq!(u.vocab_size(), 3);
        assert_eq!(u.dim(), 3);
        for id in 0..3u32 {
            assert_eq!(t.vocab().token(id), u.vocab().token(id));
            assert_eq!(t.vocab().count(id), u.vocab().count(id));
            assert_eq!(t.vector(id), u.vector(id));
        }
    }

    #[test]
    fn raw_parts_round_trip_exact() {
        let t = table();
        let (meta, vectors) = raw_parts(&t);
        let (bytes, sums) = kcb_util::mmap::pack_f32s(&[vectors]);
        let len = bytes.len();
        let raw = kcb_util::mmap::RawSection::from_owned(bytes, 0, len, sums).unwrap();
        let u = from_raw(&meta, &raw).unwrap();
        assert_eq!(u.name(), t.name());
        assert_eq!(u.vocab_size(), t.vocab_size());
        for id in 0..3u32 {
            assert_eq!(t.vocab().token(id), u.vocab().token(id));
            assert_eq!(t.vocab().count(id), u.vocab().count(id));
            assert_eq!(t.vector(id), u.vector(id));
        }
        // Mismatched payload size (extra row) must reject.
        let (bytes2, sums2) = kcb_util::mmap::pack_f32s(&[vectors, &[1.0, 2.0, 3.0]]);
        let len2 = bytes2.len();
        let raw2 = kcb_util::mmap::RawSection::from_owned(bytes2, 0, len2, sums2).unwrap();
        assert!(from_raw(&meta, &raw2).is_err());
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("kcb-embed-store-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("table.kcbe");
        let t = table();
        save(&t, &path).unwrap();
        let u = load(&path).unwrap();
        assert_eq!(u.name(), t.name());
        assert_eq!(u.vectors().as_slice(), t.vectors().as_slice());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn rejects_corrupt_input() {
        assert!(from_bytes(b"nope").is_err());
        assert!(from_bytes(b"KCBE\x01\x00\x00\x00").is_err());
        let mut good = to_bytes(&table()).to_vec();
        good.truncate(good.len() - 5);
        assert!(from_bytes(&good).is_err());
    }

    fn fasttext_model() -> crate::FastText {
        let corpus: Vec<Vec<String>> = (0..30)
            .map(|_| ["oxane", "acid", "sterol"].iter().map(|s| s.to_string()).collect())
            .collect();
        let cfg = crate::FastTextConfig {
            dim: 12,
            epochs: 2,
            min_count: 1,
            buckets: 64,
            ..Default::default()
        };
        crate::FastText::train("bw-test", &corpus, &cfg)
    }

    #[test]
    fn fasttext_round_trip_is_bit_exact() {
        let m = fasttext_model();
        let bytes = fasttext_to_bytes(&m);
        let u = fasttext_from_bytes(&bytes).unwrap();
        assert_eq!(u.name(), m.name());
        assert_eq!(u.dim(), m.dim());
        assert_eq!(u.vocab_size(), m.vocab_size());
        // Probe both in-vocab and subword-composed (OOV) lookups.
        for word in ["oxane", "acid", "sterol", "oxanyl", "unseen"] {
            let mut a = vec![0.0f32; m.dim()];
            let mut b = vec![0.0f32; m.dim()];
            assert_eq!(m.embed_into(word, &mut a), u.embed_into(word, &mut b));
            let bits = |v: &[f32]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
            assert_eq!(bits(&a), bits(&b), "word {word}");
        }
    }

    #[test]
    fn fasttext_rejects_truncation_and_version_flip() {
        let bytes = fasttext_to_bytes(&fasttext_model());
        for cut in [0, 4, 9, bytes.len() / 2, bytes.len() - 1] {
            assert!(fasttext_from_bytes(&bytes[..cut]).is_err(), "cut {cut}");
        }
        let mut flipped = bytes.clone();
        flipped[4] ^= 0x40;
        assert!(fasttext_from_bytes(&flipped).is_err());
    }

    mod props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// Any vocabulary + any float bit patterns survive the store
            /// round trip exactly — the property the warm/cold byte-identity
            /// contract rests on.
            #[test]
            fn table_round_trip_any_bits(
                raw_counts in prop::collection::vec(1u64..10_000, 1..20),
                dim in 1usize..5,
                float_seed in any::<u64>(),
            ) {
                let counts: HashMap<String, u64> = raw_counts
                    .iter()
                    .enumerate()
                    .map(|(i, &c)| (format!("tok{i}"), c))
                    .collect();
                let vocab = Vocab::from_counts(counts, 0);
                let n = vocab.len();
                let mut rng = kcb_util::Rng::seed(float_seed);
                let data: Vec<f32> = (0..n * dim)
                    .map(|_| f32::from_bits(rng.next_u32()))
                    .map(|v| if v.is_nan() { 0.0 } else { v })
                    .collect();
                let t = EmbeddingTable::new("prop", vocab, Matrix::from_vec(data, n, dim));
                let u = from_bytes(&to_bytes(&t)).unwrap();
                prop_assert_eq!(u.name(), t.name());
                let bits = |m: &EmbeddingTable| {
                    m.vectors().as_slice().iter().map(|v| v.to_bits()).collect::<Vec<_>>()
                };
                prop_assert_eq!(bits(&t), bits(&u));
                for id in 0..n as u32 {
                    prop_assert_eq!(t.vocab().token(id), u.vocab().token(id));
                    prop_assert_eq!(t.vocab().count(id), u.vocab().count(id));
                }
            }

            /// Feeding the decoder arbitrary garbage must error, not panic.
            #[test]
            fn arbitrary_bytes_never_panic(bytes in prop::collection::vec(any::<u8>(), 0..300)) {
                let _ = from_bytes(&bytes);
                let _ = fasttext_from_bytes(&bytes);
            }
        }
    }
}
