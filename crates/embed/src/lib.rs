//! Embedding models for the supervised-learning paradigm.
//!
//! Implements the six embedding families the paper compares (§2.3):
//! deterministic random vectors ([`random`]), word2vec skip-gram with
//! negative sampling ([`word2vec`] — W2V-Chem), GloVe with AdaGrad and
//! warm-start support ([`glove`] — GloVe and GloVe-Chem), and a
//! fastText-style subword model ([`fasttext`] — the BioWordVec stand-in).
//! Contextual PubmedBERT embeddings come from `kcb-lm` and implement the
//! same [`EmbeddingModel`] trait there. [`store`] saves/loads trained
//! tables in a compact binary format.

pub mod fasttext;
pub mod glove;
pub mod model;
pub mod quant;
pub mod random;
mod shard;
pub mod store;
pub mod word2vec;

pub use fasttext::{FastText, FastTextConfig};
pub use glove::GloveConfig;
pub use model::{embed_or_random, oov_rate, EmbeddingModel, EmbeddingTable, Lookup};
pub use quant::QuantizedEmbeddingTable;
pub use random::RandomEmbedding;
pub use word2vec::Word2VecConfig;
