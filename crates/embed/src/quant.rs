//! Int8-quantized embedding tables for the raw-speed query path.
//!
//! A [`QuantizedEmbeddingTable`] stores the vector matrix of an
//! [`EmbeddingTable`] as per-row symmetric int8 codes
//! ([`kcb_ml::quant::QuantizedMatrix`]), about 4× smaller than f32. Lookups
//! dequantize on the fly (so the table is a drop-in [`EmbeddingModel`]),
//! while [`QuantizedEmbeddingTable::nearest`] ranks by cosine on the raw
//! int8 codes: per-row positive scales cancel in cosine, so ranking needs
//! no dequantization at all — just the exact-i32 [`kcb_util::simd::dot_i8`]
//! kernel. Parity with the f32 path is measured by the calibration artifact
//! rather than assumed; the quantized path never feeds training.

use crate::model::{EmbeddingModel, EmbeddingTable, Lookup};
use kcb_ml::quant::QuantizedMatrix;
use kcb_text::Vocab;

/// An embedding table with int8-quantized vectors.
pub struct QuantizedEmbeddingTable {
    name: String,
    vocab: Vocab,
    q: QuantizedMatrix,
}

impl QuantizedEmbeddingTable {
    /// Quantizes a trained f32 table.
    pub fn quantize(table: &EmbeddingTable) -> Self {
        Self {
            name: format!("{}-int8", table.name()),
            vocab: table.vocab().clone(),
            q: QuantizedMatrix::quantize(table.vectors()),
        }
    }

    /// The vocabulary.
    pub fn vocab(&self) -> &Vocab {
        &self.vocab
    }

    /// The quantized matrix (codes + per-row scales).
    pub fn matrix(&self) -> &QuantizedMatrix {
        &self.q
    }

    /// Quantized payload bytes (codes + scales), for size reporting.
    pub fn payload_bytes(&self) -> usize {
        self.q.payload_bytes()
    }

    /// Cosine-similarity nearest neighbours of a token (excluding itself)
    /// computed entirely on int8 codes: `(token, similarity)` pairs, best
    /// first. Mirrors [`EmbeddingTable::nearest`].
    pub fn nearest(&self, token: &str, k: usize) -> Vec<(String, f32)> {
        let Some(id) = self.vocab.id(token) else { return Vec::new() };
        let q = self.q.row(id as usize);
        let mut sims: Vec<(u32, f32)> = (0..self.vocab.len() as u32)
            .filter(|&i| i != id)
            .map(|i| (i, kcb_ml::quant::cosine_i8(q, self.q.row(i as usize)) as f32))
            .collect();
        sims.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("NaN similarity"));
        sims.truncate(k);
        sims.into_iter().map(|(i, s)| (self.vocab.token(i).to_string(), s)).collect()
    }
}

impl EmbeddingModel for QuantizedEmbeddingTable {
    fn name(&self) -> &str {
        &self.name
    }

    fn dim(&self) -> usize {
        self.q.cols()
    }

    fn vocab_size(&self) -> usize {
        self.vocab.len()
    }

    fn embed_into(&self, token: &str, out: &mut [f32]) -> Lookup {
        match self.vocab.id(token) {
            Some(id) => {
                self.q.dequantize_row_into(id as usize, out);
                Lookup::InVocab
            }
            None => Lookup::Oov,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kcb_ml::linalg::Matrix;
    use std::collections::HashMap;

    fn table() -> EmbeddingTable {
        let counts: HashMap<String, u64> = [
            ("acid".to_string(), 9u64),
            ("oxan".to_string(), 6),
            ("sterol".to_string(), 4),
            ("yl".to_string(), 2),
        ]
        .into_iter()
        .collect();
        let vocab = Vocab::from_counts(counts, 0);
        let vectors = Matrix::from_rows(vec![
            vec![0.9, -0.5, 2.0, 0.1],
            vec![0.8, -0.4, 1.9, 0.2], // close to row 0
            vec![-1.0, 1.0, -2.0, 0.0], // opposite
            vec![0.0, 3.0, 0.0, 0.0],
        ]);
        EmbeddingTable::new("toy", vocab, vectors)
    }

    #[test]
    fn lookup_is_dequantized_within_half_step() {
        let t = table();
        let q = QuantizedEmbeddingTable::quantize(&t);
        assert_eq!(q.dim(), t.dim());
        assert_eq!(q.vocab_size(), t.vocab_size());
        assert_eq!(q.name(), "toy-int8");
        let mut f = vec![0.0; t.dim()];
        let mut d = vec![0.0; t.dim()];
        for id in 0..t.vocab_size() as u32 {
            let tok = t.vocab().token(id).to_string();
            assert!(t.embed_into(&tok, &mut f).in_vocab());
            assert!(q.embed_into(&tok, &mut d).in_vocab());
            let bound = q.matrix().scale(id as usize) * 0.5 + f32::EPSILON;
            for (a, b) in f.iter().zip(&d) {
                assert!((a - b).abs() <= bound, "{tok}: {a} vs {b}");
            }
        }
        assert_eq!(q.embed_into("missing", &mut d), Lookup::Oov);
    }

    #[test]
    fn int8_nearest_agrees_with_f32_on_separated_neighbours() {
        let t = table();
        let q = QuantizedEmbeddingTable::quantize(&t);
        let tok = t.vocab().token(0).to_string();
        let nf: Vec<String> = t.nearest(&tok, 2).into_iter().map(|(n, _)| n).collect();
        let ni: Vec<String> = q.nearest(&tok, 2).into_iter().map(|(n, _)| n).collect();
        assert_eq!(nf, ni, "well-separated neighbour order must survive int8");
        assert!(q.nearest("missing", 3).is_empty());
    }

    #[test]
    fn quantized_payload_is_smaller() {
        let t = table();
        let q = QuantizedEmbeddingTable::quantize(&t);
        let f32_bytes = t.vectors().as_slice().len() * 4;
        // One byte per element plus one f32 scale per row.
        assert_eq!(q.payload_bytes(), t.vectors().as_slice().len() + t.vocab_size() * 4);
        assert!(q.payload_bytes() <= f32_bytes / 2);
    }
}
