//! Failure injection: the binary embedding store must reject arbitrary
//! bytes gracefully, and round-trip arbitrary valid tables.

use kcb_embed::{store, EmbeddingModel, EmbeddingTable};
use kcb_ml::linalg::Matrix;
use kcb_text::Vocab;
use proptest::prelude::*;
use std::collections::HashMap;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn from_bytes_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..600)) {
        let _ = store::from_bytes(&bytes);
    }

    #[test]
    fn from_bytes_never_panics_with_magic(tail in prop::collection::vec(any::<u8>(), 0..600)) {
        let mut bytes = b"KCBE\x01\x00\x00\x00".to_vec();
        bytes.extend(tail);
        let _ = store::from_bytes(&bytes);
    }

    #[test]
    fn round_trip_arbitrary_tables(
        tokens in prop::collection::hash_set("[a-z0-9]{1,10}", 1..30),
        dim in 1usize..16,
        seed in any::<u64>(),
    ) {
        let counts: HashMap<String, u64> =
            tokens.iter().enumerate().map(|(i, t)| (t.clone(), (i + 1) as u64)).collect();
        let vocab = Vocab::from_counts(counts, 0);
        let mut rng = kcb_util::Rng::seed(seed);
        let data: Vec<f32> = (0..vocab.len() * dim).map(|_| rng.f32_range(-2.0, 2.0)).collect();
        let table = EmbeddingTable::new("fuzz", vocab, Matrix::from_vec(data, tokens.len(), dim));
        let bytes = store::to_bytes(&table);
        let back = store::from_bytes(&bytes).expect("round trip");
        prop_assert_eq!(back.vocab_size(), table.vocab_size());
        prop_assert_eq!(back.dim(), table.dim());
        for id in 0..table.vocab_size() as u32 {
            prop_assert_eq!(table.vector(id), back.vector(id));
        }
    }
}
