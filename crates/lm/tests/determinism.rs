//! Thread-count determinism regressions.
//!
//! The repro contract is that `--threads` changes wall-clock only, never
//! artifacts: every LM kernel fixes its per-element accumulation order, so
//! worker layout cannot leak into results. These tests pin the pool to 1
//! and 4 workers (via the RAII `ThreadsGuard`) and demand *bitwise*
//! equality — any `<` / `≈` tolerance here would hide exactly the class of
//! bug the contract forbids.

use kcb_lm::pool::ThreadsGuard;
use kcb_lm::tensor::{matmul_nn, matmul_nt, matmul_tn};
use kcb_lm::{MiniBert, MiniBertConfig, TrainConfig, TransformerConfig};
use kcb_ml::linalg::Matrix;

/// Serializes tests that touch the process-global pool size.
static POOL_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

fn pool_lock() -> std::sync::MutexGuard<'static, ()> {
    POOL_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

fn filled(rows: usize, cols: usize, seed: f32) -> Matrix {
    let mut m = Matrix::zeros(rows, cols);
    for r in 0..rows {
        for (c, v) in m.row_mut(r).iter_mut().enumerate() {
            *v = ((r * 31 + c * 7) as f32 * 0.013 + seed).sin();
        }
    }
    m
}

#[test]
fn matmul_kernels_are_bitwise_identical_across_thread_counts() {
    let _lock = pool_lock();
    // Big enough that rows × flops/row clears MIN_PARALLEL_FLOPS, so the
    // 4-worker run genuinely takes the chunked path on multi-core hosts.
    let a = filled(256, 96, 0.1);
    let b = filled(96, 96, 0.2);
    let bt = filled(96, 96, 0.3);
    let at = filled(96, 256, 0.4);
    let serial = {
        let _g = ThreadsGuard::new(1);
        (matmul_nn(&a, &b), matmul_nt(&a, &bt), matmul_tn(&at, &b))
    };
    let parallel = {
        let _g = ThreadsGuard::new(4);
        (matmul_nn(&a, &b), matmul_nt(&a, &bt), matmul_tn(&at, &b))
    };
    assert_eq!(serial.0.as_slice(), parallel.0.as_slice(), "matmul_nn");
    assert_eq!(serial.1.as_slice(), parallel.1.as_slice(), "matmul_nt");
    assert_eq!(serial.2.as_slice(), parallel.2.as_slice(), "matmul_tn");
}

fn pretrain_snapshot(threads: usize) -> (Vec<f32>, Vec<Matrix>) {
    let _g = ThreadsGuard::new(threads);
    let bert = MiniBert::new(MiniBertConfig {
        arch: TransformerConfig {
            vocab_size: 200,
            d_model: 32,
            n_heads: 4,
            n_layers: 2,
            d_ff: 64,
            max_len: 32,
            seed: 11,
        },
        mask_prob: 0.15,
    });
    let corpus: Vec<Vec<u32>> = (0..24)
        .map(|i| (0..20).map(|j| 5 + ((i * 17 + j * 3) % 190) as u32).collect())
        .collect();
    let tc = TrainConfig { epochs: 1, lr: 1e-3, batch_size: 8, seed: 9 };
    let losses = bert.pretrain_mlm(&corpus, &tc);
    (losses, bert.snapshot())
}

#[test]
fn mlm_pretraining_is_bitwise_identical_across_thread_counts() {
    let _lock = pool_lock();
    let (losses_1, weights_1) = pretrain_snapshot(1);
    let (losses_4, weights_4) = pretrain_snapshot(4);
    assert_eq!(losses_1, losses_4, "per-epoch losses must match bitwise");
    assert_eq!(weights_1.len(), weights_4.len());
    for (i, (w1, w4)) in weights_1.iter().zip(&weights_4).enumerate() {
        assert_eq!(w1.as_slice(), w4.as_slice(), "weight matrix {i}");
    }
}
