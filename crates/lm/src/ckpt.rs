//! Binary checkpoint format for transformer weight snapshots.
//!
//! [`MiniBert::snapshot`](crate::MiniBert::snapshot) and
//! [`MiniGpt::snapshot`](crate::MiniGpt::snapshot) expose a model's weights
//! as an ordered `Vec<Matrix>`; this module round-trips that list through
//! bytes so the checkpoint store can persist pre-trained models across
//! `repro` runs. Float bit patterns are preserved exactly, so a restored
//! model scores identically to the one that was saved.

use kcb_ml::linalg::Matrix;
use kcb_util::bin::{Reader, Writer};
use kcb_util::mmap::RawSection;
use kcb_util::Result;

const MAGIC: &[u8; 4] = b"KCBW";
const VERSION: u32 = 1;
/// Version tag for the raw-payload split encoding ([`weights_raw_parts`]).
const RAW_VERSION: u32 = 2;

/// Encodes a weight snapshot (ordered matrices) into a standalone blob.
pub fn weights_to_bytes(weights: &[Matrix]) -> Vec<u8> {
    let mut w = Writer::new();
    w.raw(MAGIC);
    w.u32(VERSION);
    w.u32(weights.len() as u32);
    for m in weights {
        w.u32(m.rows() as u32);
        w.u32(m.cols() as u32);
        for &v in m.as_slice() {
            w.f32(v);
        }
    }
    w.into_bytes()
}

/// Decodes a weight snapshot written by [`weights_to_bytes`]. Truncated or
/// corrupt input returns an error instead of panicking.
pub fn weights_from_bytes(bytes: &[u8]) -> Result<Vec<Matrix>> {
    let mut r = Reader::new(bytes, "lm-weights");
    r.magic(MAGIC)?;
    r.version(VERSION)?;
    let n = r.u32()? as usize;
    r.sized(n, 8)?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let rows = r.u32()? as usize;
        let cols = r.u32()? as usize;
        r.sized(rows.saturating_mul(cols), 4)?;
        let mut data = Vec::with_capacity(rows * cols);
        for _ in 0..rows * cols {
            data.push(r.f32()?);
        }
        out.push(Matrix::from_vec(data, rows, cols));
    }
    r.finish()?;
    Ok(out)
}

/// Splits a snapshot into a small shape-metadata blob plus the flat f32
/// slices, in order, for the raw-payload (`KCBC` v2) container section.
/// The payload layout is simply the matrices' elements concatenated.
pub fn weights_raw_parts(weights: &[Matrix]) -> (Vec<u8>, Vec<&[f32]>) {
    let mut w = Writer::new();
    w.raw(MAGIC);
    w.u32(RAW_VERSION);
    w.u32(weights.len() as u32);
    for m in weights {
        w.u32(m.rows() as u32);
        w.u32(m.cols() as u32);
    }
    (w.into_bytes(), weights.iter().map(|m| m.as_slice()).collect())
}

/// Rebuilds a snapshot from [`weights_raw_parts`] metadata plus the raw
/// section. Matrices borrow the section zero-copy when it is memory-mapped
/// and aligned; bits are identical to the decode path either way.
pub fn weights_from_raw(meta: &[u8], raw: &RawSection) -> Result<Vec<Matrix>> {
    let mut r = Reader::new(meta, "lm-weights-raw");
    r.magic(MAGIC)?;
    r.version(RAW_VERSION)?;
    let n = r.u32()? as usize;
    r.sized(n, 8)?;
    let mut shapes = Vec::with_capacity(n);
    for _ in 0..n {
        let rows = r.u32()? as usize;
        let cols = r.u32()? as usize;
        shapes.push((rows, cols));
    }
    r.finish()?;
    let mut out = Vec::with_capacity(n);
    let mut off = 0usize;
    for (rows, cols) in shapes {
        let len = rows.saturating_mul(cols);
        out.push(Matrix::from_shared(raw.f32s(off, len)?, rows, cols));
        off += len;
    }
    if off * 4 != raw.len() {
        return Err(kcb_util::Error::parse(
            "lm-weights-raw",
            format!("raw payload holds {} bytes, shapes need {}", raw.len(), off * 4),
        ));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<Matrix> {
        vec![
            Matrix::from_vec(vec![1.5, -0.0, f32::MIN_POSITIVE, 3.25e-7, 2.0, -9.5], 2, 3),
            Matrix::from_vec(vec![], 0, 4),
            Matrix::from_vec(vec![42.0], 1, 1),
        ]
    }

    #[test]
    fn round_trip_is_bit_exact() {
        let ws = sample();
        let decoded = weights_from_bytes(&weights_to_bytes(&ws)).expect("decode");
        assert_eq!(decoded.len(), ws.len());
        for (a, b) in ws.iter().zip(&decoded) {
            assert_eq!((a.rows(), a.cols()), (b.rows(), b.cols()));
            let bits =
                |m: &Matrix| m.as_slice().iter().map(|v| v.to_bits()).collect::<Vec<_>>();
            assert_eq!(bits(a), bits(b));
        }
    }

    #[test]
    fn raw_parts_round_trip_is_bit_exact() {
        let ws = sample();
        let (meta, parts) = weights_raw_parts(&ws);
        let (bytes, sums) = kcb_util::mmap::pack_f32s(&parts);
        let len = bytes.len();
        let raw = RawSection::from_owned(bytes, 0, len, sums).unwrap();
        let decoded = weights_from_raw(&meta, &raw).expect("decode raw");
        assert_eq!(decoded.len(), ws.len());
        for (a, b) in ws.iter().zip(&decoded) {
            assert_eq!((a.rows(), a.cols()), (b.rows(), b.cols()));
            let bits = |m: &Matrix| m.as_slice().iter().map(|v| v.to_bits()).collect::<Vec<_>>();
            assert_eq!(bits(a), bits(b));
        }
    }

    #[test]
    fn raw_parts_reject_payload_size_mismatch() {
        let ws = sample();
        let (meta, parts) = weights_raw_parts(&ws);
        let (mut bytes, _) = kcb_util::mmap::pack_f32s(&parts);
        bytes.extend_from_slice(&[0u8; 8]); // extra trailing elements
        let sums = bytes.chunks(kcb_util::mmap::STRIPE).map(kcb_util::fnv1a).collect();
        let len = bytes.len();
        let raw = RawSection::from_owned(bytes, 0, len, sums).unwrap();
        assert!(weights_from_raw(&meta, &raw).is_err());
    }

    #[test]
    fn truncation_errors_at_every_cut() {
        let bytes = weights_to_bytes(&sample());
        for cut in 0..bytes.len() {
            assert!(weights_from_bytes(&bytes[..cut]).is_err(), "cut {cut}");
        }
    }

    #[test]
    fn version_flip_is_rejected() {
        let mut bytes = weights_to_bytes(&sample());
        bytes[4] ^= 1;
        assert!(weights_from_bytes(&bytes).is_err());
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let mut bytes = weights_to_bytes(&sample());
        bytes.push(0);
        assert!(weights_from_bytes(&bytes).is_err());
    }

    #[test]
    fn restored_encoder_scores_probe_batch_identically() {
        use crate::{MiniBert, MiniBertConfig, TrainConfig, TransformerConfig};
        let cfg = MiniBertConfig {
            arch: TransformerConfig {
                vocab_size: 40,
                d_model: 16,
                n_heads: 2,
                n_layers: 2,
                d_ff: 32,
                max_len: 12,
                seed: 7,
            },
            mask_prob: 0.2,
        };
        let bert = MiniBert::new(cfg);
        let seqs: Vec<Vec<u32>> =
            (0..8).map(|i| (0..10).map(|j| (i * 3 + j) % 40).collect()).collect();
        bert.pretrain_mlm(&seqs, &TrainConfig { epochs: 1, batch_size: 4, ..TrainConfig::default() });

        let bytes = weights_to_bytes(&bert.snapshot());
        let restored = MiniBert::new(cfg);
        restored.restore(&weights_from_bytes(&bytes).expect("decode"));

        let probe: Vec<&[u32]> = seqs.iter().map(Vec::as_slice).collect();
        for (a, b) in bert.predict_proba_batch(&probe).iter().zip(restored.predict_proba_batch(&probe)) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        for (a, b) in bert.encode_batch(&probe).iter().zip(restored.encode_batch(&probe)) {
            let bits = |v: &[f32]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
            assert_eq!(bits(a), bits(&b));
        }
    }

    mod props {
        use super::*;
        use proptest::prelude::*;

        fn arb_matrix() -> impl Strategy<Value = Matrix> {
            ((1usize..6), (1usize..6)).prop_flat_map(|(r, c)| {
                prop::collection::vec(any::<f32>(), r * c)
                    .prop_map(move |data| Matrix::from_vec(data, r, c))
            })
        }

        proptest! {
            #[test]
            fn weights_round_trip_any_bits(ws in prop::collection::vec(arb_matrix(), 0..5)) {
                let decoded = weights_from_bytes(&weights_to_bytes(&ws)).unwrap();
                prop_assert_eq!(decoded.len(), ws.len());
                for (a, b) in ws.iter().zip(&decoded) {
                    prop_assert_eq!((a.rows(), a.cols()), (b.rows(), b.cols()));
                    let bits = |m: &Matrix| {
                        m.as_slice().iter().map(|v| v.to_bits()).collect::<Vec<_>>()
                    };
                    prop_assert_eq!(bits(a), bits(b));
                }
            }

            #[test]
            fn arbitrary_bytes_never_panic(bytes in prop::collection::vec(any::<u8>(), 0..200)) {
                let _ = weights_from_bytes(&bytes);
            }
        }
    }
}
