//! Mini-GPT: a causal decoder pre-trained with next-token prediction and
//! used generatively — the BioGPT stand-in for the in-context-learning
//! experiments. Unlike the API-gated GPT-3.5/4 (simulated behaviourally in
//! `kcb-icl`), this model is *actually prompted*: the few-shot prompt is
//! encoded, the model generates a continuation, and the parser decides
//! whether it answered.

use crate::optim::Adam;
use crate::tensor::Tensor;
use crate::transformer::{xavier, Backbone, TrainConfig, TransformerConfig};
use kcb_ml::linalg::Matrix;
use kcb_util::Rng;

/// Mini-GPT hyperparameters.
#[derive(Debug, Clone, Copy, Default)]
pub struct MiniGptConfig {
    /// Backbone architecture (attention is always causal here).
    pub arch: TransformerConfig,
}

/// A mini GPT-style causal language model.
pub struct MiniGpt {
    backbone: Backbone,
    lm_w: Tensor,
    lm_b: Tensor,
    cfg: MiniGptConfig,
}

impl MiniGpt {
    /// Initialises an untrained model.
    pub fn new(cfg: MiniGptConfig) -> Self {
        let mut rng = Rng::seed_stream(cfg.arch.seed, 0x69b7);
        let backbone = Backbone::new(cfg.arch, &mut rng);
        Self {
            lm_w: Tensor::leaf(xavier(cfg.arch.d_model, cfg.arch.vocab_size, &mut rng)),
            lm_b: Tensor::leaf(Matrix::zeros(1, cfg.arch.vocab_size)),
            backbone,
            cfg,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &MiniGptConfig {
        &self.cfg
    }

    /// Causal-LM pre-training (next-token prediction). Returns mean loss
    /// per epoch. Sequences longer than `max_len` are split into windows.
    pub fn pretrain_clm(&self, sequences: &[Vec<u32>], tc: &TrainConfig) -> Vec<f32> {
        assert!(!sequences.is_empty(), "empty pre-training corpus");
        let max_len = self.cfg.arch.max_len;
        // Window the corpus.
        let mut windows: Vec<Vec<u32>> = Vec::new();
        for s in sequences {
            if s.len() < 2 {
                continue;
            }
            for chunk in s.chunks(max_len) {
                if chunk.len() >= 2 {
                    windows.push(chunk.to_vec());
                }
            }
        }
        assert!(!windows.is_empty(), "no usable training windows");
        let _span = kcb_obs::span("lm", "gpt.pretrain_clm")
            .arg("windows", windows.len())
            .arg("epochs", tc.epochs);

        let mut rng = Rng::seed_stream(tc.seed, 0xc1a0);
        let mut opt = Adam::new(self.all_params(), tc.lr);
        let mut order: Vec<usize> = (0..windows.len()).collect();
        let mut epoch_losses = Vec::with_capacity(tc.epochs);
        for _epoch in 0..tc.epochs {
            rng.shuffle(&mut order);
            let mut total = 0.0f64;
            let mut n_batches = 0usize;
            for batch in order.chunks(tc.batch_size) {
                opt.zero_grad();
                // Pack the windows into one causal forward; every position
                // is supervised, weighted 1/(nᵢ·B) so the loss equals the
                // mean of per-window mean losses (the unbatched semantics).
                let inputs: Vec<&[u32]> =
                    batch.iter().map(|&i| &windows[i][..windows[i].len() - 1]).collect();
                let mut targets = Vec::new();
                let mut weights = Vec::new();
                for &i in batch {
                    let w = &windows[i];
                    targets.extend_from_slice(&w[1..]);
                    let wt = 1.0 / ((w.len() - 1) as f32 * batch.len() as f32);
                    weights.extend(std::iter::repeat_n(wt, w.len() - 1));
                }
                let (hidden, _segments) = self.backbone.forward_batch(&inputs, true);
                let logits = hidden.matmul(&self.lm_w).add_row(&self.lm_b);
                let loss = logits.cross_entropy_weighted(&targets, &weights);
                let batch_loss = f64::from(loss.data().get(0, 0));
                loss.backward();
                opt.step();
                total += batch_loss;
                n_batches += 1;
            }
            let epoch_loss = (total / n_batches.max(1) as f64) as f32;
            kcb_obs::series("lm.gpt.pretrain.loss", f64::from(epoch_loss));
            kcb_obs::series("lm.gpt.pretrain.lr", f64::from(opt.lr));
            kcb_obs::series("lm.gpt.pretrain.grad_norm", f64::from(opt.last_grad_norm()));
            epoch_losses.push(epoch_loss);
        }
        epoch_losses
    }

    /// Mean next-token cross-entropy of one sequence.
    pub fn loss(&self, seq: &[u32]) -> f32 {
        assert!(seq.len() >= 2, "loss needs at least two tokens");
        let window = &seq[seq.len().saturating_sub(self.cfg.arch.max_len)..];
        let inputs = &window[..window.len() - 1];
        let targets = &window[1..];
        let hidden = self.backbone.forward(inputs, true);
        let logits = hidden.matmul(&self.lm_w).add_row(&self.lm_b);
        logits.cross_entropy(targets).data().get(0, 0)
    }

    /// Generates `max_new` tokens after the prompt. `temperature == 0`
    /// means greedy argmax; otherwise softmax sampling at that temperature.
    /// Only the trailing `max_len - 1` prompt tokens condition generation.
    pub fn generate(&self, prompt: &[u32], max_new: usize, temperature: f32, rng: &mut Rng) -> Vec<u32> {
        assert!(!prompt.is_empty(), "empty prompt");
        let max_len = self.cfg.arch.max_len;
        let mut ctx: Vec<u32> = prompt.to_vec();
        let mut out = Vec::with_capacity(max_new);
        for _ in 0..max_new {
            let start = ctx.len().saturating_sub(max_len);
            let window = &ctx[start..];
            let hidden = self.backbone.forward(window, true);
            let last = hidden.select_rows(&[window.len() - 1]);
            let logits_t = last.matmul(&self.lm_w).add_row(&self.lm_b);
            let logits = logits_t.data().row(0).to_vec();
            let next = if temperature <= 0.0 {
                argmax(&logits)
            } else {
                sample_softmax(&logits, temperature, rng)
            };
            out.push(next as u32);
            ctx.push(next as u32);
        }
        out
    }

    fn all_params(&self) -> Vec<Tensor> {
        let mut p = self.backbone.params();
        p.extend([self.lm_w.clone(), self.lm_b.clone()]);
        p
    }

    /// Copies all weights out.
    pub fn snapshot(&self) -> Vec<Matrix> {
        self.all_params().iter().map(|p| p.data().clone()).collect()
    }

    /// Restores weights captured by [`MiniGpt::snapshot`].
    pub fn restore(&self, weights: &[Matrix]) {
        let params = self.all_params();
        assert_eq!(params.len(), weights.len(), "snapshot arity mismatch");
        for (p, w) in params.iter().zip(weights) {
            p.set_data(w.clone());
        }
    }
}

fn argmax(xs: &[f32]) -> usize {
    xs.iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).expect("NaN logit"))
        .map(|(i, _)| i)
        .expect("non-empty logits")
}

fn sample_softmax(logits: &[f32], temperature: f32, rng: &mut Rng) -> usize {
    let max = logits.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
    let weights: Vec<f64> =
        logits.iter().map(|&l| f64::from(((l - max) / temperature).exp())).collect();
    rng.weighted(&weights).expect("softmax weights sum > 0")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> MiniGptConfig {
        MiniGptConfig {
            arch: TransformerConfig {
                vocab_size: 24,
                d_model: 16,
                n_heads: 2,
                n_layers: 2,
                d_ff: 32,
                max_len: 16,
                seed: 11,
            },
        }
    }

    /// Deterministic cyclic language: token k is followed by (k+1) mod 8,
    /// offset by 10.
    fn cyclic_corpus(n: usize, seed: u64) -> Vec<Vec<u32>> {
        let mut rng = Rng::seed(seed);
        (0..n)
            .map(|_| {
                let start = rng.below(8) as u32;
                (0..12).map(|k| 10 + ((start + k) % 8)).collect()
            })
            .collect()
    }

    #[test]
    fn clm_loss_decreases_and_beats_chance() {
        let gpt = MiniGpt::new(tiny());
        let corpus = cyclic_corpus(150, 1);
        let tc = TrainConfig { epochs: 5, lr: 3e-3, batch_size: 16, seed: 2 };
        let losses = gpt.pretrain_clm(&corpus, &tc);
        assert!(losses.last().unwrap() < &losses[0]);
        // Chance = ln(24) ≈ 3.18; the cyclic rule is fully predictable.
        let test: Vec<u32> = (0..10).map(|k| 10 + (k % 8)).collect();
        assert!(gpt.loss(&test) < 1.0, "loss {} too high", gpt.loss(&test));
    }

    #[test]
    fn greedy_generation_continues_the_pattern() {
        let gpt = MiniGpt::new(tiny());
        let corpus = cyclic_corpus(200, 3);
        let tc = TrainConfig { epochs: 6, lr: 3e-3, batch_size: 16, seed: 4 };
        gpt.pretrain_clm(&corpus, &tc);
        let mut rng = Rng::seed(5);
        let generated = gpt.generate(&[10, 11, 12, 13], 4, 0.0, &mut rng);
        assert_eq!(generated, vec![14, 15, 16, 17], "pattern continuation");
    }

    #[test]
    fn greedy_is_deterministic_sampling_varies() {
        let gpt = MiniGpt::new(tiny());
        let mut r1 = Rng::seed(6);
        let mut r2 = Rng::seed(6);
        let a = gpt.generate(&[10, 11], 5, 0.0, &mut r1);
        let b = gpt.generate(&[10, 11], 5, 0.0, &mut r2);
        assert_eq!(a, b);
        // High-temperature sampling from an untrained model should differ
        // across seeds almost surely.
        let mut r3 = Rng::seed(7);
        let mut r4 = Rng::seed(8);
        let c = gpt.generate(&[10, 11], 8, 2.0, &mut r3);
        let d = gpt.generate(&[10, 11], 8, 2.0, &mut r4);
        assert_ne!(c, d);
    }

    #[test]
    fn long_prompts_use_trailing_window() {
        let gpt = MiniGpt::new(tiny());
        let long: Vec<u32> = (0..50).map(|k| 10 + (k % 8)).collect();
        let mut rng = Rng::seed(9);
        let out = gpt.generate(&long, 2, 0.0, &mut rng);
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn untrained_loss_near_uniform() {
        let gpt = MiniGpt::new(tiny());
        let l = gpt.loss(&[10, 11, 12, 13, 14]);
        let uniform = (24f32).ln();
        assert!((l - uniform).abs() < 0.7, "untrained loss {l} vs ln V {uniform}");
    }
}
