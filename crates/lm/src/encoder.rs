//! Mini-BERT: a bidirectional encoder with masked-LM pre-training, a
//! binary classification head for fine-tuning (NLP paradigm 2, §2.5) and
//! contextual `[CLS]` embeddings (the PubmedBERT-embeddings variant used by
//! the supervised paradigm, §2.3: "summed up the last 4 hidden layers of
//! the special token [CLS]").

use crate::optim::Adam;
use crate::tensor::{Tensor, IGNORE_TARGET};
use crate::transformer::{xavier, Backbone, TrainConfig, TransformerConfig};
use kcb_ml::linalg::Matrix;
use kcb_text::wordpiece::special;
use kcb_util::Rng;

/// Mini-BERT hyperparameters.
#[derive(Debug, Clone, Copy)]
pub struct MiniBertConfig {
    /// Backbone architecture.
    pub arch: TransformerConfig,
    /// Fraction of maskable positions selected for MLM.
    pub mask_prob: f64,
}

impl Default for MiniBertConfig {
    fn default() -> Self {
        Self { arch: TransformerConfig::default(), mask_prob: 0.15 }
    }
}

/// A mini BERT-style encoder.
pub struct MiniBert {
    backbone: Backbone,
    mlm_w: Tensor,
    mlm_b: Tensor,
    cls_w: Tensor,
    cls_b: Tensor,
    cfg: MiniBertConfig,
}

impl MiniBert {
    /// Initialises an untrained model.
    pub fn new(cfg: MiniBertConfig) -> Self {
        let mut rng = Rng::seed_stream(cfg.arch.seed, 0xbe47);
        let backbone = Backbone::new(cfg.arch, &mut rng);
        let d = cfg.arch.d_model;
        Self {
            mlm_w: Tensor::leaf(xavier(d, cfg.arch.vocab_size, &mut rng)),
            mlm_b: Tensor::leaf(Matrix::zeros(1, cfg.arch.vocab_size)),
            cls_w: Tensor::leaf(xavier(d, 2, &mut rng)),
            cls_b: Tensor::leaf(Matrix::zeros(1, 2)),
            backbone,
            cfg,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &MiniBertConfig {
        &self.cfg
    }

    /// Truncates a sequence to the positional budget.
    pub fn clamp(&self, ids: &mut Vec<u32>) {
        ids.truncate(self.cfg.arch.max_len);
    }

    /// Masked-LM pre-training. Returns the mean loss per epoch.
    ///
    /// BERT's 80/10/10 corruption: of the selected positions, 80 % become
    /// `[MASK]`, 10 % a random piece, 10 % stay unchanged; special tokens
    /// are never selected.
    pub fn pretrain_mlm(&self, sequences: &[Vec<u32>], tc: &TrainConfig) -> Vec<f32> {
        assert!(!sequences.is_empty(), "empty pre-training corpus");
        let _span = kcb_obs::span("lm", "bert.pretrain_mlm")
            .arg("sequences", sequences.len())
            .arg("epochs", tc.epochs);
        let mut rng = Rng::seed_stream(tc.seed, 0x313a);
        let mut opt = Adam::new(self.all_params(), tc.lr);
        let v = self.cfg.arch.vocab_size as u32;
        let mut order: Vec<usize> = (0..sequences.len()).collect();
        let mut epoch_losses = Vec::with_capacity(tc.epochs);

        for _epoch in 0..tc.epochs {
            rng.shuffle(&mut order);
            let mut total = 0.0f64;
            let mut n_batches = 0usize;
            for batch in order.chunks(tc.batch_size) {
                opt.zero_grad();
                // Corrupt every usable sequence (RNG consumption matches the
                // historical one-sequence-at-a-time order exactly), then run
                // the whole batch as one packed forward/backward.
                let mut inputs: Vec<Vec<u32>> = Vec::with_capacity(batch.len());
                let mut mask_positions: Vec<Vec<usize>> = Vec::with_capacity(batch.len());
                let mut mask_targets: Vec<Vec<u32>> = Vec::with_capacity(batch.len());
                for &i in batch {
                    let mut ids: Vec<u32> = sequences[i].clone();
                    self.clamp(&mut ids);
                    if ids.len() < 2 {
                        continue;
                    }
                    // Build corrupted input + targets.
                    let mut targets = vec![IGNORE_TARGET; ids.len()];
                    let mut masked_any = false;
                    for (pos, id) in ids.iter_mut().enumerate() {
                        if *id < special::COUNT as u32 {
                            continue;
                        }
                        if !rng.chance(self.cfg.mask_prob) {
                            continue;
                        }
                        targets[pos] = *id;
                        masked_any = true;
                        let roll = rng.f64();
                        if roll < 0.8 {
                            *id = special::MASK;
                        } else if roll < 0.9 {
                            *id = special::COUNT as u32 + rng.below((v as usize) - special::COUNT) as u32;
                        } // else keep
                    }
                    if !masked_any {
                        // Force one mask so every sequence contributes —
                        // but only over maskable (non-special) positions.
                        let maskable: Vec<usize> = (0..ids.len())
                            .filter(|&p| ids[p] >= special::COUNT as u32)
                            .collect();
                        if maskable.is_empty() {
                            continue;
                        }
                        let pos = maskable[rng.below(maskable.len())];
                        targets[pos] = ids[pos];
                        ids[pos] = special::MASK;
                    }
                    let positions: Vec<usize> = targets
                        .iter()
                        .enumerate()
                        .filter(|(_, &t)| t != IGNORE_TARGET)
                        .map(|(p, _)| p)
                        .collect();
                    mask_targets.push(positions.iter().map(|&p| targets[p]).collect());
                    mask_positions.push(positions);
                    inputs.push(ids);
                }
                let used = inputs.len();
                if used == 0 {
                    continue;
                }
                let refs: Vec<&[u32]> = inputs.iter().map(Vec::as_slice).collect();
                let (hidden, segments) = self.backbone.forward_batch(&refs, false);
                // Head only at supervised positions (hot-path saver); weight
                // 1/(nᵢ·B) keeps the mean-of-per-sequence-means semantics.
                let mut rows = Vec::new();
                let mut targets = Vec::new();
                let mut weights = Vec::new();
                for (si, positions) in mask_positions.iter().enumerate() {
                    let w = 1.0 / (positions.len() as f32 * batch.len() as f32);
                    for (&p, &t) in positions.iter().zip(&mask_targets[si]) {
                        rows.push(segments[si] + p);
                        targets.push(t);
                        weights.push(w);
                    }
                }
                let picked = hidden.select_rows(&rows);
                let logits = picked.matmul(&self.mlm_w).add_row(&self.mlm_b);
                let loss = logits.cross_entropy_weighted(&targets, &weights);
                let batch_loss = f64::from(loss.data().get(0, 0)) * batch.len() as f64;
                loss.backward();
                opt.step();
                total += batch_loss / used as f64;
                n_batches += 1;
            }
            let epoch_loss = (total / n_batches.max(1) as f64) as f32;
            kcb_obs::series("lm.bert.pretrain.loss", f64::from(epoch_loss));
            kcb_obs::series("lm.bert.pretrain.lr", f64::from(opt.lr));
            kcb_obs::series("lm.bert.pretrain.grad_norm", f64::from(opt.last_grad_norm()));
            epoch_losses.push(epoch_loss);
        }
        epoch_losses
    }

    /// Fine-tunes the classification head (and the whole backbone) on
    /// labelled sequences. Returns mean loss per epoch.
    pub fn fine_tune(&self, examples: &[(Vec<u32>, bool)], tc: &TrainConfig) -> Vec<f32> {
        assert!(!examples.is_empty(), "empty fine-tuning set");
        let _span = kcb_obs::span("lm", "bert.fine_tune")
            .arg("examples", examples.len())
            .arg("epochs", tc.epochs);
        let mut rng = Rng::seed_stream(tc.seed, 0xf17e);
        let mut opt = Adam::new(self.all_params(), tc.lr);
        let mut order: Vec<usize> = (0..examples.len()).collect();
        let mut epoch_losses = Vec::with_capacity(tc.epochs);
        for _epoch in 0..tc.epochs {
            rng.shuffle(&mut order);
            let mut total = 0.0f64;
            let mut n_batches = 0usize;
            for batch in order.chunks(tc.batch_size) {
                opt.zero_grad();
                let clamped: Vec<Vec<u32>> = batch
                    .iter()
                    .map(|&i| {
                        let mut ids = examples[i].0.clone();
                        self.clamp(&mut ids);
                        ids
                    })
                    .collect();
                let refs: Vec<&[u32]> = clamped.iter().map(Vec::as_slice).collect();
                let (hidden, segments) = self.backbone.forward_batch(&refs, false);
                // One `[CLS]` row per sequence; plain cross_entropy already
                // takes the mean over rows = the old 1/B-scaled sum.
                let cls = hidden.select_rows(&segments[..batch.len()]);
                let logits = cls.matmul(&self.cls_w).add_row(&self.cls_b);
                let targets: Vec<u32> = batch.iter().map(|&i| u32::from(examples[i].1)).collect();
                let loss = logits.cross_entropy(&targets);
                let batch_loss = f64::from(loss.data().get(0, 0));
                loss.backward();
                opt.step();
                total += batch_loss;
                n_batches += 1;
            }
            let epoch_loss = (total / n_batches.max(1) as f64) as f32;
            kcb_obs::series("lm.bert.ft.loss", f64::from(epoch_loss));
            kcb_obs::series("lm.bert.ft.lr", f64::from(opt.lr));
            kcb_obs::series("lm.bert.ft.grad_norm", f64::from(opt.last_grad_norm()));
            epoch_losses.push(epoch_loss);
        }
        epoch_losses
    }

    fn class_logits(&self, ids: &[u32]) -> Tensor {
        let mut ids = ids.to_vec();
        self.clamp(&mut ids);
        let hidden = self.backbone.forward(&ids, false);
        let cls = hidden.select_rows(&[0]);
        cls.matmul(&self.cls_w).add_row(&self.cls_b)
    }

    /// Positive-class probability for one sequence (first token should be
    /// `[CLS]`).
    pub fn predict_proba(&self, ids: &[u32]) -> f32 {
        let logits = self.class_logits(ids);
        let l = logits.data();
        let (a, b) = (l.get(0, 0), l.get(0, 1));
        let m = a.max(b);
        let ea = (a - m).exp();
        let eb = (b - m).exp();
        eb / (ea + eb)
    }

    /// Hard prediction at 0.5.
    pub fn predict(&self, ids: &[u32]) -> bool {
        self.predict_proba(ids) >= 0.5
    }

    /// Sequences per packed forward on the batched inference paths. Bounds
    /// tape memory while keeping the matmuls big enough to parallelise.
    const INFER_BATCH: usize = 32;

    /// Positive-class probabilities for many sequences at once. Bitwise
    /// equal to mapping [`MiniBert::predict_proba`] (block-diagonal
    /// attention keeps sequences independent), but runs packed mini-batches
    /// through the backbone so the matmul kernels see pool-sized work.
    pub fn predict_proba_batch(&self, seqs: &[&[u32]]) -> Vec<f32> {
        let mut out = Vec::with_capacity(seqs.len());
        for chunk in seqs.chunks(Self::INFER_BATCH) {
            let clamped: Vec<Vec<u32>> = chunk
                .iter()
                .map(|ids| {
                    let mut ids = ids.to_vec();
                    self.clamp(&mut ids);
                    ids
                })
                .collect();
            let refs: Vec<&[u32]> = clamped.iter().map(Vec::as_slice).collect();
            let (hidden, segments) = self.backbone.forward_batch(&refs, false);
            let cls = hidden.select_rows(&segments[..chunk.len()]);
            let logits = cls.matmul(&self.cls_w).add_row(&self.cls_b);
            let l = logits.data();
            for r in 0..chunk.len() {
                let (a, b) = (l.get(r, 0), l.get(r, 1));
                let m = a.max(b);
                let ea = (a - m).exp();
                let eb = (b - m).exp();
                out.push(eb / (ea + eb));
            }
        }
        out
    }

    /// Hard predictions at 0.5 for many sequences at once.
    pub fn predict_batch(&self, seqs: &[&[u32]]) -> Vec<bool> {
        self.predict_proba_batch(seqs).into_iter().map(|p| p >= 0.5).collect()
    }

    /// Contextual embedding of a sequence: the sum of the `[CLS]` position
    /// over the last (up to) four hidden states (§2.3).
    pub fn encode(&self, ids: &[u32]) -> Vec<f32> {
        self.encode_batch(&[ids]).pop().expect("one sequence in, one vector out")
    }

    /// Contextual embeddings for many sequences at once (bitwise equal to
    /// mapping [`MiniBert::encode`], chunked like the other batch paths).
    pub fn encode_batch(&self, seqs: &[&[u32]]) -> Vec<Vec<f32>> {
        let d = self.cfg.arch.d_model;
        let mut out = Vec::with_capacity(seqs.len());
        for chunk in seqs.chunks(Self::INFER_BATCH) {
            let clamped: Vec<Vec<u32>> = chunk
                .iter()
                .map(|ids| {
                    let mut ids = ids.to_vec();
                    self.clamp(&mut ids);
                    ids
                })
                .collect();
            let refs: Vec<&[u32]> = clamped.iter().map(Vec::as_slice).collect();
            let (states, segments) = self.backbone.forward_batch_all(&refs, false);
            let take = states.len().min(4);
            for (si, _) in chunk.iter().enumerate() {
                let mut v = vec![0.0f32; d];
                for s in &states[states.len() - take..] {
                    let data = s.data();
                    for (o, &x) in v.iter_mut().zip(data.row(segments[si])) {
                        *o += x;
                    }
                }
                out.push(v);
            }
        }
        out
    }

    /// Mean classification cross-entropy over a labelled set.
    pub fn eval_loss(&self, examples: &[(Vec<u32>, bool)]) -> f32 {
        let refs: Vec<&[u32]> = examples.iter().map(|(ids, _)| ids.as_slice()).collect();
        let probs = self.predict_proba_batch(&refs);
        let mut total = 0.0f64;
        for (p, (_, label)) in probs.iter().zip(examples) {
            let p = p.clamp(1e-6, 1.0 - 1e-6);
            total -= if *label { f64::from(p.ln()) } else { f64::from((1.0 - p).ln()) };
        }
        (total / examples.len() as f64) as f32
    }

    fn all_params(&self) -> Vec<Tensor> {
        let mut p = self.backbone.params();
        p.extend([self.mlm_w.clone(), self.mlm_b.clone(), self.cls_w.clone(), self.cls_b.clone()]);
        p
    }

    /// Copies all weights out (pair with [`MiniBert::restore`] to fine-tune
    /// repeatedly from one pre-trained checkpoint).
    pub fn snapshot(&self) -> Vec<Matrix> {
        self.all_params().iter().map(|p| p.data().clone()).collect()
    }

    /// Restores weights captured by [`MiniBert::snapshot`].
    pub fn restore(&self, weights: &[Matrix]) {
        let params = self.all_params();
        assert_eq!(params.len(), weights.len(), "snapshot arity mismatch");
        for (p, w) in params.iter().zip(weights) {
            p.set_data(w.clone());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> MiniBertConfig {
        MiniBertConfig {
            arch: TransformerConfig {
                vocab_size: 32,
                d_model: 16,
                n_heads: 2,
                n_layers: 2,
                d_ff: 32,
                max_len: 12,
                seed: 7,
            },
            mask_prob: 0.2,
        }
    }

    /// A trivial "language": token 2k is always followed by 2k+1.
    fn paired_corpus(n: usize, seed: u64) -> Vec<Vec<u32>> {
        let mut rng = Rng::seed(seed);
        (0..n)
            .map(|_| {
                let mut seq = vec![special::CLS];
                for _ in 0..4 {
                    let k = 5 + 2 * rng.below(12) as u32;
                    seq.push(k);
                    seq.push(k + 1);
                }
                seq
            })
            .collect()
    }

    #[test]
    fn mlm_loss_decreases() {
        let bert = MiniBert::new(tiny());
        let corpus = paired_corpus(120, 1);
        let tc = TrainConfig { epochs: 12, lr: 5e-3, batch_size: 16, seed: 1 };
        let losses = bert.pretrain_mlm(&corpus, &tc);
        // The paired language is fully predictable from the neighbour
        // token, so the loss must fall well below the near-uniform start.
        assert!(
            losses.last().unwrap() < &(losses[0] * 0.7),
            "MLM loss should drop: {losses:?}"
        );
    }

    #[test]
    fn fine_tune_learns_token_presence() {
        // Label = sequence contains token 9.
        let mut rng = Rng::seed(2);
        let make = |rng: &mut Rng, positive: bool| -> (Vec<u32>, bool) {
            let mut ids = vec![special::CLS];
            for _ in 0..6 {
                let mut t = 10 + rng.below(20) as u32;
                if t == 9 {
                    t = 10;
                }
                ids.push(t);
            }
            if positive {
                let pos = 1 + rng.below(6);
                ids[pos] = 9;
            }
            (ids, positive)
        };
        let train: Vec<(Vec<u32>, bool)> = (0..160).map(|i| make(&mut rng, i % 2 == 0)).collect();
        let test: Vec<(Vec<u32>, bool)> = (0..60).map(|i| make(&mut rng, i % 2 == 0)).collect();
        let bert = MiniBert::new(tiny());
        let tc = TrainConfig { epochs: 6, lr: 3e-3, batch_size: 16, seed: 3 };
        bert.fine_tune(&train, &tc);
        let acc = test.iter().filter(|(ids, y)| bert.predict(ids) == *y).count() as f64
            / test.len() as f64;
        assert!(acc > 0.85, "fine-tuned accuracy {acc}");
    }

    #[test]
    fn encode_is_deterministic_and_context_sensitive() {
        let bert = MiniBert::new(tiny());
        let a = bert.encode(&[special::CLS, 10, 11]);
        let b = bert.encode(&[special::CLS, 10, 11]);
        assert_eq!(a, b);
        assert_eq!(a.len(), 16);
        let c = bert.encode(&[special::CLS, 10, 12]);
        assert_ne!(a, c, "CLS embedding must reflect context");
    }

    #[test]
    fn clamp_truncates() {
        let bert = MiniBert::new(tiny());
        let mut ids: Vec<u32> = (0..40).collect();
        bert.clamp(&mut ids);
        assert_eq!(ids.len(), 12);
    }

    #[test]
    fn predict_proba_in_unit_interval() {
        let bert = MiniBert::new(tiny());
        let p = bert.predict_proba(&[special::CLS, 8, 9, 10]);
        assert!((0.0..=1.0).contains(&p));
    }
}
