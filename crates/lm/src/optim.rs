//! Adam optimiser over [`Tensor`] parameter lists.

use crate::tensor::Tensor;
use kcb_ml::linalg::Matrix;

/// Adam with bias correction; state is kept per parameter tensor.
pub struct Adam {
    params: Vec<Tensor>,
    m: Vec<Matrix>,
    v: Vec<Matrix>,
    t: i32,
    /// Learning rate (mutable so schedules can adjust it between steps).
    pub lr: f32,
    last_grad_norm: f32,
}

impl Adam {
    /// Creates an optimiser over the given parameters.
    pub fn new(params: Vec<Tensor>, lr: f32) -> Self {
        let m = params.iter().map(|p| { let (r, c) = p.shape(); Matrix::zeros(r, c) }).collect();
        let v = params.iter().map(|p| { let (r, c) = p.shape(); Matrix::zeros(r, c) }).collect();
        Self { params, m, v, t: 0, lr, last_grad_norm: 0.0 }
    }

    /// Zeroes every parameter gradient (call before each batch).
    pub fn zero_grad(&self) {
        for p in &self.params {
            p.zero_grad();
        }
    }

    /// Applies one Adam update from the accumulated gradients.
    pub fn step(&mut self) {
        const B1: f32 = 0.9;
        const B2: f32 = 0.999;
        const EPS: f32 = 1e-8;
        self.t += 1;
        let bc1 = 1.0 - B1.powi(self.t);
        let bc2 = 1.0 - B2.powi(self.t);
        let lr = self.lr;
        let mut grad_sq = 0.0f64;
        for (i, p) in self.params.iter().enumerate() {
            let g = p.grad().clone();
            grad_sq += g.as_slice().iter().map(|&x| (x as f64) * (x as f64)).sum::<f64>();
            let m = &mut self.m[i];
            let v = &mut self.v[i];
            p.update_data(|data| {
                for r in 0..data.rows() {
                    let gr = g.row(r);
                    {
                        let mr = m.row_mut(r);
                        for c in 0..gr.len() {
                            mr[c] = B1 * mr[c] + (1.0 - B1) * gr[c];
                        }
                    }
                    {
                        let vr = v.row_mut(r);
                        for c in 0..gr.len() {
                            vr[c] = B2 * vr[c] + (1.0 - B2) * gr[c] * gr[c];
                        }
                    }
                    let dr = data.row_mut(r);
                    let mr = m.row(r);
                    let vr = v.row(r);
                    for c in 0..gr.len() {
                        let mhat = mr[c] / bc1;
                        let vhat = vr[c] / bc2;
                        dr[c] -= lr * mhat / (vhat.sqrt() + EPS);
                    }
                }
            });
        }
        self.last_grad_norm = grad_sq.sqrt() as f32;
    }

    /// L2 norm of the full gradient consumed by the most recent
    /// [`Adam::step`] (0 before the first step). Telemetry only — the
    /// update itself never reads it.
    pub fn last_grad_norm(&self) -> f32 {
        self.last_grad_norm
    }

    /// Number of scalar parameters across all tensors.
    pub fn n_scalar_params(&self) -> usize {
        self.params.iter().map(|p| { let (r, c) = p.shape(); r * c }).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adam_minimises_quadratic() {
        // Minimise ||x - target||²: d = x + (-target); loss = d dᵀ.
        let x = Tensor::leaf(Matrix::from_vec(vec![5.0, -3.0], 1, 2));
        let target = [1.0f32, 2.0];
        let mut opt = Adam::new(vec![x.clone()], 0.1);
        for _ in 0..300 {
            opt.zero_grad();
            let t = Tensor::leaf(Matrix::from_vec(vec![-target[0], -target[1]], 1, 2));
            let d = x.add(&t);
            let sq = d.matmul_t(&d);
            sq.backward();
            opt.step();
        }
        let final_x = x.data().clone();
        assert!((final_x.get(0, 0) - 1.0).abs() < 0.05, "{final_x:?}");
        assert!((final_x.get(0, 1) - 2.0).abs() < 0.05, "{final_x:?}");
    }

    #[test]
    fn zero_grad_clears() {
        let x = Tensor::leaf(Matrix::from_vec(vec![1.0], 1, 1));
        let opt = Adam::new(vec![x.clone()], 0.1);
        let y = x.scale(3.0);
        y.backward();
        assert_eq!(x.grad().get(0, 0), 3.0);
        opt.zero_grad();
        assert_eq!(x.grad().get(0, 0), 0.0);
    }

    #[test]
    fn counts_params() {
        let a = Tensor::leaf(Matrix::zeros(2, 3));
        let b = Tensor::leaf(Matrix::zeros(1, 4));
        let opt = Adam::new(vec![a, b], 0.1);
        assert_eq!(opt.n_scalar_params(), 10);
    }
}
