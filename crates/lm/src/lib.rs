//! Mini transformer language models.
//!
//! From-scratch BERT-style encoder and GPT-style decoder used as the
//! PubmedBERT and BioGPT stand-ins (see DESIGN.md): real multi-head
//! attention, pre-LayerNorm blocks, GELU feed-forward, learned positions,
//! masked-LM / causal-LM pre-training, classification fine-tuning and
//! contextual [CLS] embeddings — at laptop scale (a few layers, d ≈ 64).
//!
//! The numerical core is [`tensor`], a small reverse-mode autograd over the
//! dense matrices from `kcb-ml`. Models are deterministic functions of
//! their configs and seeds.

pub mod ckpt;
pub mod decoder;
pub mod encoder;
pub mod optim;
pub mod schedule;
pub mod tensor;
pub mod transformer;

/// Thread-pool policy now lives in `kcb-util` so the cell scheduler and the
/// forest can share it; re-exported here so `kcb_lm::pool::*` paths keep
/// working.
pub use kcb_util::pool;

pub use decoder::{MiniGpt, MiniGptConfig};
pub use encoder::{MiniBert, MiniBertConfig};
pub use transformer::{TrainConfig, TransformerConfig};
