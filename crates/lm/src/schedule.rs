//! Learning-rate schedules: linear warmup followed by linear decay — the
//! standard transformer pre-training schedule, applied by setting
//! [`crate::optim::Adam::lr`] before each step.

/// Linear warmup to `peak_lr` over `warmup_steps`, then linear decay to
/// `floor` at `total_steps`. Steps beyond `total_steps` stay at `floor`.
#[derive(Debug, Clone, Copy)]
pub struct WarmupLinear {
    /// Peak learning rate reached at the end of warmup.
    pub peak_lr: f32,
    /// Steps spent warming up (0 = start at peak).
    pub warmup_steps: usize,
    /// Total schedule length.
    pub total_steps: usize,
    /// Terminal learning rate.
    pub floor: f32,
}

impl WarmupLinear {
    /// A schedule with 10 % warmup and a floor of 1 % of peak.
    pub fn standard(peak_lr: f32, total_steps: usize) -> Self {
        Self {
            peak_lr,
            warmup_steps: total_steps / 10,
            total_steps: total_steps.max(1),
            floor: peak_lr * 0.01,
        }
    }

    /// Learning rate at a (0-based) step.
    pub fn lr_at(&self, step: usize) -> f32 {
        if self.warmup_steps > 0 && step < self.warmup_steps {
            return self.peak_lr * (step + 1) as f32 / self.warmup_steps as f32;
        }
        if step >= self.total_steps {
            return self.floor;
        }
        let decay_span = (self.total_steps - self.warmup_steps).max(1) as f32;
        let progress = (step - self.warmup_steps) as f32 / decay_span;
        (self.peak_lr + (self.floor - self.peak_lr) * progress).max(self.floor)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn warms_up_peaks_and_decays() {
        let s = WarmupLinear { peak_lr: 1.0, warmup_steps: 10, total_steps: 110, floor: 0.01 };
        assert!(s.lr_at(0) < s.lr_at(5));
        assert!((s.lr_at(9) - 1.0).abs() < 1e-6, "end of warmup hits peak");
        assert!(s.lr_at(10) > s.lr_at(60));
        assert!(s.lr_at(60) > s.lr_at(109));
        assert_eq!(s.lr_at(109).max(0.01), s.lr_at(109));
        assert_eq!(s.lr_at(10_000), 0.01, "clamped at the floor");
    }

    #[test]
    fn zero_warmup_starts_at_peak() {
        let s = WarmupLinear { peak_lr: 0.5, warmup_steps: 0, total_steps: 100, floor: 0.0 };
        assert!((s.lr_at(0) - 0.5).abs() < 1e-6);
    }

    #[test]
    fn standard_constructor_proportions() {
        let s = WarmupLinear::standard(2e-3, 1_000);
        assert_eq!(s.warmup_steps, 100);
        assert!((s.floor - 2e-5).abs() < 1e-9);
        // Monotone nonincreasing after warmup.
        let mut last = f32::MAX;
        for step in (100..1_000).step_by(50) {
            let lr = s.lr_at(step);
            assert!(lr <= last);
            last = lr;
        }
    }
}
