//! Shared transformer backbone: embeddings, pre-LN blocks with multi-head
//! attention and GELU feed-forward. Used by both [`crate::MiniBert`]
//! (bidirectional) and [`crate::MiniGpt`] (causal).

use crate::tensor::Tensor;
use kcb_ml::linalg::Matrix;
use kcb_util::Rng;

/// Architecture hyperparameters.
#[derive(Debug, Clone, Copy)]
pub struct TransformerConfig {
    /// WordPiece vocabulary size.
    pub vocab_size: usize,
    /// Model width.
    pub d_model: usize,
    /// Attention heads (must divide `d_model`).
    pub n_heads: usize,
    /// Transformer blocks.
    pub n_layers: usize,
    /// Feed-forward inner width.
    pub d_ff: usize,
    /// Maximum sequence length (learned positions).
    pub max_len: usize,
    /// Init seed.
    pub seed: u64,
}

impl Default for TransformerConfig {
    fn default() -> Self {
        Self { vocab_size: 4_096, d_model: 64, n_heads: 4, n_layers: 2, d_ff: 128, max_len: 64, seed: 42 }
    }
}

impl TransformerConfig {
    /// Validates invariants.
    pub fn validate(&self) -> kcb_util::Result<()> {
        if !self.d_model.is_multiple_of(self.n_heads) {
            return Err(kcb_util::Error::Config(format!(
                "n_heads {} must divide d_model {}",
                self.n_heads, self.d_model
            )));
        }
        if self.vocab_size == 0 || self.max_len == 0 || self.n_layers == 0 {
            return Err(kcb_util::Error::Config("zero-sized transformer dimension".into()));
        }
        Ok(())
    }
}

/// Optimisation hyperparameters shared by pre-training and fine-tuning.
#[derive(Debug, Clone, Copy)]
pub struct TrainConfig {
    /// Passes over the training set.
    pub epochs: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// Sequences per optimiser step.
    pub batch_size: usize,
    /// Shuffling seed.
    pub seed: u64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        Self { epochs: 2, lr: 1e-3, batch_size: 16, seed: 42 }
    }
}

pub(crate) fn xavier(rows: usize, cols: usize, rng: &mut Rng) -> Matrix {
    let scale = (6.0 / (rows + cols) as f32).sqrt();
    Matrix::from_vec((0..rows * cols).map(|_| rng.f32_range(-scale, scale)).collect(), rows, cols)
}

/// Column-concatenates per-head `(d, hd)` matrices into one `(d, H·hd)`.
fn hstack(mats: &[Matrix]) -> Matrix {
    let rows = mats[0].rows();
    Matrix::from_rows((0..rows).map(|r| {
        let mut row = Vec::new();
        for m in mats {
            row.extend_from_slice(m.row(r));
        }
        row
    }))
}

/// Row-concatenates per-head `(hd, d)` matrices into one `(H·hd, d)`.
fn vstack(mats: &[Matrix]) -> Matrix {
    Matrix::from_rows(mats.iter().flat_map(|m| (0..m.rows()).map(|r| m.row(r).to_vec())))
}

/// A pre-LN transformer block.
///
/// The per-head Q/K/V/O projections are stored *fused*: `wq`/`wk`/`wv` are
/// `(d, d)` with head `h` owning columns `h·hd..(h+1)·hd`, and `wo` is
/// `(d, d)` with head `h` owning the matching rows. One wide matmul per
/// projection then computes all heads at once — mathematically identical to
/// per-head `(d, hd)` matmuls (block-column structure) and to summing
/// per-head `o_h @ wo_h` outputs (block-row structure), but ~4× wider
/// kernels, which is what the serial axpy inner loops need to hit good
/// throughput at mini-model widths.
pub struct Block {
    wq: Tensor,
    wk: Tensor,
    wv: Tensor,
    wo: Tensor,
    ln1_g: Tensor,
    ln1_b: Tensor,
    ln2_g: Tensor,
    ln2_b: Tensor,
    w1: Tensor,
    b1: Tensor,
    w2: Tensor,
    b2: Tensor,
    n_heads: usize,
    head_scale: f32,
}

impl Block {
    fn new(cfg: &TransformerConfig, rng: &mut Rng) -> Self {
        let d = cfg.d_model;
        let hd = d / cfg.n_heads;
        // Draw per-head matrices in the historical order (q, k, v, o per
        // head) so the init stream — and thus every per-head weight value —
        // matches the unfused layout, then pack them.
        let per_head: Vec<[Matrix; 4]> = (0..cfg.n_heads)
            .map(|_| {
                [
                    xavier(d, hd, rng),
                    xavier(d, hd, rng),
                    xavier(d, hd, rng),
                    xavier(hd, d, rng),
                ]
            })
            .collect();
        let pick = |i: usize| per_head.iter().map(|h| h[i].clone()).collect::<Vec<_>>();
        Self {
            wq: Tensor::leaf(hstack(&pick(0))),
            wk: Tensor::leaf(hstack(&pick(1))),
            wv: Tensor::leaf(hstack(&pick(2))),
            wo: Tensor::leaf(vstack(&pick(3))),
            n_heads: cfg.n_heads,
            ln1_g: Tensor::leaf(Matrix::from_vec(vec![1.0; d], 1, d)),
            ln1_b: Tensor::leaf(Matrix::zeros(1, d)),
            ln2_g: Tensor::leaf(Matrix::from_vec(vec![1.0; d], 1, d)),
            ln2_b: Tensor::leaf(Matrix::zeros(1, d)),
            w1: Tensor::leaf(xavier(d, cfg.d_ff, rng)),
            b1: Tensor::leaf(Matrix::zeros(1, cfg.d_ff)),
            w2: Tensor::leaf(xavier(cfg.d_ff, d, rng)),
            b2: Tensor::leaf(Matrix::zeros(1, d)),
            head_scale: 1.0 / (hd as f32).sqrt(),
        }
    }

    /// Applies the block to a single-sequence `(T, d)` activation.
    pub fn forward(&self, x: &Tensor, causal: bool) -> Tensor {
        let rows = x.shape().0;
        self.forward_packed(x, &[0, rows], causal)
    }

    /// Applies the block to a packed batch: `x` stacks the sequences
    /// row-wise and `segments` delimits them (see [`Tensor::attention`]).
    /// Everything except attention is row-local, so only the attention
    /// sub-layer needs the segment structure.
    pub fn forward_packed(&self, x: &Tensor, segments: &[usize], causal: bool) -> Tensor {
        // Attention sub-layer: three wide fused-head projections, one
        // multi-head attention op, one output projection.
        let normed = x.layer_norm(&self.ln1_g, &self.ln1_b);
        let q = normed.matmul(&self.wq);
        let k = normed.matmul(&self.wk);
        let v = normed.matmul(&self.wv);
        let ctx = q.attention(&k, &v, segments, self.n_heads, causal, self.head_scale);
        let h1 = x.add(&ctx.matmul(&self.wo));
        // Feed-forward sub-layer.
        let normed2 = h1.layer_norm(&self.ln2_g, &self.ln2_b);
        let ff = normed2.matmul(&self.w1).add_row(&self.b1).gelu().matmul(&self.w2).add_row(&self.b2);
        h1.add(&ff)
    }

    fn params(&self, out: &mut Vec<Tensor>) {
        out.extend([self.wq.clone(), self.wk.clone(), self.wv.clone(), self.wo.clone()]);
        out.extend([
            self.ln1_g.clone(),
            self.ln1_b.clone(),
            self.ln2_g.clone(),
            self.ln2_b.clone(),
            self.w1.clone(),
            self.b1.clone(),
            self.w2.clone(),
            self.b2.clone(),
        ]);
    }
}

/// Embeddings + block stack + final LayerNorm.
pub struct Backbone {
    /// Token embedding table `(V, d)`.
    pub tok_emb: Tensor,
    /// Learned positional embeddings `(max_len, d)`.
    pub pos_emb: Tensor,
    blocks: Vec<Block>,
    ln_f_g: Tensor,
    ln_f_b: Tensor,
    cfg: TransformerConfig,
}

impl Backbone {
    /// Initialises the backbone.
    pub fn new(cfg: TransformerConfig, rng: &mut Rng) -> Self {
        cfg.validate().expect("invalid transformer config");
        let d = cfg.d_model;
        let blocks = (0..cfg.n_layers).map(|_| Block::new(&cfg, rng)).collect();
        Self {
            tok_emb: Tensor::leaf(xavier(cfg.vocab_size, d, rng)),
            pos_emb: Tensor::leaf(xavier(cfg.max_len, d, rng)),
            blocks,
            ln_f_g: Tensor::leaf(Matrix::from_vec(vec![1.0; d], 1, d)),
            ln_f_b: Tensor::leaf(Matrix::zeros(1, d)),
            cfg,
        }
    }

    /// The architecture config.
    pub fn config(&self) -> &TransformerConfig {
        &self.cfg
    }

    /// Runs the stack, returning every hidden state: `[h_0 (embeddings),
    /// h_1, …, h_L (final-normed)]`. Sequences longer than `max_len` must
    /// be truncated by the caller.
    pub fn forward_all(&self, ids: &[u32], causal: bool) -> Vec<Tensor> {
        assert!(!ids.is_empty(), "empty input sequence");
        assert!(ids.len() <= self.cfg.max_len, "sequence exceeds max_len");
        let positions: Vec<u32> = (0..ids.len() as u32).collect();
        self.forward_packed_all(ids, &positions, &[0, ids.len()], causal)
    }

    /// Runs the stack and returns the final `(T, d)` hidden state.
    pub fn forward(&self, ids: &[u32], causal: bool) -> Tensor {
        self.forward_all(ids, causal).pop().expect("non-empty states")
    }

    /// Runs the stack over a packed mini-batch, returning every hidden
    /// state of the `(Σ tᵢ, d)` packed activation plus the segment offsets
    /// `[0, t₁, t₁+t₂, …]` locating each sequence's rows.
    ///
    /// Positions restart at 0 per sequence and attention is block-diagonal
    /// ([`Tensor::attention`]), so each sequence's rows are exactly what
    /// [`Backbone::forward_all`] would produce for it alone — batching
    /// amortises the per-op tape overhead and feeds the parallel matmul
    /// kernels matrices big enough to split across the worker pool.
    pub fn forward_batch_all(&self, seqs: &[&[u32]], causal: bool) -> (Vec<Tensor>, Vec<usize>) {
        assert!(!seqs.is_empty(), "empty batch");
        let total: usize = seqs.iter().map(|s| s.len()).sum();
        let mut ids = Vec::with_capacity(total);
        let mut positions = Vec::with_capacity(total);
        let mut segments = Vec::with_capacity(seqs.len() + 1);
        segments.push(0);
        for s in seqs {
            assert!(!s.is_empty(), "empty input sequence");
            assert!(s.len() <= self.cfg.max_len, "sequence exceeds max_len");
            ids.extend_from_slice(s);
            positions.extend(0..s.len() as u32);
            segments.push(ids.len());
        }
        (self.forward_packed_all(&ids, &positions, &segments, causal), segments)
    }

    /// Like [`Backbone::forward_batch_all`] but returns only the final
    /// hidden state.
    pub fn forward_batch(&self, seqs: &[&[u32]], causal: bool) -> (Tensor, Vec<usize>) {
        let (mut states, segments) = self.forward_batch_all(seqs, causal);
        (states.pop().expect("non-empty states"), segments)
    }

    fn forward_packed_all(
        &self,
        ids: &[u32],
        positions: &[u32],
        segments: &[usize],
        causal: bool,
    ) -> Vec<Tensor> {
        let mut states = Vec::with_capacity(self.cfg.n_layers + 2);
        let mut x = self.tok_emb.gather(ids).add(&self.pos_emb.gather(positions));
        states.push(x.clone());
        for b in &self.blocks {
            x = b.forward_packed(&x, segments, causal);
            states.push(x.clone());
        }
        let last = x.layer_norm(&self.ln_f_g, &self.ln_f_b);
        let i = states.len() - 1;
        states[i] = last;
        states
    }

    /// All trainable parameters.
    pub fn params(&self) -> Vec<Tensor> {
        let mut out = vec![self.tok_emb.clone(), self.pos_emb.clone()];
        for b in &self.blocks {
            b.params(&mut out);
        }
        out.push(self.ln_f_g.clone());
        out.push(self.ln_f_b.clone());
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cfg() -> TransformerConfig {
        TransformerConfig {
            vocab_size: 20,
            d_model: 8,
            n_heads: 2,
            n_layers: 2,
            d_ff: 16,
            max_len: 10,
            seed: 1,
        }
    }

    #[test]
    fn config_validation() {
        assert!(tiny_cfg().validate().is_ok());
        let bad = TransformerConfig { n_heads: 3, ..tiny_cfg() };
        assert!(bad.validate().is_err());
    }

    #[test]
    fn forward_shapes() {
        let mut rng = Rng::seed(1);
        let bb = Backbone::new(tiny_cfg(), &mut rng);
        let out = bb.forward(&[1, 2, 3, 4], false);
        assert_eq!(out.shape(), (4, 8));
        let states = bb.forward_all(&[1, 2, 3], true);
        assert_eq!(states.len(), 3); // embeddings + 2 blocks (last normed)
    }

    #[test]
    fn causal_prefix_invariance() {
        // With a causal mask, position t's activation must not depend on
        // tokens after t.
        let mut rng = Rng::seed(2);
        let bb = Backbone::new(tiny_cfg(), &mut rng);
        let full = bb.forward(&[5, 6, 7, 8], true);
        let prefix = bb.forward(&[5, 6], true);
        for c in 0..8 {
            assert!(
                (full.data().get(1, c) - prefix.data().get(1, c)).abs() < 1e-5,
                "causal leak at col {c}"
            );
        }
    }

    #[test]
    fn bidirectional_context_sensitivity() {
        // Without the mask, early positions DO see later tokens.
        let mut rng = Rng::seed(3);
        let bb = Backbone::new(tiny_cfg(), &mut rng);
        let a = bb.forward(&[5, 6, 7], false);
        let b = bb.forward(&[5, 6, 9], false);
        let diff: f32 =
            (0..8).map(|c| (a.data().get(0, c) - b.data().get(0, c)).abs()).sum();
        assert!(diff > 1e-4, "position 0 ignored later context");
    }

    #[test]
    fn params_are_complete_and_trainable() {
        let mut rng = Rng::seed(4);
        let bb = Backbone::new(tiny_cfg(), &mut rng);
        let params = bb.params();
        // 2 emb + 2 blocks × (4 fused attn + 8) + 2 final LN = 2+2*12+2 = 28.
        assert_eq!(params.len(), 28);
        // Gradient flows to every parameter.
        let out = bb.forward(&[1, 2, 3], false);
        let loss = out.cross_entropy(&[0, 0, 0]); // logits misuse is fine for shape
        loss.backward();
        let with_grad = params
            .iter()
            .filter(|p| p.grad().as_slice().iter().any(|&g| g != 0.0))
            .count();
        // Everything except maybe the unused-position rows should get grad;
        // count tensors with any nonzero grad.
        assert!(with_grad > 24, "only {with_grad}/28 params received gradient");
    }

    #[test]
    fn batched_forward_matches_single_sequences_exactly() {
        // Block-diagonal attention + row-local ops: every packed row must be
        // bitwise equal to the unbatched forward of its own sequence.
        let mut rng = Rng::seed(6);
        let bb = Backbone::new(tiny_cfg(), &mut rng);
        let seqs: [&[u32]; 3] = [&[1, 2, 3, 4], &[9, 8], &[5, 6, 7, 8, 9, 10]];
        for causal in [false, true] {
            let (batched, segments) = bb.forward_batch(&seqs, causal);
            assert_eq!(segments, vec![0, 4, 6, 12]);
            for (si, seq) in seqs.iter().enumerate() {
                let single = bb.forward(seq, causal);
                for r in 0..seq.len() {
                    assert_eq!(
                        batched.data().row(segments[si] + r),
                        single.data().row(r),
                        "seq {si} row {r} causal={causal}"
                    );
                }
            }
        }
    }

    #[test]
    fn batched_forward_all_exposes_every_layer() {
        let mut rng = Rng::seed(7);
        let bb = Backbone::new(tiny_cfg(), &mut rng);
        let seqs: [&[u32]; 2] = [&[1, 2], &[3, 4, 5]];
        let (states, segments) = bb.forward_batch_all(&seqs, false);
        assert_eq!(states.len(), 3); // embeddings + 2 blocks (last normed)
        assert_eq!(segments, vec![0, 2, 5]);
        assert_eq!(states[0].shape(), (5, 8));
    }

    #[test]
    #[should_panic(expected = "exceeds max_len")]
    fn rejects_overlong_sequences() {
        let mut rng = Rng::seed(5);
        let bb = Backbone::new(tiny_cfg(), &mut rng);
        let _ = bb.forward(&[0; 11], false);
    }
}
