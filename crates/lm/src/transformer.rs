//! Shared transformer backbone: embeddings, pre-LN blocks with multi-head
//! attention and GELU feed-forward. Used by both [`crate::MiniBert`]
//! (bidirectional) and [`crate::MiniGpt`] (causal).

use crate::tensor::Tensor;
use kcb_ml::linalg::Matrix;
use kcb_util::Rng;

/// Architecture hyperparameters.
#[derive(Debug, Clone, Copy)]
pub struct TransformerConfig {
    /// WordPiece vocabulary size.
    pub vocab_size: usize,
    /// Model width.
    pub d_model: usize,
    /// Attention heads (must divide `d_model`).
    pub n_heads: usize,
    /// Transformer blocks.
    pub n_layers: usize,
    /// Feed-forward inner width.
    pub d_ff: usize,
    /// Maximum sequence length (learned positions).
    pub max_len: usize,
    /// Init seed.
    pub seed: u64,
}

impl Default for TransformerConfig {
    fn default() -> Self {
        Self { vocab_size: 4_096, d_model: 64, n_heads: 4, n_layers: 2, d_ff: 128, max_len: 64, seed: 42 }
    }
}

impl TransformerConfig {
    /// Validates invariants.
    pub fn validate(&self) -> kcb_util::Result<()> {
        if !self.d_model.is_multiple_of(self.n_heads) {
            return Err(kcb_util::Error::Config(format!(
                "n_heads {} must divide d_model {}",
                self.n_heads, self.d_model
            )));
        }
        if self.vocab_size == 0 || self.max_len == 0 || self.n_layers == 0 {
            return Err(kcb_util::Error::Config("zero-sized transformer dimension".into()));
        }
        Ok(())
    }
}

/// Optimisation hyperparameters shared by pre-training and fine-tuning.
#[derive(Debug, Clone, Copy)]
pub struct TrainConfig {
    /// Passes over the training set.
    pub epochs: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// Sequences per optimiser step.
    pub batch_size: usize,
    /// Shuffling seed.
    pub seed: u64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        Self { epochs: 2, lr: 1e-3, batch_size: 16, seed: 42 }
    }
}

pub(crate) fn xavier(rows: usize, cols: usize, rng: &mut Rng) -> Matrix {
    let scale = (6.0 / (rows + cols) as f32).sqrt();
    Matrix::from_vec((0..rows * cols).map(|_| rng.f32_range(-scale, scale)).collect(), rows, cols)
}

/// One attention head's projections.
struct Head {
    wq: Tensor,
    wk: Tensor,
    wv: Tensor,
    wo: Tensor,
}

/// A pre-LN transformer block.
pub struct Block {
    heads: Vec<Head>,
    ln1_g: Tensor,
    ln1_b: Tensor,
    ln2_g: Tensor,
    ln2_b: Tensor,
    w1: Tensor,
    b1: Tensor,
    w2: Tensor,
    b2: Tensor,
    head_scale: f32,
}

impl Block {
    fn new(cfg: &TransformerConfig, rng: &mut Rng) -> Self {
        let d = cfg.d_model;
        let hd = d / cfg.n_heads;
        let heads = (0..cfg.n_heads)
            .map(|_| Head {
                wq: Tensor::leaf(xavier(d, hd, rng)),
                wk: Tensor::leaf(xavier(d, hd, rng)),
                wv: Tensor::leaf(xavier(d, hd, rng)),
                wo: Tensor::leaf(xavier(hd, d, rng)),
            })
            .collect();
        Self {
            heads,
            ln1_g: Tensor::leaf(Matrix::from_vec(vec![1.0; d], 1, d)),
            ln1_b: Tensor::leaf(Matrix::zeros(1, d)),
            ln2_g: Tensor::leaf(Matrix::from_vec(vec![1.0; d], 1, d)),
            ln2_b: Tensor::leaf(Matrix::zeros(1, d)),
            w1: Tensor::leaf(xavier(d, cfg.d_ff, rng)),
            b1: Tensor::leaf(Matrix::zeros(1, cfg.d_ff)),
            w2: Tensor::leaf(xavier(cfg.d_ff, d, rng)),
            b2: Tensor::leaf(Matrix::zeros(1, d)),
            head_scale: 1.0 / (hd as f32).sqrt(),
        }
    }

    /// Applies the block to a `(T, d)` activation.
    pub fn forward(&self, x: &Tensor, causal: bool) -> Tensor {
        // Attention sub-layer.
        let normed = x.layer_norm(&self.ln1_g, &self.ln1_b);
        let mut attn_out: Option<Tensor> = None;
        for h in &self.heads {
            let q = normed.matmul(&h.wq);
            let k = normed.matmul(&h.wk);
            let v = normed.matmul(&h.wv);
            let scores = q.matmul_t(&k).scale(self.head_scale);
            let p = scores.softmax_rows(causal);
            let o = p.matmul(&v).matmul(&h.wo);
            attn_out = Some(match attn_out {
                Some(acc) => acc.add(&o),
                None => o,
            });
        }
        let h1 = x.add(&attn_out.expect("at least one head"));
        // Feed-forward sub-layer.
        let normed2 = h1.layer_norm(&self.ln2_g, &self.ln2_b);
        let ff = normed2.matmul(&self.w1).add_row(&self.b1).gelu().matmul(&self.w2).add_row(&self.b2);
        h1.add(&ff)
    }

    fn params(&self, out: &mut Vec<Tensor>) {
        for h in &self.heads {
            out.extend([h.wq.clone(), h.wk.clone(), h.wv.clone(), h.wo.clone()]);
        }
        out.extend([
            self.ln1_g.clone(),
            self.ln1_b.clone(),
            self.ln2_g.clone(),
            self.ln2_b.clone(),
            self.w1.clone(),
            self.b1.clone(),
            self.w2.clone(),
            self.b2.clone(),
        ]);
    }
}

/// Embeddings + block stack + final LayerNorm.
pub struct Backbone {
    /// Token embedding table `(V, d)`.
    pub tok_emb: Tensor,
    /// Learned positional embeddings `(max_len, d)`.
    pub pos_emb: Tensor,
    blocks: Vec<Block>,
    ln_f_g: Tensor,
    ln_f_b: Tensor,
    cfg: TransformerConfig,
}

impl Backbone {
    /// Initialises the backbone.
    pub fn new(cfg: TransformerConfig, rng: &mut Rng) -> Self {
        cfg.validate().expect("invalid transformer config");
        let d = cfg.d_model;
        let blocks = (0..cfg.n_layers).map(|_| Block::new(&cfg, rng)).collect();
        Self {
            tok_emb: Tensor::leaf(xavier(cfg.vocab_size, d, rng)),
            pos_emb: Tensor::leaf(xavier(cfg.max_len, d, rng)),
            blocks,
            ln_f_g: Tensor::leaf(Matrix::from_vec(vec![1.0; d], 1, d)),
            ln_f_b: Tensor::leaf(Matrix::zeros(1, d)),
            cfg,
        }
    }

    /// The architecture config.
    pub fn config(&self) -> &TransformerConfig {
        &self.cfg
    }

    /// Runs the stack, returning every hidden state: `[h_0 (embeddings),
    /// h_1, …, h_L (final-normed)]`. Sequences longer than `max_len` must
    /// be truncated by the caller.
    pub fn forward_all(&self, ids: &[u32], causal: bool) -> Vec<Tensor> {
        assert!(!ids.is_empty(), "empty input sequence");
        assert!(ids.len() <= self.cfg.max_len, "sequence exceeds max_len");
        let positions: Vec<u32> = (0..ids.len() as u32).collect();
        let mut states = Vec::with_capacity(self.cfg.n_layers + 2);
        let mut x = self.tok_emb.gather(ids).add(&self.pos_emb.gather(&positions));
        states.push(x.clone());
        for b in &self.blocks {
            x = b.forward(&x, causal);
            states.push(x.clone());
        }
        let last = x.layer_norm(&self.ln_f_g, &self.ln_f_b);
        let i = states.len() - 1;
        states[i] = last;
        states
    }

    /// Runs the stack and returns the final `(T, d)` hidden state.
    pub fn forward(&self, ids: &[u32], causal: bool) -> Tensor {
        self.forward_all(ids, causal).pop().expect("non-empty states")
    }

    /// All trainable parameters.
    pub fn params(&self) -> Vec<Tensor> {
        let mut out = vec![self.tok_emb.clone(), self.pos_emb.clone()];
        for b in &self.blocks {
            b.params(&mut out);
        }
        out.push(self.ln_f_g.clone());
        out.push(self.ln_f_b.clone());
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cfg() -> TransformerConfig {
        TransformerConfig {
            vocab_size: 20,
            d_model: 8,
            n_heads: 2,
            n_layers: 2,
            d_ff: 16,
            max_len: 10,
            seed: 1,
        }
    }

    #[test]
    fn config_validation() {
        assert!(tiny_cfg().validate().is_ok());
        let bad = TransformerConfig { n_heads: 3, ..tiny_cfg() };
        assert!(bad.validate().is_err());
    }

    #[test]
    fn forward_shapes() {
        let mut rng = Rng::seed(1);
        let bb = Backbone::new(tiny_cfg(), &mut rng);
        let out = bb.forward(&[1, 2, 3, 4], false);
        assert_eq!(out.shape(), (4, 8));
        let states = bb.forward_all(&[1, 2, 3], true);
        assert_eq!(states.len(), 3); // embeddings + 2 blocks (last normed)
    }

    #[test]
    fn causal_prefix_invariance() {
        // With a causal mask, position t's activation must not depend on
        // tokens after t.
        let mut rng = Rng::seed(2);
        let bb = Backbone::new(tiny_cfg(), &mut rng);
        let full = bb.forward(&[5, 6, 7, 8], true);
        let prefix = bb.forward(&[5, 6], true);
        for c in 0..8 {
            assert!(
                (full.data().get(1, c) - prefix.data().get(1, c)).abs() < 1e-5,
                "causal leak at col {c}"
            );
        }
    }

    #[test]
    fn bidirectional_context_sensitivity() {
        // Without the mask, early positions DO see later tokens.
        let mut rng = Rng::seed(3);
        let bb = Backbone::new(tiny_cfg(), &mut rng);
        let a = bb.forward(&[5, 6, 7], false);
        let b = bb.forward(&[5, 6, 9], false);
        let diff: f32 =
            (0..8).map(|c| (a.data().get(0, c) - b.data().get(0, c)).abs()).sum();
        assert!(diff > 1e-4, "position 0 ignored later context");
    }

    #[test]
    fn params_are_complete_and_trainable() {
        let mut rng = Rng::seed(4);
        let bb = Backbone::new(tiny_cfg(), &mut rng);
        let params = bb.params();
        // 2 emb + 2 blocks × (2 heads × 4 + 8) + 2 final LN = 2+2*16+2 = 36.
        assert_eq!(params.len(), 36);
        // Gradient flows to every parameter.
        let out = bb.forward(&[1, 2, 3], false);
        let loss = out.cross_entropy(&[0, 0, 0]); // logits misuse is fine for shape
        loss.backward();
        let with_grad = params
            .iter()
            .filter(|p| p.grad().as_slice().iter().any(|&g| g != 0.0))
            .count();
        // Everything except maybe the unused-position rows should get grad;
        // count tensors with any nonzero grad.
        assert!(with_grad > 30, "only {with_grad}/36 params received gradient");
    }

    #[test]
    #[should_panic(expected = "exceeds max_len")]
    fn rejects_overlong_sequences() {
        let mut rng = Rng::seed(5);
        let bb = Backbone::new(tiny_cfg(), &mut rng);
        let _ = bb.forward(&[0; 11], false);
    }
}
