//! Minimal reverse-mode autograd over dense `f32` matrices.
//!
//! A micrograd-style tape: every [`Tensor`] wraps a value matrix, a
//! gradient matrix and a backward closure referencing its parents.
//! [`Tensor::backward`] topologically sorts the graph and runs the
//! closures. The op set is exactly what a pre-LN transformer needs:
//! matmul (plain and transposed-RHS), broadcast bias add, element add,
//! scalar scale, GELU, row softmax (with optional causal mask), row
//! LayerNorm, embedding gather, row selection and masked cross-entropy.
//!
//! Matrices are small (sequence × d_model at mini-BERT scale), so clarity
//! beats blocking tricks here; the hot kernels still run over flat slices.

use kcb_ml::linalg::Matrix;
use std::cell::{Ref, RefCell};
use std::rc::Rc;

/// Backward closure: distributes a node's gradient into its parents.
type BackwardFn = Box<dyn Fn(&Inner)>;

/// Node payload.
struct Inner {
    id: usize,
    data: RefCell<Matrix>,
    grad: RefCell<Matrix>,
    parents: Vec<Tensor>,
    /// Distributes `self.grad` into the parents' grads.
    backward: Option<BackwardFn>,
}

thread_local! {
    static NEXT_ID: RefCell<usize> = const { RefCell::new(0) };
}

fn next_id() -> usize {
    NEXT_ID.with(|c| {
        let mut c = c.borrow_mut();
        *c += 1;
        *c
    })
}

/// A reference-counted autograd tensor.
#[derive(Clone)]
pub struct Tensor {
    inner: Rc<Inner>,
}

impl std::fmt::Debug for Tensor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let d = self.inner.data.borrow();
        write!(f, "Tensor(id={}, {}x{})", self.inner.id, d.rows(), d.cols())
    }
}

impl Tensor {
    /// Creates a leaf tensor (parameter or input).
    pub fn leaf(data: Matrix) -> Self {
        let grad = Matrix::zeros(data.rows(), data.cols());
        Self {
            inner: Rc::new(Inner {
                id: next_id(),
                data: RefCell::new(data),
                grad: RefCell::new(grad),
                parents: Vec::new(),
                backward: None,
            }),
        }
    }

    fn from_op(data: Matrix, parents: Vec<Tensor>, backward: BackwardFn) -> Self {
        let grad = Matrix::zeros(data.rows(), data.cols());
        Self {
            inner: Rc::new(Inner {
                id: next_id(),
                data: RefCell::new(data),
                grad: RefCell::new(grad),
                parents,
                backward: Some(backward),
            }),
        }
    }

    /// Borrows the value.
    pub fn data(&self) -> Ref<'_, Matrix> {
        self.inner.data.borrow()
    }

    /// Borrows the gradient.
    pub fn grad(&self) -> Ref<'_, Matrix> {
        self.inner.grad.borrow()
    }

    /// Overwrites the value in place (used by the optimiser and to reuse
    /// parameter tensors across steps).
    pub fn set_data(&self, data: Matrix) {
        *self.inner.data.borrow_mut() = data;
    }

    /// Applies `f` to the value matrix in place.
    pub fn update_data(&self, f: impl FnOnce(&mut Matrix)) {
        f(&mut self.inner.data.borrow_mut());
    }

    /// Zeroes the gradient.
    pub fn zero_grad(&self) {
        let mut g = self.inner.grad.borrow_mut();
        let (r, c) = (g.rows(), g.cols());
        *g = Matrix::zeros(r, c);
    }

    /// Shape `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        let d = self.inner.data.borrow();
        (d.rows(), d.cols())
    }

    fn accum_grad(&self, delta: &Matrix) {
        let mut g = self.inner.grad.borrow_mut();
        debug_assert_eq!((g.rows(), g.cols()), (delta.rows(), delta.cols()));
        for r in 0..g.rows() {
            kcb_ml::linalg::axpy(1.0, delta.row(r), g.row_mut(r));
        }
    }

    /// Adds into a single gradient row — the sparse path used by
    /// [`Tensor::gather`]'s backward, which would otherwise materialise a
    /// full table-shaped zero matrix per step (the embedding table is by
    /// far the largest parameter).
    fn accum_grad_row(&self, row: usize, delta: &[f32]) {
        let mut g = self.inner.grad.borrow_mut();
        kcb_ml::linalg::axpy(1.0, delta, g.row_mut(row));
    }

    /// Runs reverse-mode differentiation from this (scalar-ish) tensor,
    /// seeding its gradient with ones.
    pub fn backward(&self) {
        // Seed.
        {
            let mut g = self.inner.grad.borrow_mut();
            let (r, c) = (g.rows(), g.cols());
            let seed = Matrix::from_vec(vec![1.0; r * c], r, c);
            *g = seed;
        }
        // Topological order via iterative DFS.
        let mut order: Vec<Tensor> = Vec::new();
        let mut visited: std::collections::HashSet<usize> = std::collections::HashSet::new();
        let mut stack: Vec<(Tensor, bool)> = vec![(self.clone(), false)];
        while let Some((t, processed)) = stack.pop() {
            if processed {
                order.push(t);
                continue;
            }
            if !visited.insert(t.inner.id) {
                continue;
            }
            stack.push((t.clone(), true));
            for p in &t.inner.parents {
                if !visited.contains(&p.inner.id) {
                    stack.push((p.clone(), false));
                }
            }
        }
        for t in order.into_iter().rev() {
            if let Some(bw) = &t.inner.backward {
                bw(&t.inner);
            }
        }
    }

    // --- ops ---------------------------------------------------------------

    /// Matrix product `self @ rhs`.
    pub fn matmul(&self, rhs: &Tensor) -> Tensor {
        let out = matmul_nn(&self.data(), &rhs.data());
        let a = self.clone();
        let b = rhs.clone();
        Tensor::from_op(
            out,
            vec![a.clone(), b.clone()],
            Box::new(move |me| {
                let g = me.grad.borrow();
                a.accum_grad(&matmul_nt(&g, &b.data()));
                b.accum_grad(&matmul_tn(&a.data(), &g));
            }),
        )
    }

    /// Matrix product with transposed RHS: `self @ rhsᵀ`.
    pub fn matmul_t(&self, rhs: &Tensor) -> Tensor {
        let out = matmul_nt(&self.data(), &rhs.data());
        let a = self.clone();
        let b = rhs.clone();
        Tensor::from_op(
            out,
            vec![a.clone(), b.clone()],
            Box::new(move |me| {
                let g = me.grad.borrow();
                a.accum_grad(&matmul_nn(&g, &b.data()));
                b.accum_grad(&matmul_tn(&g, &a.data()));
            }),
        )
    }

    /// Element-wise sum (same shapes).
    pub fn add(&self, rhs: &Tensor) -> Tensor {
        let (a_d, b_d) = (self.data(), rhs.data());
        assert_eq!((a_d.rows(), a_d.cols()), (b_d.rows(), b_d.cols()), "add shape mismatch");
        let mut out = a_d.clone();
        for r in 0..out.rows() {
            kcb_ml::linalg::axpy(1.0, b_d.row(r), out.row_mut(r));
        }
        drop(a_d);
        drop(b_d);
        let a = self.clone();
        let b = rhs.clone();
        Tensor::from_op(
            out,
            vec![a.clone(), b.clone()],
            Box::new(move |me| {
                let g = me.grad.borrow();
                a.accum_grad(&g);
                b.accum_grad(&g);
            }),
        )
    }

    /// Adds a `(1, d)` bias row to every row.
    pub fn add_row(&self, bias: &Tensor) -> Tensor {
        let a_d = self.data();
        let b_d = bias.data();
        assert_eq!(b_d.rows(), 1, "bias must be a row vector");
        assert_eq!(a_d.cols(), b_d.cols(), "bias width mismatch");
        let mut out = a_d.clone();
        for r in 0..out.rows() {
            kcb_ml::linalg::axpy(1.0, b_d.row(0), out.row_mut(r));
        }
        drop(a_d);
        drop(b_d);
        let a = self.clone();
        let b = bias.clone();
        Tensor::from_op(
            out,
            vec![a.clone(), b.clone()],
            Box::new(move |me| {
                let g = me.grad.borrow();
                a.accum_grad(&g);
                // Column-sum into the bias grad.
                let mut db = Matrix::zeros(1, g.cols());
                for r in 0..g.rows() {
                    kcb_ml::linalg::axpy(1.0, g.row(r), db.row_mut(0));
                }
                b.accum_grad(&db);
            }),
        )
    }

    /// Multiplies every element by a constant.
    pub fn scale(&self, k: f32) -> Tensor {
        let a_d = self.data();
        let out = Matrix::from_vec(a_d.as_slice().iter().map(|v| v * k).collect(), a_d.rows(), a_d.cols());
        drop(a_d);
        let a = self.clone();
        Tensor::from_op(
            out,
            vec![a.clone()],
            Box::new(move |me| {
                let g = me.grad.borrow();
                let scaled =
                    Matrix::from_vec(g.as_slice().iter().map(|v| v * k).collect(), g.rows(), g.cols());
                a.accum_grad(&scaled);
            }),
        )
    }

    /// GELU activation (tanh approximation).
    pub fn gelu(&self) -> Tensor {
        let a_d = self.data();
        let out = Matrix::from_vec(
            a_d.as_slice().iter().map(|&x| gelu(x)).collect(),
            a_d.rows(),
            a_d.cols(),
        );
        drop(a_d);
        let a = self.clone();
        Tensor::from_op(
            out,
            vec![a.clone()],
            Box::new(move |me| {
                let g = me.grad.borrow();
                let x = a.data();
                let mut d = Matrix::zeros(g.rows(), g.cols());
                for (i, (gv, xv)) in g.as_slice().iter().zip(x.as_slice()).enumerate() {
                    let r = i / g.cols();
                    let c = i % g.cols();
                    d.row_mut(r)[c] = gv * gelu_grad(*xv);
                }
                drop(x);
                a.accum_grad(&d);
            }),
        )
    }

    /// Row-wise softmax. With `causal = true`, entry `(r, c)` for `c > r`
    /// is masked to zero probability (attention over a causal sequence —
    /// requires a square matrix).
    pub fn softmax_rows(&self, causal: bool) -> Tensor {
        let a_d = self.data();
        if causal {
            assert_eq!(a_d.rows(), a_d.cols(), "causal mask needs square scores");
        }
        let mut out = Matrix::zeros(a_d.rows(), a_d.cols());
        for r in 0..a_d.rows() {
            let row = a_d.row(r);
            let limit = if causal { r + 1 } else { row.len() };
            let max = row[..limit].iter().cloned().fold(f32::NEG_INFINITY, f32::max);
            let mut sum = 0.0;
            for c in 0..limit {
                let e = (row[c] - max).exp();
                out.row_mut(r)[c] = e;
                sum += e;
            }
            for c in 0..limit {
                out.row_mut(r)[c] /= sum;
            }
        }
        drop(a_d);
        let a = self.clone();
        let y = out.clone();
        Tensor::from_op(
            out,
            vec![a.clone()],
            Box::new(move |me| {
                let g = me.grad.borrow();
                let mut d = Matrix::zeros(g.rows(), g.cols());
                for r in 0..g.rows() {
                    let yr = y.row(r);
                    let gr = g.row(r);
                    let dot: f32 = yr.iter().zip(gr).map(|(a, b)| a * b).sum();
                    for c in 0..g.cols() {
                        d.row_mut(r)[c] = yr[c] * (gr[c] - dot);
                    }
                }
                a.accum_grad(&d);
            }),
        )
    }

    /// Row-wise LayerNorm with per-column gain and bias (`(1, d)` each).
    pub fn layer_norm(&self, gamma: &Tensor, beta: &Tensor) -> Tensor {
        const EPS: f32 = 1e-5;
        let x = self.data();
        let g_d = gamma.data();
        let b_d = beta.data();
        let d = x.cols();
        assert_eq!(g_d.cols(), d);
        assert_eq!(b_d.cols(), d);
        let mut out = Matrix::zeros(x.rows(), d);
        let mut xhat = Matrix::zeros(x.rows(), d);
        let mut inv_std = vec![0.0f32; x.rows()];
        for r in 0..x.rows() {
            let row = x.row(r);
            let mean: f32 = row.iter().sum::<f32>() / d as f32;
            let var: f32 = row.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / d as f32;
            let istd = 1.0 / (var + EPS).sqrt();
            inv_std[r] = istd;
            for c in 0..d {
                let xh = (row[c] - mean) * istd;
                xhat.row_mut(r)[c] = xh;
                out.row_mut(r)[c] = xh * g_d.row(0)[c] + b_d.row(0)[c];
            }
        }
        drop(x);
        drop(g_d);
        drop(b_d);
        let a = self.clone();
        let gm = gamma.clone();
        let bt = beta.clone();
        Tensor::from_op(
            out,
            vec![a.clone(), gm.clone(), bt.clone()],
            Box::new(move |me| {
                let g = me.grad.borrow();
                let gamma_d = gm.data();
                let n = g.cols() as f32;
                let mut dx = Matrix::zeros(g.rows(), g.cols());
                let mut dgamma = Matrix::zeros(1, g.cols());
                let mut dbeta = Matrix::zeros(1, g.cols());
                for r in 0..g.rows() {
                    let gr = g.row(r);
                    let xh = xhat.row(r);
                    // dxhat = g * gamma
                    // dx = (dxhat - mean(dxhat) - xhat * mean(dxhat*xhat)) * inv_std
                    let mut sum_dxh = 0.0f32;
                    let mut sum_dxh_xh = 0.0f32;
                    for c in 0..g.cols() {
                        let dxh = gr[c] * gamma_d.row(0)[c];
                        sum_dxh += dxh;
                        sum_dxh_xh += dxh * xh[c];
                        dgamma.row_mut(0)[c] += gr[c] * xh[c];
                        dbeta.row_mut(0)[c] += gr[c];
                    }
                    let m1 = sum_dxh / n;
                    let m2 = sum_dxh_xh / n;
                    for c in 0..g.cols() {
                        let dxh = gr[c] * gamma_d.row(0)[c];
                        dx.row_mut(r)[c] = (dxh - m1 - xh[c] * m2) * inv_std[r];
                    }
                }
                drop(gamma_d);
                a.accum_grad(&dx);
                gm.accum_grad(&dgamma);
                bt.accum_grad(&dbeta);
            }),
        )
    }

    /// Gathers embedding rows: `out[i] = self[ids[i]]`. `self` is the
    /// `(V, d)` table.
    pub fn gather(&self, ids: &[u32]) -> Tensor {
        let w = self.data();
        let mut out = Matrix::zeros(ids.len(), w.cols());
        for (i, &id) in ids.iter().enumerate() {
            out.row_mut(i).copy_from_slice(w.row(id as usize));
        }
        drop(w);
        let a = self.clone();
        let ids_owned: Vec<u32> = ids.to_vec();
        Tensor::from_op(
            out,
            vec![a.clone()],
            Box::new(move |me| {
                let g = me.grad.borrow();
                // Sparse scatter: only the gathered rows receive gradient.
                for (i, &id) in ids_owned.iter().enumerate() {
                    a.accum_grad_row(id as usize, g.row(i));
                }
            }),
        )
    }

    /// Selects a subset of rows (e.g. the `[CLS]` position).
    pub fn select_rows(&self, rows: &[usize]) -> Tensor {
        let x = self.data();
        let mut out = Matrix::zeros(rows.len(), x.cols());
        for (i, &r) in rows.iter().enumerate() {
            out.row_mut(i).copy_from_slice(x.row(r));
        }
        drop(x);
        let a = self.clone();
        let rows_owned: Vec<usize> = rows.to_vec();
        Tensor::from_op(
            out,
            vec![a.clone()],
            Box::new(move |me| {
                let g = me.grad.borrow();
                let (ar, ac) = a.shape();
                let mut da = Matrix::zeros(ar, ac);
                for (i, &r) in rows_owned.iter().enumerate() {
                    kcb_ml::linalg::axpy(1.0, g.row(i), da.row_mut(r));
                }
                a.accum_grad(&da);
            }),
        )
    }

    /// Masked mean cross-entropy between logit rows and target ids.
    /// Positions with `targets[i] == IGNORE` are excluded. Returns a
    /// `(1,1)` loss tensor and sets up the fused softmax+CE backward.
    pub fn cross_entropy(&self, targets: &[u32]) -> Tensor {
        /// Sentinel excluding a position from the loss.
        const IGNORE: u32 = u32::MAX;
        let logits = self.data();
        assert_eq!(logits.rows(), targets.len(), "logit/target row mismatch");
        let mut total = 0.0f64;
        let mut count = 0usize;
        let mut probs = Matrix::zeros(logits.rows(), logits.cols());
        for r in 0..logits.rows() {
            if targets[r] == IGNORE {
                continue;
            }
            let row = logits.row(r);
            let max = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
            let mut sum = 0.0f32;
            for c in 0..row.len() {
                let e = (row[c] - max).exp();
                probs.row_mut(r)[c] = e;
                sum += e;
            }
            for c in 0..row.len() {
                probs.row_mut(r)[c] /= sum;
            }
            let p = probs.row(r)[targets[r] as usize].max(1e-12);
            total -= (p as f64).ln();
            count += 1;
        }
        let count = count.max(1);
        let loss = Matrix::from_vec(vec![(total / count as f64) as f32], 1, 1);
        drop(logits);
        let a = self.clone();
        let targets_owned: Vec<u32> = targets.to_vec();
        Tensor::from_op(
            loss,
            vec![a.clone()],
            Box::new(move |me| {
                let g = me.grad.borrow().get(0, 0);
                let mut d = probs.clone();
                let inv = g / count as f32;
                for r in 0..d.rows() {
                    if targets_owned[r] == IGNORE {
                        d.row_mut(r).fill(0.0);
                        continue;
                    }
                    d.row_mut(r)[targets_owned[r] as usize] -= 1.0;
                    for v in d.row_mut(r) {
                        *v *= inv;
                    }
                }
                a.accum_grad(&d);
            }),
        )
    }
}

/// Sentinel target id excluded from [`Tensor::cross_entropy`].
pub const IGNORE_TARGET: u32 = u32::MAX;

fn gelu(x: f32) -> f32 {
    const C: f32 = 0.797_884_6; // sqrt(2/pi)
    0.5 * x * (1.0 + (C * (x + 0.044715 * x * x * x)).tanh())
}

fn gelu_grad(x: f32) -> f32 {
    const C: f32 = 0.797_884_6;
    let inner = C * (x + 0.044715 * x * x * x);
    let t = inner.tanh();
    let sech2 = 1.0 - t * t;
    0.5 * (1.0 + t) + 0.5 * x * sech2 * C * (1.0 + 3.0 * 0.044715 * x * x)
}

fn matmul_nn(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(a.cols(), b.rows(), "matmul inner dim");
    let mut out = Matrix::zeros(a.rows(), b.cols());
    for i in 0..a.rows() {
        let ar = a.row(i);
        let or = out.row_mut(i);
        for (k, &av) in ar.iter().enumerate() {
            if av != 0.0 {
                kcb_ml::linalg::axpy(av, b.row(k), or);
            }
        }
    }
    out
}

fn matmul_nt(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(a.cols(), b.cols(), "matmul_nt inner dim");
    let mut out = Matrix::zeros(a.rows(), b.rows());
    for i in 0..a.rows() {
        let ar = a.row(i);
        for j in 0..b.rows() {
            out.row_mut(i)[j] = kcb_ml::linalg::dot(ar, b.row(j));
        }
    }
    out
}

fn matmul_tn(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(a.rows(), b.rows(), "matmul_tn inner dim");
    let mut out = Matrix::zeros(a.cols(), b.cols());
    for k in 0..a.rows() {
        let ar = a.row(k);
        let br = b.row(k);
        for (i, &av) in ar.iter().enumerate() {
            if av != 0.0 {
                kcb_ml::linalg::axpy(av, br, out.row_mut(i));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mat(rows: usize, cols: usize, seed: u64) -> Matrix {
        let mut rng = kcb_util::Rng::seed(seed);
        Matrix::from_vec((0..rows * cols).map(|_| rng.f32_range(-1.0, 1.0)).collect(), rows, cols)
    }

    /// Finite-difference check of d(sum of f(x)) / dx for one leaf.
    fn grad_check(x: Matrix, f: impl Fn(&Tensor) -> Tensor, tol: f32) {
        let leaf = Tensor::leaf(x.clone());
        let out = f(&leaf);
        // Reduce to scalar by chaining into a sum via cross-entropy-free
        // trick: scale-sum using matmul with ones.
        let (orows, ocols) = out.shape();
        let ones = Tensor::leaf(Matrix::from_vec(vec![1.0; ocols], ocols, 1));
        let row_sums = out.matmul(&ones); // (orows, 1)
        let ones2 = Tensor::leaf(Matrix::from_vec(vec![1.0; orows], 1, orows));
        let total = ones2.matmul(&row_sums); // (1,1)
        total.backward();
        let analytic = leaf.grad().clone();

        let eps = 1e-2f32;
        for r in 0..x.rows() {
            for c in 0..x.cols() {
                let mut xp = x.clone();
                xp.row_mut(r)[c] += eps;
                let mut xm = x.clone();
                xm.row_mut(r)[c] -= eps;
                let fp: f32 = f(&Tensor::leaf(xp)).data().as_slice().iter().sum();
                let fm: f32 = f(&Tensor::leaf(xm)).data().as_slice().iter().sum();
                let num = (fp - fm) / (2.0 * eps);
                let ana = analytic.get(r, c);
                assert!(
                    (num - ana).abs() < tol + 0.05 * num.abs(),
                    "grad mismatch at ({r},{c}): numeric {num} vs analytic {ana}"
                );
            }
        }
    }

    #[test]
    fn matmul_values() {
        let a = Tensor::leaf(Matrix::from_rows(vec![vec![1.0, 2.0], vec![3.0, 4.0]]));
        let b = Tensor::leaf(Matrix::from_rows(vec![vec![5.0, 6.0], vec![7.0, 8.0]]));
        let c = a.matmul(&b);
        assert_eq!(c.data().row(0), &[19.0, 22.0]);
        assert_eq!(c.data().row(1), &[43.0, 50.0]);
        let d = a.matmul_t(&b);
        assert_eq!(d.data().row(0), &[17.0, 23.0]);
    }

    #[test]
    fn matmul_grads() {
        grad_check(mat(3, 4, 1), |x| x.matmul(&Tensor::leaf(mat(4, 2, 2))), 1e-2);
        grad_check(mat(3, 4, 3), |x| x.matmul_t(&Tensor::leaf(mat(5, 4, 4))), 1e-2);
    }

    #[test]
    fn add_and_bias_grads() {
        grad_check(mat(3, 4, 5), |x| x.add(&Tensor::leaf(mat(3, 4, 6))), 1e-2);
        grad_check(mat(3, 4, 7), |x| x.add_row(&Tensor::leaf(mat(1, 4, 8))), 1e-2);
        grad_check(mat(2, 3, 9), |x| x.scale(2.5), 1e-2);
    }

    #[test]
    fn gelu_grad_matches() {
        grad_check(mat(3, 3, 10), |x| x.gelu(), 2e-2);
    }

    #[test]
    fn softmax_rows_sums_to_one_and_grad() {
        let t = Tensor::leaf(mat(4, 4, 11));
        let s = t.softmax_rows(false);
        for r in 0..4 {
            let sum: f32 = s.data().row(r).iter().sum();
            assert!((sum - 1.0).abs() < 1e-5);
        }
        // Softmax grad: check through a weighting matmul so the sum isn't
        // trivially constant.
        let w = mat(4, 4, 99);
        grad_check(mat(4, 4, 12), |x| {
            x.softmax_rows(false).matmul(&Tensor::leaf(w.clone()))
        }, 2e-2);
    }

    #[test]
    fn causal_softmax_masks_future() {
        let t = Tensor::leaf(mat(3, 3, 13));
        let s = t.softmax_rows(true);
        let d = s.data();
        assert_eq!(d.get(0, 1), 0.0);
        assert_eq!(d.get(0, 2), 0.0);
        assert_eq!(d.get(1, 2), 0.0);
        assert!((d.get(0, 0) - 1.0).abs() < 1e-6);
        let sum1: f32 = d.row(1).iter().sum();
        assert!((sum1 - 1.0).abs() < 1e-5);
    }

    #[test]
    fn layer_norm_normalises_and_grad() {
        let gamma = Tensor::leaf(Matrix::from_vec(vec![1.0; 5], 1, 5));
        let beta = Tensor::leaf(Matrix::from_vec(vec![0.0; 5], 1, 5));
        let x = Tensor::leaf(mat(3, 5, 14));
        let y = x.layer_norm(&gamma, &beta);
        for r in 0..3 {
            let row = y.data().row(r).to_vec();
            let mean: f32 = row.iter().sum::<f32>() / 5.0;
            let var: f32 = row.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / 5.0;
            assert!(mean.abs() < 1e-5, "mean {mean}");
            assert!((var - 1.0).abs() < 1e-3, "var {var}");
        }
        let w = mat(5, 3, 98);
        grad_check(mat(3, 5, 15), |x| {
            let g = Tensor::leaf(Matrix::from_vec(vec![0.7, 1.3, 0.9, 1.1, 1.0], 1, 5));
            let b = Tensor::leaf(Matrix::from_vec(vec![0.1; 5], 1, 5));
            x.layer_norm(&g, &b).matmul(&Tensor::leaf(w.clone()))
        }, 3e-2);
    }

    #[test]
    fn gather_and_select_grads_scatter() {
        let table = Tensor::leaf(mat(6, 3, 16));
        let out = table.gather(&[2, 2, 5]);
        assert_eq!(out.data().row(0), out.data().row(1));
        let ones = Tensor::leaf(Matrix::from_vec(vec![1.0; 3], 3, 1));
        let s = out.matmul(&ones);
        let ones2 = Tensor::leaf(Matrix::from_vec(vec![1.0; 3], 1, 3));
        ones2.matmul(&s).backward();
        let g = table.grad();
        // Row 2 gathered twice → grad 2, row 5 once → grad 1, others 0.
        assert_eq!(g.row(2), &[2.0, 2.0, 2.0]);
        assert_eq!(g.row(5), &[1.0, 1.0, 1.0]);
        assert_eq!(g.row(0), &[0.0, 0.0, 0.0]);
    }

    #[test]
    fn cross_entropy_matches_manual() {
        // Two rows, uniform logits → loss = ln(3).
        let logits = Tensor::leaf(Matrix::zeros(2, 3));
        let loss = logits.cross_entropy(&[0, 2]);
        assert!((loss.data().get(0, 0) - 3.0f32.ln()).abs() < 1e-5);
        loss.backward();
        let g = logits.grad();
        // grad = (softmax - onehot)/2 → (1/3 - 1)/2 at targets.
        assert!((g.get(0, 0) - (1.0 / 3.0 - 1.0) / 2.0).abs() < 1e-5);
        assert!((g.get(0, 1) - (1.0 / 3.0) / 2.0).abs() < 1e-5);
    }

    #[test]
    fn cross_entropy_ignores_masked_positions() {
        let logits = Tensor::leaf(mat(3, 4, 17));
        let loss = logits.cross_entropy(&[1, IGNORE_TARGET, 3]);
        loss.backward();
        let g = logits.grad();
        assert!(g.row(1).iter().all(|&v| v == 0.0), "masked row must get no grad");
        assert!(g.row(0).iter().any(|&v| v != 0.0));
    }

    #[test]
    fn shared_parameter_accumulates_from_both_uses() {
        // y = x @ w + x @ w — dw should be twice the single-use grad.
        let x = Tensor::leaf(mat(2, 3, 18));
        let w = Tensor::leaf(mat(3, 2, 19));
        let y = x.matmul(&w).add(&x.matmul(&w));
        let ones = Tensor::leaf(Matrix::from_vec(vec![1.0; 2], 2, 1));
        let ones2 = Tensor::leaf(Matrix::from_vec(vec![1.0; 2], 1, 2));
        ones2.matmul(&y.matmul(&ones)).backward();
        let g2 = w.grad().clone();
        let x2 = Tensor::leaf(x.data().clone());
        let w2 = Tensor::leaf(w.data().clone());
        let y2 = x2.matmul(&w2);
        let ones = Tensor::leaf(Matrix::from_vec(vec![1.0; 2], 2, 1));
        let ones2 = Tensor::leaf(Matrix::from_vec(vec![1.0; 2], 1, 2));
        ones2.matmul(&y2.matmul(&ones)).backward();
        let g1 = w2.grad();
        for r in 0..3 {
            for c in 0..2 {
                assert!((g2.get(r, c) - 2.0 * g1.get(r, c)).abs() < 1e-5);
            }
        }
    }
}
