//! Minimal reverse-mode autograd over dense `f32` matrices.
//!
//! A micrograd-style tape: every [`Tensor`] wraps a value matrix, a
//! gradient matrix and a backward closure referencing its parents.
//! [`Tensor::backward`] topologically sorts the graph and runs the
//! closures. The op set is exactly what a pre-LN transformer needs:
//! matmul (plain and transposed-RHS), broadcast bias add, element add,
//! scalar scale, GELU, row softmax (with optional causal mask), row
//! LayerNorm, embedding gather, row selection and masked cross-entropy.
//!
//! Matrices are small (sequence × d_model at mini-BERT scale), so clarity
//! beats blocking tricks here; the hot kernels still run over flat slices.

use kcb_ml::linalg::Matrix;
use std::cell::{Ref, RefCell};
use std::rc::Rc;

/// Backward closure: distributes a node's gradient into its parents.
type BackwardFn = Box<dyn Fn(&Inner)>;

/// Node payload.
struct Inner {
    id: usize,
    data: RefCell<Matrix>,
    grad: RefCell<Matrix>,
    parents: Vec<Tensor>,
    /// Distributes `self.grad` into the parents' grads.
    backward: Option<BackwardFn>,
}

thread_local! {
    static NEXT_ID: RefCell<usize> = const { RefCell::new(0) };
}

fn next_id() -> usize {
    NEXT_ID.with(|c| {
        let mut c = c.borrow_mut();
        *c += 1;
        *c
    })
}

/// A reference-counted autograd tensor.
#[derive(Clone)]
pub struct Tensor {
    inner: Rc<Inner>,
}

impl std::fmt::Debug for Tensor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let d = self.inner.data.borrow();
        write!(f, "Tensor(id={}, {}x{})", self.inner.id, d.rows(), d.cols())
    }
}

impl Tensor {
    /// Creates a leaf tensor (parameter or input).
    pub fn leaf(data: Matrix) -> Self {
        let grad = Matrix::zeros(data.rows(), data.cols());
        Self {
            inner: Rc::new(Inner {
                id: next_id(),
                data: RefCell::new(data),
                grad: RefCell::new(grad),
                parents: Vec::new(),
                backward: None,
            }),
        }
    }

    fn from_op(data: Matrix, parents: Vec<Tensor>, backward: BackwardFn) -> Self {
        let grad = Matrix::zeros(data.rows(), data.cols());
        Self {
            inner: Rc::new(Inner {
                id: next_id(),
                data: RefCell::new(data),
                grad: RefCell::new(grad),
                parents,
                backward: Some(backward),
            }),
        }
    }

    /// Borrows the value.
    pub fn data(&self) -> Ref<'_, Matrix> {
        self.inner.data.borrow()
    }

    /// Borrows the gradient.
    pub fn grad(&self) -> Ref<'_, Matrix> {
        self.inner.grad.borrow()
    }

    /// Overwrites the value in place (used by the optimiser and to reuse
    /// parameter tensors across steps).
    pub fn set_data(&self, data: Matrix) {
        *self.inner.data.borrow_mut() = data;
    }

    /// Applies `f` to the value matrix in place.
    pub fn update_data(&self, f: impl FnOnce(&mut Matrix)) {
        f(&mut self.inner.data.borrow_mut());
    }

    /// Zeroes the gradient.
    pub fn zero_grad(&self) {
        let mut g = self.inner.grad.borrow_mut();
        let (r, c) = (g.rows(), g.cols());
        *g = Matrix::zeros(r, c);
    }

    /// Shape `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        let d = self.inner.data.borrow();
        (d.rows(), d.cols())
    }

    fn accum_grad(&self, delta: &Matrix) {
        let mut g = self.inner.grad.borrow_mut();
        debug_assert_eq!((g.rows(), g.cols()), (delta.rows(), delta.cols()));
        for r in 0..g.rows() {
            kcb_ml::linalg::axpy(1.0, delta.row(r), g.row_mut(r));
        }
    }

    /// Adds into a single gradient row — the sparse path used by
    /// [`Tensor::gather`]'s backward, which would otherwise materialise a
    /// full table-shaped zero matrix per step (the embedding table is by
    /// far the largest parameter).
    fn accum_grad_row(&self, row: usize, delta: &[f32]) {
        let mut g = self.inner.grad.borrow_mut();
        kcb_ml::linalg::axpy(1.0, delta, g.row_mut(row));
    }

    /// Adds a `(rows, cols)` block of gradient at `(first_row, first_col)` —
    /// used by the multi-head attention backward, where each head owns a
    /// column slice of the fused Q/K/V projections.
    fn accum_grad_block(&self, first_row: usize, first_col: usize, delta: &Matrix) {
        let mut g = self.inner.grad.borrow_mut();
        let w = delta.cols();
        for r in 0..delta.rows() {
            let gr = &mut g.row_mut(first_row + r)[first_col..first_col + w];
            kcb_ml::linalg::axpy(1.0, delta.row(r), gr);
        }
    }

    /// Runs reverse-mode differentiation from this (scalar-ish) tensor,
    /// seeding its gradient with ones.
    pub fn backward(&self) {
        // Seed.
        {
            let mut g = self.inner.grad.borrow_mut();
            let (r, c) = (g.rows(), g.cols());
            let seed = Matrix::from_vec(vec![1.0; r * c], r, c);
            *g = seed;
        }
        // Topological order via iterative DFS.
        let mut order: Vec<Tensor> = Vec::new();
        let mut visited: std::collections::HashSet<usize> = std::collections::HashSet::new();
        let mut stack: Vec<(Tensor, bool)> = vec![(self.clone(), false)];
        while let Some((t, processed)) = stack.pop() {
            if processed {
                order.push(t);
                continue;
            }
            if !visited.insert(t.inner.id) {
                continue;
            }
            stack.push((t.clone(), true));
            for p in &t.inner.parents {
                if !visited.contains(&p.inner.id) {
                    stack.push((p.clone(), false));
                }
            }
        }
        for t in order.into_iter().rev() {
            if let Some(bw) = &t.inner.backward {
                bw(&t.inner);
            }
        }
    }

    // --- ops ---------------------------------------------------------------

    /// Matrix product `self @ rhs`.
    pub fn matmul(&self, rhs: &Tensor) -> Tensor {
        let out = matmul_nn(&self.data(), &rhs.data());
        let a = self.clone();
        let b = rhs.clone();
        Tensor::from_op(
            out,
            vec![a.clone(), b.clone()],
            Box::new(move |me| {
                let g = me.grad.borrow();
                a.accum_grad(&matmul_nt(&g, &b.data()));
                b.accum_grad(&matmul_tn(&a.data(), &g));
            }),
        )
    }

    /// Matrix product with transposed RHS: `self @ rhsᵀ`.
    pub fn matmul_t(&self, rhs: &Tensor) -> Tensor {
        let out = matmul_nt(&self.data(), &rhs.data());
        let a = self.clone();
        let b = rhs.clone();
        Tensor::from_op(
            out,
            vec![a.clone(), b.clone()],
            Box::new(move |me| {
                let g = me.grad.borrow();
                a.accum_grad(&matmul_nn(&g, &b.data()));
                b.accum_grad(&matmul_tn(&g, &a.data()));
            }),
        )
    }

    /// Element-wise sum (same shapes).
    pub fn add(&self, rhs: &Tensor) -> Tensor {
        let (a_d, b_d) = (self.data(), rhs.data());
        assert_eq!((a_d.rows(), a_d.cols()), (b_d.rows(), b_d.cols()), "add shape mismatch");
        let mut out = a_d.clone();
        for r in 0..out.rows() {
            kcb_ml::linalg::axpy(1.0, b_d.row(r), out.row_mut(r));
        }
        drop(a_d);
        drop(b_d);
        let a = self.clone();
        let b = rhs.clone();
        Tensor::from_op(
            out,
            vec![a.clone(), b.clone()],
            Box::new(move |me| {
                let g = me.grad.borrow();
                a.accum_grad(&g);
                b.accum_grad(&g);
            }),
        )
    }

    /// Adds a `(1, d)` bias row to every row.
    pub fn add_row(&self, bias: &Tensor) -> Tensor {
        let a_d = self.data();
        let b_d = bias.data();
        assert_eq!(b_d.rows(), 1, "bias must be a row vector");
        assert_eq!(a_d.cols(), b_d.cols(), "bias width mismatch");
        let mut out = a_d.clone();
        for r in 0..out.rows() {
            kcb_ml::linalg::axpy(1.0, b_d.row(0), out.row_mut(r));
        }
        drop(a_d);
        drop(b_d);
        let a = self.clone();
        let b = bias.clone();
        Tensor::from_op(
            out,
            vec![a.clone(), b.clone()],
            Box::new(move |me| {
                let g = me.grad.borrow();
                a.accum_grad(&g);
                // Column-sum into the bias grad.
                let mut db = Matrix::zeros(1, g.cols());
                for r in 0..g.rows() {
                    kcb_ml::linalg::axpy(1.0, g.row(r), db.row_mut(0));
                }
                b.accum_grad(&db);
            }),
        )
    }

    /// Multiplies every element by a constant.
    pub fn scale(&self, k: f32) -> Tensor {
        let a_d = self.data();
        let out = Matrix::from_vec(a_d.as_slice().iter().map(|v| v * k).collect(), a_d.rows(), a_d.cols());
        drop(a_d);
        let a = self.clone();
        Tensor::from_op(
            out,
            vec![a.clone()],
            Box::new(move |me| {
                let g = me.grad.borrow();
                let scaled =
                    Matrix::from_vec(g.as_slice().iter().map(|v| v * k).collect(), g.rows(), g.cols());
                a.accum_grad(&scaled);
            }),
        )
    }

    /// GELU activation (tanh approximation).
    pub fn gelu(&self) -> Tensor {
        let a_d = self.data();
        let (rows, cols) = (a_d.rows(), a_d.cols());
        // Cache tanh(inner) for the backward pass: gelu_grad needs the same
        // tanh the forward computed, and tanh dominates the activation cost.
        let mut tanhs = Vec::with_capacity(rows * cols);
        let out = Matrix::from_vec(
            a_d.as_slice()
                .iter()
                .map(|&x| {
                    let t = gelu_tanh(x);
                    tanhs.push(t);
                    0.5 * x * (1.0 + t)
                })
                .collect(),
            rows,
            cols,
        );
        drop(a_d);
        let a = self.clone();
        Tensor::from_op(
            out,
            vec![a.clone()],
            Box::new(move |me| {
                let g = me.grad.borrow();
                let x = a.data();
                let mut d = Matrix::zeros(g.rows(), g.cols());
                for (i, (gv, xv)) in g.as_slice().iter().zip(x.as_slice()).enumerate() {
                    let r = i / g.cols();
                    let c = i % g.cols();
                    d.row_mut(r)[c] = gv * gelu_grad_cached(*xv, tanhs[i]);
                }
                drop(x);
                a.accum_grad(&d);
            }),
        )
    }

    /// Row-wise softmax. With `causal = true`, entry `(r, c)` for `c > r`
    /// is masked to zero probability (attention over a causal sequence —
    /// requires a square matrix).
    pub fn softmax_rows(&self, causal: bool) -> Tensor {
        let a_d = self.data();
        if causal {
            assert_eq!(a_d.rows(), a_d.cols(), "causal mask needs square scores");
        }
        let mut out = Matrix::zeros(a_d.rows(), a_d.cols());
        for r in 0..a_d.rows() {
            let row = a_d.row(r);
            let limit = if causal { r + 1 } else { row.len() };
            let max = row[..limit].iter().cloned().fold(f32::NEG_INFINITY, f32::max);
            let mut sum = 0.0;
            for c in 0..limit {
                let e = (row[c] - max).exp();
                out.row_mut(r)[c] = e;
                sum += e;
            }
            for c in 0..limit {
                out.row_mut(r)[c] /= sum;
            }
        }
        drop(a_d);
        let a = self.clone();
        let y = out.clone();
        Tensor::from_op(
            out,
            vec![a.clone()],
            Box::new(move |me| {
                let g = me.grad.borrow();
                let mut d = Matrix::zeros(g.rows(), g.cols());
                for r in 0..g.rows() {
                    let yr = y.row(r);
                    let gr = g.row(r);
                    let dot: f32 = yr.iter().zip(gr).map(|(a, b)| a * b).sum();
                    for c in 0..g.cols() {
                        d.row_mut(r)[c] = yr[c] * (gr[c] - dot);
                    }
                }
                a.accum_grad(&d);
            }),
        )
    }

    /// Row-wise LayerNorm with per-column gain and bias (`(1, d)` each).
    pub fn layer_norm(&self, gamma: &Tensor, beta: &Tensor) -> Tensor {
        const EPS: f32 = 1e-5;
        let x = self.data();
        let g_d = gamma.data();
        let b_d = beta.data();
        let d = x.cols();
        assert_eq!(g_d.cols(), d);
        assert_eq!(b_d.cols(), d);
        let mut out = Matrix::zeros(x.rows(), d);
        let mut xhat = Matrix::zeros(x.rows(), d);
        let mut inv_std = vec![0.0f32; x.rows()];
        for r in 0..x.rows() {
            let row = x.row(r);
            let mean: f32 = row.iter().sum::<f32>() / d as f32;
            let var: f32 = row.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / d as f32;
            let istd = 1.0 / (var + EPS).sqrt();
            inv_std[r] = istd;
            for c in 0..d {
                let xh = (row[c] - mean) * istd;
                xhat.row_mut(r)[c] = xh;
                out.row_mut(r)[c] = xh * g_d.row(0)[c] + b_d.row(0)[c];
            }
        }
        drop(x);
        drop(g_d);
        drop(b_d);
        let a = self.clone();
        let gm = gamma.clone();
        let bt = beta.clone();
        Tensor::from_op(
            out,
            vec![a.clone(), gm.clone(), bt.clone()],
            Box::new(move |me| {
                let g = me.grad.borrow();
                let gamma_d = gm.data();
                let n = g.cols() as f32;
                let mut dx = Matrix::zeros(g.rows(), g.cols());
                let mut dgamma = Matrix::zeros(1, g.cols());
                let mut dbeta = Matrix::zeros(1, g.cols());
                for r in 0..g.rows() {
                    let gr = g.row(r);
                    let xh = xhat.row(r);
                    // dxhat = g * gamma
                    // dx = (dxhat - mean(dxhat) - xhat * mean(dxhat*xhat)) * inv_std
                    let mut sum_dxh = 0.0f32;
                    let mut sum_dxh_xh = 0.0f32;
                    for c in 0..g.cols() {
                        let dxh = gr[c] * gamma_d.row(0)[c];
                        sum_dxh += dxh;
                        sum_dxh_xh += dxh * xh[c];
                        dgamma.row_mut(0)[c] += gr[c] * xh[c];
                        dbeta.row_mut(0)[c] += gr[c];
                    }
                    let m1 = sum_dxh / n;
                    let m2 = sum_dxh_xh / n;
                    for c in 0..g.cols() {
                        let dxh = gr[c] * gamma_d.row(0)[c];
                        dx.row_mut(r)[c] = (dxh - m1 - xh[c] * m2) * inv_std[r];
                    }
                }
                drop(gamma_d);
                a.accum_grad(&dx);
                gm.accum_grad(&dgamma);
                bt.accum_grad(&dbeta);
            }),
        )
    }

    /// Gathers embedding rows: `out[i] = self[ids[i]]`. `self` is the
    /// `(V, d)` table.
    pub fn gather(&self, ids: &[u32]) -> Tensor {
        let w = self.data();
        let mut out = Matrix::zeros(ids.len(), w.cols());
        for (i, &id) in ids.iter().enumerate() {
            out.row_mut(i).copy_from_slice(w.row(id as usize));
        }
        drop(w);
        let a = self.clone();
        let ids_owned: Vec<u32> = ids.to_vec();
        Tensor::from_op(
            out,
            vec![a.clone()],
            Box::new(move |me| {
                let g = me.grad.borrow();
                // Sparse scatter: only the gathered rows receive gradient.
                for (i, &id) in ids_owned.iter().enumerate() {
                    a.accum_grad_row(id as usize, g.row(i));
                }
            }),
        )
    }

    /// Selects a subset of rows (e.g. the `[CLS]` position).
    pub fn select_rows(&self, rows: &[usize]) -> Tensor {
        let x = self.data();
        let mut out = Matrix::zeros(rows.len(), x.cols());
        for (i, &r) in rows.iter().enumerate() {
            out.row_mut(i).copy_from_slice(x.row(r));
        }
        drop(x);
        let a = self.clone();
        let rows_owned: Vec<usize> = rows.to_vec();
        Tensor::from_op(
            out,
            vec![a.clone()],
            Box::new(move |me| {
                let g = me.grad.borrow();
                let (ar, ac) = a.shape();
                let mut da = Matrix::zeros(ar, ac);
                for (i, &r) in rows_owned.iter().enumerate() {
                    kcb_ml::linalg::axpy(1.0, g.row(i), da.row_mut(r));
                }
                a.accum_grad(&da);
            }),
        )
    }

    /// Masked mean cross-entropy between logit rows and target ids.
    /// Positions with `targets[i] == IGNORE` are excluded. Returns a
    /// `(1,1)` loss tensor and sets up the fused softmax+CE backward.
    pub fn cross_entropy(&self, targets: &[u32]) -> Tensor {
        /// Sentinel excluding a position from the loss.
        const IGNORE: u32 = u32::MAX;
        let logits = self.data();
        assert_eq!(logits.rows(), targets.len(), "logit/target row mismatch");
        let mut total = 0.0f64;
        let mut count = 0usize;
        let mut probs = Matrix::zeros(logits.rows(), logits.cols());
        for r in 0..logits.rows() {
            if targets[r] == IGNORE {
                continue;
            }
            let row = logits.row(r);
            let max = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
            let mut sum = 0.0f32;
            for c in 0..row.len() {
                let e = (row[c] - max).exp();
                probs.row_mut(r)[c] = e;
                sum += e;
            }
            for c in 0..row.len() {
                probs.row_mut(r)[c] /= sum;
            }
            let p = probs.row(r)[targets[r] as usize].max(1e-12);
            total -= (p as f64).ln();
            count += 1;
        }
        let count = count.max(1);
        let loss = Matrix::from_vec(vec![(total / count as f64) as f32], 1, 1);
        drop(logits);
        let a = self.clone();
        let targets_owned: Vec<u32> = targets.to_vec();
        Tensor::from_op(
            loss,
            vec![a.clone()],
            Box::new(move |me| {
                let g = me.grad.borrow().get(0, 0);
                let mut d = probs.clone();
                let inv = g / count as f32;
                for r in 0..d.rows() {
                    if targets_owned[r] == IGNORE {
                        d.row_mut(r).fill(0.0);
                        continue;
                    }
                    d.row_mut(r)[targets_owned[r] as usize] -= 1.0;
                    for v in d.row_mut(r) {
                        *v *= inv;
                    }
                }
                a.accum_grad(&d);
            }),
        )
    }

    /// Fused multi-head block-diagonal attention over a packed batch.
    ///
    /// `self` is the fused query matrix `(R, d)` with `d = n_heads · hd`;
    /// `k` / `v` share its shape, and head `h` owns the contiguous column
    /// slice `h·hd .. (h+1)·hd` of all three (i.e. the projections were
    /// computed with column-concatenated per-head weights).
    ///
    /// `segments` delimits the packed sequences as `[0, t₁, t₁+t₂, …, R]`;
    /// each sequence attends only within its own row range, so a batch of
    /// B sequences costs Σ tᵢ² instead of the (Σ tᵢ)² a dense score matrix
    /// would. Per (segment, head) the forward computes the classic
    /// `softmax(q @ kᵀ · scale) @ v` chain on that column slice in a fixed
    /// accumulation order, so results are bitwise identical across batch
    /// shapes, head counts, and thread counts (though not to the separate
    /// matmul/softmax op chain, whose kernels associate differently).
    /// Row-softmax probabilities are cached for the backward pass.
    pub fn attention(
        &self,
        k: &Tensor,
        v: &Tensor,
        segments: &[usize],
        n_heads: usize,
        causal: bool,
        scale: f32,
    ) -> Tensor {
        let q_d = self.data();
        let k_d = k.data();
        let v_d = v.data();
        let (rows, d) = (q_d.rows(), q_d.cols());
        assert_eq!((k_d.rows(), k_d.cols()), (rows, d), "attention k shape");
        assert_eq!((v_d.rows(), v_d.cols()), (rows, d), "attention v shape");
        assert!(n_heads >= 1 && d % n_heads == 0, "n_heads must divide width");
        assert!(segments.len() >= 2 && segments[0] == 0, "bad segment offsets");
        assert_eq!(*segments.last().unwrap(), rows, "segments must cover all rows");
        let hd = d / n_heads;

        let mut out = Matrix::zeros(rows, d);
        let mut probs: Vec<Matrix> = Vec::with_capacity((segments.len() - 1) * n_heads);
        for w in segments.windows(2) {
            let (s, e) = (w[0], w[1]);
            assert!(s < e, "empty attention segment");
            let t = e - s;
            for h in 0..n_heads {
                let (cs, ce) = (h * hd, (h + 1) * hd);
                let mut p = Matrix::zeros(t, t);
                for i in 0..t {
                    let qi = &q_d.row(s + i)[cs..ce];
                    let limit = if causal { i + 1 } else { t };
                    let pr = p.row_mut(i);
                    let mut j = 0;
                    while j + 4 <= limit {
                        let d = kcb_ml::linalg::dot4(
                            qi,
                            &k_d.row(s + j)[cs..ce],
                            &k_d.row(s + j + 1)[cs..ce],
                            &k_d.row(s + j + 2)[cs..ce],
                            &k_d.row(s + j + 3)[cs..ce],
                        );
                        for (o, dv) in pr[j..j + 4].iter_mut().zip(d) {
                            *o = dv * scale;
                        }
                        j += 4;
                    }
                    for jj in j..limit {
                        pr[jj] = kcb_ml::linalg::dot(qi, &k_d.row(s + jj)[cs..ce]) * scale;
                    }
                    // In-place row softmax over the unmasked prefix.
                    let max = pr[..limit].iter().cloned().fold(f32::NEG_INFINITY, f32::max);
                    let mut sum = 0.0;
                    for x in &mut pr[..limit] {
                        *x = (*x - max).exp();
                        sum += *x;
                    }
                    for x in &mut pr[..limit] {
                        *x /= sum;
                    }
                }
                for i in 0..t {
                    let limit = if causal { i + 1 } else { t };
                    let or = &mut out.row_mut(s + i)[cs..ce];
                    let pr = p.row(i);
                    // Four attended rows per pass; per output element the
                    // additions stay in ascending-j order, so this matches
                    // one-axpy-per-row bit for bit.
                    let mut j = 0;
                    while j + 4 <= limit {
                        let (p0, p1, p2, p3) = (pr[j], pr[j + 1], pr[j + 2], pr[j + 3]);
                        let v0 = &v_d.row(s + j)[cs..ce];
                        let v1 = &v_d.row(s + j + 1)[cs..ce];
                        let v2 = &v_d.row(s + j + 2)[cs..ce];
                        let v3 = &v_d.row(s + j + 3)[cs..ce];
                        for c in 0..or.len() {
                            or[c] = (((or[c] + p0 * v0[c]) + p1 * v1[c]) + p2 * v2[c])
                                + p3 * v3[c];
                        }
                        j += 4;
                    }
                    for jj in j..limit {
                        if pr[jj] != 0.0 {
                            kcb_ml::linalg::axpy(pr[jj], &v_d.row(s + jj)[cs..ce], or);
                        }
                    }
                }
                probs.push(p);
            }
        }
        drop(q_d);
        drop(k_d);
        drop(v_d);
        let q = self.clone();
        let k = k.clone();
        let v = v.clone();
        let segments_owned: Vec<usize> = segments.to_vec();
        Tensor::from_op(
            out,
            vec![q.clone(), k.clone(), v.clone()],
            Box::new(move |me| {
                let g = me.grad.borrow();
                let q_d = q.data();
                let k_d = k.data();
                let v_d = v.data();
                for (bi, w) in segments_owned.windows(2).enumerate() {
                    let (s, e) = (w[0], w[1]);
                    let t = e - s;
                    for h in 0..n_heads {
                        let (cs, ce) = (h * hd, (h + 1) * hd);
                        let p = &probs[bi * n_heads + h];
                        let mut dq = Matrix::zeros(t, hd);
                        let mut dk = Matrix::zeros(t, hd);
                        let mut dv = Matrix::zeros(t, hd);
                        let mut dp = vec![0.0f32; t];
                        for i in 0..t {
                            let gi = &g.row(s + i)[cs..ce];
                            let pr = p.row(i);
                            // Positions past `limit` hold structural zeros
                            // (the causal mask), not attended rows.
                            let limit = if causal { i + 1 } else { t };
                            // dV += Pᵀ @ G (row i scatters into every attended j).
                            for (j, &pv) in pr[..limit].iter().enumerate() {
                                if pv != 0.0 {
                                    kcb_ml::linalg::axpy(pv, gi, dv.row_mut(j));
                                }
                            }
                            // dP row, then the softmax Jacobian gives dS.
                            dp[limit..].fill(0.0);
                            let mut j = 0;
                            while j + 4 <= limit {
                                let d = kcb_ml::linalg::dot4(
                                    gi,
                                    &v_d.row(s + j)[cs..ce],
                                    &v_d.row(s + j + 1)[cs..ce],
                                    &v_d.row(s + j + 2)[cs..ce],
                                    &v_d.row(s + j + 3)[cs..ce],
                                );
                                dp[j..j + 4].copy_from_slice(&d);
                                j += 4;
                            }
                            for jj in j..limit {
                                dp[jj] = kcb_ml::linalg::dot(gi, &v_d.row(s + jj)[cs..ce]);
                            }
                            let row_dot: f32 =
                                pr[..limit].iter().zip(&dp).map(|(a, b)| a * b).sum();
                            // dQ_i accumulates over j ascending (4 at a time,
                            // association unchanged); dK_j is a scatter.
                            let dqi = dq.row_mut(i);
                            let qi = &q_d.row(s + i)[cs..ce];
                            let ds_at = |j: usize, pv: f32| pv * (dp[j] - row_dot) * scale;
                            let mut j = 0;
                            while j + 4 <= limit {
                                let (s0, s1, s2, s3) = (
                                    ds_at(j, pr[j]),
                                    ds_at(j + 1, pr[j + 1]),
                                    ds_at(j + 2, pr[j + 2]),
                                    ds_at(j + 3, pr[j + 3]),
                                );
                                let k0 = &k_d.row(s + j)[cs..ce];
                                let k1 = &k_d.row(s + j + 1)[cs..ce];
                                let k2 = &k_d.row(s + j + 2)[cs..ce];
                                let k3 = &k_d.row(s + j + 3)[cs..ce];
                                for c in 0..dqi.len() {
                                    dqi[c] = (((dqi[c] + s0 * k0[c]) + s1 * k1[c]) + s2 * k2[c])
                                        + s3 * k3[c];
                                }
                                for (jj, ds) in [(j, s0), (j + 1, s1), (j + 2, s2), (j + 3, s3)] {
                                    if ds != 0.0 {
                                        kcb_ml::linalg::axpy(ds, qi, dk.row_mut(jj));
                                    }
                                }
                                j += 4;
                            }
                            for jj in j..limit {
                                let ds = ds_at(jj, pr[jj]);
                                if ds != 0.0 {
                                    kcb_ml::linalg::axpy(ds, &k_d.row(s + jj)[cs..ce], dqi);
                                    kcb_ml::linalg::axpy(ds, qi, dk.row_mut(jj));
                                }
                            }
                        }
                        q.accum_grad_block(s, cs, &dq);
                        k.accum_grad_block(s, cs, &dk);
                        v.accum_grad_block(s, cs, &dv);
                    }
                }
            }),
        )
    }

    /// Per-row weighted cross-entropy: `Σ_r w_r · CE(logits_r, t_r)`.
    ///
    /// The batched training loops use this to preserve the unbatched
    /// per-sequence-mean loss semantics exactly: a packed batch of B
    /// sequences, where sequence i supervises nᵢ rows, passes
    /// `w = 1 / (nᵢ · B)` for each of its rows so the loss (and therefore
    /// every gradient) equals the mean of per-sequence mean losses.
    pub fn cross_entropy_weighted(&self, targets: &[u32], weights: &[f32]) -> Tensor {
        let logits = self.data();
        assert_eq!(logits.rows(), targets.len(), "logit/target row mismatch");
        assert_eq!(targets.len(), weights.len(), "target/weight mismatch");
        let mut total = 0.0f64;
        let mut probs = Matrix::zeros(logits.rows(), logits.cols());
        for r in 0..logits.rows() {
            let row = logits.row(r);
            let max = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
            let mut sum = 0.0f32;
            for c in 0..row.len() {
                let e = (row[c] - max).exp();
                probs.row_mut(r)[c] = e;
                sum += e;
            }
            for c in 0..row.len() {
                probs.row_mut(r)[c] /= sum;
            }
            let p = probs.row(r)[targets[r] as usize].max(1e-12);
            total -= f64::from(weights[r]) * (p as f64).ln();
        }
        let loss = Matrix::from_vec(vec![total as f32], 1, 1);
        drop(logits);
        let a = self.clone();
        let targets_owned: Vec<u32> = targets.to_vec();
        let weights_owned: Vec<f32> = weights.to_vec();
        Tensor::from_op(
            loss,
            vec![a.clone()],
            Box::new(move |me| {
                let g = me.grad.borrow().get(0, 0);
                let mut d = probs.clone();
                for r in 0..d.rows() {
                    d.row_mut(r)[targets_owned[r] as usize] -= 1.0;
                    let wr = g * weights_owned[r];
                    for v in d.row_mut(r) {
                        *v *= wr;
                    }
                }
                a.accum_grad(&d);
            }),
        )
    }
}

/// Sentinel target id excluded from [`Tensor::cross_entropy`].
pub const IGNORE_TARGET: u32 = u32::MAX;

/// `tanh` of the GELU inner polynomial — shared by forward and backward so
/// the transcendental is evaluated once per element.
fn gelu_tanh(x: f32) -> f32 {
    const C: f32 = 0.797_884_6; // sqrt(2/pi)
    (C * (x + 0.044715 * x * x * x)).tanh()
}

fn gelu_grad_cached(x: f32, t: f32) -> f32 {
    const C: f32 = 0.797_884_6;
    let sech2 = 1.0 - t * t;
    0.5 * (1.0 + t) + 0.5 * x * sech2 * C * (1.0 + 3.0 * 0.044715 * x * x)
}

/// Register-tile height (output rows) for the axpy-form kernels.
const MR: usize = 4;
/// Register-tile width (output cols): 8 f32 = two SSE lanes, small enough
/// that an `MR × NR` accumulator block stays in xmm registers.
const NR: usize = 8;

/// `a (m,k) @ b (k,n)`: row-parallel with an `MR × NR` register-tiled
/// inner kernel. Each output element still accumulates over k in ascending
/// order — identical association to the plain axpy loop — so tiling never
/// perturbs results; it just keeps the accumulators in registers instead
/// of re-streaming the output row once per k. Public so the criterion
/// benches can measure the kernel in isolation.
pub fn matmul_nn(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(a.cols(), b.rows(), "matmul inner dim");
    let (inner, cols) = (a.cols(), b.cols());
    let mut out = Matrix::zeros(a.rows(), cols);
    crate::pool::parallel_row_chunks(out.as_mut_slice(), cols, inner * cols, |first, chunk| {
        let rows = chunk.len() / cols;
        let mut r = 0;
        while r + MR <= rows {
            let ar: [&[f32]; MR] = std::array::from_fn(|i| a.row(first + r + i));
            let mut j = 0;
            while j + NR <= cols {
                let mut acc = [[0.0f32; NR]; MR];
                for k in 0..inner {
                    let bk: &[f32; NR] = b.row(k)[j..j + NR].try_into().expect("NR slice");
                    for (accr, arow) in acc.iter_mut().zip(&ar) {
                        kcb_util::simd::fma_tile8(accr, arow[k], bk);
                    }
                }
                for (i2, accr) in acc.iter().enumerate() {
                    chunk[(r + i2) * cols + j..][..NR].copy_from_slice(accr);
                }
                j += NR;
            }
            if j < cols {
                for (i2, arow) in ar.iter().enumerate() {
                    let or = &mut chunk[(r + i2) * cols + j..(r + i2) * cols + cols];
                    for (k, &av) in arow.iter().enumerate() {
                        kcb_ml::linalg::axpy(av, &b.row(k)[j..], or);
                    }
                }
            }
            r += MR;
        }
        for i2 in r..rows {
            let ar = a.row(first + i2);
            let or = &mut chunk[i2 * cols..(i2 + 1) * cols];
            for (k, &av) in ar.iter().enumerate() {
                kcb_ml::linalg::axpy(av, b.row(k), or);
            }
        }
    });
    out
}

/// `a (m,k) @ bᵀ` for `b (n,k)`: materialises `bᵀ` (b is always the small
/// weight/score operand, so the transpose is negligible next to the
/// product) and runs the register-tiled [`matmul_nn`] kernel on contiguous
/// rows. Accumulation is ascending in k per output element.
pub fn matmul_nt(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(a.cols(), b.cols(), "matmul_nt inner dim");
    let (n, k) = (b.rows(), b.cols());
    let mut bt = Matrix::zeros(k, n);
    {
        let flat = bt.as_mut_slice();
        for r in 0..n {
            for (c, &v) in b.row(r).iter().enumerate() {
                flat[c * n + r] = v;
            }
        }
    }
    matmul_nn(a, &bt)
}

/// `aᵀ @ b` for `a (k,m)`, `b (k,n)`: row-parallel over the `m` output
/// rows with the same `MR × NR` register tiling as [`matmul_nn`] — per
/// tile step the MR "a" values are one contiguous run of a's row k.
/// Accumulation stays ascending in k for every output element.
pub fn matmul_tn(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(a.rows(), b.rows(), "matmul_tn inner dim");
    let (inner, cols, a_cols) = (a.rows(), b.cols(), a.cols());
    let a_flat = a.as_slice();
    let mut out = Matrix::zeros(a.cols(), cols);
    crate::pool::parallel_row_chunks(out.as_mut_slice(), cols, inner * cols, |first, chunk| {
        let rows = chunk.len() / cols;
        let mut r = 0;
        while r + MR <= rows {
            let mut j = 0;
            while j + NR <= cols {
                let mut acc = [[0.0f32; NR]; MR];
                for k in 0..inner {
                    let avs: &[f32; MR] =
                        a_flat[k * a_cols + first + r..][..MR].try_into().expect("MR slice");
                    let bk: &[f32; NR] = b.row(k)[j..j + NR].try_into().expect("NR slice");
                    for (accr, &av) in acc.iter_mut().zip(avs) {
                        kcb_util::simd::fma_tile8(accr, av, bk);
                    }
                }
                for (i2, accr) in acc.iter().enumerate() {
                    chunk[(r + i2) * cols + j..][..NR].copy_from_slice(accr);
                }
                j += NR;
            }
            if j < cols {
                for i2 in 0..MR {
                    let i = first + r + i2;
                    let or = &mut chunk[(r + i2) * cols + j..(r + i2) * cols + cols];
                    for k in 0..inner {
                        kcb_ml::linalg::axpy(a_flat[k * a_cols + i], &b.row(k)[j..], or);
                    }
                }
            }
            r += MR;
        }
        for i2 in r..rows {
            let i = first + i2;
            let or = &mut chunk[i2 * cols..(i2 + 1) * cols];
            for k in 0..inner {
                kcb_ml::linalg::axpy(a_flat[k * a_cols + i], b.row(k), or);
            }
        }
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mat(rows: usize, cols: usize, seed: u64) -> Matrix {
        let mut rng = kcb_util::Rng::seed(seed);
        Matrix::from_vec((0..rows * cols).map(|_| rng.f32_range(-1.0, 1.0)).collect(), rows, cols)
    }

    /// Finite-difference check of d(sum of f(x)) / dx for one leaf.
    fn grad_check(x: Matrix, f: impl Fn(&Tensor) -> Tensor, tol: f32) {
        let leaf = Tensor::leaf(x.clone());
        let out = f(&leaf);
        // Reduce to scalar by chaining into a sum via cross-entropy-free
        // trick: scale-sum using matmul with ones.
        let (orows, ocols) = out.shape();
        let ones = Tensor::leaf(Matrix::from_vec(vec![1.0; ocols], ocols, 1));
        let row_sums = out.matmul(&ones); // (orows, 1)
        let ones2 = Tensor::leaf(Matrix::from_vec(vec![1.0; orows], 1, orows));
        let total = ones2.matmul(&row_sums); // (1,1)
        total.backward();
        let analytic = leaf.grad().clone();

        let eps = 1e-2f32;
        for r in 0..x.rows() {
            for c in 0..x.cols() {
                let mut xp = x.clone();
                xp.row_mut(r)[c] += eps;
                let mut xm = x.clone();
                xm.row_mut(r)[c] -= eps;
                let fp: f32 = f(&Tensor::leaf(xp)).data().as_slice().iter().sum();
                let fm: f32 = f(&Tensor::leaf(xm)).data().as_slice().iter().sum();
                let num = (fp - fm) / (2.0 * eps);
                let ana = analytic.get(r, c);
                assert!(
                    (num - ana).abs() < tol + 0.05 * num.abs(),
                    "grad mismatch at ({r},{c}): numeric {num} vs analytic {ana}"
                );
            }
        }
    }

    #[test]
    fn matmul_values() {
        let a = Tensor::leaf(Matrix::from_rows(vec![vec![1.0, 2.0], vec![3.0, 4.0]]));
        let b = Tensor::leaf(Matrix::from_rows(vec![vec![5.0, 6.0], vec![7.0, 8.0]]));
        let c = a.matmul(&b);
        assert_eq!(c.data().row(0), &[19.0, 22.0]);
        assert_eq!(c.data().row(1), &[43.0, 50.0]);
        let d = a.matmul_t(&b);
        assert_eq!(d.data().row(0), &[17.0, 23.0]);
    }

    #[test]
    fn matmul_grads() {
        grad_check(mat(3, 4, 1), |x| x.matmul(&Tensor::leaf(mat(4, 2, 2))), 1e-2);
        grad_check(mat(3, 4, 3), |x| x.matmul_t(&Tensor::leaf(mat(5, 4, 4))), 1e-2);
    }

    #[test]
    fn add_and_bias_grads() {
        grad_check(mat(3, 4, 5), |x| x.add(&Tensor::leaf(mat(3, 4, 6))), 1e-2);
        grad_check(mat(3, 4, 7), |x| x.add_row(&Tensor::leaf(mat(1, 4, 8))), 1e-2);
        grad_check(mat(2, 3, 9), |x| x.scale(2.5), 1e-2);
    }

    #[test]
    fn gelu_grad_matches() {
        grad_check(mat(3, 3, 10), |x| x.gelu(), 2e-2);
    }

    #[test]
    fn softmax_rows_sums_to_one_and_grad() {
        let t = Tensor::leaf(mat(4, 4, 11));
        let s = t.softmax_rows(false);
        for r in 0..4 {
            let sum: f32 = s.data().row(r).iter().sum();
            assert!((sum - 1.0).abs() < 1e-5);
        }
        // Softmax grad: check through a weighting matmul so the sum isn't
        // trivially constant.
        let w = mat(4, 4, 99);
        grad_check(mat(4, 4, 12), |x| {
            x.softmax_rows(false).matmul(&Tensor::leaf(w.clone()))
        }, 2e-2);
    }

    #[test]
    fn causal_softmax_masks_future() {
        let t = Tensor::leaf(mat(3, 3, 13));
        let s = t.softmax_rows(true);
        let d = s.data();
        assert_eq!(d.get(0, 1), 0.0);
        assert_eq!(d.get(0, 2), 0.0);
        assert_eq!(d.get(1, 2), 0.0);
        assert!((d.get(0, 0) - 1.0).abs() < 1e-6);
        let sum1: f32 = d.row(1).iter().sum();
        assert!((sum1 - 1.0).abs() < 1e-5);
    }

    #[test]
    fn layer_norm_normalises_and_grad() {
        let gamma = Tensor::leaf(Matrix::from_vec(vec![1.0; 5], 1, 5));
        let beta = Tensor::leaf(Matrix::from_vec(vec![0.0; 5], 1, 5));
        let x = Tensor::leaf(mat(3, 5, 14));
        let y = x.layer_norm(&gamma, &beta);
        for r in 0..3 {
            let row = y.data().row(r).to_vec();
            let mean: f32 = row.iter().sum::<f32>() / 5.0;
            let var: f32 = row.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / 5.0;
            assert!(mean.abs() < 1e-5, "mean {mean}");
            assert!((var - 1.0).abs() < 1e-3, "var {var}");
        }
        let w = mat(5, 3, 98);
        grad_check(mat(3, 5, 15), |x| {
            let g = Tensor::leaf(Matrix::from_vec(vec![0.7, 1.3, 0.9, 1.1, 1.0], 1, 5));
            let b = Tensor::leaf(Matrix::from_vec(vec![0.1; 5], 1, 5));
            x.layer_norm(&g, &b).matmul(&Tensor::leaf(w.clone()))
        }, 3e-2);
    }

    #[test]
    fn gather_and_select_grads_scatter() {
        let table = Tensor::leaf(mat(6, 3, 16));
        let out = table.gather(&[2, 2, 5]);
        assert_eq!(out.data().row(0), out.data().row(1));
        let ones = Tensor::leaf(Matrix::from_vec(vec![1.0; 3], 3, 1));
        let s = out.matmul(&ones);
        let ones2 = Tensor::leaf(Matrix::from_vec(vec![1.0; 3], 1, 3));
        ones2.matmul(&s).backward();
        let g = table.grad();
        // Row 2 gathered twice → grad 2, row 5 once → grad 1, others 0.
        assert_eq!(g.row(2), &[2.0, 2.0, 2.0]);
        assert_eq!(g.row(5), &[1.0, 1.0, 1.0]);
        assert_eq!(g.row(0), &[0.0, 0.0, 0.0]);
    }

    #[test]
    fn cross_entropy_matches_manual() {
        // Two rows, uniform logits → loss = ln(3).
        let logits = Tensor::leaf(Matrix::zeros(2, 3));
        let loss = logits.cross_entropy(&[0, 2]);
        assert!((loss.data().get(0, 0) - 3.0f32.ln()).abs() < 1e-5);
        loss.backward();
        let g = logits.grad();
        // grad = (softmax - onehot)/2 → (1/3 - 1)/2 at targets.
        assert!((g.get(0, 0) - (1.0 / 3.0 - 1.0) / 2.0).abs() < 1e-5);
        assert!((g.get(0, 1) - (1.0 / 3.0) / 2.0).abs() < 1e-5);
    }

    #[test]
    fn cross_entropy_ignores_masked_positions() {
        let logits = Tensor::leaf(mat(3, 4, 17));
        let loss = logits.cross_entropy(&[1, IGNORE_TARGET, 3]);
        loss.backward();
        let g = logits.grad();
        assert!(g.row(1).iter().all(|&v| v == 0.0), "masked row must get no grad");
        assert!(g.row(0).iter().any(|&v| v != 0.0));
    }

    #[test]
    fn attention_single_segment_matches_op_chain() {
        // The fused op must reproduce softmax(q kᵀ · s) @ v for one
        // segment, causal and not. The two paths accumulate their dot
        // products in different (but each fixed) orders, so equality is up
        // to a few ULPs rather than bitwise.
        for causal in [false, true] {
            let q = Tensor::leaf(mat(5, 4, 20));
            let k = Tensor::leaf(mat(5, 4, 21));
            let v = Tensor::leaf(mat(5, 4, 22));
            let fused = q.attention(&k, &v, &[0, 5], 1, causal, 0.5);
            let chain = q.matmul_t(&k).scale(0.5).softmax_rows(causal).matmul(&v);
            for (a, b) in fused.data().as_slice().iter().zip(chain.data().as_slice()) {
                assert!((a - b).abs() < 1e-6, "causal={causal}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn attention_blocks_are_independent() {
        // A packed pair of sequences must equal the two single-sequence
        // results stacked: no cross-segment leakage.
        let q = Tensor::leaf(mat(7, 4, 23));
        let k = Tensor::leaf(mat(7, 4, 24));
        let v = Tensor::leaf(mat(7, 4, 25));
        let packed = q.attention(&k, &v, &[0, 3, 7], 1, false, 0.7);
        let take = |t: &Tensor, rows: std::ops::Range<usize>| {
            Tensor::leaf(Matrix::from_rows(rows.map(|r| t.data().row(r).to_vec())))
        };
        let first =
            take(&q, 0..3).attention(&take(&k, 0..3), &take(&v, 0..3), &[0, 3], 1, false, 0.7);
        let second =
            take(&q, 3..7).attention(&take(&k, 3..7), &take(&v, 3..7), &[0, 4], 1, false, 0.7);
        for r in 0..3 {
            assert_eq!(packed.data().row(r), first.data().row(r));
        }
        for r in 0..4 {
            assert_eq!(packed.data().row(3 + r), second.data().row(r));
        }
    }

    #[test]
    fn attention_multi_head_matches_per_head_slices() {
        // Fused two-head attention on a (R, 6) matrix must equal two
        // independent one-head calls on the (R, 3) column slices — forward
        // AND gradients, bitwise (same per-head arithmetic either way).
        let qm = mat(5, 6, 40);
        let km = mat(5, 6, 41);
        let vm = mat(5, 6, 42);
        let cols = |m: &Matrix, r: std::ops::Range<usize>| {
            Matrix::from_rows((0..m.rows()).map(|i| m.row(i)[r.clone()].to_vec()))
        };
        let q = Tensor::leaf(qm.clone());
        let k = Tensor::leaf(km.clone());
        let v = Tensor::leaf(vm.clone());
        let fused = q.attention(&k, &v, &[0, 2, 5], 2, false, 0.4);
        let ones = Tensor::leaf(Matrix::from_vec(vec![1.0; 6], 6, 1));
        let rows1 = Tensor::leaf(Matrix::from_vec(vec![1.0; 5], 1, 5));
        rows1.matmul(&fused.matmul(&ones)).backward();
        for h in 0..2 {
            let (cs, ce) = (h * 3, h * 3 + 3);
            let qh = Tensor::leaf(cols(&qm, cs..ce));
            let kh = Tensor::leaf(cols(&km, cs..ce));
            let vh = Tensor::leaf(cols(&vm, cs..ce));
            let single = qh.attention(&kh, &vh, &[0, 2, 5], 1, false, 0.4);
            for r in 0..5 {
                assert_eq!(&fused.data().row(r)[cs..ce], single.data().row(r), "head {h} row {r}");
            }
            let ones3 = Tensor::leaf(Matrix::from_vec(vec![1.0; 3], 3, 1));
            let rows1b = Tensor::leaf(Matrix::from_vec(vec![1.0; 5], 1, 5));
            rows1b.matmul(&single.matmul(&ones3)).backward();
            for (t, th) in [(&q, &qh), (&k, &kh), (&v, &vh)] {
                for r in 0..5 {
                    assert_eq!(
                        &t.grad().row(r)[cs..ce],
                        th.grad().row(r),
                        "head {h} grad row {r}"
                    );
                }
            }
        }
    }

    #[test]
    fn attention_grads_match_op_chain() {
        // Same graph two ways; all three inputs must receive identical
        // gradients (up to float noise from differing accumulation order).
        let qm = mat(6, 3, 26);
        let km = mat(6, 3, 27);
        let vm = mat(6, 3, 28);
        let run = |fused: bool| -> Vec<Matrix> {
            let q = Tensor::leaf(qm.clone());
            let k = Tensor::leaf(km.clone());
            let v = Tensor::leaf(vm.clone());
            let out = if fused {
                q.attention(&k, &v, &[0, 2, 6], 1, false, 0.6)
            } else {
                // Two separate single-segment chains stacked via select.
                let sel = |t: &Tensor, rows: &[usize]| t.select_rows(rows);
                let a = sel(&q, &[0, 1])
                    .matmul_t(&sel(&k, &[0, 1]))
                    .scale(0.6)
                    .softmax_rows(false)
                    .matmul(&sel(&v, &[0, 1]));
                let b = sel(&q, &[2, 3, 4, 5])
                    .matmul_t(&sel(&k, &[2, 3, 4, 5]))
                    .scale(0.6)
                    .softmax_rows(false)
                    .matmul(&sel(&v, &[2, 3, 4, 5]));
                // Reduce each to the same scalar sum as the fused path.
                let ones3 = Tensor::leaf(Matrix::from_vec(vec![1.0; 3], 3, 1));
                let oa = Tensor::leaf(Matrix::from_vec(vec![1.0; 2], 1, 2))
                    .matmul(&a.matmul(&ones3));
                let ob = Tensor::leaf(Matrix::from_vec(vec![1.0; 4], 1, 4))
                    .matmul(&b.matmul(&ones3));
                oa.add(&ob).backward();
                let grads = vec![q.grad().clone(), k.grad().clone(), v.grad().clone()];
                return grads;
            };
            let ones3 = Tensor::leaf(Matrix::from_vec(vec![1.0; 3], 3, 1));
            let ones6 = Tensor::leaf(Matrix::from_vec(vec![1.0; 6], 1, 6));
            ones6.matmul(&out.matmul(&ones3)).backward();
            let grads = vec![q.grad().clone(), k.grad().clone(), v.grad().clone()];
            grads
        };
        let fused = run(true);
        let chain = run(false);
        for (name, (f, c)) in ["q", "k", "v"].iter().zip(fused.iter().zip(&chain)) {
            for r in 0..6 {
                for col in 0..3 {
                    assert!(
                        (f.get(r, col) - c.get(r, col)).abs() < 1e-4,
                        "d{name} mismatch at ({r},{col}): {} vs {}",
                        f.get(r, col),
                        c.get(r, col)
                    );
                }
            }
        }
    }

    #[test]
    fn weighted_ce_matches_uniform_mean() {
        // With w_r = 1/n the weighted loss and grads equal cross_entropy.
        let m = mat(4, 5, 29);
        let targets = [1u32, 0, 4, 2];
        let a = Tensor::leaf(m.clone());
        let la = a.cross_entropy(&targets);
        la.backward();
        let b = Tensor::leaf(m);
        let lb = b.cross_entropy_weighted(&targets, &[0.25; 4]);
        lb.backward();
        assert!((la.data().get(0, 0) - lb.data().get(0, 0)).abs() < 1e-6);
        for r in 0..4 {
            for c in 0..5 {
                assert!((a.grad().get(r, c) - b.grad().get(r, c)).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn weighted_ce_respects_per_row_weights() {
        // Doubling one row's weight doubles its gradient contribution.
        let m = mat(2, 3, 30);
        let t = Tensor::leaf(m);
        let loss = t.cross_entropy_weighted(&[0, 2], &[0.2, 0.8]);
        loss.backward();
        let g = t.grad();
        // Row sums of |grad| scale with the weights.
        let s0: f32 = g.row(0).iter().map(|v| v.abs()).sum();
        let s1: f32 = g.row(1).iter().map(|v| v.abs()).sum();
        assert!(s1 > s0, "heavier row must dominate: {s0} vs {s1}");
    }

    #[test]
    fn shared_parameter_accumulates_from_both_uses() {
        // y = x @ w + x @ w — dw should be twice the single-use grad.
        let x = Tensor::leaf(mat(2, 3, 18));
        let w = Tensor::leaf(mat(3, 2, 19));
        let y = x.matmul(&w).add(&x.matmul(&w));
        let ones = Tensor::leaf(Matrix::from_vec(vec![1.0; 2], 2, 1));
        let ones2 = Tensor::leaf(Matrix::from_vec(vec![1.0; 2], 1, 2));
        ones2.matmul(&y.matmul(&ones)).backward();
        let g2 = w.grad().clone();
        let x2 = Tensor::leaf(x.data().clone());
        let w2 = Tensor::leaf(w.data().clone());
        let y2 = x2.matmul(&w2);
        let ones = Tensor::leaf(Matrix::from_vec(vec![1.0; 2], 2, 1));
        let ones2 = Tensor::leaf(Matrix::from_vec(vec![1.0; 2], 1, 2));
        ones2.matmul(&y2.matmul(&ones)).backward();
        let g1 = w2.grad();
        for r in 0..3 {
            for c in 0..2 {
                assert!((g2.get(r, c) - 2.0 * g1.get(r, c)).abs() < 1e-5);
            }
        }
    }
}
