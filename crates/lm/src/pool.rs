//! Row-parallel execution for the dense LM kernels.
//!
//! The tensor matmuls split their *output rows* across a crossbeam
//! scoped-thread worker pool: each output row is written by exactly one
//! worker, and every per-element accumulation runs in the same (k-ascending)
//! order regardless of the worker layout, so results are **bitwise
//! identical at any thread count** — `--threads` changes wall-clock only,
//! never artifacts. This mirrors the forest's per-tree decomposition in
//! `kcb-ml` (one slot per unit of work, `chunks_mut` for disjoint writes).
//!
//! The pool size is a process-wide setting ([`set_threads`]); benches and
//! determinism tests pin it temporarily with the RAII [`ThreadsGuard`]
//! (DESIGN §5's guard idiom). Small kernels stay on the calling thread:
//! below [`MIN_PARALLEL_FLOPS`] the scoped-spawn overhead (~10–20 µs per
//! worker) would outweigh the work, which keeps single-sequence forwards
//! serial while batched training steps fan out. The effective fan-out is
//! further clamped at the machine's available parallelism — requesting
//! more workers than cores cannot speed up a compute-bound kernel, and
//! because outputs never depend on the worker count the clamp is
//! invisible in the artifacts.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Work threshold (≈ multiply-adds) below which kernels run serially.
pub const MIN_PARALLEL_FLOPS: usize = 1 << 18;

/// 0 = "not set yet" → resolve from available parallelism on first read.
static THREADS: AtomicUsize = AtomicUsize::new(0);

/// Upper bound mirroring `RandomForestConfig`'s default cap.
const MAX_DEFAULT_THREADS: usize = 16;

/// Sets the pool size for all subsequent LM kernels (min 1).
pub fn set_threads(n: usize) {
    THREADS.store(n.max(1), Ordering::Relaxed);
}

/// Current pool size; defaults to available parallelism capped at 16.
pub fn threads() -> usize {
    match THREADS.load(Ordering::Relaxed) {
        0 => std::thread::available_parallelism()
            .map(|n| n.get().min(MAX_DEFAULT_THREADS))
            .unwrap_or(1),
        n => n,
    }
}

/// Available hardware parallelism, resolved once per process.
fn hardware_threads() -> usize {
    static HW: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *HW.get_or_init(|| std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1))
}

/// RAII guard: pins the pool size, restoring the previous setting on drop.
/// Used by determinism tests and benches to compare thread counts without
/// leaking the setting into other tests in the same process.
pub struct ThreadsGuard {
    previous: usize,
}

impl ThreadsGuard {
    /// Pins the pool to `n` threads until the guard drops.
    pub fn new(n: usize) -> Self {
        let previous = THREADS.swap(n.max(1), Ordering::Relaxed);
        Self { previous }
    }
}

impl Drop for ThreadsGuard {
    fn drop(&mut self) {
        THREADS.store(self.previous, Ordering::Relaxed);
    }
}

/// Runs `f` over disjoint contiguous row chunks of a row-major buffer.
///
/// `f(first_row, chunk)` receives the index of the chunk's first row and
/// the mutable chunk (`chunk.len()` is a multiple of `cols`). Row count ×
/// `flops_per_row` decides serial vs parallel; the serial path is a single
/// `f(0, data)` call, so a kernel's output cannot depend on chunk layout
/// as long as each row is computed independently.
pub fn parallel_row_chunks<F>(data: &mut [f32], cols: usize, flops_per_row: usize, f: F)
where
    F: Fn(usize, &mut [f32]) + Sync,
{
    if data.is_empty() || cols == 0 {
        return;
    }
    let rows = data.len() / cols;
    // Oversubscribing the hardware buys nothing here — the pool is a
    // scoped spawn per kernel call, so each extra worker is an extra stack
    // map + join for the same serial core time. Results are bitwise
    // identical at any worker count, so the fan-out can be clamped freely.
    let workers = threads().min(rows).min(hardware_threads());
    if workers <= 1 || rows.saturating_mul(flops_per_row) < MIN_PARALLEL_FLOPS {
        f(0, data);
        return;
    }
    let chunk_rows = rows.div_ceil(workers);
    crossbeam::thread::scope(|s| {
        for (ci, chunk) in data.chunks_mut(chunk_rows * cols).enumerate() {
            let f = &f;
            s.spawn(move |_| f(ci * chunk_rows, chunk));
        }
    })
    .expect("pool worker panicked");
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serializes tests that touch the process-global pool size.
    static TEST_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    fn test_lock() -> std::sync::MutexGuard<'static, ()> {
        TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn serial_and_parallel_chunks_cover_all_rows_once() {
        let _lock = test_lock();
        let cols = 8;
        for n_threads in [1, 3, 4, 7] {
            let _guard = ThreadsGuard::new(n_threads);
            let mut data = vec![0.0f32; 100 * cols];
            // Force the parallel path with a huge per-row weight.
            parallel_row_chunks(&mut data, cols, MIN_PARALLEL_FLOPS, |first, chunk| {
                for (j, row) in chunk.chunks_mut(cols).enumerate() {
                    for v in row.iter_mut() {
                        *v += (first + j) as f32;
                    }
                }
            });
            for (i, row) in data.chunks(cols).enumerate() {
                assert!(row.iter().all(|&v| v == i as f32), "row {i} under threads {n_threads}");
            }
        }
    }

    #[test]
    fn small_work_stays_serial() {
        let _lock = test_lock();
        let _guard = ThreadsGuard::new(4);
        let mut data = vec![0.0f32; 4 * 4];
        let mut hit_first = Vec::new();
        // Capture chunk starts through a lock-free trick: encode in data.
        parallel_row_chunks(&mut data, 4, 1, |first, chunk| {
            chunk[0] = (first + 1) as f32;
        });
        for (i, row) in data.chunks(4).enumerate() {
            if row[0] != 0.0 {
                hit_first.push((i, row[0]));
            }
        }
        // Serial path = one chunk starting at row 0.
        assert_eq!(hit_first, vec![(0, 1.0)]);
    }

    #[test]
    fn threads_guard_restores_previous_value() {
        let _lock = test_lock();
        let _outer = ThreadsGuard::new(5);
        {
            let _g = ThreadsGuard::new(2);
            assert_eq!(threads(), 2);
        }
        assert_eq!(threads(), 5);
    }
}
