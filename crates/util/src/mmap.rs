//! Memory-mapped, lazily checksum-verified raw `f32` payloads.
//!
//! This module (with [`crate::signal`]) is one of the only two in the
//! workspace permitted to use `unsafe`: a minimal `mmap(2)` FFI binding
//! plus the one pointer cast that reinterprets an aligned byte range as
//! `&[f32]`. Everything above it — container framing, stripe bookkeeping,
//! fallbacks — is safe code.
//!
//! The design has three pieces:
//!
//! * [`Mmap`] — a read-only private file mapping (munmap'd on drop). On
//!   non-Unix targets the type still exists but construction fails, so
//!   callers fall back to owned bytes.
//! * [`RawSection`] — a window into mapped-or-owned bytes carrying FNV-64
//!   checksums per 4096-byte stripe. Checksums are verified *lazily*: the
//!   first borrow that overlaps a stripe pays for hashing it, later borrows
//!   of the same stripe are free. A warm start therefore only hashes the
//!   stripes it actually touches.
//! * [`SharedF32`] — a cheaply clonable `&[f32]` view that either borrows
//!   the mapping in place (zero copy, alignment pre-checked) or owns a
//!   decoded `Vec<f32>` (the fallback for unaligned/legacy payloads).
//!
//! Bit-compatibility: an f32 slice borrowed from a mapping and one decoded
//! element-wise from the same LE bytes are identical on little-endian
//! targets; on big-endian targets [`RawSection::f32s`] always decodes, so
//! results never depend on which path ran.

use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use crate::error::{Error, Result};
use crate::fnv1a;

/// Stripe size for lazy checksum verification — one page.
pub const STRIPE: usize = 4096;

/// Read-only private memory mapping of a whole file.
///
/// Lives behind an `Arc` inside [`RawSection`]/[`SharedF32`]; the mapping
/// (and thus every borrowed slice) stays valid until the last clone drops.
pub struct Mmap {
    ptr: *const u8,
    len: usize,
}

// SAFETY: the mapping is PROT_READ/MAP_PRIVATE and never mutated or remapped
// after construction; sharing immutable bytes across threads is sound.
#[allow(unsafe_code)]
unsafe impl Send for Mmap {}
#[allow(unsafe_code)]
unsafe impl Sync for Mmap {}

#[cfg(unix)]
#[allow(unsafe_code)]
mod sys {
    use std::os::unix::io::AsRawFd;

    // Minimal libc surface; std already links libc on every Unix target.
    extern "C" {
        fn mmap(
            addr: *mut core::ffi::c_void,
            len: usize,
            prot: i32,
            flags: i32,
            fd: i32,
            offset: i64,
        ) -> *mut core::ffi::c_void;
        fn munmap(addr: *mut core::ffi::c_void, len: usize) -> i32;
    }

    const PROT_READ: i32 = 1;
    const MAP_PRIVATE: i32 = 2;
    const MAP_FAILED: isize = -1;

    /// Maps `len` bytes of `file` read-only. `len` must be non-zero and no
    /// larger than the file (enforced by the caller via metadata).
    pub fn map(file: &std::fs::File, len: usize) -> Option<*const u8> {
        // SAFETY: fd is valid for the duration of the call (borrowed from an
        // open File); a fresh PROT_READ/MAP_PRIVATE mapping aliases nothing.
        let ptr = unsafe {
            mmap(std::ptr::null_mut(), len, PROT_READ, MAP_PRIVATE, file.as_raw_fd(), 0)
        };
        if ptr as isize == MAP_FAILED {
            None
        } else {
            Some(ptr as *const u8)
        }
    }

    /// Unmaps a region previously returned by [`map`].
    pub fn unmap(ptr: *const u8, len: usize) {
        // SAFETY: (ptr, len) came from a successful map() and is unmapped
        // exactly once (Mmap::drop).
        unsafe {
            munmap(ptr as *mut core::ffi::c_void, len);
        }
    }
}

impl Mmap {
    /// Maps `path` read-only. Errors if the platform has no mmap, the file
    /// is empty, or the syscall fails — callers then fall back to `fs::read`.
    pub fn open(path: &Path) -> Result<Self> {
        #[cfg(unix)]
        {
            let file = std::fs::File::open(path).map_err(Error::Io)?;
            let len = file.metadata().map_err(Error::Io)?.len() as usize;
            if len == 0 {
                return Err(Error::parse("mmap", "refusing to map empty file"));
            }
            match sys::map(&file, len) {
                Some(ptr) => Ok(Self { ptr, len }),
                None => Err(Error::parse("mmap", format!("mmap failed for {}", path.display()))),
            }
        }
        #[cfg(not(unix))]
        {
            let _ = path;
            Err(Error::parse("mmap", "mmap unsupported on this platform"))
        }
    }

    /// Mapped length in bytes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when nothing is mapped (never constructed this way).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The mapped bytes.
    #[allow(unsafe_code)]
    pub fn bytes(&self) -> &[u8] {
        // SAFETY: (ptr, len) is a live read-only mapping owned by self.
        unsafe { std::slice::from_raw_parts(self.ptr, self.len) }
    }
}

impl Drop for Mmap {
    fn drop(&mut self) {
        #[cfg(unix)]
        sys::unmap(self.ptr, self.len);
    }
}

impl std::fmt::Debug for Mmap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Mmap").field("len", &self.len).finish()
    }
}

enum F32Source {
    Map(Arc<Mmap>),
    Vec(Arc<Vec<f32>>),
}

impl Clone for F32Source {
    fn clone(&self) -> Self {
        match self {
            F32Source::Map(m) => F32Source::Map(Arc::clone(m)),
            F32Source::Vec(v) => F32Source::Vec(Arc::clone(v)),
        }
    }
}

/// Cheaply clonable `f32` slice that either borrows a memory mapping in
/// place or owns decoded data. `as_slice` is the only accessor; equality and
/// bits are identical between the two sources.
#[derive(Clone)]
pub struct SharedF32 {
    src: F32Source,
    /// Byte offset of the first element (Map) or element offset (Vec).
    off: usize,
    len: usize,
}

impl SharedF32 {
    /// Wraps an owned vector (the decode-path fallback).
    pub fn from_vec(v: Vec<f32>) -> Self {
        let len = v.len();
        Self { src: F32Source::Vec(Arc::new(v)), off: 0, len }
    }

    /// Borrows `len` f32s starting `byte_off` into the mapping. Errors when
    /// the range is out of bounds or not 4-byte aligned — the caller then
    /// decodes instead. Only meaningful on little-endian targets; the
    /// container layer guards that.
    fn from_map(map: Arc<Mmap>, byte_off: usize, len: usize) -> Result<Self> {
        let end = byte_off
            .checked_add(len.checked_mul(4).ok_or_else(|| Error::parse("mmap", "f32 range overflow"))?)
            .ok_or_else(|| Error::parse("mmap", "f32 range overflow"))?;
        if end > map.len() {
            return Err(Error::parse("mmap", "f32 range out of bounds"));
        }
        let addr = map.bytes()[byte_off..].as_ptr() as usize;
        if !addr.is_multiple_of(std::mem::align_of::<f32>()) {
            return Err(Error::parse("mmap", "f32 range misaligned"));
        }
        Ok(Self { src: F32Source::Map(map), off: byte_off, len })
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the view is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The elements. Zero-copy when backed by a mapping.
    #[allow(unsafe_code)]
    pub fn as_slice(&self) -> &[f32] {
        match &self.src {
            F32Source::Vec(v) => &v[self.off..self.off + self.len],
            F32Source::Map(m) => {
                let bytes = &m.bytes()[self.off..self.off + self.len * 4];
                // SAFETY: range validity and 4-byte alignment were checked in
                // from_map; the mapping is immutable and outlives self; any
                // bit pattern is a valid f32.
                unsafe { std::slice::from_raw_parts(bytes.as_ptr() as *const f32, self.len) }
            }
        }
    }
}

impl std::fmt::Debug for SharedF32 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let kind = match &self.src {
            F32Source::Map(_) => "map",
            F32Source::Vec(_) => "vec",
        };
        f.debug_struct("SharedF32").field("src", &kind).field("len", &self.len).finish()
    }
}

enum RawBacking {
    Map(Arc<Mmap>),
    Owned(Vec<u8>),
}

/// Window of raw bytes (mapped or owned) holding packed LE `f32`s, verified
/// lazily per [`STRIPE`]-sized stripe against FNV-64 checksums recorded at
/// write time.
pub struct RawSection {
    backing: RawBacking,
    raw_off: usize,
    raw_len: usize,
    stripe_sums: Vec<u64>,
    verified: Vec<AtomicBool>,
}

impl RawSection {
    fn validate(raw_off: usize, raw_len: usize, total: usize, stripe_sums: &[u64]) -> Result<()> {
        let end = raw_off
            .checked_add(raw_len)
            .ok_or_else(|| Error::parse("raw-section", "range overflow"))?;
        if end > total {
            return Err(Error::parse("raw-section", "raw range out of bounds"));
        }
        let stripes = raw_len.div_ceil(STRIPE);
        if stripes != stripe_sums.len() {
            return Err(Error::parse(
                "raw-section",
                format!("stripe table has {} entries, expected {stripes}", stripe_sums.len()),
            ));
        }
        Ok(())
    }

    /// Raw section borrowed from a mapping.
    pub fn from_map(map: Arc<Mmap>, raw_off: usize, raw_len: usize, stripe_sums: Vec<u64>) -> Result<Self> {
        Self::validate(raw_off, raw_len, map.len(), &stripe_sums)?;
        let verified = (0..stripe_sums.len()).map(|_| AtomicBool::new(false)).collect();
        Ok(Self { backing: RawBacking::Map(map), raw_off, raw_len, stripe_sums, verified })
    }

    /// Raw section over owned file bytes (the `--no-mmap` / non-Unix path).
    pub fn from_owned(bytes: Vec<u8>, raw_off: usize, raw_len: usize, stripe_sums: Vec<u64>) -> Result<Self> {
        Self::validate(raw_off, raw_len, bytes.len(), &stripe_sums)?;
        let verified = (0..stripe_sums.len()).map(|_| AtomicBool::new(false)).collect();
        Ok(Self { backing: RawBacking::Owned(bytes), raw_off, raw_len, stripe_sums, verified })
    }

    /// Length of the raw payload in bytes.
    pub fn len(&self) -> usize {
        self.raw_len
    }

    /// True when the payload is empty.
    pub fn is_empty(&self) -> bool {
        self.raw_len == 0
    }

    fn raw_bytes(&self) -> &[u8] {
        let all = match &self.backing {
            RawBacking::Map(m) => m.bytes(),
            RawBacking::Owned(b) => b.as_slice(),
        };
        &all[self.raw_off..self.raw_off + self.raw_len]
    }

    /// Verifies every stripe overlapping `[start, end)` bytes of the payload
    /// that has not been verified yet. Errors on the first mismatch.
    fn verify_range(&self, start: usize, end: usize) -> Result<()> {
        let raw = self.raw_bytes();
        let first = start / STRIPE;
        let last = end.div_ceil(STRIPE).min(self.stripe_sums.len());
        for s in first..last {
            if self.verified[s].load(Ordering::Acquire) {
                continue;
            }
            let lo = s * STRIPE;
            let hi = ((s + 1) * STRIPE).min(self.raw_len);
            if fnv1a(&raw[lo..hi]) != self.stripe_sums[s] {
                return Err(Error::parse(
                    "raw-section",
                    format!("stripe {s} checksum mismatch (bytes {lo}..{hi})"),
                ));
            }
            self.verified[s].store(true, Ordering::Release);
        }
        Ok(())
    }

    /// Borrows `n` f32s starting at element offset `elem_off`, verifying the
    /// overlapped stripes first. Zero-copy when the backing is a mapping,
    /// the range is aligned, and the target is little-endian; otherwise the
    /// elements are decoded into an owned buffer with identical bits.
    pub fn f32s(&self, elem_off: usize, n: usize) -> Result<SharedF32> {
        let start = elem_off
            .checked_mul(4)
            .ok_or_else(|| Error::parse("raw-section", "element offset overflow"))?;
        let end = start
            .checked_add(n.checked_mul(4).ok_or_else(|| Error::parse("raw-section", "element count overflow"))?)
            .ok_or_else(|| Error::parse("raw-section", "element range overflow"))?;
        if end > self.raw_len {
            return Err(Error::parse(
                "raw-section",
                format!("f32 range {start}..{end} exceeds payload of {} bytes", self.raw_len),
            ));
        }
        self.verify_range(start, end)?;
        if cfg!(target_endian = "little") {
            if let RawBacking::Map(m) = &self.backing {
                if let Ok(s) = SharedF32::from_map(Arc::clone(m), self.raw_off + start, n) {
                    return Ok(s);
                }
            }
        }
        // Decode fallback: owned backing, misalignment, or big-endian.
        let bytes = &self.raw_bytes()[start..end];
        let mut v = Vec::with_capacity(n);
        for ch in bytes.chunks_exact(4) {
            v.push(f32::from_le_bytes(ch.try_into().expect("4 bytes")));
        }
        Ok(SharedF32::from_vec(v))
    }

    /// True when the section borrows a memory mapping (diagnostics only).
    pub fn is_mapped(&self) -> bool {
        matches!(self.backing, RawBacking::Map(_))
    }
}

/// Packs f32 slices into raw LE bytes plus the per-stripe checksum table —
/// the write-side counterpart of [`RawSection`]. Cold path only.
pub fn pack_f32s(parts: &[&[f32]]) -> (Vec<u8>, Vec<u64>) {
    let total: usize = parts.iter().map(|p| p.len() * 4).sum();
    let mut bytes = Vec::with_capacity(total);
    for part in parts {
        for v in *part {
            bytes.extend_from_slice(&v.to_le_bytes());
        }
    }
    let sums = bytes.chunks(STRIPE).map(fnv1a).collect();
    (bytes, sums)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn payload(n: usize) -> Vec<f32> {
        (0..n).map(|i| (i as f32 * 0.73).sin()).collect()
    }

    #[test]
    fn pack_then_owned_round_trip() {
        let a = payload(1500); // > one stripe of f32s
        let b = payload(7);
        let (bytes, sums) = pack_f32s(&[&a, &b]);
        assert_eq!(bytes.len(), (a.len() + b.len()) * 4);
        let sec = RawSection::from_owned(bytes, 0, (a.len() + b.len()) * 4, sums).unwrap();
        let ra = sec.f32s(0, a.len()).unwrap();
        let rb = sec.f32s(a.len(), b.len()).unwrap();
        assert_eq!(ra.as_slice(), a.as_slice());
        assert_eq!(rb.as_slice(), b.as_slice());
    }

    #[test]
    fn corrupt_stripe_is_detected_lazily() {
        let a = payload(3000); // spans 3 stripes
        let (mut bytes, sums) = pack_f32s(&[&a]);
        let len = bytes.len();
        bytes[STRIPE + 10] ^= 0x40; // corrupt stripe 1 only
        let sec = RawSection::from_owned(bytes, 0, len, sums).unwrap();
        // Stripe 0 alone still verifies.
        assert!(sec.f32s(0, 100).unwrap().as_slice().len() == 100);
        // Any range overlapping stripe 1 fails.
        assert!(sec.f32s(0, a.len()).is_err());
        assert!(sec.f32s(STRIPE / 4, 100).is_err());
    }

    #[test]
    fn out_of_bounds_and_bad_stripe_table_reject() {
        let a = payload(10);
        let (bytes, sums) = pack_f32s(&[&a]);
        let sec = RawSection::from_owned(bytes.clone(), 0, bytes.len(), sums.clone()).unwrap();
        assert!(sec.f32s(0, 11).is_err());
        assert!(sec.f32s(10, 1).is_err());
        assert!(RawSection::from_owned(bytes.clone(), 0, bytes.len(), vec![]).is_err());
        assert!(RawSection::from_owned(bytes, 8, usize::MAX, vec![0]).is_err());
    }

    #[cfg(unix)]
    #[test]
    fn mmap_backed_section_matches_owned() {
        let dir = std::env::temp_dir().join(format!("kcb-mmap-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("payload.bin");
        let a = payload(2500);
        let (bytes, sums) = pack_f32s(&[&a]);
        // Prefix simulates a container header before the aligned payload.
        let mut file_bytes = vec![0u8; 64];
        file_bytes.extend_from_slice(&bytes);
        std::fs::write(&path, &file_bytes).unwrap();

        let map = Arc::new(Mmap::open(&path).unwrap());
        let sec = RawSection::from_map(map, 64, bytes.len(), sums.clone()).unwrap();
        assert!(sec.is_mapped());
        let view = sec.f32s(0, a.len()).unwrap();
        assert_eq!(view.as_slice(), a.as_slice());
        // Clone keeps the mapping alive through the original section drop.
        let keep = view.clone();
        drop(sec);
        assert_eq!(keep.as_slice()[17], a[17]);

        let owned = RawSection::from_owned(file_bytes, 64, bytes.len(), sums).unwrap();
        assert!(!owned.is_mapped());
        assert_eq!(owned.f32s(5, 90).unwrap().as_slice(), keep.as_slice()[5..95].iter().as_slice());
        std::fs::remove_file(&path).ok();
        std::fs::remove_dir(&dir).ok();
    }

    #[cfg(unix)]
    #[test]
    fn mmap_open_rejects_empty_and_missing() {
        let dir = std::env::temp_dir();
        let missing = dir.join("kcb-definitely-missing-file.bin");
        assert!(Mmap::open(&missing).is_err());
        let empty = dir.join(format!("kcb-empty-{}.bin", std::process::id()));
        std::fs::write(&empty, b"").unwrap();
        assert!(Mmap::open(&empty).is_err());
        std::fs::remove_file(&empty).ok();
    }
}
