//! Plain-text table formatting for experiment reports.
//!
//! Every `repro` subcommand prints its paper artifact as an aligned text
//! table built with [`Table`]; the same rows are serialized to JSON by
//! `kcb-core::report`. Keeping the writer here (dependency-free) lets unit
//! tests in any crate render small tables without pulling in the core crate.

/// Column alignment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Align {
    /// Left-aligned (labels).
    Left,
    /// Right-aligned (numbers).
    Right,
}

/// An aligned, monospace text table.
#[derive(Debug, Clone, PartialEq)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    aligns: Vec<Align>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given title and column headers. All columns
    /// default to left alignment; numeric columns can be switched with
    /// [`Table::align`].
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Self {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            aligns: vec![Align::Left; headers.len()],
            rows: Vec::new(),
        }
    }

    /// Sets per-column alignment. Panics if the length differs from headers.
    pub fn align(mut self, aligns: &[Align]) -> Self {
        assert_eq!(aligns.len(), self.headers.len(), "alignment arity mismatch");
        self.aligns = aligns.to_vec();
        self
    }

    /// Marks all columns after the first `n` as right-aligned — the common
    /// "label columns then metric columns" layout.
    pub fn numeric_after(mut self, n: usize) -> Self {
        for (i, a) in self.aligns.iter_mut().enumerate() {
            *a = if i < n { Align::Left } else { Align::Right };
        }
        self
    }

    /// Appends a row. Panics if the arity differs from the headers.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no data rows have been added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table to a `String` (title, rule, header, rule, rows).
    pub fn render(&self) -> String {
        let ncols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
        let total: usize = widths.iter().sum::<usize>() + 3 * ncols.saturating_sub(1);
        let mut out = String::new();
        if !self.title.is_empty() {
            out.push_str(&self.title);
            out.push('\n');
        }
        let rule = "-".repeat(total.max(self.title.chars().count()));
        out.push_str(&rule);
        out.push('\n');
        out.push_str(&render_row(&self.headers, &widths, &self.aligns));
        out.push('\n');
        out.push_str(&rule);
        out.push('\n');
        for row in &self.rows {
            out.push_str(&render_row(row, &widths, &self.aligns));
            out.push('\n');
        }
        out.push_str(&rule);
        out.push('\n');
        out
    }

    /// Structural JSON projection (title, headers, one-letter alignment
    /// codes, rows) — the run journal persists assembled artifacts in this
    /// shape so an interrupted run can replay them byte-for-byte.
    pub fn to_json(&self) -> serde::Value {
        use serde::Value;
        let aligns: Vec<Value> = self
            .aligns
            .iter()
            .map(|a| Value::String(match a {
                Align::Left => "l".to_string(),
                Align::Right => "r".to_string(),
            }))
            .collect();
        let strs = |v: &[String]| {
            Value::Array(v.iter().map(|s| Value::String(s.clone())).collect())
        };
        Value::Object(vec![
            ("title".to_string(), Value::String(self.title.clone())),
            ("headers".to_string(), strs(&self.headers)),
            ("aligns".to_string(), Value::Array(aligns)),
            ("rows".to_string(), Value::Array(self.rows.iter().map(|r| strs(r)).collect())),
        ])
    }

    /// Inverse of [`Table::to_json`]. `None` when the value does not have
    /// the projected shape (a journal replay then falls back to
    /// reassembling the artifact).
    pub fn from_json(v: &serde::Value) -> Option<Self> {
        let strs = |v: &serde::Value| -> Option<Vec<String>> {
            v.as_array()?.iter().map(|s| s.as_str().map(str::to_string)).collect()
        };
        let title = v.get("title")?.as_str()?.to_string();
        let headers = strs(v.get("headers")?)?;
        let aligns: Vec<Align> = v
            .get("aligns")?
            .as_array()?
            .iter()
            .map(|a| match a.as_str() {
                Some("l") => Some(Align::Left),
                Some("r") => Some(Align::Right),
                _ => None,
            })
            .collect::<Option<_>>()?;
        let rows: Vec<Vec<String>> =
            v.get("rows")?.as_array()?.iter().map(strs).collect::<Option<_>>()?;
        if aligns.len() != headers.len() || rows.iter().any(|r| r.len() != headers.len()) {
            return None;
        }
        Some(Self { title, headers, aligns, rows })
    }
}

fn render_row(cells: &[String], widths: &[usize], aligns: &[Align]) -> String {
    let mut line = String::new();
    for (i, cell) in cells.iter().enumerate() {
        if i > 0 {
            line.push_str("   ");
        }
        let pad = widths[i].saturating_sub(cell.chars().count());
        match aligns[i] {
            Align::Left => {
                line.push_str(cell);
                if i + 1 < cells.len() {
                    line.push_str(&" ".repeat(pad));
                }
            }
            Align::Right => {
                line.push_str(&" ".repeat(pad));
                line.push_str(cell);
            }
        }
    }
    line
}

/// Formats a metric to 4 decimal places, the paper's convention
/// (e.g. `0.9690`).
pub fn metric(x: f64) -> String {
    format!("{x:.4}")
}

/// Formats a metric as `mean (sd)` pairs like the paper's Table 5.
pub fn mean_sd(mean: f64, sd: f64) -> String {
    format!("{mean:.4} ({sd:.4})")
}

/// Formats a count with thousands separators (`620386` → `620,386`).
pub fn count(n: usize) -> String {
    let digits: Vec<u8> = n.to_string().into_bytes();
    let mut out = String::with_capacity(digits.len() + digits.len() / 3);
    for (i, d) in digits.iter().enumerate() {
        if i > 0 && (digits.len() - i).is_multiple_of(3) {
            out.push(',');
        }
        out.push(*d as char);
    }
    out
}

/// Formats a proportion as a percentage with one decimal (`0.873` → `87.3%`).
pub fn percent(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

/// Formats a byte count with a binary-unit suffix (`1536` → `1.5 KiB`).
pub fn bytes(n: u64) -> String {
    const UNITS: [&str; 5] = ["B", "KiB", "MiB", "GiB", "TiB"];
    let mut v = n as f64;
    let mut unit = 0;
    while v >= 1024.0 && unit + 1 < UNITS.len() {
        v /= 1024.0;
        unit += 1;
    }
    if unit == 0 {
        format!("{n} B")
    } else {
        format!("{v:.1} {}", UNITS[unit])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn count_separators() {
        assert_eq!(count(0), "0");
        assert_eq!(count(999), "999");
        assert_eq!(count(1000), "1,000");
        assert_eq!(count(620_386), "620,386");
        assert_eq!(count(1_234_567_890), "1,234,567,890");
    }

    #[test]
    fn metric_formats() {
        assert_eq!(metric(0.969), "0.9690");
        assert_eq!(mean_sd(0.916, 0.0055), "0.9160 (0.0055)");
        assert_eq!(percent(0.218), "21.8%");
    }

    #[test]
    fn bytes_units() {
        assert_eq!(bytes(0), "0 B");
        assert_eq!(bytes(512), "512 B");
        assert_eq!(bytes(1536), "1.5 KiB");
        assert_eq!(bytes(3 * 1024 * 1024), "3.0 MiB");
    }

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new("Demo", &["model", "f1"]).numeric_after(1);
        t.row(vec!["random".into(), "0.9559".into()]);
        t.row(vec!["w2v-chem".into(), "0.9690".into()]);
        let s = t.render();
        assert!(s.contains("Demo"));
        // Right-aligned numeric column: both metric cells end at same column.
        let lines: Vec<&str> = s.lines().collect();
        let data: Vec<&str> = lines.iter().filter(|l| l.contains("0.9")).copied().collect();
        assert_eq!(data.len(), 2);
        assert_eq!(data[0].len(), data[1].len());
    }

    #[test]
    #[should_panic(expected = "row arity mismatch")]
    fn table_rejects_bad_arity() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn empty_table_renders_header_only() {
        let t = Table::new("Empty", &["a"]);
        assert!(t.is_empty());
        let s = t.render();
        assert!(s.contains("Empty"));
        assert!(s.contains('a'));
    }
}
