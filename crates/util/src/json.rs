//! A small recursive-descent JSON parser building the workspace's
//! [`Value`] tree.
//!
//! The vendored `serde_json` is writer-only, so everything that has to
//! *read* JSON back — the serve wire protocol, the run journal's replay
//! path, the `repro runs` query surface — funnels through this one
//! parser. It is the exact inverse of [`Value::render_json`] on rendered
//! output: integers parse back as integers, floats (which always carry a
//! `.` or exponent) as floats, and objects keep field order, so
//! `parse_value(v.render_json(None))` reproduces `v` bit-for-bit.
//!
//! (Historically this lived in `kcb-serve::protocol`; it moved down here
//! so `kcb-core` can replay journals without depending on the server.)

use serde::{Number, Value};

/// Parses one complete JSON value (rejecting trailing data). Errors name
/// the byte offset.
pub fn parse_value(s: &str) -> Result<Value, String> {
    let mut p = Parser { b: s.as_bytes(), i: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.i != p.b.len() {
        return Err(format!("trailing data at byte {}", p.i));
    }
    Ok(v)
}

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> String {
        format!("{msg} at byte {}", self.i)
    }

    fn skip_ws(&mut self) {
        while matches!(self.b.get(self.i), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.i += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.b.get(self.i).copied()
    }

    fn eat(&mut self, lit: &str) -> Result<(), String> {
        if self.b[self.i..].starts_with(lit.as_bytes()) {
            self.i += lit.len();
            Ok(())
        } else {
            Err(self.err(&format!("expected `{lit}`")))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b't') => self.eat("true").map(|()| Value::Bool(true)),
            Some(b'f') => self.eat("false").map(|()| Value::Bool(false)),
            Some(b'n') => self.eat("null").map(|()| Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.i += 1; // '{'
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.i += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(":")?;
            self.skip_ws();
            let val = self.value()?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b'}') => {
                    self.i += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.i += 1; // '['
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.i += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b']') => {
                    self.i += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        if self.peek() != Some(b'"') {
            return Err(self.err("expected a string"));
        }
        self.i += 1;
        let mut out = String::new();
        loop {
            let Some(c) = self.peek() else { return Err(self.err("unterminated string")) };
            match c {
                b'"' => {
                    self.i += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.i += 1;
                    match self.peek() {
                        Some(b'u') => {
                            let hex = self
                                .b
                                .get(self.i + 1..self.i + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            // Surrogate halves are replaced rather than
                            // paired — the workspace never emits astral
                            // chars through \u escapes.
                            out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                            self.i += 5;
                        }
                        Some(e @ (b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't')) => {
                            out.push(match e {
                                b'b' => '\u{8}',
                                b'f' => '\u{c}',
                                b'n' => '\n',
                                b'r' => '\r',
                                b't' => '\t',
                                c => c as char,
                            });
                            self.i += 1;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                }
                c if c < 0x20 => return Err(self.err("raw control character in string")),
                _ => {
                    // Multi-byte UTF-8: push the full char.
                    let rest = std::str::from_utf8(&self.b[self.i..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let ch = rest.chars().next().ok_or_else(|| self.err("unterminated"))?;
                    out.push(ch);
                    self.i += ch.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.i;
        let neg = self.peek() == Some(b'-');
        if neg {
            self.i += 1;
        }
        let digits = |p: &mut Self| {
            let s = p.i;
            while p.peek().is_some_and(|c| c.is_ascii_digit()) {
                p.i += 1;
            }
            p.i > s
        };
        if !digits(self) {
            return Err(self.err("expected digits"));
        }
        let mut float = false;
        if self.peek() == Some(b'.') {
            float = true;
            self.i += 1;
            if !digits(self) {
                return Err(self.err("expected fraction digits"));
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            float = true;
            self.i += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.i += 1;
            }
            if !digits(self) {
                return Err(self.err("expected exponent digits"));
            }
        }
        let text = std::str::from_utf8(&self.b[start..self.i]).expect("ascii");
        let n = if float {
            Number::F(text.parse().map_err(|_| self.err("bad number"))?)
        } else if neg {
            Number::I(text.parse().map_err(|_| self.err("bad number"))?)
        } else {
            Number::U(text.parse().map_err(|_| self.err("bad number"))?)
        };
        Ok(Value::Number(n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nesting_strings_and_numbers() {
        let v = parse_value(r#"{"a":[1,-2,2.5,"x\n\"y\"",{"b":null},true,false]}"#).unwrap();
        let a = v.get("a").and_then(Value::as_array).unwrap();
        assert_eq!(a[0].as_u64(), Some(1));
        assert_eq!(a[1].as_i64(), Some(-2));
        assert_eq!(a[2].as_f64(), Some(2.5));
        assert_eq!(a[3].as_str(), Some("x\n\"y\""));
        assert!(a[4].get("b").unwrap().is_null());
        for bad in ["{", "[1,]", "{\"a\":}", "\"oops", "01x", "[1] extra", "{\"a\" 1}"] {
            assert!(parse_value(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn render_then_parse_is_identity() {
        let v = serde_json::json!({
            "u": 42u64,
            "f": 1.0f64,
            "frac": 0.125f64,
            "s": "a\tb",
            "arr": [true, false],
        });
        let compact = v.render_json(None);
        assert_eq!(parse_value(&compact).unwrap(), v);
        let pretty = v.render_json(Some(2));
        assert_eq!(parse_value(&pretty).unwrap(), v);
        // The re-render of the parse reproduces the exact bytes, which is
        // what journal replay relies on for artifact byte-identity.
        assert_eq!(parse_value(&compact).unwrap().render_json(None), compact);
    }

    #[test]
    fn integer_vs_float_distinction_survives() {
        let v = parse_value("[3,3.0,-3]").unwrap();
        let a = v.as_array().unwrap();
        assert_eq!(a[0], Value::Number(Number::U(3)));
        assert_eq!(a[1], Value::Number(Number::F(3.0)));
        assert_eq!(a[2], Value::Number(Number::I(-3)));
        assert_eq!(v.render_json(None), "[3,3.0,-3]");
    }
}
