//! Deterministic pseudo-random number generation.
//!
//! Every stochastic component in the workspace (negative sampling, embedding
//! initialisation, bootstrap resampling, oracle jitter, …) draws from this
//! [`Rng`], a PCG-XSH-RR 64/32 generator seeded explicitly. Using one small,
//! in-tree generator rather than `rand`'s default engines guarantees that a
//! given `(seed, code path)` pair produces the same stream on every platform
//! and toolchain, which is what makes `repro --seed N` reproducible.
//!
//! The generator is *not* cryptographically secure and is not meant to be.

/// A PCG-XSH-RR 64/32 pseudo-random generator with explicit seeding.
///
/// ```
/// use kcb_util::Rng;
/// let mut a = Rng::seed(42);
/// let mut b = Rng::seed(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone)]
pub struct Rng {
    state: u64,
    inc: u64,
}

const PCG_MULT: u64 = 6364136223846793005;

impl Rng {
    /// Creates a generator from a seed, using the default stream.
    pub fn seed(seed: u64) -> Self {
        Self::seed_stream(seed, 0xda3e_39cb_94b9_5bdb)
    }

    /// Creates a generator from a seed on a specific stream.
    ///
    /// Streams let independent components derive non-overlapping sequences
    /// from one experiment seed: `Rng::seed_stream(seed, component_id)`.
    pub fn seed_stream(seed: u64, stream: u64) -> Self {
        let inc = (stream << 1) | 1;
        let mut rng = Self { state: 0, inc };
        let _ = rng.next_u32();
        rng.state = rng.state.wrapping_add(seed);
        let _ = rng.next_u32();
        rng
    }

    /// Derives a child generator; useful for giving each parallel work item
    /// its own deterministic stream.
    pub fn fork(&mut self, stream: u64) -> Self {
        Self::seed_stream(self.next_u64(), stream)
    }

    /// Next 32 uniformly random bits.
    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        let old = self.state;
        self.state = old.wrapping_mul(PCG_MULT).wrapping_add(self.inc);
        let xorshifted = (((old >> 18) ^ old) >> 27) as u32;
        let rot = (old >> 59) as u32;
        xorshifted.rotate_right(rot)
    }

    /// Next 64 uniformly random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        (u64::from(self.next_u32()) << 32) | u64::from(self.next_u32())
    }

    /// Uniform `f64` in `[0, 1)`.
    #[inline]
    pub fn f64(&mut self) -> f64 {
        // 53 random mantissa bits.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f32` in `[0, 1)`.
    #[inline]
    pub fn f32(&mut self) -> f32 {
        (self.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }

    /// Uniform `f32` in `[lo, hi)`.
    #[inline]
    pub fn f32_range(&mut self, lo: f32, hi: f32) -> f32 {
        lo + (hi - lo) * self.f32()
    }

    /// Uniform integer in `[0, n)`. `n` must be non-zero.
    ///
    /// Uses Lemire's multiply-shift rejection method for unbiased output.
    #[inline]
    pub fn below(&mut self, n: usize) -> usize {
        debug_assert!(n > 0, "Rng::below(0)");
        let n = n as u64;
        // Rejection threshold removes modulo bias (Lemire 2019).
        let threshold = n.wrapping_neg() % n;
        loop {
            let (hi, lo) = mul_wide(self.next_u64(), n);
            if lo >= threshold {
                return hi as usize;
            }
        }
    }

    /// Uniform integer in `[lo, hi)`.
    #[inline]
    pub fn range(&mut self, lo: usize, hi: usize) -> usize {
        debug_assert!(lo < hi);
        lo + self.below(hi - lo)
    }

    /// Bernoulli draw with probability `p` of `true`.
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        self.f64() < p
    }

    /// Standard normal draw (Box–Muller; one value per call, the pair's
    /// second member is discarded to keep the stream position predictable).
    pub fn gaussian(&mut self) -> f64 {
        loop {
            let u1 = self.f64();
            if u1 <= f64::EPSILON {
                continue;
            }
            let u2 = self.f64();
            let r = (-2.0 * u1.ln()).sqrt();
            return r * (2.0 * std::f64::consts::PI * u2).cos();
        }
    }

    /// Fisher–Yates shuffle in place.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        if xs.len() < 2 {
            return;
        }
        for i in (1..xs.len()).rev() {
            let j = self.below(i + 1);
            xs.swap(i, j);
        }
    }

    /// Uniformly chooses one element, or `None` when empty.
    pub fn choose<'a, T>(&mut self, xs: &'a [T]) -> Option<&'a T> {
        if xs.is_empty() {
            None
        } else {
            Some(&xs[self.below(xs.len())])
        }
    }

    /// Samples `k` distinct indices from `[0, n)` (reservoir when `k` is a
    /// large fraction of `n`, partial Fisher–Yates otherwise). Output order
    /// is random. Panics if `k > n`.
    pub fn sample_indices(&mut self, n: usize, k: usize) -> Vec<usize> {
        assert!(k <= n, "sample_indices: k={k} > n={n}");
        if k == 0 {
            return Vec::new();
        }
        // Partial Fisher–Yates over an index array is fine at the scales we
        // use (n bounded by dataset size); only allocate once.
        if k * 4 >= n {
            let mut idx: Vec<usize> = (0..n).collect();
            for i in 0..k {
                let j = self.range(i, n);
                idx.swap(i, j);
            }
            idx.truncate(k);
            idx
        } else {
            // Floyd's algorithm for sparse samples.
            let mut chosen = std::collections::HashSet::with_capacity(k);
            let mut out = Vec::with_capacity(k);
            for j in (n - k)..n {
                let t = self.below(j + 1);
                let pick = if chosen.contains(&t) { j } else { t };
                chosen.insert(pick);
                out.push(pick);
            }
            self.shuffle(&mut out);
            out
        }
    }

    /// Draws an index proportionally to the given non-negative weights.
    /// Returns `None` when weights are empty or all zero.
    pub fn weighted(&mut self, weights: &[f64]) -> Option<usize> {
        let total: f64 = weights.iter().sum();
        if total <= 0.0 || total.is_nan() {
            return None;
        }
        let mut t = self.f64() * total;
        for (i, w) in weights.iter().enumerate() {
            t -= w;
            if t < 0.0 {
                return Some(i);
            }
        }
        Some(weights.len() - 1)
    }
}

#[inline]
fn mul_wide(a: u64, b: u64) -> (u64, u64) {
    let r = u128::from(a) * u128::from(b);
    ((r >> 64) as u64, r as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = Rng::seed(7);
        let mut b = Rng::seed(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Rng::seed(1);
        let mut b = Rng::seed(2);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn different_streams_differ() {
        let mut a = Rng::seed_stream(1, 10);
        let mut b = Rng::seed_stream(1, 11);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = Rng::seed(3);
        for _ in 0..10_000 {
            let x = r.f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn below_bounds_and_coverage() {
        let mut r = Rng::seed(4);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            let x = r.below(7);
            assert!(x < 7);
            seen[x] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues should appear");
    }

    #[test]
    fn below_is_roughly_uniform() {
        let mut r = Rng::seed(5);
        let n = 10usize;
        let trials = 100_000;
        let mut counts = vec![0usize; n];
        for _ in 0..trials {
            counts[r.below(n)] += 1;
        }
        let expect = trials as f64 / n as f64;
        for &c in &counts {
            assert!((c as f64 - expect).abs() < expect * 0.08, "counts={counts:?}");
        }
    }

    #[test]
    fn gaussian_moments() {
        let mut r = Rng::seed(6);
        let n = 50_000;
        let xs: Vec<f64> = (0..n).map(|_| r.gaussian()).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.03, "mean={mean}");
        assert!((var - 1.0).abs() < 0.05, "var={var}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = Rng::seed(8);
        let mut xs: Vec<u32> = (0..100).collect();
        r.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn sample_indices_distinct_and_in_range() {
        let mut r = Rng::seed(9);
        for &(n, k) in &[(10usize, 10usize), (100, 5), (100, 90), (1, 1), (5, 0)] {
            let s = r.sample_indices(n, k);
            assert_eq!(s.len(), k);
            let set: std::collections::HashSet<_> = s.iter().copied().collect();
            assert_eq!(set.len(), k, "duplicates in sample n={n} k={k}");
            assert!(s.iter().all(|&i| i < n));
        }
    }

    #[test]
    fn weighted_respects_zero_weights() {
        let mut r = Rng::seed(10);
        let w = [0.0, 0.0, 1.0, 0.0];
        for _ in 0..100 {
            assert_eq!(r.weighted(&w), Some(2));
        }
        assert_eq!(r.weighted(&[]), None);
        assert_eq!(r.weighted(&[0.0, 0.0]), None);
    }

    #[test]
    fn weighted_tracks_proportions() {
        let mut r = Rng::seed(11);
        let w = [1.0, 3.0];
        let mut hits = [0usize; 2];
        for _ in 0..40_000 {
            hits[r.weighted(&w).unwrap()] += 1;
        }
        let frac = hits[1] as f64 / 40_000.0;
        assert!((frac - 0.75).abs() < 0.02, "frac={frac}");
    }

    #[test]
    fn fork_streams_are_independent() {
        let mut root = Rng::seed(12);
        let mut a = root.fork(1);
        let mut b = root.fork(2);
        assert_ne!(
            (0..4).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..4).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }
}
