//! Workspace-wide error type.
//!
//! A single small enum rather than per-crate error zoos: the workspace is an
//! application-shaped library where callers almost always want the message,
//! and keeping one type avoids a web of `From` impls across nine crates.

use std::fmt;

/// Convenience alias used across the workspace.
pub type Result<T> = std::result::Result<T, Error>;

/// Errors produced anywhere in the `kcb` workspace.
#[derive(Debug)]
pub enum Error {
    /// An input file or data stream could not be parsed.
    Parse {
        /// What was being parsed (file name, format, …).
        context: String,
        /// Human-readable description of the failure.
        message: String,
    },
    /// A configuration value is out of range or inconsistent.
    Config(String),
    /// Requested item (entity, relation, vocabulary entry, …) is absent.
    NotFound(String),
    /// Shapes/dimensions of numeric inputs disagree.
    Shape(String),
    /// Dataset construction could not satisfy the request
    /// (e.g. not enough entities to draw the requested sample).
    Data(String),
    /// Underlying I/O failure.
    Io(std::io::Error),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Parse { context, message } => write!(f, "parse error in {context}: {message}"),
            Error::Config(m) => write!(f, "invalid configuration: {m}"),
            Error::NotFound(m) => write!(f, "not found: {m}"),
            Error::Shape(m) => write!(f, "shape mismatch: {m}"),
            Error::Data(m) => write!(f, "dataset error: {m}"),
            Error::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error::Io(e)
    }
}

impl Error {
    /// Builds a [`Error::Parse`] with context.
    pub fn parse(context: impl Into<String>, message: impl Into<String>) -> Self {
        Error::Parse { context: context.into(), message: message.into() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        let e = Error::parse("chebi.obo", "bad stanza");
        assert_eq!(e.to_string(), "parse error in chebi.obo: bad stanza");
        let e = Error::Config("scale must be > 0".into());
        assert!(e.to_string().contains("scale"));
    }

    #[test]
    fn io_error_source_preserved() {
        use std::error::Error as _;
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "gone");
        let e = Error::from(io);
        assert!(e.source().is_some());
    }
}
