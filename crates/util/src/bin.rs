//! Minimal little-endian binary writer/reader for checkpoint codecs.
//!
//! Every checkpoint format in the workspace (embedding tables, transformer
//! weights, random forests, the derived-result cache) encodes through this
//! one pair so the framing rules — LE integers, u32-length-prefixed strings,
//! bit-exact floats — are defined in exactly one place. The reader is
//! bounds-checked and returns [`Error::Parse`] instead of panicking, which
//! is what lets a corrupt or truncated checkpoint fall back to retraining.

use crate::error::{Error, Result};

/// Append-only little-endian byte writer.
#[derive(Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// New empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Consumes the writer, returning the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True if nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Writes raw bytes verbatim (no length prefix).
    pub fn raw(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Writes one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Writes a `u32` as 4 LE bytes.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a `u64` as 8 LE bytes.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes an `f32` bit pattern (exact round-trip).
    pub fn f32(&mut self, v: f32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes an `f64` bit pattern (exact round-trip).
    pub fn f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a string as u32 byte length + UTF-8 bytes.
    pub fn str(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.raw(s.as_bytes());
    }

    /// Writes an `f32` slice as u32 count + raw bit patterns.
    pub fn f32s(&mut self, vs: &[f32]) {
        self.u32(vs.len() as u32);
        for &v in vs {
            self.f32(v);
        }
    }

    /// Writes an `f64` slice as u32 count + raw bit patterns.
    pub fn f64s(&mut self, vs: &[f64]) {
        self.u32(vs.len() as u32);
        for &v in vs {
            self.f64(v);
        }
    }
}

/// Bounds-checked little-endian reader over a byte slice.
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
    context: &'a str,
}

impl<'a> Reader<'a> {
    /// New reader; `context` names the checkpoint in error messages.
    pub fn new(buf: &'a [u8], context: &'a str) -> Self {
        Self { buf, pos: 0, context }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Errors unless every byte was consumed — catches trailing garbage.
    pub fn finish(&self) -> Result<()> {
        if self.remaining() != 0 {
            return Err(Error::parse(
                self.context,
                format!("{} trailing bytes after payload", self.remaining()),
            ));
        }
        Ok(())
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.remaining() < n {
            return Err(Error::parse(
                self.context,
                format!("truncated: wanted {n} bytes at offset {}, have {}", self.pos, self.remaining()),
            ));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    /// Reads a LE `u32`.
    pub fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }

    /// Reads a LE `u64`.
    pub fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }

    /// Reads an `f32` bit pattern.
    pub fn f32(&mut self) -> Result<f32> {
        Ok(f32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }

    /// Reads an `f64` bit pattern.
    pub fn f64(&mut self) -> Result<f64> {
        Ok(f64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }

    /// Reads a u32-length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<String> {
        let n = self.u32()? as usize;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| Error::parse(self.context, "invalid UTF-8 in string"))
    }

    /// Reads a u32-count-prefixed `f32` slice.
    pub fn f32s(&mut self) -> Result<Vec<f32>> {
        let n = self.u32()? as usize;
        self.sized(n, 4)?;
        (0..n).map(|_| self.f32()).collect()
    }

    /// Reads a u32-count-prefixed `f64` slice.
    pub fn f64s(&mut self) -> Result<Vec<f64>> {
        let n = self.u32()? as usize;
        self.sized(n, 8)?;
        (0..n).map(|_| self.f64()).collect()
    }

    /// Guards a count read from the wire against absurd allocations: the
    /// remaining bytes must actually hold `n` items of `item_bytes` each.
    pub fn sized(&self, n: usize, item_bytes: usize) -> Result<()> {
        if n.saturating_mul(item_bytes) > self.remaining() {
            return Err(Error::parse(
                self.context,
                format!("count {n} exceeds remaining {} bytes", self.remaining()),
            ));
        }
        Ok(())
    }

    /// Checks a 4-byte magic tag.
    pub fn magic(&mut self, expect: &[u8; 4]) -> Result<()> {
        let got = self.take(4)?;
        if got != expect {
            return Err(Error::parse(
                self.context,
                format!("bad magic {:?}, expected {:?}", got, expect),
            ));
        }
        Ok(())
    }

    /// Checks an exact version byte sequence written as `u32`.
    pub fn version(&mut self, expect: u32) -> Result<()> {
        let got = self.u32()?;
        if got != expect {
            return Err(Error::parse(
                self.context,
                format!("version {got}, expected {expect}"),
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_all_primitives() {
        let mut w = Writer::new();
        w.raw(b"KCBT");
        w.u32(3);
        w.u8(7);
        w.u64(u64::MAX - 1);
        w.f32(-0.0);
        w.f64(f64::MIN_POSITIVE);
        w.str("naïve");
        w.f32s(&[1.5, f32::NEG_INFINITY]);
        w.f64s(&[]);
        let bytes = w.into_bytes();

        let mut r = Reader::new(&bytes, "test");
        r.magic(b"KCBT").unwrap();
        r.version(3).unwrap();
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u64().unwrap(), u64::MAX - 1);
        assert_eq!(r.f32().unwrap().to_bits(), (-0.0f32).to_bits());
        assert_eq!(r.f64().unwrap(), f64::MIN_POSITIVE);
        assert_eq!(r.str().unwrap(), "naïve");
        assert_eq!(r.f32s().unwrap(), vec![1.5, f32::NEG_INFINITY]);
        assert!(r.f64s().unwrap().is_empty());
        r.finish().unwrap();
    }

    #[test]
    fn truncation_is_an_error_not_a_panic() {
        let mut w = Writer::new();
        w.str("hello");
        let bytes = w.into_bytes();
        for cut in 0..bytes.len() {
            let mut r = Reader::new(&bytes[..cut], "trunc");
            assert!(r.str().is_err(), "cut at {cut} should fail");
        }
    }

    #[test]
    fn bad_magic_and_version_reject() {
        let mut w = Writer::new();
        w.raw(b"XXXX");
        w.u32(9);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes, "t");
        assert!(r.magic(b"KCBT").is_err());
        let mut r = Reader::new(&bytes[4..], "t");
        assert!(r.version(1).is_err());
    }

    #[test]
    fn absurd_count_is_rejected_before_allocation() {
        let mut w = Writer::new();
        w.u32(u32::MAX);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes, "t");
        assert!(r.f64s().is_err());
    }

    #[test]
    fn finish_flags_trailing_bytes() {
        let mut w = Writer::new();
        w.u8(1);
        w.u8(2);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes, "t");
        r.u8().unwrap();
        assert!(r.finish().is_err());
    }
}
