//! Shared utilities for the `kcb` workspace.
//!
//! This crate deliberately has no heavyweight dependencies: it provides the
//! deterministic random-number generator used by every other crate (so that
//! experiment runs are bit-reproducible across platforms), the workspace-wide
//! error type, and small text-formatting helpers used by report writers.

pub mod bin;
pub mod error;
pub mod fmt;
pub mod json;
pub mod mmap;
pub mod pool;
pub mod rng;
pub mod signal;
pub mod simd;

pub use error::{Error, Result};
pub use rng::Rng;

/// FNV-1a 64-bit hash — the workspace's standard content hash for seeding
/// deterministic per-item RNG streams (oracle beliefs, OOV vectors, triple
/// keys). One shared implementation keeps every stream definition in sync.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// FNV-1a over a sequence of `u64` words (mixes each word as 8 LE bytes).
pub fn fnv1a_u64s(words: &[u64]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for w in words {
        for b in w.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100000001b3);
        }
    }
    h
}

#[cfg(test)]
mod hash_tests {
    #[test]
    fn fnv1a_known_vector() {
        // FNV-1a("") = offset basis; FNV-1a("a") = 0xaf63dc4c8601ec8c.
        assert_eq!(super::fnv1a(b""), 0xcbf29ce484222325);
        assert_eq!(super::fnv1a(b"a"), 0xaf63dc4c8601ec8c);
    }

    #[test]
    fn fnv1a_u64s_differs_by_order() {
        assert_ne!(super::fnv1a_u64s(&[1, 2]), super::fnv1a_u64s(&[2, 1]));
    }
}
