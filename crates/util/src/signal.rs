//! A minimal SIGINT/SIGTERM latch for graceful daemon shutdown.
//!
//! `repro serve` runs until told to stop; a bare Ctrl-C would kill the
//! process mid-write — no queue drain, no flight-recorder flush. This
//! module installs an async-signal-safe handler (one relaxed store into a
//! static `AtomicBool`, nothing else — the handler may interrupt any
//! instruction) so the daemon loop can poll [`triggered`] and run its
//! graceful path instead.
//!
//! Like `mmap`, this is one of the two modules allowed to opt back into
//! `unsafe`: a two-function `signal(2)` FFI binding. On non-Unix targets
//! installation reports `false` and [`triggered`] just never fires, so
//! callers keep their explicit-shutdown path as the only exit.

use std::sync::atomic::{AtomicBool, Ordering};

static TRIGGERED: AtomicBool = AtomicBool::new(false);

/// Whether SIGINT or SIGTERM has arrived since [`install`].
pub fn triggered() -> bool {
    TRIGGERED.load(Ordering::Relaxed)
}

/// Clears the latch (tests; a daemon restarting its accept loop).
pub fn reset() {
    TRIGGERED.store(false, Ordering::Relaxed);
}

/// Trips the latch from regular code — what the signal handler does, but
/// callable from tests and from other shutdown paths that want to share
/// the daemon's exit check.
pub fn trigger() {
    TRIGGERED.store(true, Ordering::Relaxed);
}

#[cfg(unix)]
#[allow(unsafe_code)]
mod sys {
    use std::sync::atomic::Ordering;

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    // Minimal libc surface; std already links libc on every Unix target.
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }

    extern "C" fn on_signal(_signum: i32) {
        // Async-signal-safe: a single relaxed atomic store.
        super::TRIGGERED.store(true, Ordering::Relaxed);
    }

    /// Installs the latch handler for SIGINT and SIGTERM.
    pub fn install() -> bool {
        const SIG_ERR: usize = usize::MAX;
        // SAFETY: `on_signal` is async-signal-safe (one atomic store) and
        // has the exact `extern "C" fn(i32)` ABI signal(2) expects; the
        // handler address stays valid for the life of the process.
        let a = unsafe { signal(SIGINT, on_signal as *const () as usize) };
        let b = unsafe { signal(SIGTERM, on_signal as *const () as usize) };
        a != SIG_ERR && b != SIG_ERR
    }
}

/// Installs the SIGINT/SIGTERM handler; returns whether installation took
/// effect (always `false` off Unix). Idempotent.
pub fn install() -> bool {
    #[cfg(unix)]
    {
        sys::install()
    }
    #[cfg(not(unix))]
    {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latch_starts_clear_and_trips_once_triggered() {
        reset();
        assert!(!triggered());
        trigger();
        assert!(triggered());
        reset();
        assert!(!triggered());
    }

    #[cfg(unix)]
    #[test]
    fn installed_handler_latches_a_real_sigint() {
        assert!(install(), "signal(2) accepted the handler");
        reset();
        // Raise SIGINT at ourselves through the installed handler.
        #[allow(unsafe_code)]
        {
            extern "C" {
                fn raise(signum: i32) -> i32;
            }
            // SAFETY: raise(3) with a handled signal delivers to this
            // process; our handler only stores an atomic.
            let rc = unsafe { raise(2) };
            assert_eq!(rc, 0, "raise(SIGINT)");
        }
        // Delivery is synchronous for raise() on the calling thread.
        assert!(triggered(), "SIGINT tripped the latch");
        reset();
    }
}
