//! Explicit-width SIMD-style kernels for the hot query path.
//!
//! Every kernel here processes chunks of eight `f32` lanes with a scalar
//! tail, but accumulates into the *same four-lane association* as the
//! original `kcb-ml::linalg` kernels: lane `i` sums the products at indices
//! `≡ i mod 4`, the final reduction is `(l0+l2)+(l1+l3)`, and the tail is
//! added in order. That contract is what keeps artifacts byte-identical to
//! the pre-SIMD implementation — the wide kernels change *when* work happens
//! (two fused lane updates per 8-element chunk, so LLVM emits 256-bit ops),
//! never *what* is summed with what.
//!
//! A `scalar` backend with the identical association is kept both as the
//! benchmark baseline and as a cross-check: `simd_vs_scalar` tests assert
//! bitwise equality at every length class. The scalar variant walks each
//! lane in a separate strided pass, which defeats auto-vectorization and so
//! measures what the query path would cost without the wide kernels.
//!
//! Backend selection happens once per process through [`backend`], reading
//! the `KCB_SIMD` environment variable (`"scalar"` or `"wide"`, default
//! wide). Because both backends share one association, the choice affects
//! throughput only — never bits.

use std::sync::OnceLock;

/// Kernel backend: portable chunks-of-8 (`Wide`) or the strided scalar
/// reference (`Scalar`). Both produce bitwise-identical results.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// Strided per-lane scalar loops (baseline; resists auto-vectorization).
    Scalar,
    /// Chunks-of-8 loops shaped for 256-bit SIMD code generation.
    Wide,
}

static BACKEND: OnceLock<Backend> = OnceLock::new();

/// Process-wide kernel backend, resolved once from `KCB_SIMD`
/// (`"scalar"` selects the reference loops; anything else means wide).
pub fn backend() -> Backend {
    *BACKEND.get_or_init(|| match std::env::var("KCB_SIMD") {
        Ok(v) if v.eq_ignore_ascii_case("scalar") => Backend::Scalar,
        _ => Backend::Wide,
    })
}

/// Dot product via the process backend. Bitwise identical between backends.
#[inline]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    match backend() {
        Backend::Wide => dot_wide(a, b),
        Backend::Scalar => dot_scalar(a, b),
    }
}

/// Wide dot product: chunks of 8, two four-lane updates per chunk, then a
/// chunk-of-4 fixup and the in-order tail. Same association as the original
/// four-lane kernel at every length.
#[inline]
pub fn dot_wide(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let mut lanes = [0.0f32; 4];
    let ca = a.chunks_exact(8);
    let cb = b.chunks_exact(8);
    let (ra, rb) = (ca.remainder(), cb.remainder());
    for (x, y) in ca.zip(cb) {
        for c in 0..4 {
            lanes[c] += x[c] * y[c];
        }
        for c in 0..4 {
            lanes[c] += x[4 + c] * y[4 + c];
        }
    }
    // 4..8 leftover elements may still hold one full 4-chunk.
    let c4 = ra.chunks_exact(4);
    let d4 = rb.chunks_exact(4);
    let (ta, tb) = (c4.remainder(), d4.remainder());
    for (x, y) in c4.zip(d4) {
        for c in 0..4 {
            lanes[c] += x[c] * y[c];
        }
    }
    let mut s = (lanes[0] + lanes[2]) + (lanes[1] + lanes[3]);
    for (x, y) in ta.iter().zip(tb) {
        s += x * y;
    }
    s
}

/// Scalar reference dot: four separate strided passes (lane 0 sums indices
/// 0,4,8,…, then lane 1, …) followed by the same reduction and tail. The
/// strided walk keeps LLVM from vectorizing, making this an honest baseline,
/// while the association — and therefore every bit — matches [`dot_wide`].
pub fn dot_scalar(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let n4 = (a.len() / 4) * 4;
    let mut lanes = [0.0f32; 4];
    for (c, lane) in lanes.iter_mut().enumerate() {
        let mut i = c;
        while i < n4 {
            *lane += a[i] * b[i];
            i += 4;
        }
    }
    let mut s = (lanes[0] + lanes[2]) + (lanes[1] + lanes[3]);
    for (x, y) in a[n4..].iter().zip(&b[n4..]) {
        s += x * y;
    }
    s
}

/// Four dots of `a` against `b0..b3` via the process backend; each result is
/// bitwise identical to [`dot`] on that pair.
#[inline]
pub fn dot4(a: &[f32], b0: &[f32], b1: &[f32], b2: &[f32], b3: &[f32]) -> [f32; 4] {
    match backend() {
        Backend::Wide => dot4_wide(a, b0, b1, b2, b3),
        Backend::Scalar => [
            dot_scalar(a, b0),
            dot_scalar(a, b1),
            dot_scalar(a, b2),
            dot_scalar(a, b3),
        ],
    }
}

/// Wide interleaved four-dot: 16 independent accumulator lanes hide FP-add
/// latency; per-output association matches [`dot_wide`].
pub fn dot4_wide(a: &[f32], b0: &[f32], b1: &[f32], b2: &[f32], b3: &[f32]) -> [f32; 4] {
    debug_assert!(a.len() == b0.len() && a.len() == b1.len());
    debug_assert!(a.len() == b2.len() && a.len() == b3.len());
    let mut lanes = [[0.0f32; 4]; 4];
    let n8 = (a.len() / 8) * 8;
    let mut i = 0;
    while i < n8 {
        let av: &[f32] = &a[i..i + 8];
        for (l, b) in lanes.iter_mut().zip([b0, b1, b2, b3]) {
            let bv = &b[i..i + 8];
            for c in 0..4 {
                l[c] += av[c] * bv[c];
            }
            for c in 0..4 {
                l[c] += av[4 + c] * bv[4 + c];
            }
        }
        i += 8;
    }
    let n4 = (a.len() / 4) * 4;
    if n4 > n8 {
        let av: &[f32] = &a[n8..n8 + 4];
        for (l, b) in lanes.iter_mut().zip([b0, b1, b2, b3]) {
            let bv = &b[n8..n8 + 4];
            for c in 0..4 {
                l[c] += av[c] * bv[c];
            }
        }
    }
    let mut out = [0.0f32; 4];
    for (o, (l, b)) in out.iter_mut().zip(lanes.iter().zip([b0, b1, b2, b3])) {
        let mut s = (l[0] + l[2]) + (l[1] + l[3]);
        for (x, y) in a[n4..].iter().zip(&b[n4..]) {
            s += x * y;
        }
        *o = s;
    }
    out
}

/// `y += alpha * x`. A single elementwise pass — each `y[i]` receives exactly
/// one fused update, so chunking cannot change bits; the chunks-of-8 shape
/// just keeps LLVM honest about emitting wide ops in cold builds.
#[inline]
pub fn axpy(alpha: f32, x: &[f32], y: &mut [f32]) {
    debug_assert_eq!(x.len(), y.len());
    let cx = x.chunks_exact(8);
    let rx = cx.remainder();
    let mut cy = y.chunks_exact_mut(8);
    for (yv, xv) in (&mut cy).zip(cx) {
        for c in 0..8 {
            yv[c] += alpha * xv[c];
        }
    }
    for (yi, xi) in cy.into_remainder().iter_mut().zip(rx) {
        *yi += alpha * xi;
    }
}

/// One matmul micro-kernel step: `acc[c] += av * bk[c]` over an 8-wide tile
/// row. Fixed width lets the compiler keep `acc` in one vector register
/// across the k-loop of the `kcb-lm` tile kernel.
#[inline(always)]
pub fn fma_tile8(acc: &mut [f32; 8], av: f32, bk: &[f32; 8]) {
    for c in 0..8 {
        acc[c] += av * bk[c];
    }
}

/// Int8 dot product with exact i32 accumulation. Integer addition is
/// associative, so there is no lane contract to preserve — any chunking
/// gives the same answer; chunks of 16 map onto `pmaddwd`-style codegen.
#[inline]
pub fn dot_i8(a: &[i8], b: &[i8]) -> i32 {
    debug_assert_eq!(a.len(), b.len());
    let ca = a.chunks_exact(16);
    let cb = b.chunks_exact(16);
    let (ra, rb) = (ca.remainder(), cb.remainder());
    let mut acc: i32 = 0;
    for (x, y) in ca.zip(cb) {
        let mut lane: i32 = 0;
        for c in 0..16 {
            lane += i32::from(x[c]) * i32::from(y[c]);
        }
        acc += lane;
    }
    for (x, y) in ra.iter().zip(rb) {
        acc += i32::from(*x) * i32::from(*y);
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gen(len: usize, seed: u64) -> Vec<f32> {
        let mut rng = crate::Rng::seed_stream(seed, 0x51);
        (0..len).map(|_| rng.f32_range(-2.0, 2.0)).collect()
    }

    /// The original four-lane kernel, transcribed verbatim, as the
    /// association oracle for both backends.
    fn dot_reference(a: &[f32], b: &[f32]) -> f32 {
        let mut lanes = [0.0f32; 4];
        let ca = a.chunks_exact(4);
        let cb = b.chunks_exact(4);
        let (ra, rb) = (ca.remainder(), cb.remainder());
        for (x, y) in ca.zip(cb) {
            lanes[0] += x[0] * y[0];
            lanes[1] += x[1] * y[1];
            lanes[2] += x[2] * y[2];
            lanes[3] += x[3] * y[3];
        }
        let mut s = (lanes[0] + lanes[2]) + (lanes[1] + lanes[3]);
        for (x, y) in ra.iter().zip(rb) {
            s += x * y;
        }
        s
    }

    #[test]
    fn wide_and_scalar_match_reference_bitwise() {
        // Cover: tail-only, one 4-chunk, 8-chunk boundary, 8k+4, 8k+tail.
        for len in [0usize, 1, 3, 4, 5, 7, 8, 9, 11, 12, 15, 16, 20, 23, 64, 100, 257] {
            let a = gen(len, 1);
            let b = gen(len, 2);
            let r = dot_reference(&a, &b);
            assert_eq!(dot_wide(&a, &b).to_bits(), r.to_bits(), "wide len {len}");
            assert_eq!(dot_scalar(&a, &b).to_bits(), r.to_bits(), "scalar len {len}");
        }
    }

    #[test]
    fn dot4_wide_matches_dot_wide_bitwise() {
        for len in [0usize, 3, 4, 7, 8, 12, 13, 48, 50, 100] {
            let a = gen(len, 1);
            let bs: Vec<Vec<f32>> = (2..6).map(|s| gen(len, s)).collect();
            let d = dot4_wide(&a, &bs[0], &bs[1], &bs[2], &bs[3]);
            for (i, b) in bs.iter().enumerate() {
                assert_eq!(d[i].to_bits(), dot_wide(&a, b).to_bits(), "len {len} lane {i}");
            }
        }
    }

    #[test]
    fn axpy_matches_elementwise() {
        for len in [0usize, 1, 7, 8, 9, 33] {
            let x = gen(len, 3);
            let mut y = gen(len, 4);
            let mut expect = y.clone();
            for (e, xi) in expect.iter_mut().zip(&x) {
                *e += 0.37 * xi;
            }
            axpy(0.37, &x, &mut y);
            assert_eq!(y, expect, "len {len}");
        }
    }

    #[test]
    fn fma_tile8_is_one_fused_step() {
        let mut acc = [1.0f32; 8];
        let bk = [0.5, 1.0, 1.5, 2.0, 2.5, 3.0, 3.5, 4.0];
        fma_tile8(&mut acc, 2.0, &bk);
        for (c, a) in acc.iter().enumerate() {
            assert_eq!(*a, 1.0 + 2.0 * bk[c]);
        }
    }

    #[test]
    fn dot_i8_exact() {
        let a: Vec<i8> = (0..37).map(|i| ((i * 7) % 255) as u8 as i8).collect();
        let b: Vec<i8> = (0..37).map(|i| ((i * 13 + 5) % 255) as u8 as i8).collect();
        let expect: i32 = a.iter().zip(&b).map(|(x, y)| i32::from(*x) * i32::from(*y)).sum();
        assert_eq!(dot_i8(&a, &b), expect);
        // Saturation check: full-magnitude vectors stay exact in i32.
        let lo = vec![-128i8; 64];
        assert_eq!(dot_i8(&lo, &lo), 64 * 128 * 128);
    }

    #[test]
    fn backend_env_defaults_to_wide() {
        // The env var is unset in the test harness; the resolved backend
        // must be deterministic for the whole process.
        assert_eq!(backend(), backend());
    }
}
