//! Workspace-wide thread-pool policy: row-parallel kernels plus the
//! fan-out arbitration used by the cell scheduler.
//!
//! The tensor matmuls split their *output rows* across a crossbeam
//! scoped-thread worker pool: each output row is written by exactly one
//! worker, and every per-element accumulation runs in the same (k-ascending)
//! order regardless of the worker layout, so results are **bitwise
//! identical at any thread count** — `--threads` changes wall-clock only,
//! never artifacts. This mirrors the forest's per-tree decomposition in
//! `kcb-ml` (one slot per unit of work, `chunks_mut` for disjoint writes).
//!
//! The pool size is a process-wide setting ([`set_threads`]); benches and
//! determinism tests pin it temporarily with the RAII [`ThreadsGuard`]
//! (DESIGN §5's guard idiom). Small kernels stay on the calling thread:
//! below [`MIN_PARALLEL_FLOPS`] the scoped-spawn overhead (~10–20 µs per
//! worker) would outweigh the work, which keeps single-sequence forwards
//! serial while batched training steps fan out.
//!
//! **Nested parallelism.** PR 2's cell scheduler runs whole experiment
//! cells on worker threads. A forest fit or matmul inside such a cell must
//! not fan out again — the cores are already busy running sibling cells —
//! so scheduler workers wrap cell bodies in [`run_serial`], which pins
//! every nested [`fanout`] to 1 on that thread. Conversely the scheduler's
//! *driver* thread (the only thread allowed to touch the `Rc`-based LM
//! models) keeps full fan-out, minus any cores other threads have claimed
//! through [`CoreReservation`]. Because outputs never depend on the
//! fan-out, all of this arbitration is invisible in the artifacts.

use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Work threshold (≈ multiply-adds) below which kernels run serially.
pub const MIN_PARALLEL_FLOPS: usize = 1 << 18;

/// 0 = "not set yet" → resolve from available parallelism on first read.
static THREADS: AtomicUsize = AtomicUsize::new(0);

/// Cores currently claimed by scheduler workers (process-wide).
static RESERVED: AtomicUsize = AtomicUsize::new(0);

/// Upper bound mirroring `RandomForestConfig`'s default cap.
const MAX_DEFAULT_THREADS: usize = 16;

thread_local! {
    /// Reservations held *by this thread* (excluded from its own clamp).
    static MY_RESERVATIONS: Cell<usize> = const { Cell::new(0) };
    /// When set, every [`fanout`] on this thread resolves to 1.
    static SERIAL: Cell<bool> = const { Cell::new(false) };
}

/// Sets the pool size for all subsequent LM kernels (min 1).
pub fn set_threads(n: usize) {
    THREADS.store(n.max(1), Ordering::Relaxed);
}

/// Current pool size; defaults to available parallelism capped at 16.
pub fn threads() -> usize {
    match THREADS.load(Ordering::Relaxed) {
        0 => std::thread::available_parallelism()
            .map(|n| n.get().min(MAX_DEFAULT_THREADS))
            .unwrap_or(1),
        n => n,
    }
}

/// Available hardware parallelism, resolved once per process.
pub fn hardware_threads() -> usize {
    static HW: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *HW.get_or_init(|| std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1))
}

/// RAII guard: pins the pool size, restoring the previous setting on drop.
/// Used by determinism tests and benches to compare thread counts without
/// leaking the setting into other tests in the same process.
pub struct ThreadsGuard {
    previous: usize,
}

impl ThreadsGuard {
    /// Pins the pool to `n` threads until the guard drops.
    pub fn new(n: usize) -> Self {
        let previous = THREADS.swap(n.max(1), Ordering::Relaxed);
        Self { previous }
    }
}

impl Drop for ThreadsGuard {
    fn drop(&mut self) {
        THREADS.store(self.previous, Ordering::Relaxed);
    }
}

/// RAII claim on one core, held by a scheduler worker while it executes a
/// cell. Other threads' [`fanout`] shrinks by the number of outstanding
/// reservations (a thread never counts its own), so nested LM parallelism
/// yields to cell-level parallelism when cells outnumber cores.
pub struct CoreReservation {
    _private: (),
}

impl CoreReservation {
    /// Claims one core until the guard drops.
    pub fn claim() -> Self {
        RESERVED.fetch_add(1, Ordering::Relaxed);
        MY_RESERVATIONS.with(|c| c.set(c.get() + 1));
        Self { _private: () }
    }
}

impl Drop for CoreReservation {
    fn drop(&mut self) {
        RESERVED.fetch_sub(1, Ordering::Relaxed);
        MY_RESERVATIONS.with(|c| c.set(c.get() - 1));
    }
}

/// Number of cores currently reserved by *other* threads.
fn reserved_elsewhere() -> usize {
    let mine = MY_RESERVATIONS.with(Cell::get);
    RESERVED.load(Ordering::Relaxed).saturating_sub(mine)
}

/// Runs `f` with this thread's nested fan-out pinned to 1 (restores the
/// previous mode on exit, including on panic via a drop guard).
pub fn run_serial<R>(f: impl FnOnce() -> R) -> R {
    struct Restore(bool);
    impl Drop for Restore {
        fn drop(&mut self) {
            SERIAL.with(|c| c.set(self.0));
        }
    }
    let _restore = Restore(SERIAL.with(|c| c.replace(true)));
    f()
}

/// True when the current thread is in [`run_serial`] mode.
pub fn serial_mode() -> bool {
    SERIAL.with(Cell::get)
}

/// Effective worker count for a fan-out of `units` independent work items
/// when `requested` threads were asked for: 1 in serial mode, otherwise
/// clamped by the unit count and by the hardware cores not reserved by
/// other threads. Oversubscribing buys nothing for compute-bound work, and
/// because outputs never depend on the worker count the clamp is invisible
/// in the artifacts.
pub fn fanout(requested: usize, units: usize) -> usize {
    if SERIAL.with(Cell::get) {
        return 1;
    }
    let available = hardware_threads().saturating_sub(reserved_elsewhere()).max(1);
    requested.max(1).min(units.max(1)).min(available)
}

/// Runs `f` over disjoint contiguous row chunks of a row-major buffer.
///
/// `f(first_row, chunk)` receives the index of the chunk's first row and
/// the mutable chunk (`chunk.len()` is a multiple of `cols`). Row count ×
/// `flops_per_row` decides serial vs parallel; the serial path is a single
/// `f(0, data)` call, so a kernel's output cannot depend on chunk layout
/// as long as each row is computed independently.
pub fn parallel_row_chunks<F>(data: &mut [f32], cols: usize, flops_per_row: usize, f: F)
where
    F: Fn(usize, &mut [f32]) + Sync,
{
    if data.is_empty() || cols == 0 {
        return;
    }
    let rows = data.len() / cols;
    let workers = fanout(threads(), rows);
    if workers <= 1 || rows.saturating_mul(flops_per_row) < MIN_PARALLEL_FLOPS {
        f(0, data);
        return;
    }
    let chunk_rows = rows.div_ceil(workers);
    crossbeam::thread::scope(|s| {
        for (ci, chunk) in data.chunks_mut(chunk_rows * cols).enumerate() {
            let f = &f;
            s.spawn(move |_| f(ci * chunk_rows, chunk));
        }
    })
    .expect("pool worker panicked");
}

/// Runs `f(shard_index, &mut state[shard_index])` for every shard, spread
/// over `workers` scoped threads (contiguous shard ranges per worker).
///
/// This is the embedding trainers' sharded-SGD primitive: each shard owns
/// its state element exclusively, reads everything else through `&` borrows
/// captured by `f`, and the caller folds the shard states back together in
/// fixed shard order afterwards. Because a shard's output depends only on
/// its index and the frozen inputs — never on which worker ran it — the
/// serial path (`workers <= 1`) is the plain in-order loop and produces
/// bitwise-identical state at any thread count.
pub fn run_sharded<S: Send, F>(workers: usize, state: &mut [S], f: F)
where
    F: Fn(usize, &mut S) + Sync,
{
    if state.is_empty() {
        return;
    }
    if workers <= 1 || state.len() == 1 {
        for (i, s) in state.iter_mut().enumerate() {
            f(i, s);
        }
        return;
    }
    let chunk = state.len().div_ceil(workers.min(state.len()));
    crossbeam::thread::scope(|scope| {
        for (ci, states) in state.chunks_mut(chunk).enumerate() {
            let f = &f;
            scope.spawn(move |_| {
                for (j, s) in states.iter_mut().enumerate() {
                    f(ci * chunk + j, s);
                }
            });
        }
    })
    .expect("pool worker panicked");
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serializes tests that touch the process-global pool size.
    static TEST_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    fn test_lock() -> std::sync::MutexGuard<'static, ()> {
        TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn serial_and_parallel_chunks_cover_all_rows_once() {
        let _lock = test_lock();
        let cols = 8;
        for n_threads in [1, 3, 4, 7] {
            let _guard = ThreadsGuard::new(n_threads);
            let mut data = vec![0.0f32; 100 * cols];
            // Force the parallel path with a huge per-row weight.
            parallel_row_chunks(&mut data, cols, MIN_PARALLEL_FLOPS, |first, chunk| {
                for (j, row) in chunk.chunks_mut(cols).enumerate() {
                    for v in row.iter_mut() {
                        *v += (first + j) as f32;
                    }
                }
            });
            for (i, row) in data.chunks(cols).enumerate() {
                assert!(row.iter().all(|&v| v == i as f32), "row {i} under threads {n_threads}");
            }
        }
    }

    #[test]
    fn small_work_stays_serial() {
        let _lock = test_lock();
        let _guard = ThreadsGuard::new(4);
        let mut data = vec![0.0f32; 4 * 4];
        let mut hit_first = Vec::new();
        // Capture chunk starts through a lock-free trick: encode in data.
        parallel_row_chunks(&mut data, 4, 1, |first, chunk| {
            chunk[0] = (first + 1) as f32;
        });
        for (i, row) in data.chunks(4).enumerate() {
            if row[0] != 0.0 {
                hit_first.push((i, row[0]));
            }
        }
        // Serial path = one chunk starting at row 0.
        assert_eq!(hit_first, vec![(0, 1.0)]);
    }

    #[test]
    fn threads_guard_restores_previous_value() {
        let _lock = test_lock();
        let _outer = ThreadsGuard::new(5);
        {
            let _g = ThreadsGuard::new(2);
            assert_eq!(threads(), 2);
        }
        assert_eq!(threads(), 5);
    }

    #[test]
    fn serial_mode_pins_fanout_to_one_and_restores() {
        let _lock = test_lock();
        let _guard = ThreadsGuard::new(8);
        assert!(!serial_mode());
        let inner = run_serial(|| fanout(8, 8));
        assert_eq!(inner, 1);
        assert!(!serial_mode());
        assert!(fanout(8, 8) >= 1);
    }

    #[test]
    fn own_reservation_does_not_shrink_own_fanout() {
        let _lock = test_lock();
        let _guard = ThreadsGuard::new(4);
        let before = fanout(4, 64);
        let _claim = CoreReservation::claim();
        // A thread's own claim must not count against itself.
        assert_eq!(fanout(4, 64), before);
    }

    #[test]
    fn run_sharded_matches_serial_at_any_worker_count() {
        let _lock = test_lock();
        let work = |i: usize, s: &mut u64| {
            // Depends only on the shard index, as the contract requires.
            *s = (i as u64 + 1) * 17;
        };
        let mut serial = vec![0u64; 13];
        run_sharded(1, &mut serial, work);
        for workers in [2, 3, 4, 13, 32] {
            let mut parallel = vec![0u64; 13];
            run_sharded(workers, &mut parallel, work);
            assert_eq!(serial, parallel, "workers={workers}");
        }
        assert_eq!(serial[12], 13 * 17);
    }

    #[test]
    fn run_sharded_handles_empty_state() {
        let mut state: Vec<u32> = Vec::new();
        run_sharded(4, &mut state, |_, _| unreachable!());
    }

    #[test]
    fn foreign_reservations_shrink_fanout() {
        let _lock = test_lock();
        let _guard = ThreadsGuard::new(64);
        let hw = hardware_threads();
        std::thread::scope(|s| {
            let (tx, rx) = std::sync::mpsc::channel::<()>();
            let (done_tx, done_rx) = std::sync::mpsc::channel::<()>();
            s.spawn(move || {
                let _claim = CoreReservation::claim();
                tx.send(()).unwrap();
                done_rx.recv().unwrap();
            });
            rx.recv().unwrap();
            let shrunk = fanout(64, 64);
            assert_eq!(shrunk, hw.saturating_sub(1).max(1));
            done_tx.send(()).unwrap();
        });
        assert_eq!(fanout(64, 64), hw.min(64));
    }
}
