//! Indexed triple store with hierarchy queries.

use crate::{Entity, EntityId, Relation, SubOntology, Triple};
use std::collections::{HashMap, HashSet};

/// Builder for [`Ontology`]. Collects entities and triples, then freezes
/// them into an indexed, query-ready store.
#[derive(Debug, Default)]
pub struct OntologyBuilder {
    entities: Vec<Entity>,
    triples: Vec<Triple>,
}

impl OntologyBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds an entity and returns its id.
    pub fn add_entity(&mut self, name: impl Into<String>, kind: SubOntology) -> EntityId {
        let id = EntityId(self.entities.len() as u32);
        self.entities.push(Entity::new(id, name, kind));
        id
    }

    /// Adds a triple. Duplicates are removed at [`OntologyBuilder::build`].
    pub fn add_triple(&mut self, subject: EntityId, relation: Relation, object: EntityId) {
        debug_assert!(subject.index() < self.entities.len(), "unknown subject");
        debug_assert!(object.index() < self.entities.len(), "unknown object");
        self.triples.push(Triple::new(subject, relation, object));
    }

    /// Number of entities added so far.
    pub fn n_entities(&self) -> usize {
        self.entities.len()
    }

    /// Entities added so far, in id order.
    pub fn entities_slice(&self) -> &[Entity] {
        &self.entities
    }

    /// Freezes the builder into an indexed [`Ontology`], deduplicating
    /// triples and dropping self-loops.
    pub fn build(self) -> Ontology {
        let n = self.entities.len();
        let mut triple_set: HashSet<(u32, u8, u32)> = HashSet::with_capacity(self.triples.len());
        let mut triples = Vec::with_capacity(self.triples.len());
        for t in self.triples {
            if t.subject == t.object {
                continue;
            }
            if triple_set.insert(t.key()) {
                triples.push(t);
            }
        }
        // Stable order independent of insertion order, so downstream
        // sampling is reproducible no matter how the graph was assembled.
        triples.sort_unstable();

        let mut parents: Vec<Vec<EntityId>> = vec![Vec::new(); n];
        let mut children: Vec<Vec<EntityId>> = vec![Vec::new(); n];
        let mut by_relation: Vec<Vec<u32>> = vec![Vec::new(); Relation::ALL.len()];
        for (i, t) in triples.iter().enumerate() {
            by_relation[t.relation.code() as usize].push(i as u32);
            if t.relation == Relation::IsA {
                parents[t.subject.index()].push(t.object);
                children[t.object.index()].push(t.subject);
            }
        }

        let mut name_to_id = HashMap::with_capacity(n);
        for e in &self.entities {
            name_to_id.entry(e.name.clone()).or_insert(e.id);
        }

        Ontology { entities: self.entities, triples, triple_set, parents, children, by_relation, name_to_id }
    }
}

/// An immutable, indexed ontology: entities plus directed labelled triples,
/// with the `is_a` hierarchy materialised for parent/child/sibling queries.
#[derive(Debug)]
pub struct Ontology {
    entities: Vec<Entity>,
    triples: Vec<Triple>,
    triple_set: HashSet<(u32, u8, u32)>,
    parents: Vec<Vec<EntityId>>,
    children: Vec<Vec<EntityId>>,
    by_relation: Vec<Vec<u32>>,
    name_to_id: HashMap<String, EntityId>,
}

impl Ontology {
    /// Number of entities.
    pub fn n_entities(&self) -> usize {
        self.entities.len()
    }

    /// Number of distinct triples.
    pub fn n_triples(&self) -> usize {
        self.triples.len()
    }

    /// Entity lookup by id. Panics on out-of-range ids (ids are dense and
    /// only minted by the builder).
    #[inline]
    pub fn entity(&self, id: EntityId) -> &Entity {
        &self.entities[id.index()]
    }

    /// Entity label by id.
    #[inline]
    pub fn name(&self, id: EntityId) -> &str {
        &self.entities[id.index()].name
    }

    /// All entities in id order.
    pub fn entities(&self) -> &[Entity] {
        &self.entities
    }

    /// All triples in canonical (sorted) order.
    pub fn triples(&self) -> &[Triple] {
        &self.triples
    }

    /// Whether the exact triple is asserted in the ontology.
    #[inline]
    pub fn contains(&self, t: Triple) -> bool {
        self.triple_set.contains(&t.key())
    }

    /// Whether a triple holds, honouring symmetric relations: a symmetric
    /// triple counts as present in either direction.
    pub fn holds(&self, t: Triple) -> bool {
        self.contains(t) || (t.relation.is_symmetric() && self.contains(t.flipped()))
    }

    /// Indices (into [`Ontology::triples`]) of all triples with the given
    /// relation.
    pub fn triples_with_relation(&self, r: Relation) -> impl Iterator<Item = Triple> + '_ {
        self.by_relation[r.code() as usize].iter().map(|&i| self.triples[i as usize])
    }

    /// Number of triples with the given relation.
    pub fn n_with_relation(&self, r: Relation) -> usize {
        self.by_relation[r.code() as usize].len()
    }

    /// Direct `is_a` parents of an entity.
    #[inline]
    pub fn parents(&self, id: EntityId) -> &[EntityId] {
        &self.parents[id.index()]
    }

    /// Direct `is_a` children of an entity.
    #[inline]
    pub fn children(&self, id: EntityId) -> &[EntityId] {
        &self.children[id.index()]
    }

    /// Sibling entities: those sharing at least one direct `is_a` parent,
    /// excluding the entity itself (`p(o1) ∩ p(o2) ≠ ∅` in §2.2). Returned
    /// in ascending id order without duplicates.
    pub fn siblings(&self, id: EntityId) -> Vec<EntityId> {
        let mut out: Vec<EntityId> = Vec::new();
        for &p in self.parents(id) {
            out.extend(self.children(p).iter().copied().filter(|&c| c != id));
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Entities with no `is_a` parents (hierarchy roots).
    pub fn roots(&self) -> Vec<EntityId> {
        self.entities
            .iter()
            .filter(|e| self.parents(e.id).is_empty())
            .map(|e| e.id)
            .collect()
    }

    /// All ancestors (transitive `is_a` closure), excluding the entity.
    pub fn ancestors(&self, id: EntityId) -> Vec<EntityId> {
        let mut seen: HashSet<EntityId> = HashSet::new();
        let mut stack: Vec<EntityId> = self.parents(id).to_vec();
        while let Some(p) = stack.pop() {
            if seen.insert(p) {
                stack.extend_from_slice(self.parents(p));
            }
        }
        let mut out: Vec<EntityId> = seen.into_iter().collect();
        out.sort_unstable();
        out
    }

    /// Entity lookup by exact name (first entity when names collide).
    pub fn entity_by_name(&self, name: &str) -> Option<EntityId> {
        self.name_to_id.get(name).copied()
    }

    /// Renders a triple as the text form used in prompts and corpora:
    /// `"<subject name> <relation phrase> <object name>"`.
    pub fn render(&self, t: Triple) -> String {
        format!("{} {} {}", self.name(t.subject), t.relation.phrase(), self.name(t.object))
    }

    /// Entities belonging to a given sub-ontology.
    pub fn entities_of(&self, kind: SubOntology) -> impl Iterator<Item = &Entity> {
        self.entities.iter().filter(move |e| e.kind == kind)
    }

    /// Extracts the induced subgraph over a set of entities: those
    /// entities (re-numbered densely, original order preserved) plus every
    /// triple whose endpoints both survive. Useful for scale-down
    /// experiments and for carving neighbourhoods out of a real ChEBI
    /// import.
    pub fn subgraph(&self, keep: &HashSet<EntityId>) -> Ontology {
        let mut b = OntologyBuilder::new();
        let mut remap: HashMap<EntityId, EntityId> = HashMap::with_capacity(keep.len());
        for e in &self.entities {
            if keep.contains(&e.id) {
                remap.insert(e.id, b.add_entity(e.name.clone(), e.kind));
            }
        }
        for t in &self.triples {
            if let (Some(&s), Some(&o)) = (remap.get(&t.subject), remap.get(&t.object)) {
                b.add_triple(s, t.relation, o);
            }
        }
        b.build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Ontology {
        // acid hierarchy:      compound
        //                      /      \
        //                 acid        role-ish (all Chemical here)
        //                /    \
        //         acetic a.  formic a.
        let mut b = OntologyBuilder::new();
        let compound = b.add_entity("chemical compound", SubOntology::Chemical);
        let acid = b.add_entity("carboxylic acid", SubOntology::Chemical);
        let acetic = b.add_entity("acetic acid", SubOntology::Chemical);
        let formic = b.add_entity("formic acid", SubOntology::Chemical);
        let solvent = b.add_entity("solvent", SubOntology::Role);
        b.add_triple(acid, Relation::IsA, compound);
        b.add_triple(acetic, Relation::IsA, acid);
        b.add_triple(formic, Relation::IsA, acid);
        b.add_triple(acetic, Relation::HasRole, solvent);
        // Duplicate + self-loop, both must be dropped.
        b.add_triple(acetic, Relation::IsA, acid);
        b.add_triple(acid, Relation::HasPart, acid);
        b.build()
    }

    #[test]
    fn builder_dedups_and_drops_self_loops() {
        let o = tiny();
        assert_eq!(o.n_entities(), 5);
        assert_eq!(o.n_triples(), 4);
    }

    #[test]
    fn hierarchy_queries() {
        let o = tiny();
        let acid = o.entity_by_name("carboxylic acid").unwrap();
        let acetic = o.entity_by_name("acetic acid").unwrap();
        let formic = o.entity_by_name("formic acid").unwrap();
        let compound = o.entity_by_name("chemical compound").unwrap();
        assert_eq!(o.parents(acetic), &[acid]);
        let mut kids = o.children(acid).to_vec();
        kids.sort_unstable();
        assert_eq!(kids, vec![acetic, formic]);
        assert_eq!(o.siblings(acetic), vec![formic]);
        assert_eq!(o.ancestors(acetic), vec![compound, acid]);
        let roots = o.roots();
        assert!(roots.contains(&compound));
        assert!(!roots.contains(&acetic));
    }

    #[test]
    fn contains_is_directional() {
        let o = tiny();
        let acetic = o.entity_by_name("acetic acid").unwrap();
        let acid = o.entity_by_name("carboxylic acid").unwrap();
        let t = Triple::new(acetic, Relation::IsA, acid);
        assert!(o.contains(t));
        assert!(!o.contains(t.flipped()));
    }

    #[test]
    fn holds_respects_symmetry() {
        let mut b = OntologyBuilder::new();
        let a = b.add_entity("keto form", SubOntology::Chemical);
        let bb = b.add_entity("enol form", SubOntology::Chemical);
        b.add_triple(a, Relation::IsTautomerOf, bb);
        let o = b.build();
        let t = Triple::new(a, Relation::IsTautomerOf, bb);
        assert!(o.holds(t));
        assert!(o.holds(t.flipped()));
        assert!(!o.contains(t.flipped()));
    }

    #[test]
    fn render_uses_phrases() {
        let o = tiny();
        let acetic = o.entity_by_name("acetic acid").unwrap();
        let solvent = o.entity_by_name("solvent").unwrap();
        let t = Triple::new(acetic, Relation::HasRole, solvent);
        assert_eq!(o.render(t), "acetic acid has role solvent");
    }

    #[test]
    fn relation_index_counts() {
        let o = tiny();
        assert_eq!(o.n_with_relation(Relation::IsA), 3);
        assert_eq!(o.n_with_relation(Relation::HasRole), 1);
        assert_eq!(o.triples_with_relation(Relation::IsA).count(), 3);
    }

    #[test]
    fn subgraph_keeps_induced_triples_only() {
        let o = tiny();
        let acid = o.entity_by_name("carboxylic acid").unwrap();
        let acetic = o.entity_by_name("acetic acid").unwrap();
        let formic = o.entity_by_name("formic acid").unwrap();
        let keep: HashSet<EntityId> = [acid, acetic, formic].into_iter().collect();
        let sub = o.subgraph(&keep);
        assert_eq!(sub.n_entities(), 3);
        // Two is_a edges survive; the has_role edge loses its object.
        assert_eq!(sub.n_triples(), 2);
        let a2 = sub.entity_by_name("acetic acid").unwrap();
        let f2 = sub.entity_by_name("formic acid").unwrap();
        assert_eq!(sub.siblings(a2), vec![f2]);
    }

    #[test]
    fn entities_of_filters_by_kind() {
        let o = tiny();
        assert_eq!(o.entities_of(SubOntology::Role).count(), 1);
        assert_eq!(o.entities_of(SubOntology::Chemical).count(), 4);
    }
}
