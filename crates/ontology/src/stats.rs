//! Ontology summary statistics (paper §3.1, Tables A1 and A3).

use crate::{Ontology, Relation, SubOntology};
use serde::Serialize;

/// Aggregate statistics over an ontology.
#[derive(Debug, Clone, Serialize)]
pub struct OntologyStats {
    /// Total number of entities.
    pub n_entities: usize,
    /// Entities per sub-ontology, in [`SubOntology::ALL`] order.
    pub entities_by_kind: Vec<(String, usize)>,
    /// Total number of triples.
    pub n_triples: usize,
    /// Triples per relationship type, descending by count.
    pub triples_by_relation: Vec<(String, usize)>,
    /// Mean direct `is_a` parents per non-root entity.
    pub mean_parents: f64,
    /// Fraction of entities that have at least one sibling.
    pub sibling_coverage: f64,
}

impl OntologyStats {
    /// Computes statistics for an ontology. `sibling_coverage` is estimated
    /// on a deterministic stride sample to stay cheap on large graphs.
    pub fn compute(o: &Ontology) -> Self {
        let entities_by_kind = SubOntology::ALL
            .iter()
            .map(|&k| (k.name().to_string(), o.entities_of(k).count()))
            .collect();

        let mut triples_by_relation: Vec<(String, usize)> = Relation::ALL
            .iter()
            .map(|&r| (r.ident().to_string(), o.n_with_relation(r)))
            .collect();
        triples_by_relation.sort_by_key(|&(_, n)| std::cmp::Reverse(n));

        let non_root = o.entities().iter().filter(|e| !o.parents(e.id).is_empty());
        let (count, parent_sum) =
            non_root.fold((0usize, 0usize), |(c, s), e| (c + 1, s + o.parents(e.id).len()));
        let mean_parents = if count == 0 { 0.0 } else { parent_sum as f64 / count as f64 };

        let stride = (o.n_entities() / 2_000).max(1);
        let sampled: Vec<_> = o.entities().iter().step_by(stride).collect();
        let with_sibs =
            sampled.iter().filter(|e| !o.siblings(e.id).is_empty()).count();
        let sibling_coverage =
            if sampled.is_empty() { 0.0 } else { with_sibs as f64 / sampled.len() as f64 };

        Self {
            n_entities: o.n_entities(),
            entities_by_kind,
            n_triples: o.n_triples(),
            triples_by_relation,
            mean_parents,
            sibling_coverage,
        }
    }

    /// Renders the Table A3-style relationship-count table.
    pub fn relation_table(&self) -> kcb_util::fmt::Table {
        let mut t = kcb_util::fmt::Table::new(
            "Triples per relationship type (cf. paper Table A3)",
            &["Relationship type", "Number of triples"],
        )
        .numeric_after(1);
        for (name, n) in &self.triples_by_relation {
            t.row(vec![name.replace('_', " "), kcb_util::fmt::count(*n)]);
        }
        t.row(vec!["Total #triples".into(), kcb_util::fmt::count(self.n_triples)]);
        t
    }

    /// Renders the Table A1-style sub-ontology table with entity counts.
    pub fn subontology_table(&self) -> kcb_util::fmt::Table {
        let mut t = kcb_util::fmt::Table::new(
            "Entities per sub-ontology (cf. paper Table A1 / §3.1)",
            &["Sub-ontology", "Entities"],
        )
        .numeric_after(1);
        for (name, n) in &self.entities_by_kind {
            t.row(vec![name.clone(), kcb_util::fmt::count(*n)]);
        }
        t.row(vec!["Total".into(), kcb_util::fmt::count(self.n_entities)]);
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{SyntheticConfig, SyntheticGenerator};

    #[test]
    fn stats_are_consistent() {
        let o = SyntheticGenerator::new(SyntheticConfig { scale: 0.02, seed: 5 })
            .unwrap()
            .generate();
        let s = OntologyStats::compute(&o);
        assert_eq!(s.n_entities, o.n_entities());
        assert_eq!(s.n_triples, o.n_triples());
        let kind_sum: usize = s.entities_by_kind.iter().map(|(_, n)| n).sum();
        assert_eq!(kind_sum, s.n_entities);
        let rel_sum: usize = s.triples_by_relation.iter().map(|(_, n)| n).sum();
        assert_eq!(rel_sum, s.n_triples);
        assert!(s.mean_parents >= 1.0 && s.mean_parents < 2.5, "{}", s.mean_parents);
        assert!(s.sibling_coverage > 0.5);
        // Descending order.
        for w in s.triples_by_relation.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
    }

    #[test]
    fn tables_render() {
        let o = SyntheticGenerator::new(SyntheticConfig { scale: 0.01, seed: 5 })
            .unwrap()
            .generate();
        let s = OntologyStats::compute(&o);
        let rel = s.relation_table().render();
        assert!(rel.contains("is a"));
        assert!(rel.contains("Total"));
        let sub = s.subontology_table().render();
        assert!(sub.contains("Role entities"));
    }
}
