//! The ten ChEBI relationship types (paper Table A2).

use serde::{Deserialize, Serialize};

/// A ChEBI relationship type.
///
/// The paper keeps nine of the ten types for its tasks, dropping
/// `is conjugate acid of` because it is the inverse of
/// `is conjugate base of` (§2.1); use [`Relation::TASK_SET`] for that subset.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum Relation {
    IsA,
    HasRole,
    HasFunctionalParent,
    IsConjugateBaseOf,
    IsConjugateAcidOf,
    HasPart,
    IsEnantiomerOf,
    IsTautomerOf,
    HasParentHydride,
    IsSubstituentGroupFrom,
}

impl Relation {
    /// All ten relations, ordered by ChEBI frequency (paper Table A3).
    pub const ALL: [Relation; 10] = [
        Relation::IsA,
        Relation::HasRole,
        Relation::HasFunctionalParent,
        Relation::IsConjugateBaseOf,
        Relation::IsConjugateAcidOf,
        Relation::HasPart,
        Relation::IsEnantiomerOf,
        Relation::IsTautomerOf,
        Relation::HasParentHydride,
        Relation::IsSubstituentGroupFrom,
    ];

    /// The nine relations used by the curation tasks: everything except
    /// `is conjugate acid of` (§2.1).
    pub const TASK_SET: [Relation; 9] = [
        Relation::IsA,
        Relation::HasRole,
        Relation::HasFunctionalParent,
        Relation::IsConjugateBaseOf,
        Relation::HasPart,
        Relation::IsEnantiomerOf,
        Relation::IsTautomerOf,
        Relation::HasParentHydride,
        Relation::IsSubstituentGroupFrom,
    ];

    /// Stable small integer code, usable as an array index.
    #[inline]
    pub fn code(self) -> u8 {
        match self {
            Relation::IsA => 0,
            Relation::HasRole => 1,
            Relation::HasFunctionalParent => 2,
            Relation::IsConjugateBaseOf => 3,
            Relation::IsConjugateAcidOf => 4,
            Relation::HasPart => 5,
            Relation::IsEnantiomerOf => 6,
            Relation::IsTautomerOf => 7,
            Relation::HasParentHydride => 8,
            Relation::IsSubstituentGroupFrom => 9,
        }
    }

    /// Inverse of [`Relation::code`]. Panics on codes ≥ 10.
    #[inline]
    pub fn from_code(code: u8) -> Relation {
        Relation::ALL
            .iter()
            .copied()
            .find(|r| r.code() == code)
            .unwrap_or_else(|| panic!("invalid relation code {code}"))
    }

    /// Snake-case identifier as used in OBO files (`is_a`, `has_role`, …).
    pub fn ident(self) -> &'static str {
        match self {
            Relation::IsA => "is_a",
            Relation::HasRole => "has_role",
            Relation::HasFunctionalParent => "has_functional_parent",
            Relation::IsConjugateBaseOf => "is_conjugate_base_of",
            Relation::IsConjugateAcidOf => "is_conjugate_acid_of",
            Relation::HasPart => "has_part",
            Relation::IsEnantiomerOf => "is_enantiomer_of",
            Relation::IsTautomerOf => "is_tautomer_of",
            Relation::HasParentHydride => "has_parent_hydride",
            Relation::IsSubstituentGroupFrom => "is_substituent_group_from",
        }
    }

    /// Human-readable phrase used when verbalising triples into text
    /// (`"is a"`, `"has role"`, …).
    pub fn phrase(self) -> &'static str {
        match self {
            Relation::IsA => "is a",
            Relation::HasRole => "has role",
            Relation::HasFunctionalParent => "has functional parent",
            Relation::IsConjugateBaseOf => "is conjugate base of",
            Relation::IsConjugateAcidOf => "is conjugate acid of",
            Relation::HasPart => "has part",
            Relation::IsEnantiomerOf => "is enantiomer of",
            Relation::IsTautomerOf => "is tautomer of",
            Relation::HasParentHydride => "has parent hydride",
            Relation::IsSubstituentGroupFrom => "is substituent group from",
        }
    }

    /// Parses an identifier in either snake-case or phrase form.
    pub fn parse(s: &str) -> Option<Relation> {
        let norm: String =
            s.trim().chars().map(|c| if c == ' ' { '_' } else { c.to_ascii_lowercase() }).collect();
        Relation::ALL.iter().copied().find(|r| r.ident() == norm)
    }

    /// Definition text (paper Table A2).
    pub fn description(self) -> &'static str {
        match self {
            Relation::IsA => {
                "Defines the relationship between more specific and more general concepts"
            }
            Relation::HasRole => {
                "Defines the relationship between a molecular entity and the particular \
                 behaviour it may exhibit (either by nature or by human application)"
            }
            Relation::HasFunctionalParent => {
                "Defines the relationship between two molecular entities or classes of \
                 entities, of which one possesses one or more characteristic groups from \
                 which the other can be derived by functional modification"
            }
            Relation::IsConjugateBaseOf => {
                "Defines the relationship between acids and their conjugate bases"
            }
            Relation::IsConjugateAcidOf => {
                "Defines the relationship between bases and their conjugate acids"
            }
            Relation::HasPart => "Defines the relationship between part and whole",
            Relation::IsEnantiomerOf => {
                "Defines the cyclic relationship used in instances when two entities are \
                 non-superimposable mirror images of each other"
            }
            Relation::IsTautomerOf => {
                "Defines the cyclic relationship used to show the interrelationship between \
                 two tautomers"
            }
            Relation::HasParentHydride => {
                "Defines the relationship between an entity and its parent hydride"
            }
            Relation::IsSubstituentGroupFrom => {
                "Defines the relationship between a substituent group or atom and its parent \
                 molecular entity, from which it is formed by loss of one or more protons or \
                 simple groups such as hydroxyl groups"
            }
        }
    }

    /// Example triple rendered as text (paper Table A2).
    pub fn example(self) -> &'static str {
        match self {
            Relation::IsA => "Tetrabutylammonium fluoride is a fluoride salt",
            Relation::HasRole => "Ammonium chloride has role ferroptosis inhibitor",
            Relation::HasFunctionalParent => {
                "Vecuronium bromide has functional parent 5alpha-androstane"
            }
            Relation::IsConjugateBaseOf => "Mannarate(1-) is conjugate base of mannaric acid",
            Relation::IsConjugateAcidOf => "Mannaric acid is conjugate acid of mannarate(1-)",
            Relation::HasPart => "Cobalt dichloride has part cobalt(2+)",
            Relation::IsEnantiomerOf => {
                "Dexverapamil hydrochloride is enantiomer of (S)-verapamil hydrochloride"
            }
            Relation::IsTautomerOf => {
                "2-mercaptosuccinate is tautomer of 3-carboxy-2-sulfidopropanoate"
            }
            Relation::HasParentHydride => "Serpentine has parent hydride 18-oxayohimban",
            Relation::IsSubstituentGroupFrom => {
                "N(2)-L-glutamino(1-) group is substituent group from L-glutaminate"
            }
        }
    }

    /// Symmetric relations hold in both directions
    /// (`is tautomer of`, `is enantiomer of`).
    pub fn is_symmetric(self) -> bool {
        matches!(self, Relation::IsTautomerOf | Relation::IsEnantiomerOf)
    }

    /// The inverse relation, when ChEBI defines one
    /// (`is conjugate base of` ↔ `is conjugate acid of`).
    pub fn inverse(self) -> Option<Relation> {
        match self {
            Relation::IsConjugateBaseOf => Some(Relation::IsConjugateAcidOf),
            Relation::IsConjugateAcidOf => Some(Relation::IsConjugateBaseOf),
            r if r.is_symmetric() => Some(r),
            _ => None,
        }
    }

    /// ChEBI triple count as of February 2022 (paper Table A3). Used to
    /// calibrate the synthetic generator's relation mix.
    pub fn chebi_count(self) -> usize {
        match self {
            Relation::IsA => 230_241,
            Relation::HasRole => 42_095,
            Relation::HasFunctionalParent => 18_204,
            Relation::IsConjugateBaseOf => 8_247,
            Relation::IsConjugateAcidOf => 8_247,
            Relation::HasPart => 3_911,
            Relation::IsEnantiomerOf => 2_674,
            Relation::IsTautomerOf => 1_804,
            Relation::HasParentHydride => 1_736,
            Relation::IsSubstituentGroupFrom => 1_279,
        }
    }
}

impl std::fmt::Display for Relation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.ident())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_round_trip() {
        for r in Relation::ALL {
            assert_eq!(Relation::from_code(r.code()), r);
        }
    }

    #[test]
    fn parse_accepts_both_forms() {
        assert_eq!(Relation::parse("is_a"), Some(Relation::IsA));
        assert_eq!(Relation::parse("has role"), Some(Relation::HasRole));
        assert_eq!(Relation::parse("Is Conjugate Base Of"), Some(Relation::IsConjugateBaseOf));
        assert_eq!(Relation::parse("no_such_relation"), None);
    }

    #[test]
    fn task_set_excludes_conjugate_acid() {
        assert_eq!(Relation::TASK_SET.len(), 9);
        assert!(!Relation::TASK_SET.contains(&Relation::IsConjugateAcidOf));
    }

    #[test]
    fn symmetry_and_inverses() {
        assert!(Relation::IsTautomerOf.is_symmetric());
        assert!(Relation::IsEnantiomerOf.is_symmetric());
        assert!(!Relation::IsA.is_symmetric());
        assert_eq!(Relation::IsConjugateBaseOf.inverse(), Some(Relation::IsConjugateAcidOf));
        assert_eq!(Relation::IsConjugateAcidOf.inverse(), Some(Relation::IsConjugateBaseOf));
        assert_eq!(Relation::IsTautomerOf.inverse(), Some(Relation::IsTautomerOf));
        assert_eq!(Relation::IsA.inverse(), None);
    }

    #[test]
    fn table_a3_total_matches_paper() {
        let total: usize = Relation::ALL.iter().map(|r| r.chebi_count()).sum();
        assert_eq!(total, 318_438);
    }

    #[test]
    fn metadata_complete() {
        for r in Relation::ALL {
            assert!(!r.ident().is_empty());
            assert!(!r.phrase().is_empty());
            assert!(!r.description().is_empty());
            assert!(!r.example().is_empty());
            assert_eq!(Relation::parse(r.ident()), Some(r));
        }
    }
}
