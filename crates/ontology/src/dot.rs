//! Graphviz DOT export for ontology neighbourhoods — handy when inspecting
//! sibling structure or debugging negative samples visually.

use crate::{EntityId, Ontology, Relation};
use std::collections::HashSet;
use std::io::Write;

/// Writes the `radius`-hop neighbourhood of `center` (following edges in
/// both directions) as a Graphviz digraph. `is_a` edges are solid, all
/// other relations dashed and labelled.
pub fn write_neighbourhood<W: Write>(
    o: &Ontology,
    center: EntityId,
    radius: usize,
    mut w: W,
) -> std::io::Result<()> {
    // Collect nodes by BFS over undirected adjacency.
    let mut nodes: HashSet<EntityId> = HashSet::from([center]);
    let mut frontier = vec![center];
    for _ in 0..radius {
        let mut next = Vec::new();
        for t in o.triples() {
            let (s, ob) = (t.subject, t.object);
            if frontier.contains(&s) && nodes.insert(ob) {
                next.push(ob);
            }
            if frontier.contains(&ob) && nodes.insert(s) {
                next.push(s);
            }
        }
        frontier = next;
        if frontier.is_empty() {
            break;
        }
    }

    writeln!(w, "digraph ontology {{")?;
    writeln!(w, "  rankdir=BT;")?;
    writeln!(w, "  node [shape=box, fontsize=10];")?;
    for &id in &nodes {
        let shape = if id == center { ", style=filled, fillcolor=lightyellow" } else { "" };
        writeln!(w, "  n{} [label=\"{}\"{shape}];", id.0, escape(o.name(id)))?;
    }
    for t in o.triples() {
        if nodes.contains(&t.subject) && nodes.contains(&t.object) {
            if t.relation == Relation::IsA {
                writeln!(w, "  n{} -> n{};", t.subject.0, t.object.0)?;
            } else {
                writeln!(
                    w,
                    "  n{} -> n{} [style=dashed, label=\"{}\", fontsize=8];",
                    t.subject.0,
                    t.object.0,
                    t.relation.ident()
                )?;
            }
        }
    }
    writeln!(w, "}}")
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{OntologyBuilder, SubOntology};

    fn tiny() -> (Ontology, EntityId) {
        let mut b = OntologyBuilder::new();
        let root = b.add_entity("acid", SubOntology::Chemical);
        let a = b.add_entity("acetic \"acid\"", SubOntology::Chemical);
        let c = b.add_entity("formic acid", SubOntology::Chemical);
        let role = b.add_entity("solvent", SubOntology::Role);
        b.add_triple(a, Relation::IsA, root);
        b.add_triple(c, Relation::IsA, root);
        b.add_triple(a, Relation::HasRole, role);
        (b.build(), a)
    }

    #[test]
    fn dot_contains_nodes_edges_and_escaping() {
        let (o, a) = tiny();
        let mut buf = Vec::new();
        write_neighbourhood(&o, a, 2, &mut buf).unwrap();
        let s = String::from_utf8(buf).unwrap();
        assert!(s.starts_with("digraph ontology {"));
        assert!(s.contains("acetic \\\"acid\\\""), "quotes escaped: {s}");
        assert!(s.contains("style=dashed, label=\"has_role\""));
        assert!(s.contains("lightyellow"), "center highlighted");
        assert!(s.trim_end().ends_with('}'));
        // 1-hop from 'acetic acid' reaches root and role; 2-hop reaches the
        // sibling through the root.
        assert!(s.contains("formic acid"));
    }

    #[test]
    fn radius_zero_is_single_node() {
        let (o, a) = tiny();
        let mut buf = Vec::new();
        write_neighbourhood(&o, a, 0, &mut buf).unwrap();
        let s = String::from_utf8(buf).unwrap();
        assert!(!s.contains("formic"));
        assert_eq!(s.matches("label=").count(), 1);
    }
}
