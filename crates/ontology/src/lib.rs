//! ChEBI-like ontology substrate.
//!
//! This crate provides everything the benchmark needs from the Chemical
//! Entities of Biological Interest (ChEBI) database:
//!
//! * a typed knowledge-graph model — [`Entity`], [`Relation`], [`Triple`],
//!   and the indexed [`Ontology`] store with hierarchy queries
//!   (parents / children / siblings) used by the task-3 negative sampler;
//! * a deterministic **synthetic ChEBI generator** ([`synthetic`]) calibrated
//!   to the statistics published in the paper (entity counts per
//!   sub-ontology, triple counts per relationship type, and the token
//!   profile of entity names), used because the February-2022 ChEBI dump is
//!   not redistributable here;
//! * an OBO-flavoured flat-file reader/writer ([`obo`]) so that a real ChEBI
//!   export can be dropped in instead of the synthetic graph;
//! * summary statistics ([`stats`]) that regenerate the paper's Tables
//!   A1–A3.

pub mod dot;
pub mod entity;
pub mod graph;
mod names;
pub mod obo;
pub mod relation;
pub mod stats;
pub mod synthetic;
pub mod triple;
pub mod validate;

pub use entity::{Entity, EntityId, SubOntology};
pub use graph::{Ontology, OntologyBuilder};
pub use relation::Relation;
pub use stats::OntologyStats;
pub use synthetic::{SyntheticConfig, SyntheticGenerator};
pub use triple::Triple;
