//! Entities and sub-ontologies (paper Table A1).

use serde::{Deserialize, Serialize};

/// Compact identifier of an entity inside one [`crate::Ontology`].
///
/// Ids are dense (`0..n_entities`) so that per-entity side tables can be
/// plain `Vec`s instead of hash maps.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct EntityId(pub u32);

impl EntityId {
    /// The id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for EntityId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Mirrors ChEBI's accession style.
        write!(f, "CHEBI:{}", self.0)
    }
}

/// The three ChEBI sub-ontologies (paper Table A1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SubOntology {
    /// Molecular entities classified by composition and structure
    /// (hydrocarbons, carboxylic acids, tertiary amines, …).
    Chemical,
    /// Entities classified by chemical / biological / application role
    /// (ligand, antibiotic, pesticide, …).
    Role,
    /// Sub-atomic particles (electron, photon, nucleon).
    SubatomicParticle,
}

impl SubOntology {
    /// All sub-ontologies in display order.
    pub const ALL: [SubOntology; 3] =
        [SubOntology::Chemical, SubOntology::Role, SubOntology::SubatomicParticle];

    /// Display name used in reports.
    pub fn name(self) -> &'static str {
        match self {
            SubOntology::Chemical => "Chemical entities",
            SubOntology::Role => "Role entities",
            SubOntology::SubatomicParticle => "Subatomic particles",
        }
    }

    /// Definition text (paper Table A1).
    pub fn definition(self) -> &'static str {
        match self {
            SubOntology::Chemical => {
                "Classifies molecular entities (or parts of entities) according to their \
                 composition and structure"
            }
            SubOntology::Role => {
                "Classifies entities on the basis of their role within: (i) a chemical context; \
                 (ii) a biological context; or (iii) intended use by humans"
            }
            SubOntology::SubatomicParticle => "Classifies sub-atomic particle entities",
        }
    }

    /// Example entities (paper Table A1).
    pub fn examples(self) -> &'static str {
        match self {
            SubOntology::Chemical => "Hydrocarbons, carboxylic acids, tertiary amines",
            SubOntology::Role => {
                "(i) Ligand, inhibitor, surfactant; (ii) antibiotic, antiviral agent, coenzyme, \
                 hormone; (iii) pesticide, antirheumatic drug, fuel"
            }
            SubOntology::SubatomicParticle => "Electron, photon, nucleon",
        }
    }
}

/// One ontology node: a chemical entity, a role, or a particle.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Entity {
    /// Dense identifier within the owning ontology.
    pub id: EntityId,
    /// Primary label, e.g. `"(2S,6R)-6-methyloxan-2-yl acetate"`.
    pub name: String,
    /// Which sub-ontology the entity belongs to.
    pub kind: SubOntology,
}

impl Entity {
    /// Convenience constructor.
    pub fn new(id: EntityId, name: impl Into<String>, kind: SubOntology) -> Self {
        Self { id, name: name.into(), kind }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn id_displays_like_chebi_accession() {
        assert_eq!(EntityId(15377).to_string(), "CHEBI:15377");
        assert_eq!(EntityId(7).index(), 7);
    }

    #[test]
    fn subontology_metadata_is_complete() {
        for so in SubOntology::ALL {
            assert!(!so.name().is_empty());
            assert!(!so.definition().is_empty());
            assert!(!so.examples().is_empty());
        }
        assert_eq!(SubOntology::ALL.len(), 3);
    }
}
