//! Knowledge-graph triples `(subject, relation, object)`.

use crate::{EntityId, Relation};
use serde::{Deserialize, Serialize};

/// A directed labelled edge: `subject --relation--> object` (§2.2's
/// `t = (s, o, l)`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Triple {
    /// Subject (head) entity.
    pub subject: EntityId,
    /// Relationship label.
    pub relation: Relation,
    /// Object (tail) entity.
    pub object: EntityId,
}

impl Triple {
    /// Convenience constructor.
    #[inline]
    pub fn new(subject: EntityId, relation: Relation, object: EntityId) -> Self {
        Self { subject, relation, object }
    }

    /// The triple with subject and object swapped — the task-2 corruption.
    #[inline]
    pub fn flipped(self) -> Self {
        Self { subject: self.object, relation: self.relation, object: self.subject }
    }

    /// The triple with the object replaced — the task-3 corruption.
    #[inline]
    pub fn with_object(self, object: EntityId) -> Self {
        Self { object, ..self }
    }

    /// Compact key for hash-set membership tests.
    #[inline]
    pub fn key(self) -> (u32, u8, u32) {
        (self.subject.0, self.relation.code(), self.object.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flip_swaps_endpoints() {
        let t = Triple::new(EntityId(1), Relation::HasRole, EntityId(2));
        let f = t.flipped();
        assert_eq!(f.subject, EntityId(2));
        assert_eq!(f.object, EntityId(1));
        assert_eq!(f.relation, Relation::HasRole);
        assert_eq!(f.flipped(), t);
    }

    #[test]
    fn with_object_replaces_only_object() {
        let t = Triple::new(EntityId(1), Relation::IsA, EntityId(2));
        let u = t.with_object(EntityId(9));
        assert_eq!(u.subject, EntityId(1));
        assert_eq!(u.relation, Relation::IsA);
        assert_eq!(u.object, EntityId(9));
    }

    #[test]
    fn key_distinguishes_direction() {
        let t = Triple::new(EntityId(1), Relation::IsA, EntityId(2));
        assert_ne!(t.key(), t.flipped().key());
    }
}
