//! Structural validation of an ontology — the checks a curator (or CI)
//! runs before trusting a graph: `is_a` acyclicity, orphan detection,
//! dangling symmetric/inverse pairs and name hygiene.

use crate::{Ontology, Relation, Triple};
use serde::Serialize;

/// A structural problem found by [`validate`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub enum Issue {
    /// The `is_a` hierarchy contains a cycle through this entity name.
    IsACycle(String),
    /// Entity participates in no triple at all.
    Orphan(String),
    /// A symmetric relation asserted in only one direction.
    AsymmetricSymmetric(String),
    /// `is conjugate base of` without the matching `is conjugate acid of`
    /// (or vice versa).
    MissingInverse(String),
    /// Empty or whitespace-only entity name.
    BlankName(u32),
    /// Duplicate entity name (ambiguous references in text pipelines).
    DuplicateName(String),
}

/// Report from [`validate`].
#[derive(Debug, Default, Serialize)]
pub struct ValidationReport {
    /// All issues found, in deterministic order.
    pub issues: Vec<Issue>,
}

impl ValidationReport {
    /// True when the graph passed every check.
    pub fn is_clean(&self) -> bool {
        self.issues.is_empty()
    }

    /// Number of issues of a given discriminant.
    pub fn count<F: Fn(&Issue) -> bool>(&self, pred: F) -> usize {
        self.issues.iter().filter(|i| pred(i)).count()
    }
}

/// Runs all structural checks.
pub fn validate(o: &Ontology) -> ValidationReport {
    let mut report = ValidationReport::default();
    let n = o.n_entities();

    // --- is_a acyclicity (iterative colouring DFS) ----------------------
    let mut colour = vec![0u8; n]; // 0 = white, 1 = grey, 2 = black
    for start in 0..n {
        if colour[start] != 0 {
            continue;
        }
        // Stack of (node, next-parent-index).
        let mut stack: Vec<(usize, usize)> = vec![(start, 0)];
        colour[start] = 1;
        while let Some(&mut (node, ref mut next)) = stack.last_mut() {
            let parents = o.parents(crate::EntityId(node as u32));
            if *next < parents.len() {
                let p = parents[*next].index();
                *next += 1;
                match colour[p] {
                    0 => {
                        colour[p] = 1;
                        stack.push((p, 0));
                    }
                    1 => {
                        report
                            .issues
                            .push(Issue::IsACycle(o.name(crate::EntityId(p as u32)).to_string()));
                    }
                    _ => {}
                }
            } else {
                colour[node] = 2;
                stack.pop();
            }
        }
    }

    // --- orphans ----------------------------------------------------------
    let mut touched = vec![false; n];
    for t in o.triples() {
        touched[t.subject.index()] = true;
        touched[t.object.index()] = true;
    }
    for (i, &seen) in touched.iter().enumerate() {
        if !seen {
            report.issues.push(Issue::Orphan(o.name(crate::EntityId(i as u32)).to_string()));
        }
    }

    // --- symmetric + inverse completeness -----------------------------------
    for t in o.triples() {
        if t.relation.is_symmetric() && !o.contains(t.flipped()) {
            report.issues.push(Issue::AsymmetricSymmetric(o.render(*t)));
        }
        if t.relation == Relation::IsConjugateBaseOf {
            let inv = Triple::new(t.object, Relation::IsConjugateAcidOf, t.subject);
            if !o.contains(inv) {
                report.issues.push(Issue::MissingInverse(o.render(*t)));
            }
        }
    }

    // --- name hygiene ----------------------------------------------------------
    let mut seen_names: std::collections::HashMap<&str, u32> = std::collections::HashMap::new();
    for e in o.entities() {
        if e.name.trim().is_empty() {
            report.issues.push(Issue::BlankName(e.id.0));
        }
        if let Some(_first) = seen_names.insert(e.name.as_str(), e.id.0) {
            report.issues.push(Issue::DuplicateName(e.name.clone()));
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{OntologyBuilder, SubOntology, SyntheticConfig, SyntheticGenerator};

    #[test]
    fn synthetic_graphs_are_clean() {
        let o = SyntheticGenerator::new(SyntheticConfig { scale: 0.01, seed: 17 })
            .unwrap()
            .generate();
        let report = validate(&o);
        assert!(report.is_clean(), "synthetic graph has issues: {:?}", &report.issues[..report.issues.len().min(5)]);
    }

    #[test]
    fn detects_cycles() {
        let mut b = OntologyBuilder::new();
        let a = b.add_entity("a", SubOntology::Chemical);
        let c = b.add_entity("b", SubOntology::Chemical);
        b.add_triple(a, Relation::IsA, c);
        b.add_triple(c, Relation::IsA, a);
        let report = validate(&b.build());
        assert!(report.count(|i| matches!(i, Issue::IsACycle(_))) >= 1, "{:?}", report.issues);
    }

    #[test]
    fn detects_orphans_and_asymmetric_symmetric() {
        let mut b = OntologyBuilder::new();
        let a = b.add_entity("keto", SubOntology::Chemical);
        let c = b.add_entity("enol", SubOntology::Chemical);
        let _lonely = b.add_entity("lonely", SubOntology::Chemical);
        b.add_triple(a, Relation::IsTautomerOf, c); // one direction only
        let report = validate(&b.build());
        assert_eq!(report.count(|i| matches!(i, Issue::Orphan(_))), 1);
        assert_eq!(report.count(|i| matches!(i, Issue::AsymmetricSymmetric(_))), 1);
    }

    #[test]
    fn detects_missing_conjugate_inverse_and_duplicate_names() {
        let mut b = OntologyBuilder::new();
        let base = b.add_entity("acetate", SubOntology::Chemical);
        let acid = b.add_entity("acetic acid", SubOntology::Chemical);
        let _dup = b.add_entity("acetate", SubOntology::Chemical);
        b.add_triple(base, Relation::IsConjugateBaseOf, acid);
        let report = validate(&b.build());
        assert_eq!(report.count(|i| matches!(i, Issue::MissingInverse(_))), 1);
        assert_eq!(report.count(|i| matches!(i, Issue::DuplicateName(_))), 1);
    }

    #[test]
    fn self_is_a_diamond_is_not_a_cycle() {
        // Diamond inheritance is a legal DAG shape.
        let mut b = OntologyBuilder::new();
        let top = b.add_entity("top", SubOntology::Chemical);
        let l = b.add_entity("left", SubOntology::Chemical);
        let r = b.add_entity("right", SubOntology::Chemical);
        let bot = b.add_entity("bottom", SubOntology::Chemical);
        b.add_triple(l, Relation::IsA, top);
        b.add_triple(r, Relation::IsA, top);
        b.add_triple(bot, Relation::IsA, l);
        b.add_triple(bot, Relation::IsA, r);
        let report = validate(&b.build());
        assert_eq!(report.count(|i| matches!(i, Issue::IsACycle(_))), 0);
    }
}
