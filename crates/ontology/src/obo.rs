//! OBO-flavoured flat-file reader and writer.
//!
//! ChEBI is distributed in OBO format. This module implements the subset the
//! benchmark needs — `[Term]` stanzas with `id`, `name`, `subset` (mapped to
//! sub-ontology), `is_a` and `relationship` lines — so that a real ChEBI
//! export can replace the synthetic graph, and so that generated graphs can
//! be inspected with standard tooling.
//!
//! ```text
//! [Term]
//! id: CHEBI:15377
//! name: water
//! subset: chemical
//! is_a: CHEBI:33579
//! relationship: has_role CHEBI:48360
//! ```

use crate::{EntityId, Ontology, OntologyBuilder, Relation, SubOntology};
use kcb_util::{Error, Result};
use std::collections::HashMap;
use std::io::{BufRead, Write};

fn kind_tag(kind: SubOntology) -> &'static str {
    match kind {
        SubOntology::Chemical => "chemical",
        SubOntology::Role => "role",
        SubOntology::SubatomicParticle => "subatomic_particle",
    }
}

fn parse_kind(tag: &str) -> Option<SubOntology> {
    match tag {
        "chemical" => Some(SubOntology::Chemical),
        "role" => Some(SubOntology::Role),
        "subatomic_particle" => Some(SubOntology::SubatomicParticle),
        _ => None,
    }
}

/// Writes an ontology in OBO format.
pub fn write<W: Write>(o: &Ontology, mut w: W) -> Result<()> {
    writeln!(w, "format-version: 1.2")?;
    writeln!(w, "ontology: kcb-synthetic-chebi")?;
    // Group outgoing edges by subject for stanza-local emission.
    let mut out_edges: Vec<Vec<(Relation, EntityId)>> = vec![Vec::new(); o.n_entities()];
    for t in o.triples() {
        out_edges[t.subject.index()].push((t.relation, t.object));
    }
    for e in o.entities() {
        writeln!(w)?;
        writeln!(w, "[Term]")?;
        writeln!(w, "id: {}", e.id)?;
        writeln!(w, "name: {}", e.name)?;
        writeln!(w, "subset: {}", kind_tag(e.kind))?;
        for (r, obj) in &out_edges[e.id.index()] {
            if *r == Relation::IsA {
                writeln!(w, "is_a: {obj}")?;
            } else {
                writeln!(w, "relationship: {} {}", r.ident(), obj)?;
            }
        }
    }
    Ok(())
}

/// Reads an ontology from OBO text.
///
/// Unknown relationship types and tags are skipped (ChEBI exports carry many
/// tags this benchmark does not use); unknown subjects/objects in edges are
/// an error.
pub fn read<R: BufRead>(r: R) -> Result<Ontology> {
    struct Stanza {
        id: Option<String>,
        name: Option<String>,
        kind: SubOntology,
        edges: Vec<(Relation, String)>,
    }
    impl Stanza {
        fn new() -> Self {
            // ChEBI terms default to the chemical sub-ontology unless a
            // subset line says otherwise.
            Self { id: None, name: None, kind: SubOntology::Chemical, edges: Vec::new() }
        }
    }

    // (accession, name, kind, edges)
    type StanzaRecord = (String, String, SubOntology, Vec<(Relation, String)>);
    let mut stanzas: Vec<StanzaRecord> = Vec::new();
    let mut cur: Option<Stanza> = None;
    let mut in_term = false;

    let flush =
        |cur: &mut Option<Stanza>, stanzas: &mut Vec<StanzaRecord>| -> Result<()> {
            if let Some(s) = cur.take() {
                let id = s.id.ok_or_else(|| Error::parse("obo", "term without id"))?;
                let name = s.name.ok_or_else(|| Error::parse("obo", format!("term {id} without name")))?;
                stanzas.push((id, name, s.kind, s.edges));
            }
            Ok(())
        };

    for (lineno, line) in r.lines().enumerate() {
        let line = line?;
        let line = line.trim();
        if line == "[Term]" {
            flush(&mut cur, &mut stanzas)?;
            cur = Some(Stanza::new());
            in_term = true;
            continue;
        }
        if line.starts_with('[') {
            // Typedef or other stanza: close any open term and skip.
            flush(&mut cur, &mut stanzas)?;
            in_term = false;
            continue;
        }
        if !in_term || line.is_empty() {
            continue;
        }
        let Some(s) = cur.as_mut() else { continue };
        let Some((tag, value)) = line.split_once(':') else {
            return Err(Error::parse("obo", format!("line {}: missing ':': {line}", lineno + 1)));
        };
        let value = value.trim();
        match tag.trim() {
            "id" => s.id = Some(value.to_string()),
            "name" => s.name = Some(value.to_string()),
            "subset" => {
                if let Some(k) = parse_kind(value) {
                    s.kind = k;
                }
            }
            "is_a" => {
                // Strip trailing comments: `CHEBI:33579 ! water`.
                let target = value.split('!').next().unwrap_or("").trim();
                s.edges.push((Relation::IsA, target.to_string()));
            }
            "relationship" => {
                let mut parts = value.split_whitespace();
                let rel = parts.next().unwrap_or("");
                let target = parts.next().unwrap_or("");
                if let Some(r) = Relation::parse(rel) {
                    if target.is_empty() {
                        return Err(Error::parse(
                            "obo",
                            format!("line {}: relationship without target", lineno + 1),
                        ));
                    }
                    s.edges.push((r, target.to_string()));
                }
            }
            _ => {} // Ignore def:, synonym:, xref:, …
        }
    }
    flush(&mut cur, &mut stanzas)?;

    let mut b = OntologyBuilder::new();
    let mut by_accession: HashMap<String, EntityId> = HashMap::with_capacity(stanzas.len());
    for (acc, name, kind, _) in &stanzas {
        let id = b.add_entity(name.clone(), *kind);
        if by_accession.insert(acc.clone(), id).is_some() {
            return Err(Error::parse("obo", format!("duplicate term id {acc}")));
        }
    }
    for (acc, _, _, edges) in &stanzas {
        let subject = by_accession[acc];
        for (rel, target) in edges {
            let object = *by_accession
                .get(target)
                .ok_or_else(|| Error::parse("obo", format!("unknown target {target} in {acc}")))?;
            b.add_triple(subject, *rel, object);
        }
    }
    Ok(b.build())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{SyntheticConfig, SyntheticGenerator, Triple};

    #[test]
    fn round_trip_preserves_graph() {
        let o = SyntheticGenerator::new(SyntheticConfig { scale: 0.005, seed: 11 })
            .unwrap()
            .generate();
        let mut buf = Vec::new();
        write(&o, &mut buf).unwrap();
        let o2 = read(std::io::Cursor::new(&buf)).unwrap();
        assert_eq!(o.n_entities(), o2.n_entities());
        assert_eq!(o.n_triples(), o2.n_triples());
        // Triples must be identical modulo entity-id relabeling by name.
        for t in o.triples() {
            let s2 = o2.entity_by_name(o.name(t.subject)).expect("subject survives");
            let ob2 = o2.entity_by_name(o.name(t.object)).expect("object survives");
            assert!(o2.contains(Triple::new(s2, t.relation, ob2)), "lost {}", o.render(*t));
        }
    }

    #[test]
    fn parses_handwritten_snippet() {
        let text = "\
format-version: 1.2

[Term]
id: CHEBI:1
name: water
subset: chemical
is_a: CHEBI:2 ! oxygen hydride

[Term]
id: CHEBI:2
name: oxygen hydride
subset: chemical

[Term]
id: CHEBI:3
name: solvent
subset: role

[Term]
id: CHEBI:4
name: heavy water
subset: chemical
is_a: CHEBI:2
relationship: has_role CHEBI:3
relationship: some_unknown_rel CHEBI:3
";
        let o = read(std::io::Cursor::new(text)).unwrap();
        assert_eq!(o.n_entities(), 4);
        assert_eq!(o.n_triples(), 3); // unknown relationship skipped
        let water = o.entity_by_name("water").unwrap();
        let oh = o.entity_by_name("oxygen hydride").unwrap();
        assert!(o.contains(Triple::new(water, Relation::IsA, oh)));
        let heavy = o.entity_by_name("heavy water").unwrap();
        assert_eq!(o.siblings(water), vec![heavy]);
    }

    #[test]
    fn rejects_unknown_targets_and_duplicates() {
        let bad_target = "[Term]\nid: A\nname: a\nis_a: MISSING\n";
        assert!(read(std::io::Cursor::new(bad_target)).is_err());
        let dup = "[Term]\nid: A\nname: a\n\n[Term]\nid: A\nname: b\n";
        assert!(read(std::io::Cursor::new(dup)).is_err());
        let no_name = "[Term]\nid: A\n";
        assert!(read(std::io::Cursor::new(no_name)).is_err());
    }
}
