//! Chemical-name grammar for the synthetic ontology.
//!
//! Generated names must reproduce the *token statistics* of real ChEBI
//! labels (paper Table A5): head entities are dominated by short locant and
//! stereo-descriptor tokens (`2`, `3`, `6r`, `2s`, `yl`, `methyl`, …) while
//! tail entities carry class-head nouns (`acid`, `metabolite`, `compound`,
//! `beta`, `amino`, …). The grammar below builds IUPAC-flavoured leaf names
//! from backbone *families*, class names from modifier+head patterns, and
//! role names from the role grammar. Families make the task-3 sibling
//! negatives genuinely hard: siblings share a backbone, so their names are
//! lexically close.

use kcb_util::Rng;

/// Ring/backbone morphemes: `(combining form, parent hydride name)`.
pub(crate) const BACKBONES: &[(&str, &str)] = &[
    ("oxan", "oxane"),
    ("oxol", "oxolane"),
    ("androsta", "androstane"),
    ("estra", "estrane"),
    ("pregna", "pregnane"),
    ("chola", "cholane"),
    ("pyridin", "pyridine"),
    ("pyrimidin", "pyrimidine"),
    ("purin", "purine"),
    ("imidazol", "imidazole"),
    ("indol", "indole"),
    ("quinolin", "quinoline"),
    ("furan", "furan"),
    ("thiophen", "thiophene"),
    ("benzen", "benzene"),
    ("cyclohexan", "cyclohexane"),
    ("cyclopentan", "cyclopentane"),
    ("naphthalen", "naphthalene"),
    ("glucopyranos", "glucopyranose"),
    ("galactofuranos", "galactofuranose"),
    ("prostan", "prostane"),
    ("yohimban", "yohimban"),
    ("morphinan", "morphinan"),
    ("ergolin", "ergoline"),
    ("porphyrin", "porphyrin"),
    ("flavan", "flavan"),
    ("chromen", "chromene"),
    ("carbazol", "carbazole"),
    ("azepin", "azepine"),
    ("pteridin", "pteridine"),
    ("octadeca", "octadecane"),
    ("hexadeca", "hexadecane"),
    ("dodeca", "dodecane"),
    ("piperidin", "piperidine"),
    ("pyrrolidin", "pyrrolidine"),
    ("oxiran", "oxirane"),
    ("thiazol", "thiazole"),
    ("oxazol", "oxazole"),
    ("pyran", "pyran"),
    ("azulen", "azulene"),
];

pub(crate) const SUBSTITUENTS: &[&str] = &[
    "methyl",
    "hydroxy",
    "oxo",
    "amino",
    "methoxy",
    "acetamido",
    "phenyl",
    "chloro",
    "fluoro",
    "bromo",
    "hydroxymethyl",
    "sulfanyl",
    "nitro",
    "formyl",
    "carboxy",
    "ethyl",
    "propyl",
    "butyl",
    "acetyl",
    "benzoyl",
    "cyano",
    "iodo",
];

pub(crate) const MULTIPLIERS: &[&str] = &["di", "tri", "tetra"];

/// Suffix patterns for leaf names; `{n}` is replaced by a locant.
pub(crate) const SUFFIXES: &[&str] = &[
    "{n}-one",
    "{n}-ol",
    "{n}-al",
    "{n}-amine",
    "{n}-carboxylic acid",
    "{n}-carbaldehyde",
    "{n},{m}-dione",
    "{n},{m}-diol",
    "{n}-yl acetate",
    "{n}-yl benzoate",
    "{n}-oic acid",
    "{n}-oate",
    "{n}-amide",
    "{n}-thiol",
    "{n}-sulfonamide",
];

pub(crate) const CLASS_HEADS: &[&str] = &[
    "acid",
    "ester",
    "anion",
    "cation",
    "amide",
    "alcohol",
    "steroid",
    "alkaloid",
    "ether",
    "lactam",
    "lactone",
    "peptide",
    "azamacrocycle",
    "sulfonamide",
    "carbohydrate",
    "phosphate",
    "ketone",
    "aldehyde",
    "amine",
    "salt",
    "oxide",
    "glycoside",
    "lipid",
    "flavonoid",
    "terpenoid",
    "saccharide",
    "oligosaccharide",
    "macrocycle",
    "quinone",
    "nucleoside",
    "nucleotide",
    "porphyrin",
    "derivative",
    "compound",
];

pub(crate) const CLASS_MODS: &[&str] = &[
    "fatty",
    "organic",
    "aromatic",
    "aliphatic",
    "monocarboxylic",
    "dicarboxylic",
    "molecular",
    "acyl",
    "galactosyl",
    "glycero",
    "heterocyclic",
    "polycyclic",
    "saturated",
    "unsaturated",
    "cyclic",
    "primary",
    "secondary",
    "tertiary",
    "alpha-amino",
    "beta-hydroxy",
    "long-chain",
    "short-chain",
    "branched-chain",
    "N-acyl",
    "O-acyl",
    "sn-glycero",
    "amino",
    "hydroxy",
];

pub(crate) const ROLE_HEADS: &[&str] = &[
    "inhibitor",
    "agonist",
    "antagonist",
    "metabolite",
    "agent",
    "drug",
    "hormone",
    "toxin",
    "pesticide",
    "dye",
    "solvent",
    "surfactant",
    "ligand",
    "cofactor",
    "coenzyme",
    "antioxidant",
    "vitamin",
    "fuel",
    "buffer",
    "allergen",
    "antibiotic",
    "carcinogen",
];

pub(crate) const ROLE_MODS: &[&str] = &[
    "human",
    "plant",
    "bacterial",
    "fungal",
    "marine",
    "mouse",
    "Escherichia coli",
    "antiviral",
    "antibacterial",
    "antifungal",
    "antineoplastic",
    "anti-inflammatory",
    "ferroptosis",
    "apoptosis",
    "EC 1.1.1.1",
    "EC 2.7.1.1",
    "EC 3.4.21.4",
    "EC 3.5.1.4",
    "neurotransmitter",
    "insect",
    "xenobiotic",
    "environmental",
];

pub(crate) const METALS: &[&str] = &[
    "sodium",
    "potassium",
    "calcium",
    "magnesium",
    "cobalt",
    "iron",
    "zinc",
    "copper",
    "ammonium",
    "lithium",
    "barium",
    "nickel",
    "manganese",
    "silver",
];

pub(crate) const ANIONS: &[&str] = &[
    "chloride",
    "dichloride",
    "bromide",
    "fluoride",
    "sulfate",
    "nitrate",
    "phosphate",
    "acetate",
    "carbonate",
    "citrate",
    "oxalate",
    "tartrate",
    "iodide",
    "hydroxide",
];

pub(crate) const PARTICLES: &[&str] = &[
    "electron",
    "positron",
    "photon",
    "proton",
    "neutron",
    "nucleon",
    "muon",
    "tau lepton",
    "electron neutrino",
    "muon neutrino",
    "tau neutrino",
    "up quark",
    "down quark",
    "strange quark",
    "charm quark",
    "top quark",
    "bottom quark",
    "gluon",
    "Z boson",
    "W boson",
    "Higgs boson",
    "graviton",
    "alpha particle",
    "beta particle",
    "deuteron",
    "triton",
    "helion",
    "antiproton",
    "antineutron",
    "antimuon",
    "pion",
    "kaon",
    "eta meson",
    "rho meson",
    "omega meson",
    "phi meson",
    "lambda baryon",
    "sigma baryon",
    "xi baryon",
    "omega baryon",
    "delta baryon",
    "axion",
];

/// Draws a broad class name such as `"fatty acid"` or `"aromatic ether"`.
pub(crate) fn class_name(rng: &mut Rng) -> String {
    let head = CLASS_HEADS[rng.below(CLASS_HEADS.len())];
    if rng.chance(0.7) {
        let m = CLASS_MODS[rng.below(CLASS_MODS.len())];
        format!("{m} {head}")
    } else {
        head.to_string()
    }
}

/// Draws a refinement of an existing class name, e.g.
/// `"monocarboxylic acid"` from `"acid"`.
pub(crate) fn subclass_name(rng: &mut Rng, parent: &str) -> String {
    // Refine by prepending another modifier to the parent's head noun.
    let head = parent.rsplit(' ').next().unwrap_or(parent);
    let m = CLASS_MODS[rng.below(CLASS_MODS.len())];
    if rng.chance(0.35) {
        let m2 = CLASS_MODS[rng.below(CLASS_MODS.len())];
        format!("{m2} {m} {head}")
    } else {
        format!("{m} {head}")
    }
}

/// Draws a role name such as `"ferroptosis inhibitor"` or
/// `"human metabolite"`.
pub(crate) fn role_name(rng: &mut Rng) -> String {
    let head = ROLE_HEADS[rng.below(ROLE_HEADS.len())];
    if rng.chance(0.8) {
        let m = ROLE_MODS[rng.below(ROLE_MODS.len())];
        format!("{m} {head}")
    } else {
        head.to_string()
    }
}

/// Draws a salt name such as `"cobalt dichloride"`, returning
/// `(salt name, cation part name)` so the generator can link `has part`.
pub(crate) fn salt_name(rng: &mut Rng) -> (String, String) {
    let metal = METALS[rng.below(METALS.len())];
    let anion = ANIONS[rng.below(ANIONS.len())];
    let charge = 1 + rng.below(3);
    (format!("{metal} {anion}"), format!("{metal}({charge}+)"))
}

/// Draws an IUPAC-flavoured leaf name from the given backbone family.
///
/// Shape: `[(stereo)-][locant-substituent]{0..2} backbone[ring locants]-suffix`
/// e.g. `"(2S,6R)-4-methyl-2-hydroxyoxan-3-one"`.
pub(crate) fn leaf_name(rng: &mut Rng, family: usize) -> String {
    let (stem, _) = BACKBONES[family % BACKBONES.len()];
    let mut name = String::with_capacity(48);

    // Stereo-descriptor prefix, e.g. "(2S,6R)-". Present on ~45% of leaves.
    if rng.chance(0.45) {
        name.push('(');
        let k = 1 + rng.below(3);
        let mut locants: Vec<usize> = (1..=12).collect();
        rng.shuffle(&mut locants);
        let mut picked: Vec<usize> = locants[..k].to_vec();
        picked.sort_unstable();
        for (i, loc) in picked.iter().enumerate() {
            if i > 0 {
                name.push(',');
            }
            let conf = if rng.chance(0.5) { 'S' } else { 'R' };
            name.push_str(&loc.to_string());
            name.push(conf);
        }
        name.push_str(")-");
    }

    // Substituent groups with locants, e.g. "4-methyl-", "2,3-dihydroxy-".
    let n_subs = rng.below(3);
    for _ in 0..n_subs {
        let sub = SUBSTITUENTS[rng.below(SUBSTITUENTS.len())];
        if rng.chance(0.25) {
            // Multiplied substituent with two locants.
            let a = 1 + rng.below(9);
            let b = a + 1 + rng.below(4);
            let mult = MULTIPLIERS[rng.below(MULTIPLIERS.len())];
            name.push_str(&format!("{a},{b}-{mult}{sub}-"));
        } else {
            let a = 1 + rng.below(12);
            name.push_str(&format!("{a}-{sub}-"));
        }
    }

    // Occasionally a greek-letter position descriptor ("3beta-hydroxy-").
    if rng.chance(0.18) {
        let g = if rng.chance(0.5) { "alpha" } else { "beta" };
        let a = 1 + rng.below(17);
        let sub = SUBSTITUENTS[rng.below(SUBSTITUENTS.len())];
        name.push_str(&format!("{a}{g}-{sub}-"));
    }

    name.push_str(stem);

    // Unsaturation infix, e.g. "-4,9(11)-diene" on steroid-like stems.
    if rng.chance(0.2) {
        let a = 1 + rng.below(9);
        let b = a + 2 + rng.below(5);
        if rng.chance(0.4) {
            let c = b + 2;
            name.push_str(&format!("-{a},{b}({c})-diene"));
        } else {
            name.push_str(&format!("-{a}-ene"));
        }
    }

    // Principal characteristic group suffix.
    let pat = SUFFIXES[rng.below(SUFFIXES.len())];
    let n = 1 + rng.below(9);
    let m = n + 1 + rng.below(9);
    let suffix = pat.replace("{n}", &n.to_string()).replace("{m}", &m.to_string());
    name.push('-');
    name.push_str(&suffix);
    name
}

/// Mirrors every stereo-descriptor in a name (`S`↔`R`), producing the
/// enantiomer's conventional label. Returns `None` when the name carries no
/// stereo prefix (an achiral label has no distinct enantiomer name).
pub(crate) fn enantiomer_name(name: &str) -> Option<String> {
    if !name.starts_with('(') {
        return None;
    }
    let end = name.find(')')?;
    let prefix = &name[..=end];
    if !prefix.chars().any(|c| c == 'S' || c == 'R') {
        return None;
    }
    let mirrored: String = prefix
        .chars()
        .map(|c| match c {
            'S' => 'R',
            'R' => 'S',
            other => other,
        })
        .collect();
    Some(format!("{mirrored}{}", &name[end + 1..]))
}

/// Derives the conjugate-base label of an acid name:
/// `"...oic acid"` → `"...oate(1-)"`, `"...carboxylic acid"` →
/// `"...carboxylate(1-)"`, otherwise appends `"(1-)"`.
pub(crate) fn conjugate_base_name(name: &str) -> String {
    if let Some(stripped) = name.strip_suffix("carboxylic acid") {
        format!("{stripped}carboxylate(1-)")
    } else if let Some(stripped) = name.strip_suffix("oic acid") {
        format!("{stripped}oate(1-)")
    } else if let Some(stripped) = name.strip_suffix("ic acid") {
        format!("{stripped}ate(1-)")
    } else if let Some(stripped) = name.strip_suffix(" acid") {
        format!("{stripped}ate(1-)")
    } else {
        format!("{name}(1-)")
    }
}

/// Derives a substituent-group label from a parent name, e.g.
/// `"…oxan-3-one"` → `"…oxan-3-one-2-yl group"`.
pub(crate) fn group_name(rng: &mut Rng, parent: &str) -> String {
    let n = 1 + rng.below(9);
    format!("{parent}-{n}-yl group")
}

/// Parent-hydride name for a backbone family (`"oxane"`, `"androstane"`, …).
pub(crate) fn hydride_name(family: usize) -> &'static str {
    BACKBONES[family % BACKBONES.len()].1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leaf_names_contain_family_stem() {
        let mut rng = Rng::seed(1);
        for fam in 0..BACKBONES.len() {
            let name = leaf_name(&mut rng, fam);
            assert!(
                name.contains(BACKBONES[fam].0),
                "{name} should contain stem {}",
                BACKBONES[fam].0
            );
        }
    }

    #[test]
    fn leaf_names_are_mostly_distinct() {
        let mut rng = Rng::seed(2);
        let names: std::collections::HashSet<String> =
            (0..2000).map(|i| leaf_name(&mut rng, i % BACKBONES.len())).collect();
        assert!(names.len() > 1900, "only {} distinct of 2000", names.len());
    }

    #[test]
    fn enantiomer_flips_all_descriptors() {
        assert_eq!(
            enantiomer_name("(2S,6R)-4-methyloxan-3-one").as_deref(),
            Some("(2R,6S)-4-methyloxan-3-one")
        );
        assert_eq!(enantiomer_name("4-methyloxan-3-one"), None);
        // Round trip.
        let n = "(1R,5S)-pinan-3-one";
        assert_eq!(enantiomer_name(&enantiomer_name(n).unwrap()).as_deref(), Some(n));
    }

    #[test]
    fn conjugate_base_transforms() {
        assert_eq!(conjugate_base_name("mannaric acid"), "mannarate(1-)");
        assert_eq!(conjugate_base_name("hexadecanoic acid"), "hexadecanoate(1-)");
        assert_eq!(
            conjugate_base_name("oxane-2-carboxylic acid"),
            "oxane-2-carboxylate(1-)"
        );
        assert_eq!(conjugate_base_name("phenol"), "phenol(1-)");
    }

    #[test]
    fn class_and_role_names_nonempty() {
        let mut rng = Rng::seed(3);
        for _ in 0..200 {
            assert!(!class_name(&mut rng).is_empty());
            assert!(!role_name(&mut rng).is_empty());
            let sub = subclass_name(&mut rng, "fatty acid");
            assert!(sub.ends_with("acid"), "{sub}");
        }
    }

    #[test]
    fn salt_names_include_metal() {
        let mut rng = Rng::seed(4);
        let (salt, ion) = salt_name(&mut rng);
        let metal = salt.split(' ').next().unwrap();
        assert!(ion.starts_with(metal));
        assert!(ion.contains('+'));
    }

    #[test]
    fn particle_pool_matches_chebi_count() {
        // ChEBI has 42 subatomic particles (paper §3.1).
        assert_eq!(PARTICLES.len(), 42);
    }
}
