//! Deterministic synthetic-ChEBI generator.
//!
//! The February-2022 ChEBI dump used in the paper is not redistributable
//! here, so experiments run on a synthetic ontology calibrated to the
//! paper's published statistics (§3.1, Tables A1–A3):
//!
//! * 147,461 entities at scale 1.0 — 145,869 chemical, 1,550 role,
//!   42 subatomic particles;
//! * 318,438 triples distributed over the ten relationship types with the
//!   Table A3 frequency profile (72.3 % `is_a`, 13.2 % `has_role`, …);
//! * entity names drawn from the grammar in [`crate::names`], reproducing
//!   the Table A5 token profile (heads full of locants and
//!   stereo-descriptors, tails full of class-head nouns);
//! * a layered `is_a` DAG in which leaves inherit a backbone *family* from
//!   their class, so that task-3 sibling negatives are lexically close to
//!   the true object — the property that makes task 3 the hardest.
//!
//! Everything is a pure function of [`SyntheticConfig`] (scale + seed).

use crate::names;
use crate::{EntityId, Ontology, OntologyBuilder, Relation, SubOntology, Triple};
use kcb_util::{Error, Result, Rng};
use std::collections::HashSet;

/// Real ChEBI entity counts (paper §3.1).
const CHEBI_CHEMICAL: f64 = 145_869.0;
const CHEBI_ROLE: f64 = 1_550.0;

/// Configuration for the synthetic generator.
#[derive(Debug, Clone, Copy)]
pub struct SyntheticConfig {
    /// Linear scale relative to real ChEBI (1.0 ≈ 147k entities /
    /// 318k triples). Must be in `(0, 4]`.
    pub scale: f64,
    /// RNG seed; the generated ontology is a pure function of
    /// `(scale, seed)`.
    pub seed: u64,
}

impl Default for SyntheticConfig {
    fn default() -> Self {
        Self { scale: 0.08, seed: 42 }
    }
}

impl SyntheticConfig {
    /// Creates a config with the given scale and the default seed.
    pub fn with_scale(scale: f64) -> Self {
        Self { scale, ..Self::default() }
    }

    /// Validates ranges.
    pub fn validate(&self) -> Result<()> {
        if !(self.scale > 0.0 && self.scale <= 4.0) {
            return Err(Error::Config(format!("scale must be in (0, 4], got {}", self.scale)));
        }
        Ok(())
    }

    fn scaled(&self, n: f64, min: usize) -> usize {
        ((n * self.scale).round() as usize).max(min)
    }

    /// Target triple count for one relation at this scale.
    pub fn target_triples(&self, r: Relation) -> usize {
        self.scaled(r.chebi_count() as f64, 8)
    }
}

/// Generates synthetic ChEBI-like ontologies. See the module docs.
#[derive(Debug)]
pub struct SyntheticGenerator {
    cfg: SyntheticConfig,
}

/// Cumulative-weight sampler: O(log n) weighted draws, used for the Zipfian
/// class- and role-popularity distributions.
struct CumSampler {
    cum: Vec<f64>,
}

impl CumSampler {
    /// Zipf-like weights `1/(i+1)^alpha` over `n` items.
    fn zipf(n: usize, alpha: f64) -> Self {
        let mut cum = Vec::with_capacity(n);
        let mut total = 0.0;
        for i in 0..n {
            total += 1.0 / ((i + 1) as f64).powf(alpha);
            cum.push(total);
        }
        Self { cum }
    }

    fn draw(&self, rng: &mut Rng) -> usize {
        let total = *self.cum.last().expect("empty sampler");
        let t = rng.f64() * total;
        self.cum.partition_point(|&c| c <= t).min(self.cum.len() - 1)
    }
}

impl SyntheticGenerator {
    /// Creates a generator after validating the configuration.
    pub fn new(cfg: SyntheticConfig) -> Result<Self> {
        cfg.validate()?;
        Ok(Self { cfg })
    }

    /// Generates the ontology.
    pub fn generate(&self) -> Ontology {
        let cfg = self.cfg;
        let mut rng = Rng::seed_stream(cfg.seed, 0x0170);
        let mut b = OntologyBuilder::new();
        let mut used: HashSet<String> = HashSet::new();

        let add_entity = |b: &mut OntologyBuilder,
                              used: &mut HashSet<String>,
                              name: String,
                              kind: SubOntology|
         -> EntityId {
            let unique = disambiguate(used, name);
            used.insert(unique.clone());
            b.add_entity(unique, kind)
        };

        // --- Roots -----------------------------------------------------
        let chem_root = add_entity(&mut b, &mut used, "chemical entity".into(), SubOntology::Chemical);
        let mol_root = add_entity(&mut b, &mut used, "molecular entity".into(), SubOntology::Chemical);
        let group_root = add_entity(&mut b, &mut used, "group".into(), SubOntology::Chemical);
        b.add_triple(mol_root, Relation::IsA, chem_root);
        b.add_triple(group_root, Relation::IsA, chem_root);

        let role_root = add_entity(&mut b, &mut used, "role".into(), SubOntology::Role);
        let role_cats: Vec<EntityId> = ["biological role", "chemical role", "application"]
            .iter()
            .map(|n| {
                let id = add_entity(&mut b, &mut used, (*n).into(), SubOntology::Role);
                b.add_triple(id, Relation::IsA, role_root);
                id
            })
            .collect();

        let particle_root =
            add_entity(&mut b, &mut used, "subatomic particle".into(), SubOntology::SubatomicParticle);

        // --- Subatomic particles ----------------------------------------
        let n_particles = names::PARTICLES.len().min(cfg.scaled(42.0, 6));
        for name in &names::PARTICLES[..n_particles] {
            let id = add_entity(&mut b, &mut used, (*name).into(), SubOntology::SubatomicParticle);
            b.add_triple(id, Relation::IsA, particle_root);
        }

        // --- Role entities ----------------------------------------------
        let n_roles = cfg.scaled(CHEBI_ROLE, 24);
        let mut roles: Vec<EntityId> = Vec::with_capacity(n_roles);
        for _ in 0..n_roles {
            let name = names::role_name(&mut rng);
            let id = add_entity(&mut b, &mut used, name, SubOntology::Role);
            let parent = if !roles.is_empty() && rng.chance(0.2) {
                *rng.choose(&roles).expect("roles non-empty")
            } else {
                role_cats[rng.below(role_cats.len())]
            };
            b.add_triple(id, Relation::IsA, parent);
            roles.push(id);
        }

        // --- Chemical class layers ---------------------------------------
        let n_chem = cfg.scaled(CHEBI_CHEMICAL, 600);
        let n_top = (n_chem / 400).clamp(8, 400);
        let n_mid = (n_chem / 40).clamp(24, 4_000);

        let mut top_classes = Vec::with_capacity(n_top);
        for _ in 0..n_top {
            let id = add_entity(&mut b, &mut used, names::class_name(&mut rng), SubOntology::Chemical);
            b.add_triple(id, Relation::IsA, mol_root);
            top_classes.push(id);
        }

        // Each mid class: 1–2 top parents and 1–3 backbone families.
        let mut mid_classes = Vec::with_capacity(n_mid);
        let mut mid_families: Vec<Vec<usize>> = Vec::with_capacity(n_mid);
        for i in 0..n_mid {
            let parent = top_classes[rng.below(top_classes.len())];
            let pname = b_entity_name(&b, parent).to_string();
            let id =
                add_entity(&mut b, &mut used, names::subclass_name(&mut rng, &pname), SubOntology::Chemical);
            b.add_triple(id, Relation::IsA, parent);
            if rng.chance(0.25) {
                let p2 = top_classes[rng.below(top_classes.len())];
                if p2 != parent {
                    b.add_triple(id, Relation::IsA, p2);
                }
            }
            let mut fams = vec![i % names::BACKBONES.len()];
            while fams.len() < 3 && rng.chance(0.4) {
                let f = rng.below(names::BACKBONES.len());
                if !fams.contains(&f) {
                    fams.push(f);
                }
            }
            mid_classes.push(id);
            mid_families.push(fams);
        }

        // --- Leaves -------------------------------------------------------
        // Budget: leaves plus derived entities (conjugate bases, enantiomer
        // mirrors, substituent groups, hydrides, salt ions) should together
        // approximate n_chem.
        let n_conj = cfg.target_triples(Relation::IsConjugateBaseOf);
        let n_enant_pairs = cfg.target_triples(Relation::IsEnantiomerOf) / 2;
        let n_groups = cfg.target_triples(Relation::IsSubstituentGroupFrom);
        let n_salts = cfg.target_triples(Relation::HasPart);
        let reserved = n_conj + n_enant_pairs + n_groups + names::BACKBONES.len() + n_salts / 2;
        let n_leaves = n_chem.saturating_sub(n_top + n_mid + reserved).max(200);

        // Popular classes get many leaves (Zipf), giving some entities many
        // siblings — needed for task-3 negative sampling.
        let class_sampler = CumSampler::zipf(n_mid, 0.8);
        let mut leaves: Vec<EntityId> = Vec::with_capacity(n_leaves);
        let mut leaf_family: Vec<usize> = Vec::with_capacity(n_leaves);
        let mut family_leaves: Vec<Vec<EntityId>> = vec![Vec::new(); names::BACKBONES.len()];

        // Calibrate extra-parent probability so total is_a lands near the
        // Table A3 target.
        let isa_target = cfg.target_triples(Relation::IsA);
        let isa_so_far = 2 + 3 + n_particles + n_roles + n_top + (n_mid as f64 * 1.25) as usize;
        let remaining = isa_target.saturating_sub(isa_so_far + n_leaves + reserved) as f64;
        let p_extra_parent = (remaining / n_leaves as f64).clamp(0.0, 0.9);

        for _ in 0..n_leaves {
            let ci = class_sampler.draw(&mut rng);
            let fams = &mid_families[ci];
            let fam = fams[rng.below(fams.len())];
            let name = names::leaf_name(&mut rng, fam);
            let id = add_entity(&mut b, &mut used, name, SubOntology::Chemical);
            b.add_triple(id, Relation::IsA, mid_classes[ci]);
            if rng.chance(p_extra_parent) {
                // Second parent: usually another class carrying the same
                // family, mirroring ChEBI's structure-plus-function typing.
                let cj = class_sampler.draw(&mut rng);
                if cj != ci {
                    b.add_triple(id, Relation::IsA, mid_classes[cj]);
                }
            }
            leaves.push(id);
            leaf_family.push(fam);
            family_leaves[fam].push(id);
        }

        // --- has_role ------------------------------------------------------
        let role_sampler = CumSampler::zipf(roles.len(), 1.0);
        let mut seen: HashSet<(u32, u8, u32)> = HashSet::new();
        let target = cfg.target_triples(Relation::HasRole);
        let mut made = 0usize;
        let mut guard = 0usize;
        while made < target && guard < target * 20 {
            guard += 1;
            let s = leaves[rng.below(leaves.len())];
            let o = roles[role_sampler.draw(&mut rng)];
            let t = Triple::new(s, Relation::HasRole, o);
            if seen.insert(t.key()) {
                b.add_triple(s, Relation::HasRole, o);
                made += 1;
            }
        }

        // --- has_functional_parent (same-family object) ---------------------
        let target = cfg.target_triples(Relation::HasFunctionalParent);
        made = 0;
        guard = 0;
        while made < target && guard < target * 20 {
            guard += 1;
            let i = rng.below(leaves.len());
            let fam = leaf_family[i];
            let pool = &family_leaves[fam];
            if pool.len() < 2 {
                continue;
            }
            let o = pool[rng.below(pool.len())];
            let s = leaves[i];
            if s == o {
                continue;
            }
            let t = Triple::new(s, Relation::HasFunctionalParent, o);
            if seen.insert(t.key()) {
                b.add_triple(s, Relation::HasFunctionalParent, o);
                made += 1;
            }
        }

        // --- conjugate acid/base pairs ---------------------------------------
        // Derived base entity sits under the same class as the acid.
        let acid_leaves: Vec<usize> = (0..leaves.len())
            .filter(|&i| b_entity_name(&b, leaves[i]).contains("acid"))
            .collect();
        let mut idx = 0usize;
        for _ in 0..n_conj {
            if acid_leaves.is_empty() {
                break;
            }
            let li = acid_leaves[idx % acid_leaves.len()];
            idx += 1;
            let acid = leaves[li];
            let base_name = names::conjugate_base_name(b_entity_name(&b, acid));
            let base = add_entity(&mut b, &mut used, base_name, SubOntology::Chemical);
            b.add_triple(base, Relation::IsA, mid_classes[rng.below(mid_classes.len())]);
            let t = Triple::new(base, Relation::IsConjugateBaseOf, acid);
            if seen.insert(t.key()) {
                b.add_triple(base, Relation::IsConjugateBaseOf, acid);
                b.add_triple(acid, Relation::IsConjugateAcidOf, base);
            }
        }

        // --- enantiomer pairs --------------------------------------------------
        let stereo_leaves: Vec<usize> =
            (0..leaves.len()).filter(|&i| b_entity_name(&b, leaves[i]).starts_with('(')).collect();
        idx = 0;
        for _ in 0..n_enant_pairs {
            if stereo_leaves.is_empty() {
                break;
            }
            let li = stereo_leaves[idx % stereo_leaves.len()];
            idx += 1;
            let a = leaves[li];
            let Some(mirror) = names::enantiomer_name(b_entity_name(&b, a)) else { continue };
            let m = add_entity(&mut b, &mut used, mirror, SubOntology::Chemical);
            b.add_triple(m, Relation::IsA, mid_classes[rng.below(mid_classes.len())]);
            let t = Triple::new(a, Relation::IsEnantiomerOf, m);
            if seen.insert(t.key()) {
                b.add_triple(a, Relation::IsEnantiomerOf, m);
                b.add_triple(m, Relation::IsEnantiomerOf, a);
            }
        }

        // --- tautomer pairs (same family) ----------------------------------------
        let target = cfg.target_triples(Relation::IsTautomerOf) / 2;
        made = 0;
        guard = 0;
        while made < target && guard < target * 40 {
            guard += 1;
            let i = rng.below(leaves.len());
            let pool = &family_leaves[leaf_family[i]];
            if pool.len() < 2 {
                continue;
            }
            let a = leaves[i];
            let o = pool[rng.below(pool.len())];
            if a == o {
                continue;
            }
            let t = Triple::new(a, Relation::IsTautomerOf, o);
            let u = Triple::new(o, Relation::IsTautomerOf, a);
            if !seen.contains(&t.key()) && !seen.contains(&u.key()) {
                seen.insert(t.key());
                seen.insert(u.key());
                b.add_triple(a, Relation::IsTautomerOf, o);
                b.add_triple(o, Relation::IsTautomerOf, a);
                made += 1;
            }
        }

        // --- parent hydrides ---------------------------------------------------
        let hydrides: Vec<EntityId> = (0..names::BACKBONES.len())
            .map(|f| {
                let id =
                    add_entity(&mut b, &mut used, names::hydride_name(f).to_string(), SubOntology::Chemical);
                b.add_triple(id, Relation::IsA, mol_root);
                id
            })
            .collect();
        let target = cfg.target_triples(Relation::HasParentHydride);
        made = 0;
        guard = 0;
        while made < target && guard < target * 20 {
            guard += 1;
            let i = rng.below(leaves.len());
            let t = Triple::new(leaves[i], Relation::HasParentHydride, hydrides[leaf_family[i]]);
            if seen.insert(t.key()) {
                b.add_triple(t.subject, t.relation, t.object);
                made += 1;
            }
        }

        // --- substituent groups -----------------------------------------------
        for k in 0..n_groups {
            let parent = leaves[(k * 37 + rng.below(leaves.len())) % leaves.len()];
            let gname = names::group_name(&mut rng, b_entity_name(&b, parent));
            let g = add_entity(&mut b, &mut used, gname, SubOntology::Chemical);
            b.add_triple(g, Relation::IsA, group_root);
            let t = Triple::new(g, Relation::IsSubstituentGroupFrom, parent);
            if seen.insert(t.key()) {
                b.add_triple(g, Relation::IsSubstituentGroupFrom, parent);
            }
        }

        // --- salts and has_part ---------------------------------------------------
        let mut ion_ids: std::collections::HashMap<String, EntityId> = std::collections::HashMap::new();
        let target = cfg.target_triples(Relation::HasPart);
        made = 0;
        guard = 0;
        while made < target && guard < target * 20 {
            guard += 1;
            let (salt, ion) = names::salt_name(&mut rng);
            if used.contains(&salt) {
                continue;
            }
            let sid = add_entity(&mut b, &mut used, salt, SubOntology::Chemical);
            b.add_triple(sid, Relation::IsA, mid_classes[rng.below(mid_classes.len())]);
            let iid = *ion_ids.entry(ion.clone()).or_insert_with(|| {
                let id = add_entity(&mut b, &mut used, ion, SubOntology::Chemical);
                b.add_triple(id, Relation::IsA, mol_root);
                id
            });
            let t = Triple::new(sid, Relation::HasPart, iid);
            if seen.insert(t.key()) {
                b.add_triple(sid, Relation::HasPart, iid);
                made += 1;
            }
        }

        b.build()
    }
}

/// Name lookup inside the builder (ids are dense and builder-owned).
fn b_entity_name(b: &OntologyBuilder, id: EntityId) -> &str {
    &b.entities_slice()[id.index()].name
}

/// Makes a candidate name unique by appending a chemically plausible
/// qualifier when it collides.
fn disambiguate(used: &HashSet<String>, name: String) -> String {
    if !used.contains(&name) {
        return name;
    }
    const QUALIFIERS: &[&str] = &[
        " monohydrate",
        " dihydrate",
        " trihydrate",
        " hemihydrate",
        " sodium salt",
        " potassium salt",
        " methyl ester",
        " ethyl ester",
        " zwitterion",
        " radical",
    ];
    for q in QUALIFIERS {
        let candidate = format!("{name}{q}");
        if !used.contains(&candidate) {
            return candidate;
        }
    }
    // Pathological collision rate: fall back to an isotope-style marker.
    let mut k = 2usize;
    loop {
        let candidate = format!("{name} ({k}H)");
        if !used.contains(&candidate) {
            return candidate;
        }
        k += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Ontology {
        SyntheticGenerator::new(SyntheticConfig { scale: 0.02, seed: 7 })
            .expect("valid config")
            .generate()
    }

    #[test]
    fn config_validation() {
        assert!(SyntheticConfig { scale: 0.0, seed: 1 }.validate().is_err());
        assert!(SyntheticConfig { scale: 5.0, seed: 1 }.validate().is_err());
        assert!(SyntheticConfig { scale: 1.0, seed: 1 }.validate().is_ok());
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let a = small();
        let b = small();
        assert_eq!(a.n_entities(), b.n_entities());
        assert_eq!(a.triples(), b.triples());
    }

    #[test]
    fn different_seeds_give_different_graphs() {
        let a = small();
        let b = SyntheticGenerator::new(SyntheticConfig { scale: 0.02, seed: 8 })
            .unwrap()
            .generate();
        assert_ne!(a.triples(), b.triples());
    }

    #[test]
    fn relation_mix_tracks_table_a3() {
        let o = small();
        let total = o.n_triples() as f64;
        let isa = o.n_with_relation(Relation::IsA) as f64 / total;
        let role = o.n_with_relation(Relation::HasRole) as f64 / total;
        // Paper: 72.3% is_a, 13.2% has_role. Allow generous tolerance at
        // small scale.
        assert!((isa - 0.723).abs() < 0.08, "is_a fraction {isa}");
        assert!((role - 0.132).abs() < 0.05, "has_role fraction {role}");
        for r in Relation::ALL {
            assert!(o.n_with_relation(r) > 0, "{r} missing");
        }
    }

    #[test]
    fn subontology_mix_tracks_table_a1() {
        let o = small();
        let chem = o.entities_of(SubOntology::Chemical).count();
        let role = o.entities_of(SubOntology::Role).count();
        let sub = o.entities_of(SubOntology::SubatomicParticle).count();
        assert!(chem > 40 * role, "chem={chem} role={role}");
        assert!(role > sub, "role={role} sub={sub}");
    }

    #[test]
    fn conjugate_pairs_are_inverses() {
        let o = small();
        for t in o.triples_with_relation(Relation::IsConjugateBaseOf) {
            assert!(
                o.contains(Triple::new(t.object, Relation::IsConjugateAcidOf, t.subject)),
                "missing inverse for {}",
                o.render(t)
            );
        }
    }

    #[test]
    fn symmetric_relations_stored_both_ways() {
        let o = small();
        for r in [Relation::IsEnantiomerOf, Relation::IsTautomerOf] {
            for t in o.triples_with_relation(r) {
                assert!(o.contains(t.flipped()), "missing flip for {}", o.render(t));
            }
        }
    }

    #[test]
    fn most_entities_have_siblings() {
        // Task 3 needs sibling-rich structure.
        let o = small();
        let mut rng = Rng::seed(1);
        let mut with_sibs = 0;
        let n = 500;
        for _ in 0..n {
            let id = EntityId(rng.below(o.n_entities()) as u32);
            if !o.siblings(id).is_empty() {
                with_sibs += 1;
            }
        }
        assert!(with_sibs > n * 8 / 10, "only {with_sibs}/{n} entities have siblings");
    }

    #[test]
    fn entity_names_unique() {
        let o = small();
        let names: HashSet<&str> = o.entities().iter().map(|e| e.name.as_str()).collect();
        assert_eq!(names.len(), o.n_entities());
    }

    #[test]
    fn no_self_loops_or_duplicates() {
        let o = small();
        let mut keys = HashSet::new();
        for t in o.triples() {
            assert_ne!(t.subject, t.object, "self loop {}", o.render(*t));
            assert!(keys.insert(t.key()), "duplicate {}", o.render(*t));
        }
    }

    #[test]
    fn disambiguate_prefers_plausible_qualifiers() {
        let mut used = HashSet::new();
        assert_eq!(disambiguate(&used, "x".into()), "x");
        used.insert("x".to_string());
        assert_eq!(disambiguate(&used, "x".into()), "x monohydrate");
        used.insert("x monohydrate".to_string());
        assert_eq!(disambiguate(&used, "x".into()), "x dihydrate");
    }

    #[test]
    fn scale_changes_size_roughly_linearly() {
        let small = SyntheticGenerator::new(SyntheticConfig { scale: 0.02, seed: 3 })
            .unwrap()
            .generate();
        let big = SyntheticGenerator::new(SyntheticConfig { scale: 0.04, seed: 3 })
            .unwrap()
            .generate();
        let ratio = big.n_triples() as f64 / small.n_triples() as f64;
        assert!((ratio - 2.0).abs() < 0.35, "ratio {ratio}");
    }
}
