//! Property tests on graph invariants and parser robustness.

use kcb_ontology::{obo, EntityId, OntologyBuilder, Relation, SubOntology, Triple};
use proptest::prelude::*;

/// Strategy: a random small graph description.
fn graph_strategy() -> impl Strategy<Value = (usize, Vec<(u32, u8, u32)>)> {
    (2usize..40).prop_flat_map(|n| {
        let edges = prop::collection::vec(
            (0..n as u32, 0u8..10, 0..n as u32),
            0..120,
        );
        (Just(n), edges)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn builder_invariants((n, edges) in graph_strategy()) {
        let mut b = OntologyBuilder::new();
        for i in 0..n {
            b.add_entity(format!("entity-{i}"), SubOntology::Chemical);
        }
        for (s, code, o) in &edges {
            b.add_triple(EntityId(*s), Relation::from_code(*code), EntityId(*o));
        }
        let g = b.build();
        // No self loops, no duplicates, and every stored triple reported
        // as contained.
        let mut seen = std::collections::HashSet::new();
        for t in g.triples() {
            prop_assert_ne!(t.subject, t.object);
            prop_assert!(seen.insert(t.key()));
            prop_assert!(g.contains(*t));
        }
        // Sibling relation is symmetric and irreflexive.
        for e in g.entities().iter().take(10) {
            for s in g.siblings(e.id) {
                prop_assert_ne!(s, e.id);
                prop_assert!(g.siblings(s).contains(&e.id));
            }
        }
        // parents/children are mutually consistent.
        for e in g.entities() {
            for &p in g.parents(e.id) {
                prop_assert!(g.children(p).contains(&e.id));
            }
        }
    }

    #[test]
    fn obo_reader_never_panics_on_garbage(s in ".{0,400}") {
        let _ = obo::read(std::io::Cursor::new(s.as_bytes()));
    }

    #[test]
    fn obo_write_read_preserves_triple_count((n, edges) in graph_strategy()) {
        let mut b = OntologyBuilder::new();
        for i in 0..n {
            b.add_entity(format!("entity-{i}"), SubOntology::Role);
        }
        for (s, code, o) in &edges {
            b.add_triple(EntityId(*s), Relation::from_code(*code), EntityId(*o));
        }
        let g = b.build();
        let mut buf = Vec::new();
        obo::write(&g, &mut buf).unwrap();
        let g2 = obo::read(std::io::Cursor::new(&buf)).unwrap();
        prop_assert_eq!(g.n_entities(), g2.n_entities());
        prop_assert_eq!(g.n_triples(), g2.n_triples());
    }

    #[test]
    fn holds_is_superset_of_contains(s in 0u32..20, o in 0u32..20, code in 0u8..10) {
        let mut b = OntologyBuilder::new();
        for i in 0..20 {
            b.add_entity(format!("e{i}"), SubOntology::Chemical);
        }
        b.add_triple(EntityId(s), Relation::from_code(code), EntityId(o));
        let g = b.build();
        let t = Triple::new(EntityId(s), Relation::from_code(code), EntityId(o));
        if g.contains(t) {
            prop_assert!(g.holds(t));
        }
    }
}
