//! LLM response parsing.
//!
//! The paper counts a response as unclassified when the model "did not give
//! a valid result (True or False) or explicitly said 'I don't know'"
//! (§3.5). The parser is deliberately lenient about surface form (case,
//! punctuation, chatty framing) and strict about ambiguity.

/// Parsed classification answer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Answer {
    /// The model answered True.
    True,
    /// The model answered False.
    False,
    /// The model explicitly declined ("I don't know").
    Idk,
    /// No usable answer could be extracted.
    Unparseable,
}

impl Answer {
    /// The boolean classification, when one was given.
    pub fn as_bool(self) -> Option<bool> {
        match self {
            Answer::True => Some(true),
            Answer::False => Some(false),
            _ => None,
        }
    }

    /// Category index for Fleiss-kappa tables (True / False / neither).
    pub fn category(self) -> usize {
        match self {
            Answer::True => 0,
            Answer::False => 1,
            Answer::Idk | Answer::Unparseable => 2,
        }
    }
}

/// Parses a raw model response.
///
/// Rules, in order:
/// 1. an explicit don't-know phrase anywhere → [`Answer::Idk`];
/// 2. exactly one of the words `true` / `false` present (word-boundary,
///    case-insensitive) → that answer; the first occurrence wins if the
///    same word repeats;
/// 3. both words present → the one appearing first wins *only* when it is
///    within the first 3 words (a leading verdict followed by discussion);
///    otherwise ambiguous → [`Answer::Unparseable`];
/// 4. anything else → [`Answer::Unparseable`].
pub fn parse_response(text: &str) -> Answer {
    let lower = text.to_lowercase();
    if lower.contains("i don't know")
        || lower.contains("i do not know")
        || lower.contains("i dont know")
    {
        return Answer::Idk;
    }
    let words: Vec<&str> = lower
        .split(|c: char| !c.is_ascii_alphanumeric() && c != '\'')
        .filter(|w| !w.is_empty())
        .collect();
    let first_true = words.iter().position(|&w| w == "true");
    let first_false = words.iter().position(|&w| w == "false");
    match (first_true, first_false) {
        (Some(_), None) => Answer::True,
        (None, Some(_)) => Answer::False,
        (Some(t), Some(f)) => {
            let (first, pos) = if t < f { (Answer::True, t) } else { (Answer::False, f) };
            if pos < 3 {
                first
            } else {
                Answer::Unparseable
            }
        }
        (None, None) => Answer::Unparseable,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_answers() {
        assert_eq!(parse_response("True"), Answer::True);
        assert_eq!(parse_response("false"), Answer::False);
        assert_eq!(parse_response(" True.\n"), Answer::True);
        assert_eq!(parse_response("FALSE!"), Answer::False);
    }

    #[test]
    fn chatty_answers() {
        assert_eq!(parse_response("The triple is True."), Answer::True);
        assert_eq!(
            parse_response("False. The object does not match the subject class."),
            Answer::False
        );
        assert_eq!(parse_response("<classification>: True"), Answer::True);
    }

    #[test]
    fn idk_phrases() {
        assert_eq!(parse_response("I don't know"), Answer::Idk);
        assert_eq!(parse_response("Sorry, I do not know the answer."), Answer::Idk);
        assert_eq!(parse_response("i dont know."), Answer::Idk);
    }

    #[test]
    fn leading_verdict_with_discussion() {
        assert_eq!(
            parse_response("True, although one could argue it is false in some contexts."),
            Answer::True
        );
        assert_eq!(parse_response("Answer: False — not true at all."), Answer::False);
    }

    #[test]
    fn ambiguous_and_garbage() {
        assert_eq!(
            parse_response("It could be true or it could be false."),
            Answer::Unparseable
        );
        assert_eq!(parse_response(""), Answer::Unparseable);
        assert_eq!(parse_response("The compound reacts with water."), Answer::Unparseable);
        // Substrings must not match ("untrue" is not "true").
        assert_eq!(parse_response("untrue statement"), Answer::Unparseable);
        assert_eq!(parse_response("truthiness"), Answer::Unparseable);
    }

    #[test]
    fn category_mapping() {
        assert_eq!(Answer::True.category(), 0);
        assert_eq!(Answer::False.category(), 1);
        assert_eq!(Answer::Idk.category(), 2);
        assert_eq!(Answer::Unparseable.category(), 2);
        assert_eq!(Answer::True.as_bool(), Some(true));
        assert_eq!(Answer::Idk.as_bool(), None);
    }
}
