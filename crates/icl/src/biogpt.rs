//! BioGPT-mini: the paper's BioGPT arm, reproduced *generatively*.
//!
//! Unlike GPT-3.5/4 (behavioural oracles), this adapter really runs the
//! few-shot prompt through a small causal LM: the prompt is WordPiece-
//! encoded, the `kcb-lm` decoder generates a continuation under
//! temperature sampling, the text is decoded and handed to the same parser
//! as every other model. A small domain-pretrained, non-instruction-tuned
//! CLM mechanically reproduces the paper's BioGPT findings: near-chance
//! accuracy, a large unclassified fraction and kappa ≈ 0.

use crate::protocol::{PromptContext, PromptedModel};
use kcb_lm::MiniGpt;
use kcb_text::{ChemTokenizer, WordPiece};
use kcb_util::Rng;

/// A generative few-shot classifier wrapping a mini causal LM.
pub struct BioGptMini {
    name: String,
    gpt: MiniGpt,
    wordpiece: WordPiece,
    tokenizer: ChemTokenizer,
    /// Sampling temperature for continuations.
    pub temperature: f32,
    /// Tokens to generate per response.
    pub max_new_tokens: usize,
}

impl BioGptMini {
    /// Wraps a (typically domain-pretrained) decoder and its WordPiece
    /// vocabulary.
    pub fn new(gpt: MiniGpt, wordpiece: WordPiece) -> Self {
        Self {
            name: "biogpt-mini".to_string(),
            gpt,
            wordpiece,
            tokenizer: ChemTokenizer::new(),
            temperature: 0.7,
            max_new_tokens: 12,
        }
    }

    /// The underlying decoder.
    pub fn gpt_model(&self) -> &MiniGpt {
        &self.gpt
    }

    /// The WordPiece vocabulary in use.
    pub fn wordpiece(&self) -> &WordPiece {
        &self.wordpiece
    }

    /// Encodes text into LM token ids (chem pre-tokenization + WordPiece).
    pub fn encode(&self, text: &str) -> Vec<u32> {
        let words = self.tokenizer.tokenize(text);
        self.wordpiece.encode_words(words.iter().map(String::as_str))
    }
}

impl PromptedModel for BioGptMini {
    fn name(&self) -> &str {
        &self.name
    }

    fn respond(&self, ctx: &PromptContext<'_>, rng: &mut Rng) -> String {
        let mut ids = self.encode(ctx.prompt_text);
        if ids.is_empty() {
            ids.push(kcb_text::wordpiece::special::CLS);
        }
        let out = self.gpt.generate(&ids, self.max_new_tokens, self.temperature, rng);
        self.wordpiece.decode(&out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::{parse_response, Answer};
    use crate::prompt::{FewShotExample, PromptBuilder, PromptVariant};
    use crate::protocol::{run_protocol, PromptItem};
    use kcb_lm::{MiniGptConfig, TransformerConfig};
    use kcb_text::WordPieceTrainer;
    use std::collections::HashMap;

    fn tiny_biogpt() -> BioGptMini {
        // Train a small WordPiece over prompt-ish vocabulary.
        let mut counts: HashMap<String, u64> = HashMap::new();
        for w in [
            "true", "false", "triple", "classification", "your", "task", "is", "to", "classify",
            "triples", "as", "or", "acid", "oxan", "role", "has", "a",
        ] {
            counts.insert(w.to_string(), 20);
        }
        let wp = WordPieceTrainer { target_vocab: 160, min_pair_count: 1 }.train(&counts);
        let gpt = MiniGpt::new(MiniGptConfig {
            arch: TransformerConfig {
                vocab_size: wp.vocab_size(),
                d_model: 16,
                n_heads: 2,
                n_layers: 1,
                d_ff: 32,
                max_len: 32,
                seed: 3,
            },
        });
        BioGptMini::new(gpt, wp)
    }

    fn fixtures() -> (PromptBuilder, Vec<PromptItem>) {
        let pos = (0..3)
            .map(|i| FewShotExample { text: format!("acid {i} has role oxan"), label: true })
            .collect();
        let neg = (0..3)
            .map(|i| FewShotExample { text: format!("oxan {i} has role acid"), label: false })
            .collect();
        let items = (0..20)
            .map(|i| PromptItem {
                text: format!("acid triple {i}"),
                label: i % 2 == 0,
                task: 1,
                key: i as u64,
            })
            .collect();
        (PromptBuilder::new(pos, neg), items)
    }

    #[test]
    fn generates_and_parses_end_to_end() {
        let model = tiny_biogpt();
        let (b, items) = fixtures();
        let r = run_protocol(&model, &b, &items, PromptVariant::Base, 3, 1);
        // An untrained tiny CLM behaves like the paper's BioGPT: at or near
        // chance, with low consistency.
        assert!(r.accuracy_mean < 0.75, "untrained CLM suspiciously good: {}", r.accuracy_mean);
        assert!(r.kappa < 0.6, "untrained CLM suspiciously consistent: {}", r.kappa);
    }

    #[test]
    fn untrained_model_often_unparseable() {
        let model = tiny_biogpt();
        let mut rng = Rng::seed(5);
        let mut unparseable = 0;
        for i in 0..30 {
            let prompt = format!("classify triple {i} as true or false");
            let ids = model.encode(&prompt);
            let out = model.gpt.generate(&ids, 6, 0.9, &mut rng);
            let text = model.wordpiece.decode(&out);
            if parse_response(&text) == Answer::Unparseable {
                unparseable += 1;
            }
        }
        assert!(unparseable > 5, "expected plenty of garbage, got {unparseable}/30");
    }

    #[test]
    fn encode_round_trips_known_words() {
        let model = tiny_biogpt();
        let ids = model.encode("true false");
        assert!(!ids.is_empty());
        let text = model.wordpiece.decode(&ids);
        assert_eq!(text, "true false");
    }
}
