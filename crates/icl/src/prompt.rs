//! Few-shot prompt construction (paper Table 1 and §2.4).
//!
//! Three formulations were tested:
//! * **Variant #1 (base)** — three positive examples, then three negative
//!   examples, then the query (Table 1).
//! * **Variant #2 (allow IDK)** — variant #1 plus "If you do not know the
//!   answer, state 'I don't know'".
//! * **Variant #3 (shuffled)** — positive and negative examples presented
//!   in random order (the BioGPT order-bias mitigation).

use kcb_util::Rng;

/// The three prompt formulations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PromptVariant {
    /// Variant #1: the base template.
    Base,
    /// Variant #2: base plus the "I don't know" escape hatch.
    AllowIdk,
    /// Variant #3: examples in random order.
    Shuffled,
}

impl PromptVariant {
    /// All variants in paper order.
    pub const ALL: [PromptVariant; 3] =
        [PromptVariant::Base, PromptVariant::AllowIdk, PromptVariant::Shuffled];

    /// Paper label ("#1", "#2", "#3").
    pub fn label(self) -> &'static str {
        match self {
            PromptVariant::Base => "#1",
            PromptVariant::AllowIdk => "#2",
            PromptVariant::Shuffled => "#3",
        }
    }
}

/// One in-context example: rendered triple text plus its truth label.
#[derive(Debug, Clone)]
pub struct FewShotExample {
    /// Verbalised triple, e.g. `"ammonium chloride has role ferroptosis
    /// inhibitor"`.
    pub text: String,
    /// Whether it is presented as True.
    pub label: bool,
}

/// Builds prompt texts from examples + a query triple.
#[derive(Debug, Clone)]
pub struct PromptBuilder {
    positives: Vec<FewShotExample>,
    negatives: Vec<FewShotExample>,
}

impl PromptBuilder {
    /// Creates a builder from positive and negative example pools. The
    /// paper uses exactly three of each (§2.4).
    pub fn new(positives: Vec<FewShotExample>, negatives: Vec<FewShotExample>) -> Self {
        assert!(!positives.is_empty() && !negatives.is_empty(), "need both example polarities");
        assert!(
            positives.iter().all(|e| e.label) && negatives.iter().all(|e| !e.label),
            "example labels disagree with their pool"
        );
        Self { positives, negatives }
    }

    /// Renders the prompt for a query under the given variant. `rng` drives
    /// variant #3's example shuffling (pass a per-prompt fork for
    /// reproducibility).
    pub fn render(&self, query_text: &str, variant: PromptVariant, rng: &mut Rng) -> String {
        let mut examples: Vec<&FewShotExample> = match variant {
            PromptVariant::Base | PromptVariant::AllowIdk => {
                self.positives.iter().chain(self.negatives.iter()).collect()
            }
            PromptVariant::Shuffled => {
                let mut all: Vec<&FewShotExample> =
                    self.positives.iter().chain(self.negatives.iter()).collect();
                rng.shuffle(&mut all);
                all
            }
        };
        let mut out = String::with_capacity(256 + examples.len() * 96);
        out.push_str("Your task is to classify triples as True or False.");
        if variant == PromptVariant::AllowIdk {
            out.push_str(" If you do not know the answer, state 'I don't know'.");
        }
        out.push('\n');
        for e in examples.drain(..) {
            out.push_str("<triple>: ");
            out.push_str(&e.text);
            out.push_str("\n<classification>: ");
            out.push_str(if e.label { "True" } else { "False" });
            out.push('\n');
        }
        out.push_str("<triple>: ");
        out.push_str(query_text);
        out.push_str("\n<classification>:");
        out
    }

    /// Number of in-context examples.
    pub fn n_examples(&self) -> usize {
        self.positives.len() + self.negatives.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn builder() -> PromptBuilder {
        let pos = (0..3)
            .map(|i| FewShotExample { text: format!("pos-{i} is a thing"), label: true })
            .collect();
        let neg = (0..3)
            .map(|i| FewShotExample { text: format!("neg-{i} is a thing"), label: false })
            .collect();
        PromptBuilder::new(pos, neg)
    }

    #[test]
    fn base_prompt_matches_table_1_shape() {
        let b = builder();
        let mut rng = Rng::seed(1);
        let p = b.render("query-triple has role x", PromptVariant::Base, &mut rng);
        assert!(p.starts_with("Your task is to classify triples as True or False."));
        assert_eq!(p.matches("<triple>:").count(), 7, "6 examples + query");
        assert_eq!(p.matches("<classification>:").count(), 7);
        assert_eq!(p.matches("True").count(), 4, "3 labels + instruction mention");
        assert!(p.ends_with("<classification>:"));
        // Base order: positives strictly before negatives.
        assert!(p.find("pos-2").unwrap() < p.find("neg-0").unwrap());
        assert!(!p.contains("I don't know"));
    }

    #[test]
    fn idk_variant_adds_escape_sentence() {
        let b = builder();
        let mut rng = Rng::seed(1);
        let p = b.render("q", PromptVariant::AllowIdk, &mut rng);
        assert!(p.contains("state 'I don't know'"));
    }

    #[test]
    fn shuffled_variant_randomises_order() {
        let b = builder();
        // Across seeds, the first example should vary.
        let firsts: std::collections::HashSet<String> = (0..12)
            .map(|s| {
                let mut rng = Rng::seed(s);
                let p = b.render("q", PromptVariant::Shuffled, &mut rng);
                let start = p.find("<triple>: ").unwrap() + 10;
                p[start..start + 5].to_string()
            })
            .collect();
        assert!(firsts.len() > 1, "shuffling never changed example order");
    }

    #[test]
    fn shuffled_keeps_all_examples() {
        let b = builder();
        let mut rng = Rng::seed(3);
        let p = b.render("q", PromptVariant::Shuffled, &mut rng);
        for i in 0..3 {
            assert!(p.contains(&format!("pos-{i}")));
            assert!(p.contains(&format!("neg-{i}")));
        }
    }

    #[test]
    #[should_panic(expected = "example labels disagree")]
    fn rejects_mislabelled_pools() {
        let pos = vec![FewShotExample { text: "x".into(), label: false }];
        let neg = vec![FewShotExample { text: "y".into(), label: false }];
        let _ = PromptBuilder::new(pos, neg);
    }
}
