//! The §2.4 evaluation protocol: N prompts, each sent R times; accuracy
//! over everything, precision/recall/F1 over classified answers only, and
//! Fleiss' kappa over the repeats (Table 5's columns).

use crate::parse::{parse_response, Answer};
use crate::prompt::{PromptBuilder, PromptVariant};
use kcb_ml::kappa::{fleiss_kappa, ratings_from_answers};
use kcb_ml::metrics::eval_with_abstentions;
use kcb_util::Rng;
use serde::Serialize;

/// One query to classify.
#[derive(Debug, Clone)]
pub struct PromptItem {
    /// Verbalised triple text.
    pub text: String,
    /// Ground-truth label.
    pub label: bool,
    /// Which curation task (1–3) the triple belongs to.
    pub task: usize,
    /// Stable identifier of the underlying triple — behavioural simulators
    /// key their per-triple "belief" on this so that repeats agree.
    pub key: u64,
}

/// Everything a model sees (plus ground truth, readable only by
/// simulators) for one request.
#[derive(Debug)]
pub struct PromptContext<'a> {
    /// Fully rendered prompt.
    pub prompt_text: &'a str,
    /// The query triple's text.
    pub query_text: &'a str,
    /// Ground truth (simulators only; the generative adapter ignores it).
    pub truth: bool,
    /// Task number (1–3).
    pub task: usize,
    /// Prompt formulation in use.
    pub variant: PromptVariant,
    /// Stable query identifier.
    pub key: u64,
    /// Repeat index (0-based).
    pub repeat: usize,
}

/// A model that can be prompted (a behavioural oracle or a real generative
/// model).
pub trait PromptedModel {
    /// Display name.
    fn name(&self) -> &str;
    /// Produces the raw text response for one request. `rng` is a
    /// per-request stream (deterministic in `(seed, item, repeat)`).
    fn respond(&self, ctx: &PromptContext<'_>, rng: &mut Rng) -> String;
}

/// Aggregated result of one (model, variant, task) run — one row of
/// Table 5.
#[derive(Debug, Clone, Serialize)]
pub struct IclResult {
    /// Model name.
    pub model: String,
    /// Prompt variant label (`#1`/`#2`/`#3`).
    pub variant: String,
    /// Task number.
    pub task: usize,
    /// Mean overall accuracy across repeats (abstentions count as wrong).
    pub accuracy_mean: f64,
    /// SD of accuracy across repeats.
    pub accuracy_sd: f64,
    /// Total unclassified responses across all repeats.
    pub n_unclassified: usize,
    /// Unclassified as a share of all responses.
    pub pct_unclassified: f64,
    /// Mean positive-class precision over classified answers.
    pub precision_mean: f64,
    /// SD of precision.
    pub precision_sd: f64,
    /// Mean recall.
    pub recall_mean: f64,
    /// SD of recall.
    pub recall_sd: f64,
    /// Mean F1.
    pub f1_mean: f64,
    /// SD of F1.
    pub f1_sd: f64,
    /// Fleiss' kappa over the repeats (True / False / unclassified).
    pub kappa: f64,
}

/// One recorded exchange: what was asked, what came back, how it parsed.
///
/// The paper's §4 limitations flag that API-hosted models drift between
/// runs ("our initial GPT-3.5 experiments ... yielded significantly poorer
/// results than the latest run on the same model"); persisting transcripts
/// makes every ICL run auditable and diffable.
#[derive(Debug, Clone, Serialize)]
pub struct Transcript {
    /// The query triple's text.
    pub query: String,
    /// Ground-truth label.
    pub label: bool,
    /// Repeat index (0-based).
    pub repeat: usize,
    /// Raw model response.
    pub response: String,
    /// The parser's verdict (`"True"`, `"False"`, `"Idk"`, `"Unparseable"`).
    pub parsed: String,
}

/// Runs the protocol: every item is prompted `n_repeats` times under the
/// given variant; metrics follow §3.5's unclassified-aware accounting.
///
/// ```
/// use kcb_icl::{run_protocol, FewShotExample, PromptBuilder, PromptItem, PromptVariant};
/// use kcb_icl::{PromptContext, PromptedModel};
///
/// struct AlwaysTrue;
/// impl PromptedModel for AlwaysTrue {
///     fn name(&self) -> &str { "always-true" }
///     fn respond(&self, _ctx: &PromptContext<'_>, _rng: &mut kcb_util::Rng) -> String {
///         "True".into()
///     }
/// }
///
/// let builder = PromptBuilder::new(
///     vec![FewShotExample { text: "p".into(), label: true }],
///     vec![FewShotExample { text: "n".into(), label: false }],
/// );
/// let items: Vec<PromptItem> = (0..10)
///     .map(|i| PromptItem { text: format!("t{i}"), label: i % 2 == 0, task: 1, key: i })
///     .collect();
/// let r = run_protocol(&AlwaysTrue, &builder, &items, PromptVariant::Base, 2, 7);
/// assert!((r.accuracy_mean - 0.5).abs() < 1e-9); // half the labels are true
/// assert_eq!(r.kappa, 1.0);                      // perfectly consistent
/// ```
pub fn run_protocol(
    model: &dyn PromptedModel,
    builder: &PromptBuilder,
    items: &[PromptItem],
    variant: PromptVariant,
    n_repeats: usize,
    seed: u64,
) -> IclResult {
    run_protocol_with_transcripts(model, builder, items, variant, n_repeats, seed).0
}

/// Like [`run_protocol`] but also returns the full exchange log, one
/// [`Transcript`] per (item, repeat) in repeat-major order.
pub fn run_protocol_with_transcripts(
    model: &dyn PromptedModel,
    builder: &PromptBuilder,
    items: &[PromptItem],
    variant: PromptVariant,
    n_repeats: usize,
    seed: u64,
) -> (IclResult, Vec<Transcript>) {
    assert!(!items.is_empty(), "no prompt items");
    assert!(n_repeats >= 2, "kappa needs at least 2 repeats");
    let task = items[0].task;
    let labels: Vec<bool> = items.iter().map(|i| i.label).collect();

    // answers[item][repeat]
    let mut answers: Vec<Vec<Answer>> = vec![Vec::with_capacity(n_repeats); items.len()];
    let mut transcripts: Vec<Transcript> = Vec::with_capacity(items.len() * n_repeats);
    for repeat in 0..n_repeats {
        for (i, item) in items.iter().enumerate() {
            let mut rng = Rng::seed_stream(seed, kcb_util::fnv1a_u64s(&[repeat as u64, i as u64, 0x9c01]));
            let prompt_text = builder.render(&item.text, variant, &mut rng);
            let ctx = PromptContext {
                prompt_text: &prompt_text,
                query_text: &item.text,
                truth: item.label,
                task: item.task,
                variant,
                key: item.key,
                repeat,
            };
            let response = model.respond(&ctx, &mut rng);
            let parsed = parse_response(&response);
            transcripts.push(Transcript {
                query: item.text.clone(),
                label: item.label,
                repeat,
                response,
                parsed: format!("{parsed:?}"),
            });
            answers[i].push(parsed);
        }
    }

    // Per-repeat metrics.
    let mut accs = Vec::with_capacity(n_repeats);
    let mut precs = Vec::with_capacity(n_repeats);
    let mut recs = Vec::with_capacity(n_repeats);
    let mut f1s = Vec::with_capacity(n_repeats);
    let mut n_unclassified = 0usize;
    for r in 0..n_repeats {
        let preds: Vec<Option<bool>> = answers.iter().map(|a| a[r].as_bool()).collect();
        let m = eval_with_abstentions(&preds, &labels);
        n_unclassified += m.n_unclassified;
        accs.push(m.overall_accuracy);
        precs.push(m.classified.precision);
        recs.push(m.classified.recall);
        f1s.push(m.classified.f1);
    }

    // Fleiss' kappa over (True / False / neither).
    let cat_answers: Vec<Vec<usize>> = answers
        .iter()
        .map(|reps| reps.iter().map(|a| a.category()).collect())
        .collect();
    let kappa = fleiss_kappa(&ratings_from_answers(&cat_answers, 3));

    let total = items.len() * n_repeats;
    let result = IclResult {
        model: model.name().to_string(),
        variant: variant.label().to_string(),
        task,
        accuracy_mean: kcb_ml::stats::mean(&accs),
        accuracy_sd: kcb_ml::stats::std_dev(&accs),
        n_unclassified,
        pct_unclassified: n_unclassified as f64 / total as f64,
        precision_mean: kcb_ml::stats::mean(&precs),
        precision_sd: kcb_ml::stats::std_dev(&precs),
        recall_mean: kcb_ml::stats::mean(&recs),
        recall_sd: kcb_ml::stats::std_dev(&recs),
        f1_mean: kcb_ml::stats::mean(&f1s),
        f1_sd: kcb_ml::stats::std_dev(&f1s),
        kappa,
    };
    (result, transcripts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prompt::FewShotExample;

    /// A model that always answers the truth.
    struct Perfect;
    impl PromptedModel for Perfect {
        fn name(&self) -> &str {
            "perfect"
        }
        fn respond(&self, ctx: &PromptContext<'_>, _rng: &mut Rng) -> String {
            if ctx.truth { "True" } else { "False" }.to_string()
        }
    }

    /// A model that answers uniformly at random each time.
    struct Coin;
    impl PromptedModel for Coin {
        fn name(&self) -> &str {
            "coin"
        }
        fn respond(&self, _ctx: &PromptContext<'_>, rng: &mut Rng) -> String {
            if rng.chance(0.5) { "True" } else { "False" }.to_string()
        }
    }

    /// A model that always refuses.
    struct Refuser;
    impl PromptedModel for Refuser {
        fn name(&self) -> &str {
            "refuser"
        }
        fn respond(&self, _ctx: &PromptContext<'_>, _rng: &mut Rng) -> String {
            "I don't know".to_string()
        }
    }

    fn fixtures() -> (PromptBuilder, Vec<PromptItem>) {
        let pos = (0..3).map(|i| FewShotExample { text: format!("p{i}"), label: true }).collect();
        let neg = (0..3).map(|i| FewShotExample { text: format!("n{i}"), label: false }).collect();
        let builder = PromptBuilder::new(pos, neg);
        let items: Vec<PromptItem> = (0..40)
            .map(|i| PromptItem {
                text: format!("triple-{i}"),
                label: i % 2 == 0,
                task: 1,
                key: i as u64,
            })
            .collect();
        (builder, items)
    }

    #[test]
    fn perfect_model_scores_perfectly() {
        let (b, items) = fixtures();
        let r = run_protocol(&Perfect, &b, &items, PromptVariant::Base, 5, 1);
        assert_eq!(r.accuracy_mean, 1.0);
        assert_eq!(r.f1_mean, 1.0);
        assert_eq!(r.n_unclassified, 0);
        assert_eq!(r.kappa, 1.0);
        assert_eq!(r.accuracy_sd, 0.0);
    }

    #[test]
    fn coin_model_has_chance_accuracy_and_low_kappa() {
        let (b, items) = fixtures();
        let r = run_protocol(&Coin, &b, &items, PromptVariant::Base, 5, 2);
        assert!((r.accuracy_mean - 0.5).abs() < 0.15, "acc {}", r.accuracy_mean);
        assert!(r.kappa < 0.25, "kappa {}", r.kappa);
    }

    #[test]
    fn refuser_hits_accuracy_but_not_classified_metrics() {
        let (b, items) = fixtures();
        let r = run_protocol(&Refuser, &b, &items, PromptVariant::AllowIdk, 5, 3);
        assert_eq!(r.accuracy_mean, 0.0);
        assert_eq!(r.n_unclassified, 200);
        assert!((r.pct_unclassified - 1.0).abs() < 1e-12);
        assert_eq!(r.f1_mean, 0.0);
        assert_eq!(r.kappa, 1.0, "consistent refusal is perfect agreement");
    }

    #[test]
    fn transcripts_record_every_exchange() {
        let (b, items) = fixtures();
        let (r, ts) = run_protocol_with_transcripts(&Perfect, &b, &items, PromptVariant::Base, 3, 1);
        assert_eq!(ts.len(), items.len() * 3);
        assert_eq!(r.accuracy_mean, 1.0);
        for t in &ts {
            assert_eq!(t.parsed, if t.label { "True" } else { "False" });
            assert!(t.repeat < 3);
        }
        // Repeat-major order: first block is repeat 0.
        assert!(ts[..items.len()].iter().all(|t| t.repeat == 0));
    }

    #[test]
    fn protocol_is_deterministic() {
        let (b, items) = fixtures();
        let r1 = run_protocol(&Coin, &b, &items, PromptVariant::Shuffled, 5, 7);
        let r2 = run_protocol(&Coin, &b, &items, PromptVariant::Shuffled, 5, 7);
        assert_eq!(r1.accuracy_mean, r2.accuracy_mean);
        assert_eq!(r1.kappa, r2.kappa);
    }
}
