//! In-context-learning harness (NLP paradigm 1, §2.4).
//!
//! Implements the paper's ICL experiments end to end: the three prompt
//! formulations of Table 1 ([`prompt`]), response parsing including
//! "I don't know" and unparseable output ([`parse`]), the 100-prompt ×
//! 5-repeat protocol with Fleiss' kappa and unclassified-aware metrics
//! ([`protocol`]), behavioural simulators for the API-gated GPT-3.5/GPT-4
//! models ([`oracle`] — see DESIGN.md for the substitution rationale), and
//! a real generative adapter that prompts the `kcb-lm` mini-GPT the way the
//! paper prompts BioGPT ([`biogpt`]).

pub mod biogpt;
pub mod oracle;
pub mod parse;
pub mod prompt;
pub mod protocol;

pub use oracle::{LlmOracle, OracleProfile};
pub use parse::{parse_response, Answer};
pub use prompt::{FewShotExample, PromptBuilder, PromptVariant};
pub use biogpt::BioGptMini;
pub use protocol::{run_protocol, run_protocol_with_transcripts, IclResult, PromptContext, PromptItem, PromptedModel, Transcript};
