//! Behavioural LLM simulators for the API-gated GPT-3.5 / GPT-4 models.
//!
//! The real models cannot be called here (see the substitution table in
//! DESIGN.md), so the ICL paradigm is exercised against *behavioural
//! oracles*: each oracle holds a per-task competence profile (probability
//! of judging a true/false triple correctly), an abstention policy tied to
//! prompt variant #2, a garble rate for variant #3, and per-repeat response
//! jitter. The oracle's "belief" about a given triple is a stable function
//! of `(oracle name, triple key)`, so the five protocol repeats agree
//! unless jitter flips one — Fleiss' kappa *emerges* from the protocol.
//!
//! The calibration constants below were set once against the paper's
//! Table 5 (means of the per-variant rows) and are not fitted to our
//! synthetic data. Everything downstream — prompt rendering, response
//! text, parsing, unclassified accounting, kappa — is the real pipeline.

use crate::prompt::PromptVariant;
use crate::protocol::{PromptContext, PromptedModel};
use kcb_util::Rng;

/// Per-task judgment competence.
#[derive(Debug, Clone, Copy)]
pub struct TaskCompetence {
    /// P(answer "True" | triple is true).
    pub recall_true: f64,
    /// P(answer "False" | triple is false).
    pub recall_false: f64,
}

/// A behavioural profile for one simulated LLM.
#[derive(Debug, Clone)]
pub struct OracleProfile {
    /// Display name (e.g. `"gpt-4-sim"`).
    pub name: String,
    /// Competence for tasks 1–3.
    pub tasks: [TaskCompetence; 3],
    /// P(abstain with "I don't know" | variant #2, belief is wrong) —
    /// abstention correlates with uncertainty, which is why the paper sees
    /// classified-only F1 rise under variant #2.
    pub idk_when_wrong: f64,
    /// P(abstain | variant #2, belief is right).
    pub idk_when_right: f64,
    /// P(produce an unparseable, hedging response | variant #3).
    pub garble_v3: f64,
    /// Accuracy shift under variant #3 (example-order randomisation).
    pub v3_accuracy_delta: f64,
    /// Per-repeat probability of flipping the stable belief (drives the
    /// small SDs and the &lt;1.0 kappas in Table 5).
    pub repeat_flip: f64,
}

impl OracleProfile {
    /// The GPT-4 stand-in, calibrated against Table 5's GPT-4 rows.
    pub fn gpt4_sim() -> Self {
        Self {
            name: "gpt-4-sim".to_string(),
            tasks: [
                TaskCompetence { recall_true: 0.825, recall_false: 0.995 },
                TaskCompetence { recall_true: 0.768, recall_false: 0.765 },
                TaskCompetence { recall_true: 0.805, recall_false: 0.935 },
            ],
            idk_when_wrong: 0.35,
            idk_when_right: 0.02,
            garble_v3: 0.08,
            v3_accuracy_delta: 0.05,
            repeat_flip: 0.010,
        }
    }

    /// A Llama-2-class open-weight stand-in — the paper's stated future
    /// work ("future work should evaluate the use of open source GPT
    /// models like Meta's Llama2"). Not calibrated against published
    /// numbers; positioned between GPT-3.5 and BioGPT: weaker knowledge
    /// coverage, noisier formatting, lower consistency.
    pub fn llama2_sim() -> Self {
        Self {
            name: "llama2-sim".to_string(),
            tasks: [
                TaskCompetence { recall_true: 0.60, recall_false: 0.85 },
                TaskCompetence { recall_true: 0.55, recall_false: 0.60 },
                TaskCompetence { recall_true: 0.52, recall_false: 0.75 },
            ],
            idk_when_wrong: 0.30,
            idk_when_right: 0.12,
            garble_v3: 0.25,
            v3_accuracy_delta: 0.01,
            repeat_flip: 0.05,
        }
    }

    /// The GPT-3.5-Turbo stand-in, calibrated against Table 5's GPT-3.5
    /// rows.
    pub fn gpt35_sim() -> Self {
        Self {
            name: "gpt-3.5-sim".to_string(),
            tasks: [
                TaskCompetence { recall_true: 0.652, recall_false: 0.960 },
                TaskCompetence { recall_true: 0.646, recall_false: 0.702 },
                TaskCompetence { recall_true: 0.577, recall_false: 0.860 },
            ],
            idk_when_wrong: 0.50,
            idk_when_right: 0.10,
            garble_v3: 0.17,
            v3_accuracy_delta: 0.02,
            repeat_flip: 0.012,
        }
    }
}

/// A prompted model backed by an [`OracleProfile`].
#[derive(Debug, Clone)]
pub struct LlmOracle {
    profile: OracleProfile,
    name_hash: u64,
}

impl LlmOracle {
    /// Wraps a profile.
    pub fn new(profile: OracleProfile) -> Self {
        let name_hash = kcb_util::fnv1a(profile.name.as_bytes());
        Self { profile, name_hash }
    }

    /// The profile in use.
    pub fn profile(&self) -> &OracleProfile {
        &self.profile
    }

    /// The oracle's stable belief about a triple under a variant:
    /// `Some(answer)` or `None` (will abstain/garble).
    fn belief(&self, ctx: &PromptContext<'_>) -> Option<bool> {
        let p = &self.profile;
        // Stable per (oracle, triple, variant-family) stream.
        let mut brng = Rng::seed_stream(self.name_hash ^ ctx.key, 0xbe11ef);
        let t = (ctx.task - 1).min(2);
        let mut p_correct =
            if ctx.truth { p.tasks[t].recall_true } else { p.tasks[t].recall_false };
        if ctx.variant == PromptVariant::Shuffled {
            p_correct = (p_correct + p.v3_accuracy_delta).clamp(0.0, 1.0);
        }
        let correct = brng.chance(p_correct);
        let answer = if correct { ctx.truth } else { !ctx.truth };

        // Stable abstention decisions (drawn from the same stream so they
        // are consistent across repeats).
        match ctx.variant {
            PromptVariant::AllowIdk => {
                let p_idk = if correct { p.idk_when_right } else { p.idk_when_wrong };
                if brng.chance(p_idk) {
                    return None;
                }
            }
            PromptVariant::Shuffled => {
                if brng.chance(p.garble_v3) {
                    return None;
                }
            }
            PromptVariant::Base => {}
        }
        Some(answer)
    }
}

const TRUE_PHRASES: &[&str] = &["True", "True.", "<classification>: True", "The triple is true."];
const FALSE_PHRASES: &[&str] =
    &["False", "False.", "<classification>: False", "The triple is false."];
const GARBLE_PHRASES: &[&str] = &[
    "The classification depends on the specific biological context of the assay.",
    "This relationship requires additional structural information to assess.",
    "As a language model, classifying this requires domain curation expertise.",
];

impl PromptedModel for LlmOracle {
    fn name(&self) -> &str {
        &self.profile.name
    }

    fn respond(&self, ctx: &PromptContext<'_>, rng: &mut Rng) -> String {
        match self.belief(ctx) {
            None => {
                if ctx.variant == PromptVariant::AllowIdk {
                    "I don't know".to_string()
                } else {
                    GARBLE_PHRASES[rng.below(GARBLE_PHRASES.len())].to_string()
                }
            }
            Some(mut answer) => {
                // Per-repeat jitter.
                if rng.chance(self.profile.repeat_flip) {
                    answer = !answer;
                }
                let pool = if answer { TRUE_PHRASES } else { FALSE_PHRASES };
                pool[rng.below(pool.len())].to_string()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prompt::{FewShotExample, PromptBuilder};
    use crate::protocol::{run_protocol, PromptItem};

    fn fixtures(task: usize, n: usize) -> (PromptBuilder, Vec<PromptItem>) {
        let pos = (0..3).map(|i| FewShotExample { text: format!("p{i}"), label: true }).collect();
        let neg = (0..3).map(|i| FewShotExample { text: format!("n{i}"), label: false }).collect();
        let items = (0..n)
            .map(|i| PromptItem {
                text: format!("t{i}"),
                label: i % 2 == 0,
                task,
                key: (task * 10_000 + i) as u64,
            })
            .collect();
        (PromptBuilder::new(pos, neg), items)
    }

    #[test]
    fn gpt4_beats_gpt35_on_every_task() {
        for task in 1..=3 {
            let (b, items) = fixtures(task, 100);
            let g4 = run_protocol(
                &LlmOracle::new(OracleProfile::gpt4_sim()),
                &b,
                &items,
                PromptVariant::Base,
                5,
                1,
            );
            let g35 = run_protocol(
                &LlmOracle::new(OracleProfile::gpt35_sim()),
                &b,
                &items,
                PromptVariant::Base,
                5,
                1,
            );
            assert!(
                g4.accuracy_mean > g35.accuracy_mean,
                "task {task}: gpt4 {} <= gpt35 {}",
                g4.accuracy_mean,
                g35.accuracy_mean
            );
        }
    }

    #[test]
    fn task2_is_hardest_for_gpt4() {
        let acc: Vec<f64> = (1..=3)
            .map(|task| {
                let (b, items) = fixtures(task, 100);
                run_protocol(
                    &LlmOracle::new(OracleProfile::gpt4_sim()),
                    &b,
                    &items,
                    PromptVariant::Base,
                    5,
                    2,
                )
                .accuracy_mean
            })
            .collect();
        assert!(acc[1] < acc[0] && acc[1] < acc[2], "task accs {acc:?}");
    }

    #[test]
    fn variant2_trades_accuracy_for_abstention() {
        let (b, items) = fixtures(1, 100);
        let oracle = LlmOracle::new(OracleProfile::gpt4_sim());
        let v1 = run_protocol(&oracle, &b, &items, PromptVariant::Base, 5, 3);
        let v2 = run_protocol(&oracle, &b, &items, PromptVariant::AllowIdk, 5, 3);
        assert_eq!(v1.n_unclassified, 0, "base variant never abstains");
        assert!(v2.n_unclassified > 0);
        assert!(v2.accuracy_mean < v1.accuracy_mean);
        // Abstentions correlate with error → classified precision rises.
        assert!(v2.precision_mean >= v1.precision_mean - 0.02);
    }

    #[test]
    fn kappa_is_high_but_below_perfect() {
        let (b, items) = fixtures(1, 100);
        let r = run_protocol(
            &LlmOracle::new(OracleProfile::gpt4_sim()),
            &b,
            &items,
            PromptVariant::Base,
            5,
            4,
        );
        assert!(r.kappa > 0.9, "kappa {}", r.kappa);
        assert!(r.kappa <= 1.0);
    }

    #[test]
    fn accuracy_tracks_calibration_targets() {
        // Task-1 base accuracy should land near the paper's 0.916 ±
        // sampling noise on 100 items.
        let (b, items) = fixtures(1, 100);
        let r = run_protocol(
            &LlmOracle::new(OracleProfile::gpt4_sim()),
            &b,
            &items,
            PromptVariant::Base,
            5,
            5,
        );
        assert!((r.accuracy_mean - 0.91).abs() < 0.07, "acc {}", r.accuracy_mean);
        // Near-perfect precision on task 1 (random negatives are easy).
        assert!(r.precision_mean > 0.95, "precision {}", r.precision_mean);
    }

    #[test]
    fn llama2_sits_between_gpt35_and_chance() {
        let (b, items) = fixtures(1, 100);
        let llama = run_protocol(
            &LlmOracle::new(OracleProfile::llama2_sim()),
            &b,
            &items,
            PromptVariant::Base,
            5,
            6,
        );
        let gpt35 = run_protocol(
            &LlmOracle::new(OracleProfile::gpt35_sim()),
            &b,
            &items,
            PromptVariant::Base,
            5,
            6,
        );
        assert!(llama.accuracy_mean < gpt35.accuracy_mean, "{} vs {}", llama.accuracy_mean, gpt35.accuracy_mean);
        assert!(llama.accuracy_mean > 0.55, "better than coin flip: {}", llama.accuracy_mean);
        assert!(llama.kappa < gpt35.kappa, "noisier than gpt-3.5");
    }

    #[test]
    fn beliefs_are_stable_across_repeats_and_seeds() {
        let (b, items) = fixtures(3, 60);
        let oracle = LlmOracle::new(OracleProfile::gpt4_sim());
        let r1 = run_protocol(&oracle, &b, &items, PromptVariant::Base, 5, 10);
        let r2 = run_protocol(&oracle, &b, &items, PromptVariant::Base, 5, 99);
        // Different protocol seeds change jitter but not the stable beliefs:
        // accuracies stay within jitter distance.
        assert!((r1.accuracy_mean - r2.accuracy_mean).abs() < 0.05);
    }
}
