//! Property test: the pivot-annulus [`NeighbourIndex`] behind `dbscan` is
//! an *exact* drop-in for the brute-force region query — identical labels
//! (cluster ids, border assignment, noise) over random point sets, eps
//! values, densities, and both metrics.

use kcb_ml::cluster::{dbscan, dbscan_brute, Metric, NeighbourIndex};
use kcb_ml::linalg::Matrix;
use proptest::prelude::*;

/// Random point set: up to 120 points in up to 24 dimensions, with
/// coordinates spanning several magnitudes so annuli straddle cluster
/// boundaries. Duplicate-heavy sets are produced by the quantised variant.
fn points(max_n: usize, max_dim: usize) -> impl Strategy<Value = Matrix> {
    (1..max_dim + 1, 0..max_n + 1).prop_flat_map(|(dim, n)| {
        prop::collection::vec(prop::collection::vec(-50.0f32..50.0, dim), n)
            .prop_map(Matrix::from_rows)
    })
}

/// Coarsely quantised points: many exact duplicates and boundary ties,
/// stressing the `distance == eps` edge and the ascending-order contract.
fn quantised_points() -> impl Strategy<Value = Matrix> {
    (1..5usize, 0..81usize).prop_flat_map(|(dim, n)| {
        prop::collection::vec(prop::collection::vec(-4i8..5, dim), n).prop_map(|rows| {
            Matrix::from_rows(rows.into_iter().map(|r| r.into_iter().map(f32::from).collect()))
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn indexed_labels_match_brute_force(
        m in points(120, 24),
        eps in 0.01f32..60.0,
        min_pts in 1usize..6,
        metric_cosine in any::<bool>(),
    ) {
        let metric = if metric_cosine { Metric::Cosine } else { Metric::Euclidean };
        prop_assert_eq!(
            dbscan(&m, eps, min_pts, metric),
            dbscan_brute(&m, eps, min_pts, metric)
        );
    }

    #[test]
    fn indexed_labels_match_on_duplicate_heavy_sets(
        m in quantised_points(),
        eps in 0.0f32..12.0,
        min_pts in 1usize..8,
        metric_cosine in any::<bool>(),
    ) {
        let metric = if metric_cosine { Metric::Cosine } else { Metric::Euclidean };
        prop_assert_eq!(
            dbscan(&m, eps, min_pts, metric),
            dbscan_brute(&m, eps, min_pts, metric)
        );
    }

    #[test]
    fn region_queries_match_exactly_and_ascending(
        m in points(60, 12),
        eps in 0.01f32..30.0,
        metric_cosine in any::<bool>(),
    ) {
        let metric = if metric_cosine { Metric::Cosine } else { Metric::Euclidean };
        let idx = NeighbourIndex::build(&m, metric);
        for i in 0..m.rows() {
            let got = idx.neighbours(i, eps);
            let brute: Vec<usize> = (0..m.rows())
                .filter(|&j| {
                    let d = match metric {
                        Metric::Euclidean => kcb_ml::linalg::euclidean(m.row(i), m.row(j)),
                        Metric::Cosine => 1.0 - kcb_ml::linalg::cosine(m.row(i), m.row(j)),
                    };
                    d <= eps
                })
                .collect();
            prop_assert_eq!(&got, &brute, "query {}", i);
            prop_assert!(got.windows(2).all(|w| w[0] < w[1]), "ascending order");
        }
    }
}
