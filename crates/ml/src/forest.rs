//! Random forests: bootstrap-aggregated CART trees with √d feature
//! sampling, soft-vote probabilities and impurity-based feature
//! importances (the paper's primary supervised learner, §2.6, and the
//! source of the Figure A1 importance analysis).

use crate::linalg::Matrix;
use crate::tree::{DecisionTree, TreeConfig};
use kcb_util::{pool, Rng};

/// Random-forest hyperparameters.
#[derive(Debug, Clone, Copy)]
pub struct RandomForestConfig {
    /// Number of trees.
    pub n_trees: usize,
    /// Maximum depth per tree.
    pub max_depth: usize,
    /// Minimum samples per leaf.
    pub min_samples_leaf: usize,
    /// Features per split; `None` = √d (the classification default).
    pub n_features_per_split: Option<usize>,
    /// RNG seed; the fitted forest is a pure function of data + config.
    pub seed: u64,
    /// Number of worker threads for tree fitting (1 = sequential).
    pub n_threads: usize,
}

impl Default for RandomForestConfig {
    fn default() -> Self {
        Self {
            n_trees: 60,
            max_depth: 20,
            min_samples_leaf: 2,
            n_features_per_split: None,
            seed: 42,
            n_threads: num_threads(),
        }
    }
}

fn num_threads() -> usize {
    // The workspace-wide pool setting (`kcb_util::pool::set_threads`, driven
    // by `repro --threads`) so forest fan-out follows the same knob as the
    // LM kernels and the cell scheduler.
    pool::threads()
}

/// A fitted random forest.
#[derive(Debug)]
pub struct RandomForest {
    trees: Vec<DecisionTree>,
    n_features: usize,
    oob_accuracy: Option<f64>,
}

impl RandomForest {
    /// Fits the forest. Each tree trains on a bootstrap resample of the
    /// rows; per-tree RNG streams are derived from the seed and the tree
    /// index, so results do not depend on thread scheduling.
    ///
    /// ```
    /// use kcb_ml::linalg::Matrix;
    /// use kcb_ml::{RandomForest, RandomForestConfig};
    /// let x = Matrix::from_rows((0..40).map(|i| vec![i as f32]).collect::<Vec<_>>());
    /// let y: Vec<bool> = (0..40).map(|i| i >= 20).collect();
    /// let cfg = RandomForestConfig { n_trees: 8, n_threads: 1, ..Default::default() };
    /// let forest = RandomForest::fit(&x, &y, &cfg);
    /// assert!(forest.predict(&[35.0]));
    /// assert!(!forest.predict(&[3.0]));
    /// ```
    pub fn fit(x: &Matrix, y: &[bool], cfg: &RandomForestConfig) -> Self {
        assert_eq!(x.rows(), y.len(), "row/label mismatch");
        assert!(x.rows() > 0, "empty training data");
        assert!(cfg.n_trees > 0, "n_trees must be positive");
        let _span = kcb_obs::span("ml", "forest.fit")
            .arg("trees", cfg.n_trees)
            .arg("rows", x.rows())
            .arg("cols", x.cols());
        kcb_obs::counter("forest.fits", 1);
        let mtry = cfg
            .n_features_per_split
            .unwrap_or_else(|| (x.cols() as f64).sqrt().round().max(1.0) as usize);
        let tree_cfg = TreeConfig {
            max_depth: cfg.max_depth,
            min_samples_split: cfg.min_samples_leaf.max(1) * 2,
            min_samples_leaf: cfg.min_samples_leaf,
            n_features_per_split: Some(mtry),
        };

        // Bootstrap indices are derived per tree index so parallel
        // scheduling cannot change them; they also drive the OOB estimate.
        let bootstrap = |t: usize| -> (Vec<usize>, Rng) {
            let mut rng = Rng::seed_stream(cfg.seed, 0xf0_0000 + t as u64);
            let n = x.rows();
            let indices: Vec<usize> = (0..n).map(|_| rng.below(n)).collect();
            (indices, rng)
        };
        let fit_one = |t: usize| -> DecisionTree {
            let (indices, mut rng) = bootstrap(t);
            DecisionTree::fit(x, y, &indices, &tree_cfg, &mut rng)
        };

        // Pool arbitration: yields to cell-level parallelism (fan-out 1 on
        // scheduler workers in serial mode) and to cores reserved by other
        // threads; per-tree streams keep the result independent of fan-out.
        let workers = pool::fanout(cfg.n_threads, cfg.n_trees);
        let trees: Vec<DecisionTree> = if workers <= 1 || cfg.n_trees == 1 {
            (0..cfg.n_trees).map(fit_one).collect()
        } else {
            // Chunk tree indices across scoped worker threads; each slot is
            // written by exactly one worker.
            let mut slots: Vec<Option<DecisionTree>> = (0..cfg.n_trees).map(|_| None).collect();
            let chunk = cfg.n_trees.div_ceil(workers);
            crossbeam::thread::scope(|s| {
                for (w, slot_chunk) in slots.chunks_mut(chunk).enumerate() {
                    let fit_one = &fit_one;
                    s.spawn(move |_| {
                        for (k, slot) in slot_chunk.iter_mut().enumerate() {
                            *slot = Some(fit_one(w * chunk + k));
                        }
                    });
                }
            })
            .expect("forest worker panicked");
            slots.into_iter().map(|s| s.expect("tree slot filled")).collect()
        };

        // Out-of-bag accuracy: vote each row only with trees whose
        // bootstrap missed it.
        let n = x.rows();
        let mut vote_sum = vec![0.0f32; n];
        let mut vote_n = vec![0u32; n];
        for (t, tree) in trees.iter().enumerate() {
            let (indices, _) = bootstrap(t);
            let mut in_bag = vec![false; n];
            for &i in &indices {
                in_bag[i] = true;
            }
            for i in 0..n {
                if !in_bag[i] {
                    vote_sum[i] += tree.predict_proba(x.row(i));
                    vote_n[i] += 1;
                }
            }
        }
        let mut correct = 0usize;
        let mut counted = 0usize;
        for i in 0..n {
            if vote_n[i] == 0 {
                continue;
            }
            counted += 1;
            if (vote_sum[i] / vote_n[i] as f32 >= 0.5) == y[i] {
                correct += 1;
            }
        }
        let oob_accuracy =
            if counted * 10 >= n { Some(correct as f64 / counted as f64) } else { None };

        Self { trees, n_features: x.cols(), oob_accuracy }
    }

    /// Out-of-bag accuracy estimate, when enough rows were left out of at
    /// least one bootstrap (the usual case; `None` for degenerate
    /// single-tree tiny fits).
    pub fn oob_accuracy(&self) -> Option<f64> {
        self.oob_accuracy
    }

    /// Mean positive-class probability across trees (soft vote).
    pub fn predict_proba(&self, row: &[f32]) -> f32 {
        let sum: f32 = self.trees.iter().map(|t| t.predict_proba(row)).sum();
        sum / self.trees.len() as f32
    }

    /// Hard prediction at threshold 0.5.
    pub fn predict(&self, row: &[f32]) -> bool {
        self.predict_proba(row) >= 0.5
    }

    /// Predictions for every row of a matrix.
    pub fn predict_batch(&self, x: &Matrix) -> Vec<bool> {
        x.iter_rows().map(|r| self.predict(r)).collect()
    }

    /// Probabilities for every row of a matrix.
    pub fn predict_proba_batch(&self, x: &Matrix) -> Vec<f32> {
        x.iter_rows().map(|r| self.predict_proba(r)).collect()
    }

    /// Mean impurity-decrease feature importances, normalised to sum to 1
    /// (all-zero when no split was ever made).
    pub fn feature_importances(&self) -> Vec<f64> {
        let mut imp = vec![0.0f64; self.n_features];
        for t in &self.trees {
            for (a, b) in imp.iter_mut().zip(&t.importance) {
                *a += b;
            }
        }
        let total: f64 = imp.iter().sum();
        if total > 0.0 {
            for v in &mut imp {
                *v /= total;
            }
        }
        imp
    }

    /// Number of trees.
    pub fn n_trees(&self) -> usize {
        self.trees.len()
    }

    /// Streams the fitted forest into a checkpoint writer. Bit-exact: a
    /// decoded forest returns identical probabilities for every input.
    pub fn encode(&self, w: &mut kcb_util::bin::Writer) {
        w.raw(b"KCBF");
        w.u32(1);
        w.u32(self.n_features as u32);
        match self.oob_accuracy {
            Some(v) => {
                w.u8(1);
                w.f64(v);
            }
            None => w.u8(0),
        }
        w.u32(self.trees.len() as u32);
        for t in &self.trees {
            t.encode(w);
        }
    }

    /// Decodes a forest previously written by [`RandomForest::encode`].
    pub fn decode(r: &mut kcb_util::bin::Reader<'_>) -> kcb_util::Result<Self> {
        r.magic(b"KCBF")?;
        r.version(1)?;
        let n_features = r.u32()? as usize;
        let oob_accuracy = match r.u8()? {
            0 => None,
            _ => Some(r.f64()?),
        };
        let n_trees = r.u32()? as usize;
        r.sized(n_trees, 12)?;
        let trees = (0..n_trees).map(|_| DecisionTree::decode(r)).collect::<kcb_util::Result<Vec<_>>>()?;
        if trees.is_empty() {
            return Err(kcb_util::Error::parse("random-forest", "zero trees"));
        }
        Ok(Self { trees, n_features, oob_accuracy })
    }

    /// Encodes the forest as a standalone byte blob.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = kcb_util::bin::Writer::new();
        self.encode(&mut w);
        w.into_bytes()
    }

    /// Decodes a forest from a standalone byte blob.
    pub fn from_bytes(bytes: &[u8]) -> kcb_util::Result<Self> {
        let mut r = kcb_util::bin::Reader::new(bytes, "random-forest");
        let f = Self::decode(&mut r)?;
        r.finish()?;
        Ok(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// y = (x0 > 0.5) XOR (x1 > 0.5) with noise features.
    fn xor_data(n: usize, seed: u64) -> (Matrix, Vec<bool>) {
        let mut rng = Rng::seed(seed);
        let mut rows = Vec::with_capacity(n);
        let mut y = Vec::with_capacity(n);
        for _ in 0..n {
            let a = rng.f32();
            let b = rng.f32();
            let noise1 = rng.f32();
            let noise2 = rng.f32();
            rows.push(vec![a, b, noise1, noise2]);
            y.push((a > 0.5) != (b > 0.5));
        }
        (Matrix::from_rows(rows), y)
    }

    fn small_cfg() -> RandomForestConfig {
        RandomForestConfig { n_trees: 20, n_threads: 2, ..RandomForestConfig::default() }
    }

    #[test]
    fn learns_xor_with_noise_features() {
        let (x, y) = xor_data(600, 1);
        let f = RandomForest::fit(&x, &y, &small_cfg());
        let (xt, yt) = xor_data(200, 2);
        let preds = f.predict_batch(&xt);
        let acc = preds.iter().zip(&yt).filter(|(p, y)| p == y).count() as f64 / yt.len() as f64;
        assert!(acc > 0.9, "accuracy {acc}");
    }

    #[test]
    fn deterministic_across_thread_counts() {
        let (x, y) = xor_data(300, 3);
        let cfg1 = RandomForestConfig { n_threads: 1, n_trees: 8, ..RandomForestConfig::default() };
        let cfg4 = RandomForestConfig { n_threads: 4, n_trees: 8, ..RandomForestConfig::default() };
        let f1 = RandomForest::fit(&x, &y, &cfg1);
        let f4 = RandomForest::fit(&x, &y, &cfg4);
        let (xt, _) = xor_data(50, 4);
        for r in xt.iter_rows() {
            assert_eq!(f1.predict_proba(r), f4.predict_proba(r));
        }
    }

    #[test]
    fn importances_identify_signal_features() {
        let (x, y) = xor_data(600, 5);
        let f = RandomForest::fit(&x, &y, &small_cfg());
        let imp = f.feature_importances();
        assert!((imp.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(imp[0] > imp[2], "{imp:?}");
        assert!(imp[1] > imp[3], "{imp:?}");
        assert!(imp[0] + imp[1] > 0.7, "{imp:?}");
    }

    #[test]
    fn probabilities_are_calibrated_direction() {
        let (x, y) = xor_data(600, 6);
        let f = RandomForest::fit(&x, &y, &small_cfg());
        // Clear positives/negatives.
        assert!(f.predict_proba(&[0.9, 0.1, 0.5, 0.5]) > 0.7);
        assert!(f.predict_proba(&[0.9, 0.9, 0.5, 0.5]) < 0.3);
    }

    #[test]
    fn oob_accuracy_tracks_test_accuracy() {
        let (x, y) = xor_data(600, 9);
        let f = RandomForest::fit(&x, &y, &small_cfg());
        let oob = f.oob_accuracy().expect("enough OOB rows");
        let (xt, yt) = xor_data(200, 10);
        let preds = f.predict_batch(&xt);
        let test_acc =
            preds.iter().zip(&yt).filter(|(p, y)| p == y).count() as f64 / yt.len() as f64;
        assert!((oob - test_acc).abs() < 0.12, "oob {oob} vs test {test_acc}");
        assert!(oob > 0.8);
    }

    #[test]
    fn single_tree_single_thread() {
        let (x, y) = xor_data(100, 7);
        let cfg = RandomForestConfig { n_trees: 1, n_threads: 1, ..RandomForestConfig::default() };
        let f = RandomForest::fit(&x, &y, &cfg);
        assert_eq!(f.n_trees(), 1);
    }

    #[test]
    fn codec_round_trip_is_bit_exact() {
        let (x, y) = xor_data(300, 11);
        let f = RandomForest::fit(&x, &y, &small_cfg());
        let bytes = f.to_bytes();
        let g = RandomForest::from_bytes(&bytes).expect("decode");
        assert_eq!(g.n_trees(), f.n_trees());
        assert_eq!(g.oob_accuracy(), f.oob_accuracy());
        assert_eq!(g.feature_importances(), f.feature_importances());
        let (xt, _) = xor_data(80, 12);
        for r in xt.iter_rows() {
            assert_eq!(f.predict_proba(r).to_bits(), g.predict_proba(r).to_bits());
        }
    }

    #[test]
    fn codec_rejects_truncation_and_corruption_without_panicking() {
        let (x, y) = xor_data(100, 13);
        let cfg = RandomForestConfig { n_trees: 4, n_threads: 1, ..RandomForestConfig::default() };
        let f = RandomForest::fit(&x, &y, &cfg);
        let bytes = f.to_bytes();
        // Truncation at every prefix must error, never panic.
        for cut in [0, 3, 8, bytes.len() / 2, bytes.len() - 1] {
            assert!(RandomForest::from_bytes(&bytes[..cut]).is_err(), "cut {cut}");
        }
        // A flipped version byte must be rejected.
        let mut flipped = bytes.clone();
        flipped[4] ^= 0xff;
        assert!(RandomForest::from_bytes(&flipped).is_err());
    }

    #[test]
    #[should_panic(expected = "row/label mismatch")]
    fn rejects_mismatched_labels() {
        let (x, _) = xor_data(10, 8);
        let _ = RandomForest::fit(&x, &[true; 9], &small_cfg());
    }
}
