//! Binary-classification metrics.
//!
//! The paper reports two flavours of metrics and this module implements
//! both:
//!
//! * **macro-averaged** precision/recall/F1 for the supervised-learning and
//!   fine-tuning tables (Tables 3, 4, 6 — where precision ≈ recall ≈ F1 on
//!   balanced test sets);
//! * **positive-class** precision/recall/F1 plus *unclassified-aware*
//!   accuracy for the in-context-learning experiments (Table 5): triples the
//!   LLM refused or failed to classify count against accuracy but are
//!   excluded from precision/recall/F1 (§3.5).

use serde::Serialize;

/// Binary confusion matrix.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct ConfusionMatrix {
    /// True positives.
    pub tp: usize,
    /// False positives.
    pub fp: usize,
    /// True negatives.
    pub tn: usize,
    /// False negatives.
    pub fn_: usize,
}

impl ConfusionMatrix {
    /// Tallies predictions against labels. Panics on length mismatch.
    pub fn from_predictions(preds: &[bool], labels: &[bool]) -> Self {
        assert_eq!(preds.len(), labels.len(), "prediction/label length mismatch");
        let mut cm = Self::default();
        for (&p, &y) in preds.iter().zip(labels) {
            match (p, y) {
                (true, true) => cm.tp += 1,
                (true, false) => cm.fp += 1,
                (false, false) => cm.tn += 1,
                (false, true) => cm.fn_ += 1,
            }
        }
        cm
    }

    /// Total count.
    pub fn total(&self) -> usize {
        self.tp + self.fp + self.tn + self.fn_
    }

    /// Accuracy; 0 when empty.
    pub fn accuracy(&self) -> f64 {
        ratio(self.tp + self.tn, self.total())
    }

    /// Positive-class precision.
    pub fn precision(&self) -> f64 {
        ratio(self.tp, self.tp + self.fp)
    }

    /// Positive-class recall.
    pub fn recall(&self) -> f64 {
        ratio(self.tp, self.tp + self.fn_)
    }

    /// Positive-class F1.
    pub fn f1(&self) -> f64 {
        harmonic(self.precision(), self.recall())
    }

    /// The confusion matrix with classes swapped (negative treated as
    /// positive).
    pub fn swapped(&self) -> Self {
        Self { tp: self.tn, fp: self.fn_, tn: self.tp, fn_: self.fp }
    }
}

fn ratio(num: usize, den: usize) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

fn harmonic(p: f64, r: f64) -> f64 {
    if p + r == 0.0 {
        0.0
    } else {
        2.0 * p * r / (p + r)
    }
}

/// A metrics bundle: accuracy plus precision/recall/F1.
#[derive(Debug, Clone, Copy, Default, Serialize)]
pub struct BinaryMetrics {
    /// Accuracy over all examples.
    pub accuracy: f64,
    /// Precision (flavour depends on constructor).
    pub precision: f64,
    /// Recall.
    pub recall: f64,
    /// F1 score.
    pub f1: f64,
}

impl BinaryMetrics {
    /// Positive-class metrics.
    pub fn positive_class(cm: &ConfusionMatrix) -> Self {
        Self {
            accuracy: cm.accuracy(),
            precision: cm.precision(),
            recall: cm.recall(),
            f1: cm.f1(),
        }
    }

    /// Macro-averaged metrics (mean of positive-class and negative-class
    /// values) — the convention behind the paper's ML/FT tables.
    pub fn macro_avg(cm: &ConfusionMatrix) -> Self {
        let neg = cm.swapped();
        Self {
            accuracy: cm.accuracy(),
            precision: (cm.precision() + neg.precision()) / 2.0,
            recall: (cm.recall() + neg.recall()) / 2.0,
            f1: (cm.f1() + neg.f1()) / 2.0,
        }
    }

    /// Macro metrics straight from predictions.
    pub fn from_predictions(preds: &[bool], labels: &[bool]) -> Self {
        Self::macro_avg(&ConfusionMatrix::from_predictions(preds, labels))
    }
}

/// Evaluation of predictions that may abstain (`None` = the model gave no
/// valid answer / said "I don't know").
#[derive(Debug, Clone, Copy, Serialize)]
pub struct AbstentionMetrics {
    /// Accuracy over *all* examples; abstentions count as incorrect.
    pub overall_accuracy: f64,
    /// Number of abstentions.
    pub n_unclassified: usize,
    /// Positive-class metrics over the classified subset only.
    pub classified: BinaryMetrics,
}

/// Scores abstaining predictions the way the paper scores LLM output
/// (§3.5): unclassified triples are "deemed as not accurately classified in
/// accuracy evaluation ... excluded in precision, recall and F1".
pub fn eval_with_abstentions(preds: &[Option<bool>], labels: &[bool]) -> AbstentionMetrics {
    assert_eq!(preds.len(), labels.len());
    let mut cm = ConfusionMatrix::default();
    let mut n_unclassified = 0;
    let mut correct = 0;
    for (p, &y) in preds.iter().zip(labels) {
        match p {
            None => n_unclassified += 1,
            Some(p) => {
                if *p == y {
                    correct += 1;
                }
                match (*p, y) {
                    (true, true) => cm.tp += 1,
                    (true, false) => cm.fp += 1,
                    (false, false) => cm.tn += 1,
                    (false, true) => cm.fn_ += 1,
                }
            }
        }
    }
    AbstentionMetrics {
        overall_accuracy: ratio(correct, preds.len()),
        n_unclassified,
        classified: BinaryMetrics::positive_class(&cm),
    }
}

/// Area under the ROC curve via the rank-sum (Mann–Whitney) formulation,
/// with average ranks for tied scores. Returns 0.5 when either class is
/// absent.
pub fn roc_auc(scores: &[f32], labels: &[bool]) -> f64 {
    assert_eq!(scores.len(), labels.len());
    let n_pos = labels.iter().filter(|&&l| l).count();
    let n_neg = labels.len() - n_pos;
    if n_pos == 0 || n_neg == 0 {
        return 0.5;
    }
    let mut order: Vec<usize> = (0..scores.len()).collect();
    order.sort_by(|&a, &b| scores[a].partial_cmp(&scores[b]).expect("NaN score"));
    // Average ranks over tie groups.
    let mut rank_sum_pos = 0.0f64;
    let mut i = 0;
    while i < order.len() {
        let mut j = i;
        while j + 1 < order.len() && scores[order[j + 1]] == scores[order[i]] {
            j += 1;
        }
        let avg_rank = (i + j) as f64 / 2.0 + 1.0; // 1-based
        for &idx in &order[i..=j] {
            if labels[idx] {
                rank_sum_pos += avg_rank;
            }
        }
        i = j + 1;
    }
    let u = rank_sum_pos - (n_pos * (n_pos + 1)) as f64 / 2.0;
    u / (n_pos as f64 * n_neg as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn confusion_counts() {
        let preds = [true, true, false, false, true];
        let labels = [true, false, false, true, true];
        let cm = ConfusionMatrix::from_predictions(&preds, &labels);
        assert_eq!((cm.tp, cm.fp, cm.tn, cm.fn_), (2, 1, 1, 1));
        assert!((cm.accuracy() - 0.6).abs() < 1e-12);
        assert!((cm.precision() - 2.0 / 3.0).abs() < 1e-12);
        assert!((cm.recall() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn perfect_and_empty() {
        let cm = ConfusionMatrix::from_predictions(&[true, false], &[true, false]);
        assert_eq!(cm.accuracy(), 1.0);
        assert_eq!(cm.f1(), 1.0);
        let empty = ConfusionMatrix::default();
        assert_eq!(empty.accuracy(), 0.0);
        assert_eq!(empty.f1(), 0.0);
    }

    #[test]
    fn macro_average_is_symmetric() {
        let preds = [true, true, true, false];
        let labels = [true, false, true, false];
        let m = BinaryMetrics::from_predictions(&preds, &labels);
        let flipped: Vec<bool> = preds.iter().map(|p| !p).collect();
        let flabels: Vec<bool> = labels.iter().map(|l| !l).collect();
        let m2 = BinaryMetrics::from_predictions(&flipped, &flabels);
        assert!((m.f1 - m2.f1).abs() < 1e-12);
        assert!((m.precision - m2.precision).abs() < 1e-12);
    }

    #[test]
    fn abstentions_hit_accuracy_not_f1() {
        // 2 correct, 1 wrong, 1 abstain.
        let preds = [Some(true), Some(false), Some(true), None];
        let labels = [true, false, false, true];
        let m = eval_with_abstentions(&preds, &labels);
        assert_eq!(m.n_unclassified, 1);
        assert!((m.overall_accuracy - 0.5).abs() < 1e-12);
        // Classified subset: tp=1, fp=1, tn=1 → precision .5, recall 1.
        assert!((m.classified.precision - 0.5).abs() < 1e-12);
        assert!((m.classified.recall - 1.0).abs() < 1e-12);
    }

    #[test]
    fn auc_perfect_and_random() {
        let labels = [true, true, false, false];
        assert!((roc_auc(&[0.9, 0.8, 0.2, 0.1], &labels) - 1.0).abs() < 1e-12);
        assert!((roc_auc(&[0.1, 0.2, 0.8, 0.9], &labels) - 0.0).abs() < 1e-12);
        // All-tied scores → 0.5.
        assert!((roc_auc(&[0.5, 0.5, 0.5, 0.5], &labels) - 0.5).abs() < 1e-12);
        // Degenerate single-class input.
        assert_eq!(roc_auc(&[0.3, 0.4], &[true, true]), 0.5);
    }

    #[test]
    fn auc_handles_partial_ties() {
        let scores = [0.9, 0.5, 0.5, 0.1];
        let labels = [true, true, false, false];
        // Pairs: (0.9 vs .5)=1, (0.9 vs .1)=1, (.5 vs .5)=0.5, (.5 vs .1)=1
        // → 3.5/4 = 0.875
        assert!((roc_auc(&scores, &labels) - 0.875).abs() < 1e-12);
    }
}
