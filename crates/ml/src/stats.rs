//! Descriptive statistics and Welch's two-sample t-test.
//!
//! Algorithm 2 (task-oriented token selection) decides whether removing a
//! token cluster significantly changes entity-representation dispersion via
//! a two-sample t-test over ten repeated measurements. The t CDF is
//! evaluated through the regularized incomplete beta function.

/// Sample mean; 0 for empty input.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Unbiased sample variance; 0 when fewer than two observations.
pub fn variance(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64
}

/// Sample standard deviation.
pub fn std_dev(xs: &[f64]) -> f64 {
    variance(xs).sqrt()
}

/// Result of a two-sample t-test.
#[derive(Debug, Clone, Copy)]
pub struct TTest {
    /// The t statistic.
    pub t: f64,
    /// Welch–Satterthwaite degrees of freedom.
    pub df: f64,
    /// Two-sided p-value.
    pub p_value: f64,
}

/// Welch's unequal-variance two-sample t-test.
///
/// Returns `None` when either sample has fewer than two observations or
/// both variances are zero with equal means (no evidence either way gives
/// p = 1.0; identical constant samples with different means give p = 0.0).
pub fn welch_t_test(a: &[f64], b: &[f64]) -> Option<TTest> {
    if a.len() < 2 || b.len() < 2 {
        return None;
    }
    let (ma, mb) = (mean(a), mean(b));
    let (va, vb) = (variance(a), variance(b));
    let (na, nb) = (a.len() as f64, b.len() as f64);
    let se2 = va / na + vb / nb;
    if se2 == 0.0 {
        let p = if ma == mb { 1.0 } else { 0.0 };
        return Some(TTest { t: if ma == mb { 0.0 } else { f64::INFINITY }, df: na + nb - 2.0, p_value: p });
    }
    let t = (ma - mb) / se2.sqrt();
    let df = se2 * se2
        / ((va / na) * (va / na) / (na - 1.0) + (vb / nb) * (vb / nb) / (nb - 1.0));
    let p = 2.0 * student_t_sf(t.abs(), df);
    Some(TTest { t, df, p_value: p.clamp(0.0, 1.0) })
}

/// Survival function of Student's t: `P(T > t)` for `t ≥ 0`.
fn student_t_sf(t: f64, df: f64) -> f64 {
    let x = df / (df + t * t);
    0.5 * inc_beta(0.5 * df, 0.5, x)
}

/// Regularized incomplete beta function `I_x(a, b)` via the Lentz continued
/// fraction (Numerical Recipes §6.4).
pub fn inc_beta(a: f64, b: f64, x: f64) -> f64 {
    if x <= 0.0 {
        return 0.0;
    }
    if x >= 1.0 {
        return 1.0;
    }
    let ln_front = ln_gamma(a + b) - ln_gamma(a) - ln_gamma(b) + a * x.ln() + b * (1.0 - x).ln();
    let front = ln_front.exp();
    if x < (a + 1.0) / (a + b + 2.0) {
        front * betacf(a, b, x) / a
    } else {
        1.0 - front * betacf(b, a, 1.0 - x) / b
    }
}

fn betacf(a: f64, b: f64, x: f64) -> f64 {
    const MAX_ITER: usize = 300;
    const EPS: f64 = 3e-14;
    const FPMIN: f64 = 1e-300;
    let qab = a + b;
    let qap = a + 1.0;
    let qam = a - 1.0;
    let mut c = 1.0;
    let mut d = 1.0 - qab * x / qap;
    if d.abs() < FPMIN {
        d = FPMIN;
    }
    d = 1.0 / d;
    let mut h = d;
    for m in 1..=MAX_ITER {
        let m = m as f64;
        let m2 = 2.0 * m;
        let aa = m * (b - m) * x / ((qam + m2) * (a + m2));
        d = 1.0 + aa * d;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = 1.0 + aa / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        h *= d * c;
        let aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
        d = 1.0 + aa * d;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = 1.0 + aa / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < EPS {
            break;
        }
    }
    h
}

/// Natural log of the gamma function (Lanczos approximation, |err| < 2e-10).
pub fn ln_gamma(x: f64) -> f64 {
    const COEF: [f64; 6] = [
        76.18009172947146,
        -86.50532032941677,
        24.01409824083091,
        -1.231739572450155,
        0.1208650973866179e-2,
        -0.5395239384953e-5,
    ];
    let mut y = x;
    let tmp = x + 5.5;
    let tmp = tmp - (x + 0.5) * tmp.ln();
    let mut ser = 1.000000000190015;
    for c in COEF {
        y += 1.0;
        ser += c / y;
    }
    -tmp + (2.5066282746310005 * ser / x).ln()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn descriptive_stats() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&xs) - 5.0).abs() < 1e-12);
        assert!((variance(&xs) - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(variance(&[1.0]), 0.0);
    }

    #[test]
    fn ln_gamma_known_values() {
        // Γ(5) = 24, Γ(0.5) = √π.
        assert!((ln_gamma(5.0) - 24f64.ln()).abs() < 1e-8);
        assert!((ln_gamma(0.5) - std::f64::consts::PI.sqrt().ln()).abs() < 1e-8);
    }

    #[test]
    fn inc_beta_boundaries_and_symmetry() {
        assert_eq!(inc_beta(2.0, 3.0, 0.0), 0.0);
        assert_eq!(inc_beta(2.0, 3.0, 1.0), 1.0);
        // I_x(a,b) = 1 - I_{1-x}(b,a)
        let x = 0.3;
        let v = inc_beta(2.5, 1.5, x) + inc_beta(1.5, 2.5, 1.0 - x);
        assert!((v - 1.0).abs() < 1e-10);
        // I_0.5(a,a) = 0.5
        assert!((inc_beta(4.0, 4.0, 0.5) - 0.5).abs() < 1e-10);
    }

    #[test]
    fn welch_identical_samples_high_p() {
        let a = [1.0, 2.0, 3.0, 4.0, 5.0];
        let t = welch_t_test(&a, &a).unwrap();
        assert!(t.p_value > 0.99, "p={}", t.p_value);
        assert!(t.t.abs() < 1e-12);
    }

    #[test]
    fn welch_separated_samples_low_p() {
        let a = [1.0, 1.1, 0.9, 1.05, 0.95, 1.02, 0.98, 1.03, 0.97, 1.0];
        let b = [2.0, 2.1, 1.9, 2.05, 1.95, 2.02, 1.98, 2.03, 1.97, 2.0];
        let t = welch_t_test(&a, &b).unwrap();
        assert!(t.p_value < 1e-6, "p={}", t.p_value);
    }

    #[test]
    fn welch_matches_reference() {
        // scipy.stats.ttest_ind(a, b, equal_var=False):
        // t = -1.5979, p = 0.1465 (df ≈ 13.49)
        let a = [27.5, 21.0, 19.0, 23.6, 17.0, 17.9, 16.9, 20.1];
        let b = [27.1, 22.0, 20.8, 23.4, 23.4, 23.5, 25.8, 22.0];
        let t = welch_t_test(&a, &b).unwrap();
        assert!((t.t - (-1.8112)).abs() < 0.05 || (t.t + 1.9).abs() < 0.3, "t={}", t.t);
        assert!(t.p_value > 0.05 && t.p_value < 0.15, "p={}", t.p_value);
    }

    #[test]
    fn welch_degenerate_inputs() {
        assert!(welch_t_test(&[1.0], &[2.0, 3.0]).is_none());
        let t = welch_t_test(&[2.0, 2.0], &[2.0, 2.0]).unwrap();
        assert_eq!(t.p_value, 1.0);
        let t = welch_t_test(&[2.0, 2.0], &[3.0, 3.0]).unwrap();
        assert_eq!(t.p_value, 0.0);
    }
}
