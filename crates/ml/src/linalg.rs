//! Minimal dense linear algebra: a row-major `f32` matrix and the slice
//! kernels shared by the learners. Flat storage (one allocation per matrix)
//! keeps hot loops cache-friendly; the per-row API hands out plain slices.

use kcb_util::mmap::SharedF32;

/// Backing storage for [`Matrix`]: an owned buffer, or a zero-copy view
/// borrowed from a memory-mapped checkpoint. Mutation promotes to `Owned`
/// (copy-on-write), so kernels never observe the difference.
#[derive(Debug, Clone)]
enum Storage {
    Owned(Vec<f32>),
    Shared(SharedF32),
}

impl Storage {
    #[inline]
    fn as_slice(&self) -> &[f32] {
        match self {
            Storage::Owned(v) => v,
            Storage::Shared(s) => s.as_slice(),
        }
    }
}

/// Row-major dense matrix of `f32`.
#[derive(Debug, Clone)]
pub struct Matrix {
    data: Storage,
    rows: usize,
    cols: usize,
}

impl PartialEq for Matrix {
    fn eq(&self, other: &Self) -> bool {
        self.rows == other.rows
            && self.cols == other.cols
            && self.as_slice() == other.as_slice()
    }
}

impl Matrix {
    /// Zero-filled matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self { data: Storage::Owned(vec![0.0; rows * cols]), rows, cols }
    }

    /// Builds from a flat row-major buffer. Panics when the length does not
    /// equal `rows * cols`.
    pub fn from_vec(data: Vec<f32>, rows: usize, cols: usize) -> Self {
        assert_eq!(data.len(), rows * cols, "matrix shape mismatch");
        Self { data: Storage::Owned(data), rows, cols }
    }

    /// Builds from a shared (possibly memory-mapped) buffer without copying.
    /// Panics when the view length does not equal `rows * cols`.
    pub fn from_shared(data: SharedF32, rows: usize, cols: usize) -> Self {
        assert_eq!(data.len(), rows * cols, "matrix shape mismatch");
        Self { data: Storage::Shared(data), rows, cols }
    }

    /// Builds row-by-row from an iterator of equal-length rows.
    pub fn from_rows<I: IntoIterator<Item = Vec<f32>>>(rows: I) -> Self {
        let mut data = Vec::new();
        let mut n_rows = 0;
        let mut cols = 0;
        for row in rows {
            if n_rows == 0 {
                cols = row.len();
            }
            assert_eq!(row.len(), cols, "ragged rows");
            data.extend_from_slice(&row);
            n_rows += 1;
        }
        Self { data: Storage::Owned(data), rows: n_rows, cols }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Row as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        &self.as_slice()[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable row slice. Promotes shared storage to owned first.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        let cols = self.cols;
        &mut self.owned_mut()[r * cols..(r + 1) * cols]
    }

    /// Single element.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        self.as_slice()[r * self.cols + c]
    }

    /// Flat backing slice.
    #[inline]
    pub fn as_slice(&self) -> &[f32] {
        self.data.as_slice()
    }

    /// Mutable flat backing slice (row-major). Lets parallel kernels split
    /// the matrix into disjoint row chunks via `chunks_mut`. Promotes shared
    /// storage to owned (copy-on-write) first.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        self.owned_mut()
    }

    /// True when the matrix borrows shared (mapped) storage.
    pub fn is_shared(&self) -> bool {
        matches!(self.data, Storage::Shared(_))
    }

    fn owned_mut(&mut self) -> &mut Vec<f32> {
        if let Storage::Shared(s) = &self.data {
            self.data = Storage::Owned(s.as_slice().to_vec());
        }
        match &mut self.data {
            Storage::Owned(v) => v,
            Storage::Shared(_) => unreachable!("just promoted"),
        }
    }

    /// Iterates over rows.
    pub fn iter_rows(&self) -> impl Iterator<Item = &[f32]> {
        self.as_slice().chunks_exact(self.cols)
    }
}

/// Numerically plain logistic sigmoid (shared by every SGNS/LSTM trainer
/// in the workspace).
#[inline]
pub fn sigmoid(x: f32) -> f32 {
    1.0 / (1.0 + (-x).exp())
}

/// Dot product, accumulated in four independent lanes (lane `i` sums the
/// products at indices `≡ i mod 4`, then `(l0+l2)+(l1+l3)` plus the tail in
/// order). Dispatches to the explicit-width kernels in `kcb_util::simd`;
/// every backend preserves that association, so results stay bitwise
/// deterministic for a given slice length regardless of backend or thread
/// count.
#[inline]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    kcb_util::simd::dot(a, b)
}

/// Four dot products of `a` against `b0..b3`, interleaved. Each result is
/// bitwise identical to [`dot`] (same four-lane association); computing the
/// independent accumulator chains together hides the FP-add latency that
/// bounds a single running dot, which is what the `a @ bᵀ` matmul kernel
/// needs on one core.
#[inline]
pub fn dot4(a: &[f32], b0: &[f32], b1: &[f32], b2: &[f32], b3: &[f32]) -> [f32; 4] {
    kcb_util::simd::dot4(a, b0, b1, b2, b3)
}

/// `y += alpha * x`.
#[inline]
pub fn axpy(alpha: f32, x: &[f32], y: &mut [f32]) {
    kcb_util::simd::axpy(alpha, x, y)
}

/// Euclidean norm.
#[inline]
pub fn norm(a: &[f32]) -> f32 {
    dot(a, a).sqrt()
}

/// Euclidean distance.
#[inline]
pub fn euclidean(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum::<f32>().sqrt()
}

/// Cosine similarity; 0.0 when either vector is all-zero.
#[inline]
pub fn cosine(a: &[f32], b: &[f32]) -> f32 {
    let na = norm(a);
    let nb = norm(b);
    if na == 0.0 || nb == 0.0 {
        0.0
    } else {
        dot(a, b) / (na * nb)
    }
}

/// Element-wise mean of equal-length vectors; `None` when empty.
pub fn mean_of<'a, I: IntoIterator<Item = &'a [f32]>>(vectors: I) -> Option<Vec<f32>> {
    let mut it = vectors.into_iter();
    let first = it.next()?;
    let mut acc = first.to_vec();
    let mut n = 1usize;
    for v in it {
        axpy(1.0, v, &mut acc);
        n += 1;
    }
    let inv = 1.0 / n as f32;
    for a in &mut acc {
        *a *= inv;
    }
    Some(acc)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_shape_and_access() {
        let mut m = Matrix::zeros(2, 3);
        m.row_mut(1)[2] = 5.0;
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 3);
        assert_eq!(m.get(1, 2), 5.0);
        assert_eq!(m.row(0), &[0.0, 0.0, 0.0]);
        assert_eq!(m.iter_rows().count(), 2);
    }

    #[test]
    fn from_rows_builds_in_order() {
        let m = Matrix::from_rows(vec![vec![1.0, 2.0], vec![3.0, 4.0]]);
        assert_eq!(m.row(0), &[1.0, 2.0]);
        assert_eq!(m.row(1), &[3.0, 4.0]);
    }

    #[test]
    #[should_panic(expected = "ragged rows")]
    fn from_rows_rejects_ragged() {
        let _ = Matrix::from_rows(vec![vec![1.0], vec![1.0, 2.0]]);
    }

    #[test]
    fn kernels() {
        let a = [1.0, 2.0, 3.0];
        let b = [4.0, 5.0, 6.0];
        assert_eq!(dot(&a, &b), 32.0);
        assert!((norm(&[3.0, 4.0]) - 5.0).abs() < 1e-6);
        assert!((euclidean(&[0.0, 0.0], &[3.0, 4.0]) - 5.0).abs() < 1e-6);
        let mut y = [1.0, 1.0, 1.0];
        axpy(2.0, &a, &mut y);
        assert_eq!(y, [3.0, 5.0, 7.0]);
    }

    #[test]
    fn dot4_matches_dot_bitwise() {
        // Lengths exercising the lane loop, the tail, and tail-only.
        for len in [3usize, 4, 7, 12, 48, 50] {
            let gen = |s: u64| -> Vec<f32> {
                (0..len).map(|i| ((i as f32 + s as f32) * 0.37).sin()).collect()
            };
            let a = gen(1);
            let bs: Vec<Vec<f32>> = (2..6).map(gen).collect();
            let d = dot4(&a, &bs[0], &bs[1], &bs[2], &bs[3]);
            for (i, b) in bs.iter().enumerate() {
                assert_eq!(d[i], dot(&a, b), "len {len} lane {i}");
            }
        }
    }

    #[test]
    fn shared_storage_reads_like_owned_and_promotes_on_write() {
        let data = vec![1.0f32, 2.0, 3.0, 4.0, 5.0, 6.0];
        let owned = Matrix::from_vec(data.clone(), 2, 3);
        let shared = Matrix::from_shared(kcb_util::mmap::SharedF32::from_vec(data), 2, 3);
        assert!(shared.is_shared());
        assert_eq!(shared, owned);
        assert_eq!(shared.row(1), owned.row(1));
        assert_eq!(shared.get(0, 2), 3.0);
        let mut promoted = shared.clone();
        promoted.row_mut(0)[0] = 9.0;
        assert!(!promoted.is_shared());
        assert_eq!(promoted.get(0, 0), 9.0);
        // The original shared view is untouched (copy-on-write).
        assert_eq!(shared.get(0, 0), 1.0);
    }

    #[test]
    fn cosine_properties() {
        let a = [1.0, 0.0];
        assert!((cosine(&a, &[2.0, 0.0]) - 1.0).abs() < 1e-6);
        assert!(cosine(&a, &[0.0, 1.0]).abs() < 1e-6);
        assert_eq!(cosine(&a, &[0.0, 0.0]), 0.0);
    }

    #[test]
    fn mean_of_vectors() {
        let rows: Vec<Vec<f32>> = vec![vec![1.0, 3.0], vec![3.0, 5.0]];
        let m = mean_of(rows.iter().map(|r| r.as_slice())).unwrap();
        assert_eq!(m, vec![2.0, 4.0]);
        assert!(mean_of(std::iter::empty::<&[f32]>()).is_none());
    }
}
