//! Minimal dense linear algebra: a row-major `f32` matrix and the slice
//! kernels shared by the learners. Flat storage (one allocation per matrix)
//! keeps hot loops cache-friendly; the per-row API hands out plain slices.

/// Row-major dense matrix of `f32`.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    data: Vec<f32>,
    rows: usize,
    cols: usize,
}

impl Matrix {
    /// Zero-filled matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self { data: vec![0.0; rows * cols], rows, cols }
    }

    /// Builds from a flat row-major buffer. Panics when the length does not
    /// equal `rows * cols`.
    pub fn from_vec(data: Vec<f32>, rows: usize, cols: usize) -> Self {
        assert_eq!(data.len(), rows * cols, "matrix shape mismatch");
        Self { data, rows, cols }
    }

    /// Builds row-by-row from an iterator of equal-length rows.
    pub fn from_rows<I: IntoIterator<Item = Vec<f32>>>(rows: I) -> Self {
        let mut data = Vec::new();
        let mut n_rows = 0;
        let mut cols = 0;
        for row in rows {
            if n_rows == 0 {
                cols = row.len();
            }
            assert_eq!(row.len(), cols, "ragged rows");
            data.extend_from_slice(&row);
            n_rows += 1;
        }
        Self { data, rows: n_rows, cols }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Row as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable row slice.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Single element.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        self.data[r * self.cols + c]
    }

    /// Flat backing slice.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable flat backing slice (row-major). Lets parallel kernels split
    /// the matrix into disjoint row chunks via `chunks_mut`.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Iterates over rows.
    pub fn iter_rows(&self) -> impl Iterator<Item = &[f32]> {
        self.data.chunks_exact(self.cols)
    }
}

/// Numerically plain logistic sigmoid (shared by every SGNS/LSTM trainer
/// in the workspace).
#[inline]
pub fn sigmoid(x: f32) -> f32 {
    1.0 / (1.0 + (-x).exp())
}

/// Dot product, accumulated in four independent lanes (lane `i` sums the
/// products at indices `≡ i mod 4`, then `(l0+l2)+(l1+l3)` plus the tail in
/// order). Strict left-to-right summation would force scalar code; the
/// fixed lane association lets LLVM emit SIMD while staying bitwise
/// deterministic for a given slice length.
#[inline]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let mut lanes = [0.0f32; 4];
    let ca = a.chunks_exact(4);
    let cb = b.chunks_exact(4);
    let (ra, rb) = (ca.remainder(), cb.remainder());
    for (x, y) in ca.zip(cb) {
        lanes[0] += x[0] * y[0];
        lanes[1] += x[1] * y[1];
        lanes[2] += x[2] * y[2];
        lanes[3] += x[3] * y[3];
    }
    let mut s = (lanes[0] + lanes[2]) + (lanes[1] + lanes[3]);
    for (x, y) in ra.iter().zip(rb) {
        s += x * y;
    }
    s
}

/// Four dot products of `a` against `b0..b3`, interleaved. Each result is
/// bitwise identical to [`dot`] (same four-lane association); computing the
/// independent accumulator chains together hides the FP-add latency that
/// bounds a single running dot, which is what the `a @ bᵀ` matmul kernel
/// needs on one core.
#[inline]
pub fn dot4(a: &[f32], b0: &[f32], b1: &[f32], b2: &[f32], b3: &[f32]) -> [f32; 4] {
    debug_assert!(a.len() == b0.len() && a.len() == b1.len());
    debug_assert!(a.len() == b2.len() && a.len() == b3.len());
    let mut lanes = [[0.0f32; 4]; 4];
    let n4 = (a.len() / 4) * 4;
    let mut i = 0;
    while i < n4 {
        let av: &[f32] = &a[i..i + 4];
        for (l, b) in lanes.iter_mut().zip([b0, b1, b2, b3]) {
            let bv = &b[i..i + 4];
            for c in 0..4 {
                l[c] += av[c] * bv[c];
            }
        }
        i += 4;
    }
    let mut out = [0.0f32; 4];
    for (o, (l, b)) in out.iter_mut().zip(lanes.iter().zip([b0, b1, b2, b3])) {
        let mut s = (l[0] + l[2]) + (l[1] + l[3]);
        for (x, y) in a[n4..].iter().zip(&b[n4..]) {
            s += x * y;
        }
        *o = s;
    }
    out
}

/// `y += alpha * x`.
#[inline]
pub fn axpy(alpha: f32, x: &[f32], y: &mut [f32]) {
    debug_assert_eq!(x.len(), y.len());
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// Euclidean norm.
#[inline]
pub fn norm(a: &[f32]) -> f32 {
    dot(a, a).sqrt()
}

/// Euclidean distance.
#[inline]
pub fn euclidean(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum::<f32>().sqrt()
}

/// Cosine similarity; 0.0 when either vector is all-zero.
#[inline]
pub fn cosine(a: &[f32], b: &[f32]) -> f32 {
    let na = norm(a);
    let nb = norm(b);
    if na == 0.0 || nb == 0.0 {
        0.0
    } else {
        dot(a, b) / (na * nb)
    }
}

/// Element-wise mean of equal-length vectors; `None` when empty.
pub fn mean_of<'a, I: IntoIterator<Item = &'a [f32]>>(vectors: I) -> Option<Vec<f32>> {
    let mut it = vectors.into_iter();
    let first = it.next()?;
    let mut acc = first.to_vec();
    let mut n = 1usize;
    for v in it {
        axpy(1.0, v, &mut acc);
        n += 1;
    }
    let inv = 1.0 / n as f32;
    for a in &mut acc {
        *a *= inv;
    }
    Some(acc)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_shape_and_access() {
        let mut m = Matrix::zeros(2, 3);
        m.row_mut(1)[2] = 5.0;
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 3);
        assert_eq!(m.get(1, 2), 5.0);
        assert_eq!(m.row(0), &[0.0, 0.0, 0.0]);
        assert_eq!(m.iter_rows().count(), 2);
    }

    #[test]
    fn from_rows_builds_in_order() {
        let m = Matrix::from_rows(vec![vec![1.0, 2.0], vec![3.0, 4.0]]);
        assert_eq!(m.row(0), &[1.0, 2.0]);
        assert_eq!(m.row(1), &[3.0, 4.0]);
    }

    #[test]
    #[should_panic(expected = "ragged rows")]
    fn from_rows_rejects_ragged() {
        let _ = Matrix::from_rows(vec![vec![1.0], vec![1.0, 2.0]]);
    }

    #[test]
    fn kernels() {
        let a = [1.0, 2.0, 3.0];
        let b = [4.0, 5.0, 6.0];
        assert_eq!(dot(&a, &b), 32.0);
        assert!((norm(&[3.0, 4.0]) - 5.0).abs() < 1e-6);
        assert!((euclidean(&[0.0, 0.0], &[3.0, 4.0]) - 5.0).abs() < 1e-6);
        let mut y = [1.0, 1.0, 1.0];
        axpy(2.0, &a, &mut y);
        assert_eq!(y, [3.0, 5.0, 7.0]);
    }

    #[test]
    fn dot4_matches_dot_bitwise() {
        // Lengths exercising the lane loop, the tail, and tail-only.
        for len in [3usize, 4, 7, 12, 48, 50] {
            let gen = |s: u64| -> Vec<f32> {
                (0..len).map(|i| ((i as f32 + s as f32) * 0.37).sin()).collect()
            };
            let a = gen(1);
            let bs: Vec<Vec<f32>> = (2..6).map(gen).collect();
            let d = dot4(&a, &bs[0], &bs[1], &bs[2], &bs[3]);
            for (i, b) in bs.iter().enumerate() {
                assert_eq!(d[i], dot(&a, b), "len {len} lane {i}");
            }
        }
    }

    #[test]
    fn cosine_properties() {
        let a = [1.0, 0.0];
        assert!((cosine(&a, &[2.0, 0.0]) - 1.0).abs() < 1e-6);
        assert!(cosine(&a, &[0.0, 1.0]).abs() < 1e-6);
        assert_eq!(cosine(&a, &[0.0, 0.0]), 0.0);
    }

    #[test]
    fn mean_of_vectors() {
        let rows: Vec<Vec<f32>> = vec![vec![1.0, 3.0], vec![3.0, 5.0]];
        let m = mean_of(rows.iter().map(|r| r.as_slice())).unwrap();
        assert_eq!(m, vec![2.0, 4.0]);
        assert!(mean_of(std::iter::empty::<&[f32]>()).is_none());
    }
}
