//! CART decision trees (gini impurity, binary classification).
//!
//! Building block of [`crate::forest`]. Trees are stored as a flat node
//! arena — cheap to allocate, cache-friendly to traverse.

use crate::linalg::Matrix;
use kcb_util::Rng;

/// Tree-growing parameters.
#[derive(Debug, Clone, Copy)]
pub struct TreeConfig {
    /// Maximum tree depth (root = depth 0).
    pub max_depth: usize,
    /// Do not split nodes smaller than this.
    pub min_samples_split: usize,
    /// Each child must keep at least this many samples.
    pub min_samples_leaf: usize,
    /// Features examined per split; `None` = all features.
    pub n_features_per_split: Option<usize>,
}

impl Default for TreeConfig {
    fn default() -> Self {
        Self { max_depth: 24, min_samples_split: 2, min_samples_leaf: 1, n_features_per_split: None }
    }
}

#[derive(Debug, Clone, Copy)]
enum Node {
    Leaf { proba: f32 },
    Split { feature: u32, threshold: f32, left: u32, right: u32 },
}

/// A fitted CART tree.
#[derive(Debug, Clone)]
pub struct DecisionTree {
    nodes: Vec<Node>,
    n_features: usize,
    /// Impurity-decrease accumulated per feature during growing
    /// (unnormalised; see [`crate::forest::RandomForest::feature_importances`]).
    pub(crate) importance: Vec<f64>,
}

impl DecisionTree {
    /// Fits a tree on the rows of `x` selected by `indices` (with
    /// repetition allowed — bootstrap samples pass duplicated indices).
    pub fn fit(x: &Matrix, y: &[bool], indices: &[usize], cfg: &TreeConfig, rng: &mut Rng) -> Self {
        assert_eq!(x.rows(), y.len(), "row/label mismatch");
        assert!(!indices.is_empty(), "empty training subset");
        let mut tree = Self {
            nodes: Vec::new(),
            n_features: x.cols(),
            importance: vec![0.0; x.cols()],
        };
        let mut idx = indices.to_vec();
        tree.grow(x, y, &mut idx, 0, cfg, rng);
        tree
    }

    /// Probability of the positive class for one feature vector.
    pub fn predict_proba(&self, row: &[f32]) -> f32 {
        debug_assert_eq!(row.len(), self.n_features);
        let mut node = 0usize;
        loop {
            match self.nodes[node] {
                Node::Leaf { proba } => return proba,
                Node::Split { feature, threshold, left, right } => {
                    node = if row[feature as usize] <= threshold { left } else { right } as usize;
                }
            }
        }
    }

    /// Hard prediction at threshold 0.5.
    pub fn predict(&self, row: &[f32]) -> bool {
        self.predict_proba(row) >= 0.5
    }

    /// Number of nodes.
    pub fn n_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Maximum depth actually reached.
    pub fn depth(&self) -> usize {
        fn depth_at(nodes: &[Node], i: usize) -> usize {
            match nodes[i] {
                Node::Leaf { .. } => 0,
                Node::Split { left, right, .. } => {
                    1 + depth_at(nodes, left as usize).max(depth_at(nodes, right as usize))
                }
            }
        }
        if self.nodes.is_empty() {
            0
        } else {
            depth_at(&self.nodes, 0)
        }
    }

    /// Grows the subtree over `indices[..]`, returning its node id.
    fn grow(
        &mut self,
        x: &Matrix,
        y: &[bool],
        indices: &mut [usize],
        depth: usize,
        cfg: &TreeConfig,
        rng: &mut Rng,
    ) -> u32 {
        let n = indices.len();
        let n_pos = indices.iter().filter(|&&i| y[i]).count();
        let proba = n_pos as f32 / n as f32;

        let make_leaf = |nodes: &mut Vec<Node>| -> u32 {
            nodes.push(Node::Leaf { proba });
            (nodes.len() - 1) as u32
        };

        if depth >= cfg.max_depth || n < cfg.min_samples_split || n_pos == 0 || n_pos == n {
            return make_leaf(&mut self.nodes);
        }

        let Some((feature, threshold, gain)) = self.best_split(x, y, indices, n_pos, cfg, rng)
        else {
            return make_leaf(&mut self.nodes);
        };

        // Partition in place: left = rows with value <= threshold.
        let mut lo = 0usize;
        let mut hi = n;
        while lo < hi {
            if x.get(indices[lo], feature) <= threshold {
                lo += 1;
            } else {
                hi -= 1;
                indices.swap(lo, hi);
            }
        }
        if lo < cfg.min_samples_leaf || n - lo < cfg.min_samples_leaf || lo == 0 || lo == n {
            return make_leaf(&mut self.nodes);
        }

        self.importance[feature] += gain * n as f64;

        // Reserve the split slot, then grow children.
        self.nodes.push(Node::Leaf { proba });
        let me = (self.nodes.len() - 1) as u32;
        let (left_idx, right_idx) = indices.split_at_mut(lo);
        let left = self.grow(x, y, left_idx, depth + 1, cfg, rng);
        let right = self.grow(x, y, right_idx, depth + 1, cfg, rng);
        self.nodes[me as usize] =
            Node::Split { feature: feature as u32, threshold, left, right };
        me
    }

    /// Finds the best gini split over a random feature subset. Returns
    /// `(feature, threshold, impurity_decrease)`.
    fn best_split(
        &self,
        x: &Matrix,
        y: &[bool],
        indices: &[usize],
        n_pos: usize,
        cfg: &TreeConfig,
        rng: &mut Rng,
    ) -> Option<(usize, f32, f64)> {
        let n = indices.len();
        let parent_gini = gini(n_pos, n);
        let n_feats = cfg.n_features_per_split.unwrap_or(x.cols()).min(x.cols());
        let features = if n_feats == x.cols() {
            (0..x.cols()).collect::<Vec<_>>()
        } else {
            rng.sample_indices(x.cols(), n_feats)
        };

        let mut best: Option<(usize, f32, f64)> = None;
        // Reusable sort buffer: (value, label).
        let mut vals: Vec<(f32, bool)> = Vec::with_capacity(n);
        for &f in &features {
            vals.clear();
            vals.extend(indices.iter().map(|&i| (x.get(i, f), y[i])));
            vals.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("NaN feature value"));
            if vals[0].0 == vals[n - 1].0 {
                continue; // constant feature
            }
            let mut left_n = 0usize;
            let mut left_pos = 0usize;
            for k in 0..n - 1 {
                left_n += 1;
                if vals[k].1 {
                    left_pos += 1;
                }
                // Can only split between distinct values.
                if vals[k].0 == vals[k + 1].0 {
                    continue;
                }
                if left_n < cfg.min_samples_leaf || n - left_n < cfg.min_samples_leaf {
                    continue;
                }
                let right_n = n - left_n;
                let right_pos = n_pos - left_pos;
                let w_gini = (left_n as f64 * gini(left_pos, left_n)
                    + right_n as f64 * gini(right_pos, right_n))
                    / n as f64;
                // Zero-gain splits are accepted (as in scikit-learn): on
                // XOR-like data the first split has zero gini gain but
                // unlocks pure children.
                let gain = (parent_gini - w_gini).max(0.0);
                if best.is_none_or(|b| gain > b.2) {
                    let threshold = midpoint(vals[k].0, vals[k + 1].0);
                    best = Some((f, threshold, gain));
                }
            }
        }
        best
    }
}

impl DecisionTree {
    /// Streams the tree into a checkpoint writer (node arena + importances).
    pub(crate) fn encode(&self, w: &mut kcb_util::bin::Writer) {
        w.u32(self.n_features as u32);
        w.f64s(&self.importance);
        w.u32(self.nodes.len() as u32);
        for n in &self.nodes {
            match *n {
                Node::Leaf { proba } => {
                    w.u8(0);
                    w.f32(proba);
                }
                Node::Split { feature, threshold, left, right } => {
                    w.u8(1);
                    w.u32(feature);
                    w.f32(threshold);
                    w.u32(left);
                    w.u32(right);
                }
            }
        }
    }

    /// Decodes a tree from a checkpoint reader, validating the node arena
    /// (child indices in range) so corrupt data errors instead of looping.
    pub(crate) fn decode(r: &mut kcb_util::bin::Reader<'_>) -> kcb_util::Result<Self> {
        let n_features = r.u32()? as usize;
        let importance = r.f64s()?;
        let n_nodes = r.u32()? as usize;
        r.sized(n_nodes, 5)?;
        let mut nodes = Vec::with_capacity(n_nodes);
        for _ in 0..n_nodes {
            nodes.push(match r.u8()? {
                0 => Node::Leaf { proba: r.f32()? },
                1 => Node::Split {
                    feature: r.u32()?,
                    threshold: r.f32()?,
                    left: r.u32()?,
                    right: r.u32()?,
                },
                t => {
                    return Err(kcb_util::Error::parse(
                        "decision-tree",
                        format!("unknown node tag {t}"),
                    ))
                }
            });
        }
        if nodes.is_empty() || importance.len() != n_features {
            return Err(kcb_util::Error::parse("decision-tree", "inconsistent tree header"));
        }
        for n in &nodes {
            if let Node::Split { feature, left, right, .. } = *n {
                if left as usize >= nodes.len()
                    || right as usize >= nodes.len()
                    || feature as usize >= n_features
                {
                    return Err(kcb_util::Error::parse(
                        "decision-tree",
                        "node index out of range",
                    ));
                }
            }
        }
        Ok(Self { nodes, n_features, importance })
    }
}

#[inline]
fn gini(pos: usize, total: usize) -> f64 {
    if total == 0 {
        return 0.0;
    }
    let p = pos as f64 / total as f64;
    2.0 * p * (1.0 - p)
}

/// Split threshold between two adjacent sorted values, guaranteed to
/// separate them under `<=` even when their midpoint rounds to the upper
/// value in f32.
#[inline]
fn midpoint(a: f32, b: f32) -> f32 {
    let m = a + (b - a) * 0.5;
    if m >= b {
        a
    } else {
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fit_all(x: &Matrix, y: &[bool], cfg: &TreeConfig) -> DecisionTree {
        let idx: Vec<usize> = (0..x.rows()).collect();
        let mut rng = Rng::seed(1);
        DecisionTree::fit(x, y, &idx, cfg, &mut rng)
    }

    #[test]
    fn learns_single_threshold() {
        let x = Matrix::from_rows((0..20).map(|i| vec![i as f32]).collect::<Vec<_>>());
        let y: Vec<bool> = (0..20).map(|i| i >= 10).collect();
        let t = fit_all(&x, &y, &TreeConfig::default());
        for i in 0..20 {
            assert_eq!(t.predict(&[i as f32]), i >= 10, "i={i}");
        }
        assert!(t.depth() <= 2, "should need one split, got depth {}", t.depth());
    }

    #[test]
    fn learns_xor_with_depth_two() {
        let x = Matrix::from_rows(vec![
            vec![0.0, 0.0],
            vec![0.0, 1.0],
            vec![1.0, 0.0],
            vec![1.0, 1.0],
        ]);
        let y = vec![false, true, true, false];
        let t = fit_all(&x, &y, &TreeConfig::default());
        for (row, &label) in x.iter_rows().zip(&y) {
            assert_eq!(t.predict(row), label);
        }
    }

    #[test]
    fn max_depth_zero_gives_single_leaf() {
        let x = Matrix::from_rows(vec![vec![0.0], vec![1.0], vec![2.0]]);
        let y = vec![false, true, true];
        let cfg = TreeConfig { max_depth: 0, ..TreeConfig::default() };
        let t = fit_all(&x, &y, &cfg);
        assert_eq!(t.n_nodes(), 1);
        assert!((t.predict_proba(&[0.0]) - 2.0 / 3.0).abs() < 1e-6);
    }

    #[test]
    fn pure_node_stops_early() {
        let x = Matrix::from_rows(vec![vec![0.0], vec![1.0]]);
        let y = vec![true, true];
        let t = fit_all(&x, &y, &TreeConfig::default());
        assert_eq!(t.n_nodes(), 1);
        assert_eq!(t.predict_proba(&[5.0]), 1.0);
    }

    #[test]
    fn constant_features_become_leaf() {
        let x = Matrix::from_rows(vec![vec![3.0], vec![3.0], vec![3.0]]);
        let y = vec![true, false, true];
        let t = fit_all(&x, &y, &TreeConfig::default());
        assert_eq!(t.n_nodes(), 1);
    }

    #[test]
    fn importance_flags_informative_feature() {
        // Feature 1 is informative, feature 0 is noise-free constant.
        let x = Matrix::from_rows(
            (0..40).map(|i| vec![0.5, (i % 2) as f32]).collect::<Vec<_>>(),
        );
        let y: Vec<bool> = (0..40).map(|i| i % 2 == 0).collect();
        let t = fit_all(&x, &y, &TreeConfig::default());
        assert_eq!(t.importance[0], 0.0);
        assert!(t.importance[1] > 0.0);
    }

    #[test]
    fn min_samples_leaf_respected() {
        let x = Matrix::from_rows((0..10).map(|i| vec![i as f32]).collect::<Vec<_>>());
        let y: Vec<bool> = (0..10).map(|i| i == 9).collect();
        let cfg = TreeConfig { min_samples_leaf: 3, ..TreeConfig::default() };
        let t = fit_all(&x, &y, &cfg);
        // Best split isolating i==9 is forbidden; the 7/3 split leaks the
        // positive into a mixed leaf.
        assert!(t.predict_proba(&[9.0]) < 1.0);
    }

    #[test]
    fn midpoint_separates_adjacent_floats() {
        let a = 1.0f32;
        let b = f32::from_bits(a.to_bits() + 1);
        let m = midpoint(a, b);
        assert!(a <= m && m < b);
    }
}
