//! K-fold cross-validation and grid search (the paper tunes
//! hyperparameters with 5-fold CV optimising F1, §2.6 / Table A7's grid).

use crate::linalg::Matrix;
use crate::metrics::BinaryMetrics;
use crate::{RandomForest, RandomForestConfig};
use kcb_util::Rng;

/// Yields `(train_indices, validation_indices)` for stratified k-fold CV.
/// Stratification keeps the positive:negative ratio of every fold close to
/// the global ratio.
pub fn stratified_kfold(y: &[bool], k: usize, seed: u64) -> Vec<(Vec<usize>, Vec<usize>)> {
    assert!(k >= 2, "need at least 2 folds");
    assert!(y.len() >= k, "fewer samples than folds");
    let mut rng = Rng::seed_stream(seed, 0xcf01);
    let mut pos: Vec<usize> = (0..y.len()).filter(|&i| y[i]).collect();
    let mut neg: Vec<usize> = (0..y.len()).filter(|&i| !y[i]).collect();
    rng.shuffle(&mut pos);
    rng.shuffle(&mut neg);

    let mut folds: Vec<Vec<usize>> = vec![Vec::new(); k];
    for (j, &i) in pos.iter().enumerate() {
        folds[j % k].push(i);
    }
    for (j, &i) in neg.iter().enumerate() {
        folds[j % k].push(i);
    }

    (0..k)
        .map(|f| {
            let val = folds[f].clone();
            let train: Vec<usize> =
                (0..k).filter(|&g| g != f).flat_map(|g| folds[g].iter().copied()).collect();
            (train, val)
        })
        .collect()
}

/// Gathers the selected rows into a new matrix + label vector.
pub fn subset(x: &Matrix, y: &[bool], indices: &[usize]) -> (Matrix, Vec<bool>) {
    let rows: Vec<Vec<f32>> = indices.iter().map(|&i| x.row(i).to_vec()).collect();
    let labels: Vec<bool> = indices.iter().map(|&i| y[i]).collect();
    (Matrix::from_rows(rows), labels)
}

/// Mean cross-validated macro-F1 of a random-forest configuration.
pub fn cv_f1_forest(x: &Matrix, y: &[bool], cfg: &RandomForestConfig, k: usize) -> f64 {
    let mut total = 0.0;
    let folds = stratified_kfold(y, k, cfg.seed);
    let n_folds = folds.len();
    for (train_idx, val_idx) in folds {
        let (xt, yt) = subset(x, y, &train_idx);
        let (xv, yv) = subset(x, y, &val_idx);
        let f = RandomForest::fit(&xt, &yt, cfg);
        let preds = f.predict_batch(&xv);
        total += BinaryMetrics::from_predictions(&preds, &yv).f1;
    }
    total / n_folds as f64
}

/// Grid axes for random-forest tuning (mirrors the paper's Appendix grid).
#[derive(Debug, Clone)]
pub struct ForestGrid {
    /// Candidate tree counts.
    pub n_trees: Vec<usize>,
    /// Candidate depth limits.
    pub max_depth: Vec<usize>,
    /// Candidate leaf minima.
    pub min_samples_leaf: Vec<usize>,
}

impl Default for ForestGrid {
    fn default() -> Self {
        Self { n_trees: vec![40, 60], max_depth: vec![16, 24], min_samples_leaf: vec![1, 2] }
    }
}

impl ForestGrid {
    /// All configurations in the grid, based on `base` for the other fields.
    pub fn configurations(&self, base: &RandomForestConfig) -> Vec<RandomForestConfig> {
        let mut out = Vec::new();
        for &n in &self.n_trees {
            for &d in &self.max_depth {
                for &l in &self.min_samples_leaf {
                    out.push(RandomForestConfig {
                        n_trees: n,
                        max_depth: d,
                        min_samples_leaf: l,
                        ..*base
                    });
                }
            }
        }
        out
    }

    /// Exhaustive grid search with `k`-fold CV, optimising macro-F1.
    /// Returns the winning config and its CV score.
    pub fn search(
        &self,
        x: &Matrix,
        y: &[bool],
        base: &RandomForestConfig,
        k: usize,
    ) -> (RandomForestConfig, f64) {
        let mut best: Option<(RandomForestConfig, f64)> = None;
        for cfg in self.configurations(base) {
            let score = cv_f1_forest(x, y, &cfg, k);
            if best.as_ref().is_none_or(|(_, s)| score > *s) {
                best = Some((cfg, score));
            }
        }
        best.expect("non-empty grid")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn folds_partition_and_stratify() {
        let y: Vec<bool> = (0..100).map(|i| i % 4 == 0).collect(); // 25% positive
        let folds = stratified_kfold(&y, 5, 1);
        assert_eq!(folds.len(), 5);
        let mut seen = [false; 100];
        for (train, val) in &folds {
            assert_eq!(train.len() + val.len(), 100);
            for &i in val {
                assert!(!seen[i], "index {i} in two validation folds");
                seen[i] = true;
            }
            let pos = val.iter().filter(|&&i| y[i]).count() as f64 / val.len() as f64;
            assert!((pos - 0.25).abs() < 0.08, "fold positive rate {pos}");
        }
        assert!(seen.iter().all(|&s| s), "every index validated once");
    }

    #[test]
    fn folds_deterministic_per_seed() {
        let y: Vec<bool> = (0..40).map(|i| i % 2 == 0).collect();
        assert_eq!(stratified_kfold(&y, 4, 7), stratified_kfold(&y, 4, 7));
        assert_ne!(stratified_kfold(&y, 4, 7), stratified_kfold(&y, 4, 8));
    }

    #[test]
    fn subset_gathers_rows() {
        let x = Matrix::from_rows(vec![vec![0.0], vec![1.0], vec![2.0]]);
        let y = vec![false, true, false];
        let (xs, ys) = subset(&x, &y, &[2, 0]);
        assert_eq!(xs.row(0), &[2.0]);
        assert_eq!(xs.row(1), &[0.0]);
        assert_eq!(ys, vec![false, false]);
    }

    #[test]
    fn grid_enumerates_all_combinations() {
        let g = ForestGrid {
            n_trees: vec![5, 10],
            max_depth: vec![4],
            min_samples_leaf: vec![1, 2, 3],
        };
        let cfgs = g.configurations(&RandomForestConfig::default());
        assert_eq!(cfgs.len(), 6);
    }

    #[test]
    fn grid_search_picks_separating_config() {
        // Data separable on feature 0; any sane config should reach F1 ≈ 1,
        // and the search must return one of the grid entries.
        let mut rng = Rng::seed(2);
        let rows: Vec<Vec<f32>> = (0..80).map(|_| vec![rng.f32(), rng.f32()]).collect();
        let y: Vec<bool> = rows.iter().map(|r| r[0] > 0.5).collect();
        let x = Matrix::from_rows(rows);
        let grid = ForestGrid { n_trees: vec![10], max_depth: vec![2, 8], min_samples_leaf: vec![1] };
        let base = RandomForestConfig { n_threads: 1, ..RandomForestConfig::default() };
        let (best, score) = grid.search(&x, &y, &base, 4);
        assert!(score > 0.85, "score {score}");
        assert!(grid.max_depth.contains(&best.max_depth));
    }
}
