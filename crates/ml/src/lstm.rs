//! LSTM binary sequence classifier with full backpropagation through time.
//!
//! The paper's RNN archetype (§2.6, Table A6): a triple is converted into a
//! sequence of token embeddings (with separator vectors between subject /
//! relation / object) and classified by a single-layer LSTM whose final
//! hidden state feeds a sigmoid read-out. Trained with Adam on binary
//! cross-entropy.

use crate::linalg::Matrix;
use kcb_util::Rng;

/// LSTM hyperparameters.
#[derive(Debug, Clone, Copy)]
pub struct LstmConfig {
    /// Hidden-state width.
    pub hidden: usize,
    /// Training epochs.
    pub epochs: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Global-norm gradient clip.
    pub clip: f32,
    /// RNG seed (init + shuffling).
    pub seed: u64,
}

impl Default for LstmConfig {
    fn default() -> Self {
        Self { hidden: 64, epochs: 6, lr: 2e-3, batch_size: 32, clip: 5.0, seed: 42 }
    }
}

/// Gate block order inside the stacked 4h-tall weight matrices.
const GATES: usize = 4; // i, f, g, o

/// A fitted LSTM classifier.
#[derive(Debug, Clone)]
pub struct Lstm {
    /// Input weights, row-major `(4h, d)`.
    w: Vec<f32>,
    /// Recurrent weights, row-major `(4h, h)`.
    u: Vec<f32>,
    /// Gate biases `(4h)`.
    b: Vec<f32>,
    /// Read-out weights `(h)`.
    w_out: Vec<f32>,
    b_out: f32,
    d: usize,
    h: usize,
}

/// Per-sequence forward-pass cache for BPTT.
struct Cache {
    /// Gate activations per step: `(T, 4h)` — i, f, g, o post-nonlinearity.
    gates: Vec<f32>,
    /// Cell states per step `(T, h)`.
    c: Vec<f32>,
    /// Hidden states per step `(T, h)`.
    h: Vec<f32>,
    /// Probability output.
    p: f32,
    t_len: usize,
}

/// Flat gradient buffer matching the parameter layout.
struct Grads {
    w: Vec<f32>,
    u: Vec<f32>,
    b: Vec<f32>,
    w_out: Vec<f32>,
    b_out: f32,
}

impl Grads {
    fn zeros(d: usize, h: usize) -> Self {
        Self {
            w: vec![0.0; GATES * h * d],
            u: vec![0.0; GATES * h * h],
            b: vec![0.0; GATES * h],
            w_out: vec![0.0; h],
            b_out: 0.0,
        }
    }

    fn clear(&mut self) {
        self.w.fill(0.0);
        self.u.fill(0.0);
        self.b.fill(0.0);
        self.w_out.fill(0.0);
        self.b_out = 0.0;
    }

    fn global_norm(&self) -> f32 {
        let s: f32 = self.w.iter().chain(&self.u).chain(&self.b).chain(&self.w_out).map(|g| g * g).sum::<f32>()
            + self.b_out * self.b_out;
        s.sqrt()
    }

    fn scale(&mut self, k: f32) {
        for g in self.w.iter_mut().chain(&mut self.u).chain(&mut self.b).chain(&mut self.w_out) {
            *g *= k;
        }
        self.b_out *= k;
    }
}

/// Adam state for one flat parameter vector.
struct Adam {
    m: Vec<f32>,
    v: Vec<f32>,
}

impl Adam {
    fn new(n: usize) -> Self {
        Self { m: vec![0.0; n], v: vec![0.0; n] }
    }

    fn step(&mut self, params: &mut [f32], grads: &[f32], lr: f32, t: i32) {
        const B1: f32 = 0.9;
        const B2: f32 = 0.999;
        const EPS: f32 = 1e-8;
        let bc1 = 1.0 - B1.powi(t);
        let bc2 = 1.0 - B2.powi(t);
        for i in 0..params.len() {
            self.m[i] = B1 * self.m[i] + (1.0 - B1) * grads[i];
            self.v[i] = B2 * self.v[i] + (1.0 - B2) * grads[i] * grads[i];
            let mhat = self.m[i] / bc1;
            let vhat = self.v[i] / bc2;
            params[i] -= lr * mhat / (vhat.sqrt() + EPS);
        }
    }
}

impl Lstm {
    /// Initialises an untrained model (Xavier-uniform weights, forget-gate
    /// bias +1).
    pub fn new(input_dim: usize, cfg: &LstmConfig, rng: &mut Rng) -> Self {
        let (d, h) = (input_dim, cfg.hidden);
        let scale_w = (6.0 / (d + h) as f32).sqrt();
        let scale_u = (6.0 / (2 * h) as f32).sqrt();
        let mut w = vec![0.0; GATES * h * d];
        let mut u = vec![0.0; GATES * h * h];
        for v in &mut w {
            *v = rng.f32_range(-scale_w, scale_w);
        }
        for v in &mut u {
            *v = rng.f32_range(-scale_u, scale_u);
        }
        let mut b = vec![0.0; GATES * h];
        // Forget-gate block (second) biased open.
        for v in &mut b[h..2 * h] {
            *v = 1.0;
        }
        let mut w_out = vec![0.0; h];
        for v in &mut w_out {
            *v = rng.f32_range(-scale_u, scale_u);
        }
        Self { w, u, b, w_out, b_out: 0.0, d, h }
    }

    /// Trains a model on `(sequence, label)` pairs. Each sequence is a
    /// `(T, d)` matrix of embedding rows; empty sequences are rejected.
    pub fn fit(seqs: &[Matrix], y: &[bool], cfg: &LstmConfig) -> Self {
        assert_eq!(seqs.len(), y.len(), "sequence/label mismatch");
        assert!(!seqs.is_empty(), "empty training set");
        let d = seqs[0].cols();
        for s in seqs {
            assert_eq!(s.cols(), d, "inconsistent embedding width");
            assert!(s.rows() > 0, "empty sequence");
        }
        let mut rng = Rng::seed_stream(cfg.seed, 0x157a);
        let mut model = Self::new(d, cfg, &mut rng);
        let h = cfg.hidden;

        let mut adam_w = Adam::new(model.w.len());
        let mut adam_u = Adam::new(model.u.len());
        let mut adam_b = Adam::new(model.b.len());
        let mut adam_out = Adam::new(h + 1);
        let mut grads = Grads::zeros(d, h);
        let mut order: Vec<usize> = (0..seqs.len()).collect();
        let mut step_t = 0i32;

        for _epoch in 0..cfg.epochs {
            rng.shuffle(&mut order);
            for batch in order.chunks(cfg.batch_size) {
                grads.clear();
                for &i in batch {
                    let cache = model.forward(&seqs[i]);
                    model.backward(&seqs[i], y[i], &cache, &mut grads);
                }
                let inv = 1.0 / batch.len() as f32;
                grads.scale(inv);
                let norm = grads.global_norm();
                if norm > cfg.clip {
                    grads.scale(cfg.clip / norm);
                }
                step_t += 1;
                adam_w.step(&mut model.w, &grads.w, cfg.lr, step_t);
                adam_u.step(&mut model.u, &grads.u, cfg.lr, step_t);
                adam_b.step(&mut model.b, &grads.b, cfg.lr, step_t);
                // Read-out params packed as [w_out..., b_out].
                let mut out_params: Vec<f32> = model.w_out.clone();
                out_params.push(model.b_out);
                let mut out_grads: Vec<f32> = grads.w_out.clone();
                out_grads.push(grads.b_out);
                adam_out.step(&mut out_params, &out_grads, cfg.lr, step_t);
                model.b_out = out_params.pop().expect("b_out present");
                model.w_out.copy_from_slice(&out_params);
            }
        }
        model
    }

    /// Positive-class probability for one sequence.
    pub fn predict_proba(&self, seq: &Matrix) -> f32 {
        self.forward(seq).p
    }

    /// Hard prediction at 0.5.
    pub fn predict(&self, seq: &Matrix) -> bool {
        self.predict_proba(seq) >= 0.5
    }

    /// Mean binary cross-entropy over a labelled set.
    pub fn loss(&self, seqs: &[Matrix], y: &[bool]) -> f32 {
        let mut total = 0.0;
        for (s, &label) in seqs.iter().zip(y) {
            let p = self.predict_proba(s).clamp(1e-6, 1.0 - 1e-6);
            total -= if label { p.ln() } else { (1.0 - p).ln() };
        }
        total / seqs.len() as f32
    }

    fn forward(&self, seq: &Matrix) -> Cache {
        let (d, h) = (self.d, self.h);
        debug_assert_eq!(seq.cols(), d);
        let t_len = seq.rows();
        let mut gates = vec![0.0f32; t_len * GATES * h];
        let mut cs = vec![0.0f32; t_len * h];
        let mut hs = vec![0.0f32; t_len * h];
        let mut h_prev = vec![0.0f32; h];
        let mut c_prev = vec![0.0f32; h];

        for t in 0..t_len {
            let x = seq.row(t);
            let g = &mut gates[t * GATES * h..(t + 1) * GATES * h];
            // z = W x + U h_prev + b
            for k in 0..GATES * h {
                let mut z = self.b[k];
                let wrow = &self.w[k * d..(k + 1) * d];
                z += crate::linalg::dot(wrow, x);
                let urow = &self.u[k * h..(k + 1) * h];
                z += crate::linalg::dot(urow, &h_prev);
                g[k] = z;
            }
            let (ci, rest) = g.split_at_mut(h);
            let (cf, rest) = rest.split_at_mut(h);
            let (cg, co) = rest.split_at_mut(h);
            for j in 0..h {
                ci[j] = crate::linalg::sigmoid(ci[j]);
                cf[j] = crate::linalg::sigmoid(cf[j]);
                cg[j] = cg[j].tanh();
                co[j] = crate::linalg::sigmoid(co[j]);
                let c = cf[j] * c_prev[j] + ci[j] * cg[j];
                cs[t * h + j] = c;
                hs[t * h + j] = co[j] * c.tanh();
            }
            h_prev.copy_from_slice(&hs[t * h..(t + 1) * h]);
            c_prev.copy_from_slice(&cs[t * h..(t + 1) * h]);
        }

        let logit = crate::linalg::dot(&self.w_out, &h_prev) + self.b_out;
        Cache { gates, c: cs, h: hs, p: crate::linalg::sigmoid(logit), t_len }
    }

    fn backward(&self, seq: &Matrix, label: bool, cache: &Cache, grads: &mut Grads) {
        let (d, h) = (self.d, self.h);
        let t_len = cache.t_len;
        let dlogit = cache.p - if label { 1.0 } else { 0.0 };

        let h_last = &cache.h[(t_len - 1) * h..t_len * h];
        for j in 0..h {
            grads.w_out[j] += dlogit * h_last[j];
        }
        grads.b_out += dlogit;

        let mut dh: Vec<f32> = self.w_out.iter().map(|w| dlogit * w).collect();
        let mut dc = vec![0.0f32; h];
        let mut dz = vec![0.0f32; GATES * h];

        for t in (0..t_len).rev() {
            let g = &cache.gates[t * GATES * h..(t + 1) * GATES * h];
            let (gi, rest) = g.split_at(h);
            let (gf, rest) = rest.split_at(h);
            let (gg, go) = rest.split_at(h);
            let c_t = &cache.c[t * h..(t + 1) * h];
            let c_prev: &[f32] = if t == 0 { &[] } else { &cache.c[(t - 1) * h..t * h] };
            let h_prev: &[f32] = if t == 0 { &[] } else { &cache.h[(t - 1) * h..t * h] };

            for j in 0..h {
                let tanh_c = c_t[j].tanh();
                let do_ = dh[j] * tanh_c;
                let dct = dc[j] + dh[j] * go[j] * (1.0 - tanh_c * tanh_c);
                let cp = if t == 0 { 0.0 } else { c_prev[j] };
                let di = dct * gg[j];
                let df = dct * cp;
                let dg = dct * gi[j];
                dz[j] = di * gi[j] * (1.0 - gi[j]);
                dz[h + j] = df * gf[j] * (1.0 - gf[j]);
                dz[2 * h + j] = dg * (1.0 - gg[j] * gg[j]);
                dz[3 * h + j] = do_ * go[j] * (1.0 - go[j]);
                dc[j] = dct * gf[j];
            }

            let x = seq.row(t);
            for k in 0..GATES * h {
                let dzk = dz[k];
                if dzk == 0.0 {
                    continue;
                }
                crate::linalg::axpy(dzk, x, &mut grads.w[k * d..(k + 1) * d]);
                if t > 0 {
                    crate::linalg::axpy(dzk, h_prev, &mut grads.u[k * h..(k + 1) * h]);
                }
                grads.b[k] += dzk;
            }
            // dh_prev = U^T dz
            if t > 0 {
                for j in 0..h {
                    let mut s = 0.0;
                    for k in 0..GATES * h {
                        s += self.u[k * h + j] * dz[k];
                    }
                    dh[j] = s;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> LstmConfig {
        LstmConfig { hidden: 16, epochs: 30, lr: 1e-2, batch_size: 8, ..LstmConfig::default() }
    }

    /// Sequences of 1-d steps; label = mean of steps > 0.
    fn mean_sign_data(n: usize, seed: u64) -> (Vec<Matrix>, Vec<bool>) {
        let mut rng = Rng::seed(seed);
        let mut seqs = Vec::new();
        let mut y = Vec::new();
        for _ in 0..n {
            let len = rng.range(3, 8);
            let rows: Vec<Vec<f32>> =
                (0..len).map(|_| vec![rng.f32_range(-1.0, 1.0), 1.0]).collect();
            let mean: f32 = rows.iter().map(|r| r[0]).sum::<f32>() / len as f32;
            seqs.push(Matrix::from_rows(rows));
            y.push(mean > 0.0);
        }
        (seqs, y)
    }

    /// Order-sensitive task: label depends on whether the "marker" step
    /// comes first or last — the LSTM analogue of task 2.
    fn order_data(n: usize, seed: u64) -> (Vec<Matrix>, Vec<bool>) {
        let mut rng = Rng::seed(seed);
        let marker = vec![1.0f32, 0.0];
        let filler = vec![0.0f32, 1.0];
        let mut seqs = Vec::new();
        let mut y = Vec::new();
        for _ in 0..n {
            let first = rng.chance(0.5);
            let rows = if first {
                vec![marker.clone(), filler.clone(), filler.clone()]
            } else {
                vec![filler.clone(), filler.clone(), marker.clone()]
            };
            seqs.push(Matrix::from_rows(rows));
            y.push(first);
        }
        (seqs, y)
    }

    fn accuracy(m: &Lstm, seqs: &[Matrix], y: &[bool]) -> f64 {
        let correct = seqs.iter().zip(y).filter(|(s, &l)| m.predict(s) == l).count();
        correct as f64 / y.len() as f64
    }

    #[test]
    fn learns_mean_sign() {
        let (seqs, y) = mean_sign_data(300, 1);
        let m = Lstm::fit(&seqs, &y, &cfg());
        let (ts, ty) = mean_sign_data(100, 2);
        let acc = accuracy(&m, &ts, &ty);
        assert!(acc > 0.85, "accuracy {acc}");
    }

    #[test]
    fn learns_order_sensitivity() {
        let (seqs, y) = order_data(200, 3);
        let m = Lstm::fit(&seqs, &y, &cfg());
        let (ts, ty) = order_data(80, 4);
        let acc = accuracy(&m, &ts, &ty);
        assert!(acc > 0.95, "accuracy {acc}");
    }

    #[test]
    fn loss_decreases_with_training() {
        let (seqs, y) = mean_sign_data(200, 5);
        let mut rng = Rng::seed(0);
        let untrained = Lstm::new(2, &cfg(), &mut rng);
        let trained = Lstm::fit(&seqs, &y, &cfg());
        assert!(trained.loss(&seqs, &y) < untrained.loss(&seqs, &y) * 0.8);
    }

    #[test]
    fn gradient_check_against_finite_differences() {
        // Numerically verify dL/dW on a tiny model.
        let lcfg = LstmConfig { hidden: 3, seed: 9, ..LstmConfig::default() };
        let mut rng = Rng::seed(9);
        let model = Lstm::new(2, &lcfg, &mut rng);
        let seq = Matrix::from_rows(vec![vec![0.3, -0.2], vec![-0.5, 0.8], vec![0.1, 0.4]]);
        let label = true;

        let mut grads = Grads::zeros(2, 3);
        let cache = model.forward(&seq);
        model.backward(&seq, label, &cache, &mut grads);

        let loss = |m: &Lstm| -> f32 {
            let p = m.forward(&seq).p.clamp(1e-7, 1.0 - 1e-7);
            -(p.ln())
        };
        let eps = 1e-3f32;
        // Spot-check a handful of weights in each parameter block.
        for &k in &[0usize, 5, 11, 17, 23] {
            let mut mp = model.clone();
            mp.w[k] += eps;
            let mut mm = model.clone();
            mm.w[k] -= eps;
            let num = (loss(&mp) - loss(&mm)) / (2.0 * eps);
            assert!(
                (num - grads.w[k]).abs() < 2e-2 + 0.05 * num.abs(),
                "w[{k}]: numeric {num} vs analytic {}",
                grads.w[k]
            );
        }
        for &k in &[0usize, 4, 8] {
            let mut mp = model.clone();
            mp.u[k] += eps;
            let mut mm = model.clone();
            mm.u[k] -= eps;
            let num = (loss(&mp) - loss(&mm)) / (2.0 * eps);
            assert!(
                (num - grads.u[k]).abs() < 2e-2 + 0.05 * num.abs(),
                "u[{k}]: numeric {num} vs analytic {}",
                grads.u[k]
            );
        }
    }

    #[test]
    fn deterministic_training() {
        let (seqs, y) = mean_sign_data(50, 6);
        let a = Lstm::fit(&seqs, &y, &cfg());
        let b = Lstm::fit(&seqs, &y, &cfg());
        assert_eq!(a.w, b.w);
        assert_eq!(a.w_out, b.w_out);
    }

    #[test]
    #[should_panic(expected = "empty sequence")]
    fn rejects_empty_sequences() {
        let seqs = vec![Matrix::zeros(0, 2)];
        let _ = Lstm::fit(&seqs, &[true], &cfg());
    }
}
