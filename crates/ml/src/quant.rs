//! Per-row symmetric int8 quantization for inference-time weight tables.
//!
//! Each row of a [`Matrix`] gets one scale `s = max_abs / 127`; elements are
//! stored as `round(x / s)` clamped to `[-127, 127]` (the full `-128` code
//! is unused so negation stays exact). Dequantization is `q * s`. Training
//! never sees quantized weights — this is an inference-only representation
//! for the query path, with parity proven by the `quant_calibration.json`
//! artifact rather than assumed.
//!
//! The useful algebraic fact, exploited by the nearest-neighbour path: for
//! per-row scales `s_a, s_b > 0`,
//! `cosine(dequant(a), dequant(b)) == cosine(a_q, b_q)` exactly in real
//! arithmetic (the scales cancel), so int8 cosine ranking can run on the
//! raw codes via [`kcb_util::simd::dot_i8`] without dequantizing at all.

use crate::linalg::Matrix;

/// A row-major matrix quantized to int8 with one symmetric scale per row.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantizedMatrix {
    data: Vec<i8>,
    scales: Vec<f32>,
    rows: usize,
    cols: usize,
}

impl QuantizedMatrix {
    /// Quantizes `m` row by row. All-zero rows get scale 0 and all-zero
    /// codes (dequantizing back to exact zeros).
    pub fn quantize(m: &Matrix) -> Self {
        let (rows, cols) = (m.rows(), m.cols());
        let mut data = Vec::with_capacity(rows * cols);
        let mut scales = Vec::with_capacity(rows);
        for r in 0..rows {
            let row = m.row(r);
            let max_abs = row.iter().fold(0.0f32, |acc, v| acc.max(v.abs()));
            if max_abs == 0.0 || !max_abs.is_finite() {
                scales.push(0.0);
                data.extend(std::iter::repeat_n(0i8, cols));
                continue;
            }
            let scale = max_abs / 127.0;
            scales.push(scale);
            for &v in row {
                let q = (v / scale).round().clamp(-127.0, 127.0);
                data.push(q as i8);
            }
        }
        Self { data, scales, rows, cols }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Quantized codes for one row.
    #[inline]
    pub fn row(&self, r: usize) -> &[i8] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Scale for one row (0.0 for all-zero rows).
    #[inline]
    pub fn scale(&self, r: usize) -> f32 {
        self.scales[r]
    }

    /// Dequantizes one row into `out` (`out.len() == cols`).
    pub fn dequantize_row_into(&self, r: usize, out: &mut [f32]) {
        debug_assert_eq!(out.len(), self.cols);
        let s = self.scales[r];
        for (o, &q) in out.iter_mut().zip(self.row(r)) {
            *o = f32::from(q) * s;
        }
    }

    /// Dequantizes the whole matrix back to f32.
    pub fn dequantize(&self) -> Matrix {
        let mut out = Matrix::zeros(self.rows, self.cols);
        for r in 0..self.rows {
            self.dequantize_row_into(r, out.row_mut(r));
        }
        out
    }

    /// Bytes of quantized payload (codes + scales), for size reporting.
    pub fn payload_bytes(&self) -> usize {
        self.data.len() + self.scales.len() * 4
    }

    /// Worst-case absolute reconstruction error over all elements.
    pub fn max_abs_error(&self, reference: &Matrix) -> f32 {
        assert_eq!((self.rows, self.cols), (reference.rows(), reference.cols()));
        let mut worst = 0.0f32;
        let mut buf = vec![0.0f32; self.cols];
        for r in 0..self.rows {
            self.dequantize_row_into(r, &mut buf);
            for (d, v) in buf.iter().zip(reference.row(r)) {
                worst = worst.max((d - v).abs());
            }
        }
        worst
    }

    /// Root-mean-square reconstruction error over all elements.
    pub fn rmse(&self, reference: &Matrix) -> f64 {
        assert_eq!((self.rows, self.cols), (reference.rows(), reference.cols()));
        let n = (self.rows * self.cols).max(1);
        let mut sum = 0.0f64;
        let mut buf = vec![0.0f32; self.cols];
        for r in 0..self.rows {
            self.dequantize_row_into(r, &mut buf);
            for (d, v) in buf.iter().zip(reference.row(r)) {
                let e = f64::from(d - v);
                sum += e * e;
            }
        }
        (sum / n as f64).sqrt()
    }
}

/// Cosine similarity between two int8 rows using exact i32 dot products.
/// Equals the f32 cosine of the dequantized rows up to f64 rounding (the
/// per-row scales cancel); 0.0 when either row is all-zero.
pub fn cosine_i8(a: &[i8], b: &[i8]) -> f64 {
    let dot = f64::from(kcb_util::simd::dot_i8(a, b));
    let na = f64::from(kcb_util::simd::dot_i8(a, a)).sqrt();
    let nb = f64::from(kcb_util::simd::dot_i8(b, b)).sqrt();
    if na == 0.0 || nb == 0.0 {
        0.0
    } else {
        dot / (na * nb)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn toy() -> Matrix {
        Matrix::from_rows(vec![
            vec![1.0, -2.0, 0.5, 0.25],
            vec![0.0, 0.0, 0.0, 0.0],
            vec![-127.0, 127.0, 63.5, 1.0],
        ])
    }

    #[test]
    fn round_trip_error_is_bounded_by_half_scale() {
        let m = toy();
        let q = QuantizedMatrix::quantize(&m);
        for r in 0..m.rows() {
            let bound = q.scale(r) * 0.5 + f32::EPSILON;
            let mut buf = vec![0.0; m.cols()];
            q.dequantize_row_into(r, &mut buf);
            for (d, v) in buf.iter().zip(m.row(r)) {
                assert!((d - v).abs() <= bound, "row {r}: {d} vs {v} (bound {bound})");
            }
        }
        assert!(q.max_abs_error(&m) <= 127.0 / 127.0 * 0.5 + f32::EPSILON);
    }

    #[test]
    fn zero_rows_stay_exactly_zero() {
        let q = QuantizedMatrix::quantize(&toy());
        assert_eq!(q.scale(1), 0.0);
        assert!(q.row(1).iter().all(|&v| v == 0));
        let d = q.dequantize();
        assert!(d.row(1).iter().all(|&v| v == 0.0));
    }

    #[test]
    fn max_magnitude_maps_to_127() {
        let m = Matrix::from_rows(vec![vec![-3.0, 1.5, 3.0]]);
        let q = QuantizedMatrix::quantize(&m);
        assert_eq!(q.row(0), &[-127, 64, 127]);
    }

    #[test]
    fn cosine_i8_matches_dequantized_cosine() {
        let m = toy();
        let q = QuantizedMatrix::quantize(&m);
        let d = q.dequantize();
        let ci8 = cosine_i8(q.row(0), q.row(2));
        let cf = f64::from(crate::linalg::cosine(d.row(0), d.row(2)));
        assert!((ci8 - cf).abs() < 1e-6, "{ci8} vs {cf}");
        // Zero row → 0.0 on both paths.
        assert_eq!(cosine_i8(q.row(0), q.row(1)), 0.0);
    }

    #[test]
    fn payload_is_about_a_quarter_of_f32() {
        let m = Matrix::zeros(100, 64);
        let q = QuantizedMatrix::quantize(&m);
        let f32_bytes = 100 * 64 * 4;
        assert!(q.payload_bytes() < f32_bytes / 3);
    }

    proptest! {
        /// Quantization is lossy, but (a) the reconstruction error never
        /// exceeds half a step, and (b) quantize∘dequantize is idempotent —
        /// re-quantizing the dequantized matrix changes nothing.
        #[test]
        fn quantize_error_bounded_and_idempotent(
            rows in prop::collection::vec(
                prop::collection::vec(-1000.0f32..1000.0, 1..24),
                1..8,
            )
        ) {
            let cols = rows[0].len();
            let rows: Vec<Vec<f32>> =
                rows.into_iter().map(|mut r| { r.resize(cols, 0.0); r }).collect();
            let m = Matrix::from_rows(rows);
            let q = QuantizedMatrix::quantize(&m);
            let d = q.dequantize();
            for r in 0..m.rows() {
                let bound = q.scale(r) * 0.5 + 1e-3;
                for (x, y) in d.row(r).iter().zip(m.row(r)) {
                    prop_assert!((x - y).abs() <= bound);
                }
            }
            let q2 = QuantizedMatrix::quantize(&d);
            let d2 = q2.dequantize();
            for r in 0..m.rows() {
                for (x, y) in d.row(r).iter().zip(d2.row(r)) {
                    // Same codes (up to a possible ±1 from scale re-derivation
                    // rounding), so values agree within one quantization step.
                    prop_assert!((x - y).abs() <= q.scale(r) + 1e-3);
                }
            }
        }
    }
}
