//! Fleiss' kappa — inter-rating agreement across repeated LLM queries.
//!
//! The paper sends each prompt five times and reports Fleiss' kappa over
//! the five "raters" (§2.4, Table 5). Subjects are prompts; categories are
//! the parsed answers (True / False / unclassified).

/// Computes Fleiss' kappa.
///
/// `ratings[subject][category]` is the number of raters assigning that
/// category to that subject. Every subject must have the same total number
/// of raters (≥ 2).
///
/// Returns 1.0 for perfect agreement, ~0 for chance-level agreement. When
/// every rater picks the same single category for every subject, agreement
/// and chance agreement both hit 1.0 and kappa is defined as 1.0.
///
/// ```
/// use kcb_ml::kappa::fleiss_kappa;
/// // Two subjects, five raters, unanimous but different answers.
/// let perfect = vec![vec![5, 0], vec![0, 5]];
/// assert!((fleiss_kappa(&perfect) - 1.0).abs() < 1e-9);
/// ```
pub fn fleiss_kappa(ratings: &[Vec<usize>]) -> f64 {
    assert!(!ratings.is_empty(), "no subjects");
    let n_cats = ratings[0].len();
    let n_raters: usize = ratings[0].iter().sum();
    assert!(n_raters >= 2, "need at least 2 raters");
    for r in ratings {
        assert_eq!(r.len(), n_cats, "ragged category counts");
        assert_eq!(r.iter().sum::<usize>(), n_raters, "unequal rater counts");
    }
    let n_subjects = ratings.len() as f64;
    let n = n_raters as f64;

    // Per-subject agreement P_i.
    let mut p_bar = 0.0;
    let mut cat_totals = vec![0.0f64; n_cats];
    for r in ratings {
        let sum_sq: f64 = r.iter().map(|&c| (c * c) as f64).sum();
        p_bar += (sum_sq - n) / (n * (n - 1.0));
        for (t, &c) in cat_totals.iter_mut().zip(r) {
            *t += c as f64;
        }
    }
    p_bar /= n_subjects;

    // Chance agreement P_e from category marginals.
    let total = n_subjects * n;
    let p_e: f64 = cat_totals.iter().map(|t| (t / total) * (t / total)).sum();

    if (1.0 - p_e).abs() < 1e-12 {
        return 1.0;
    }
    (p_bar - p_e) / (1.0 - p_e)
}

/// Builds the Fleiss ratings table from repeated categorical answers:
/// `answers[subject][repeat]` with categories indexed `0..n_cats`.
pub fn ratings_from_answers(answers: &[Vec<usize>], n_cats: usize) -> Vec<Vec<usize>> {
    answers
        .iter()
        .map(|reps| {
            let mut row = vec![0usize; n_cats];
            for &a in reps {
                assert!(a < n_cats, "category {a} out of range");
                row[a] += 1;
            }
            row
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_agreement_is_one() {
        // 4 subjects, 5 raters, everyone agrees (mixed categories across
        // subjects so chance agreement < 1).
        let ratings = vec![vec![5, 0], vec![0, 5], vec![5, 0], vec![0, 5]];
        assert!((fleiss_kappa(&ratings) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn single_category_everywhere_is_one() {
        let ratings = vec![vec![5, 0], vec![5, 0]];
        assert_eq!(fleiss_kappa(&ratings), 1.0);
    }

    #[test]
    fn maximal_disagreement_is_negative() {
        // Every subject splits raters as evenly as possible.
        let ratings = vec![vec![2, 3], vec![3, 2], vec![2, 3], vec![3, 2]];
        assert!(fleiss_kappa(&ratings) < 0.1);
    }

    #[test]
    fn matches_fleiss_1971_worked_example() {
        // The classic 10-subject, 14-rater, 5-category example; kappa ≈ 0.21.
        let ratings = vec![
            vec![0, 0, 0, 0, 14],
            vec![0, 2, 6, 4, 2],
            vec![0, 0, 3, 5, 6],
            vec![0, 3, 9, 2, 0],
            vec![2, 2, 8, 1, 1],
            vec![7, 7, 0, 0, 0],
            vec![3, 2, 6, 3, 0],
            vec![2, 5, 3, 2, 2],
            vec![6, 5, 2, 1, 0],
            vec![0, 2, 2, 3, 7],
        ];
        let k = fleiss_kappa(&ratings);
        assert!((k - 0.21).abs() < 0.005, "kappa={k}");
    }

    #[test]
    fn ratings_from_answers_counts() {
        let answers = vec![vec![0, 0, 1, 2, 0], vec![1, 1, 1, 1, 1]];
        let r = ratings_from_answers(&answers, 3);
        assert_eq!(r, vec![vec![3, 1, 1], vec![0, 5, 0]]);
    }

    #[test]
    #[should_panic(expected = "unequal rater counts")]
    fn rejects_unequal_raters() {
        let _ = fleiss_kappa(&[vec![3, 2], vec![2, 2]]);
    }
}
