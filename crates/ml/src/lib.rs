//! From-scratch machine learning for the benchmark.
//!
//! Everything the paper's supervised-learning paradigm needs, implemented in
//! pure Rust: CART random forests with feature importances ([`forest`]), an
//! LSTM sequence classifier with full backpropagation-through-time
//! ([`lstm`]), classification metrics including ROC-AUC and the
//! unclassified-aware accounting the paper uses for LLM outputs
//! ([`metrics`]), Fleiss' kappa ([`kappa`]), Welch's t-test ([`stats`]),
//! DBSCAN ([`cluster`]) for the task-oriented adaptation algorithm, and
//! k-fold cross-validation / grid search ([`model_select`]).

pub mod cluster;
pub mod forest;
pub mod kappa;
pub mod linalg;
pub mod lstm;
pub mod metrics;
pub mod model_select;
pub mod quant;
pub mod stats;
pub mod tree;

pub use forest::{RandomForest, RandomForestConfig};
pub use linalg::Matrix;
pub use lstm::{Lstm, LstmConfig};
pub use metrics::{BinaryMetrics, ConfusionMatrix};
