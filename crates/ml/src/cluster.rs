//! DBSCAN density clustering (used by Algorithm 2 to group frequent tokens
//! by embedding proximity).

use crate::linalg::{cosine, euclidean, Matrix};

/// Distance metric for clustering.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Metric {
    /// Euclidean distance.
    Euclidean,
    /// Cosine distance (`1 - cosine similarity`) — the natural choice for
    /// word embeddings.
    Cosine,
}

impl Metric {
    #[inline]
    fn distance(self, a: &[f32], b: &[f32]) -> f32 {
        match self {
            Metric::Euclidean => euclidean(a, b),
            Metric::Cosine => 1.0 - cosine(a, b),
        }
    }
}

/// Cluster assignment per point: `Some(cluster_id)` or `None` for noise.
pub type Labels = Vec<Option<usize>>;

/// DBSCAN over the rows of `points`.
///
/// `eps` is the neighbourhood radius, `min_pts` the core-point density
/// threshold (including the point itself). The classic O(n²)
/// region-query implementation — fine for the few thousand frequent tokens
/// Algorithm 2 clusters.
pub fn dbscan(points: &Matrix, eps: f32, min_pts: usize, metric: Metric) -> Labels {
    let n = points.rows();
    let mut labels: Labels = vec![None; n];
    let mut visited = vec![false; n];
    let mut cluster = 0usize;

    let neighbours = |i: usize| -> Vec<usize> {
        let pi = points.row(i);
        (0..n).filter(|&j| metric.distance(pi, points.row(j)) <= eps).collect()
    };

    for i in 0..n {
        if visited[i] {
            continue;
        }
        visited[i] = true;
        let nbrs = neighbours(i);
        if nbrs.len() < min_pts {
            continue; // noise (may later be absorbed as a border point)
        }
        // Start a new cluster and expand it.
        labels[i] = Some(cluster);
        let mut frontier: Vec<usize> = nbrs;
        let mut k = 0;
        while k < frontier.len() {
            let j = frontier[k];
            k += 1;
            if labels[j].is_none() {
                labels[j] = Some(cluster); // border or core point
            }
            if !visited[j] {
                visited[j] = true;
                let jn = neighbours(j);
                if jn.len() >= min_pts {
                    frontier.extend(jn);
                }
            }
        }
        cluster += 1;
    }
    labels
}

/// Groups point indices by cluster id, dropping noise.
pub fn clusters_from_labels(labels: &Labels) -> Vec<Vec<usize>> {
    let n_clusters = labels.iter().flatten().copied().max().map_or(0, |m| m + 1);
    let mut out = vec![Vec::new(); n_clusters];
    for (i, l) in labels.iter().enumerate() {
        if let Some(c) = l {
            out[*c].push(i);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_blobs() -> Matrix {
        // Blob A around (0,0), blob B around (10,10), one outlier.
        let rows = vec![
            vec![0.0, 0.1],
            vec![0.1, 0.0],
            vec![-0.1, 0.05],
            vec![0.05, -0.1],
            vec![10.0, 10.1],
            vec![10.1, 10.0],
            vec![9.9, 10.05],
            vec![50.0, 50.0],
        ];
        Matrix::from_rows(rows)
    }

    #[test]
    fn finds_two_clusters_and_noise() {
        let labels = dbscan(&two_blobs(), 0.5, 3, Metric::Euclidean);
        let clusters = clusters_from_labels(&labels);
        assert_eq!(clusters.len(), 2);
        assert_eq!(clusters[0], vec![0, 1, 2, 3]);
        assert_eq!(clusters[1], vec![4, 5, 6]);
        assert_eq!(labels[7], None, "outlier should be noise");
    }

    #[test]
    fn min_pts_too_high_gives_all_noise() {
        let labels = dbscan(&two_blobs(), 0.5, 6, Metric::Euclidean);
        assert!(labels.iter().all(Option::is_none));
    }

    #[test]
    fn huge_eps_gives_one_cluster() {
        let labels = dbscan(&two_blobs(), 1e6, 2, Metric::Euclidean);
        assert!(labels.iter().all(|l| *l == Some(0)));
    }

    #[test]
    fn cosine_metric_clusters_by_direction() {
        // Same direction, different magnitude → same cluster under cosine.
        let m = Matrix::from_rows(vec![
            vec![1.0, 0.0],
            vec![5.0, 0.01],
            vec![0.0, 1.0],
            vec![0.01, 7.0],
        ]);
        let labels = dbscan(&m, 0.05, 2, Metric::Cosine);
        assert_eq!(labels[0], labels[1]);
        assert_eq!(labels[2], labels[3]);
        assert_ne!(labels[0], labels[2]);
    }

    #[test]
    fn border_points_join_first_cluster() {
        // A point within eps of a core point but not itself core.
        let m = Matrix::from_rows(vec![
            vec![0.0],
            vec![0.1],
            vec![0.2],
            vec![0.65], // border of the cluster via point at 0.2
        ]);
        let labels = dbscan(&m, 0.5, 3, Metric::Euclidean);
        assert_eq!(labels[3], Some(0));
    }

    #[test]
    fn empty_input() {
        let labels = dbscan(&Matrix::zeros(0, 3), 1.0, 2, Metric::Euclidean);
        assert!(labels.is_empty());
        assert!(clusters_from_labels(&labels).is_empty());
    }
}
