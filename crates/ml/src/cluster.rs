//! DBSCAN density clustering (used by Algorithm 2 to group frequent tokens
//! by embedding proximity).
//!
//! The region query — "all points within `eps` of point *i*" — is served by
//! a pivot-based annulus index ([`NeighbourIndex`]) instead of a full O(n)
//! scan per query. Literal grid buckets are useless at embedding
//! dimensionality (16–64: every point lands in its own cell or all in one),
//! so the index stores each point's distance to a few deterministic pivot
//! points and prunes with the triangle inequality: any true neighbour `j`
//! of `i` satisfies `|d(i, p) − d(j, p)| ≤ eps` for every pivot `p`. The
//! first pivot's distances are kept sorted, so a query is a binary-searched
//! annulus plus a filtered sweep. Every surviving candidate is confirmed
//! with the *exact* metric used by the brute-force scan, and candidates are
//! emitted in ascending index order, so the index returns bit-identical
//! neighbour sets — and therefore [`dbscan`] returns bit-identical labels —
//! to [`dbscan_brute`] at any data distribution (property-tested).

use crate::linalg::{cosine, euclidean, Matrix};
use std::cell::Cell;

/// Distance metric for clustering.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Metric {
    /// Euclidean distance.
    Euclidean,
    /// Cosine distance (`1 - cosine similarity`) — the natural choice for
    /// word embeddings.
    Cosine,
}

impl Metric {
    #[inline]
    fn distance(self, a: &[f32], b: &[f32]) -> f32 {
        match self {
            Metric::Euclidean => euclidean(a, b),
            Metric::Cosine => 1.0 - cosine(a, b),
        }
    }
}

/// Cluster assignment per point: `Some(cluster_id)` or `None` for noise.
pub type Labels = Vec<Option<usize>>;

/// Number of pivots: one sorted axis + two extra triangle filters.
const N_PIVOTS: usize = 3;

/// Safety slack on the pruning radius. Pruning distances are f32 and the
/// cosine path prunes in a *transformed* space (unit-normalised euclidean),
/// so the annulus is widened by a relative + absolute margin that dwarfs
/// the accumulated rounding error; the exact final check keeps the result
/// identical to brute force while false candidates only cost a distance
/// evaluation.
fn pruning_radius(r: f32) -> f32 {
    r * 1.001 + 1e-4
}

/// Pivot-distance annulus index over the rows of a [`Matrix`].
///
/// Pruning space: the metric itself for [`Metric::Euclidean`]; for
/// [`Metric::Cosine`] the unit-normalised rows under euclidean distance,
/// where `‖û − v̂‖² = 2 · cosine_distance(u, v)` makes the eps ball a
/// euclidean ball of radius `√(2·eps)`. Rows that cannot be embedded in
/// the pruning space (zero norm, non-finite coordinates) are kept in an
/// `unindexed` list and exact-checked on every query, preserving the
/// brute-force semantics for degenerate inputs.
pub struct NeighbourIndex<'a> {
    points: &'a Matrix,
    metric: Metric,
    /// Indexed point ids sorted by distance to pivot 0 (ascending, then id).
    order: Vec<u32>,
    /// `sorted_d0[k]` = distance of `order[k]` to pivot 0.
    sorted_d0: Vec<f32>,
    /// `pivot_d[p][i]` = pruning-space distance of point `i` to pivot `p`.
    pivot_d: Vec<Vec<f32>>,
    /// Points excluded from the pruning space; always exact-checked.
    unindexed: Vec<u32>,
    /// False for `unindexed` points (their pivot distances are meaningless).
    indexed: Vec<bool>,
    /// Exact-distance evaluations performed across all queries — the
    /// index's work metric (brute force would do n per query). A `Cell`
    /// so read-only queries can count; the index is built and queried on
    /// one thread per clustering call.
    probes: Cell<u64>,
}

impl<'a> NeighbourIndex<'a> {
    /// Builds the index; O(pivots · n) distance evaluations + one sort.
    pub fn build(points: &'a Matrix, metric: Metric) -> Self {
        let n = points.rows();
        let normalised = match metric {
            Metric::Euclidean => None,
            Metric::Cosine => Some(normalise_rows(points)),
        };
        let space = normalised.as_ref().unwrap_or(points);

        let mut indexed = vec![true; n];
        let mut unindexed = Vec::new();
        for i in 0..n {
            let row = space.row(i);
            let usable = row.iter().all(|v| v.is_finite())
                && (metric == Metric::Euclidean || row.iter().any(|&v| v != 0.0));
            if !usable {
                indexed[i] = false;
                unindexed.push(i as u32);
            }
        }

        // Deterministic pivots: the first indexed point, then the point
        // farthest from the previous pivot (ties → lowest id) — a cheap
        // max-spread heuristic that needs no randomness.
        let mut pivots: Vec<usize> = Vec::new();
        if let Some(first) = (0..n).find(|&i| indexed[i]) {
            pivots.push(first);
        }
        let mut pivot_d: Vec<Vec<f32>> = Vec::new();
        while let Some(&last) = pivots.last() {
            let last_row = space.row(last);
            let d: Vec<f32> = (0..n)
                .map(|i| if indexed[i] { euclidean(space.row(i), last_row) } else { 0.0 })
                .collect();
            if pivots.len() < N_PIVOTS {
                let far = (0..n)
                    .filter(|&i| indexed[i] && !pivots.contains(&i))
                    .max_by(|&a, &b| d[a].total_cmp(&d[b]).then(b.cmp(&a)));
                pivot_d.push(d);
                match far {
                    Some(f) if pivot_d.len() < N_PIVOTS => pivots.push(f),
                    _ => break,
                }
            } else {
                pivot_d.push(d);
                break;
            }
        }
        if pivot_d.is_empty() {
            pivot_d.push(vec![0.0; n]);
        }

        // Pivot distances that overflowed to ±inf/NaN would make the
        // annulus bounds meaningless; route those points through the exact
        // path too.
        for i in 0..n {
            if indexed[i] && pivot_d.iter().any(|d| !d[i].is_finite()) {
                indexed[i] = false;
                unindexed.push(i as u32);
            }
        }

        let mut order: Vec<u32> = (0..n as u32).filter(|&i| indexed[i as usize]).collect();
        order.sort_by(|&a, &b| {
            pivot_d[0][a as usize].total_cmp(&pivot_d[0][b as usize]).then(a.cmp(&b))
        });
        let sorted_d0: Vec<f32> = order.iter().map(|&i| pivot_d[0][i as usize]).collect();

        Self { points, metric, order, sorted_d0, pivot_d, unindexed, indexed, probes: Cell::new(0) }
    }

    /// Exact-distance evaluations performed by [`Self::neighbours`] so far.
    pub fn probes(&self) -> u64 {
        self.probes.get()
    }

    /// Radius of the eps ball in the pruning space.
    fn pruning_eps(&self, eps: f32) -> f32 {
        match self.metric {
            Metric::Euclidean => eps.max(0.0),
            // ‖û − v̂‖ = √(2 · cos_dist); clamp the argument so a negative
            // or NaN eps degrades to an empty annulus, like brute force.
            Metric::Cosine => (2.0 * eps.max(0.0)).sqrt(),
        }
    }

    /// All `j` with `distance(i, j) ≤ eps`, ascending — the same set, in
    /// the same order, as the brute-force scan.
    pub fn neighbours(&self, i: usize, eps: f32) -> Vec<usize> {
        let pi = self.points.row(i);
        let exact = |j: usize| {
            self.probes.set(self.probes.get() + 1);
            self.metric.distance(pi, self.points.row(j)) <= eps
        };

        if !self.indexed[i] {
            // Degenerate query point: fall back to the exact scan.
            return (0..self.points.rows()).filter(|&j| exact(j)).collect();
        }

        let r = pruning_radius(self.pruning_eps(eps));
        let d0 = self.pivot_d[0][i];
        let lo = self.sorted_d0.partition_point(|&d| d < d0 - r);
        let hi = self.sorted_d0.partition_point(|&d| d <= d0 + r);

        let mut out: Vec<usize> = Vec::new();
        'cand: for &j in &self.order[lo..hi] {
            let j = j as usize;
            for d in &self.pivot_d[1..] {
                if (d[i] - d[j]).abs() > r {
                    continue 'cand;
                }
            }
            if exact(j) {
                out.push(j);
            }
        }
        for &j in &self.unindexed {
            if exact(j as usize) {
                out.push(j as usize);
            }
        }
        out.sort_unstable();
        out
    }
}

/// Unit-normalises each row; zero rows stay zero (flagged unindexed).
fn normalise_rows(points: &Matrix) -> Matrix {
    let mut out = Matrix::zeros(points.rows(), points.cols());
    for i in 0..points.rows() {
        let row = points.row(i);
        let norm = row.iter().map(|v| v * v).sum::<f32>().sqrt();
        if norm > 0.0 && norm.is_finite() {
            let dst = out.row_mut(i);
            for (d, s) in dst.iter_mut().zip(row) {
                *d = s / norm;
            }
        }
    }
    out
}

/// DBSCAN over the rows of `points`, with region queries served by a
/// [`NeighbourIndex`]. Labels are identical to [`dbscan_brute`] — the index
/// changes the query cost from O(n) to an annulus sweep, never the result.
pub fn dbscan(points: &Matrix, eps: f32, min_pts: usize, metric: Metric) -> Labels {
    let index = NeighbourIndex::build(points, metric);
    let queries = Cell::new(0u64);
    let labels = dbscan_core(points.rows(), min_pts, |i| {
        queries.set(queries.get() + 1);
        index.neighbours(i, eps)
    });
    kcb_obs::counter("dbscan.points", points.rows() as u64);
    kcb_obs::counter("dbscan.queries", queries.get());
    kcb_obs::counter("dbscan.probes", index.probes());
    labels
}

/// Reference DBSCAN with the classic O(n²) region query. Kept as the
/// ground truth for the index's exact-match property test and as the
/// baseline for the `dbscan` criterion bench.
pub fn dbscan_brute(points: &Matrix, eps: f32, min_pts: usize, metric: Metric) -> Labels {
    let n = points.rows();
    dbscan_core(n, min_pts, |i| {
        let pi = points.row(i);
        (0..n).filter(|&j| metric.distance(pi, points.row(j)) <= eps).collect()
    })
}

/// The DBSCAN expansion loop, generic over the region-query provider.
/// Visit order (ascending seed index, FIFO frontier) fixes the cluster
/// numbering and border-point assignment, so two query providers that
/// return equal neighbour sets yield equal labels.
fn dbscan_core<F: Fn(usize) -> Vec<usize>>(n: usize, min_pts: usize, neighbours: F) -> Labels {
    let mut labels: Labels = vec![None; n];
    let mut visited = vec![false; n];
    let mut cluster = 0usize;

    for i in 0..n {
        if visited[i] {
            continue;
        }
        visited[i] = true;
        let nbrs = neighbours(i);
        if nbrs.len() < min_pts {
            continue; // noise (may later be absorbed as a border point)
        }
        // Start a new cluster and expand it.
        labels[i] = Some(cluster);
        let mut frontier: Vec<usize> = nbrs;
        let mut k = 0;
        while k < frontier.len() {
            let j = frontier[k];
            k += 1;
            if labels[j].is_none() {
                labels[j] = Some(cluster); // border or core point
            }
            if !visited[j] {
                visited[j] = true;
                let jn = neighbours(j);
                if jn.len() >= min_pts {
                    frontier.extend(jn);
                }
            }
        }
        cluster += 1;
    }
    labels
}

/// Groups point indices by cluster id, dropping noise.
pub fn clusters_from_labels(labels: &Labels) -> Vec<Vec<usize>> {
    let n_clusters = labels.iter().flatten().copied().max().map_or(0, |m| m + 1);
    let mut out = vec![Vec::new(); n_clusters];
    for (i, l) in labels.iter().enumerate() {
        if let Some(c) = l {
            out[*c].push(i);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_blobs() -> Matrix {
        // Blob A around (0,0), blob B around (10,10), one outlier.
        let rows = vec![
            vec![0.0, 0.1],
            vec![0.1, 0.0],
            vec![-0.1, 0.05],
            vec![0.05, -0.1],
            vec![10.0, 10.1],
            vec![10.1, 10.0],
            vec![9.9, 10.05],
            vec![50.0, 50.0],
        ];
        Matrix::from_rows(rows)
    }

    #[test]
    fn finds_two_clusters_and_noise() {
        let labels = dbscan(&two_blobs(), 0.5, 3, Metric::Euclidean);
        let clusters = clusters_from_labels(&labels);
        assert_eq!(clusters.len(), 2);
        assert_eq!(clusters[0], vec![0, 1, 2, 3]);
        assert_eq!(clusters[1], vec![4, 5, 6]);
        assert_eq!(labels[7], None, "outlier should be noise");
    }

    #[test]
    fn min_pts_too_high_gives_all_noise() {
        let labels = dbscan(&two_blobs(), 0.5, 6, Metric::Euclidean);
        assert!(labels.iter().all(Option::is_none));
    }

    #[test]
    fn huge_eps_gives_one_cluster() {
        let labels = dbscan(&two_blobs(), 1e6, 2, Metric::Euclidean);
        assert!(labels.iter().all(|l| *l == Some(0)));
    }

    #[test]
    fn cosine_metric_clusters_by_direction() {
        // Same direction, different magnitude → same cluster under cosine.
        let m = Matrix::from_rows(vec![
            vec![1.0, 0.0],
            vec![5.0, 0.01],
            vec![0.0, 1.0],
            vec![0.01, 7.0],
        ]);
        let labels = dbscan(&m, 0.05, 2, Metric::Cosine);
        assert_eq!(labels[0], labels[1]);
        assert_eq!(labels[2], labels[3]);
        assert_ne!(labels[0], labels[2]);
    }

    #[test]
    fn border_points_join_first_cluster() {
        // A point within eps of a core point but not itself core.
        let m = Matrix::from_rows(vec![
            vec![0.0],
            vec![0.1],
            vec![0.2],
            vec![0.65], // border of the cluster via point at 0.2
        ]);
        let labels = dbscan(&m, 0.5, 3, Metric::Euclidean);
        assert_eq!(labels[3], Some(0));
    }

    #[test]
    fn empty_input() {
        let labels = dbscan(&Matrix::zeros(0, 3), 1.0, 2, Metric::Euclidean);
        assert!(labels.is_empty());
        assert!(clusters_from_labels(&labels).is_empty());
    }

    #[test]
    fn zero_rows_under_cosine_match_brute_force() {
        // cosine() defines zero vectors as similarity 0 → distance 1 from
        // everything; the index must reproduce that via its unindexed path.
        let m = Matrix::from_rows(vec![
            vec![0.0, 0.0],
            vec![1.0, 0.0],
            vec![0.9, 0.1],
            vec![0.0, 0.0],
        ]);
        for eps in [0.05f32, 0.5, 1.0, 1.5] {
            assert_eq!(
                dbscan(&m, eps, 2, Metric::Cosine),
                dbscan_brute(&m, eps, 2, Metric::Cosine),
                "eps {eps}"
            );
        }
    }

    #[test]
    fn index_neighbours_match_brute_on_blobs() {
        let m = two_blobs();
        for metric in [Metric::Euclidean, Metric::Cosine] {
            let idx = NeighbourIndex::build(&m, metric);
            for eps in [0.01f32, 0.3, 1.0, 20.0] {
                for i in 0..m.rows() {
                    let brute: Vec<usize> = (0..m.rows())
                        .filter(|&j| metric.distance(m.row(i), m.row(j)) <= eps)
                        .collect();
                    assert_eq!(idx.neighbours(i, eps), brute, "i={i} eps={eps} {metric:?}");
                }
            }
        }
    }
}
