//! Profile aggregation: folds the recorded spans into per-group wall-time
//! statistics (count, total, self vs. child time, p50/p95/max) and renders
//! them as a fixed-width table for `repro --profile`.
//!
//! **Self time** is a span's duration minus the durations of spans nested
//! inside it *on the same thread* (nesting is reconstructed from interval
//! containment per thread — exactly how a sampling profiler's flame graph
//! attributes time). An `artifact:` assembly job that spends most of its
//! interval inside `lm` fine-tuning spans therefore shows a small self
//! time, pointing the reader at the child rows.
//!
//! **Grouping**: spans aggregate under `name` truncated at the first `|`,
//! so the hundreds of per-scenario cells (`cell:rf|1|0.9|random|naive`)
//! fold into one `cell:rf` row while artifacts (`artifact:fig3`) keep a
//! row each.

use crate::Telemetry;
use std::collections::BTreeMap;

/// Aggregated wall-time statistics for one span group.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SpanStats {
    /// Number of spans in the group.
    pub count: usize,
    /// Sum of span durations, seconds.
    pub total_s: f64,
    /// Sum of self times (duration minus same-thread nested spans), seconds.
    pub self_s: f64,
    /// Median span duration, seconds.
    pub p50_s: f64,
    /// 95th-percentile span duration, seconds.
    pub p95_s: f64,
    /// 99th-percentile span duration, seconds.
    pub p99_s: f64,
    /// Longest span duration, seconds.
    pub max_s: f64,
}

/// The aggregation key for one span: its name up to the first `|`.
pub fn group_key(name: &str) -> &str {
    name.split('|').next().unwrap_or(name)
}

const US: f64 = 1e-6;

/// Self time per span (same order as `t.spans`), in microseconds.
///
/// Spans are grouped per thread, and within a thread a span is a child of
/// the nearest earlier span whose interval contains it. `t.spans` is
/// sorted by start time (the [`crate::drain`] contract); ties are broken
/// by longer-duration-first so a parent starting at the same microsecond
/// as its child is visited first.
fn self_times_us(t: &Telemetry) -> Vec<u64> {
    let n = t.spans.len();
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| {
        let (sa, sb) = (&t.spans[a], &t.spans[b]);
        (sa.tid, sa.start_us, std::cmp::Reverse(sa.dur_us))
            .cmp(&(sb.tid, sb.start_us, std::cmp::Reverse(sb.dur_us)))
    });
    let mut child_us = vec![0u64; n];
    // Stack of enclosing spans for the current thread: (end_us, index).
    let mut stack: Vec<(u64, usize)> = Vec::new();
    let mut cur_tid = None;
    for &i in &order {
        let s = &t.spans[i];
        if cur_tid != Some(s.tid) {
            cur_tid = Some(s.tid);
            stack.clear();
        }
        while let Some(&(end, _)) = stack.last() {
            if end <= s.start_us {
                stack.pop();
            } else {
                break;
            }
        }
        if let Some(&(_, parent)) = stack.last() {
            child_us[parent] += s.dur_us;
        }
        stack.push((s.end_us(), i));
    }
    (0..n).map(|i| t.spans[i].dur_us.saturating_sub(child_us[i])).collect()
}

/// Nearest-rank percentile of an ascending-sorted slice.
fn percentile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = (q * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// Folds the telemetry's spans into per-group statistics.
pub fn span_stats(t: &Telemetry) -> BTreeMap<String, SpanStats> {
    let self_us = self_times_us(t);
    let mut durs: BTreeMap<String, Vec<u64>> = BTreeMap::new();
    let mut selfs: BTreeMap<String, u64> = BTreeMap::new();
    for (s, &own) in t.spans.iter().zip(&self_us) {
        let key = group_key(&s.name).to_string();
        durs.entry(key.clone()).or_default().push(s.dur_us);
        *selfs.entry(key).or_insert(0) += own;
    }
    durs.into_iter()
        .map(|(key, mut d)| {
            d.sort_unstable();
            let total: u64 = d.iter().sum();
            let stats = SpanStats {
                count: d.len(),
                total_s: total as f64 * US,
                self_s: selfs[&key] as f64 * US,
                p50_s: percentile(&d, 0.50) as f64 * US,
                p95_s: percentile(&d, 0.95) as f64 * US,
                p99_s: percentile(&d, 0.99) as f64 * US,
                max_s: *d.last().unwrap() as f64 * US,
            };
            (key, stats)
        })
        .collect()
}

/// Renders the profile as a fixed-width table, rows sorted by total time
/// descending. Empty telemetry renders a one-line notice.
pub fn render_table(t: &Telemetry) -> String {
    let stats = span_stats(t);
    if stats.is_empty() {
        return "profile: no spans recorded\n".to_string();
    }
    let mut rows: Vec<(&String, &SpanStats)> = stats.iter().collect();
    rows.sort_by(|a, b| b.1.total_s.total_cmp(&a.1.total_s).then(a.0.cmp(b.0)));

    let name_w = rows.iter().map(|(k, _)| k.len()).max().unwrap_or(4).max(4);
    let mut out = String::new();
    out.push_str(&format!(
        "{:<name_w$}  {:>6}  {:>9}  {:>9}  {:>9}  {:>9}  {:>9}  {:>9}\n",
        "span", "count", "total s", "self s", "p50 s", "p95 s", "p99 s", "max s"
    ));
    out.push_str(&format!("{}\n", "-".repeat(name_w + 2 + 6 + 6 * 11)));
    for (key, s) in rows {
        out.push_str(&format!(
            "{key:<name_w$}  {:>6}  {:>9.3}  {:>9.3}  {:>9.3}  {:>9.3}  {:>9.3}  {:>9.3}\n",
            s.count, s.total_s, s.self_s, s.p50_s, s.p95_s, s.p99_s, s.max_s
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SpanEvent;

    fn span(name: &str, tid: u64, start_us: u64, dur_us: u64) -> SpanEvent {
        SpanEvent { cat: "t", name: name.to_string(), tid, start_us, dur_us, args: Vec::new() }
    }

    fn telemetry(spans: Vec<SpanEvent>) -> Telemetry {
        Telemetry { spans, ..Default::default() }
    }

    #[test]
    fn self_time_subtracts_same_thread_children_only() {
        let t = telemetry(vec![
            span("parent", 1, 0, 100),
            span("child", 1, 10, 30),
            span("child", 1, 50, 20),
            // Same interval on another thread: not a child of `parent`.
            span("other", 2, 20, 40),
        ]);
        let stats = span_stats(&t);
        assert_eq!(stats["parent"].count, 1);
        assert!((stats["parent"].total_s - 100e-6).abs() < 1e-12);
        assert!((stats["parent"].self_s - 50e-6).abs() < 1e-12, "{:?}", stats["parent"]);
        assert!((stats["child"].self_s - 50e-6).abs() < 1e-12);
        assert!((stats["other"].self_s - 40e-6).abs() < 1e-12);
    }

    #[test]
    fn groups_fold_at_the_first_pipe() {
        let t = telemetry(vec![
            span("cell:rf|1|0.5|random", 1, 0, 10),
            span("cell:rf|2|0.9|glove", 1, 20, 30),
            span("artifact:fig3", 1, 60, 5),
        ]);
        let stats = span_stats(&t);
        assert_eq!(stats["cell:rf"].count, 2);
        assert!((stats["cell:rf"].max_s - 30e-6).abs() < 1e-12);
        assert_eq!(stats["artifact:fig3"].count, 1);
    }

    #[test]
    fn percentiles_are_nearest_rank() {
        let d: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&d, 0.50), 50);
        assert_eq!(percentile(&d, 0.95), 95);
        assert_eq!(percentile(&d, 0.99), 99);
        assert_eq!(percentile(&d, 1.0), 100);
        assert_eq!(percentile(&[7], 0.95), 7);
        assert_eq!(percentile(&[], 0.5), 0);
    }

    #[test]
    fn table_renders_sorted_by_total() {
        let t = telemetry(vec![span("small", 1, 0, 10), span("big", 1, 20, 1_000_000)]);
        let table = render_table(&t);
        let big_at = table.find("big").unwrap();
        let small_at = table.find("small").unwrap();
        assert!(big_at < small_at, "rows must be sorted by total time:\n{table}");
        assert!(table.contains("count"));
        assert_eq!(render_table(&Telemetry::default()), "profile: no spans recorded\n");
    }
}
