//! Live, lock-free telemetry: counters, gauges and log-bucketed
//! histograms that can be read **while the workload runs**.
//!
//! The drain-only recorder in the crate root is built for batch runs: each
//! thread buffers privately and the buffers merge once, after the workload
//! has exited. A long-lived daemon can't use that — merging would steal
//! the evidence from under the running workers, and "observe at shutdown"
//! is exactly what a `/metrics` endpoint must not be. This module is the
//! complement:
//!
//! * every cell is a plain atomic (`fetch_add` / `fetch_max` with relaxed
//!   ordering), so recording never takes a lock and never blocks a
//!   request thread;
//! * every metric is snapshot-able at any instant: a [`HistSnapshot`] /
//!   [`LiveSnapshot`] is a consistent-enough copy (each cell individually
//!   atomic; totals are derived from the cells, never from a second
//!   counter that could race ahead);
//! * snapshots are mergeable (associative + commutative), so per-client
//!   or per-shard histograms fold into one distribution.
//!
//! # Histogram bucketing
//!
//! [`LiveHistogram`] spreads `u64` observations (latencies in µs, batch
//! sizes, …) over [`BUCKETS`] = 64 log-spaced buckets: two buckets per
//! power of two (the octave `[2^e, 2^{e+1})` splits at `1.5·2^e`), plus
//! exact buckets for 0 and 1 and one overflow bucket at the top. A
//! bucketed percentile reports the inclusive upper bound of the bucket
//! holding the exact nearest-rank percentile, which bounds the error:
//!
//! > `exact <= percentile(p) <= 1.5 * exact`  (below the overflow bucket)
//!
//! — never an underestimate, never more than 50% high. The property-based
//! suite (`tests/live_props.rs`) proves the bound over arbitrary samples,
//! plus merge associativity and multi-thread record/snapshot consistency.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Number of histogram buckets (two per octave + 0/1 + overflow).
pub const BUCKETS: usize = 64;

/// A monotonically increasing atomic counter.
#[derive(Debug, Default)]
pub struct LiveCounter(AtomicU64);

impl LiveCounter {
    /// Adds `delta` to the counter.
    pub fn add(&self, delta: u64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// An instantaneous signed level (queue depth, in-flight requests).
#[derive(Debug, Default)]
pub struct LiveGauge(AtomicI64);

impl LiveGauge {
    /// Sets the gauge to `value`.
    pub fn set(&self, value: i64) {
        self.0.store(value, Ordering::Relaxed);
    }

    /// Adds `delta` (may be negative).
    pub fn add(&self, delta: i64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Maps an observation to its bucket index (monotone in `v`).
pub fn bucket_of(v: u64) -> usize {
    match v {
        0 => 0,
        1 => 1,
        _ => {
            let e = 63 - v.leading_zeros() as usize; // e >= 1
            let sub = ((v >> (e - 1)) & 1) as usize;
            (2 * e + sub).min(BUCKETS - 1)
        }
    }
}

/// Inclusive `(lo, hi)` value range of bucket `i`. The last bucket's `hi`
/// is `u64::MAX` (overflow).
pub fn bucket_bounds(i: usize) -> (u64, u64) {
    assert!(i < BUCKETS, "bucket index {i} out of range");
    match i {
        0 => (0, 0),
        1 => (1, 1),
        _ => {
            let (e, sub) = (i / 2, (i % 2) as u64);
            let lo = (1u64 << e) + sub * (1u64 << (e - 1));
            if i == BUCKETS - 1 {
                (lo, u64::MAX)
            } else {
                (lo, lo + (1u64 << (e - 1)) - 1)
            }
        }
    }
}

/// A lock-free log-bucketed histogram of `u64` observations.
///
/// `record` is three relaxed atomic RMWs (bucket cell, value sum, max);
/// there is no count cell — the total is derived from the bucket cells so
/// a snapshot can never report more observations than its buckets hold.
#[derive(Debug)]
pub struct LiveHistogram {
    cells: [AtomicU64; BUCKETS],
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for LiveHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LiveHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self {
            cells: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Records one observation.
    pub fn record(&self, v: u64) {
        self.cells[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Copies the current state. Safe at any moment; concurrent `record`s
    /// land either wholly before or (partially) after, and the count is
    /// always `sum(buckets)`.
    pub fn snapshot(&self) -> HistSnapshot {
        HistSnapshot {
            buckets: std::array::from_fn(|i| self.cells[i].load(Ordering::Relaxed)),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time copy of a [`LiveHistogram`]; plain data, mergeable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistSnapshot {
    /// Per-bucket observation counts (see [`bucket_bounds`]).
    pub buckets: [u64; BUCKETS],
    /// Sum of all recorded values.
    pub sum: u64,
    /// Largest recorded value (exact, not bucketed).
    pub max: u64,
}

impl Default for HistSnapshot {
    fn default() -> Self {
        Self { buckets: [0; BUCKETS], sum: 0, max: 0 }
    }
}

impl HistSnapshot {
    /// Total observations (derived from the buckets).
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Folds `other` into `self` (associative and commutative).
    pub fn merge(&mut self, other: &HistSnapshot) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }

    /// Mean of the recorded values (0 when empty).
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum as f64 / n as f64
        }
    }

    /// Nearest-rank percentile estimate: the inclusive upper bound of the
    /// bucket holding the exact percentile, hence within `[exact,
    /// 1.5*exact]` below the overflow bucket (see the module docs).
    /// `p` is in percent; returns 0 for an empty histogram.
    pub fn percentile(&self, p: f64) -> u64 {
        let n = self.count();
        if n == 0 {
            return 0;
        }
        let rank = ((p / 100.0 * n as f64).ceil() as u64).clamp(1, n);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                // The overflow bucket's nominal hi is u64::MAX; the exact
                // max is a tighter true upper bound for anything in it.
                return bucket_bounds(i).1.min(self.max);
            }
        }
        self.max
    }

    /// Non-empty buckets as `(lo, hi, count)` rows.
    pub fn nonzero(&self) -> Vec<(u64, u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c > 0)
            .map(|(i, &c)| {
                let (lo, hi) = bucket_bounds(i);
                (lo, hi, c)
            })
            .collect()
    }
}

#[derive(Default)]
struct Maps {
    counters: BTreeMap<String, Arc<LiveCounter>>,
    gauges: BTreeMap<String, Arc<LiveGauge>>,
    hists: BTreeMap<String, Arc<LiveHistogram>>,
}

/// A named registry of live metrics.
///
/// Registration (`counter` / `gauge` / `histogram`) takes a short mutex
/// and returns a shared handle; callers hold the `Arc` and record through
/// it lock-free ever after. Hot paths should therefore resolve their
/// handles once, up front, not per event.
#[derive(Default)]
pub struct LiveRegistry {
    maps: Mutex<Maps>,
}

impl LiveRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the counter named `name`, creating it on first use.
    pub fn counter(&self, name: &str) -> Arc<LiveCounter> {
        let mut m = self.maps.lock().expect("live registry poisoned");
        Arc::clone(m.counters.entry(name.to_string()).or_default())
    }

    /// Returns the gauge named `name`, creating it on first use.
    pub fn gauge(&self, name: &str) -> Arc<LiveGauge> {
        let mut m = self.maps.lock().expect("live registry poisoned");
        Arc::clone(m.gauges.entry(name.to_string()).or_default())
    }

    /// Returns the histogram named `name`, creating it on first use.
    pub fn histogram(&self, name: &str) -> Arc<LiveHistogram> {
        let mut m = self.maps.lock().expect("live registry poisoned");
        Arc::clone(m.hists.entry(name.to_string()).or_default())
    }

    /// Copies every metric's current value.
    pub fn snapshot(&self) -> LiveSnapshot {
        let m = self.maps.lock().expect("live registry poisoned");
        LiveSnapshot {
            counters: m.counters.iter().map(|(k, c)| (k.clone(), c.get())).collect(),
            gauges: m.gauges.iter().map(|(k, g)| (k.clone(), g.get())).collect(),
            hists: m.hists.iter().map(|(k, h)| (k.clone(), h.snapshot())).collect(),
        }
    }
}

/// A point-in-time copy of a whole [`LiveRegistry`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LiveSnapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, i64>,
    /// Histogram snapshots by name.
    pub hists: BTreeMap<String, HistSnapshot>,
}

/// Rewrites a metric name into the Prometheus charset
/// (`[a-zA-Z_][a-zA-Z0-9_]*`): dots and dashes become underscores, any
/// other invalid byte is dropped, and a leading digit gains a `_` prefix.
pub fn prometheus_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for ch in name.chars() {
        match ch {
            'a'..='z' | 'A'..='Z' | '0'..='9' | '_' => out.push(ch),
            '.' | '-' | ' ' | '/' => out.push('_'),
            _ => {}
        }
    }
    if out.is_empty() || out.as_bytes()[0].is_ascii_digit() {
        out.insert(0, '_');
    }
    out
}

/// Renders a snapshot in the Prometheus text exposition format (0.0.4),
/// by hand — no client library. Counters gain the conventional `_total`
/// suffix; histograms emit cumulative `_bucket{le="…"}` rows (only up to
/// the last non-empty bucket, then `+Inf`) plus `_sum` and `_count`.
pub fn render_prometheus(snap: &LiveSnapshot) -> String {
    let mut out = String::new();
    for (name, value) in &snap.counters {
        let mut n = prometheus_name(name);
        if !n.ends_with("_total") {
            n.push_str("_total");
        }
        out.push_str(&format!("# TYPE {n} counter\n{n} {value}\n"));
    }
    for (name, value) in &snap.gauges {
        let n = prometheus_name(name);
        out.push_str(&format!("# TYPE {n} gauge\n{n} {value}\n"));
    }
    for (name, h) in &snap.hists {
        let n = prometheus_name(name);
        out.push_str(&format!("# TYPE {n} histogram\n"));
        let last = h.buckets.iter().rposition(|&c| c > 0);
        let mut cum = 0u64;
        if let Some(last) = last {
            for i in 0..=last.min(BUCKETS - 2) {
                cum += h.buckets[i];
                out.push_str(&format!("{n}_bucket{{le=\"{}\"}} {cum}\n", bucket_bounds(i).1));
            }
        }
        out.push_str(&format!("{n}_bucket{{le=\"+Inf\"}} {}\n", h.count()));
        out.push_str(&format!("{n}_sum {}\n{n}_count {}\n", h.sum, h.count()));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_mapping_is_monotone_and_bounds_are_tight() {
        let mut prev = 0;
        for v in [0u64, 1, 2, 3, 4, 5, 6, 7, 8, 11, 12, 13, 100, 1000, 1 << 20, u64::MAX] {
            let i = bucket_of(v);
            assert!(i >= prev, "bucket_of not monotone at {v}");
            prev = i;
            let (lo, hi) = bucket_bounds(i);
            assert!(lo <= v && v <= hi, "{v} outside bucket {i} = [{lo}, {hi}]");
        }
        // Every bucket's bounds are consistent with its own mapping.
        for i in 0..BUCKETS {
            let (lo, hi) = bucket_bounds(i);
            assert_eq!(bucket_of(lo), i, "lo of bucket {i}");
            if i < BUCKETS - 1 {
                assert_eq!(bucket_of(hi), i, "hi of bucket {i}");
                // Sub-octave width caps the percentile overestimate at 1.5x.
                assert!(hi as f64 <= 1.5 * lo as f64, "bucket {i} wider than 1.5x");
            }
        }
    }

    #[test]
    fn histogram_records_and_reports_percentiles_within_bound() {
        let h = LiveHistogram::new();
        let values: Vec<u64> = (1..=1000).collect();
        for &v in &values {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count(), 1000);
        assert_eq!(s.sum, values.iter().sum::<u64>());
        assert_eq!(s.max, 1000);
        for p in [50.0f64, 90.0, 95.0, 99.0, 100.0] {
            let exact = values[((p / 100.0 * 1000.0).ceil() as usize).clamp(1, 1000) - 1];
            let est = s.percentile(p);
            assert!(est >= exact, "p{p}: {est} < exact {exact}");
            assert!(2 * est <= 3 * exact, "p{p}: {est} > 1.5 * {exact}");
        }
        assert_eq!(HistSnapshot::default().percentile(50.0), 0);
    }

    #[test]
    fn snapshots_merge_by_addition() {
        let (a, b) = (LiveHistogram::new(), LiveHistogram::new());
        a.record(3);
        a.record(100);
        b.record(7);
        let (sa, sb) = (a.snapshot(), b.snapshot());
        let mut ab = sa.clone();
        ab.merge(&sb);
        let mut ba = sb.clone();
        ba.merge(&sa);
        assert_eq!(ab, ba, "merge is commutative");
        assert_eq!(ab.count(), 3);
        assert_eq!(ab.sum, 110);
        assert_eq!(ab.max, 100);
        assert_eq!(ab.nonzero().iter().map(|&(_, _, c)| c).sum::<u64>(), 3);
    }

    #[test]
    fn registry_hands_out_shared_handles() {
        let reg = LiveRegistry::new();
        let c1 = reg.counter("serve.requests");
        let c2 = reg.counter("serve.requests");
        c1.add(2);
        c2.add(3);
        assert_eq!(c1.get(), 5, "same name, same cell");
        reg.gauge("queue.depth").set(-4);
        reg.histogram("lat").record(12);
        let snap = reg.snapshot();
        assert_eq!(snap.counters["serve.requests"], 5);
        assert_eq!(snap.gauges["queue.depth"], -4);
        assert_eq!(snap.hists["lat"].count(), 1);
    }

    #[test]
    fn prometheus_rendering_is_wellformed() {
        let reg = LiveRegistry::new();
        reg.counter("serve.requests.nn").add(7);
        reg.gauge("serve.queue-depth").set(2);
        let h = reg.histogram("serve.e2e_us");
        h.record(5);
        h.record(900);
        let text = render_prometheus(&reg.snapshot());
        assert!(text.contains("# TYPE serve_requests_nn_total counter\n"), "{text}");
        assert!(text.contains("serve_requests_nn_total 7\n"), "{text}");
        assert!(text.contains("# TYPE serve_queue_depth gauge\nserve_queue_depth 2\n"), "{text}");
        assert!(text.contains("# TYPE serve_e2e_us histogram\n"), "{text}");
        assert!(text.contains("serve_e2e_us_bucket{le=\"+Inf\"} 2\n"), "{text}");
        assert!(text.contains("serve_e2e_us_sum 905\nserve_e2e_us_count 2\n"), "{text}");
        // Cumulative bucket counts never decrease.
        let mut prev = 0u64;
        for line in text.lines().filter(|l| l.starts_with("serve_e2e_us_bucket")) {
            let v: u64 = line.rsplit(' ').next().unwrap().parse().unwrap();
            assert!(v >= prev, "{line}");
            prev = v;
        }
        // Every sample line is `name[{labels}] value`.
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            let (name, value) = line.rsplit_once(' ').unwrap();
            assert!(!name.is_empty() && value.parse::<f64>().is_ok(), "{line}");
        }
        assert_eq!(prometheus_name("9lives.α-test"), "_9lives__test");
    }
}
