//! `kcb-obs` — structured telemetry for the reproduction pipeline.
//!
//! A process-wide recorder collects three kinds of evidence while the
//! pipeline runs:
//!
//! * **spans** — named, categorised wall-clock intervals (a scheduler job,
//!   a forest fit, an LM pre-training pass), exportable as a Chrome
//!   trace-event timeline ([`trace`]) and aggregable into a profile table
//!   ([`profile`]);
//! * **counters** — monotonically accumulated integers (cache hits,
//!   DBSCAN probe counts, scheduler steals);
//! * **series** — ordered `f64` observations under a name (per-epoch LM
//!   loss / learning rate / gradient norm).
//!
//! # Architecture
//!
//! Recording is **strictly out-of-band** of the artifacts: instrumented
//! code only ever *writes* telemetry, nothing on the artifact path reads
//! it back, so enabling or disabling the recorder cannot perturb a single
//! artifact byte (this is tested — see `scheduler_determinism` in
//! `kcb-core`).
//!
//! Each thread records into its own buffer (registered with the global
//! recorder on that thread's first event), so scheduler workers never
//! contend on a shared sink — the buffers are merged once, at
//! [`drain`] time, after `Graph::run` has exited. The per-buffer mutex is
//! uncontended except during the final merge.
//!
//! The recorder is disabled by default and every record call is a cheap
//! early-return until [`set_enabled`]`(true)`; the `repro` binary turns it
//! on when any of `--trace` / `--metrics` / `--profile` is requested.
//!
//! This crate deliberately has **zero runtime dependencies** — every
//! hot-path crate in the workspace links it.

pub mod json;
pub mod live;
pub mod profile;
pub mod trace;

use std::cell::RefCell;
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// One completed wall-clock interval.
#[derive(Debug, Clone)]
pub struct SpanEvent {
    /// Coarse category (`"sched"`, `"lm"`, `"ml"`, …).
    pub cat: &'static str,
    /// Span name; scheduler jobs use their job label verbatim.
    pub name: String,
    /// Recorder-assigned id of the recording thread.
    pub tid: u64,
    /// Microseconds since the recorder epoch.
    pub start_us: u64,
    /// Duration in microseconds.
    pub dur_us: u64,
    /// Free-form key/value annotations (worker id, row counts, …).
    pub args: Vec<(&'static str, String)>,
}

impl SpanEvent {
    /// End timestamp in microseconds since the recorder epoch.
    pub fn end_us(&self) -> u64 {
        self.start_us.saturating_add(self.dur_us)
    }
}

/// A zero-duration marker (e.g. a work-steal).
#[derive(Debug, Clone)]
pub struct InstantEvent {
    /// Coarse category.
    pub cat: &'static str,
    /// Event name.
    pub name: String,
    /// Recorder-assigned id of the recording thread.
    pub tid: u64,
    /// Microseconds since the recorder epoch.
    pub ts_us: u64,
}

/// Everything the recorder captured, merged across threads.
#[derive(Debug, Clone, Default)]
pub struct Telemetry {
    /// Spans sorted by `(start_us, tid)`.
    pub spans: Vec<SpanEvent>,
    /// Instant events sorted by `(ts_us, tid)`.
    pub instants: Vec<InstantEvent>,
    /// Counter totals, summed across threads.
    pub counters: BTreeMap<String, u64>,
    /// Named series; observations from different threads are concatenated
    /// in thread-registration order.
    pub series: BTreeMap<String, Vec<f64>>,
    /// Human labels for recorder thread ids (`"worker-1"`, `"driver"`).
    pub thread_labels: BTreeMap<u64, String>,
}

impl Telemetry {
    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
            && self.instants.is_empty()
            && self.counters.is_empty()
            && self.series.is_empty()
    }
}

#[derive(Default)]
struct LocalBuf {
    label: Option<String>,
    spans: Vec<SpanEvent>,
    instants: Vec<InstantEvent>,
    counters: HashMap<String, u64>,
    series: HashMap<String, Vec<f64>>,
}

struct Registry {
    enabled: AtomicBool,
    epoch: Instant,
    bufs: Mutex<Vec<(u64, Arc<Mutex<LocalBuf>>)>>,
    next_tid: AtomicU64,
}

fn registry() -> &'static Registry {
    static R: OnceLock<Registry> = OnceLock::new();
    R.get_or_init(|| Registry {
        enabled: AtomicBool::new(false),
        epoch: Instant::now(),
        bufs: Mutex::new(Vec::new()),
        next_tid: AtomicU64::new(1),
    })
}

thread_local! {
    static LOCAL: RefCell<Option<(u64, Arc<Mutex<LocalBuf>>)>> = const { RefCell::new(None) };
}

/// Runs `f` against this thread's buffer, registering it on first use.
fn with_local<R>(f: impl FnOnce(u64, &mut LocalBuf) -> R) -> R {
    LOCAL.with(|slot| {
        let mut slot = slot.borrow_mut();
        let (tid, buf) = slot.get_or_insert_with(|| {
            let reg = registry();
            let tid = reg.next_tid.fetch_add(1, Ordering::Relaxed);
            let buf = Arc::new(Mutex::new(LocalBuf::default()));
            reg.bufs.lock().expect("obs registry poisoned").push((tid, buf.clone()));
            (tid, buf)
        });
        let mut guard = buf.lock().expect("obs local buffer poisoned");
        f(*tid, &mut guard)
    })
}

/// Turns recording on or off. Off (the default) makes every record call a
/// cheap early-return; already-captured data is kept until [`drain`].
pub fn set_enabled(on: bool) {
    registry().enabled.store(on, Ordering::Relaxed);
}

/// Whether the recorder is currently capturing.
pub fn enabled() -> bool {
    registry().enabled.load(Ordering::Relaxed)
}

/// Microseconds since the recorder epoch (the first touch of the
/// recorder in this process).
pub fn now_us() -> u64 {
    registry().epoch.elapsed().as_micros() as u64
}

/// Names the current thread in exported timelines (`"worker-1"`,
/// `"driver"`). Recorded regardless of later re-labels: last write wins.
pub fn set_thread_label(label: impl Into<String>) {
    if !enabled() {
        return;
    }
    let label = label.into();
    with_local(|_, b| b.label = Some(label));
}

/// Adds `delta` to a named counter.
pub fn counter(name: &str, delta: u64) {
    if !enabled() || delta == 0 {
        return;
    }
    with_local(|_, b| match b.counters.get_mut(name) {
        Some(v) => *v += delta,
        None => {
            b.counters.insert(name.to_string(), delta);
        }
    });
}

/// Appends one observation to a named series.
pub fn series(name: &str, value: f64) {
    if !enabled() {
        return;
    }
    with_local(|_, b| match b.series.get_mut(name) {
        Some(v) => v.push(value),
        None => {
            b.series.insert(name.to_string(), vec![value]);
        }
    });
}

/// Records a zero-duration marker at the current time.
pub fn instant(cat: &'static str, name: impl Into<String>) {
    if !enabled() {
        return;
    }
    let ts_us = now_us();
    let name = name.into();
    with_local(|tid, b| b.instants.push(InstantEvent { cat, name, tid, ts_us }));
}

/// An in-flight span; records itself on drop. Obtained from [`span`].
#[must_use = "a span records its interval when dropped"]
pub struct Span {
    inner: Option<SpanInner>,
}

struct SpanInner {
    cat: &'static str,
    name: String,
    start_us: u64,
    args: Vec<(&'static str, String)>,
}

impl Span {
    /// Attaches a key/value annotation (no-op when recording is off).
    pub fn arg(mut self, key: &'static str, value: impl std::fmt::Display) -> Self {
        if let Some(i) = self.inner.as_mut() {
            i.args.push((key, value.to_string()));
        }
        self
    }

    /// Ends the span now (equivalent to dropping it).
    pub fn end(self) {}
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(i) = self.inner.take() {
            let dur_us = now_us().saturating_sub(i.start_us);
            with_local(|tid, b| {
                b.spans.push(SpanEvent {
                    cat: i.cat,
                    name: i.name,
                    tid,
                    start_us: i.start_us,
                    dur_us,
                    args: i.args,
                });
            });
        }
    }
}

/// Opens a span covering the interval from now until the guard drops.
pub fn span(cat: &'static str, name: impl Into<String>) -> Span {
    if !enabled() {
        return Span { inner: None };
    }
    Span {
        inner: Some(SpanInner { cat, name: name.into(), start_us: now_us(), args: Vec::new() }),
    }
}

/// Records a span whose interval the caller measured itself (the
/// scheduler does this: it already times every job). `start_us`/`dur_us`
/// are in recorder-epoch microseconds — pair with [`now_us`].
pub fn record_span(
    cat: &'static str,
    name: impl Into<String>,
    start_us: u64,
    dur_us: u64,
    args: Vec<(&'static str, String)>,
) {
    if !enabled() {
        return;
    }
    let name = name.into();
    with_local(|tid, b| {
        b.spans.push(SpanEvent { cat, name, tid, start_us, dur_us, args });
    });
}

/// Merges every thread's buffer into one [`Telemetry`], emptying the
/// buffers. Call after the instrumented workload has finished (worker
/// threads are joined at `Graph::run` exit, so their buffers are final).
pub fn drain() -> Telemetry {
    let bufs: Vec<(u64, Arc<Mutex<LocalBuf>>)> =
        registry().bufs.lock().expect("obs registry poisoned").clone();
    let mut per_tid: Vec<(u64, LocalBuf)> = bufs
        .iter()
        .map(|(tid, b)| (*tid, std::mem::take(&mut *b.lock().expect("obs local buffer poisoned"))))
        .collect();
    per_tid.sort_by_key(|(tid, _)| *tid);

    let mut t = Telemetry::default();
    for (tid, buf) in per_tid {
        if let Some(l) = buf.label {
            t.thread_labels.insert(tid, l);
        }
        t.spans.extend(buf.spans);
        t.instants.extend(buf.instants);
        for (k, v) in buf.counters {
            *t.counters.entry(k).or_insert(0) += v;
        }
        let mut series: Vec<(String, Vec<f64>)> = buf.series.into_iter().collect();
        series.sort_by(|a, b| a.0.cmp(&b.0));
        for (k, mut v) in series {
            t.series.entry(k).or_default().append(&mut v);
        }
    }
    t.spans.sort_by_key(|s| (s.start_us, s.tid));
    t.instants.sort_by_key(|i| (i.ts_us, i.tid));
    t
}

/// Discards everything recorded so far (the enabled flag is unchanged).
pub fn reset() {
    let _ = drain();
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The recorder is process-global; tests in this binary serialise on
    /// this lock so their drains don't steal each other's events.
    fn guard() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn disabled_recorder_captures_nothing() {
        let _g = guard();
        reset();
        set_enabled(false);
        counter("c", 3);
        series("s", 1.0);
        instant("t", "i");
        span("t", "span").arg("k", 1).end();
        assert!(drain().is_empty());
    }

    #[test]
    fn spans_counters_and_series_round_trip() {
        let _g = guard();
        reset();
        set_enabled(true);
        set_thread_label("test-thread");
        {
            let _outer = span("t", "outer").arg("n", 42);
            std::thread::sleep(std::time::Duration::from_millis(2));
            span("t", "inner").end();
        }
        counter("hits", 2);
        counter("hits", 3);
        series("loss", 0.5);
        series("loss", 0.25);
        instant("t", "marker");
        let t = drain();
        set_enabled(false);

        assert_eq!(t.counters["hits"], 5);
        assert_eq!(t.series["loss"], vec![0.5, 0.25]);
        assert_eq!(t.instants.len(), 1);
        assert_eq!(t.spans.len(), 2);
        let outer = t.spans.iter().find(|s| s.name == "outer").unwrap();
        let inner = t.spans.iter().find(|s| s.name == "inner").unwrap();
        assert_eq!(outer.args, vec![("n", "42".to_string())]);
        assert!(outer.start_us <= inner.start_us && inner.end_us() <= outer.end_us());
        assert!(outer.dur_us >= 2_000, "slept 2ms inside: {}", outer.dur_us);
        assert!(t.thread_labels.values().any(|l| l == "test-thread"));
        // Drained means drained.
        assert!(drain().is_empty());
    }

    #[test]
    fn counters_merge_across_threads() {
        let _g = guard();
        reset();
        set_enabled(true);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    counter("x", 1);
                    series("v", 1.0);
                    span("t", "job").end();
                });
            }
        });
        let t = drain();
        set_enabled(false);
        assert_eq!(t.counters["x"], 4);
        assert_eq!(t.series["v"].len(), 4);
        assert_eq!(t.spans.len(), 4);
        let tids: std::collections::HashSet<u64> = t.spans.iter().map(|s| s.tid).collect();
        assert_eq!(tids.len(), 4, "one buffer per thread");
    }

    #[test]
    fn record_span_uses_caller_timestamps() {
        let _g = guard();
        reset();
        set_enabled(true);
        record_span("sched", "job:a", 100, 50, vec![("worker", "1".into())]);
        record_span("sched", "job:b", 10, 20, Vec::new());
        let t = drain();
        set_enabled(false);
        assert_eq!(t.spans.len(), 2);
        // Sorted by start time regardless of record order.
        assert_eq!(t.spans[0].name, "job:b");
        assert_eq!(t.spans[1].end_us(), 150);
    }
}
