//! Chrome trace-event-format export.
//!
//! Produces the JSON object format understood by `chrome://tracing` and
//! [Perfetto](https://ui.perfetto.dev): a `traceEvents` array of complete
//! (`"ph":"X"`) duration events, instant (`"ph":"i"`) events and
//! `thread_name` metadata, all under one process. Timestamps are the
//! recorder-epoch microseconds captured in the [`Telemetry`].

use crate::json::{write_f64, write_str};
use crate::Telemetry;
use std::io::Write;

const PID: u32 = 1;

/// Renders the telemetry as a Chrome trace-event JSON document.
pub fn chrome_trace_string(t: &Telemetry) -> String {
    let mut out = String::with_capacity(256 + t.spans.len() * 160 + t.instants.len() * 96);
    out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    let mut first = true;
    let sep = |out: &mut String, first: &mut bool| {
        if !*first {
            out.push(',');
        }
        *first = false;
        out.push('\n');
    };

    for (tid, label) in &t.thread_labels {
        sep(&mut out, &mut first);
        out.push_str(&format!(
            "{{\"ph\":\"M\",\"pid\":{PID},\"tid\":{tid},\"name\":\"thread_name\",\"args\":{{\"name\":"
        ));
        write_str(&mut out, label);
        out.push_str("}}");
    }

    for s in &t.spans {
        sep(&mut out, &mut first);
        out.push_str(&format!(
            "{{\"ph\":\"X\",\"pid\":{PID},\"tid\":{},\"ts\":{},\"dur\":{},\"cat\":",
            s.tid, s.start_us, s.dur_us
        ));
        write_str(&mut out, s.cat);
        out.push_str(",\"name\":");
        write_str(&mut out, &s.name);
        if !s.args.is_empty() {
            out.push_str(",\"args\":{");
            for (i, (k, v)) in s.args.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_str(&mut out, k);
                out.push(':');
                write_str(&mut out, v);
            }
            out.push('}');
        }
        out.push('}');
    }

    for e in &t.instants {
        sep(&mut out, &mut first);
        out.push_str(&format!(
            "{{\"ph\":\"i\",\"s\":\"t\",\"pid\":{PID},\"tid\":{},\"ts\":{},\"cat\":",
            e.tid, e.ts_us
        ));
        write_str(&mut out, e.cat);
        out.push_str(",\"name\":");
        write_str(&mut out, &e.name);
        out.push('}');
    }

    // Counter totals as one summary event so the numbers travel with the
    // timeline file.
    if !t.counters.is_empty() {
        sep(&mut out, &mut first);
        out.push_str(&format!(
            "{{\"ph\":\"C\",\"pid\":{PID},\"tid\":0,\"ts\":0,\"name\":\"counters\",\"args\":{{"
        ));
        for (i, (k, v)) in t.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write_str(&mut out, k);
            out.push(':');
            write_f64(&mut out, *v as f64);
        }
        out.push_str("}}");
    }

    out.push_str("\n]}\n");
    out
}

/// Writes [`chrome_trace_string`] to `w`.
pub fn write_chrome_trace<W: Write>(t: &Telemetry, w: &mut W) -> std::io::Result<()> {
    w.write_all(chrome_trace_string(t).as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{InstantEvent, SpanEvent};

    fn sample() -> Telemetry {
        let mut t = Telemetry::default();
        t.thread_labels.insert(1, "driver".to_string());
        t.spans.push(SpanEvent {
            cat: "sched",
            name: "cell:rf|1|0.5".to_string(),
            tid: 1,
            start_us: 10,
            dur_us: 90,
            args: vec![("worker", "0".to_string()), ("kind", "par".to_string())],
        });
        t.instants.push(InstantEvent { cat: "sched", name: "steal".to_string(), tid: 2, ts_us: 55 });
        t.counters.insert("sched.steals".to_string(), 1);
        t
    }

    #[test]
    fn trace_is_valid_json_with_all_event_kinds() {
        let s = chrome_trace_string(&sample());
        crate::json::validate(&s).expect("trace must be well-formed JSON");
        assert!(s.contains("\"ph\":\"X\""));
        assert!(s.contains("\"ph\":\"i\""));
        assert!(s.contains("\"ph\":\"M\""));
        assert!(s.contains("\"ph\":\"C\""));
        assert!(s.contains("cell:rf|1|0.5"));
    }

    #[test]
    fn trace_survives_names_needing_escapes() {
        let mut t = sample();
        t.spans[0].name = "weird\"name\\with\nstuff".to_string();
        let s = chrome_trace_string(&t);
        crate::json::validate(&s).expect("escaped trace must stay well-formed");
    }

    #[test]
    fn empty_telemetry_is_still_a_document() {
        let s = chrome_trace_string(&Telemetry::default());
        crate::json::validate(&s).unwrap();
        assert!(s.contains("traceEvents"));
    }
}
