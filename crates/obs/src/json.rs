//! Minimal JSON support for the exporters: string escaping, number
//! formatting, and a validating parser.
//!
//! The exporters hand-roll their output (this crate is dependency-free),
//! so the writer side needs only escaping and finite-number formatting;
//! the [`validate`] parser exists so tests and smoke checks can assert
//! that an exported file *is* JSON without pulling in a real parser.

/// Appends `s` to `out` as a JSON string literal (with quotes).
pub fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Appends a finite `f64` (non-finite values become `null`, which JSON
/// requires).
pub fn write_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        out.push_str(&format!("{v}"));
    } else {
        out.push_str("null");
    }
}

/// Checks that `s` is one complete, well-formed JSON value. Returns the
/// byte offset and message of the first error. Values are not built —
/// this is a validator, not a parser.
pub fn validate(s: &str) -> Result<(), String> {
    let b = s.as_bytes();
    let mut p = Cursor { b, i: 0 };
    p.skip_ws();
    p.value()?;
    p.skip_ws();
    if p.i != b.len() {
        return Err(format!("trailing data at byte {}", p.i));
    }
    Ok(())
}

struct Cursor<'a> {
    b: &'a [u8],
    i: usize,
}

impl Cursor<'_> {
    fn err(&self, msg: &str) -> String {
        format!("{msg} at byte {}", self.i)
    }

    fn skip_ws(&mut self) {
        while self.i < self.b.len() && matches!(self.b[self.i], b' ' | b'\t' | b'\n' | b'\r') {
            self.i += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.b.get(self.i).copied()
    }

    fn eat(&mut self, lit: &str) -> Result<(), String> {
        if self.b[self.i..].starts_with(lit.as_bytes()) {
            self.i += lit.len();
            Ok(())
        } else {
            Err(self.err(&format!("expected `{lit}`")))
        }
    }

    fn value(&mut self) -> Result<(), String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string(),
            Some(b't') => self.eat("true"),
            Some(b'f') => self.eat("false"),
            Some(b'n') => self.eat("null"),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<(), String> {
        self.i += 1; // '{'
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.i += 1;
            return Ok(());
        }
        loop {
            self.skip_ws();
            self.string()?;
            self.skip_ws();
            self.eat(":")?;
            self.skip_ws();
            self.value()?;
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b'}') => {
                    self.i += 1;
                    return Ok(());
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn array(&mut self) -> Result<(), String> {
        self.i += 1; // '['
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.i += 1;
            return Ok(());
        }
        loop {
            self.skip_ws();
            self.value()?;
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b']') => {
                    self.i += 1;
                    return Ok(());
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn string(&mut self) -> Result<(), String> {
        if self.peek() != Some(b'"') {
            return Err(self.err("expected a string"));
        }
        self.i += 1;
        while let Some(c) = self.peek() {
            match c {
                b'"' => {
                    self.i += 1;
                    return Ok(());
                }
                b'\\' => {
                    self.i += 1;
                    match self.peek() {
                        Some(b'u') => {
                            if self.b.len() < self.i + 5
                                || !self.b[self.i + 1..self.i + 5]
                                    .iter()
                                    .all(u8::is_ascii_hexdigit)
                            {
                                return Err(self.err("bad \\u escape"));
                            }
                            self.i += 5;
                        }
                        Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => {
                            self.i += 1;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                }
                c if c < 0x20 => return Err(self.err("raw control character in string")),
                _ => self.i += 1,
            }
        }
        Err(self.err("unterminated string"))
    }

    fn number(&mut self) -> Result<(), String> {
        let start = self.i;
        if self.peek() == Some(b'-') {
            self.i += 1;
        }
        let digits = |p: &mut Self| {
            let s = p.i;
            while p.peek().is_some_and(|c| c.is_ascii_digit()) {
                p.i += 1;
            }
            p.i > s
        };
        if !digits(self) {
            return Err(self.err("expected digits"));
        }
        if self.peek() == Some(b'.') {
            self.i += 1;
            if !digits(self) {
                return Err(self.err("expected fraction digits"));
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.i += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.i += 1;
            }
            if !digits(self) {
                return Err(self.err("expected exponent digits"));
            }
        }
        let _ = start;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_and_validates_round_trip() {
        let mut out = String::new();
        write_str(&mut out, "a\"b\\c\nd\te\u{1}");
        assert_eq!(out, "\"a\\\"b\\\\c\\nd\\te\\u0001\"");
        validate(&out).unwrap();
    }

    #[test]
    fn validates_nested_documents() {
        validate(r#"{"a":[1,2.5,-3e2,{"b":null},true,false,"x"],"c":{}}"#).unwrap();
        validate("[]").unwrap();
        validate("  42 ").unwrap();
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["{", "[1,]", "{\"a\":}", "\"unterminated", "01x", "{\"a\" 1}", "[1] extra"] {
            assert!(validate(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn non_finite_numbers_become_null() {
        let mut out = String::new();
        write_f64(&mut out, f64::NAN);
        out.push(',');
        write_f64(&mut out, 1.5);
        assert_eq!(out, "null,1.5");
    }
}
