//! Property-based contracts of the live telemetry plane
//! (`kcb_obs::live`): the bucketed percentile's error bound, merge
//! associativity, and multi-thread record/snapshot consistency.

use kcb_obs::live::{bucket_bounds, bucket_of, HistSnapshot, LiveHistogram, BUCKETS};
use proptest::prelude::*;

/// Exact nearest-rank percentile over a sorted copy of `values`.
fn exact_percentile(values: &[u64], p: f64) -> u64 {
    let mut sorted = values.to_vec();
    sorted.sort_unstable();
    let rank = ((p / 100.0 * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

fn snapshot_of(values: &[u64]) -> HistSnapshot {
    let h = LiveHistogram::new();
    for &v in values {
        h.record(v);
    }
    h.snapshot()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// The documented bound: for samples below the overflow bucket the
    /// bucketed percentile never underestimates and overestimates by at
    /// most 50%.
    #[test]
    fn bucketed_percentile_is_within_the_error_bound(
        values in prop::collection::vec(0u64..(1 << 31), 1..300),
        p_tenths in 1u64..1000,
    ) {
        let p = p_tenths as f64 / 10.0;
        let exact = exact_percentile(&values, p);
        let est = snapshot_of(&values).percentile(p);
        prop_assert!(est >= exact, "p{p}: {est} underestimates exact {exact}");
        prop_assert!(2 * est <= 3 * exact.max(1),
            "p{p}: {est} exceeds 1.5x exact {exact}");
    }

    /// Bucketing is monotone and every value lands inside its bucket's
    /// inclusive bounds — the two facts the error bound rests on.
    #[test]
    fn bucket_mapping_is_sound(a in any::<u64>(), b in any::<u64>()) {
        let (lo, hi) = bucket_bounds(bucket_of(a));
        prop_assert!(lo <= a && a <= hi);
        if a <= b {
            prop_assert!(bucket_of(a) <= bucket_of(b));
        }
        prop_assert!(bucket_of(a) < BUCKETS);
    }

    /// Merging snapshots is associative and commutative, so per-shard
    /// histograms fold to the same distribution in any order.
    #[test]
    fn merge_is_associative_and_commutative(
        xs in prop::collection::vec(0u64..(1 << 40), 0..60),
        ys in prop::collection::vec(0u64..(1 << 40), 0..60),
        zs in prop::collection::vec(0u64..(1 << 40), 0..60),
    ) {
        let (a, b, c) = (snapshot_of(&xs), snapshot_of(&ys), snapshot_of(&zs));
        // (a + b) + c
        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);
        // a + (b + c)
        let mut bc = b.clone();
        bc.merge(&c);
        let mut right = a.clone();
        right.merge(&bc);
        prop_assert_eq!(&left, &right);
        // b + a == a + b
        let mut ba = b.clone();
        ba.merge(&a);
        let mut ab = a.clone();
        ab.merge(&b);
        prop_assert_eq!(&ab, &ba);
        // The merged snapshot equals recording everything into one.
        let mut all = xs.clone();
        all.extend(&ys);
        all.extend(&zs);
        prop_assert_eq!(left, snapshot_of(&all));
    }
}

/// N threads hammer one histogram; after they join, the snapshot must
/// account for every single record (count, sum, and exact max).
#[test]
fn concurrent_records_are_all_visible_after_join() {
    const THREADS: u64 = 4;
    const PER_THREAD: u64 = 10_000;
    let h = LiveHistogram::new();
    std::thread::scope(|s| {
        for t in 0..THREADS {
            let h = &h;
            s.spawn(move || {
                for i in 0..PER_THREAD {
                    h.record(t * PER_THREAD + i);
                }
            });
        }
    });
    let snap = h.snapshot();
    assert_eq!(snap.count(), THREADS * PER_THREAD, "snapshot total == records");
    let n = THREADS * PER_THREAD;
    assert_eq!(snap.sum, n * (n - 1) / 2, "every value summed exactly once");
    assert_eq!(snap.max, n - 1);
}

/// A snapshot taken *while* writers are still recording is internally
/// consistent: its count is derived from its buckets (never ahead of
/// them) and never exceeds what will eventually be recorded.
#[test]
fn midflight_snapshots_are_internally_consistent() {
    const TOTAL: u64 = 200_000;
    let h = std::sync::Arc::new(LiveHistogram::new());
    let writer = {
        let h = std::sync::Arc::clone(&h);
        std::thread::spawn(move || {
            for i in 0..TOTAL {
                h.record(i % 1024);
            }
        })
    };
    let mut last = 0u64;
    for _ in 0..50 {
        let snap = h.snapshot();
        let count = snap.count();
        assert!(count <= TOTAL, "snapshot overcounts: {count}");
        assert!(count >= last, "bucket cells are monotone: {count} < {last}");
        assert_eq!(count, snap.buckets.iter().sum::<u64>());
        last = count;
    }
    writer.join().expect("writer");
    assert_eq!(h.snapshot().count(), TOTAL);
}
