//! Mini-transformer forward/backward and generation throughput, plus the
//! dense kernels underneath (the three matmul layouts and the batched
//! forward path the training loops feed).

use criterion::{criterion_group, criterion_main, Criterion};
use kcb_lm::tensor::{matmul_nn, matmul_nt, matmul_tn};
use kcb_lm::transformer::Backbone;
use kcb_lm::{MiniBert, MiniBertConfig, MiniGpt, MiniGptConfig, TrainConfig, TransformerConfig};
use kcb_ml::linalg::Matrix;
use kcb_util::Rng;
use std::hint::black_box;

fn arch() -> TransformerConfig {
    TransformerConfig {
        vocab_size: 512,
        d_model: 48,
        n_heads: 4,
        n_layers: 2,
        d_ff: 96,
        max_len: 48,
        seed: 4,
    }
}

fn random_seqs(n: usize, len: usize) -> Vec<Vec<u32>> {
    let mut rng = Rng::seed(5);
    (0..n).map(|_| (0..len).map(|_| 5 + rng.below(500) as u32).collect()).collect()
}

fn bench_bert(c: &mut Criterion) {
    let bert = MiniBert::new(MiniBertConfig { arch: arch(), mask_prob: 0.15 });
    let seqs = random_seqs(64, 32);
    let tc = TrainConfig { epochs: 1, lr: 1e-3, batch_size: 16, seed: 6 };
    let mut g = c.benchmark_group("transformer");
    g.sample_size(10);
    g.bench_function("bert_mlm_step/64_seqs", |b| {
        b.iter(|| bert.pretrain_mlm(&seqs, &tc).len())
    });
    g.bench_function("bert_encode/1_seq", |b| {
        b.iter(|| bert.encode(black_box(&seqs[0])).len())
    });
    g.finish();
}

fn filled(rows: usize, cols: usize, seed: f32) -> Matrix {
    let mut m = Matrix::zeros(rows, cols);
    for r in 0..rows {
        for (c, v) in m.row_mut(r).iter_mut().enumerate() {
            *v = ((r * 31 + c * 7) as f32 * 0.013 + seed).sin();
        }
    }
    m
}

/// The three matmul layouts at the shape a packed fine-tuning batch feeds
/// them (≈16 sequences × 20 tokens stacked, d_model 48 → d_ff 96).
fn bench_matmul_kernels(c: &mut Criterion) {
    let a = filled(320, 48, 0.1); // packed activations (Σtᵢ, d)
    let b = filled(48, 96, 0.2); // weight (d, d_ff)
    let bt = filled(96, 48, 0.3); // weight transposed (backward dX)
    let at = filled(48, 320, 0.4); // activations transposed (backward dW)
    let mut g = c.benchmark_group("matmul");
    g.bench_function("nn/320x48x96", |bch| bch.iter(|| matmul_nn(black_box(&a), black_box(&b))));
    g.bench_function("nt/320x48x96", |bch| bch.iter(|| matmul_nt(black_box(&a), black_box(&bt))));
    g.bench_function("tn/48x320x96", |bch| bch.iter(|| matmul_tn(black_box(&at), black_box(&b))));
    g.finish();
}

/// Batched (packed, block-diagonal attention) vs one-at-a-time forward
/// over the same 16 sequences — the win the training loops ride on.
fn bench_batched_forward(c: &mut Criterion) {
    let mut rng = Rng::seed(3);
    let backbone = Backbone::new(arch(), &mut rng);
    let seqs = random_seqs(16, 20);
    let refs: Vec<&[u32]> = seqs.iter().map(Vec::as_slice).collect();
    let mut g = c.benchmark_group("transformer");
    g.sample_size(20);
    g.bench_function("forward/16_seqs_batched", |b| {
        b.iter(|| backbone.forward_batch(black_box(&refs), false).0.shape())
    });
    g.bench_function("forward/16_seqs_unbatched", |b| {
        b.iter(|| {
            refs.iter().map(|s| backbone.forward(black_box(s), false).shape().0).sum::<usize>()
        })
    });
    g.finish();
}

fn bench_gpt(c: &mut Criterion) {
    let gpt = MiniGpt::new(MiniGptConfig { arch: arch() });
    let mut g = c.benchmark_group("transformer");
    g.sample_size(10);
    g.bench_function("gpt_generate/8_tokens", |b| {
        let prompt: Vec<u32> = (5..25).collect();
        let mut rng = Rng::seed(7);
        b.iter(|| gpt.generate(black_box(&prompt), 8, 0.8, &mut rng).len())
    });
    g.finish();
}

criterion_group!(benches, bench_matmul_kernels, bench_batched_forward, bench_bert, bench_gpt);
criterion_main!(benches);
