//! Mini-transformer forward/backward and generation throughput.

use criterion::{criterion_group, criterion_main, Criterion};
use kcb_lm::{MiniBert, MiniBertConfig, MiniGpt, MiniGptConfig, TrainConfig, TransformerConfig};
use kcb_util::Rng;
use std::hint::black_box;

fn arch() -> TransformerConfig {
    TransformerConfig {
        vocab_size: 512,
        d_model: 48,
        n_heads: 4,
        n_layers: 2,
        d_ff: 96,
        max_len: 48,
        seed: 4,
    }
}

fn random_seqs(n: usize, len: usize) -> Vec<Vec<u32>> {
    let mut rng = Rng::seed(5);
    (0..n).map(|_| (0..len).map(|_| 5 + rng.below(500) as u32).collect()).collect()
}

fn bench_bert(c: &mut Criterion) {
    let bert = MiniBert::new(MiniBertConfig { arch: arch(), mask_prob: 0.15 });
    let seqs = random_seqs(64, 32);
    let tc = TrainConfig { epochs: 1, lr: 1e-3, batch_size: 16, seed: 6 };
    let mut g = c.benchmark_group("transformer");
    g.sample_size(10);
    g.bench_function("bert_mlm_step/64_seqs", |b| {
        b.iter(|| bert.pretrain_mlm(&seqs, &tc).len())
    });
    g.bench_function("bert_encode/1_seq", |b| {
        b.iter(|| bert.encode(black_box(&seqs[0])).len())
    });
    g.finish();
}

fn bench_gpt(c: &mut Criterion) {
    let gpt = MiniGpt::new(MiniGptConfig { arch: arch() });
    let mut g = c.benchmark_group("transformer");
    g.sample_size(10);
    g.bench_function("gpt_generate/8_tokens", |b| {
        let prompt: Vec<u32> = (5..25).collect();
        let mut rng = Rng::seed(7);
        b.iter(|| gpt.generate(black_box(&prompt), 8, 0.8, &mut rng).len())
    });
    g.finish();
}

criterion_group!(benches, bench_bert, bench_gpt);
criterion_main!(benches);
