//! Random-forest training and inference (the Table 3 learner).

use criterion::{criterion_group, criterion_main, Criterion};
use kcb_ml::linalg::Matrix;
use kcb_ml::{RandomForest, RandomForestConfig};
use kcb_util::Rng;
use std::hint::black_box;

fn synthetic_data(n: usize, d: usize) -> (Matrix, Vec<bool>) {
    let mut rng = Rng::seed(2);
    let mut rows = Vec::with_capacity(n);
    let mut y = Vec::with_capacity(n);
    for _ in 0..n {
        let row: Vec<f32> = (0..d).map(|_| rng.f32()).collect();
        y.push(row[0] + row[1] > 1.0);
        rows.push(row);
    }
    (Matrix::from_rows(rows), y)
}

fn bench_forest(c: &mut Criterion) {
    let (x, y) = synthetic_data(4_000, 60);
    let cfg = RandomForestConfig { n_trees: 16, n_threads: 4, ..RandomForestConfig::default() };
    let mut g = c.benchmark_group("forest");
    g.sample_size(10);
    g.bench_function("fit/4k_rows_60_dims_16_trees", |b| {
        b.iter(|| RandomForest::fit(&x, &y, &cfg).n_trees())
    });
    let forest = RandomForest::fit(&x, &y, &cfg);
    g.bench_function("predict/4k_rows", |b| {
        b.iter(|| forest.predict_batch(black_box(&x)).len())
    });
    g.finish();
}

criterion_group!(benches, bench_forest);
criterion_main!(benches);
