//! SIMD vs scalar kernels: dot, dot4 and the matmul tile update.
//!
//! The acceptance bar for the wide kernels is ≥ 2× the strided scalar
//! baseline on the dot/matmul inner loops (both produce bitwise-identical
//! sums — the scalar baseline keeps the exact 4-lane association, it just
//! defeats auto-vectorization with strided passes).

use criterion::{criterion_group, criterion_main, Criterion};
use kcb_util::simd;
use kcb_util::Rng;
use std::hint::black_box;

fn vectors(n: usize, seed: u64) -> (Vec<f32>, Vec<f32>) {
    let mut rng = Rng::seed(seed);
    let a = (0..n).map(|_| rng.f32_range(-1.0, 1.0)).collect();
    let b = (0..n).map(|_| rng.f32_range(-1.0, 1.0)).collect();
    (a, b)
}

fn bench_dot(c: &mut Criterion) {
    let mut g = c.benchmark_group("simd");
    for n in [64usize, 768] {
        let (a, b) = vectors(n, 7);
        g.bench_function(format!("dot_wide/{n}"), |bch| {
            bch.iter(|| simd::dot_wide(black_box(&a), black_box(&b)))
        });
        g.bench_function(format!("dot_scalar/{n}"), |bch| {
            bch.iter(|| simd::dot_scalar(black_box(&a), black_box(&b)))
        });
    }
    g.finish();
}

fn bench_dot4(c: &mut Criterion) {
    let n = 768;
    let (q, k0) = vectors(n, 11);
    let (k1, k2) = vectors(n, 13);
    let (k3, _) = vectors(n, 17);
    let mut g = c.benchmark_group("simd");
    g.bench_function(format!("dot4_wide/{n}"), |bch| {
        bch.iter(|| simd::dot4_wide(black_box(&q), &k0, &k1, &k2, &k3))
    });
    g.bench_function(format!("dot4_scalar_x4/{n}"), |bch| {
        bch.iter(|| {
            let q = black_box(&q);
            [
                simd::dot_scalar(q, &k0),
                simd::dot_scalar(q, &k1),
                simd::dot_scalar(q, &k2),
                simd::dot_scalar(q, &k3),
            ]
        })
    });
    g.finish();
}

fn bench_tile(c: &mut Criterion) {
    // The matmul micro-kernel's unit of work: one fused row update.
    let (bk_v, _) = vectors(8, 23);
    let bk: [f32; 8] = bk_v.try_into().unwrap();
    let mut acc = [0.0f32; 8];
    let mut g = c.benchmark_group("simd");
    g.bench_function("fma_tile8/1k_updates", |bch| {
        bch.iter(|| {
            for i in 0..1000 {
                simd::fma_tile8(&mut acc, black_box(i as f32 * 1e-3), black_box(&bk));
            }
            acc[0]
        })
    });
    g.finish();
}

criterion_group!(benches, bench_dot, bench_dot4, bench_tile);
criterion_main!(benches);
