//! Embedding training and lookup throughput.

use criterion::{criterion_group, criterion_main, Criterion};
use kcb_embed::{embed_or_random, word2vec, EmbeddingModel, RandomEmbedding};
use kcb_util::Rng;
use std::hint::black_box;

fn topic_corpus(n_sent: usize) -> Vec<Vec<String>> {
    let mut rng = Rng::seed(1);
    let vocab: Vec<String> = (0..400).map(|i| format!("tok{i}")).collect();
    (0..n_sent)
        .map(|_| (0..12).map(|_| vocab[rng.below(vocab.len())].clone()).collect())
        .collect()
}

fn bench_word2vec_train(c: &mut Criterion) {
    let corpus = topic_corpus(400);
    let cfg = word2vec::Word2VecConfig {
        dim: 32,
        epochs: 1,
        min_count: 1,
        ..word2vec::Word2VecConfig::default()
    };
    let mut g = c.benchmark_group("embeddings");
    g.sample_size(10);
    g.bench_function("word2vec_train/400_sentences", |b| {
        b.iter(|| word2vec::train("bench", &corpus, &cfg).vocab_size())
    });
    g.finish();
}

/// One SGNS epoch at 1 worker vs the full shard fan-out — measures the
/// speedup (and overhead floor) of the block-synchronous sharded trainer.
/// Results are bitwise identical across the two legs by construction.
fn bench_sgns_epoch(c: &mut Criterion) {
    let corpus = topic_corpus(800);
    let cfg = word2vec::Word2VecConfig {
        dim: 32,
        epochs: 1,
        min_count: 1,
        ..word2vec::Word2VecConfig::default()
    };
    let mut g = c.benchmark_group("embed");
    g.sample_size(10);
    for threads in [1usize, 4] {
        g.bench_function(format!("sgns_epoch/threads-{threads}"), |b| {
            let _guard = kcb_util::pool::ThreadsGuard::new(threads);
            b.iter(|| word2vec::train("bench", &corpus, &cfg).vocab_size())
        });
    }
    g.finish();
}

/// `nearest` over a trained table, f32 vs the int8-quantized twin — the
/// query pair `repro bench-query` measures end-to-end.
fn bench_nearest_quantized(c: &mut Criterion) {
    let corpus = topic_corpus(400);
    let cfg = word2vec::Word2VecConfig {
        dim: 32,
        epochs: 1,
        min_count: 1,
        ..word2vec::Word2VecConfig::default()
    };
    let table = word2vec::train("bench", &corpus, &cfg);
    let quantized = kcb_embed::QuantizedEmbeddingTable::quantize(&table);
    let probe = table.vocab().token(0).to_string();
    let mut g = c.benchmark_group("embeddings");
    g.bench_function("nearest_f32/top10", |b| {
        b.iter(|| table.nearest(black_box(&probe), 10).len())
    });
    g.bench_function("nearest_int8/top10", |b| {
        b.iter(|| quantized.nearest(black_box(&probe), 10).len())
    });
    g.finish();
}

fn bench_lookup(c: &mut Criterion) {
    let model = RandomEmbedding::with_dim(48);
    let tokens: Vec<String> = (0..2_000).map(|i| format!("token-{i}")).collect();
    let mut out = vec![0.0f32; model.dim()];
    c.bench_function("embeddings/oov_lookup_2k", |b| {
        b.iter(|| {
            for t in &tokens {
                embed_or_random(&model, black_box(t), &mut out);
            }
            out[0]
        })
    });
}

criterion_group!(
    benches,
    bench_word2vec_train,
    bench_sgns_epoch,
    bench_nearest_quantized,
    bench_lookup
);
criterion_main!(benches);
