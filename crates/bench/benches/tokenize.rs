//! Tokenizer throughput: chemical-name scanning and WordPiece encoding.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use kcb_bench::bench_ontology;
use kcb_text::{ChemTokenizer, WordPieceTrainer};
use std::collections::HashMap;
use std::hint::black_box;

fn bench_tokenizers(c: &mut Criterion) {
    let o = bench_ontology(0.01);
    let names: Vec<&str> = o.entities().iter().map(|e| e.name.as_str()).take(4_000).collect();
    let bytes: usize = names.iter().map(|n| n.len()).sum();
    let tk = ChemTokenizer::new();

    let mut g = c.benchmark_group("tokenize");
    g.throughput(Throughput::Bytes(bytes as u64));
    g.bench_function("chem_tokenizer/4k_names", |b| {
        b.iter(|| {
            let mut total = 0usize;
            for n in &names {
                total += tk.tokenize(black_box(n)).len();
            }
            total
        })
    });

    let mut counts: HashMap<String, u64> = HashMap::new();
    for n in &names {
        for t in tk.tokenize(n) {
            *counts.entry(t).or_insert(0) += 1;
        }
    }
    let wp = WordPieceTrainer { target_vocab: 800, min_pair_count: 2 }.train(&counts);
    let words: Vec<Vec<String>> = names.iter().take(1_000).map(|n| tk.tokenize(n)).collect();
    g.bench_function("wordpiece_encode/1k_names", |b| {
        b.iter(|| {
            let mut total = 0usize;
            for w in &words {
                total += wp.encode_words(w.iter().map(String::as_str)).len();
            }
            total
        })
    });
    g.finish();
}

criterion_group!(benches, bench_tokenizers);
criterion_main!(benches);
