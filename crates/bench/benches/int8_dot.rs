//! Int8 scoring path: quantized dot / cosine vs the f32 kernels.

use criterion::{criterion_group, criterion_main, Criterion};
use kcb_ml::linalg::Matrix;
use kcb_ml::quant::{cosine_i8, QuantizedMatrix};
use kcb_util::{simd, Rng};
use std::hint::black_box;

fn f32_rows(rows: usize, cols: usize) -> Matrix {
    let mut rng = Rng::seed(29);
    let data: Vec<Vec<f32>> =
        (0..rows).map(|_| (0..cols).map(|_| rng.f32_range(-1.0, 1.0)).collect()).collect();
    Matrix::from_rows(data)
}

fn bench_int8_dot(c: &mut Criterion) {
    let m = f32_rows(2, 768);
    let q = QuantizedMatrix::quantize(&m);
    let (a8, b8) = (q.row(0).to_vec(), q.row(1).to_vec());
    let (af, bf) = (m.row(0).to_vec(), m.row(1).to_vec());
    let mut g = c.benchmark_group("int8");
    g.bench_function("dot_i8/768", |bch| {
        bch.iter(|| simd::dot_i8(black_box(&a8), black_box(&b8)))
    });
    g.bench_function("dot_f32/768", |bch| {
        bch.iter(|| simd::dot(black_box(&af), black_box(&bf)))
    });
    g.finish();
}

fn bench_int8_nearest(c: &mut Criterion) {
    // One nearest-neighbour scan: cosine of a query row against 2k rows.
    let m = f32_rows(2_000, 64);
    let q = QuantizedMatrix::quantize(&m);
    let mut g = c.benchmark_group("int8");
    g.bench_function("cosine_scan_i8/2k_rows", |bch| {
        bch.iter(|| {
            let probe = q.row(0);
            (1..q.rows()).map(|r| cosine_i8(black_box(probe), q.row(r))).sum::<f64>()
        })
    });
    g.bench_function("cosine_scan_f32/2k_rows", |bch| {
        bch.iter(|| {
            let probe = m.row(0);
            (1..m.rows())
                .map(|r| f64::from(kcb_ml::linalg::cosine(black_box(probe), m.row(r))))
                .sum::<f64>()
        })
    });
    g.finish();
}

criterion_group!(benches, bench_int8_dot, bench_int8_nearest);
criterion_main!(benches);
