//! LSTM training and inference (the Table A6 learner).

use criterion::{criterion_group, criterion_main, Criterion};
use kcb_ml::linalg::Matrix;
use kcb_ml::{Lstm, LstmConfig};
use kcb_util::Rng;
use std::hint::black_box;

fn sequences(n: usize, d: usize) -> (Vec<Matrix>, Vec<bool>) {
    let mut rng = Rng::seed(3);
    let mut seqs = Vec::with_capacity(n);
    let mut y = Vec::with_capacity(n);
    for _ in 0..n {
        let len = rng.range(6, 16);
        let rows: Vec<Vec<f32>> =
            (0..len).map(|_| (0..d).map(|_| rng.f32_range(-1.0, 1.0)).collect()).collect();
        y.push(rows.iter().map(|r| r[0]).sum::<f32>() > 0.0);
        seqs.push(Matrix::from_rows(rows));
    }
    (seqs, y)
}

fn bench_lstm(c: &mut Criterion) {
    let (seqs, y) = sequences(200, 24);
    let cfg = LstmConfig { hidden: 24, epochs: 1, ..LstmConfig::default() };
    let mut g = c.benchmark_group("lstm");
    g.sample_size(10);
    g.bench_function("fit/200_seqs_1_epoch", |b| {
        b.iter(|| {
            let m = Lstm::fit(&seqs, &y, &cfg);
            m.predict_proba(&seqs[0])
        })
    });
    let model = Lstm::fit(&seqs, &y, &cfg);
    g.bench_function("predict/200_seqs", |b| {
        b.iter(|| seqs.iter().map(|s| model.predict(black_box(s))).filter(|&p| p).count())
    });
    g.finish();
}

criterion_group!(benches, bench_lstm);
criterion_main!(benches);
