//! DBSCAN region queries: the pivot-annulus [`kcb_ml::cluster`] index
//! against the brute-force scan it replaced, on blob-structured data
//! shaped like the embedding-space sweeps (hundreds of points, tens of
//! dimensions, both metrics).

use criterion::{criterion_group, criterion_main, Criterion};
use kcb_ml::cluster::{dbscan, dbscan_brute, Metric};
use kcb_ml::linalg::Matrix;
use kcb_util::Rng;
use std::hint::black_box;

/// Gaussian-ish blobs: `k` centres, `n` points, `d` dims.
fn blobs(n: usize, d: usize, k: usize, seed: u64) -> Matrix {
    let mut rng = Rng::seed(seed);
    let centres: Vec<Vec<f32>> =
        (0..k).map(|_| (0..d).map(|_| rng.f32() * 40.0 - 20.0).collect()).collect();
    let rows: Vec<Vec<f32>> = (0..n)
        .map(|i| {
            let c = &centres[i % k];
            c.iter().map(|&v| v + rng.f32() * 2.0 - 1.0).collect()
        })
        .collect();
    Matrix::from_rows(rows)
}

fn bench_dbscan(c: &mut Criterion) {
    let mut group = c.benchmark_group("dbscan");
    group.sample_size(20);
    for (n, d) in [(400usize, 16usize), (800, 32)] {
        let m = blobs(n, d, 8, 7);
        group.bench_function(format!("indexed/euclidean/{n}x{d}"), |b| {
            b.iter(|| dbscan(black_box(&m), 3.0, 4, Metric::Euclidean).len())
        });
        group.bench_function(format!("brute/euclidean/{n}x{d}"), |b| {
            b.iter(|| dbscan_brute(black_box(&m), 3.0, 4, Metric::Euclidean).len())
        });
    }
    let m = blobs(400, 24, 8, 11);
    group.bench_function("indexed/cosine/400x24", |b| {
        b.iter(|| dbscan(black_box(&m), 0.05, 4, Metric::Cosine).len())
    });
    group.bench_function("brute/cosine/400x24", |b| {
        b.iter(|| dbscan_brute(black_box(&m), 0.05, 4, Metric::Cosine).len())
    });
    group.finish();
}

criterion_group!(benches, bench_dbscan);
criterion_main!(benches);
