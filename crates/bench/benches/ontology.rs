//! Ontology substrate: synthetic generation and hierarchy queries.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kcb_bench::bench_ontology;
use kcb_ontology::{EntityId, SyntheticConfig, SyntheticGenerator};
use std::hint::black_box;

fn bench_generate(c: &mut Criterion) {
    let mut g = c.benchmark_group("ontology/generate");
    g.sample_size(10);
    for scale in [0.005, 0.02] {
        g.bench_with_input(BenchmarkId::from_parameter(scale), &scale, |b, &s| {
            b.iter(|| {
                SyntheticGenerator::new(SyntheticConfig { scale: s, seed: 42 })
                    .unwrap()
                    .generate()
                    .n_triples()
            })
        });
    }
    g.finish();
}

fn bench_queries(c: &mut Criterion) {
    let o = bench_ontology(0.02);
    let n = o.n_entities() as u32;
    c.bench_function("ontology/siblings_1k", |b| {
        b.iter(|| {
            let mut total = 0usize;
            for i in (0..n).step_by((n as usize / 1_000).max(1)) {
                total += o.siblings(black_box(EntityId(i))).len();
            }
            total
        })
    });
    c.bench_function("ontology/contains_10k", |b| {
        let triples: Vec<_> = o.triples().iter().take(10_000).copied().collect();
        b.iter(|| triples.iter().filter(|&&t| o.contains(black_box(t))).count())
    });
}

criterion_group!(benches, bench_generate, bench_queries);
criterion_main!(benches);
