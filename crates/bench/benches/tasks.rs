//! Negative-sampling throughput for the three curation tasks.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kcb_bench::bench_ontology;
use kcb_core::task::{TaskDataset, TaskKind};

fn bench_task_generation(c: &mut Criterion) {
    let o = bench_ontology(0.01);
    let mut g = c.benchmark_group("tasks/generate");
    g.sample_size(10);
    for task in TaskKind::ALL {
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("task{}", task.number())),
            &task,
            |b, &t| b.iter(|| TaskDataset::generate(&o, t, 42).len()),
        );
    }
    g.finish();
}

criterion_group!(benches, bench_task_generation);
criterion_main!(benches);
