//! Warm-start cost: zero-copy mmap vs full decode of a raw container.
//!
//! Writes one raw (`KCBC` v2) container holding an embedding-table-sized
//! payload, then measures a warm read through the store with mmap
//! borrowing enabled vs disabled (byte-reader decode). The two legs
//! return bit-identical tables; only the loading mechanism differs.

use criterion::{criterion_group, criterion_main, Criterion};
use kcb_core::ckpt::CkptStore;
use kcb_embed::store as estore;
use kcb_embed::EmbeddingTable;
use kcb_ml::linalg::Matrix;
use kcb_text::Vocab;
use kcb_util::Rng;
use std::collections::HashMap;
use std::hint::black_box;

fn table(n: usize, dim: usize) -> EmbeddingTable {
    let counts: HashMap<String, u64> =
        (0..n).map(|i| (format!("tok{i}"), (n - i) as u64 + 1)).collect();
    let vocab = Vocab::from_counts(counts, 0);
    let mut rng = Rng::seed(31);
    let rows: Vec<Vec<f32>> =
        (0..n).map(|_| (0..dim).map(|_| rng.f32_range(-1.0, 1.0)).collect()).collect();
    EmbeddingTable::new("bench", vocab, Matrix::from_rows(rows))
}

fn bench_warm_start(c: &mut Criterion) {
    let dir = std::env::temp_dir().join(format!("kcb-mmap-bench-{}", std::process::id()));
    let t = table(5_000, 64);
    {
        let store = CkptStore::open(&dir);
        let (meta, vectors) = estore::raw_parts(&t);
        store.put_raw("bench", "warm", &meta, &[vectors]);
    }
    let mut g = c.benchmark_group("warm_start");
    g.sample_size(20);
    for (leg, mmap) in [("mmap", true), ("decode", false)] {
        g.bench_function(format!("raw_container/{leg}"), |b| {
            b.iter(|| {
                let mut store = CkptStore::open(&dir);
                store.set_mmap(mmap);
                let got = store
                    .take_raw("bench", "warm", estore::from_raw, estore::from_bytes)
                    .expect("warm read");
                // Touch one row so lazily-verified stripes do real work.
                black_box(got.vector(0)[0])
            })
        });
    }
    g.finish();
    std::fs::remove_dir_all(&dir).ok();
}

criterion_group!(benches, bench_warm_start);
criterion_main!(benches);
