//! Sweep-compiler cost: lowering a variant grid into the deduplicated
//! structure-shared plan at 1, 8 and 64 variants.
//!
//! The plan is pure bookkeeping (no training, no scheduling), so this
//! bounds the constant overhead `repro sweep` adds before any job runs —
//! it must stay negligible next to even one provider job.

use criterion::{criterion_group, criterion_main, Criterion};
use kcb_core::experiment::sweep::{plan, GridSpec};
use kcb_core::lab::LabConfig;
use std::hint::black_box;

/// Grids sized to expand to exactly 1, 8 and 64 variants.
const GRIDS: [(usize, &str); 3] = [
    (1, "seeds=7;scenarios=0;paradigms=sup;model=random;adapt=naive"),
    (8, "seeds=7,8;scenarios=0,1;paradigms=sup,icl;model=random;adapt=naive"),
    // 4 seeds x 4 scenarios x (sup + ft + icl over 2 oracles) = 64.
    (
        64,
        "seeds=1,2,3,4;scenarios=0,1,2,3;paradigms=all;\
         oracles=gpt-4-sim,biogpt-mini;model=random;adapt=naive",
    ),
];

fn bench_sweep_plan(c: &mut Criterion) {
    let base = LabConfig::tiny();
    let mut g = c.benchmark_group("sweep_plan");
    for (want, spec) in GRIDS {
        let grid = GridSpec::parse(spec).expect("valid grid");
        let n = grid.expand(&base).len();
        assert_eq!(n, want, "grid {spec} expands to {n}, wanted {want}");
        g.bench_function(format!("variants/{want}"), |b| {
            b.iter(|| black_box(plan(black_box(&base), black_box(&grid))));
        });
    }
    g.finish();
}

criterion_group!(benches, bench_sweep_plan);
criterion_main!(benches);
