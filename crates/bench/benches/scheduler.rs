//! Cell-scheduler throughput: a synthetic DAG shaped like the artifact
//! plan (providers feeding a wide fan-out of cells, plus driver-only
//! assembly barriers) at 1 / 2 / max worker threads. On a single-core
//! host the thread counts should tie; with real cores the multi-worker
//! configurations show the cell-level speedup.

use criterion::{criterion_group, criterion_main, Criterion};
use kcb_core::sched::Graph;
use std::hint::black_box;

/// Busy work standing in for a forest / scenario cell (~50µs of float
/// arithmetic; deterministic, optimisation-resistant).
fn cell_work(seed: u64) -> f64 {
    let mut acc = seed as f64;
    for i in 1..4_000u64 {
        acc = (acc + i as f64).sqrt() * 1.0001;
    }
    acc
}

/// A plan-shaped DAG: `providers` dep-free jobs, `cells` parallel jobs
/// each depending on one provider, one driver assembly depending on all
/// cells.
fn run_plan_shaped(workers: usize, providers: usize, cells: usize) -> f64 {
    let mut g = Graph::new();
    let provider_ids: Vec<_> = (0..providers)
        .map(|p| g.add_par(format!("provider:{p}"), &[], move || {
            black_box(cell_work(p as u64));
        }))
        .collect();
    let cell_ids: Vec<_> = (0..cells)
        .map(|i| {
            let dep = provider_ids[i % providers];
            g.add_par(format!("cell:{i}"), &[dep], move || {
                black_box(cell_work(i as u64));
            })
        })
        .collect();
    g.add_driver("artifact:final", &cell_ids, || {});
    let report = g.run(workers);
    report.wall_seconds
}

fn bench_scheduler(c: &mut Criterion) {
    let hw = kcb_lm::pool::hardware_threads();
    let mut group = c.benchmark_group("scheduler");
    group.sample_size(20);
    let mut worker_counts = vec![1usize, 2, hw.max(2)];
    worker_counts.dedup();
    for workers in worker_counts {
        group.bench_function(format!("plan_shaped/120_cells/{workers}_workers"), |b| {
            b.iter(|| run_plan_shaped(black_box(workers), 6, 120))
        });
    }
    // Dependency-chain overhead: a deep sequential chain measures raw
    // per-job scheduling cost (no parallelism to extract).
    group.bench_function("chain/200_jobs/2_workers", |b| {
        b.iter(|| {
            let mut g = Graph::new();
            let mut prev = None;
            for i in 0..200usize {
                let deps: Vec<_> = prev.into_iter().collect();
                prev = Some(g.add_par(format!("j{i}"), &deps, move || {
                    black_box(i);
                }));
            }
            g.run(2).jobs.len()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_scheduler);
criterion_main!(benches);
