//! Sweep determinism: the `analysis/` tables must be byte-identical at
//! any worker count, and a variant's artifact payload must not depend on
//! which sweep it was computed inside (a K-variant sweep and a
//! single-variant sweep of the same config produce the same bytes).

use kcb_bench::analysis;
use kcb_core::experiment::sweep::{run_sweep, GridSpec, SweepSpec};
use kcb_core::lab::LabConfig;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

const GRID: &str = "seeds=7,8;scenarios=0,1;paradigms=sup,icl;model=random;adapt=naive";

fn spec(workers: usize) -> SweepSpec {
    SweepSpec { workers, journal: None, store: None }
}

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("kcb-sweepdet-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Every file under `dir`, relative path → bytes.
fn files(dir: &Path) -> BTreeMap<String, Vec<u8>> {
    fn walk(root: &Path, dir: &Path, out: &mut BTreeMap<String, Vec<u8>>) {
        for e in std::fs::read_dir(dir).expect("readable").flatten() {
            let p = e.path();
            if p.is_dir() {
                walk(root, &p, out);
            } else {
                let rel = p.strip_prefix(root).expect("under root");
                out.insert(rel.to_string_lossy().to_string(), std::fs::read(&p).expect("read"));
            }
        }
    }
    let mut out = BTreeMap::new();
    walk(dir, dir, &mut out);
    out
}

#[test]
fn analysis_tables_are_byte_identical_across_worker_counts() {
    let base = LabConfig::tiny();
    let grid = GridSpec::parse(GRID).expect("valid grid");
    let (d1, d4) = (tmp("w1"), tmp("w4"));
    let o1 = run_sweep(&base, &grid, &spec(1));
    let o4 = run_sweep(&base, &grid, &spec(4));
    analysis::write_analysis(&d1, &o1).expect("write w1");
    analysis::write_analysis(&d4, &o4).expect("write w4");
    let (f1, f4) = (files(&d1), files(&d4));
    assert!(f1.len() >= 4, "analysis dir has the tables: {:?}", f1.keys());
    assert_eq!(
        f1.keys().collect::<Vec<_>>(),
        f4.keys().collect::<Vec<_>>(),
        "same file set at 1 vs 4 workers"
    );
    for (name, bytes) in &f1 {
        assert_eq!(bytes, &f4[name], "{name} differs between 1 and 4 workers");
    }
    let _ = std::fs::remove_dir_all(&d1);
    let _ = std::fs::remove_dir_all(&d4);
}

#[test]
fn variant_payloads_do_not_depend_on_the_surrounding_sweep() {
    let base = LabConfig::tiny();
    let grid = GridSpec::parse(GRID).expect("valid grid");
    let full = run_sweep(&base, &grid, &spec(2));
    assert_eq!(full.artifacts.len(), 8, "2 seeds x 2 scenarios x 2 paradigms");
    // Re-run two of the variants as their own single-variant sweeps and
    // compare the persisted payload bytes.
    for single_grid in [
        "seeds=7;scenarios=0;paradigms=sup;model=random;adapt=naive",
        "seeds=8;scenarios=1;paradigms=icl;model=random;adapt=naive",
    ] {
        let g = GridSpec::parse(single_grid).expect("valid grid");
        let solo = run_sweep(&base, &g, &spec(2));
        assert_eq!(solo.artifacts.len(), 1);
        let (id, a) = &solo.artifacts[0];
        let (_, inside) = full
            .artifacts
            .iter()
            .find(|(fid, _)| fid == id)
            .unwrap_or_else(|| panic!("{id} missing from the full sweep"));
        assert_eq!(
            a.to_replay_json().render_json(None),
            inside.to_replay_json().render_json(None),
            "{id} payload differs between the solo and the 8-variant sweep"
        );
    }
}
