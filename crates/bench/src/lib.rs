//! Benchmark support for the `kcb` workspace.
//!
//! This crate hosts the [`repro`](../repro/index.html) experiment binary
//! (one subcommand per paper table/figure) and the Criterion micro/meso
//! benchmarks under `benches/`. The library part provides shared fixtures
//! so benches don't duplicate setup code.

pub mod analysis;
pub mod bench_query;
pub mod cli;
pub mod run_meta;
pub mod runs;
pub mod serve_top;

use kcb_core::task::{TaskDataset, TaskKind};
use kcb_ontology::{Ontology, SyntheticConfig, SyntheticGenerator};

/// A small fixed-seed ontology used by the micro-benchmarks.
pub fn bench_ontology(scale: f64) -> Ontology {
    SyntheticGenerator::new(SyntheticConfig { scale, seed: 42 })
        .expect("valid scale")
        .generate()
}

/// A task dataset over [`bench_ontology`].
pub fn bench_dataset(o: &Ontology, task: TaskKind) -> TaskDataset {
    TaskDataset::generate(o, task, 42)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_build() {
        let o = bench_ontology(0.004);
        assert!(o.n_triples() > 100);
        let d = bench_dataset(&o, TaskKind::RandomNegatives);
        assert!(d.len() > 200);
    }
}
