//! Sweep analysis tables: renders a [`SweepOutcome`] into the
//! `analysis/` directory (per-variant tables, seed-repeat aggregates
//! with Fleiss-κ, pairwise Welch t-tests) plus the dedup-plan dry-run
//! text and `results/bench_sweep.json`.
//!
//! Everything written under `analysis/` is **timing-free** by design:
//! the files are pure functions of the variant configs, so a sweep at
//! `--threads 1` and `--threads 4` — or an interrupted sweep resumed
//! from its journal — produces byte-identical directories (CI diffs
//! them). Wall-clock and speedup measurements go to
//! `results/bench_sweep.json` and `run_meta.json` instead.

use kcb_core::experiment::sweep::{
    GridSpec, GroupAggregate, PairTest, SweepOutcome, SweepPlan, TaskRow,
};
use kcb_core::dataset::SCENARIOS;
use kcb_util::fmt::{metric, Table};
use serde_json::{json, Value};
use std::io;
use std::path::Path;

/// Renders the `--plan` dry run: what the grid compiles to and which
/// jobs are shared, before anything is trained.
pub fn render_plan(grid: &GridSpec, plan: &SweepPlan) -> String {
    let mut out = String::new();
    out.push_str(&format!("grid      {}\n", grid.render()));
    out.push_str(&format!(
        "variants  {}   labs {}   jobs {} (shared {}, unique {})\n",
        plan.variant_ids.len(),
        plan.labs,
        plan.total_jobs,
        plan.shared_jobs,
        plan.unique_jobs
    ));
    let naive: usize = plan.jobs.iter().map(|j| j.refs).sum();
    out.push_str(&format!(
        "dedup     {naive} variant-job references collapse into {} scheduled jobs\n\n",
        plan.total_jobs
    ));
    let mut t = Table::new("Variants", &["variant", "jobs", "shared"]).numeric_after(1);
    for vid in &plan.variant_ids {
        let mine = plan.variant_jobs.get(vid).map(Vec::as_slice).unwrap_or(&[]);
        let shared = mine
            .iter()
            .filter(|l| {
                plan.jobs.iter().any(|j| &j.label == *l && j.refs >= 2)
            })
            .count();
        t.row(vec![vid.clone(), mine.len().to_string(), shared.to_string()]);
    }
    out.push_str(&t.render());
    let mut s = Table::new("Shared jobs (refs >= 2)", &["label", "kind", "refs"])
        .numeric_after(2);
    for j in plan.jobs.iter().filter(|j| j.refs >= 2) {
        s.row(vec![j.label.clone(), j.kind.to_string(), j.refs.to_string()]);
    }
    out.push('\n');
    out.push_str(&s.render());
    out
}

/// The per-variant results table (timing-free; cost attribution lives in
/// `bench_sweep.json`).
pub fn render_variants(o: &SweepOutcome) -> String {
    let mut t = Table::new(
        "Sweep variants — positive-class F1 by task",
        &["variant", "series", "scenario", "Task 1", "Task 2", "Task 3", "jobs", "shared"],
    )
    .numeric_after(3);
    for v in &o.variants {
        let f1 = |i: usize| v.rows.get(i).map(|r| metric(r.f1)).unwrap_or_else(|| "-".into());
        t.row(vec![
            v.id.clone(),
            v.series.clone(),
            SCENARIOS[v.scenario].label(),
            f1(0),
            f1(1),
            f1(2),
            v.jobs.to_string(),
            v.shared_jobs.to_string(),
        ]);
    }
    t.render()
}

/// The seed-repeat aggregate table: mean ± sd per task and Fleiss-κ
/// agreement across seeds.
pub fn render_aggregates(aggs: &[GroupAggregate]) -> String {
    let mut t = Table::new(
        "Seed-repeat aggregates — mean F1 (sd) per task, Fleiss-kappa across seeds",
        &["scale", "scenario", "series", "seeds", "Task 1", "Task 2", "Task 3", "kappa"],
    )
    .numeric_after(4);
    for a in aggs {
        let cell = |i: usize| match (a.f1_mean.get(i), a.f1_sd.get(i)) {
            (Some(m), Some(Some(sd))) => format!("{} ({})", metric(*m), metric(*sd)),
            (Some(m), _) => metric(*m),
            _ => "-".to_string(),
        };
        t.row(vec![
            a.scale.to_string(),
            SCENARIOS[a.scenario].label(),
            a.series.clone(),
            a.n_seeds.to_string(),
            cell(0),
            cell(1),
            cell(2),
            a.fleiss_kappa.map(metric).unwrap_or_else(|| "-".to_string()),
        ]);
    }
    t.render()
}

/// The pairwise significance table (Welch t-tests between series within
/// one scale × scenario, over per-seed-per-task F1 samples).
pub fn render_significance(tests: &[PairTest]) -> String {
    let mut t = Table::new(
        "Pairwise Welch t-tests — per-(seed, task) F1 samples",
        &["scale", "scenario", "A", "B", "n", "t", "df", "p"],
    )
    .numeric_after(4);
    for x in tests {
        t.row(vec![
            x.scale.to_string(),
            SCENARIOS[x.scenario].label(),
            x.a.clone(),
            x.b.clone(),
            x.n.to_string(),
            metric(x.t),
            metric(x.df),
            metric(x.p_value),
        ]);
    }
    if tests.is_empty() {
        t.row(vec!["-".into(), "-".into(), "-".into(), "-".into(), "0".into(),
            "-".into(), "-".into(), "-".into()]);
    }
    t.render()
}

/// Writes the full timing-free `analysis/` directory: `variants.txt`,
/// `aggregates.{txt,json}`, `significance.{txt,json}` and one replay
/// payload per variant under `variants/` (the same bytes the run journal
/// persists, so a variant's file is byte-identical to a single-variant
/// sweep of the same config).
pub fn write_analysis(dir: &Path, o: &SweepOutcome) -> io::Result<()> {
    std::fs::create_dir_all(dir.join("variants"))?;
    std::fs::write(dir.join("variants.txt"), render_variants(o))?;
    std::fs::write(dir.join("aggregates.txt"), render_aggregates(&o.aggregates))?;
    std::fs::write(
        dir.join("aggregates.json"),
        serde_json::to_string_pretty(&serde_json::to_value(&o.aggregates).expect("serializable"))
            .expect("renderable"),
    )?;
    std::fs::write(dir.join("significance.txt"), render_significance(&o.tests))?;
    std::fs::write(
        dir.join("significance.json"),
        serde_json::to_string_pretty(&serde_json::to_value(&o.tests).expect("serializable"))
            .expect("renderable"),
    )?;
    for (vid, a) in &o.artifacts {
        std::fs::write(
            dir.join("variants").join(format!("{vid}.json")),
            a.to_replay_json().render_json(None),
        )?;
    }
    Ok(())
}

/// The measured sequential baseline: per-variant rows and seconds from
/// [`kcb_core::experiment::sweep::run_sequential`], plus total wall.
pub struct SeqBaseline {
    /// `(variant id, rows, seconds)` per variant, in grid order.
    pub per_variant: Vec<(String, Vec<TaskRow>, f64)>,
    /// Total sequential wall-clock seconds.
    pub wall_s: f64,
}

impl SeqBaseline {
    /// Whether every sequential variant's rows match the sweep's bit for
    /// bit — the correctness half of the speedup claim.
    pub fn rows_match(&self, o: &SweepOutcome) -> bool {
        self.per_variant.len() == o.variants.len()
            && self
                .per_variant
                .iter()
                .all(|(id, rows, _)| o.variants.iter().any(|v| &v.id == id && &v.rows == rows))
    }
}

/// Builds `results/bench_sweep.json`: the dedup counts, wall-clock, the
/// per-variant efficiency columns (exclusive vs amortized seconds), and
/// — when the sequential baseline ran — the measured speedup.
pub fn bench_sweep_json(grid: &GridSpec, o: &SweepOutcome, seq: Option<&SeqBaseline>) -> Value {
    let variants: Vec<Value> = o
        .variants
        .iter()
        .map(|v| {
            let seq_s = seq.and_then(|s| {
                s.per_variant.iter().find(|(id, _, _)| id == &v.id).map(|(_, _, secs)| *secs)
            });
            json!({
                "id": v.id,
                "series": v.series,
                "seed": v.seed,
                "scale": v.scale,
                "scenario": v.scenario,
                "jobs": v.jobs,
                "shared_jobs": v.shared_jobs,
                "exclusive_s": v.exclusive_s,
                "amortized_s": v.amortized_s,
                "replayed": v.replayed,
                "sequential_s": seq_s,
            })
        })
        .collect();
    let sweep = json!({
        "grid": grid.render(),
        "variants": o.variants.len(),
        "labs": o.labs,
        "total_jobs": o.plan.total_jobs,
        "shared_jobs": o.plan.shared_jobs,
        "unique_jobs": o.plan.unique_jobs,
        "wall_s": o.wall_s,
        "replayed_variants": o.variants.iter().filter(|v| v.replayed).count(),
    });
    let sequential = seq.map(|s| {
        json!({
            "wall_s": s.wall_s,
            "speedup": if o.wall_s > 0.0 { s.wall_s / o.wall_s } else { 0.0 },
            "rows_match": s.rows_match(o),
        })
    });
    json!({
        "sweep": sweep,
        "sequential": sequential,
        "per_variant": Value::Array(variants),
    })
}

/// The `sweep` group for `run_meta.json` (schema v7).
pub fn sweep_meta(grid: &GridSpec, o: &SweepOutcome, seq: Option<&SeqBaseline>) -> Value {
    json!({
        "grid": grid.render(),
        "variants": o.variants.len(),
        "labs": o.labs,
        "total_jobs": o.plan.total_jobs,
        "shared_jobs": o.plan.shared_jobs,
        "unique_jobs": o.plan.unique_jobs,
        "replayed_variants": o.variants.iter().filter(|v| v.replayed).count(),
        "sequential_wall_s": seq.map(|s| s.wall_s),
        "speedup_vs_sequential": seq
            .filter(|_| o.wall_s > 0.0)
            .map(|s| s.wall_s / o.wall_s),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use kcb_core::experiment::sweep::{plan, run_sweep, GridSpec, SweepSpec};
    use kcb_core::lab::LabConfig;

    fn tiny_outcome() -> (GridSpec, SweepOutcome) {
        let base = LabConfig::tiny();
        let grid =
            GridSpec::parse("seeds=7;scenarios=0,1;paradigms=sup,icl;model=random").unwrap();
        let spec = SweepSpec { workers: 2, journal: None, store: None };
        let outcome = run_sweep(&base, &grid, &spec);
        (grid, outcome)
    }

    #[test]
    fn plan_render_counts_the_dedup() {
        let base = LabConfig::tiny();
        let grid =
            GridSpec::parse("seeds=7;scenarios=0,1;paradigms=sup,icl;model=random").unwrap();
        let p = plan(&base, &grid);
        let text = render_plan(&grid, &p);
        assert!(text.contains("variants  4"), "{text}");
        assert!(text.contains("labs 1"), "{text}");
        assert!(text.contains("Shared jobs"), "{text}");
        // Every variant row appears.
        for vid in &p.variant_ids {
            assert!(text.contains(vid.as_str()), "missing {vid} in:\n{text}");
        }
    }

    #[test]
    fn analysis_dir_is_complete_and_timing_free() {
        let (_, outcome) = tiny_outcome();
        let dir = std::env::temp_dir()
            .join(format!("kcb-analysis-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        write_analysis(&dir, &outcome).unwrap();
        for f in ["variants.txt", "aggregates.txt", "aggregates.json", "significance.txt",
            "significance.json"]
        {
            assert!(dir.join(f).is_file(), "missing {f}");
        }
        for v in &outcome.variants {
            assert!(dir.join("variants").join(format!("{}.json", v.id)).is_file());
        }
        // Timing-free: no wall-clock or seconds fields anywhere.
        for f in ["variants.txt", "aggregates.json", "significance.json"] {
            let text = std::fs::read_to_string(dir.join(f)).unwrap();
            assert!(
                !text.contains("seconds") && !text.contains("wall"),
                "{f} leaks timing:\n{text}"
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn bench_sweep_json_has_the_efficiency_columns() {
        let (grid, outcome) = tiny_outcome();
        let doc = bench_sweep_json(&grid, &outcome, None);
        assert_eq!(doc["sweep"]["variants"], json!(4));
        assert!(doc["sweep"]["shared_jobs"].as_u64().unwrap() > 0);
        assert_eq!(doc["sequential"], Value::Null);
        assert_eq!(doc["per_variant"][0]["jobs"], json!(outcome.variants[0].jobs));
        assert!(doc["per_variant"][0]["amortized_s"].as_f64().unwrap() >= 0.0);
        // With a (synthetic) baseline the speedup fields appear.
        let seq = SeqBaseline {
            per_variant: outcome
                .variants
                .iter()
                .map(|v| (v.id.clone(), v.rows.clone(), 0.5))
                .collect(),
            wall_s: 2.0,
        };
        assert!(seq.rows_match(&outcome));
        let doc = bench_sweep_json(&grid, &outcome, Some(&seq));
        assert_eq!(doc["sequential"]["wall_s"], json!(2.0));
        assert!(doc["sequential"]["speedup"].as_f64().unwrap() > 0.0);
        assert_eq!(doc["sequential"]["rows_match"], json!(true));
        let meta = sweep_meta(&grid, &outcome, Some(&seq));
        assert_eq!(meta["variants"], json!(4));
        assert_eq!(meta["sequential_wall_s"], json!(2.0));
        assert!(meta["speedup_vs_sequential"].as_f64().unwrap() > 0.0);
        let text = serde_json::to_string(&doc).unwrap();
        kcb_obs::json::validate(&text).unwrap();
    }

    #[test]
    fn mismatched_rows_fail_the_baseline_check() {
        let (_, outcome) = tiny_outcome();
        let mut per_variant: Vec<_> = outcome
            .variants
            .iter()
            .map(|v| (v.id.clone(), v.rows.clone(), 0.1))
            .collect();
        per_variant[0].1[0].f1 += 0.25;
        let seq = SeqBaseline { per_variant, wall_s: 1.0 };
        assert!(!seq.rows_match(&outcome));
    }
}
