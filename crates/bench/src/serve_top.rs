//! `repro serve-top` — a refreshing terminal view of a running daemon.
//!
//! Connects to a `repro serve` daemon's NDJSON port, polls the `stats`
//! admin verb at a fixed interval, and renders a small table of the live
//! numbers: throughput since the previous sample (qps), the end-to-end
//! latency percentiles from the server's own histogram, queue depth,
//! in-flight count and sheds. Rendering and parsing are plain functions
//! over the stats JSON so the display is testable without a socket.

use kcb_util::fmt::Table;
use kcb_util::json::parse_value;
use serde_json::Value;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// One polled `stats` sample, decoded.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StatsSample {
    /// Requests answered by workers so far.
    pub served: u64,
    /// Requests shed so far.
    pub shed: u64,
    /// Error replies so far.
    pub errors: u64,
    /// Requests currently queued.
    pub queue_depth: i64,
    /// Requests currently being served.
    pub in_flight: i64,
    /// Daemon uptime, seconds.
    pub uptime_s: f64,
    /// End-to-end latency percentiles, µs.
    pub p50_us: u64,
    /// 95th percentile, µs.
    pub p95_us: u64,
    /// 99th percentile, µs.
    pub p99_us: u64,
    /// Per-verb request counts (name, count), as reported.
    pub verbs: Vec<(String, u64)>,
}

/// Decodes one `stats` reply line. Unknown/missing numeric fields decode
/// as zero so older daemons degrade instead of erroring.
pub fn parse_stats(line: &str) -> Result<StatsSample, String> {
    let v = parse_value(line.trim())?;
    if v.get("ok").and_then(Value::as_bool) != Some(true) {
        return Err(format!("stats reply not ok: {line}"));
    }
    let u = |k: &str| v.get(k).and_then(Value::as_u64).unwrap_or(0);
    let i = |k: &str| v.get(k).and_then(Value::as_i64).unwrap_or(0);
    let mut verbs: Vec<(String, u64)> = Vec::new();
    if let Some(Value::Object(entries)) = v.get("verbs") {
        for (name, n) in entries {
            verbs.push((name.clone(), n.as_u64().unwrap_or(0)));
        }
    }
    Ok(StatsSample {
        served: u("served"),
        shed: u("shed"),
        errors: u("errors"),
        queue_depth: i("queue_depth"),
        in_flight: i("in_flight"),
        uptime_s: v.get("uptime_s").and_then(Value::as_f64).unwrap_or(0.0),
        p50_us: u("p50_us"),
        p95_us: u("p95_us"),
        p99_us: u("p99_us"),
        verbs,
    })
}

/// Renders one refresh frame: the headline table plus a verb-mix line.
/// `prev` (the previous sample and the seconds since it) turns the
/// monotone counters into rates. The first frame has no previous sample
/// to difference against — a zero-length window — so its rate columns
/// render as `-` rather than a misleading `0`.
pub fn render(sample: &StatsSample, prev: Option<(&StatsSample, f64)>) -> String {
    let rates = match prev {
        Some((p, dt)) if dt > 0.0 => Some((
            sample.served.saturating_sub(p.served) as f64 / dt,
            sample.shed.saturating_sub(p.shed) as f64 / dt,
        )),
        _ => None,
    };
    let mut t = Table::new(
        format!("serve-top — up {:.0}s", sample.uptime_s),
        &["qps", "p50 µs", "p95 µs", "p99 µs", "queue", "in-flight", "shed/s", "errors"],
    );
    t.row(vec![
        rates.map(|(qps, _)| format!("{qps:.0}")).unwrap_or_else(|| "-".to_string()),
        sample.p50_us.to_string(),
        sample.p95_us.to_string(),
        sample.p99_us.to_string(),
        sample.queue_depth.to_string(),
        sample.in_flight.to_string(),
        rates.map(|(_, shed)| format!("{shed:.1}")).unwrap_or_else(|| "-".to_string()),
        sample.errors.to_string(),
    ]);
    let mut out = t.render();
    if !sample.verbs.is_empty() {
        let mix: Vec<String> =
            sample.verbs.iter().map(|(name, n)| format!("{name}:{n}")).collect();
        out.push_str(&format!("verbs  {}\n", mix.join("  ")));
    }
    out.push_str(&format!(
        "total  served:{}  shed:{}\n",
        sample.served, sample.shed
    ));
    out
}

/// Polls `stats` over one persistent NDJSON connection and writes a
/// refreshing frame per sample to `out`. `samples == 0` polls until the
/// connection drops (daemon shutdown) or Ctrl-C. Returns the number of
/// frames rendered.
pub fn run(
    addr: &str,
    interval: Duration,
    samples: u64,
    out: &mut dyn Write,
) -> std::io::Result<u64> {
    let stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true)?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut stream = stream;
    let mut prev: Option<(StatsSample, Instant)> = None;
    let mut frames = 0u64;
    let mut reply = String::new();
    while !kcb_util::signal::triggered() {
        stream.write_all(format!("{{\"id\":{frames},\"op\":\"stats\"}}\n").as_bytes())?;
        reply.clear();
        if reader.read_line(&mut reply)? == 0 {
            break; // daemon shut down
        }
        let now = Instant::now();
        let sample = parse_stats(&reply)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
        let frame = render(
            &sample,
            prev.as_ref().map(|(p, t)| (p, now.duration_since(*t).as_secs_f64())),
        );
        if frames > 0 {
            // Move the cursor up over the previous frame and repaint.
            let lines = frame.lines().count();
            write!(out, "\x1b[{lines}A\x1b[J")?;
        }
        out.write_all(frame.as_bytes())?;
        out.flush()?;
        prev = Some((sample, now));
        frames += 1;
        if samples > 0 && frames >= samples {
            break;
        }
        std::thread::sleep(interval);
    }
    Ok(frames)
}

#[cfg(test)]
mod tests {
    use super::*;

    const REPLY: &str = concat!(
        r#"{"id":0,"ok":true,"served":120,"shed":4,"errors":1,"queue_depth":3,"#,
        r#""in_flight":2,"uptime_s":12.5,"p50_us":180,"p95_us":900,"p99_us":2100,"#,
        r#""max_us":5000,"verbs":{"nn":100,"ping":20}}"#
    );

    #[test]
    fn stats_replies_decode_including_the_verb_mix() {
        let s = parse_stats(REPLY).unwrap();
        assert_eq!(s.served, 120);
        assert_eq!(s.shed, 4);
        assert_eq!(s.errors, 1);
        assert_eq!(s.queue_depth, 3);
        assert_eq!(s.in_flight, 2);
        assert_eq!(s.p99_us, 2100);
        assert_eq!(s.verbs, vec![("nn".to_string(), 100), ("ping".to_string(), 20)]);
        assert!(parse_stats(r#"{"id":0,"ok":false,"error":"x","message":"y"}"#).is_err());
        assert!(parse_stats("not json").is_err());
    }

    #[test]
    fn rates_come_from_the_sample_delta() {
        let now = parse_stats(REPLY).unwrap();
        let mut before = now.clone();
        before.served = 20;
        before.shed = 0;
        let frame = render(&now, Some((&before, 2.0)));
        assert!(frame.contains("50"), "qps = (120-20)/2 = 50: {frame}");
        assert!(frame.contains("2.0"), "shed/s = 4/2: {frame}");
        assert!(frame.contains("nn:100"), "{frame}");
        assert!(frame.contains("served:120"), "{frame}");
        // First frame has no predecessor — a zero-length window — so the
        // rate columns render as `-`, never a misleading 0.
        let first = render(&now, None);
        assert!(first.contains("serve-top"), "{first}");
        let data_row = first.lines().nth(4).expect("title, rule, header, rule, row");
        assert!(data_row.trim_start().starts_with('-'), "first-frame qps must be '-': {first}");
        assert_eq!(data_row.matches(" - ").count(), 1, "shed/s must also be '-': {first}");
        // A zero-length delta (same-instant poll) is the same degenerate
        // window and must not divide by zero either.
        let degenerate = render(&now, Some((&before, 0.0)));
        assert!(degenerate.lines().nth(4).unwrap().trim_start().starts_with('-'), "{degenerate}");
    }

    #[test]
    fn run_polls_a_fake_daemon_until_its_sample_budget() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let server = std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            let mut reader = BufReader::new(stream.try_clone().unwrap());
            let mut stream = stream;
            let mut line = String::new();
            let mut served = 0u64;
            while reader.read_line(&mut line).unwrap_or(0) > 0 {
                served += 10;
                let reply = format!(
                    "{{\"id\":0,\"ok\":true,\"served\":{served},\"shed\":0,\"errors\":0,\
                     \"queue_depth\":1,\"in_flight\":0,\"uptime_s\":1.0,\"p50_us\":100,\
                     \"p95_us\":200,\"p99_us\":300,\"max_us\":400,\"verbs\":{{}}}}\n"
                );
                stream.write_all(reply.as_bytes()).unwrap();
                line.clear();
            }
        });
        let mut out = Vec::new();
        let frames = run(&addr, Duration::from_millis(1), 3, &mut out).unwrap();
        assert_eq!(frames, 3);
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("serve-top"), "{text}");
        assert!(text.contains("\x1b["), "later frames repaint in place");
        drop(server); // server thread ends when the client hangs up
    }
}
